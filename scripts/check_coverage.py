#!/usr/bin/env python3
"""Per-directory line-coverage gate.

Consumes a gcovr JSON summary (`gcovr --json-summary-pretty`) and compares
aggregate line coverage per source directory against the checked-in floors
in tests/coverage_thresholds.json. Fails (exit 1) when any directory with a
configured floor regresses below it, so coverage can only ratchet upward.

Usage:
    gcovr -r . --filter 'src/' --json-summary-pretty -o coverage.json \
        build-coverage
    python3 scripts/check_coverage.py coverage.json \
        tests/coverage_thresholds.json

Keys are paths relative to the repo root: a directory ("src/obs")
aggregates every file under it, and a single file ("src/mem/topology.h")
gets its own floor — a file key takes precedence over its directory, and
the file's lines are then excluded from the directory aggregate.
Directories without a configured floor are reported but never fail the
gate — add a floor once a subsystem's suite stabilises.
"""

import json
import sys


def directory_key(path, thresholds):
    """Longest configured prefix of `path` (the file itself wins), or its
    parent directory."""
    parts = path.replace("\\", "/").split("/")
    for cut in range(len(parts), 0, -1):
        prefix = "/".join(parts[:cut])
        if prefix in thresholds:
            return prefix
    return "/".join(parts[:-1]) or "."


def main(argv):
    if len(argv) != 3:
        sys.stderr.write(
            "usage: check_coverage.py <gcovr-json-summary> <thresholds.json>\n")
        return 2

    with open(argv[1]) as f:
        summary = json.load(f)
    with open(argv[2]) as f:
        thresholds = {k: v for k, v in json.load(f).items()
                      if not k.startswith("_")}

    totals = {}  # dir key -> [covered, total]
    for entry in summary.get("files", []):
        key = directory_key(entry["filename"], thresholds)
        agg = totals.setdefault(key, [0, 0])
        agg[0] += entry.get("line_covered", 0)
        agg[1] += entry.get("line_total", 0)

    failures = []
    print(f"{'directory':<24} {'lines':>12} {'coverage':>9} {'floor':>7}")
    for key in sorted(set(totals) | set(thresholds)):
        covered, total = totals.get(key, [0, 0])
        pct = 100.0 * covered / total if total else 0.0
        floor = thresholds.get(key)
        mark = ""
        if floor is not None:
            if total == 0:
                failures.append(f"{key}: no lines measured (floor {floor}%)")
                mark = "  MISSING"
            elif pct < floor:
                failures.append(
                    f"{key}: {pct:.1f}% < floor {floor}% "
                    f"({covered}/{total} lines)")
                mark = "  FAIL"
        floor_s = f"{floor:.0f}%" if floor is not None else "-"
        print(f"{key:<24} {covered:>5}/{total:<6} {pct:>8.1f}% {floor_s:>7}"
              f"{mark}")

    if failures:
        for f in failures:
            print(f"::error::coverage regression: {f}")
        return 1
    print("coverage gate: all configured floors met")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
