file(REMOVE_RECURSE
  "../bench/abl_smash"
  "../bench/abl_smash.pdb"
  "CMakeFiles/abl_smash.dir/abl_smash.cc.o"
  "CMakeFiles/abl_smash.dir/abl_smash.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_smash.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
