# Empty compiler generated dependencies file for abl_smash.
# This may be replaced when dependencies are built.
