file(REMOVE_RECURSE
  "../bench/tab_energy_area"
  "../bench/tab_energy_area.pdb"
  "CMakeFiles/tab_energy_area.dir/tab_energy_area.cc.o"
  "CMakeFiles/tab_energy_area.dir/tab_energy_area.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_energy_area.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
