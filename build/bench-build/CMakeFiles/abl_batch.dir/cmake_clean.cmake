file(REMOVE_RECURSE
  "../bench/abl_batch"
  "../bench/abl_batch.pdb"
  "CMakeFiles/abl_batch.dir/abl_batch.cc.o"
  "CMakeFiles/abl_batch.dir/abl_batch.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_batch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
