file(REMOVE_RECURSE
  "../bench/abl_memory"
  "../bench/abl_memory.pdb"
  "CMakeFiles/abl_memory.dir/abl_memory.cc.o"
  "CMakeFiles/abl_memory.dir/abl_memory.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_memory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
