file(REMOVE_RECURSE
  "../bench/fig5_spmspv_speedup"
  "../bench/fig5_spmspv_speedup.pdb"
  "CMakeFiles/fig5_spmspv_speedup.dir/fig5_spmspv_speedup.cc.o"
  "CMakeFiles/fig5_spmspv_speedup.dir/fig5_spmspv_speedup.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_spmspv_speedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
