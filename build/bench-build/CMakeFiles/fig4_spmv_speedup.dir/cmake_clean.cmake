file(REMOVE_RECURSE
  "../bench/fig4_spmv_speedup"
  "../bench/fig4_spmv_speedup.pdb"
  "CMakeFiles/fig4_spmv_speedup.dir/fig4_spmv_speedup.cc.o"
  "CMakeFiles/fig4_spmv_speedup.dir/fig4_spmv_speedup.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_spmv_speedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
