# Empty dependencies file for fig8_vector_width.
# This may be replaced when dependencies are built.
