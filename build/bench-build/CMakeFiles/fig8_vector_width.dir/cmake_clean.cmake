file(REMOVE_RECURSE
  "../bench/fig8_vector_width"
  "../bench/fig8_vector_width.pdb"
  "CMakeFiles/fig8_vector_width.dir/fig8_vector_width.cc.o"
  "CMakeFiles/fig8_vector_width.dir/fig8_vector_width.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_vector_width.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
