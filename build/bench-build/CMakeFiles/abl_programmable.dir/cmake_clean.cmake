file(REMOVE_RECURSE
  "../bench/abl_programmable"
  "../bench/abl_programmable.pdb"
  "CMakeFiles/abl_programmable.dir/abl_programmable.cc.o"
  "CMakeFiles/abl_programmable.dir/abl_programmable.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_programmable.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
