# Empty dependencies file for abl_programmable.
# This may be replaced when dependencies are built.
