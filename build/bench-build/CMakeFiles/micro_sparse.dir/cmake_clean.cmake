file(REMOVE_RECURSE
  "../bench/micro_sparse"
  "../bench/micro_sparse.pdb"
  "CMakeFiles/micro_sparse.dir/micro_sparse.cc.o"
  "CMakeFiles/micro_sparse.dir/micro_sparse.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_sparse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
