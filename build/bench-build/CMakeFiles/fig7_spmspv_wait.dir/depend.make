# Empty dependencies file for fig7_spmspv_wait.
# This may be replaced when dependencies are built.
