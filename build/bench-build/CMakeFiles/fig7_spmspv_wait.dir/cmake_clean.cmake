file(REMOVE_RECURSE
  "../bench/fig7_spmspv_wait"
  "../bench/fig7_spmspv_wait.pdb"
  "CMakeFiles/fig7_spmspv_wait.dir/fig7_spmspv_wait.cc.o"
  "CMakeFiles/fig7_spmspv_wait.dir/fig7_spmspv_wait.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_spmspv_wait.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
