file(REMOVE_RECURSE
  "../bench/abl_buffers"
  "../bench/abl_buffers.pdb"
  "CMakeFiles/abl_buffers.dir/abl_buffers.cc.o"
  "CMakeFiles/abl_buffers.dir/abl_buffers.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_buffers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
