# Empty dependencies file for abl_buffers.
# This may be replaced when dependencies are built.
