file(REMOVE_RECURSE
  "../bench/fig9_dnn_layers"
  "../bench/fig9_dnn_layers.pdb"
  "CMakeFiles/fig9_dnn_layers.dir/fig9_dnn_layers.cc.o"
  "CMakeFiles/fig9_dnn_layers.dir/fig9_dnn_layers.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_dnn_layers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
