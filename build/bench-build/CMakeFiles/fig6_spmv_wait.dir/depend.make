# Empty dependencies file for fig6_spmv_wait.
# This may be replaced when dependencies are built.
