file(REMOVE_RECURSE
  "../bench/fig6_spmv_wait"
  "../bench/fig6_spmv_wait.pdb"
  "CMakeFiles/fig6_spmv_wait.dir/fig6_spmv_wait.cc.o"
  "CMakeFiles/fig6_spmv_wait.dir/fig6_spmv_wait.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_spmv_wait.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
