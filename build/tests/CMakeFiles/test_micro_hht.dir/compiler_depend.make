# Empty compiler generated dependencies file for test_micro_hht.
# This may be replaced when dependencies are built.
