file(REMOVE_RECURSE
  "CMakeFiles/test_micro_hht.dir/test_micro_hht.cc.o"
  "CMakeFiles/test_micro_hht.dir/test_micro_hht.cc.o.d"
  "test_micro_hht"
  "test_micro_hht.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_micro_hht.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
