# Empty compiler generated dependencies file for test_kernels_spmv.
# This may be replaced when dependencies are built.
