file(REMOVE_RECURSE
  "CMakeFiles/test_kernels_spmv.dir/test_kernels_spmv.cc.o"
  "CMakeFiles/test_kernels_spmv.dir/test_kernels_spmv.cc.o.d"
  "test_kernels_spmv"
  "test_kernels_spmv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_kernels_spmv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
