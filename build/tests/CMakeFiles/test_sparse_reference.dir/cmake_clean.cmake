file(REMOVE_RECURSE
  "CMakeFiles/test_sparse_reference.dir/test_sparse_reference.cc.o"
  "CMakeFiles/test_sparse_reference.dir/test_sparse_reference.cc.o.d"
  "test_sparse_reference"
  "test_sparse_reference.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sparse_reference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
