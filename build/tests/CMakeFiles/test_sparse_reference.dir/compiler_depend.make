# Empty compiler generated dependencies file for test_sparse_reference.
# This may be replaced when dependencies are built.
