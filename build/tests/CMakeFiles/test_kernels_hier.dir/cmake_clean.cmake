file(REMOVE_RECURSE
  "CMakeFiles/test_kernels_hier.dir/test_kernels_hier.cc.o"
  "CMakeFiles/test_kernels_hier.dir/test_kernels_hier.cc.o.d"
  "test_kernels_hier"
  "test_kernels_hier.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_kernels_hier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
