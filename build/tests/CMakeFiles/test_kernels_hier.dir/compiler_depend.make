# Empty compiler generated dependencies file for test_kernels_hier.
# This may be replaced when dependencies are built.
