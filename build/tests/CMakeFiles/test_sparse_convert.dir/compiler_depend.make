# Empty compiler generated dependencies file for test_sparse_convert.
# This may be replaced when dependencies are built.
