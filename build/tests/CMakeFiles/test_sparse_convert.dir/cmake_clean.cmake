file(REMOVE_RECURSE
  "CMakeFiles/test_sparse_convert.dir/test_sparse_convert.cc.o"
  "CMakeFiles/test_sparse_convert.dir/test_sparse_convert.cc.o.d"
  "test_sparse_convert"
  "test_sparse_convert.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sparse_convert.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
