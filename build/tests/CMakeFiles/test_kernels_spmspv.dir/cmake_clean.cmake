file(REMOVE_RECURSE
  "CMakeFiles/test_kernels_spmspv.dir/test_kernels_spmspv.cc.o"
  "CMakeFiles/test_kernels_spmspv.dir/test_kernels_spmspv.cc.o.d"
  "test_kernels_spmspv"
  "test_kernels_spmspv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_kernels_spmspv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
