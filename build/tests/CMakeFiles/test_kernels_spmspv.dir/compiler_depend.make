# Empty compiler generated dependencies file for test_kernels_spmspv.
# This may be replaced when dependencies are built.
