file(REMOVE_RECURSE
  "CMakeFiles/test_cpu_scalar.dir/test_cpu_scalar.cc.o"
  "CMakeFiles/test_cpu_scalar.dir/test_cpu_scalar.cc.o.d"
  "test_cpu_scalar"
  "test_cpu_scalar.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cpu_scalar.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
