# Empty dependencies file for test_cpu_scalar.
# This may be replaced when dependencies are built.
