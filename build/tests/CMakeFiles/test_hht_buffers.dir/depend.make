# Empty dependencies file for test_hht_buffers.
# This may be replaced when dependencies are built.
