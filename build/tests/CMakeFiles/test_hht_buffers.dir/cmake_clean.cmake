file(REMOVE_RECURSE
  "CMakeFiles/test_hht_buffers.dir/test_hht_buffers.cc.o"
  "CMakeFiles/test_hht_buffers.dir/test_hht_buffers.cc.o.d"
  "test_hht_buffers"
  "test_hht_buffers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hht_buffers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
