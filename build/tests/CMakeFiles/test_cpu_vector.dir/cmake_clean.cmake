file(REMOVE_RECURSE
  "CMakeFiles/test_cpu_vector.dir/test_cpu_vector.cc.o"
  "CMakeFiles/test_cpu_vector.dir/test_cpu_vector.cc.o.d"
  "test_cpu_vector"
  "test_cpu_vector.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cpu_vector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
