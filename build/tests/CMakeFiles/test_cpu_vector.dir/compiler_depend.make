# Empty compiler generated dependencies file for test_cpu_vector.
# This may be replaced when dependencies are built.
