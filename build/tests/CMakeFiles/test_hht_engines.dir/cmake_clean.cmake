file(REMOVE_RECURSE
  "CMakeFiles/test_hht_engines.dir/test_hht_engines.cc.o"
  "CMakeFiles/test_hht_engines.dir/test_hht_engines.cc.o.d"
  "test_hht_engines"
  "test_hht_engines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hht_engines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
