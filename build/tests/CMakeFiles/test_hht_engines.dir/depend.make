# Empty dependencies file for test_hht_engines.
# This may be replaced when dependencies are built.
