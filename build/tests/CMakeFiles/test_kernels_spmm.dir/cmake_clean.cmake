file(REMOVE_RECURSE
  "CMakeFiles/test_kernels_spmm.dir/test_kernels_spmm.cc.o"
  "CMakeFiles/test_kernels_spmm.dir/test_kernels_spmm.cc.o.d"
  "test_kernels_spmm"
  "test_kernels_spmm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_kernels_spmm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
