# Empty compiler generated dependencies file for test_kernels_spmm.
# This may be replaced when dependencies are built.
