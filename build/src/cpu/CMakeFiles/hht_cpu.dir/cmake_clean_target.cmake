file(REMOVE_RECURSE
  "libhht_cpu.a"
)
