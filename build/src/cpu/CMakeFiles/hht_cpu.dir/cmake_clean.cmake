file(REMOVE_RECURSE
  "CMakeFiles/hht_cpu.dir/core.cc.o"
  "CMakeFiles/hht_cpu.dir/core.cc.o.d"
  "libhht_cpu.a"
  "libhht_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hht_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
