# Empty compiler generated dependencies file for hht_cpu.
# This may be replaced when dependencies are built.
