file(REMOVE_RECURSE
  "CMakeFiles/hht_isa.dir/encoding.cc.o"
  "CMakeFiles/hht_isa.dir/encoding.cc.o.d"
  "CMakeFiles/hht_isa.dir/opcodes.cc.o"
  "CMakeFiles/hht_isa.dir/opcodes.cc.o.d"
  "CMakeFiles/hht_isa.dir/program.cc.o"
  "CMakeFiles/hht_isa.dir/program.cc.o.d"
  "libhht_isa.a"
  "libhht_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hht_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
