file(REMOVE_RECURSE
  "libhht_isa.a"
)
