# Empty compiler generated dependencies file for hht_isa.
# This may be replaced when dependencies are built.
