file(REMOVE_RECURSE
  "libhht_sparse.a"
)
