
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sparse/bcsr.cc" "src/sparse/CMakeFiles/hht_sparse.dir/bcsr.cc.o" "gcc" "src/sparse/CMakeFiles/hht_sparse.dir/bcsr.cc.o.d"
  "/root/repo/src/sparse/bitvector.cc" "src/sparse/CMakeFiles/hht_sparse.dir/bitvector.cc.o" "gcc" "src/sparse/CMakeFiles/hht_sparse.dir/bitvector.cc.o.d"
  "/root/repo/src/sparse/convert.cc" "src/sparse/CMakeFiles/hht_sparse.dir/convert.cc.o" "gcc" "src/sparse/CMakeFiles/hht_sparse.dir/convert.cc.o.d"
  "/root/repo/src/sparse/coo.cc" "src/sparse/CMakeFiles/hht_sparse.dir/coo.cc.o" "gcc" "src/sparse/CMakeFiles/hht_sparse.dir/coo.cc.o.d"
  "/root/repo/src/sparse/csc.cc" "src/sparse/CMakeFiles/hht_sparse.dir/csc.cc.o" "gcc" "src/sparse/CMakeFiles/hht_sparse.dir/csc.cc.o.d"
  "/root/repo/src/sparse/csr.cc" "src/sparse/CMakeFiles/hht_sparse.dir/csr.cc.o" "gcc" "src/sparse/CMakeFiles/hht_sparse.dir/csr.cc.o.d"
  "/root/repo/src/sparse/dia.cc" "src/sparse/CMakeFiles/hht_sparse.dir/dia.cc.o" "gcc" "src/sparse/CMakeFiles/hht_sparse.dir/dia.cc.o.d"
  "/root/repo/src/sparse/ell.cc" "src/sparse/CMakeFiles/hht_sparse.dir/ell.cc.o" "gcc" "src/sparse/CMakeFiles/hht_sparse.dir/ell.cc.o.d"
  "/root/repo/src/sparse/hier_bitmap.cc" "src/sparse/CMakeFiles/hht_sparse.dir/hier_bitmap.cc.o" "gcc" "src/sparse/CMakeFiles/hht_sparse.dir/hier_bitmap.cc.o.d"
  "/root/repo/src/sparse/matrix_market.cc" "src/sparse/CMakeFiles/hht_sparse.dir/matrix_market.cc.o" "gcc" "src/sparse/CMakeFiles/hht_sparse.dir/matrix_market.cc.o.d"
  "/root/repo/src/sparse/reference.cc" "src/sparse/CMakeFiles/hht_sparse.dir/reference.cc.o" "gcc" "src/sparse/CMakeFiles/hht_sparse.dir/reference.cc.o.d"
  "/root/repo/src/sparse/rle.cc" "src/sparse/CMakeFiles/hht_sparse.dir/rle.cc.o" "gcc" "src/sparse/CMakeFiles/hht_sparse.dir/rle.cc.o.d"
  "/root/repo/src/sparse/sparse_vector.cc" "src/sparse/CMakeFiles/hht_sparse.dir/sparse_vector.cc.o" "gcc" "src/sparse/CMakeFiles/hht_sparse.dir/sparse_vector.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/hht_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
