# Empty compiler generated dependencies file for hht_sparse.
# This may be replaced when dependencies are built.
