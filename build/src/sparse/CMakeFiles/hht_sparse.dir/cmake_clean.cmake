file(REMOVE_RECURSE
  "CMakeFiles/hht_sparse.dir/bcsr.cc.o"
  "CMakeFiles/hht_sparse.dir/bcsr.cc.o.d"
  "CMakeFiles/hht_sparse.dir/bitvector.cc.o"
  "CMakeFiles/hht_sparse.dir/bitvector.cc.o.d"
  "CMakeFiles/hht_sparse.dir/convert.cc.o"
  "CMakeFiles/hht_sparse.dir/convert.cc.o.d"
  "CMakeFiles/hht_sparse.dir/coo.cc.o"
  "CMakeFiles/hht_sparse.dir/coo.cc.o.d"
  "CMakeFiles/hht_sparse.dir/csc.cc.o"
  "CMakeFiles/hht_sparse.dir/csc.cc.o.d"
  "CMakeFiles/hht_sparse.dir/csr.cc.o"
  "CMakeFiles/hht_sparse.dir/csr.cc.o.d"
  "CMakeFiles/hht_sparse.dir/dia.cc.o"
  "CMakeFiles/hht_sparse.dir/dia.cc.o.d"
  "CMakeFiles/hht_sparse.dir/ell.cc.o"
  "CMakeFiles/hht_sparse.dir/ell.cc.o.d"
  "CMakeFiles/hht_sparse.dir/hier_bitmap.cc.o"
  "CMakeFiles/hht_sparse.dir/hier_bitmap.cc.o.d"
  "CMakeFiles/hht_sparse.dir/matrix_market.cc.o"
  "CMakeFiles/hht_sparse.dir/matrix_market.cc.o.d"
  "CMakeFiles/hht_sparse.dir/reference.cc.o"
  "CMakeFiles/hht_sparse.dir/reference.cc.o.d"
  "CMakeFiles/hht_sparse.dir/rle.cc.o"
  "CMakeFiles/hht_sparse.dir/rle.cc.o.d"
  "CMakeFiles/hht_sparse.dir/sparse_vector.cc.o"
  "CMakeFiles/hht_sparse.dir/sparse_vector.cc.o.d"
  "libhht_sparse.a"
  "libhht_sparse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hht_sparse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
