# Empty dependencies file for hht_workload.
# This may be replaced when dependencies are built.
