file(REMOVE_RECURSE
  "libhht_workload.a"
)
