file(REMOVE_RECURSE
  "CMakeFiles/hht_workload.dir/dnn.cc.o"
  "CMakeFiles/hht_workload.dir/dnn.cc.o.d"
  "CMakeFiles/hht_workload.dir/synthetic.cc.o"
  "CMakeFiles/hht_workload.dir/synthetic.cc.o.d"
  "libhht_workload.a"
  "libhht_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hht_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
