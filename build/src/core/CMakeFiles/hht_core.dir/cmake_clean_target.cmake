file(REMOVE_RECURSE
  "libhht_core.a"
)
