
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/gather_engine.cc" "src/core/CMakeFiles/hht_core.dir/gather_engine.cc.o" "gcc" "src/core/CMakeFiles/hht_core.dir/gather_engine.cc.o.d"
  "/root/repo/src/core/hht.cc" "src/core/CMakeFiles/hht_core.dir/hht.cc.o" "gcc" "src/core/CMakeFiles/hht_core.dir/hht.cc.o.d"
  "/root/repo/src/core/hier_engine.cc" "src/core/CMakeFiles/hht_core.dir/hier_engine.cc.o" "gcc" "src/core/CMakeFiles/hht_core.dir/hier_engine.cc.o.d"
  "/root/repo/src/core/merge_engine.cc" "src/core/CMakeFiles/hht_core.dir/merge_engine.cc.o" "gcc" "src/core/CMakeFiles/hht_core.dir/merge_engine.cc.o.d"
  "/root/repo/src/core/micro_hht.cc" "src/core/CMakeFiles/hht_core.dir/micro_hht.cc.o" "gcc" "src/core/CMakeFiles/hht_core.dir/micro_hht.cc.o.d"
  "/root/repo/src/core/stream_engine.cc" "src/core/CMakeFiles/hht_core.dir/stream_engine.cc.o" "gcc" "src/core/CMakeFiles/hht_core.dir/stream_engine.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/hht_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/hht_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/hht_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/hht_isa.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
