file(REMOVE_RECURSE
  "CMakeFiles/hht_core.dir/gather_engine.cc.o"
  "CMakeFiles/hht_core.dir/gather_engine.cc.o.d"
  "CMakeFiles/hht_core.dir/hht.cc.o"
  "CMakeFiles/hht_core.dir/hht.cc.o.d"
  "CMakeFiles/hht_core.dir/hier_engine.cc.o"
  "CMakeFiles/hht_core.dir/hier_engine.cc.o.d"
  "CMakeFiles/hht_core.dir/merge_engine.cc.o"
  "CMakeFiles/hht_core.dir/merge_engine.cc.o.d"
  "CMakeFiles/hht_core.dir/micro_hht.cc.o"
  "CMakeFiles/hht_core.dir/micro_hht.cc.o.d"
  "CMakeFiles/hht_core.dir/stream_engine.cc.o"
  "CMakeFiles/hht_core.dir/stream_engine.cc.o.d"
  "libhht_core.a"
  "libhht_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hht_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
