# Empty dependencies file for hht_core.
# This may be replaced when dependencies are built.
