file(REMOVE_RECURSE
  "CMakeFiles/hht_energy.dir/events.cc.o"
  "CMakeFiles/hht_energy.dir/events.cc.o.d"
  "CMakeFiles/hht_energy.dir/model.cc.o"
  "CMakeFiles/hht_energy.dir/model.cc.o.d"
  "libhht_energy.a"
  "libhht_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hht_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
