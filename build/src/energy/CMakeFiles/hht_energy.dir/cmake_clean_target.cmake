file(REMOVE_RECURSE
  "libhht_energy.a"
)
