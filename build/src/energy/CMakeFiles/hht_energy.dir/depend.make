# Empty dependencies file for hht_energy.
# This may be replaced when dependencies are built.
