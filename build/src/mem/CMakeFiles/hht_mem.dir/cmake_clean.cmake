file(REMOVE_RECURSE
  "CMakeFiles/hht_mem.dir/cache.cc.o"
  "CMakeFiles/hht_mem.dir/cache.cc.o.d"
  "CMakeFiles/hht_mem.dir/memory_system.cc.o"
  "CMakeFiles/hht_mem.dir/memory_system.cc.o.d"
  "libhht_mem.a"
  "libhht_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hht_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
