file(REMOVE_RECURSE
  "libhht_mem.a"
)
