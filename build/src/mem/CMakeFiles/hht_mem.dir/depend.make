# Empty dependencies file for hht_mem.
# This may be replaced when dependencies are built.
