# Empty dependencies file for hht_harness.
# This may be replaced when dependencies are built.
