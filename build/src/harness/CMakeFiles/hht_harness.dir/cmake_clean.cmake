file(REMOVE_RECURSE
  "CMakeFiles/hht_harness.dir/experiment.cc.o"
  "CMakeFiles/hht_harness.dir/experiment.cc.o.d"
  "CMakeFiles/hht_harness.dir/report.cc.o"
  "CMakeFiles/hht_harness.dir/report.cc.o.d"
  "CMakeFiles/hht_harness.dir/system.cc.o"
  "CMakeFiles/hht_harness.dir/system.cc.o.d"
  "libhht_harness.a"
  "libhht_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hht_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
