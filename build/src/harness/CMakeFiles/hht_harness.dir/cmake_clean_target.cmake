file(REMOVE_RECURSE
  "libhht_harness.a"
)
