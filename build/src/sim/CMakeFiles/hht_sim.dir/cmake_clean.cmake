file(REMOVE_RECURSE
  "CMakeFiles/hht_sim.dir/log.cc.o"
  "CMakeFiles/hht_sim.dir/log.cc.o.d"
  "libhht_sim.a"
  "libhht_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hht_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
