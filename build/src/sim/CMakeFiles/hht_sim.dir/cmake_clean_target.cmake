file(REMOVE_RECURSE
  "libhht_sim.a"
)
