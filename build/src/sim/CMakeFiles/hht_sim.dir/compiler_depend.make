# Empty compiler generated dependencies file for hht_sim.
# This may be replaced when dependencies are built.
