# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("sim")
subdirs("sparse")
subdirs("mem")
subdirs("isa")
subdirs("cpu")
subdirs("core")
subdirs("kernels")
subdirs("energy")
subdirs("workload")
subdirs("harness")
