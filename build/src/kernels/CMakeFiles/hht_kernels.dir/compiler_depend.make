# Empty compiler generated dependencies file for hht_kernels.
# This may be replaced when dependencies are built.
