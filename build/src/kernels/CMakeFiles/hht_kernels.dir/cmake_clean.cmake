file(REMOVE_RECURSE
  "CMakeFiles/hht_kernels.dir/firmware.cc.o"
  "CMakeFiles/hht_kernels.dir/firmware.cc.o.d"
  "CMakeFiles/hht_kernels.dir/kernels.cc.o"
  "CMakeFiles/hht_kernels.dir/kernels.cc.o.d"
  "libhht_kernels.a"
  "libhht_kernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hht_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
