file(REMOVE_RECURSE
  "libhht_kernels.a"
)
