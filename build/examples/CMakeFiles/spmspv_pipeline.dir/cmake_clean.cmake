file(REMOVE_RECURSE
  "CMakeFiles/spmspv_pipeline.dir/spmspv_pipeline.cpp.o"
  "CMakeFiles/spmspv_pipeline.dir/spmspv_pipeline.cpp.o.d"
  "spmspv_pipeline"
  "spmspv_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spmspv_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
