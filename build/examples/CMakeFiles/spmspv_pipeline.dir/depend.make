# Empty dependencies file for spmspv_pipeline.
# This may be replaced when dependencies are built.
