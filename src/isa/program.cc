#include "isa/program.h"

#include <sstream>

namespace hht::isa {

std::string Program::listing() const {
  std::ostringstream out;
  out << "; program: " << name_ << " (" << code_.size() << " instructions)\n";
  for (std::size_t pc = 0; pc < code_.size(); ++pc) {
    out << pc << ":\t" << disassemble(code_[pc]) << '\n';
  }
  return out.str();
}

Label ProgramBuilder::newLabel() {
  label_pc_.push_back(-1);
  return Label{static_cast<std::int32_t>(label_pc_.size()) - 1};
}

void ProgramBuilder::bind(Label label) {
  if (label.id < 0 || static_cast<std::size_t>(label.id) >= label_pc_.size()) {
    throw AssemblerError("bind: unknown label");
  }
  if (label_pc_[label.id] != -1) {
    throw AssemblerError("bind: label bound twice");
  }
  label_pc_[label.id] = static_cast<std::int32_t>(code_.size());
}

ProgramBuilder& ProgramBuilder::emit(Instr instr) {
  if (instr.rd >= kNumXRegs || instr.rs1 >= kNumXRegs ||
      instr.rs2 >= kNumXRegs || instr.rs3 >= kNumXRegs) {
    // All three files have 32 names, so one bound covers x/f/v.
    throw AssemblerError("emit: register index out of range");
  }
  code_.push_back(instr);
  return *this;
}

ProgramBuilder& ProgramBuilder::br(Opcode op, Reg rs1, Reg rs2, Label target) {
  if (target.id < 0 || static_cast<std::size_t>(target.id) >= label_pc_.size()) {
    throw AssemblerError("branch to unknown label");
  }
  patches_.emplace_back(code_.size(), target.id);
  return emit({op, 0, rs1, rs2, 0, 0});
}

ProgramBuilder& ProgramBuilder::jal(Reg rd, Label target) {
  if (target.id < 0 || static_cast<std::size_t>(target.id) >= label_pc_.size()) {
    throw AssemblerError("jump to unknown label");
  }
  patches_.emplace_back(code_.size(), target.id);
  return emit({Opcode::JAL, rd, 0, 0, 0, 0});
}

ProgramBuilder& ProgramBuilder::li(Reg rd, std::int32_t value) {
  // Mirror the RV32 lui/addi expansion (addi sign-extends its 12-bit field
  // on real hardware; our imm holds the value directly, but we keep the
  // two-instruction cost for values outside the addi range so dynamic
  // instruction counts stay honest).
  if (value >= -2048 && value < 2048) {
    return addi(rd, reg::zero, value);
  }
  const std::int32_t low = static_cast<std::int32_t>(value << 20) >> 20;
  // Wrap-around subtraction: value - low can step past INT32_MAX (e.g.
  // 0x7FFFFFFF with low = -1), which is what the hardware does too.
  const std::int32_t high = static_cast<std::int32_t>(
      static_cast<std::uint32_t>(value) - static_cast<std::uint32_t>(low));
  lui(rd, high);
  if (low != 0) addi(rd, rd, low);
  return *this;
}

Program ProgramBuilder::build() {
  for (std::size_t i = 0; i < label_pc_.size(); ++i) {
    if (label_pc_[i] == -1) {
      throw AssemblerError("unbound label #" + std::to_string(i) +
                           " in program " + name_);
    }
  }
  std::vector<Instr> resolved = code_;
  for (const auto& [pc, label] : patches_) {
    resolved[pc].imm = label_pc_[label];
  }
  return Program(name_, std::move(resolved));
}

std::string disassemble(const Instr& instr) {
  std::ostringstream out;
  out << mnemonic(instr.op);
  const auto x = [](Reg r) { return "x" + std::to_string(r); };
  const auto f = [](Reg r) { return "f" + std::to_string(r); };
  const auto v = [](Reg r) { return "v" + std::to_string(r); };
  switch (instrClass(instr.op)) {
    case InstrClass::IntAlu:
    case InstrClass::IntMul:
    case InstrClass::IntDiv:
      out << ' ' << x(instr.rd) << ", " << x(instr.rs1);
      if (instr.op == Opcode::LUI) {
        out << " # imm=" << instr.imm;
      } else if (instr.rs2 != 0 || instr.imm == 0) {
        out << ", " << x(instr.rs2);
        if (instr.imm != 0) out << ", " << instr.imm;
      } else {
        out << ", " << instr.imm;
      }
      break;
    case InstrClass::Load:
      out << ' ' << x(instr.rd) << ", " << instr.imm << '(' << x(instr.rs1) << ')';
      break;
    case InstrClass::Store:
      out << ' ' << x(instr.rs2) << ", " << instr.imm << '(' << x(instr.rs1) << ')';
      break;
    case InstrClass::Branch:
      out << ' ' << x(instr.rs1) << ", " << x(instr.rs2) << ", @" << instr.imm;
      break;
    case InstrClass::Jump:
      if (instr.op == Opcode::JAL) {
        out << ' ' << x(instr.rd) << ", @" << instr.imm;
      } else {
        out << ' ' << x(instr.rd) << ", " << instr.imm << '(' << x(instr.rs1) << ')';
      }
      break;
    case InstrClass::FpLoad:
      out << ' ' << f(instr.rd) << ", " << instr.imm << '(' << x(instr.rs1) << ')';
      break;
    case InstrClass::FpStore:
      out << ' ' << f(instr.rs2) << ", " << instr.imm << '(' << x(instr.rs1) << ')';
      break;
    case InstrClass::FpAlu:
    case InstrClass::FpMul:
    case InstrClass::FpDiv:
      out << ' ' << f(instr.rd) << ", " << f(instr.rs1) << ", " << f(instr.rs2);
      break;
    case InstrClass::FpMulAdd:
      out << ' ' << f(instr.rd) << ", " << f(instr.rs1) << ", " << f(instr.rs2)
          << ", " << f(instr.rs3);
      break;
    case InstrClass::FpMove:
      out << ' ' << (instr.op == Opcode::FMV_X_W || instr.op == Opcode::FCVT_W_S
                         ? x(instr.rd)
                         : f(instr.rd))
          << ", "
          << (instr.op == Opcode::FMV_W_X || instr.op == Opcode::FCVT_S_W
                  ? x(instr.rs1)
                  : f(instr.rs1));
      break;
    case InstrClass::VecCfg:
      out << ' ' << x(instr.rd) << ", " << x(instr.rs1) << ", e32";
      break;
    case InstrClass::VecLoad:
    case InstrClass::VecGather:
      out << ' ' << v(instr.rd) << ", (" << x(instr.rs1) << ')';
      if (instr.op == Opcode::VLUXEI32) out << ", " << v(instr.rs2);
      break;
    case InstrClass::VecStore:
      out << ' ' << v(instr.rs2) << ", (" << x(instr.rs1) << ')';
      break;
    case InstrClass::VecAlu:
    case InstrClass::VecFp:
      out << ' ' << v(instr.rd) << ", " << v(instr.rs1);
      if (instr.op == Opcode::VSLL_VI) {
        out << ", " << instr.imm;
      } else {
        out << ", " << v(instr.rs2);
      }
      break;
    case InstrClass::VecRed:
      out << ' ' << v(instr.rd) << ", " << v(instr.rs1) << ", " << v(instr.rs2);
      break;
    case InstrClass::VecMove:
      switch (instr.op) {
        case Opcode::VMV_V_I: out << ' ' << v(instr.rd) << ", " << instr.imm; break;
        case Opcode::VMV_V_X: out << ' ' << v(instr.rd) << ", " << x(instr.rs1); break;
        case Opcode::VFMV_F_S: out << ' ' << f(instr.rd) << ", " << v(instr.rs1); break;
        case Opcode::VFMV_S_F: out << ' ' << v(instr.rd) << ", " << f(instr.rs1); break;
        default: break;
      }
      break;
    case InstrClass::Sys:
      if (instr.op == Opcode::CSRR_CYCLE) out << ' ' << x(instr.rd);
      break;
  }
  return out.str();
}

}  // namespace hht::isa
