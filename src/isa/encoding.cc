#include "isa/encoding.h"

#include <cstring>
#include <fstream>

namespace hht::isa {

std::uint64_t encode(const Instr& instr) {
  return (static_cast<std::uint64_t>(instr.op) << 56) |
         (static_cast<std::uint64_t>(instr.rd & 0x3F) << 50) |
         (static_cast<std::uint64_t>(instr.rs1 & 0x3F) << 44) |
         (static_cast<std::uint64_t>(instr.rs2 & 0x3F) << 38) |
         (static_cast<std::uint64_t>(instr.rs3 & 0x3F) << 32) |
         static_cast<std::uint64_t>(static_cast<std::uint32_t>(instr.imm));
}

Instr decode(std::uint64_t word) {
  const std::uint8_t op = static_cast<std::uint8_t>(word >> 56);
  if (op >= kNumOpcodes) {
    throw EncodingError("decode: invalid opcode byte " + std::to_string(op));
  }
  Instr instr;
  instr.op = static_cast<Opcode>(op);
  instr.rd = static_cast<Reg>((word >> 50) & 0x3F);
  instr.rs1 = static_cast<Reg>((word >> 44) & 0x3F);
  instr.rs2 = static_cast<Reg>((word >> 38) & 0x3F);
  instr.rs3 = static_cast<Reg>((word >> 32) & 0x3F);
  instr.imm = static_cast<std::int32_t>(static_cast<std::uint32_t>(word));
  if (instr.rd >= kNumXRegs || instr.rs1 >= kNumXRegs ||
      instr.rs2 >= kNumXRegs || instr.rs3 >= kNumXRegs) {
    throw EncodingError("decode: register index out of range");
  }
  return instr;
}

std::vector<std::uint64_t> encodeProgram(const Program& program) {
  std::vector<std::uint64_t> words;
  words.reserve(program.size());
  for (const Instr& instr : program.code()) words.push_back(encode(instr));
  return words;
}

Program decodeProgram(std::string name, std::span<const std::uint64_t> words) {
  std::vector<Instr> code;
  code.reserve(words.size());
  for (std::uint64_t w : words) code.push_back(decode(w));
  return Program(std::move(name), std::move(code));
}

namespace {

constexpr char kMagic[4] = {'H', 'H', 'T', 'P'};
constexpr std::uint32_t kVersion = 1;

template <typename T>
void writePod(std::ofstream& out, const T& v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
T readPod(std::ifstream& in) {
  T v{};
  in.read(reinterpret_cast<char*>(&v), sizeof(T));
  if (!in) throw EncodingError("program file truncated");
  return v;
}

}  // namespace

void saveProgramFile(const std::string& path, const Program& program) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw EncodingError("cannot open " + path + " for writing");
  out.write(kMagic, sizeof(kMagic));
  writePod(out, kVersion);
  writePod(out, static_cast<std::uint32_t>(program.name().size()));
  out.write(program.name().data(),
            static_cast<std::streamsize>(program.name().size()));
  writePod(out, static_cast<std::uint64_t>(program.size()));
  for (const Instr& instr : program.code()) writePod(out, encode(instr));
  if (!out) throw EncodingError("write failed for " + path);
}

Program loadProgramFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw EncodingError("cannot open " + path);
  char magic[4];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    throw EncodingError("bad program file magic in " + path);
  }
  const auto version = readPod<std::uint32_t>(in);
  if (version != kVersion) {
    throw EncodingError("unsupported program file version " +
                        std::to_string(version));
  }
  const auto name_len = readPod<std::uint32_t>(in);
  if (name_len > 4096) throw EncodingError("implausible program name length");
  std::string name(name_len, '\0');
  in.read(name.data(), name_len);
  if (!in) throw EncodingError("program file truncated");
  const auto count = readPod<std::uint64_t>(in);
  std::vector<std::uint64_t> words;
  words.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    words.push_back(readPod<std::uint64_t>(in));
  }
  return decodeProgram(std::move(name), words);
}

}  // namespace hht::isa
