#include "isa/opcodes.h"

namespace hht::isa {

const char* mnemonic(Opcode op) {
  switch (op) {
#define HHT_X(name, mnem, cls) \
  case Opcode::name:           \
    return mnem;
    HHT_OPCODE_LIST(HHT_X)
#undef HHT_X
  }
  return "<bad>";
}

InstrClass instrClass(Opcode op) {
  switch (op) {
#define HHT_X(name, mnem, cls) \
  case Opcode::name:           \
    return InstrClass::cls;
    HHT_OPCODE_LIST(HHT_X)
#undef HHT_X
  }
  return InstrClass::Sys;
}

bool isMemory(Opcode op) {
  switch (instrClass(op)) {
    case InstrClass::Load:
    case InstrClass::Store:
    case InstrClass::FpLoad:
    case InstrClass::FpStore:
    case InstrClass::VecLoad:
    case InstrClass::VecStore:
    case InstrClass::VecGather:
      return true;
    default:
      return false;
  }
}

bool isVector(Opcode op) {
  switch (instrClass(op)) {
    case InstrClass::VecCfg:
    case InstrClass::VecLoad:
    case InstrClass::VecStore:
    case InstrClass::VecGather:
    case InstrClass::VecAlu:
    case InstrClass::VecFp:
    case InstrClass::VecRed:
    case InstrClass::VecMove:
      return true;
    default:
      return false;
  }
}

}  // namespace hht::isa
