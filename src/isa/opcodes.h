#pragma once

#include <cstdint>

namespace hht::isa {

/// Functional class of an instruction; the CPU timing model assigns
/// latencies per class (cpu/timing.h), mirroring the paper's "multi-cycle
/// instruction latency" Spike extension.
enum class InstrClass : std::uint8_t {
  IntAlu,    ///< single-cycle integer ALU
  IntMul,    ///< integer multiply
  IntDiv,    ///< integer divide/remainder
  Load,      ///< scalar integer load (goes to the memory system)
  Store,     ///< scalar integer store
  Branch,    ///< conditional branch
  Jump,      ///< jal/jalr
  FpAlu,     ///< FP add/sub/min/max/compare/sign ops
  FpMul,     ///< FP multiply
  FpMulAdd,  ///< fused multiply-add
  FpDiv,     ///< FP divide
  FpLoad,    ///< flw
  FpStore,   ///< fsw
  FpMove,    ///< int<->fp moves and conversions
  VecCfg,    ///< vsetvli
  VecLoad,   ///< unit-stride vector load
  VecStore,  ///< unit-stride vector store
  VecGather, ///< indexed vector load (vluxei32) — the metadata access
  VecAlu,    ///< vector integer ops
  VecFp,     ///< vector FP arithmetic (Table 1: 4-cycle, non-pipelined)
  VecRed,    ///< vector reduction
  VecMove,   ///< vector<->scalar moves / splats
  Sys,       ///< ecall, nop, csr reads
};

/// X-macro master table: X(enumerator, mnemonic, class).
/// Operand roles follow RISC-V conventions for the analogous instruction;
/// `imm` holds the immediate, or the resolved target instruction index for
/// branches/jumps.
#define HHT_OPCODE_LIST(X)                         \
  /* integer register-register */                  \
  X(ADD, "add", IntAlu)                            \
  X(SUB, "sub", IntAlu)                            \
  X(SLL, "sll", IntAlu)                            \
  X(SLT, "slt", IntAlu)                            \
  X(SLTU, "sltu", IntAlu)                          \
  X(XOR, "xor", IntAlu)                            \
  X(SRL, "srl", IntAlu)                            \
  X(SRA, "sra", IntAlu)                            \
  X(OR, "or", IntAlu)                              \
  X(AND, "and", IntAlu)                            \
  X(MUL, "mul", IntMul)                            \
  X(MULH, "mulh", IntMul)                          \
  X(MULHU, "mulhu", IntMul)                        \
  X(DIV, "div", IntDiv)                            \
  X(DIVU, "divu", IntDiv)                          \
  X(REM, "rem", IntDiv)                            \
  X(REMU, "remu", IntDiv)                          \
  /* integer immediate */                          \
  X(ADDI, "addi", IntAlu)                          \
  X(SLTI, "slti", IntAlu)                          \
  X(SLTIU, "sltiu", IntAlu)                        \
  X(XORI, "xori", IntAlu)                          \
  X(ORI, "ori", IntAlu)                            \
  X(ANDI, "andi", IntAlu)                          \
  X(SLLI, "slli", IntAlu)                          \
  X(SRLI, "srli", IntAlu)                          \
  X(SRAI, "srai", IntAlu)                          \
  X(LUI, "lui", IntAlu)                            \
  /* scalar memory */                              \
  X(LB, "lb", Load)                                \
  X(LH, "lh", Load)                                \
  X(LW, "lw", Load)                                \
  X(LBU, "lbu", Load)                              \
  X(LHU, "lhu", Load)                              \
  X(SB, "sb", Store)                               \
  X(SH, "sh", Store)                               \
  X(SW, "sw", Store)                               \
  /* control flow */                               \
  X(BEQ, "beq", Branch)                            \
  X(BNE, "bne", Branch)                            \
  X(BLT, "blt", Branch)                            \
  X(BGE, "bge", Branch)                            \
  X(BLTU, "bltu", Branch)                          \
  X(BGEU, "bgeu", Branch)                          \
  X(JAL, "jal", Jump)                              \
  X(JALR, "jalr", Jump)                            \
  /* single-precision FP */                        \
  X(FLW, "flw", FpLoad)                            \
  X(FSW, "fsw", FpStore)                           \
  X(FADD_S, "fadd.s", FpAlu)                       \
  X(FSUB_S, "fsub.s", FpAlu)                       \
  X(FMUL_S, "fmul.s", FpMul)                       \
  X(FDIV_S, "fdiv.s", FpDiv)                       \
  X(FMIN_S, "fmin.s", FpAlu)                       \
  X(FMAX_S, "fmax.s", FpAlu)                       \
  X(FMADD_S, "fmadd.s", FpMulAdd)                  \
  X(FMSUB_S, "fmsub.s", FpMulAdd)                  \
  X(FSGNJ_S, "fsgnj.s", FpAlu)                     \
  X(FEQ_S, "feq.s", FpAlu)                         \
  X(FLT_S, "flt.s", FpAlu)                         \
  X(FLE_S, "fle.s", FpAlu)                         \
  X(FMV_W_X, "fmv.w.x", FpMove)                    \
  X(FMV_X_W, "fmv.x.w", FpMove)                    \
  X(FCVT_S_W, "fcvt.s.w", FpMove)                  \
  X(FCVT_W_S, "fcvt.w.s", FpMove)                  \
  /* vector extension (paper: VL up to 8, SEW=32) */ \
  X(VSETVLI, "vsetvli", VecCfg)                    \
  X(VLE32, "vle32.v", VecLoad)                     \
  X(VSE32, "vse32.v", VecStore)                    \
  X(VLUXEI32, "vluxei32.v", VecGather)             \
  X(VADD_VV, "vadd.vv", VecAlu)                    \
  X(VMUL_VV, "vmul.vv", VecAlu)                    \
  X(VSLL_VI, "vsll.vi", VecAlu)                    \
  X(VAND_VV, "vand.vv", VecAlu)                    \
  X(VFADD_VV, "vfadd.vv", VecFp)                   \
  X(VFSUB_VV, "vfsub.vv", VecFp)                   \
  X(VFMUL_VV, "vfmul.vv", VecFp)                   \
  X(VFMACC_VV, "vfmacc.vv", VecFp)                 \
  X(VFREDOSUM, "vfredosum.vs", VecRed)             \
  X(VMV_V_I, "vmv.v.i", VecMove)                   \
  X(VMV_V_X, "vmv.v.x", VecMove)                   \
  X(VFMV_F_S, "vfmv.f.s", VecMove)                 \
  X(VFMV_S_F, "vfmv.s.f", VecMove)                 \
  /* system */                                     \
  X(NOP, "nop", Sys)                               \
  X(ECALL, "ecall", Sys)                           \
  X(CSRR_CYCLE, "csrr.cycle", Sys)

enum class Opcode : std::uint8_t {
#define HHT_X(name, mnemonic, cls) name,
  HHT_OPCODE_LIST(HHT_X)
#undef HHT_X
};

inline constexpr int kNumOpcodes = []() {
  int n = 0;
#define HHT_X(name, mnemonic, cls) ++n;
  HHT_OPCODE_LIST(HHT_X)
#undef HHT_X
  return n;
}();

const char* mnemonic(Opcode op);
InstrClass instrClass(Opcode op);

inline bool isBranch(Opcode op) { return instrClass(op) == InstrClass::Branch; }
inline bool isJump(Opcode op) { return instrClass(op) == InstrClass::Jump; }
inline bool isControlFlow(Opcode op) { return isBranch(op) || isJump(op); }
bool isMemory(Opcode op);
bool isVector(Opcode op);

}  // namespace hht::isa
