#pragma once

#include <cstdint>
#include <string>

#include "isa/opcodes.h"

namespace hht::isa {

/// Architectural register counts (RV32-style: 32 integer, 32 FP; the vector
/// file follows RVV's 32 names though kernels use only a handful).
inline constexpr int kNumXRegs = 32;
inline constexpr int kNumFRegs = 32;
inline constexpr int kNumVRegs = 32;
/// Hardware maximum vector length in 32-bit elements (Table 1: VL = 8).
inline constexpr int kMaxVl = 8;

using Reg = std::uint8_t;

/// RISC-V ABI aliases for readability in kernel builders.
namespace reg {
inline constexpr Reg zero = 0, ra = 1, sp = 2, gp = 3, tp = 4;
inline constexpr Reg t0 = 5, t1 = 6, t2 = 7;
inline constexpr Reg s0 = 8, s1 = 9;
inline constexpr Reg a0 = 10, a1 = 11, a2 = 12, a3 = 13, a4 = 14, a5 = 15,
                     a6 = 16, a7 = 17;
inline constexpr Reg s2 = 18, s3 = 19, s4 = 20, s5 = 21, s6 = 22, s7 = 23,
                     s8 = 24, s9 = 25, s10 = 26, s11 = 27;
inline constexpr Reg t3 = 28, t4 = 29, t5 = 30, t6 = 31;
// FP registers (separate file; same indices namespace).
inline constexpr Reg ft0 = 0, ft1 = 1, ft2 = 2, ft3 = 3;
inline constexpr Reg fs0 = 8, fs1 = 9;
inline constexpr Reg fa0 = 10, fa1 = 11, fa2 = 12;
// Vector registers.
inline constexpr Reg v0 = 0, v1 = 1, v2 = 2, v3 = 3, v4 = 4, v5 = 5, v6 = 6,
                     v7 = 7, v8 = 8;
}  // namespace reg

/// One decoded instruction. Fields are interpreted per opcode, following the
/// analogous RISC-V instruction's operand roles:
///   rd  — destination (x, f or v file per opcode)
///   rs1 — first source / base address register
///   rs2 — second source / store data / index vector
///   rs3 — third source (fmadd family)
///   imm — immediate; for Branch/JAL it is the *absolute target instruction
///         index* after label resolution (the simulator's PC is an index).
struct Instr {
  Opcode op = Opcode::NOP;
  Reg rd = 0;
  Reg rs1 = 0;
  Reg rs2 = 0;
  Reg rs3 = 0;
  std::int32_t imm = 0;

  friend bool operator==(const Instr&, const Instr&) = default;
};

/// Human-readable rendering, e.g. "addi t0, t0, 4" or "beq t0, t1, @12".
std::string disassemble(const Instr& instr);

}  // namespace hht::isa
