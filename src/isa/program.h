#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "isa/isa.h"

namespace hht::isa {

/// A fully-resolved instruction sequence. PC is an index into code().
class Program {
 public:
  Program() = default;
  Program(std::string name, std::vector<Instr> code)
      : name_(std::move(name)), code_(std::move(code)) {}

  const std::string& name() const { return name_; }
  const std::vector<Instr>& code() const { return code_; }
  std::size_t size() const { return code_.size(); }
  const Instr& at(std::size_t pc) const { return code_.at(pc); }

  /// Full listing with addresses, for debugging and documentation.
  std::string listing() const;

 private:
  std::string name_;
  std::vector<Instr> code_;
};

class AssemblerError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Forward-reference-capable label handle issued by ProgramBuilder.
struct Label {
  std::int32_t id = -1;
};

/// Fluent assembler for simulator kernels.
///
/// Usage:
///   ProgramBuilder b("spmv");
///   Label loop = b.newLabel();
///   b.bind(loop);
///   b.lw(t0, a0, 0).addi(a0, a0, 4).bne(t0, zero, loop).ecall();
///   Program p = b.build();  // resolves labels, validates operands
class ProgramBuilder {
 public:
  explicit ProgramBuilder(std::string name) : name_(std::move(name)) {}

  Label newLabel();
  /// Bind `label` to the *next* emitted instruction.
  void bind(Label label);

  // --- integer ---
  ProgramBuilder& add(Reg rd, Reg rs1, Reg rs2) { return r3(Opcode::ADD, rd, rs1, rs2); }
  ProgramBuilder& sub(Reg rd, Reg rs1, Reg rs2) { return r3(Opcode::SUB, rd, rs1, rs2); }
  ProgramBuilder& sll(Reg rd, Reg rs1, Reg rs2) { return r3(Opcode::SLL, rd, rs1, rs2); }
  ProgramBuilder& slt(Reg rd, Reg rs1, Reg rs2) { return r3(Opcode::SLT, rd, rs1, rs2); }
  ProgramBuilder& sltu(Reg rd, Reg rs1, Reg rs2) { return r3(Opcode::SLTU, rd, rs1, rs2); }
  ProgramBuilder& xor_(Reg rd, Reg rs1, Reg rs2) { return r3(Opcode::XOR, rd, rs1, rs2); }
  ProgramBuilder& srl(Reg rd, Reg rs1, Reg rs2) { return r3(Opcode::SRL, rd, rs1, rs2); }
  ProgramBuilder& sra(Reg rd, Reg rs1, Reg rs2) { return r3(Opcode::SRA, rd, rs1, rs2); }
  ProgramBuilder& or_(Reg rd, Reg rs1, Reg rs2) { return r3(Opcode::OR, rd, rs1, rs2); }
  ProgramBuilder& and_(Reg rd, Reg rs1, Reg rs2) { return r3(Opcode::AND, rd, rs1, rs2); }
  ProgramBuilder& mul(Reg rd, Reg rs1, Reg rs2) { return r3(Opcode::MUL, rd, rs1, rs2); }
  ProgramBuilder& mulh(Reg rd, Reg rs1, Reg rs2) { return r3(Opcode::MULH, rd, rs1, rs2); }
  ProgramBuilder& mulhu(Reg rd, Reg rs1, Reg rs2) { return r3(Opcode::MULHU, rd, rs1, rs2); }
  ProgramBuilder& div(Reg rd, Reg rs1, Reg rs2) { return r3(Opcode::DIV, rd, rs1, rs2); }
  ProgramBuilder& divu(Reg rd, Reg rs1, Reg rs2) { return r3(Opcode::DIVU, rd, rs1, rs2); }
  ProgramBuilder& rem(Reg rd, Reg rs1, Reg rs2) { return r3(Opcode::REM, rd, rs1, rs2); }
  ProgramBuilder& remu(Reg rd, Reg rs1, Reg rs2) { return r3(Opcode::REMU, rd, rs1, rs2); }

  ProgramBuilder& addi(Reg rd, Reg rs1, std::int32_t imm) { return ri(Opcode::ADDI, rd, rs1, imm); }
  ProgramBuilder& slti(Reg rd, Reg rs1, std::int32_t imm) { return ri(Opcode::SLTI, rd, rs1, imm); }
  ProgramBuilder& sltiu(Reg rd, Reg rs1, std::int32_t imm) { return ri(Opcode::SLTIU, rd, rs1, imm); }
  ProgramBuilder& xori(Reg rd, Reg rs1, std::int32_t imm) { return ri(Opcode::XORI, rd, rs1, imm); }
  ProgramBuilder& ori(Reg rd, Reg rs1, std::int32_t imm) { return ri(Opcode::ORI, rd, rs1, imm); }
  ProgramBuilder& andi(Reg rd, Reg rs1, std::int32_t imm) { return ri(Opcode::ANDI, rd, rs1, imm); }
  ProgramBuilder& slli(Reg rd, Reg rs1, std::int32_t shamt) { return ri(Opcode::SLLI, rd, rs1, shamt); }
  ProgramBuilder& srli(Reg rd, Reg rs1, std::int32_t shamt) { return ri(Opcode::SRLI, rd, rs1, shamt); }
  ProgramBuilder& srai(Reg rd, Reg rs1, std::int32_t shamt) { return ri(Opcode::SRAI, rd, rs1, shamt); }
  ProgramBuilder& lui(Reg rd, std::int32_t imm20) { return ri(Opcode::LUI, rd, 0, imm20); }
  ProgramBuilder& mv(Reg rd, Reg rs1) { return addi(rd, rs1, 0); }
  ProgramBuilder& li(Reg rd, std::int32_t value);  ///< lui+addi expansion

  // --- scalar memory (imm = byte offset from x[rs1]) ---
  ProgramBuilder& lb(Reg rd, Reg rs1, std::int32_t off) { return ri(Opcode::LB, rd, rs1, off); }
  ProgramBuilder& lh(Reg rd, Reg rs1, std::int32_t off) { return ri(Opcode::LH, rd, rs1, off); }
  ProgramBuilder& lw(Reg rd, Reg rs1, std::int32_t off) { return ri(Opcode::LW, rd, rs1, off); }
  ProgramBuilder& lbu(Reg rd, Reg rs1, std::int32_t off) { return ri(Opcode::LBU, rd, rs1, off); }
  ProgramBuilder& lhu(Reg rd, Reg rs1, std::int32_t off) { return ri(Opcode::LHU, rd, rs1, off); }
  ProgramBuilder& sb(Reg rs2, Reg rs1, std::int32_t off) { return st(Opcode::SB, rs2, rs1, off); }
  ProgramBuilder& sh(Reg rs2, Reg rs1, std::int32_t off) { return st(Opcode::SH, rs2, rs1, off); }
  ProgramBuilder& sw(Reg rs2, Reg rs1, std::int32_t off) { return st(Opcode::SW, rs2, rs1, off); }

  // --- control flow ---
  ProgramBuilder& beq(Reg rs1, Reg rs2, Label target) { return br(Opcode::BEQ, rs1, rs2, target); }
  ProgramBuilder& bne(Reg rs1, Reg rs2, Label target) { return br(Opcode::BNE, rs1, rs2, target); }
  ProgramBuilder& blt(Reg rs1, Reg rs2, Label target) { return br(Opcode::BLT, rs1, rs2, target); }
  ProgramBuilder& bge(Reg rs1, Reg rs2, Label target) { return br(Opcode::BGE, rs1, rs2, target); }
  ProgramBuilder& bltu(Reg rs1, Reg rs2, Label target) { return br(Opcode::BLTU, rs1, rs2, target); }
  ProgramBuilder& bgeu(Reg rs1, Reg rs2, Label target) { return br(Opcode::BGEU, rs1, rs2, target); }
  ProgramBuilder& beqz(Reg rs1, Label target) { return beq(rs1, 0, target); }
  ProgramBuilder& bnez(Reg rs1, Label target) { return bne(rs1, 0, target); }
  ProgramBuilder& jal(Reg rd, Label target);
  ProgramBuilder& j(Label target) { return jal(0, target); }
  ProgramBuilder& jalr(Reg rd, Reg rs1, std::int32_t imm) { return ri(Opcode::JALR, rd, rs1, imm); }
  ProgramBuilder& ret() { return jalr(0, reg::ra, 0); }

  // --- FP ---
  ProgramBuilder& flw(Reg fd, Reg rs1, std::int32_t off) { return ri(Opcode::FLW, fd, rs1, off); }
  ProgramBuilder& fsw(Reg fs2, Reg rs1, std::int32_t off) { return st(Opcode::FSW, fs2, rs1, off); }
  ProgramBuilder& fadd(Reg fd, Reg fs1, Reg fs2) { return r3(Opcode::FADD_S, fd, fs1, fs2); }
  ProgramBuilder& fsub(Reg fd, Reg fs1, Reg fs2) { return r3(Opcode::FSUB_S, fd, fs1, fs2); }
  ProgramBuilder& fmul(Reg fd, Reg fs1, Reg fs2) { return r3(Opcode::FMUL_S, fd, fs1, fs2); }
  ProgramBuilder& fdiv(Reg fd, Reg fs1, Reg fs2) { return r3(Opcode::FDIV_S, fd, fs1, fs2); }
  ProgramBuilder& fmin(Reg fd, Reg fs1, Reg fs2) { return r3(Opcode::FMIN_S, fd, fs1, fs2); }
  ProgramBuilder& fmax(Reg fd, Reg fs1, Reg fs2) { return r3(Opcode::FMAX_S, fd, fs1, fs2); }
  /// fd = fs1 * fs2 + fs3
  ProgramBuilder& fmadd(Reg fd, Reg fs1, Reg fs2, Reg fs3) { return r4(Opcode::FMADD_S, fd, fs1, fs2, fs3); }
  ProgramBuilder& fmsub(Reg fd, Reg fs1, Reg fs2, Reg fs3) { return r4(Opcode::FMSUB_S, fd, fs1, fs2, fs3); }
  ProgramBuilder& fsgnj(Reg fd, Reg fs1, Reg fs2) { return r3(Opcode::FSGNJ_S, fd, fs1, fs2); }
  ProgramBuilder& fmv(Reg fd, Reg fs1) { return fsgnj(fd, fs1, fs1); }
  ProgramBuilder& feq(Reg rd, Reg fs1, Reg fs2) { return r3(Opcode::FEQ_S, rd, fs1, fs2); }
  ProgramBuilder& flt(Reg rd, Reg fs1, Reg fs2) { return r3(Opcode::FLT_S, rd, fs1, fs2); }
  ProgramBuilder& fle(Reg rd, Reg fs1, Reg fs2) { return r3(Opcode::FLE_S, rd, fs1, fs2); }
  ProgramBuilder& fmvWX(Reg fd, Reg rs1) { return r3(Opcode::FMV_W_X, fd, rs1, 0); }
  ProgramBuilder& fmvXW(Reg rd, Reg fs1) { return r3(Opcode::FMV_X_W, rd, fs1, 0); }
  ProgramBuilder& fcvtSW(Reg fd, Reg rs1) { return r3(Opcode::FCVT_S_W, fd, rs1, 0); }
  ProgramBuilder& fcvtWS(Reg rd, Reg fs1) { return r3(Opcode::FCVT_W_S, rd, fs1, 0); }

  // --- vector ---
  /// x[rd] = vl = min(kMaxVl hardware limit, x[rs1]); also sets active VL.
  ProgramBuilder& vsetvli(Reg rd, Reg rs1) { return r3(Opcode::VSETVLI, rd, rs1, 0); }
  ProgramBuilder& vle32(Reg vd, Reg rs1) { return r3(Opcode::VLE32, vd, rs1, 0); }
  ProgramBuilder& vse32(Reg vs3, Reg rs1) { return st(Opcode::VSE32, vs3, rs1, 0); }
  /// Gather: vd[i] = mem32[x[rs1] + v[vs2][i]] (byte offsets, like RVV).
  ProgramBuilder& vluxei32(Reg vd, Reg rs1, Reg vs2) { return r3(Opcode::VLUXEI32, vd, rs1, vs2); }
  ProgramBuilder& vaddVV(Reg vd, Reg vs1, Reg vs2) { return r3(Opcode::VADD_VV, vd, vs1, vs2); }
  ProgramBuilder& vmulVV(Reg vd, Reg vs1, Reg vs2) { return r3(Opcode::VMUL_VV, vd, vs1, vs2); }
  ProgramBuilder& vsllVI(Reg vd, Reg vs1, std::int32_t shamt) { return ri(Opcode::VSLL_VI, vd, vs1, shamt); }
  ProgramBuilder& vandVV(Reg vd, Reg vs1, Reg vs2) { return r3(Opcode::VAND_VV, vd, vs1, vs2); }
  ProgramBuilder& vfaddVV(Reg vd, Reg vs1, Reg vs2) { return r3(Opcode::VFADD_VV, vd, vs1, vs2); }
  ProgramBuilder& vfsubVV(Reg vd, Reg vs1, Reg vs2) { return r3(Opcode::VFSUB_VV, vd, vs1, vs2); }
  ProgramBuilder& vfmulVV(Reg vd, Reg vs1, Reg vs2) { return r3(Opcode::VFMUL_VV, vd, vs1, vs2); }
  /// vd[i] += vs1[i] * vs2[i]
  ProgramBuilder& vfmaccVV(Reg vd, Reg vs1, Reg vs2) { return r3(Opcode::VFMACC_VV, vd, vs1, vs2); }
  /// vd[0] = vs1[0] + sum(vs2[0..vl))   (ordered sum, like RVV vfredosum)
  ProgramBuilder& vfredosum(Reg vd, Reg vs2, Reg vs1) { return r3(Opcode::VFREDOSUM, vd, vs2, vs1); }
  ProgramBuilder& vmvVI(Reg vd, std::int32_t imm) { return ri(Opcode::VMV_V_I, vd, 0, imm); }
  ProgramBuilder& vmvVX(Reg vd, Reg rs1) { return r3(Opcode::VMV_V_X, vd, rs1, 0); }
  ProgramBuilder& vfmvFS(Reg fd, Reg vs1) { return r3(Opcode::VFMV_F_S, fd, vs1, 0); }
  ProgramBuilder& vfmvSF(Reg vd, Reg fs1) { return r3(Opcode::VFMV_S_F, vd, fs1, 0); }

  // --- system ---
  ProgramBuilder& nop() { return emit({Opcode::NOP, 0, 0, 0, 0, 0}); }
  ProgramBuilder& ecall() { return emit({Opcode::ECALL, 0, 0, 0, 0, 0}); }
  ProgramBuilder& csrrCycle(Reg rd) { return r3(Opcode::CSRR_CYCLE, rd, 0, 0); }

  std::size_t nextPc() const { return code_.size(); }

  /// Resolve labels and validate; throws AssemblerError on unbound labels or
  /// bad register indices.
  Program build();

 private:
  ProgramBuilder& emit(Instr instr);
  ProgramBuilder& r3(Opcode op, Reg rd, Reg rs1, Reg rs2) {
    return emit({op, rd, rs1, rs2, 0, 0});
  }
  ProgramBuilder& r4(Opcode op, Reg rd, Reg rs1, Reg rs2, Reg rs3) {
    return emit({op, rd, rs1, rs2, rs3, 0});
  }
  ProgramBuilder& ri(Opcode op, Reg rd, Reg rs1, std::int32_t imm) {
    return emit({op, rd, rs1, 0, 0, imm});
  }
  /// Store-style: rs2 is the data register, rs1 the base.
  ProgramBuilder& st(Opcode op, Reg rs2, Reg rs1, std::int32_t imm) {
    return emit({op, 0, rs1, rs2, 0, imm});
  }
  ProgramBuilder& br(Opcode op, Reg rs1, Reg rs2, Label target);

  std::string name_;
  std::vector<Instr> code_;
  std::vector<std::int32_t> label_pc_;              ///< -1 while unbound
  std::vector<std::pair<std::size_t, std::int32_t>> patches_;  ///< (pc, label)
};

}  // namespace hht::isa
