#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <vector>

#include "isa/program.h"

namespace hht::isa {

class EncodingError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Binary trace-word format for programs.
///
/// Each instruction packs into one 64-bit little-endian word:
///   [63:56] opcode   [55:50] rd   [49:44] rs1   [43:38] rs2   [37:32] rs3
///   [31:0]  imm (two's complement)
/// This is the simulator's on-disk/program-memory form (we do not mimic the
/// RV32 bit layout: the simulated core is RISC-V *flavoured*, and a regular
/// fixed-field encoding keeps the decoder and its tests honest and total).
std::uint64_t encode(const Instr& instr);
Instr decode(std::uint64_t word);  ///< throws EncodingError on bad opcode/regs

std::vector<std::uint64_t> encodeProgram(const Program& program);
Program decodeProgram(std::string name, std::span<const std::uint64_t> words);

/// Program image file: magic "HHTP", u32 version, u32 name length, name
/// bytes, u64 word count, trace words. Little-endian throughout. Lets
/// kernels and firmware be shipped/inspected outside the process.
void saveProgramFile(const std::string& path, const Program& program);
Program loadProgramFile(const std::string& path);  ///< throws EncodingError

}  // namespace hht::isa
