#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "obs/trace.h"
#include "sim/stats.h"
#include "sim/types.h"

namespace hht::obs {

/// Stall-attribution summary folded from a trace stream.
///
/// Invariant (tested in tests/test_profile.cc): for every component,
/// `componentTotal() == horizon` — the per-bucket cycle counts partition the
/// run exactly, with cycles outside any emitted span attributed to
/// kBucketDrained. Event tallies reconcile exactly with the fig6/fig7
/// counters because their emit sites are the counter bump sites:
/// `fifo_not_ready == hht.cpu_wait_cycles`,
/// `fifo_full == hht.stall_buffers_full`, `mem_grants == mem.grants`,
/// per-requester conflict sums == `mem.*.conflict_cycles`.
struct ProfileReport {
  sim::Cycle horizon = 0;  ///< total simulated cycles (from kRunEnd)

  /// bucket_cycles[component][bucket] — cycles spent per bucket.
  std::array<std::array<std::uint64_t, kNumBuckets>, kNumComponents>
      bucket_cycles{};

  /// Instruction retires per component (primary core vs micro core).
  std::array<std::uint64_t, kNumComponents> retires{};

  std::uint64_t fifo_pops = 0;
  std::uint64_t fifo_pushes = 0;      ///< slots drained FE-ward (sum of a)
  std::uint64_t fifo_not_ready = 0;   ///< == hht.cpu_wait_cycles
  std::uint64_t fifo_full = 0;        ///< == hht.stall_buffers_full
  std::uint64_t mem_grants = 0;       ///< == mem.grants (demand only)
  std::uint64_t mem_conflict_cpu = 0; ///< == mem.cpu.conflict_cycles
  std::uint64_t mem_conflict_hht = 0; ///< == mem.hht.conflict_cycles
  /// Patrol-scrubber reads (kScrubGrant, its own requester class):
  /// == mem.scrub.reads. Kept apart from mem_grants so the demand-grant
  /// reconciliation above survives with scrubbing enabled.
  std::uint64_t scrub_grants = 0;
  std::uint64_t scrub_corrected = 0;  ///< patrol reads that fixed a flip
  /// HHT stride-prefetcher activity (kHhtPrefetch, spare-slot fills —
  /// like the scrubber, never part of mem_grants): issued predictions and
  /// completed L1 fills. == hht.prefetch.issued / fills installed.
  std::uint64_t hht_prefetch_issued = 0;
  std::uint64_t hht_prefetch_fills = 0;
  /// Chunk-queue claims (kWqClaim, DESIGN.md §18): == mem.wq.grants /
  /// mem.wq.steals. Like the scrubber and prefetcher, never part of
  /// mem_grants — the queue answers through its MMIO window.
  std::uint64_t wq_grants = 0;
  std::uint64_t wq_steals = 0;
  std::uint64_t mmr_writes = 0;
  std::uint64_t engine_rows_done = 0;
  std::uint64_t engine_emit_stalls = 0;
  std::uint64_t fw_space_waits = 0;   ///< == hht.fw_space_wait_cycles
  std::uint64_t fw_pushes = 0;
  std::uint64_t fw_row_ends = 0;
  std::uint64_t dropped = 0;  ///< ring overwrites: report covers a suffix

  /// Interval histograms of span lengths, one per component+bucket
  /// ("cpu.fifo_wait_span_cycles", ...), log2-bucketed in a StatSet.
  sim::StatSet spans;

  std::uint64_t bucketCycles(Component c, std::uint8_t bucket) const {
    return bucket_cycles[static_cast<std::size_t>(c)][bucket];
  }

  /// Sum of all buckets for one component; equals `horizon` by invariant.
  std::uint64_t componentTotal(Component c) const;

  /// Human-readable per-component breakdown table (cycles and percent).
  std::string table() const;
};

/// Fold a trace stream into the stall-attribution report. Requires the
/// stream to carry a kRunEnd event (emitted by harness::System::run when a
/// sink is attached); without one the horizon falls back to the last event
/// cycle + 1.
ProfileReport profile(const TraceSink& sink);

}  // namespace hht::obs
