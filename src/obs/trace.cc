#include "obs/trace.h"

namespace hht::obs {

std::string_view categoryName(std::uint32_t category_bit) {
  switch (category_bit) {
    case bit(Category::kCpu): return "cpu";
    case bit(Category::kMem): return "mem";
    case bit(Category::kFifo): return "fifo";
    case bit(Category::kPipe): return "pipe";
    case bit(Category::kMmr): return "mmr";
    case bit(Category::kSystem): return "system";
    case bit(Category::kScrub): return "scrub";
    case bit(Category::kWq): return "wq";
    default: return "unknown";
  }
}

std::string_view componentName(Component c) {
  switch (c) {
    case Component::kSystem: return "system";
    case Component::kCpu: return "cpu";
    case Component::kMem: return "mem";
    case Component::kHhtFe: return "hht_fe";
    case Component::kHhtBe: return "hht_be";
    case Component::kMicroCore: return "micro_core";
    default: return "unknown";
  }
}

std::string_view kindName(EventKind k) {
  switch (k) {
    case EventKind::kPhase: return "phase";
    case EventKind::kRetire: return "retire";
    case EventKind::kMemGrant: return "mem_grant";
    case EventKind::kMemConflict: return "mem_conflict";
    case EventKind::kFifoPush: return "fifo_push";
    case EventKind::kFifoPop: return "fifo_pop";
    case EventKind::kFifoNotReady: return "fifo_not_ready";
    case EventKind::kFifoFull: return "fifo_full";
    case EventKind::kMmrWrite: return "mmr_write";
    case EventKind::kEngineRowDone: return "engine_row_done";
    case EventKind::kEngineEmitStall: return "engine_emit_stall";
    case EventKind::kFwSpaceWait: return "fw_space_wait";
    case EventKind::kFwPush: return "fw_push";
    case EventKind::kFwRowEnd: return "fw_row_end";
    case EventKind::kRunEnd: return "run_end";
    case EventKind::kScrubGrant: return "scrub_grant";
    case EventKind::kHhtPrefetch: return "hht_prefetch";
    case EventKind::kWqClaim: return "wq_claim";
    default: return "unknown";
  }
}

std::string_view bucketName(std::uint8_t bucket) {
  switch (bucket) {
    case kBucketCompute: return "compute";
    case kBucketFifoWait: return "fifo_wait";
    case kBucketMemWait: return "mem_wait";
    case kBucketActive: return "active";
    case kBucketDrained: return "drained";
    case kBucketQueueWait: return "queue_wait";
    default: return "unknown";
  }
}

std::optional<std::uint32_t> parseCategoryList(std::string_view list) {
  std::uint32_t mask = 0;
  while (!list.empty()) {
    const std::size_t comma = list.find(',');
    const std::string_view name = list.substr(0, comma);
    if (name == "all") {
      mask |= kAllCategories;
    } else if (name == "cpu") {
      mask |= bit(Category::kCpu);
    } else if (name == "mem") {
      mask |= bit(Category::kMem);
    } else if (name == "fifo") {
      mask |= bit(Category::kFifo);
    } else if (name == "pipe") {
      mask |= bit(Category::kPipe);
    } else if (name == "mmr") {
      mask |= bit(Category::kMmr);
    } else if (name == "system") {
      mask |= bit(Category::kSystem);
    } else if (name == "scrub") {
      mask |= bit(Category::kScrub);
    } else if (name == "wq") {
      mask |= bit(Category::kWq);
    } else {
      return std::nullopt;
    }
    if (comma == std::string_view::npos) break;
    list.remove_prefix(comma + 1);
  }
  return mask;
}

}  // namespace hht::obs
