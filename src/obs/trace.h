#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

#include "sim/types.h"

namespace hht::obs {

/// Event categories, one bit each so a sink can subscribe to a subset
/// (`--trace-categories=cpu,fifo`). An emit site pays one pointer test plus
/// one mask AND when a sink is attached, and only the pointer test when not.
enum class Category : std::uint32_t {
  kCpu = 1u << 0,     ///< core phase transitions + retires
  kMem = 1u << 1,     ///< arbitration grants, bank conflicts, queue depth
  kFifo = 1u << 2,    ///< HHT FE: FIFO push/pop/not-ready/full
  kPipe = 1u << 3,    ///< HHT BE: device/engine occupancy, rows, emit stalls
  kMmr = 1u << 4,     ///< MMR writes
  kSystem = 1u << 5,  ///< run horizon markers
  kScrub = 1u << 6,   ///< memory patrol-scrubber reads (DESIGN.md §15)
  kWq = 1u << 7,      ///< shared work-queue chunk claims (DESIGN.md §18)
};

inline constexpr std::uint32_t kAllCategories = 0xFF;

constexpr std::uint32_t bit(Category c) {
  return static_cast<std::uint32_t>(c);
}

/// Who emitted the event. One trace "thread" per component in the Perfetto
/// export; the profiler keeps one cycle breakdown per component.
enum class Component : std::uint16_t {
  kSystem = 0,
  kCpu,        ///< primary scalar/vector core
  kMem,        ///< shared SRAM + MMIO interconnect
  kHhtFe,      ///< HHT front end (CPU-side buffers, MMRs)
  kHhtBe,      ///< HHT back end (engine pipeline / firmware)
  kMicroCore,  ///< micro-HHT's embedded core
  kCount,
};

inline constexpr std::size_t kNumComponents =
    static_cast<std::size_t>(Component::kCount);

/// Event kinds. Payload meaning of (a, b) per kind:
///   kPhase         a = Bucket the component enters this cycle
///   kRetire        a = pc, b = opcode
///   kMemGrant      a = addr, b = requester | is_write<<1 | queue_depth<<8
///   kMemConflict   a = queued CPU requests passed over, b = queued HHT
///   kFifoPush      a = slots drained from the emission queue this cycle
///   kFifoPop       a = payload bits, b = 1 for the VALID row-end pop
///   kFifoNotReady  a = polled MMR offset (the c_cpu_wait_cycles_ site)
///   kFifoFull      (the c_stall_buffers_full_ site; no payload)
///   kMmrWrite      a = offset, b = value
///   kEngineRowDone a = row index just closed
///   kEngineEmitStall (the engine c_emit_stall_ site; no payload)
///   kFwSpaceWait   firmware polled FW_SPACE and found none
///   kFwPush        a = value bits, b = 1 when pushed via the EOR port
///   kFwRowEnd      firmware closed a row
///   kRunEnd        a = horizon (total simulated cycles this run segment)
///   kScrubGrant    a = patrol word address, b = 0 clean / 1 corrected /
///                  2 uncorrectable (its own kind, NOT kMemGrant: patrol
///                  reads never count toward mem.grants, so the profiler's
///                  mem_grants == mem.grants reconciliation stays exact)
///   kHhtPrefetch   a = predicted line address, b = tile | action<<8 with
///                  action 0 issued / 1 filled / 2 useful (first demand hit)
///                  / 3 late (demand miss beat the fill) / 4 dropped. Like
///                  kScrubGrant, its own kind: prefetch fills use spare
///                  slots and never count toward mem.grants.
///   kWqClaim       a = packed chunk (row_begin<<12 | row_count),
///                  b = claiming tile | stolen<<8. One event per granted
///                  chunk-queue claim; like kScrubGrant, never part of
///                  mem.grants (the queue is an MMIO device).
enum class EventKind : std::uint16_t {
  kPhase = 0,
  kRetire,
  kMemGrant,
  kMemConflict,
  kFifoPush,
  kFifoPop,
  kFifoNotReady,
  kFifoFull,
  kMmrWrite,
  kEngineRowDone,
  kEngineEmitStall,
  kFwSpaceWait,
  kFwPush,
  kFwRowEnd,
  kRunEnd,
  kScrubGrant,
  kHhtPrefetch,
  kWqClaim,
  kCount,
};

/// Stall-attribution buckets carried by kPhase events. The CPU classifies
/// every non-halted cycle as compute / FIFO-wait / memory-wait /
/// queue-wait (a load stalled on the shared work-queue's claim register);
/// devices and the memory system report active / drained. Cycles outside
/// any span (halted CPU tail, pre-start) are implicitly kDrained.
/// kBucketQueueWait is appended after kDrained so the older buckets keep
/// their ids (golden traces stay valid).
enum : std::uint8_t {
  kBucketCompute = 0,
  kBucketFifoWait,
  kBucketMemWait,
  kBucketActive,
  kBucketDrained,
  kBucketQueueWait,
  kNumBuckets,
};

inline constexpr std::uint8_t kNoBucket = 0xFF;

/// One trace record. 32 bytes, POD, stamped with the simulated cycle.
struct TraceEvent {
  sim::Cycle cycle = 0;
  std::uint32_t category = 0;  ///< single Category bit
  Component component = Component::kSystem;
  EventKind kind = EventKind::kPhase;
  std::uint64_t a = 0;
  std::uint64_t b = 0;
};

std::string_view categoryName(std::uint32_t category_bit);
std::string_view componentName(Component c);
std::string_view kindName(EventKind k);
std::string_view bucketName(std::uint8_t bucket);

/// Parse a comma-separated category list ("cpu,fifo,mmr") into a mask.
/// Returns nullopt on an unknown name. "all" selects every category.
std::optional<std::uint32_t> parseCategoryList(std::string_view list);

/// Ring-buffered structured trace sink.
///
/// Determinism contract (DESIGN.md §12): event order and payloads are a
/// pure function of the simulated architectural state, never of host state
/// (no pointers, timestamps or iteration-order artifacts in events), so two
/// runs of the same config+workload produce byte-identical streams, as does
/// any `--jobs` schedule (one sink per task). Attaching a sink forces
/// per-cycle simulation (quiescence fast-forward disables itself) but never
/// changes architectural state: a traced run's results, stats and snapshots
/// are bit-identical to an untraced one.
///
/// When the ring fills, the oldest events are overwritten (newest win) and
/// `dropped()` counts the loss; exporters surface it so a truncated trace is
/// never mistaken for a complete one.
class TraceSink {
 public:
  static constexpr std::size_t kDefaultCapacity = 1u << 20;

  explicit TraceSink(std::size_t capacity = kDefaultCapacity,
                     std::uint32_t category_mask = kAllCategories)
      : mask_(category_mask), capacity_(capacity == 0 ? 1 : capacity) {
    buf_.reserve(std::min<std::size_t>(capacity_, 4096));
  }

  /// Emit-site guard: is anyone listening to this category?
  bool enabled(Category c) const { return (mask_ & bit(c)) != 0; }

  std::uint32_t mask() const { return mask_; }

  void emit(sim::Cycle cycle, Category cat, Component comp, EventKind kind,
            std::uint64_t a = 0, std::uint64_t b = 0) {
    TraceEvent ev{cycle, bit(cat), comp, kind, a, b};
    if (buf_.size() < capacity_) {
      buf_.push_back(ev);
      return;
    }
    buf_[head_] = ev;  // overwrite oldest, keep newest
    head_ = (head_ + 1) % capacity_;
    ++dropped_;
  }

  std::size_t size() const { return buf_.size(); }
  std::uint64_t dropped() const { return dropped_; }

  /// Events oldest -> newest (materializes the ring in order).
  std::vector<TraceEvent> events() const {
    std::vector<TraceEvent> out;
    out.reserve(buf_.size());
    for (std::size_t i = 0; i < buf_.size(); ++i) {
      out.push_back(buf_[(head_ + i) % buf_.size()]);
    }
    return out;
  }

  void clear() {
    buf_.clear();
    head_ = 0;
    dropped_ = 0;
  }

 private:
  std::uint32_t mask_;
  std::size_t capacity_;
  std::size_t head_ = 0;  ///< oldest element once the ring is full
  std::uint64_t dropped_ = 0;
  std::vector<TraceEvent> buf_;
};

}  // namespace hht::obs
