#pragma once

#include <iosfwd>

#include "obs/trace.h"

namespace hht::obs {

/// Write the trace as Chrome/Perfetto trace-event JSON (load via
/// chrome://tracing or ui.perfetto.dev). kPhase spans become "X" complete
/// events (one track per component, dur in cycles-as-microseconds); every
/// other kind becomes an "i" instant event with its payload in args.
/// Deterministic byte output for a deterministic event stream.
void writePerfettoTrace(std::ostream& os, const TraceSink& sink);

/// Write the trace as flat CSV: `cycle,category,component,kind,a,b` rows in
/// emission order. This is the golden-trace format (tests/golden/).
void writeCsvTrace(std::ostream& os, const TraceSink& sink);

}  // namespace hht::obs
