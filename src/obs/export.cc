#include "obs/export.h"

#include <array>
#include <ostream>
#include <vector>

namespace hht::obs {

namespace {

/// Stable Perfetto track id per component (pid 0, tid = component + 1;
/// tid 0 is reserved so tracks sort after process metadata).
int tid(Component c) { return static_cast<int>(c) + 1; }

void writeMeta(std::ostream& os, Component c, bool& first) {
  if (!first) os << ",\n";
  first = false;
  os << R"({"ph":"M","pid":0,"tid":)" << tid(c)
     << R"(,"name":"thread_name","args":{"name":")" << componentName(c)
     << R"("}})";
}

}  // namespace

void writePerfettoTrace(std::ostream& os, const TraceSink& sink) {
  const std::vector<TraceEvent> events = sink.events();

  os << "{\"displayTimeUnit\":\"ms\",\"otherData\":{\"dropped_events\":\""
     << sink.dropped() << "\"},\"traceEvents\":[\n";
  bool first = true;
  for (std::size_t c = 0; c < kNumComponents; ++c) {
    writeMeta(os, static_cast<Component>(c), first);
  }

  // Fold kPhase transitions into complete spans, closed at the run horizon
  // (kRunEnd) or the last event cycle.
  struct OpenSpan {
    sim::Cycle start = 0;
    std::uint8_t bucket = kNoBucket;
  };
  std::array<OpenSpan, kNumComponents> open{};
  sim::Cycle horizon = 0;
  for (const TraceEvent& ev : events) {
    if (ev.kind == EventKind::kRunEnd && ev.a > horizon) horizon = ev.a;
    if (ev.cycle + 1 > horizon) horizon = ev.cycle + 1;
  }

  const auto emitSpan = [&](Component comp, const OpenSpan& span,
                            sim::Cycle end) {
    if (span.bucket == kNoBucket || end <= span.start) return;
    if (!first) os << ",\n";
    first = false;
    os << R"({"ph":"X","pid":0,"tid":)" << tid(comp) << R"(,"name":")"
       << bucketName(span.bucket) << R"(","cat":"phase","ts":)" << span.start
       << R"(,"dur":)" << (end - span.start) << "}";
  };

  for (const TraceEvent& ev : events) {
    const std::size_t ci = static_cast<std::size_t>(ev.component);
    if (ev.kind == EventKind::kPhase) {
      emitSpan(ev.component, open[ci], ev.cycle);
      open[ci] = {ev.cycle, static_cast<std::uint8_t>(ev.a)};
      continue;
    }
    if (!first) os << ",\n";
    first = false;
    os << R"({"ph":"i","s":"t","pid":0,"tid":)" << tid(ev.component)
       << R"(,"name":")" << kindName(ev.kind) << R"(","cat":")"
       << categoryName(ev.category) << R"(","ts":)" << ev.cycle
       << R"(,"args":{"a":)" << ev.a << R"(,"b":)" << ev.b << "}}";
  }
  for (std::size_t c = 0; c < kNumComponents; ++c) {
    emitSpan(static_cast<Component>(c), open[c], horizon);
  }
  os << "\n]}\n";
}

void writeCsvTrace(std::ostream& os, const TraceSink& sink) {
  os << "cycle,category,component,kind,a,b\n";
  for (const TraceEvent& ev : sink.events()) {
    os << ev.cycle << ',' << categoryName(ev.category) << ','
       << componentName(ev.component) << ',' << kindName(ev.kind) << ','
       << ev.a << ',' << ev.b << '\n';
  }
}

}  // namespace hht::obs
