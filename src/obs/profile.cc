#include "obs/profile.h"

#include <cstdio>

namespace hht::obs {

namespace {

std::string spanHistName(Component c, std::uint8_t bucket) {
  std::string name{componentName(c)};
  name += '.';
  name += bucketName(bucket);
  name += "_span_cycles";
  return name;
}

}  // namespace

std::uint64_t ProfileReport::componentTotal(Component c) const {
  std::uint64_t total = 0;
  for (const std::uint64_t v : bucket_cycles[static_cast<std::size_t>(c)]) {
    total += v;
  }
  return total;
}

std::string ProfileReport::table() const {
  std::string out;
  char line[224];
  std::snprintf(line, sizeof(line), "%-11s %12s %12s %12s %12s %12s %12s\n",
                "component", "compute", "fifo_wait", "mem_wait", "queue_wait",
                "active", "drained");
  out += line;
  for (std::size_t c = 0; c < kNumComponents; ++c) {
    const auto& b = bucket_cycles[c];
    std::uint64_t active_total = 0;
    for (std::uint8_t k = 0; k < kNumBuckets; ++k) {
      if (k != kBucketDrained) active_total += b[k];
    }
    if (active_total == 0) continue;  // component absent from this run
    std::snprintf(line, sizeof(line),
                  "%-11s %12llu %12llu %12llu %12llu %12llu %12llu\n",
                  std::string(componentName(static_cast<Component>(c))).c_str(),
                  static_cast<unsigned long long>(b[kBucketCompute]),
                  static_cast<unsigned long long>(b[kBucketFifoWait]),
                  static_cast<unsigned long long>(b[kBucketMemWait]),
                  static_cast<unsigned long long>(b[kBucketQueueWait]),
                  static_cast<unsigned long long>(b[kBucketActive]),
                  static_cast<unsigned long long>(b[kBucketDrained]));
    out += line;
    if (horizon > 0) {
      std::snprintf(
          line, sizeof(line),
          "%-11s %11.1f%% %11.1f%% %11.1f%% %11.1f%% %11.1f%% %11.1f%%\n",
          "", 100.0 * static_cast<double>(b[kBucketCompute]) / static_cast<double>(horizon),
          100.0 * static_cast<double>(b[kBucketFifoWait]) / static_cast<double>(horizon),
          100.0 * static_cast<double>(b[kBucketMemWait]) / static_cast<double>(horizon),
          100.0 * static_cast<double>(b[kBucketQueueWait]) / static_cast<double>(horizon),
          100.0 * static_cast<double>(b[kBucketActive]) / static_cast<double>(horizon),
          100.0 * static_cast<double>(b[kBucketDrained]) / static_cast<double>(horizon));
      out += line;
    }
  }
  return out;
}

ProfileReport profile(const TraceSink& sink) {
  ProfileReport rep;
  rep.dropped = sink.dropped();

  struct OpenSpan {
    sim::Cycle start = 0;
    std::uint8_t bucket = kNoBucket;
  };
  std::array<OpenSpan, kNumComponents> open{};

  const std::vector<TraceEvent> events = sink.events();
  sim::Cycle last_cycle = 0;
  const auto close = [&rep](Component comp, OpenSpan& span, sim::Cycle end) {
    if (span.bucket == kNoBucket || end <= span.start) return;
    const std::uint64_t len = end - span.start;
    rep.bucket_cycles[static_cast<std::size_t>(comp)][span.bucket] += len;
    rep.spans.histogram(spanHistName(comp, span.bucket)).add(len);
  };

  for (const TraceEvent& ev : events) {
    last_cycle = ev.cycle;
    const std::size_t ci = static_cast<std::size_t>(ev.component);
    switch (ev.kind) {
      case EventKind::kPhase: {
        OpenSpan& span = open[ci];
        close(ev.component, span, ev.cycle);
        span.start = ev.cycle;
        span.bucket = static_cast<std::uint8_t>(ev.a);
        break;
      }
      case EventKind::kRetire:
        ++rep.retires[ci];
        break;
      case EventKind::kMemGrant:
        ++rep.mem_grants;
        break;
      case EventKind::kMemConflict:
        rep.mem_conflict_cpu += ev.a;
        rep.mem_conflict_hht += ev.b;
        break;
      case EventKind::kFifoPush:
        rep.fifo_pushes += ev.a;
        break;
      case EventKind::kFifoPop:
        ++rep.fifo_pops;
        break;
      case EventKind::kFifoNotReady:
        ++rep.fifo_not_ready;
        break;
      case EventKind::kFifoFull:
        ++rep.fifo_full;
        break;
      case EventKind::kMmrWrite:
        ++rep.mmr_writes;
        break;
      case EventKind::kEngineRowDone:
        ++rep.engine_rows_done;
        break;
      case EventKind::kEngineEmitStall:
        ++rep.engine_emit_stalls;
        break;
      case EventKind::kFwSpaceWait:
        ++rep.fw_space_waits;
        break;
      case EventKind::kFwPush:
        ++rep.fw_pushes;
        break;
      case EventKind::kFwRowEnd:
        ++rep.fw_row_ends;
        break;
      case EventKind::kScrubGrant:
        ++rep.scrub_grants;
        if (ev.b == 1) ++rep.scrub_corrected;
        break;
      case EventKind::kHhtPrefetch: {
        const std::uint64_t action = ev.b >> 8;
        if (action == 0) ++rep.hht_prefetch_issued;
        if (action == 1) ++rep.hht_prefetch_fills;
        break;
      }
      case EventKind::kWqClaim:
        ++rep.wq_grants;
        if ((ev.b >> 8) & 1) ++rep.wq_steals;
        break;
      case EventKind::kRunEnd:
        if (ev.a > rep.horizon) rep.horizon = static_cast<sim::Cycle>(ev.a);
        break;
      default:
        break;
    }
  }

  if (rep.horizon == 0 && !events.empty()) rep.horizon = last_cycle + 1;

  for (std::size_t c = 0; c < kNumComponents; ++c) {
    close(static_cast<Component>(c), open[c], rep.horizon);
  }
  // Cycles outside any emitted span are drained by definition: before a
  // component's first phase event and after a halted CPU's last tick.
  for (std::size_t c = 0; c < kNumComponents; ++c) {
    std::uint64_t attributed = 0;
    for (const std::uint64_t v : rep.bucket_cycles[c]) attributed += v;
    if (rep.horizon > attributed) {
      rep.bucket_cycles[c][kBucketDrained] += rep.horizon - attributed;
    }
  }
  return rep;
}

}  // namespace hht::obs
