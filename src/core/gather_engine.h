#pragma once

#include "core/engine.h"
#include "core/walkers.h"

namespace hht::core {

/// SpMV indexed-gather engine — the paper's primary HHT pipeline (Fig. 3).
///
/// Stage 1 walks the CSR row pointers; stage 2 streams the row's column
/// indices into the column-index buffer; stage 3 turns each index k into
/// the address V_Base + k * elem_size; stage 4 reads V and fills the
/// CPU-side buffer. Buffers are published full or at row boundaries, so
/// the CPU's fixed-address loads always see exactly the current row's
/// gathered operands.
class GatherEngine : public Engine {
 public:
  explicit GatherEngine(const EngineContext& ctx);

  void tick(Cycle now) override;
  bool done() const override;

  void serialize(sim::StateWriter& w) const override {
    Engine::serialize(w);
    rows_.serialize(w);
    cols_.serialize(w);
    vfetch_.serialize(w);
    w.b(row_stream_ready_);
  }
  void deserialize(sim::StateReader& r) override {
    Engine::deserialize(r);
    rows_.deserialize(r);
    cols_.deserialize(r);
    vfetch_.deserialize(r);
    row_stream_ready_ = r.b();
  }

 private:
  void configureRowStream();

  RowPtrWalker rows_;
  IndexStream cols_;
  ValueFetchQueue vfetch_;
  bool row_stream_ready_ = false;  ///< cols_ targets the current row
  std::uint64_t* c_values_requested_;
};

}  // namespace hht::core
