#include "core/hier_engine.h"

#include <bit>

namespace hht::core {

namespace {
constexpr std::uint32_t kLeafBits = 64;
constexpr std::uint32_t kL1Granule = 32;  ///< level-1 fetched as 32-bit words
}  // namespace

HierBitmapEngine::HierBitmapEngine(const EngineContext& ctx, bool flat)
    : Engine(ctx), l1_(ctx.cfg.prefetch_queue),
      vfetch_(ctx.cfg.emission_queue, ctx.cfg.poison_containment),
      flat_(flat),
      c_rows_done_(&ctx_.stats.counter("hht.hier.rows_done")),
      c_values_requested_(&ctx_.stats.counter("hht.hier.values_requested")),
      c_emit_stall_(&ctx_.stats.counter("hht.hier.emit_stall_cycles")),
      c_slots_found_(&ctx_.stats.counter("hht.hier.slots_found")),
      c_l1_words_scanned_(&ctx_.stats.counter("hht.hier.l1_words_scanned")) {
  const std::uint64_t positions = numPositions();
  num_slots_ = (positions + kLeafBits - 1) / kLeafBits;
  const std::uint32_t l1_words = flat_
      ? 0u
      : static_cast<std::uint32_t>((num_slots_ + kL1Granule - 1) / kL1Granule);
  l1_.configure(ctx.mmr.l1_base, l1_words, 0);
}

void HierBitmapEngine::tick(Cycle now) {
  if (faulted_) return;

  // Response collection is skipped wholesale when the BE lane is empty:
  // neither the stream polls nor the leaf-half loop can progress without a
  // completed response (a leaf fetch with both halves present never
  // survives to the next tick), and the poison flags only change under a
  // poll.
  if (responsesWaiting()) {
    l1_.poll(ctx_.mem);
    vfetch_.poll(ctx_.mem, ctx_.emit);
    if (l1_.sawPoison() || vfetch_.sawPoison()) {
      reportFault(sim::FaultCause::MemUncorrectable,
                  "ECC-uncorrectable response reached the bitmap pipeline");
      return;
    }

    // Collect leaf word responses (lo/hi 32-bit halves).
    while (!leaf_fetches_.empty()) {
      LeafFetch& f = leaf_fetches_.front();
      if (!f.have_lo) {
        if (auto r = ctx_.mem.takeResponse(f.lo_req)) {
          if (r->poisoned) {
            reportFault(sim::FaultCause::MemUncorrectable,
                        "ECC-uncorrectable leaf-word response");
            return;
          }
          f.lo = r->data;
          f.have_lo = true;
        }
      }
      if (!f.have_hi) {
        if (auto r = ctx_.mem.takeResponse(f.hi_req)) {
          if (r->poisoned) {
            reportFault(sim::FaultCause::MemUncorrectable,
                        "ECC-uncorrectable leaf-word response");
            return;
          }
          f.hi = r->data;
          f.have_hi = true;
        }
      }
      if (!(f.have_lo && f.have_hi)) break;
      leaf_q_.push_back(
          {f.slot, (static_cast<std::uint64_t>(f.hi) << 32) | f.lo});
      leaf_fetches_.pop_front();
    }
  }

  // Bit-scan work, budgeted like the merge unit's comparisons (one step
  // per cmp_recurrence cycles).
  const bool cmp_ready = cmp_phase_ == 0;
  cmp_phase_ = (cmp_phase_ + 1) % ctx_.cfg.cmp_recurrence;
  std::uint32_t budget = cmp_ready ? ctx_.cfg.cmp_per_cycle : 0;
  while (budget > 0) {
    // Prefer draining fetched leaves into emissions.
    if (!leaf_q_.empty()) {
      Leaf& leaf = leaf_q_.front();
      if (leaf.bits == 0) {
        leaf_q_.pop_front();
        continue;
      }
      const int bit = std::countr_zero(leaf.bits);
      const std::uint64_t pos = leaf.slot * kLeafBits + static_cast<unsigned>(bit);
      const std::uint32_t row =
          static_cast<std::uint32_t>(pos / ctx_.mmr.num_cols);
      const std::uint32_t col =
          static_cast<std::uint32_t>(pos % ctx_.mmr.num_cols);
      if (row >= ctx_.mmr.m_num_rows) {
        // A set bit past the matrix extent means the bitmap metadata is
        // corrupt (position maps outside the num_rows × num_cols grid).
        reportFault(sim::FaultCause::MalformedMeta,
                    "bitmap position " + std::to_string(pos) +
                        " maps to row " + std::to_string(row) +
                        " >= num_rows " + std::to_string(ctx_.mmr.m_num_rows));
        return;
      }
      if (row > cur_row_) {
        // Close the previous row(s); one marker per budget slot.
        if (!ctx_.emit.canReserve()) break;
        ctx_.emit.emitNow(Slot{0, true, true});
        traceRowDone(now, cur_row_);
        ++cur_row_;
        ++*c_rows_done_;
        --budget;
        continue;
      }
      if (!ctx_.emit.canReserve() || !vfetch_.canAccept()) {
        ++*c_emit_stall_;
        traceEmitStall(now);
        break;
      }
      vfetch_.enqueue({ctx_.mmr.v_base + col * ctx_.mmr.element_size,
                       ctx_.emit.reserve(), false});
      leaf.bits &= leaf.bits - 1;
      ++*c_values_requested_;
      --budget;
      continue;
    }

    // Flat mode: visit every slot in order (the slot counter is free
    // hardware; each slot still costs its two occupancy-word fetches).
    if (flat_) {
      bool queued = false;
      while (next_slot_ < num_slots_ &&
             slot_q_.size() < ctx_.cfg.prefetch_queue) {
        slot_q_.push_back(next_slot_++);
        queued = true;
        ++*c_slots_found_;
      }
      if (queued) continue;
    }

    // Scan level-1 words for occupied slots.
    if (l1_word_open_) {
      if (l1_word_bits_ == 0) {
        l1_word_open_ = false;
        continue;
      }
      if (slot_q_.size() >= ctx_.cfg.prefetch_queue) break;
      const int bit = std::countr_zero(l1_word_bits_);
      l1_word_bits_ &= l1_word_bits_ - 1;
      slot_q_.push_back(static_cast<std::uint64_t>(l1_word_index_) * kL1Granule +
                        static_cast<unsigned>(bit));
      ++*c_slots_found_;
      --budget;
      continue;
    }
    if (l1_.headAvailable()) {
      l1_word_bits_ = l1_.head();
      l1_word_index_ = l1_.headIndex();
      l1_.pop();
      l1_word_open_ = true;
      ++*c_l1_words_scanned_;
      --budget;
      continue;
    }

    // Stream end: close trailing rows once all upstream stages drained.
    const bool scan_done =
        flat_ ? next_slot_ >= num_slots_ : !l1_.morePending();
    if (scan_done && slot_q_.empty() && leaf_fetches_.empty() &&
        cur_row_ < ctx_.mmr.m_num_rows) {
      if (!ctx_.emit.canReserve()) break;
      ctx_.emit.emitNow(Slot{0, true, true});
      traceRowDone(now, cur_row_);
      ++cur_row_;
      ++*c_rows_done_;
      --budget;
      continue;
    }
    break;
  }

  // Memory issue budget: leaf fetches unblock the most work, then value
  // gathers, then level-1 prefetches.
  std::uint32_t issue = ctx_.cfg.be_issue_per_cycle;
  while (issue > 0) {
    if (!slot_q_.empty() && leaf_fetches_.size() < 2) {
      LeafFetch f;
      f.slot = slot_q_.front();
      slot_q_.pop_front();
      // Hier mode: leaves are packed by occupied slot (leaf_seq_); flat
      // mode: the bitmap is a plain array indexed by slot number.
      const Addr base =
          flat_ ? ctx_.mmr.leaves_base + static_cast<Addr>(f.slot) * 8u
                : ctx_.mmr.leaves_base + leaf_seq_ * 8u;
      ++leaf_seq_;
      f.lo_req = issueReadFor(base);
      // The pair costs two port slots; spend the second now if available,
      // otherwise next cycle would lose ordering — so charge both here.
      f.hi_req = issueReadFor(base + 4u);
      leaf_fetches_.push_back(f);
      issue = (issue >= 2) ? issue - 2 : 0;
    } else if (vfetch_.wantIssue()) {
      vfetch_.issue(*this, ctx_.mem);
      --issue;
    } else if (l1_.wantIssue()) {
      l1_.issue(*this, ctx_.mem);
      --issue;
    } else {
      break;
    }
  }
}

bool HierBitmapEngine::done() const {
  const bool scan_done = flat_ ? next_slot_ >= num_slots_ : !l1_.morePending();
  return scan_done && slot_q_.empty() && leaf_fetches_.empty() &&
         leaf_q_.empty() && cur_row_ == ctx_.mmr.m_num_rows &&
         vfetch_.drained() && ctx_.emit.empty();
}

}  // namespace hht::core
