#include "core/stream_engine.h"

#include <bit>

namespace hht::core {

StreamEngine::StreamEngine(const EngineContext& ctx)
    : Engine(ctx),
      cols_(ctx.cfg.prefetch_queue),
      vidx_(ctx.cfg.prefetch_queue),
      vfetch_(ctx.cfg.emission_queue, ctx.cfg.poison_containment),
      c_rows_done_(&ctx_.stats.counter("hht.stream.rows_done")),
      c_comparisons_(&ctx_.stats.counter("hht.stream.comparisons")),
      c_matches_(&ctx_.stats.counter("hht.stream.matches")),
      c_zeros_emitted_(&ctx_.stats.counter("hht.stream.zeros_emitted")),
      c_emit_stall_(&ctx_.stats.counter("hht.stream.emit_stall_cycles")) {
  rows_.configure(ctx.mmr.m_rows_base, ctx.mmr.m_num_rows);
}

void StreamEngine::configureRow() {
  const std::uint32_t start = rows_.rowStart();
  const std::uint32_t end = rows_.rowEnd();
  if (!checkRowExtent(rows_.row(), start, end)) return;
  cols_.configure(ctx_.mmr.m_cols_base + start * 4u, end - start, start);
  vidx_.configure(ctx_.mmr.v_idx_base, ctx_.mmr.v_nnz, 0);
  row_ready_ = true;
}

void StreamEngine::tick(Cycle now) {
  if (faulted_) return;

  if (responsesWaiting()) {
    rows_.poll(ctx_.mem);
    cols_.poll(ctx_.mem);
    vidx_.poll(ctx_.mem);
    vfetch_.poll(ctx_.mem, ctx_.emit);
    if (rows_.sawPoison() || cols_.sawPoison() || vidx_.sawPoison() ||
        vfetch_.sawPoison()) {
      reportFault(sim::FaultCause::MemUncorrectable,
                  "ECC-uncorrectable response reached the stream pipeline");
      return;
    }
  }

  if (rows_.haveRow() && !row_ready_) {
    configureRow();
    if (faulted_) return;
  }

  // One emitted element (or vector-pointer advance) per merge step,
  // completing every cmp_recurrence cycles.
  const bool cmp_ready = cmp_phase_ == 0;
  cmp_phase_ = (cmp_phase_ + 1) % ctx_.cfg.cmp_recurrence;
  std::uint32_t cmps = cmp_ready ? ctx_.cfg.cmp_per_cycle : 0;
  while (row_ready_ && cmps > 0) {
    if (!cols_.morePending()) {
      // Row complete (every matrix NZ produced one stream element).
      traceRowDone(now, rows_.row());
      rows_.advance();
      row_ready_ = false;
      ++*c_rows_done_;
      if (rows_.haveRow()) {
        configureRow();
        if (faulted_) return;
      }
      continue;
    }
    if (!cols_.headAvailable()) break;

    const std::uint32_t mc = cols_.head();
    const bool last = cols_.headIsLast();
    ++*c_comparisons_;
    --cmps;

    if (!vidx_.morePending()) {
      // Vector exhausted: remaining columns all miss — emit zeros.
      if (!ctx_.emit.canReserve()) break;
      ctx_.emit.emitNow(Slot{std::bit_cast<std::uint32_t>(0.0f), false, last});
      cols_.pop();
      ++*c_zeros_emitted_;
      continue;
    }
    if (!vidx_.headAvailable()) break;

    const std::uint32_t vc = vidx_.head();
    if (mc == vc) {
      if (!ctx_.emit.canReserve() || !vfetch_.canAccept()) {
        ++*c_emit_stall_;
        traceEmitStall(now);
        break;
      }
      const Addr v_addr = ctx_.mmr.v_vals_base + vidx_.headIndex() * 4u;
      vfetch_.enqueue({v_addr, ctx_.emit.reserve(), last});
      cols_.pop();
      vidx_.pop();
      ++*c_matches_;
    } else if (mc < vc) {
      if (!ctx_.emit.canReserve()) break;
      ctx_.emit.emitNow(Slot{std::bit_cast<std::uint32_t>(0.0f), false, last});
      cols_.pop();
      ++*c_zeros_emitted_;
    } else {
      vidx_.pop();
    }
  }

  std::uint32_t budget = ctx_.cfg.be_issue_per_cycle;
  while (budget > 0) {
    if (rows_.wantIssue()) {
      rows_.issue(*this, ctx_.mem);
    } else if (vfetch_.wantIssue()) {
      vfetch_.issue(*this, ctx_.mem);
    } else if (row_ready_ && cols_.wantIssue() &&
               (!vidx_.wantIssue() || prefer_cols_)) {
      cols_.issue(*this, ctx_.mem);
      prefer_cols_ = false;
    } else if (row_ready_ && vidx_.wantIssue()) {
      vidx_.issue(*this, ctx_.mem);
      prefer_cols_ = true;
    } else {
      break;
    }
    --budget;
  }
}

bool StreamEngine::done() const {
  return rows_.finished() && vfetch_.drained() && ctx_.emit.empty();
}

}  // namespace hht::core
