#include "core/merge_engine.h"

namespace hht::core {

MergeEngine::MergeEngine(const EngineContext& ctx)
    : Engine(ctx),
      cols_(ctx.cfg.prefetch_queue),
      vidx_(ctx.cfg.prefetch_queue),
      vfetch_(ctx.cfg.emission_queue, ctx.cfg.poison_containment),
      c_rows_done_(&ctx_.stats.counter("hht.merge.rows_done")),
      c_comparisons_(&ctx_.stats.counter("hht.merge.comparisons")),
      c_matches_(&ctx_.stats.counter("hht.merge.matches")),
      c_emit_stall_(&ctx_.stats.counter("hht.merge.emit_stall_cycles")) {
  rows_.configure(ctx.mmr.m_rows_base, ctx.mmr.m_num_rows);
}

void MergeEngine::configureRow() {
  const std::uint32_t start = rows_.rowStart();
  const std::uint32_t end = rows_.rowEnd();
  if (!checkRowExtent(rows_.row(), start, end)) return;
  cols_.configure(ctx_.mmr.m_cols_base + start * 4u, end - start, start);
  // Variant-1 rescans the vector index list for every row: both lists are
  // sorted, but the next row's columns restart from low indices.
  vidx_.configure(ctx_.mmr.v_idx_base, ctx_.mmr.v_nnz, 0);
  row_ready_ = true;
  row_merge_done_ = false;
}

bool MergeEngine::tryFinishRow(Cycle now) {
  if (!ctx_.emit.canReserve()) return false;
  ctx_.emit.emitNow(Slot{0, /*is_row_end=*/true, /*publish_after=*/true});
  ++*c_rows_done_;
  traceRowDone(now, rows_.row());
  rows_.advance();
  row_ready_ = false;
  row_merge_done_ = false;
  return true;
}

void MergeEngine::tick(Cycle now) {
  if (faulted_) return;

  if (responsesWaiting()) {
    rows_.poll(ctx_.mem);
    cols_.poll(ctx_.mem);
    vidx_.poll(ctx_.mem);
    vfetch_.poll(ctx_.mem, ctx_.emit);
    if (rows_.sawPoison() || cols_.sawPoison() || vidx_.sawPoison() ||
        vfetch_.sawPoison()) {
      reportFault(sim::FaultCause::MemUncorrectable,
                  "ECC-uncorrectable response reached the merge pipeline");
      return;
    }
  }

  if (rows_.haveRow() && !row_ready_) {
    configureRow();
    if (faulted_) return;
  }

  // Merge step: the compare-select-advance recurrence completes every
  // cmp_recurrence cycles; each completion performs cmp_per_cycle steps.
  const bool cmp_ready = cmp_phase_ == 0;
  cmp_phase_ = (cmp_phase_ + 1) % ctx_.cfg.cmp_recurrence;
  std::uint32_t cmps = cmp_ready ? ctx_.cfg.cmp_per_cycle : 0;
  while (row_ready_ && !row_merge_done_ && cmps > 0) {
    if (!cols_.morePending()) {
      // Matrix side of the row fully consumed: the row's intersection is
      // complete whatever remains on the vector side.
      row_merge_done_ = true;
      break;
    }
    if (!cols_.headAvailable()) break;  // waiting on a column fetch

    if (!vidx_.morePending()) {
      // Vector exhausted: remaining columns are unmatched; discard one per
      // comparison slot (the hardware still walks them).
      cols_.pop();
      ++*c_comparisons_;
      --cmps;
      continue;
    }
    if (!vidx_.headAvailable()) break;  // waiting on a vector-index fetch

    const std::uint32_t mc = cols_.head();
    const std::uint32_t vc = vidx_.head();
    ++*c_comparisons_;
    --cmps;
    if (mc == vc) {
      if (!ctx_.emit.canReserve(2) || !vfetch_.canAccept(2)) {
        // Downstream full: retry the same comparison next cycle.
        ++*c_emit_stall_;
        traceEmitStall(now);
        break;
      }
      const Addr m_addr = ctx_.mmr.m_vals_base + cols_.headGlobal() * 4u;
      const Addr v_addr = ctx_.mmr.v_vals_base + vidx_.headIndex() * 4u;
      vfetch_.enqueue({m_addr, ctx_.emit.reserve(), false});
      vfetch_.enqueue({v_addr, ctx_.emit.reserve(), false});
      cols_.pop();
      vidx_.pop();
      ++*c_matches_;
    } else if (mc < vc) {
      cols_.pop();
    } else {
      vidx_.pop();
    }
  }

  // Close the row once its pairs' value fetches are all in flight order
  // (the RowEnd marker is reserved after them, so emission order is safe
  // even while fetches are pending).
  if (row_ready_ && row_merge_done_) tryFinishRow(now);

  // Issue budget: row pointers, then value fetches, then whichever index
  // stream is shorter on buffered entries.
  std::uint32_t budget = ctx_.cfg.be_issue_per_cycle;
  while (budget > 0) {
    if (rows_.wantIssue()) {
      rows_.issue(*this, ctx_.mem);
    } else if (vfetch_.wantIssue()) {
      vfetch_.issue(*this, ctx_.mem);
    } else if (row_ready_ && cols_.wantIssue() &&
               (!vidx_.wantIssue() || prefer_cols_)) {
      cols_.issue(*this, ctx_.mem);
      prefer_cols_ = false;
    } else if (row_ready_ && vidx_.wantIssue()) {
      vidx_.issue(*this, ctx_.mem);
      prefer_cols_ = true;
    } else {
      break;
    }
    --budget;
  }
}

bool MergeEngine::done() const {
  return rows_.finished() && vfetch_.drained() && ctx_.emit.empty();
}

}  // namespace hht::core
