#include "core/micro_hht.h"

#include <sstream>
#include <stdexcept>

#include "sim/log.h"

namespace hht::core {

MicroHht::MicroHht(const HhtConfig& config, mem::MemorySystem& memory,
                   const cpu::TimingConfig& micro_timing)
    : cfg_(config),
      buffers_(config),
      micro_core_(std::make_unique<cpu::Core>(micro_timing, memory,
                                              /*vlmax=*/1,
                                              mem::Requester::Hht)) {
  fifo_pops_ = &stats_.counter("hht.fifo_pops");
  c_active_cycles_ = &stats_.counter("hht.active_cycles");
  c_cpu_wait_cycles_ = &stats_.counter("hht.cpu_wait_cycles");
  c_elements_delivered_ = &stats_.counter("hht.elements_delivered");
  c_fw_space_wait_ = &stats_.counter("hht.fw_space_wait_cycles");
  c_fw_pushes_ = &stats_.counter("hht.fw_pushes");
  c_fw_row_ends_ = &stats_.counter("hht.fw_row_ends");
}

void MicroHht::setFirmware(const isa::Program& firmware) {
  firmware_ = &firmware;
}

void MicroHht::start() {
  if (firmware_ == nullptr) {
    throw std::logic_error("MicroHht started without firmware installed");
  }
  if (!mmr_parity_ok_) {
    raiseFault(sim::FaultCause::MmrParity,
               "a configuration register failed its parity check at START");
    return;
  }
  buffers_.reset();
  fe_crc_ = 0;
  micro_core_->loadProgram(*firmware_);
  started_ = true;
  HHT_LOG_AT(Info, "uhht", "start firmware='%s' buffers=%u blen=%u",
             firmware_->name().c_str(), cfg_.num_buffers, cfg_.buffer_len);
}

void MicroHht::tick(sim::Cycle now) {
  last_tick_cycle_ = now;  // stamp for MMIO events delivered this cycle
  if (trace_ != nullptr && trace_->enabled(obs::Category::kPipe)) {
    const std::uint8_t bucket =
        (started_ && !faultRaised() && !micro_core_->halted())
            ? obs::kBucketActive
            : obs::kBucketDrained;
    if (bucket != trace_bucket_) {
      trace_bucket_ = bucket;
      trace_->emit(now, obs::Category::kPipe, obs::Component::kHhtBe,
                   obs::EventKind::kPhase, bucket);
    }
  }
  if (faultRaised()) return;  // a faulted device halts (firmware included)
  if (!started_) return;
  if (!micro_core_->halted()) ++*c_active_cycles_;
  micro_core_->tick(now);
}

sim::Cycle MicroHht::nextEventCycle(sim::Cycle now) const {
  if (trace_ != nullptr) return now + 1;  // tracing forces per-cycle ticks
  if (faultRaised() || !started_) return sim::kNeverCycle;
  if (micro_core_->halted()) return sim::kNeverCycle;
  return micro_core_->nextEventCycle(now);
}

void MicroHht::skipCycles(sim::Cycle n) {
  if (faultRaised() || !started_) return;
  if (!micro_core_->halted()) {
    *c_active_cycles_ += n;
    micro_core_->skipCycles(n);
  }
}

bool MicroHht::busy() const {
  return started_ && (!micro_core_->halted() || buffers_.hasUnread());
}

mem::MmioReadResult MicroHht::cpuRead(Addr offset) {
  switch (offset) {
    case mmr::kBufData: {
      if (!buffers_.hasFront()) {
        if (started_ && micro_core_->halted()) {
          throw std::logic_error(
              "kernel bug: CPU load from BUF_DATA past end of firmware stream");
        }
        ++*c_cpu_wait_cycles_;
        if (trace_ != nullptr && trace_->enabled(obs::Category::kFifo)) {
          trace_->emit(last_tick_cycle_, obs::Category::kFifo,
                       obs::Component::kHhtFe, obs::EventKind::kFifoNotReady,
                       mmr::kBufData);
        }
        return {false, 0};
      }
      if (buffers_.front().is_row_end) {
        throw std::logic_error(
            "kernel bug: CPU read BUF_DATA where VALID would return 0");
      }
      const Slot slot = buffers_.pop();
      ++*fifo_pops_;
      if (trace_ != nullptr && trace_->enabled(obs::Category::kFifo)) {
        trace_->emit(last_tick_cycle_, obs::Category::kFifo,
                     obs::Component::kHhtFe, obs::EventKind::kFifoPop,
                     slot.bits, 0);
      }
      if (slot.poisoned) {
        raiseFault(sim::FaultCause::MemUncorrectable,
                   "poisoned element reached BUF_DATA delivery "
                   "(uncorrectable value fetch, contained in-stream)");
      } else if (!slot.parity_ok) {
        raiseFault(sim::FaultCause::FifoParity,
                   "buffer entry failed its parity check at BUF_DATA pop");
      }
      ++*c_elements_delivered_;
      if (cfg_.e2e_check) {
        fe_crc_ = sim::crcFoldSlot(fe_crc_, slot.bits, false);
        if (slot.has_check && fe_crc_ != slot.check) {
          raiseFault(sim::FaultCause::StreamCheck,
                     "stream CRC mismatch at BUF_DATA delivery: fe=" +
                         std::to_string(fe_crc_) +
                         " be-tag=" + std::to_string(slot.check));
        }
      }
      return {true, slot.bits};
    }
    case mmr::kValid: {
      if (!buffers_.hasFront()) {
        if (started_ && micro_core_->halted()) {
          throw std::logic_error("kernel bug: CPU read VALID past end of stream");
        }
        ++*c_cpu_wait_cycles_;
        if (trace_ != nullptr && trace_->enabled(obs::Category::kFifo)) {
          trace_->emit(last_tick_cycle_, obs::Category::kFifo,
                       obs::Component::kHhtFe, obs::EventKind::kFifoNotReady,
                       mmr::kValid);
        }
        return {false, 0};
      }
      if (buffers_.front().is_row_end) {
        const Slot slot = buffers_.pop();
        ++*fifo_pops_;
        if (cfg_.e2e_check) {
          fe_crc_ = sim::crcFoldSlot(fe_crc_, slot.bits, true);
          if (slot.has_check && fe_crc_ != slot.check) {
            raiseFault(sim::FaultCause::StreamCheck,
                       "stream CRC mismatch at VALID row-end delivery: fe=" +
                           std::to_string(fe_crc_) +
                           " be-tag=" + std::to_string(slot.check));
          }
        }
        if (trace_ != nullptr && trace_->enabled(obs::Category::kFifo)) {
          trace_->emit(last_tick_cycle_, obs::Category::kFifo,
                       obs::Component::kHhtFe, obs::EventKind::kFifoPop, 0, 1);
        }
        return {true, 0};
      }
      return {true, 1};
    }
    case mmr::kStatus:
      return {true, busy() ? 1u : 0u};
    case mmr::kCheckBe:
      return {true, buffers_.beCrc()};
    case mmr::kCheckFe:
      return {true, fe_crc_};
    case mmr::kFault:
      return {true, faultRaised() ? 1u : 0u};
    case mmr::kCause:
      return {true, static_cast<std::uint32_t>(faultCause())};
    default:
      throw std::invalid_argument("MicroHht: CPU read from unknown offset " +
                                  std::to_string(offset));
  }
}

mem::MmioReadResult MicroHht::firmwareRead(Addr offset) {
  if (offset != mmr::kFwSpace) {
    throw std::invalid_argument("MicroHht: firmware read from non-port offset " +
                                std::to_string(offset));
  }
  const std::uint32_t space = buffers_.freeCapacity();
  if (space == 0) {
    // The control unit throttles the firmware exactly as it would the
    // ASIC back-end: this is the "HHT waiting for CPU" condition.
    ++*c_fw_space_wait_;
    if (trace_ != nullptr && trace_->enabled(obs::Category::kFifo)) {
      trace_->emit(last_tick_cycle_, obs::Category::kFifo,
                   obs::Component::kHhtFe, obs::EventKind::kFwSpaceWait);
    }
    return {false, 0};
  }
  return {true, space};
}

void MicroHht::firmwareWrite(Addr offset, std::uint32_t value) {
  const bool fifo_trace =
      trace_ != nullptr && trace_->enabled(obs::Category::kFifo);
  switch (offset) {
    case mmr::kFwPushValue:
      buffers_.push({value, false, false});
      ++*c_fw_pushes_;
      if (fifo_trace) {
        trace_->emit(last_tick_cycle_, obs::Category::kFifo,
                     obs::Component::kHhtFe, obs::EventKind::kFwPush, value, 0);
      }
      break;
    case mmr::kFwPushValueEor:
      buffers_.push({value, false, true});
      ++*c_fw_pushes_;
      if (fifo_trace) {
        trace_->emit(last_tick_cycle_, obs::Category::kFifo,
                     obs::Component::kHhtFe, obs::EventKind::kFwPush, value, 1);
      }
      break;
    case mmr::kFwPushRowEnd:
      buffers_.push({0, true, true});
      ++*c_fw_row_ends_;
      if (fifo_trace) {
        trace_->emit(last_tick_cycle_, obs::Category::kFifo,
                     obs::Component::kHhtFe, obs::EventKind::kFwRowEnd);
      }
      break;
    default:
      throw std::invalid_argument("MicroHht: firmware write to non-port offset " +
                                  std::to_string(offset));
  }
}

mem::MmioReadResult MicroHht::mmioRead(Addr offset, std::uint32_t size,
                                       mem::Requester who) {
  if (size != 4) {
    throw std::invalid_argument("MicroHht FE supports 32-bit accesses only");
  }
  return who == mem::Requester::Cpu ? cpuRead(offset) : firmwareRead(offset);
}

void MicroHht::mmioWrite(Addr offset, std::uint32_t size, std::uint32_t value,
                         mem::Requester who) {
  if (size != 4) {
    throw std::invalid_argument("MicroHht FE supports 32-bit accesses only");
  }
  if (who == mem::Requester::Hht) {
    firmwareWrite(offset, value);
    return;
  }
  // CPU side: the same configuration sequence as the ASIC — the consumer
  // kernels are reused verbatim. Config registers the firmware does not
  // need are still latched (firmware gets its parameters compiled in).
  if (injector_ != nullptr && offset != mmr::kStart &&
      offset != mmr::kFaultClear && injector_->glitchMmrValue(value)) {
    mmr_parity_ok_ = false;
  }
  if (trace_ != nullptr && trace_->enabled(obs::Category::kMmr)) {
    trace_->emit(last_tick_cycle_, obs::Category::kMmr, obs::Component::kHhtFe,
                 obs::EventKind::kMmrWrite, offset, value);
  }
  switch (offset) {
    case mmr::kMNumRows: mmr_.m_num_rows = value; break;
    case mmr::kMRowsBase: mmr_.m_rows_base = value; break;
    case mmr::kMColsBase: mmr_.m_cols_base = value; break;
    case mmr::kMValsBase: mmr_.m_vals_base = value; break;
    case mmr::kVBase: mmr_.v_base = value; break;
    case mmr::kVIdxBase: mmr_.v_idx_base = value; break;
    case mmr::kVValsBase: mmr_.v_vals_base = value; break;
    case mmr::kVNnz: mmr_.v_nnz = value; break;
    case mmr::kElementSize: mmr_.element_size = value; break;
    case mmr::kMode: mmr_.mode = static_cast<Mode>(value); break;
    case mmr::kNumCols: mmr_.num_cols = value; break;
    case mmr::kL1Base: mmr_.l1_base = value; break;
    case mmr::kLeavesBase: mmr_.leaves_base = value; break;
    case mmr::kMNnz: mmr_.m_nnz = value; break;
    case mmr::kVLen: mmr_.v_len = value; break;
    case mmr::kStart:
      if (value != 0) start();
      break;
    case mmr::kFaultClear:
      if (value != 0) clearFault();
      break;
    default:
      throw std::invalid_argument("MicroHht: CPU write to unknown offset " +
                                  std::to_string(offset));
  }
}

void MicroHht::setFaultInjector(sim::FaultInjector* injector) {
  injector_ = injector;
  buffers_.setFaultInjector(injector);
}

std::uint64_t MicroHht::progressSignal() const {
  // The micro-core's retired instructions count as progress: firmware can
  // legitimately compute for long stretches between pushes.
  return *fifo_pops_ + micro_core_->stats().value("cpu.retired");
}

void MicroHht::reset() {
  buffers_.reset();
  started_ = false;
  fe_crc_ = 0;
  mmr_ = MmrFile{};
  mmr_parity_ok_ = true;
  clearFault();
}

std::string MicroHht::describeState() const {
  std::ostringstream os;
  os << "uhht: started=" << started_
     << " core_halted=" << micro_core_->halted()
     << " staged=" << buffers_.stagedSlots()
     << " published_buffers=" << buffers_.publishedBuffers()
     << " fifo_pops=" << *fifo_pops_;
  if (faultRaised()) {
    os << "\n  FAULT cause=" << sim::faultCauseName(faultCause()) << ": "
       << faultDetail();
  }
  return os.str();
}

}  // namespace hht::core
