#include "core/hht.h"

#include <sstream>
#include <stdexcept>

#include "core/gather_engine.h"
#include "core/hier_engine.h"
#include "core/merge_engine.h"
#include "core/stream_engine.h"
#include "sim/log.h"

namespace hht::core {

Hht::Hht(const HhtConfig& config, mem::MemorySystem& memory)
    : cfg_(config), mem_(memory), buffers_(config), emit_(config.emission_queue) {
  fifo_pops_ = &stats_.counter("hht.fifo_pops");
}

void Hht::start() {
  // Config registers are checked at their single architectural use point:
  // writes are posted, so START is the first moment the device can act on
  // (and therefore vet) the programmed state.
  if (!mmr_parity_ok_) {
    raiseFault(sim::FaultCause::MmrParity,
               "a configuration register failed its parity check at START");
    return;
  }
  if (mmr_.element_size != 4) {
    raiseFault(sim::FaultCause::BadProgram,
               "ELEMENT_SIZE=" + std::to_string(mmr_.element_size) +
                   " unsupported (BE pipelines are 32-bit)");
    return;
  }
  const bool csr = mmr_.mode == Mode::SpmvGather ||
                   mmr_.mode == Mode::SpmspvV1 || mmr_.mode == Mode::SpmspvV2;
  if (csr) {
    const std::uint64_t rows_bytes =
        (static_cast<std::uint64_t>(mmr_.m_num_rows) + 1) * 4u;
    if (!mem_.sram().inBounds(mmr_.m_rows_base,
                              static_cast<std::size_t>(rows_bytes))) {
      raiseFault(sim::FaultCause::BadProgram,
                 "CSR row-pointer array [M_Rows_Base, +" +
                     std::to_string(rows_bytes) + ") falls outside SRAM");
      return;
    }
  }
  if ((mmr_.mode == Mode::HierBitmap || mmr_.mode == Mode::FlatBitmap) &&
      mmr_.num_cols == 0) {
    raiseFault(sim::FaultCause::BadProgram,
               "bitmap walk requires NUM_COLS >= 1");
    return;
  }
  buffers_.reset();
  emit_.reset();
  finished_flush_done_ = false;
  const EngineContext ctx{cfg_, mmr_, mem_, buffers_, emit_, stats_, this};
  switch (mmr_.mode) {
    case Mode::SpmvGather:
      engine_ = std::make_unique<GatherEngine>(ctx);
      break;
    case Mode::SpmspvV1:
      engine_ = std::make_unique<MergeEngine>(ctx);
      break;
    case Mode::SpmspvV2:
      engine_ = std::make_unique<StreamEngine>(ctx);
      break;
    case Mode::HierBitmap:
      engine_ = std::make_unique<HierBitmapEngine>(ctx);
      break;
    case Mode::FlatBitmap:
      engine_ = std::make_unique<HierBitmapEngine>(ctx, /*flat=*/true);
      break;
    default:
      throw std::invalid_argument("HHT started with invalid MODE register");
  }
  HHT_LOG_AT(Info, "hht", "start mode=%u rows=%u buffers=%u blen=%u",
             static_cast<unsigned>(mmr_.mode), mmr_.m_num_rows,
             cfg_.num_buffers, cfg_.buffer_len);
}

void Hht::tick(sim::Cycle now) {
  // A faulted device halts: no further production, no buffer movement. The
  // FAULT/CAUSE MMRs stay readable (the non-blocking poll path below).
  if (faultRaised()) return;
  if (!engine_) return;
  if (!engine_->done()) {
    ++stats_.counter("hht.active_cycles");
    // Control-unit throttle accounting: the BE has produced data it cannot
    // place because every buffer is owned by unconsumed CPU data.
    if (!emit_.empty() && buffers_.freeCapacity() == 0) {
      ++stats_.counter("hht.stall_buffers_full");
    }
  }
  // Tick even when done: prefetch streams may still have speculative reads
  // in flight (e.g. vector indices fetched past the last match) whose
  // responses must be drained from the memory system.
  engine_->tick(now);
  emit_.drainTo(buffers_, cfg_.emit_per_cycle);
  if (engine_->done() && !finished_flush_done_) {
    buffers_.finish();  // publish any partial tail buffer
    finished_flush_done_ = true;
  }
}

bool Hht::busy() const {
  return engine_ && (!engine_->done() || !emit_.empty() || buffers_.hasUnread());
}

mem::MmioReadResult Hht::mmioRead(Addr offset, std::uint32_t size,
                                  mem::Requester who) {
  if (who != mem::Requester::Cpu) {
    // The ASIC HHT has no firmware-side port; only the programmable
    // variant accepts Requester::Hht (core/micro_hht.h).
    throw sim::SimError(sim::ErrorKind::Mmio, "hht",
                        "device-side (Requester::Hht) read from the ASIC "
                        "HHT's CPU-facing register file, offset " +
                            std::to_string(offset));
  }
  if (size != 4) {
    throw std::invalid_argument("HHT FE supports 32-bit reads only");
  }
  switch (offset) {
    case mmr::kBufData: {
      if (!buffers_.hasFront()) {
        if (engine_ && engine_->done() && !busy()) {
          throw std::logic_error(
              "kernel bug: CPU load from HHT BUF_DATA past end of stream");
        }
        ++stats_.counter("hht.cpu_wait_cycles");
        return {false, 0};
      }
      if (buffers_.front().is_row_end) {
        throw std::logic_error(
            "kernel bug: CPU read BUF_DATA where VALID would return 0");
      }
      const Slot slot = buffers_.pop();
      ++*fifo_pops_;
      if (!slot.parity_ok) {
        // Deliver *and* latch the fault: the CPU gets the (corrupt) word
        // this cycle, but FAULT is already visible — the harness's
        // same-cycle poll guarantees the run never ends silently wrong.
        raiseFault(sim::FaultCause::FifoParity,
                   "buffer entry failed its parity check at BUF_DATA pop");
      }
      ++stats_.counter("hht.elements_delivered");
      return {true, slot.bits};
    }
    case mmr::kValid: {
      if (!buffers_.hasFront()) {
        if (engine_ && engine_->done() && !busy()) {
          throw std::logic_error(
              "kernel bug: CPU read VALID past end of stream");
        }
        ++stats_.counter("hht.cpu_wait_cycles");
        return {false, 0};
      }
      if (buffers_.front().is_row_end) {
        buffers_.pop();
        ++*fifo_pops_;
        return {true, 0};
      }
      return {true, 1};
    }
    case mmr::kStatus:
      return {true, busy() ? 1u : 0u};
    case mmr::kFault:
      return {true, faultRaised() ? 1u : 0u};
    case mmr::kCause:
      return {true, static_cast<std::uint32_t>(faultCause())};
    default:
      throw std::invalid_argument("HHT FE read from unknown MMR offset " +
                                  std::to_string(offset));
  }
}

void Hht::mmioWrite(Addr offset, std::uint32_t size, std::uint32_t value,
                    mem::Requester who) {
  if (who != mem::Requester::Cpu) {
    throw sim::SimError(sim::ErrorKind::Mmio, "hht",
                        "device-side (Requester::Hht) write to the ASIC "
                        "HHT's CPU-facing register file, offset " +
                            std::to_string(offset));
  }
  if (size != 4) {
    throw std::invalid_argument("HHT FE supports 32-bit writes only");
  }
  // MMR glitch injection point: the value is corrupted as it is latched
  // into the register cell (commands — START, FAULT_CLEAR — are pulse
  // wires, not latches, and are not subject to it).
  if (injector_ != nullptr && offset != mmr::kStart &&
      offset != mmr::kFaultClear && injector_->glitchMmrValue(value)) {
    mmr_parity_ok_ = false;
  }
  switch (offset) {
    case mmr::kMNumRows: mmr_.m_num_rows = value; break;
    case mmr::kMRowsBase: mmr_.m_rows_base = value; break;
    case mmr::kMColsBase: mmr_.m_cols_base = value; break;
    case mmr::kMValsBase: mmr_.m_vals_base = value; break;
    case mmr::kVBase: mmr_.v_base = value; break;
    case mmr::kVIdxBase: mmr_.v_idx_base = value; break;
    case mmr::kVValsBase: mmr_.v_vals_base = value; break;
    case mmr::kVNnz: mmr_.v_nnz = value; break;
    case mmr::kElementSize: mmr_.element_size = value; break;
    case mmr::kMode: mmr_.mode = static_cast<Mode>(value); break;
    case mmr::kNumCols: mmr_.num_cols = value; break;
    case mmr::kL1Base: mmr_.l1_base = value; break;
    case mmr::kLeavesBase: mmr_.leaves_base = value; break;
    case mmr::kMNnz: mmr_.m_nnz = value; break;
    case mmr::kVLen: mmr_.v_len = value; break;
    case mmr::kStart:
      if (value != 0) start();
      break;
    case mmr::kFaultClear:
      if (value != 0) clearFault();
      break;
    default:
      throw std::invalid_argument("HHT FE write to unknown MMR offset " +
                                  std::to_string(offset));
  }
}

void Hht::setFaultInjector(sim::FaultInjector* injector) {
  injector_ = injector;
  buffers_.setFaultInjector(injector);
}

void Hht::reset() {
  buffers_.reset();
  emit_.reset();
  engine_.reset();
  finished_flush_done_ = false;
  mmr_ = MmrFile{};
  mmr_parity_ok_ = true;
  clearFault();
}

std::string Hht::describeState() const {
  std::ostringstream os;
  os << "hht: mode=" << static_cast<unsigned>(mmr_.mode)
     << " engine=" << (engine_ ? (engine_->done() ? "done" : "active") : "none")
     << " staged=" << buffers_.stagedSlots()
     << " published_buffers=" << buffers_.publishedBuffers()
     << " emit_pending=" << (emit_.empty() ? 0 : 1)
     << " fifo_pops=" << *fifo_pops_;
  if (faultRaised()) {
    os << "\n  FAULT cause=" << sim::faultCauseName(faultCause()) << ": "
       << faultDetail();
  }
  return os.str();
}

}  // namespace hht::core
