#include "core/hht.h"

#include <sstream>
#include <stdexcept>

#include "core/gather_engine.h"
#include "core/hier_engine.h"
#include "core/merge_engine.h"
#include "core/stream_engine.h"
#include "sim/log.h"

namespace hht::core {

Hht::Hht(const HhtConfig& config, mem::MemorySystem& memory,
         std::uint32_t tile)
    : cfg_(config),
      mem_(memory),
      tile_(static_cast<std::uint8_t>(tile)),
      buffers_(config),
      emit_(config.emission_queue) {
  fifo_pops_ = &stats_.counter("hht.fifo_pops");
  c_active_cycles_ = &stats_.counter("hht.active_cycles");
  c_stall_buffers_full_ = &stats_.counter("hht.stall_buffers_full");
  c_cpu_wait_cycles_ = &stats_.counter("hht.cpu_wait_cycles");
  c_elements_delivered_ = &stats_.counter("hht.elements_delivered");
}

void Hht::start() {
  // Config registers are checked at their single architectural use point:
  // writes are posted, so START is the first moment the device can act on
  // (and therefore vet) the programmed state.
  if (!mmr_parity_ok_) {
    raiseFault(sim::FaultCause::MmrParity,
               "a configuration register failed its parity check at START");
    return;
  }
  if (mmr_.element_size != 4) {
    raiseFault(sim::FaultCause::BadProgram,
               "ELEMENT_SIZE=" + std::to_string(mmr_.element_size) +
                   " unsupported (BE pipelines are 32-bit)");
    return;
  }
  const bool csr = mmr_.mode == Mode::SpmvGather ||
                   mmr_.mode == Mode::SpmspvV1 || mmr_.mode == Mode::SpmspvV2;
  if (csr) {
    const std::uint64_t rows_bytes =
        (static_cast<std::uint64_t>(mmr_.m_num_rows) + 1) * 4u;
    if (!mem_.sram().inBounds(mmr_.m_rows_base,
                              static_cast<std::size_t>(rows_bytes))) {
      raiseFault(sim::FaultCause::BadProgram,
                 "CSR row-pointer array [M_Rows_Base, +" +
                     std::to_string(rows_bytes) + ") falls outside SRAM");
      return;
    }
  }
  if ((mmr_.mode == Mode::HierBitmap || mmr_.mode == Mode::FlatBitmap) &&
      mmr_.num_cols == 0) {
    raiseFault(sim::FaultCause::BadProgram,
               "bitmap walk requires NUM_COLS >= 1");
    return;
  }
  buffers_.reset();
  emit_.reset();
  finished_flush_done_ = false;
  fe_crc_ = 0;
  engine_ = makeEngine();
  HHT_LOG_AT(Info, "hht", "start mode=%u rows=%u buffers=%u blen=%u",
             static_cast<unsigned>(mmr_.mode), mmr_.m_num_rows,
             cfg_.num_buffers, cfg_.buffer_len);
}

std::unique_ptr<Engine> Hht::makeEngine() {
  const EngineContext ctx{cfg_,   mmr_, mem_,   buffers_, emit_,
                          stats_, this, trace_, tile_};
  switch (mmr_.mode) {
    case Mode::SpmvGather:
      return std::make_unique<GatherEngine>(ctx);
    case Mode::SpmspvV1:
      return std::make_unique<MergeEngine>(ctx);
    case Mode::SpmspvV2:
      return std::make_unique<StreamEngine>(ctx);
    case Mode::HierBitmap:
      return std::make_unique<HierBitmapEngine>(ctx);
    case Mode::FlatBitmap:
      return std::make_unique<HierBitmapEngine>(ctx, /*flat=*/true);
  }
  throw std::invalid_argument("HHT started with invalid MODE register");
}

void Hht::tick(sim::Cycle now) {
  last_tick_cycle_ = now;
  if (trace_ != nullptr && trace_->enabled(obs::Category::kPipe)) {
    // BE occupancy, coalesced to transitions: active while the engine is
    // producing, drained otherwise (faulted, unstarted, or done).
    const std::uint8_t bucket =
        (!faultRaised() && engine_ && !engine_->done()) ? obs::kBucketActive
                                                        : obs::kBucketDrained;
    if (bucket != trace_bucket_) {
      trace_bucket_ = bucket;
      trace_->emit(now, obs::Category::kPipe, obs::Component::kHhtBe,
                   obs::EventKind::kPhase, bucket);
    }
  }
  // A faulted device halts: no further production, no buffer movement. The
  // FAULT/CAUSE MMRs stay readable (the non-blocking poll path below).
  if (faultRaised()) return;
  if (!engine_) return;
  if (!engine_->done()) {
    ++*c_active_cycles_;
    // Control-unit throttle accounting: the BE has produced data it cannot
    // place because every buffer is owned by unconsumed CPU data.
    if (!emit_.empty() && buffers_.freeCapacity() == 0) {
      ++*c_stall_buffers_full_;
      if (trace_ != nullptr && trace_->enabled(obs::Category::kFifo)) {
        trace_->emit(now, obs::Category::kFifo, obs::Component::kHhtFe,
                     obs::EventKind::kFifoFull);
      }
    }
  }
  // Tick even when done: prefetch streams may still have speculative reads
  // in flight (e.g. vector indices fetched past the last match) whose
  // responses must be drained from the memory system.
  engine_->tick(now);
  const std::uint32_t pushed = emit_.drainTo(buffers_, cfg_.emit_per_cycle);
  if (pushed > 0 && trace_ != nullptr &&
      trace_->enabled(obs::Category::kFifo)) {
    trace_->emit(now, obs::Category::kFifo, obs::Component::kHhtFe,
                 obs::EventKind::kFifoPush, pushed);
  }
  if (engine_->done() && !finished_flush_done_) {
    buffers_.finish();  // publish any partial tail buffer
    finished_flush_done_ = true;
  }
}

sim::Cycle Hht::nextEventCycle(sim::Cycle now) const {
  // Any observer needs real per-cycle ticks (delivery/event timestamps).
  if (!taps_.empty() || trace_ != nullptr) return now + 1;
  if (faultRaised() || !engine_) return sim::kNeverCycle;
  if (!engine_->done() || !emit_.empty() || !finished_flush_done_) {
    return now + 1;
  }
  // A done engine still polls its walkers every tick: speculative reads
  // (e.g. vector indices fetched past the last match) may be queued or in
  // flight, and only those polls drain their responses out of the memory
  // system. Quiescent only once the memory system is completely empty.
  if (!mem_.idle()) return now + 1;
  return sim::kNeverCycle;
}

void Hht::skipCycles(sim::Cycle n) {
  // Exactly what the skipped ticks would have done: stamp the tick cycle
  // (tick assigns, so advancing by n lands on the same value) and advance
  // any free-running engine state (the comparator recurrence phase).
  last_tick_cycle_ += n;
  if (engine_ && !faultRaised()) engine_->creditSkippedCycles(n);
}

bool Hht::busy() const {
  return engine_ && (!engine_->done() || !emit_.empty() || buffers_.hasUnread());
}

mem::MmioReadResult Hht::mmioRead(Addr offset, std::uint32_t size,
                                  mem::Requester who) {
  if (who != mem::Requester::Cpu) {
    // The ASIC HHT has no firmware-side port; only the programmable
    // variant accepts Requester::Hht (core/micro_hht.h).
    throw sim::SimError(sim::ErrorKind::Mmio, "hht",
                        "device-side (Requester::Hht) read from the ASIC "
                        "HHT's CPU-facing register file, offset " +
                            std::to_string(offset));
  }
  if (size != 4) {
    throw std::invalid_argument("HHT FE supports 32-bit reads only");
  }
  switch (offset) {
    case mmr::kBufData: {
      if (!buffers_.hasFront()) {
        if (engine_ && engine_->done() && !busy()) {
          throw std::logic_error(
              "kernel bug: CPU load from HHT BUF_DATA past end of stream");
        }
        ++*c_cpu_wait_cycles_;
        if (trace_ != nullptr && trace_->enabled(obs::Category::kFifo)) {
          trace_->emit(last_tick_cycle_, obs::Category::kFifo,
                       obs::Component::kHhtFe, obs::EventKind::kFifoNotReady,
                       offset);
        }
        return {false, 0};
      }
      if (buffers_.front().is_row_end) {
        throw std::logic_error(
            "kernel bug: CPU read BUF_DATA where VALID would return 0");
      }
      Slot slot = buffers_.pop();
      ++*fifo_pops_;
      if (slot.poisoned) {
        // Poison containment: the uncorrectable value fetch flowed through
        // the FIFOs in order and faults exactly here, at its delivery
        // point — the CPU gets a zero this cycle with FAULT already up.
        raiseFault(sim::FaultCause::MemUncorrectable,
                   "poisoned element reached BUF_DATA delivery "
                   "(uncorrectable value fetch, contained in-stream)");
      } else if (!slot.parity_ok) {
        // Deliver *and* latch the fault: the CPU gets the (corrupt) word
        // this cycle, but FAULT is already visible — the harness's
        // same-cycle poll guarantees the run never ends silently wrong.
        raiseFault(sim::FaultCause::FifoParity,
                   "buffer entry failed its parity check at BUF_DATA pop");
      }
      std::uint64_t& delivered = *c_elements_delivered_;
      if (cfg_.test_flip_element == delivered) {
        // Verification-layer self-test hook: silent single-bit corruption of
        // the Nth delivered element (parity stays good on purpose).
        slot.bits ^= 1u;
      }
      ++delivered;
      if (cfg_.e2e_check) {
        // Fold what is actually delivered (after any delivery-port flip) so
        // the check covers the full path up to the architectural boundary.
        fe_crc_ = sim::crcFoldSlot(fe_crc_, slot.bits, false);
        if (slot.has_check && fe_crc_ != slot.check) {
          raiseFault(sim::FaultCause::StreamCheck,
                     "stream CRC mismatch at BUF_DATA delivery: fe=" +
                         std::to_string(fe_crc_) +
                         " be-tag=" + std::to_string(slot.check));
        }
      }
      taps_.onDelivered(last_tick_cycle_, false, slot.bits);
      if (trace_ != nullptr && trace_->enabled(obs::Category::kFifo)) {
        trace_->emit(last_tick_cycle_, obs::Category::kFifo,
                     obs::Component::kHhtFe, obs::EventKind::kFifoPop,
                     slot.bits, 0);
      }
      return {true, slot.bits};
    }
    case mmr::kValid: {
      if (!buffers_.hasFront()) {
        if (engine_ && engine_->done() && !busy()) {
          throw std::logic_error(
              "kernel bug: CPU read VALID past end of stream");
        }
        ++*c_cpu_wait_cycles_;
        if (trace_ != nullptr && trace_->enabled(obs::Category::kFifo)) {
          trace_->emit(last_tick_cycle_, obs::Category::kFifo,
                       obs::Component::kHhtFe, obs::EventKind::kFifoNotReady,
                       offset);
        }
        return {false, 0};
      }
      if (buffers_.front().is_row_end) {
        const Slot slot = buffers_.pop();
        ++*fifo_pops_;
        if (cfg_.e2e_check) {
          // Row-end markers are part of the checked stream (the BE folds
          // them), and a buffer's closing check tag may ride on one.
          fe_crc_ = sim::crcFoldSlot(fe_crc_, slot.bits, true);
          if (slot.has_check && fe_crc_ != slot.check) {
            raiseFault(sim::FaultCause::StreamCheck,
                       "stream CRC mismatch at VALID row-end delivery: fe=" +
                           std::to_string(fe_crc_) +
                           " be-tag=" + std::to_string(slot.check));
          }
        }
        taps_.onDelivered(last_tick_cycle_, true, 0);
        if (trace_ != nullptr && trace_->enabled(obs::Category::kFifo)) {
          trace_->emit(last_tick_cycle_, obs::Category::kFifo,
                       obs::Component::kHhtFe, obs::EventKind::kFifoPop, 0,
                       1);
        }
        return {true, 0};
      }
      return {true, 1};
    }
    case mmr::kStatus:
      return {true, busy() ? 1u : 0u};
    case mmr::kCheckBe:
      return {true, buffers_.beCrc()};
    case mmr::kCheckFe:
      return {true, fe_crc_};
    case mmr::kFault:
      return {true, faultRaised() ? 1u : 0u};
    case mmr::kCause:
      return {true, static_cast<std::uint32_t>(faultCause())};
    default:
      throw std::invalid_argument("HHT FE read from unknown MMR offset " +
                                  std::to_string(offset));
  }
}

void Hht::mmioWrite(Addr offset, std::uint32_t size, std::uint32_t value,
                    mem::Requester who) {
  if (who != mem::Requester::Cpu) {
    throw sim::SimError(sim::ErrorKind::Mmio, "hht",
                        "device-side (Requester::Hht) write to the ASIC "
                        "HHT's CPU-facing register file, offset " +
                            std::to_string(offset));
  }
  if (size != 4) {
    throw std::invalid_argument("HHT FE supports 32-bit writes only");
  }
  // MMR glitch injection point: the value is corrupted as it is latched
  // into the register cell (commands — START, FAULT_CLEAR — are pulse
  // wires, not latches, and are not subject to it).
  if (injector_ != nullptr && offset != mmr::kStart &&
      offset != mmr::kFaultClear && injector_->glitchMmrValue(value)) {
    mmr_parity_ok_ = false;
  }
  if (trace_ != nullptr && trace_->enabled(obs::Category::kMmr)) {
    trace_->emit(last_tick_cycle_, obs::Category::kMmr,
                 obs::Component::kHhtFe, obs::EventKind::kMmrWrite, offset,
                 value);
  }
  switch (offset) {
    case mmr::kMNumRows: mmr_.m_num_rows = value; break;
    case mmr::kMRowsBase: mmr_.m_rows_base = value; break;
    case mmr::kMColsBase: mmr_.m_cols_base = value; break;
    case mmr::kMValsBase: mmr_.m_vals_base = value; break;
    case mmr::kVBase: mmr_.v_base = value; break;
    case mmr::kVIdxBase: mmr_.v_idx_base = value; break;
    case mmr::kVValsBase: mmr_.v_vals_base = value; break;
    case mmr::kVNnz: mmr_.v_nnz = value; break;
    case mmr::kElementSize: mmr_.element_size = value; break;
    case mmr::kMode: mmr_.mode = static_cast<Mode>(value); break;
    case mmr::kNumCols: mmr_.num_cols = value; break;
    case mmr::kL1Base: mmr_.l1_base = value; break;
    case mmr::kLeavesBase: mmr_.leaves_base = value; break;
    case mmr::kMNnz: mmr_.m_nnz = value; break;
    case mmr::kVLen: mmr_.v_len = value; break;
    case mmr::kStart:
      if (value != 0) start();
      break;
    case mmr::kFaultClear:
      if (value != 0) clearFault();
      break;
    default:
      throw std::invalid_argument("HHT FE write to unknown MMR offset " +
                                  std::to_string(offset));
  }
}

void Hht::setFaultInjector(sim::FaultInjector* injector) {
  injector_ = injector;
  buffers_.setFaultInjector(injector);
}

void Hht::reset() {
  buffers_.reset();
  emit_.reset();
  engine_.reset();
  finished_flush_done_ = false;
  fe_crc_ = 0;
  mmr_ = MmrFile{};
  mmr_parity_ok_ = true;
  clearFault();
}

void Hht::serialize(sim::StateWriter& w) const {
  w.tag("HHTD");
  w.u32(mmr_.m_num_rows);
  w.u32(mmr_.m_rows_base);
  w.u32(mmr_.m_cols_base);
  w.u32(mmr_.m_vals_base);
  w.u32(mmr_.v_base);
  w.u32(mmr_.v_idx_base);
  w.u32(mmr_.v_vals_base);
  w.u32(mmr_.v_nnz);
  w.u32(mmr_.element_size);
  w.u32(static_cast<std::uint32_t>(mmr_.mode));
  w.u32(mmr_.num_cols);
  w.u32(mmr_.l1_base);
  w.u32(mmr_.leaves_base);
  w.u32(mmr_.m_nnz);
  w.u32(mmr_.v_len);
  buffers_.serialize(w);
  emit_.serialize(w);
  w.u32(fe_crc_);  // snapshot v5
  w.b(finished_flush_done_);
  w.b(mmr_parity_ok_);
  serializeFaultLatch(w);
  w.u64(last_tick_cycle_);
  stats_.serialize(w);
  w.b(engine_ != nullptr);
  if (engine_) engine_->serialize(w);
}

void Hht::deserialize(sim::StateReader& r) {
  r.expectTag("HHTD");
  mmr_.m_num_rows = r.u32();
  mmr_.m_rows_base = r.u32();
  mmr_.m_cols_base = r.u32();
  mmr_.m_vals_base = r.u32();
  mmr_.v_base = r.u32();
  mmr_.v_idx_base = r.u32();
  mmr_.v_vals_base = r.u32();
  mmr_.v_nnz = r.u32();
  mmr_.element_size = r.u32();
  const std::uint32_t mode = r.u32();
  if (mode > static_cast<std::uint32_t>(Mode::FlatBitmap)) {
    throw sim::SimError(sim::ErrorKind::Checkpoint, "hht",
                        "snapshot MODE register invalid: " +
                            std::to_string(mode));
  }
  mmr_.mode = static_cast<Mode>(mode);
  mmr_.num_cols = r.u32();
  mmr_.l1_base = r.u32();
  mmr_.leaves_base = r.u32();
  mmr_.m_nnz = r.u32();
  mmr_.v_len = r.u32();
  buffers_.deserialize(r);
  emit_.deserialize(r);
  fe_crc_ = r.u32();
  finished_flush_done_ = r.b();
  mmr_parity_ok_ = r.b();
  deserializeFaultLatch(r);
  last_tick_cycle_ = r.u64();
  stats_.deserialize(r);
  if (r.b()) {
    engine_ = makeEngine();
    engine_->deserialize(r);
  } else {
    engine_.reset();
  }
}

std::string Hht::describeState() const {
  std::ostringstream os;
  os << "hht: mode=" << static_cast<unsigned>(mmr_.mode)
     << " engine=" << (engine_ ? (engine_->done() ? "done" : "active") : "none")
     << " staged=" << buffers_.stagedSlots()
     << " published_buffers=" << buffers_.publishedBuffers()
     << " emit_pending=" << (emit_.empty() ? 0 : 1)
     << " fifo_pops=" << *fifo_pops_;
  if (faultRaised()) {
    os << "\n  FAULT cause=" << sim::faultCauseName(faultCause()) << ": "
       << faultDetail();
  }
  return os.str();
}

}  // namespace hht::core
