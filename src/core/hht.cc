#include "core/hht.h"

#include <stdexcept>

#include "core/gather_engine.h"
#include "core/hier_engine.h"
#include "core/merge_engine.h"
#include "core/stream_engine.h"
#include "sim/log.h"

namespace hht::core {

Hht::Hht(const HhtConfig& config, mem::MemorySystem& memory)
    : cfg_(config), mem_(memory), buffers_(config), emit_(config.emission_queue) {}

void Hht::start() {
  buffers_.reset();
  emit_.reset();
  finished_flush_done_ = false;
  const EngineContext ctx{cfg_, mmr_, mem_, buffers_, emit_, stats_};
  switch (mmr_.mode) {
    case Mode::SpmvGather:
      engine_ = std::make_unique<GatherEngine>(ctx);
      break;
    case Mode::SpmspvV1:
      engine_ = std::make_unique<MergeEngine>(ctx);
      break;
    case Mode::SpmspvV2:
      engine_ = std::make_unique<StreamEngine>(ctx);
      break;
    case Mode::HierBitmap:
      engine_ = std::make_unique<HierBitmapEngine>(ctx);
      break;
    case Mode::FlatBitmap:
      engine_ = std::make_unique<HierBitmapEngine>(ctx, /*flat=*/true);
      break;
    default:
      throw std::invalid_argument("HHT started with invalid MODE register");
  }
  HHT_LOG_AT(Info, "hht", "start mode=%u rows=%u buffers=%u blen=%u",
             static_cast<unsigned>(mmr_.mode), mmr_.m_num_rows,
             cfg_.num_buffers, cfg_.buffer_len);
}

void Hht::tick(sim::Cycle now) {
  if (!engine_) return;
  if (!engine_->done()) {
    ++stats_.counter("hht.active_cycles");
    // Control-unit throttle accounting: the BE has produced data it cannot
    // place because every buffer is owned by unconsumed CPU data.
    if (!emit_.empty() && buffers_.freeCapacity() == 0) {
      ++stats_.counter("hht.stall_buffers_full");
    }
  }
  // Tick even when done: prefetch streams may still have speculative reads
  // in flight (e.g. vector indices fetched past the last match) whose
  // responses must be drained from the memory system.
  engine_->tick(now);
  emit_.drainTo(buffers_, cfg_.emit_per_cycle);
  if (engine_->done() && !finished_flush_done_) {
    buffers_.finish();  // publish any partial tail buffer
    finished_flush_done_ = true;
  }
}

bool Hht::busy() const {
  return engine_ && (!engine_->done() || !emit_.empty() || buffers_.hasUnread());
}

mem::MmioReadResult Hht::mmioRead(Addr offset, std::uint32_t size,
                                  mem::Requester) {
  if (size != 4) {
    throw std::invalid_argument("HHT FE supports 32-bit reads only");
  }
  switch (offset) {
    case mmr::kBufData: {
      if (!buffers_.hasFront()) {
        if (engine_ && engine_->done() && !busy()) {
          throw std::logic_error(
              "kernel bug: CPU load from HHT BUF_DATA past end of stream");
        }
        ++stats_.counter("hht.cpu_wait_cycles");
        return {false, 0};
      }
      if (buffers_.front().is_row_end) {
        throw std::logic_error(
            "kernel bug: CPU read BUF_DATA where VALID would return 0");
      }
      const Slot slot = buffers_.pop();
      ++stats_.counter("hht.elements_delivered");
      return {true, slot.bits};
    }
    case mmr::kValid: {
      if (!buffers_.hasFront()) {
        if (engine_ && engine_->done() && !busy()) {
          throw std::logic_error(
              "kernel bug: CPU read VALID past end of stream");
        }
        ++stats_.counter("hht.cpu_wait_cycles");
        return {false, 0};
      }
      if (buffers_.front().is_row_end) {
        buffers_.pop();
        return {true, 0};
      }
      return {true, 1};
    }
    case mmr::kStatus:
      return {true, busy() ? 1u : 0u};
    default:
      throw std::invalid_argument("HHT FE read from unknown MMR offset " +
                                  std::to_string(offset));
  }
}

void Hht::mmioWrite(Addr offset, std::uint32_t size, std::uint32_t value,
                    mem::Requester) {
  if (size != 4) {
    throw std::invalid_argument("HHT FE supports 32-bit writes only");
  }
  switch (offset) {
    case mmr::kMNumRows: mmr_.m_num_rows = value; break;
    case mmr::kMRowsBase: mmr_.m_rows_base = value; break;
    case mmr::kMColsBase: mmr_.m_cols_base = value; break;
    case mmr::kMValsBase: mmr_.m_vals_base = value; break;
    case mmr::kVBase: mmr_.v_base = value; break;
    case mmr::kVIdxBase: mmr_.v_idx_base = value; break;
    case mmr::kVValsBase: mmr_.v_vals_base = value; break;
    case mmr::kVNnz: mmr_.v_nnz = value; break;
    case mmr::kElementSize: mmr_.element_size = value; break;
    case mmr::kMode: mmr_.mode = static_cast<Mode>(value); break;
    case mmr::kNumCols: mmr_.num_cols = value; break;
    case mmr::kL1Base: mmr_.l1_base = value; break;
    case mmr::kLeavesBase: mmr_.leaves_base = value; break;
    case mmr::kStart:
      if (value != 0) start();
      break;
    default:
      throw std::invalid_argument("HHT FE write to unknown MMR offset " +
                                  std::to_string(offset));
  }
}

}  // namespace hht::core
