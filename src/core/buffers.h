#pragma once

#include <cstdint>
#include <deque>
#include <stdexcept>
#include <utility>
#include <vector>

#include "core/config.h"
#include "sim/checksum.h"
#include "sim/fault.h"
#include "sim/state_io.h"

namespace hht::core {

/// One element slot in the CPU-side buffer stream.
///
/// A Value slot carries 32 data bits; a RowEnd slot is the variant-1 /
/// hier-bitmap end-of-row marker the FE turns into a VALID=0 response.
/// `publish_after` asks the pool to close (publish) the staging buffer
/// after this slot — the row-aligned fill policy of §3.1 (the FE knows row
/// extents because M_Rows_Base is programmed).
struct Slot {
  std::uint32_t bits = 0;
  bool is_row_end = false;
  bool publish_after = false;
  /// Parity tag carried with the entry. The fault injector clears it when
  /// it corrupts `bits` in the SRAM cell; the FE checks it on pop and
  /// raises a FifoParity fault instead of handing the CPU bad data.
  bool parity_ok = true;
  /// Poison bit (DESIGN.md §15): the payload came from an uncorrectable
  /// memory response. Under poison containment the slot flows through the
  /// FIFOs in order and the FE faults exactly when it would deliver it.
  bool poisoned = false;
  /// End-to-end check tag: when has_check, `check` carries the BE's running
  /// stream CRC as of this slot; the FE compares its own running CRC here.
  bool has_check = false;
  std::uint32_t check = 0;
};

/// The N CPU-side buffers of the HHT front-end (Table 1: N=2, 32 B each).
///
/// The back-end stages slots into the current *write* buffer; a buffer
/// becomes visible to the CPU only when published (full, or row boundary).
/// The CPU drains the oldest published buffer through the FIFO interface;
/// fully-drained buffers return to the free pool. At most `num_buffers`
/// buffers exist between staging and published — `freeCapacity()` is the
/// control unit's BE-throttle signal (§3.1).
class BufferPool {
 public:
  explicit BufferPool(const HhtConfig& config)
      : num_buffers_(config.num_buffers),
        buffer_len_(config.buffer_len),
        e2e_(config.e2e_check) {
    if (num_buffers_ == 0 || buffer_len_ == 0) {
      throw std::invalid_argument("BufferPool needs >=1 buffer of >=1 slot");
    }
  }

  // ---- back-end (write) side ----

  /// Slots the BE may still stage before the pool is saturated.
  std::uint32_t freeCapacity() const {
    const bool staging_open = !staging_.empty();
    const std::uint32_t buffers_free =
        num_buffers_ - static_cast<std::uint32_t>(published_.size()) -
        (staging_open ? 1u : 0u);
    return buffers_free * buffer_len_ +
           (staging_open ? buffer_len_ - static_cast<std::uint32_t>(staging_.size())
                         : 0u);
  }

  bool canPush() const { return freeCapacity() > 0; }

  /// Stage one slot; publishes the staging buffer when it fills or the slot
  /// requests a row-aligned publish. Precondition: canPush(). The write
  /// into the buffer SRAM is the injection point for FIFO corruption: a
  /// flipped entry keeps its (now wrong) payload but loses its parity tag.
  void push(const Slot& slot) {
    if (!canPush()) throw std::logic_error("BufferPool::push past capacity");
    Slot staged = slot;
    // The e2e CRC folds the *intended* slot content, before any injected
    // corruption below — this is the single chokepoint every producer
    // (emission-queue drains and micro-HHT firmware pushes alike) funnels
    // through, so the whole BE-to-FE path downstream is covered.
    if (e2e_) be_crc_ = sim::crcFoldSlot(be_crc_, staged.bits, staged.is_row_end);
    if (injector_ != nullptr && !staged.is_row_end) {
      if (injector_->corruptFifoSlot(staged.bits)) {
        staged.parity_ok = false;
      }
      // Parity-evading SDC injection (campaign-only): flips the payload but
      // leaves the parity tag GOOD. Only the e2e check can catch it.
      injector_->silentFifoFlip(staged.bits);
    }
    staging_.push_back(staged);
    if (staging_.size() == buffer_len_ || slot.publish_after) publish();
  }

  /// Publish a partial staging buffer (stream end).
  void finish() {
    if (!staging_.empty()) publish();
  }

  // ---- front-end (read) side ----

  bool hasFront() const { return !published_.empty(); }
  const Slot& front() const { return published_.front()[read_pos_]; }

  Slot pop() {
    const Slot slot = front();
    if (++read_pos_ == published_.front().size()) {
      recycle(std::move(published_.front()));
      published_.pop_front();
      read_pos_ = 0;
    }
    return slot;
  }

  /// Unread published slots (diagnostics; STATUS busy bit).
  std::size_t unread() const {
    std::size_t n = 0;
    for (const auto& buf : published_) n += buf.size();
    return n - read_pos_;
  }
  bool hasUnread() const { return !published_.empty(); }
  std::size_t stagedSlots() const { return staging_.size(); }
  std::size_t publishedBuffers() const { return published_.size(); }

  void reset() {
    published_.clear();
    staging_.clear();
    read_pos_ = 0;
    be_crc_ = 0;
  }

  /// BE-side running stream CRC (read out through the CHECK_BE MMR).
  std::uint32_t beCrc() const { return be_crc_; }

  /// nullptr = no injection (zero cost).
  void setFaultInjector(sim::FaultInjector* injector) { injector_ = injector; }

  void serialize(sim::StateWriter& w) const {
    w.tag("BUFP");
    auto write_slot = [&w](const Slot& slot) {
      w.u32(slot.bits);
      w.b(slot.is_row_end);
      w.b(slot.publish_after);
      w.b(slot.parity_ok);
      w.b(slot.poisoned);    // snapshot v5: integrity channel fields
      w.b(slot.has_check);
      w.u32(slot.check);
    };
    w.u64(published_.size());
    for (const auto& buf : published_) {
      w.u64(buf.size());
      for (const Slot& slot : buf) write_slot(slot);
    }
    w.u64(staging_.size());
    for (const Slot& slot : staging_) write_slot(slot);
    w.u64(read_pos_);
    w.u32(be_crc_);  // snapshot v5
  }

  void deserialize(sim::StateReader& r) {
    r.expectTag("BUFP");
    auto read_slot = [&r]() {
      Slot slot;
      slot.bits = r.u32();
      slot.is_row_end = r.b();
      slot.publish_after = r.b();
      slot.parity_ok = r.b();
      slot.poisoned = r.b();
      slot.has_check = r.b();
      slot.check = r.u32();
      return slot;
    };
    published_.clear();
    const std::uint64_t n_bufs = r.u64();
    for (std::uint64_t i = 0; i < n_bufs; ++i) {
      std::vector<Slot> buf;
      const std::uint64_t n_slots = r.u64();
      buf.reserve(n_slots);
      for (std::uint64_t j = 0; j < n_slots; ++j) buf.push_back(read_slot());
      published_.push_back(std::move(buf));
    }
    staging_.clear();
    const std::uint64_t n_staged = r.u64();
    for (std::uint64_t i = 0; i < n_staged; ++i) staging_.push_back(read_slot());
    read_pos_ = static_cast<std::size_t>(r.u64());
    be_crc_ = r.u32();
  }

 private:
  void publish() {
    // Tag the closing slot of every published buffer with the BE's running
    // CRC; the FE re-verifies there. Tagging at publish covers both the
    // buffer-full and row-aligned paths as well as the finish() tail.
    if (e2e_ && !staging_.empty()) {
      staging_.back().has_check = true;
      staging_.back().check = be_crc_;
    }
    published_.push_back(std::move(staging_));
    if (!spare_.empty()) {
      staging_ = std::move(spare_.back());
      spare_.pop_back();
      staging_.clear();
    }
    staging_.reserve(buffer_len_);
  }

  /// Return a drained buffer's storage to the spare pool so the staging
  /// buffer never reallocates in steady state (publish() moves the staging
  /// allocation out, which would otherwise force a fresh growth sequence
  /// for every published buffer). Host-side only — never serialized.
  void recycle(std::vector<Slot>&& storage) {
    if (spare_.size() < num_buffers_) spare_.push_back(std::move(storage));
  }

  std::uint32_t num_buffers_;
  std::uint32_t buffer_len_;
  bool e2e_;                    ///< e2e stream-checksum channel enabled
  std::uint32_t be_crc_ = 0;    ///< running CRC over staged slot content
  sim::FaultInjector* injector_ = nullptr;
  std::deque<std::vector<Slot>> published_;
  std::vector<Slot> staging_;
  std::vector<std::vector<Slot>> spare_;  ///< recycled storage, host-only
  std::size_t read_pos_ = 0;
};

}  // namespace hht::core
