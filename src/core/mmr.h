#pragma once

#include <cstdint>

#include "core/config.h"
#include "sim/types.h"

namespace hht::core {

using sim::Addr;

/// Memory-mapped register offsets within the HHT's MMIO window (§3.1).
///
/// Software programs the write-only configuration registers, then sets
/// START last to trigger operation. The read side is the FE's streaming
/// FIFO interface: BUF_DATA pops the next buffered element (the "fixed
/// buffer address" the paper's software loads from); VALID supports the
/// variant-1 / hier-bitmap protocols where the CPU cannot know element
/// counts in advance; STATUS is a non-blocking poll.
namespace mmr {
// --- configuration (write) ---
inline constexpr Addr kMNumRows = 0x00;
inline constexpr Addr kMRowsBase = 0x04;
inline constexpr Addr kMColsBase = 0x08;
inline constexpr Addr kMValsBase = 0x0C;   ///< used by variant-1 (HHT fetches m_vals)
inline constexpr Addr kVBase = 0x10;       ///< dense vector base (SpMV / hier)
inline constexpr Addr kVIdxBase = 0x14;    ///< sparse vector indices (SpMSpV)
inline constexpr Addr kVValsBase = 0x18;   ///< sparse vector values (SpMSpV)
inline constexpr Addr kVNnz = 0x1C;
inline constexpr Addr kElementSize = 0x20; ///< bytes per element (4 for SEW=32)
inline constexpr Addr kMode = 0x24;        ///< core::Mode
inline constexpr Addr kNumCols = 0x28;     ///< matrix columns (hier bitmap walk)
inline constexpr Addr kL1Base = 0x2C;      ///< hier bitmap level-1 base
inline constexpr Addr kLeavesBase = 0x30;  ///< hier bitmap leaf words base
inline constexpr Addr kStart = 0x3C;       ///< write 1 last to trigger (§3.1)

// --- streaming interface (read) ---
inline constexpr Addr kBufData = 0x40;     ///< blocking pop of next element
inline constexpr Addr kValid = 0x44;       ///< blocking: 1=element pending, 0=row done
inline constexpr Addr kStatus = 0x48;      ///< non-blocking: bit0 = busy

// --- fault interface ---
// The HHT latches the first architectural fault it detects (parity error,
// out-of-extent address, malformed metadata, uncorrectable memory response)
// and halts; software polls FAULT and reads CAUSE (a sim::FaultCause) plus
// re-arms with FAULT_CLEAR. Extent registers bound the metadata the BE is
// allowed to trust: M_NNZ caps CSR row extents, V_LEN caps gather indices.
// Both default to 0 = "not programmed, skip the check" so existing kernels
// keep identical instruction streams.
inline constexpr Addr kFault = 0x4C;       ///< non-blocking read: bit0 = fault latched
inline constexpr Addr kCause = 0x50;       ///< non-blocking read: sim::FaultCause
inline constexpr Addr kFaultClear = 0x54;  ///< write 1: clear the fault latch
inline constexpr Addr kMNnz = 0x58;        ///< write: matrix NNZ extent (0 = unchecked)
inline constexpr Addr kVLen = 0x5C;        ///< write: dense-vector length (0 = unchecked)

// --- integrity interface (DESIGN.md §15) ---
// Read-only running CRC-32C of the end-to-end stream checksum channel:
// CHECK_BE is the back-end's fold over every slot staged into the buffer
// pool, CHECK_FE the front-end's fold over every slot delivered to the CPU.
// After a clean drain the two must match; diagnostics and the SDC campaign
// read them to localise which half of the path diverged. Both read 0 when
// HhtConfig::e2e_check is off.
inline constexpr Addr kCheckBe = 0x60;     ///< non-blocking read: BE stream CRC
inline constexpr Addr kCheckFe = 0x64;     ///< non-blocking read: FE stream CRC

// --- firmware-side port of the *programmable* HHT (§7 / core::MicroHht).
//     Only the device's own micro-core (Requester::Hht) may touch these.
inline constexpr Addr kFwSpace = 0x80;        ///< blocking read: free slots (>0)
inline constexpr Addr kFwPushValue = 0x84;    ///< write: append element
inline constexpr Addr kFwPushValueEor = 0x88; ///< write: append + row-aligned publish
inline constexpr Addr kFwPushRowEnd = 0x8C;   ///< write: append RowEnd marker
}  // namespace mmr

/// Default placement of the HHT window in the simulated physical address
/// space (must match MemorySystemConfig::mmio_base).
inline constexpr Addr kDefaultMmioBase = 0xF000'0000u;

/// The FE's register file, filled by CPU configuration stores.
struct MmrFile {
  std::uint32_t m_num_rows = 0;
  Addr m_rows_base = 0;
  Addr m_cols_base = 0;
  Addr m_vals_base = 0;
  Addr v_base = 0;
  Addr v_idx_base = 0;
  Addr v_vals_base = 0;
  std::uint32_t v_nnz = 0;
  std::uint32_t element_size = 4;
  Mode mode = Mode::SpmvGather;
  std::uint32_t num_cols = 0;
  Addr l1_base = 0;
  Addr leaves_base = 0;
  std::uint32_t m_nnz = 0;  ///< extent check cap, 0 = unchecked
  std::uint32_t v_len = 0;  ///< extent check cap, 0 = unchecked
};

}  // namespace hht::core
