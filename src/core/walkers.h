#pragma once

#include <algorithm>
#include <cstdint>
#include <optional>
#include <vector>

#include "core/engine.h"
#include "sim/state_io.h"

namespace hht::core {

/// Streaming fetcher for the CSR row-pointer array: supplies
/// [rows[r], rows[r+1]) for consecutive rows. One outstanding read at a
/// time — the FE programs M_Rows_Base precisely so the BE can walk row
/// extents itself (§3.1).
class RowPtrWalker {
 public:
  void configure(Addr rows_base, std::uint32_t num_rows) {
    rows_base_ = rows_base;
    num_rows_ = num_rows;
    row_ = 0;
    row_start_.reset();
    row_end_.reset();
    pending_ = mem::kInvalidRequest;
    fetch_slot_ = 0;
    saw_poison_ = false;
  }

  bool finished() const { return row_ >= num_rows_; }
  bool haveRow() const {
    return !finished() && row_start_.has_value() && row_end_.has_value();
  }
  std::uint32_t row() const { return row_; }
  std::uint32_t rowStart() const { return *row_start_; }
  std::uint32_t rowEnd() const { return *row_end_; }

  void advance() {
    ++row_;
    row_start_ = row_end_;  // rows[r+1] becomes the next row's start
    row_end_.reset();
  }

  /// Does the walker need a memory read this cycle?
  bool wantIssue() const {
    if (finished() || pending_ != mem::kInvalidRequest) return false;
    return !row_start_.has_value() || !row_end_.has_value();
  }

  /// Issue the next row-pointer read (caller checked wantIssue()).
  void issue(Engine& engine, mem::MemorySystem&) {
    fetch_slot_ = row_ + (row_start_.has_value() ? 1u : 0u);
    pending_ = engine.issueReadFor(rows_base_ + fetch_slot_ * 4u);
  }

  void poll(mem::MemorySystem& mem) {
    if (pending_ == mem::kInvalidRequest) return;
    if (auto response = mem.takeResponse(pending_)) {
      pending_ = mem::kInvalidRequest;
      if (response->poisoned) {
        saw_poison_ = true;  // row extent unusable; owner raises the fault
        return;
      }
      if (fetch_slot_ == row_) {
        row_start_ = response->data;
      } else {
        row_end_ = response->data;
      }
    }
  }

  /// An ECC-uncorrectable response reached this walker; the owning engine
  /// must raise MemUncorrectable (the row extent was lost, not delivered).
  bool sawPoison() const { return saw_poison_; }

  void serialize(sim::StateWriter& w) const {
    w.tag("RWLK");
    w.u32(rows_base_);
    w.u32(num_rows_);
    w.u32(row_);
    w.b(row_start_.has_value());
    if (row_start_) w.u32(*row_start_);
    w.b(row_end_.has_value());
    if (row_end_) w.u32(*row_end_);
    w.u64(pending_);
    w.u32(fetch_slot_);
    w.b(saw_poison_);
  }

  void deserialize(sim::StateReader& r) {
    r.expectTag("RWLK");
    rows_base_ = r.u32();
    num_rows_ = r.u32();
    row_ = r.u32();
    row_start_.reset();
    if (r.b()) row_start_ = r.u32();
    row_end_.reset();
    if (r.b()) row_end_ = r.u32();
    pending_ = r.u64();
    fetch_slot_ = r.u32();
    saw_poison_ = r.b();
  }

 private:
  Addr rows_base_ = 0;
  std::uint32_t num_rows_ = 0;
  std::uint32_t row_ = 0;
  std::optional<std::uint32_t> row_start_;
  std::optional<std::uint32_t> row_end_;
  mem::RequestId pending_ = mem::kInvalidRequest;
  std::uint32_t fetch_slot_ = 0;
  bool saw_poison_ = false;
};

/// Prefetching reader of a contiguous 32-bit-element array segment
/// (CSR cols of one row; the sparse vector's index array). Supports
/// mid-stream restart (variant-1/2 rescan the vector indices every row);
/// stale in-flight responses are dropped via an epoch tag.
class IndexStream {
 public:
  explicit IndexStream(std::uint32_t prefetch_depth) : depth_(prefetch_depth) {}

  /// (Re)target the stream at elements [0, count) of the array at `base`,
  /// with `first_global` the global element index of element 0 (used for
  /// CSR value addressing). Discards queued and in-flight data.
  void configure(Addr base, std::uint32_t count, std::uint32_t first_global) {
    base_ = base;
    count_ = count;
    first_global_ = first_global;
    fetch_i_ = 0;
    next_pop_ = 0;
    queue_.clear();
    ++epoch_;
    saw_poison_ = false;
  }

  /// The stream delivers strictly in element order: responses land in their
  /// (sorted) slot, and the head only becomes available once the *next*
  /// element has arrived. Injected delays/drops can complete reads out of
  /// order; without this gate a late response would let a later column
  /// overtake an earlier one and silently mis-pair the gathered stream.
  bool headAvailable() const {
    return !queue_.empty() && queue_.front().index == next_pop_;
  }
  std::uint32_t head() const { return queue_.front().value; }
  /// Stream-local index of the head element.
  std::uint32_t headIndex() const { return queue_.front().index; }
  /// Global element index (first_global + headIndex).
  std::uint32_t headGlobal() const { return first_global_ + queue_.front().index; }
  bool headIsLast() const { return queue_.front().index + 1 == count_; }
  void pop() {
    ++next_pop_;
    queue_.erase(queue_.begin());
  }

  std::uint32_t consumedUpTo() const { return next_pop_; }
  /// All `count` elements popped? (Queue empty and nothing left to fetch.)
  bool exhausted() const {
    return queue_.empty() && fetch_i_ >= count_ && inflight() == 0;
  }
  /// Nothing queued *yet* but more is coming (distinguishes "wait" from
  /// "done" for the consumer).
  bool morePending() const {
    return fetch_i_ < count_ || inflight() > 0 || !queue_.empty();
  }

  bool wantIssue() const {
    return fetch_i_ < count_ && queue_.size() + inflight() < depth_;
  }

  void issue(Engine& engine, mem::MemorySystem&) {
    pending_.push_back({engine.issueReadFor(base_ + fetch_i_ * 4u), fetch_i_, epoch_});
    ++fetch_i_;
  }

  void poll(mem::MemorySystem& mem) {
    std::erase_if(pending_, [&](const Pending& p) {
      if (auto response = mem.takeResponse(p.id)) {
        if (p.epoch == epoch_) {
          if (response->poisoned) {
            // Stale-epoch poison is dropped with the data (it was never
            // going to be consumed); current-epoch poison is a real loss.
            saw_poison_ = true;
          } else {
            // Sorted insert: out-of-order completions (injected delays)
            // fill their slot, never reorder delivery.
            const auto at = std::lower_bound(
                queue_.begin(), queue_.end(), p.index,
                [](const Entry& e, std::uint32_t i) { return e.index < i; });
            queue_.insert(at, {response->data, p.index});
          }
        }
        return true;
      }
      return false;
    });
  }

  bool sawPoison() const { return saw_poison_; }

  void serialize(sim::StateWriter& w) const {
    w.tag("ISTR");
    w.u32(depth_);
    w.u32(base_);
    w.u32(count_);
    w.u32(first_global_);
    w.u32(fetch_i_);
    w.u32(next_pop_);
    w.u64(epoch_);
    w.b(saw_poison_);
    w.u64(queue_.size());
    for (const Entry& e : queue_) {
      w.u32(e.value);
      w.u32(e.index);
    }
    w.u64(pending_.size());
    for (const Pending& p : pending_) {
      w.u64(p.id);
      w.u32(p.index);
      w.u64(p.epoch);
    }
  }

  void deserialize(sim::StateReader& r) {
    r.expectTag("ISTR");
    depth_ = r.u32();
    base_ = r.u32();
    count_ = r.u32();
    first_global_ = r.u32();
    fetch_i_ = r.u32();
    next_pop_ = r.u32();
    epoch_ = r.u64();
    saw_poison_ = r.b();
    queue_.clear();
    const std::uint64_t n_queue = r.u64();
    for (std::uint64_t i = 0; i < n_queue; ++i) {
      Entry e{};
      e.value = r.u32();
      e.index = r.u32();
      queue_.push_back(e);
    }
    pending_.clear();
    const std::uint64_t n_pending = r.u64();
    for (std::uint64_t i = 0; i < n_pending; ++i) {
      Pending p{};
      p.id = r.u64();
      p.index = r.u32();
      p.epoch = r.u64();
      pending_.push_back(p);
    }
  }

 private:
  struct Entry {
    std::uint32_t value;
    std::uint32_t index;
  };
  struct Pending {
    mem::RequestId id;
    std::uint32_t index;
    std::uint64_t epoch;
  };

  std::uint32_t inflight() const {
    std::uint32_t n = 0;
    for (const Pending& p : pending_) n += (p.epoch == epoch_);
    return n;
  }

  std::uint32_t depth_;
  Addr base_ = 0;
  std::uint32_t count_ = 0;
  std::uint32_t first_global_ = 0;
  std::uint32_t fetch_i_ = 0;
  std::uint32_t next_pop_ = 0;  ///< stream-local index of the next delivery
  std::uint64_t epoch_ = 0;
  bool saw_poison_ = false;
  // Vectors, not deques: both stay at or below the (small) prefetch depth,
  // and they are polled every engine tick — contiguous storage keeps that
  // scan cheap. Element order is the delivery contract; never reorder.
  std::vector<Entry> queue_;
  std::vector<Pending> pending_;
};

/// Queue of deferred value fetches whose emission slots are already
/// reserved (in stream order) in the EmissionQueue.
class ValueFetchQueue {
 public:
  struct Item {
    Addr addr;
    EmissionQueue::Ticket ticket;
    bool publish_after;
  };

  /// `containment` selects the poison semantics (DESIGN.md §15): false =
  /// legacy freeze (sawPoison() latches, the owning engine faults at poll
  /// time); true = the poisoned response fills its reserved ticket with the
  /// slot poison bit set, so the corruption flows in order to the delivery
  /// port where the FE raises a precise MemUncorrectable fault.
  explicit ValueFetchQueue(std::uint32_t depth, bool containment = false)
      : depth_(depth), containment_(containment) {}

  bool canAccept(std::uint32_t n = 1) const { return todo_.size() + n <= depth_; }
  void enqueue(const Item& item) { todo_.push_back(item); }
  bool wantIssue() const { return !todo_.empty(); }

  void issue(Engine& engine, mem::MemorySystem&) {
    const Item item = todo_.front();
    todo_.erase(todo_.begin());
    pending_.push_back({engine.issueReadFor(item.addr), item});
  }

  void poll(mem::MemorySystem& mem, EmissionQueue& emit) {
    std::erase_if(pending_, [&](const Pending& p) {
      if (auto response = mem.takeResponse(p.id)) {
        if (response->poisoned) {
          if (!containment_) {
            // Legacy: the reserved ticket stays unfilled — the stream
            // stalls rather than delivering a corrupt value; the owner
            // raises MemUncorrectable for the whole pipeline.
            saw_poison_ = true;
            return true;
          }
          // Containment: fill the ticket with a poisoned slot (payload
          // zeroed, parity good — poison is its own channel). It flows in
          // stream order; the FE faults exactly at its delivery.
          Slot poison{0, false, p.item.publish_after};
          poison.poisoned = true;
          emit.fill(p.item.ticket, poison);
          return true;
        }
        emit.fill(p.item.ticket,
                  Slot{response->data, false, p.item.publish_after});
        return true;
      }
      return false;
    });
  }

  bool sawPoison() const { return saw_poison_; }

  bool drained() const { return todo_.empty() && pending_.empty(); }

  void serialize(sim::StateWriter& w) const {
    w.tag("VFQU");
    w.u32(depth_);
    w.b(saw_poison_);
    auto write_item = [&w](const Item& item) {
      w.u32(item.addr);
      w.u64(item.ticket);
      w.b(item.publish_after);
    };
    w.u64(todo_.size());
    for (const Item& item : todo_) write_item(item);
    w.u64(pending_.size());
    for (const Pending& p : pending_) {
      w.u64(p.id);
      write_item(p.item);
    }
  }

  void deserialize(sim::StateReader& r) {
    r.expectTag("VFQU");
    depth_ = r.u32();
    saw_poison_ = r.b();
    auto read_item = [&r]() {
      Item item{};
      item.addr = r.u32();
      item.ticket = r.u64();
      item.publish_after = r.b();
      return item;
    };
    todo_.clear();
    const std::uint64_t n_todo = r.u64();
    for (std::uint64_t i = 0; i < n_todo; ++i) todo_.push_back(read_item());
    pending_.clear();
    const std::uint64_t n_pending = r.u64();
    for (std::uint64_t i = 0; i < n_pending; ++i) {
      const mem::RequestId id = r.u64();
      pending_.push_back({id, read_item()});
    }
  }

 private:
  struct Pending {
    mem::RequestId id;
    Item item;
  };

  std::uint32_t depth_;
  bool containment_ = false;  ///< config wiring, not run state
  bool saw_poison_ = false;
  std::vector<Item> todo_;      ///< bounded by depth_; polled every tick
  std::vector<Pending> pending_;
};

}  // namespace hht::core
