#pragma once

#include <deque>

#include "core/engine.h"
#include "core/walkers.h"

namespace hht::core {

/// SMASH-style hierarchical-bitmap engine (§6 extension).
///
/// Walks the two-level bitmap of sparse::HierBitmapMatrix laid out in
/// simulated memory: level-1 words locate occupied 64-position leaves,
/// leaf words locate the non-zero positions, positions map to (row, col),
/// and the engine gathers V[col] for each non-zero, closing rows with
/// RowEnd markers (VALID protocol — the CPU cannot know per-row counts
/// without walking the bitmaps itself, which is the whole point of
/// offloading this format).
///
/// The paper reports this mode makes the HHT "perform more work than the
/// CPU", causing CPU idling; the multi-level popcount walk below is where
/// that work goes.
class HierBitmapEngine : public Engine {
 public:
  /// `flat` selects the one-level bit-vector mode (Mode::FlatBitmap):
  /// no level-1 bitmap exists, so *every* 64-position occupancy word is
  /// fetched in slot order — cheaper logic, but the walk touches the whole
  /// bitmap even where SMASH's level-1 would have skipped empty regions.
  explicit HierBitmapEngine(const EngineContext& ctx, bool flat = false);

  void tick(Cycle now) override;
  bool done() const override;

 private:
  struct LeafFetch {
    mem::RequestId lo_req = mem::kInvalidRequest;
    mem::RequestId hi_req = mem::kInvalidRequest;
    std::uint64_t slot = 0;
    std::uint32_t lo = 0;
    std::uint32_t hi = 0;
    bool have_lo = false;
    bool have_hi = false;
  };
  struct Leaf {
    std::uint64_t slot;
    std::uint64_t bits;
  };

  std::uint64_t numPositions() const {
    return static_cast<std::uint64_t>(ctx_.mmr.m_num_rows) * ctx_.mmr.num_cols;
  }

  IndexStream l1_;                 ///< level-1 words (32-bit granules)
  std::uint32_t l1_word_bits_ = 0; ///< remaining bit mask of current word
  std::uint32_t l1_word_index_ = 0;
  bool l1_word_open_ = false;

  std::deque<std::uint64_t> slot_q_;   ///< occupied leaf slots, in order
  std::deque<LeafFetch> leaf_fetches_; ///< in-flight leaf word pairs
  std::uint32_t leaf_seq_ = 0;         ///< next leaf's index in the packed array
  std::deque<Leaf> leaf_q_;            ///< fetched leaves awaiting bit scan

  std::uint32_t cur_row_ = 0;          ///< rows closed so far
  ValueFetchQueue vfetch_;
  bool flat_ = false;                  ///< Mode::FlatBitmap
  std::uint64_t next_slot_ = 0;        ///< flat mode: next slot to visit
  std::uint64_t num_slots_ = 0;
  std::uint32_t cmp_phase_ = 0;  ///< merge-recurrence phase counter
};

}  // namespace hht::core
