#pragma once

#include <deque>

#include "core/engine.h"
#include "core/walkers.h"

namespace hht::core {

/// SMASH-style hierarchical-bitmap engine (§6 extension).
///
/// Walks the two-level bitmap of sparse::HierBitmapMatrix laid out in
/// simulated memory: level-1 words locate occupied 64-position leaves,
/// leaf words locate the non-zero positions, positions map to (row, col),
/// and the engine gathers V[col] for each non-zero, closing rows with
/// RowEnd markers (VALID protocol — the CPU cannot know per-row counts
/// without walking the bitmaps itself, which is the whole point of
/// offloading this format).
///
/// The paper reports this mode makes the HHT "perform more work than the
/// CPU", causing CPU idling; the multi-level popcount walk below is where
/// that work goes.
class HierBitmapEngine : public Engine {
 public:
  /// `flat` selects the one-level bit-vector mode (Mode::FlatBitmap):
  /// no level-1 bitmap exists, so *every* 64-position occupancy word is
  /// fetched in slot order — cheaper logic, but the walk touches the whole
  /// bitmap even where SMASH's level-1 would have skipped empty regions.
  explicit HierBitmapEngine(const EngineContext& ctx, bool flat = false);

  void tick(Cycle now) override;
  bool done() const override;

  /// The comparator recurrence free-runs every tick, even when idle or
  /// done; skipped ticks must advance it identically (DESIGN.md §11).
  void creditSkippedCycles(Cycle n) override {
    cmp_phase_ = static_cast<std::uint32_t>(
        (cmp_phase_ + n) % ctx_.cfg.cmp_recurrence);
  }

  void serialize(sim::StateWriter& w) const override {
    Engine::serialize(w);
    l1_.serialize(w);
    w.u32(l1_word_bits_);
    w.u32(l1_word_index_);
    w.b(l1_word_open_);
    w.u64(slot_q_.size());
    for (std::uint64_t slot : slot_q_) w.u64(slot);
    w.u64(leaf_fetches_.size());
    for (const LeafFetch& f : leaf_fetches_) {
      w.u64(f.lo_req);
      w.u64(f.hi_req);
      w.u64(f.slot);
      w.u32(f.lo);
      w.u32(f.hi);
      w.b(f.have_lo);
      w.b(f.have_hi);
    }
    w.u32(leaf_seq_);
    w.u64(leaf_q_.size());
    for (const Leaf& leaf : leaf_q_) {
      w.u64(leaf.slot);
      w.u64(leaf.bits);
    }
    w.u32(cur_row_);
    vfetch_.serialize(w);
    w.b(flat_);
    w.u64(next_slot_);
    w.u64(num_slots_);
    w.u32(cmp_phase_);
  }
  void deserialize(sim::StateReader& r) override {
    Engine::deserialize(r);
    l1_.deserialize(r);
    l1_word_bits_ = r.u32();
    l1_word_index_ = r.u32();
    l1_word_open_ = r.b();
    slot_q_.clear();
    const std::uint64_t n_slots = r.u64();
    for (std::uint64_t i = 0; i < n_slots; ++i) slot_q_.push_back(r.u64());
    leaf_fetches_.clear();
    const std::uint64_t n_fetches = r.u64();
    for (std::uint64_t i = 0; i < n_fetches; ++i) {
      LeafFetch f;
      f.lo_req = r.u64();
      f.hi_req = r.u64();
      f.slot = r.u64();
      f.lo = r.u32();
      f.hi = r.u32();
      f.have_lo = r.b();
      f.have_hi = r.b();
      leaf_fetches_.push_back(f);
    }
    leaf_seq_ = r.u32();
    leaf_q_.clear();
    const std::uint64_t n_leaves = r.u64();
    for (std::uint64_t i = 0; i < n_leaves; ++i) {
      Leaf leaf{};
      leaf.slot = r.u64();
      leaf.bits = r.u64();
      leaf_q_.push_back(leaf);
    }
    cur_row_ = r.u32();
    vfetch_.deserialize(r);
    flat_ = r.b();
    next_slot_ = r.u64();
    num_slots_ = r.u64();
    cmp_phase_ = r.u32();
  }

 private:
  struct LeafFetch {
    mem::RequestId lo_req = mem::kInvalidRequest;
    mem::RequestId hi_req = mem::kInvalidRequest;
    std::uint64_t slot = 0;
    std::uint32_t lo = 0;
    std::uint32_t hi = 0;
    bool have_lo = false;
    bool have_hi = false;
  };
  struct Leaf {
    std::uint64_t slot;
    std::uint64_t bits;
  };

  std::uint64_t numPositions() const {
    return static_cast<std::uint64_t>(ctx_.mmr.m_num_rows) * ctx_.mmr.num_cols;
  }

  IndexStream l1_;                 ///< level-1 words (32-bit granules)
  std::uint32_t l1_word_bits_ = 0; ///< remaining bit mask of current word
  std::uint32_t l1_word_index_ = 0;
  bool l1_word_open_ = false;

  std::deque<std::uint64_t> slot_q_;   ///< occupied leaf slots, in order
  std::deque<LeafFetch> leaf_fetches_; ///< in-flight leaf word pairs
  std::uint32_t leaf_seq_ = 0;         ///< next leaf's index in the packed array
  std::deque<Leaf> leaf_q_;            ///< fetched leaves awaiting bit scan

  std::uint32_t cur_row_ = 0;          ///< rows closed so far
  ValueFetchQueue vfetch_;
  bool flat_ = false;                  ///< Mode::FlatBitmap
  std::uint64_t next_slot_ = 0;        ///< flat mode: next slot to visit
  std::uint64_t num_slots_ = 0;
  std::uint32_t cmp_phase_ = 0;  ///< merge-recurrence phase counter
  std::uint64_t* c_rows_done_;
  std::uint64_t* c_values_requested_;
  std::uint64_t* c_emit_stall_;
  std::uint64_t* c_slots_found_;
  std::uint64_t* c_l1_words_scanned_;
};

}  // namespace hht::core
