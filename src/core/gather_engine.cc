#include "core/gather_engine.h"

namespace hht::core {

GatherEngine::GatherEngine(const EngineContext& ctx)
    : Engine(ctx),
      cols_(ctx.cfg.prefetch_queue),
      vfetch_(ctx.cfg.prefetch_queue, ctx.cfg.poison_containment),
      c_values_requested_(&ctx_.stats.counter("hht.gather.values_requested")) {
  rows_.configure(ctx.mmr.m_rows_base, ctx.mmr.m_num_rows);
}

void GatherEngine::configureRowStream() {
  const std::uint32_t start = rows_.rowStart();
  const std::uint32_t end = rows_.rowEnd();
  if (!checkRowExtent(rows_.row(), start, end)) return;
  cols_.configure(ctx_.mmr.m_cols_base + start * 4u, end - start, start);
  row_stream_ready_ = true;
}

void GatherEngine::tick(Cycle now) {
  if (faulted_) return;

  // 1. Collect memory responses (the poison flags only change under a
  //    poll, so the whole block is skipped when the lane is empty).
  if (responsesWaiting()) {
    rows_.poll(ctx_.mem);
    cols_.poll(ctx_.mem);
    vfetch_.poll(ctx_.mem, ctx_.emit);
    if (rows_.sawPoison() || cols_.sawPoison() || vfetch_.sawPoison()) {
      reportFault(sim::FaultCause::MemUncorrectable,
                  "ECC-uncorrectable response reached the gather pipeline");
      return;
    }
  }

  // 2. Row bookkeeping: target the column stream at the current row, and
  //    advance over rows whose indices are fully consumed (including
  //    empty rows).
  while (rows_.haveRow()) {
    if (!row_stream_ready_) {
      configureRowStream();
      if (faulted_) return;
    }
    if (cols_.morePending()) break;
    traceRowDone(now, rows_.row());
    rows_.advance();
    row_stream_ready_ = false;
  }

  // 3. Address generation: convert buffered column indices into V-fetches.
  //    The emission slot is reserved here so V values reach the CPU buffer
  //    in index order; the last index of a row tags its slot for a
  //    row-aligned publish.
  while (row_stream_ready_ && cols_.headAvailable() && ctx_.emit.canReserve() &&
         vfetch_.canAccept()) {
    if (ctx_.mmr.v_len != 0 && cols_.head() >= ctx_.mmr.v_len) {
      reportFault(sim::FaultCause::AddrOutOfBounds,
                  "gather column index " + std::to_string(cols_.head()) +
                      " exceeds programmed V_LEN " +
                      std::to_string(ctx_.mmr.v_len));
      return;
    }
    const Addr v_addr =
        ctx_.mmr.v_base + cols_.head() * ctx_.mmr.element_size;
    const bool last_of_row = cols_.headIsLast();
    vfetch_.enqueue({v_addr, ctx_.emit.reserve(), last_of_row});
    cols_.pop();
    ++*c_values_requested_;
  }

  // 4. Issue memory requests within the BE budget.
  //    Priority: row pointers (they unblock everything), then V fetches
  //    (drain the pipeline), then column prefetches.
  std::uint32_t budget = ctx_.cfg.be_issue_per_cycle;
  while (budget > 0) {
    if (rows_.wantIssue()) {
      rows_.issue(*this, ctx_.mem);
    } else if (vfetch_.wantIssue()) {
      vfetch_.issue(*this, ctx_.mem);
    } else if (row_stream_ready_ && cols_.wantIssue()) {
      cols_.issue(*this, ctx_.mem);
    } else {
      break;
    }
    --budget;
  }
}

bool GatherEngine::done() const {
  return rows_.finished() && vfetch_.drained() && ctx_.emit.empty();
}

}  // namespace hht::core
