#pragma once

#include "core/engine.h"
#include "core/walkers.h"

namespace hht::core {

/// SpMSpV variant-1 engine: per row, merge-intersect the row's column
/// indices with the sparse vector's index array and emit the aligned
/// (matrix value, vector value) pairs, closing each row with a RowEnd
/// marker (the FE's VALID=0 response).
///
/// The HHT does all the index walking here — the paper notes this is the
/// variant where "HHT is performing more work than the CPU" and the CPU
/// idles waiting (§5.1, §5.2); the one-comparison-per-cycle merge unit and
/// the per-row rescan of the vector index array make that cost explicit.
class MergeEngine : public Engine {
 public:
  explicit MergeEngine(const EngineContext& ctx);

  void tick(Cycle now) override;
  bool done() const override;

  /// The comparator recurrence free-runs every tick, even when idle or
  /// done; skipped ticks must advance it identically (DESIGN.md §11).
  void creditSkippedCycles(Cycle n) override {
    cmp_phase_ = static_cast<std::uint32_t>(
        (cmp_phase_ + n) % ctx_.cfg.cmp_recurrence);
  }

  void serialize(sim::StateWriter& w) const override {
    Engine::serialize(w);
    rows_.serialize(w);
    cols_.serialize(w);
    vidx_.serialize(w);
    vfetch_.serialize(w);
    w.b(row_ready_);
    w.b(row_merge_done_);
    w.b(prefer_cols_);
    w.u32(cmp_phase_);
  }
  void deserialize(sim::StateReader& r) override {
    Engine::deserialize(r);
    rows_.deserialize(r);
    cols_.deserialize(r);
    vidx_.deserialize(r);
    vfetch_.deserialize(r);
    row_ready_ = r.b();
    row_merge_done_ = r.b();
    prefer_cols_ = r.b();
    cmp_phase_ = r.u32();
  }

 private:
  void configureRow();
  /// Try to close the current row (marker + advance). Returns true if
  /// advanced.
  bool tryFinishRow(Cycle now);

  RowPtrWalker rows_;
  IndexStream cols_;    ///< current row's column indices
  IndexStream vidx_;    ///< sparse vector indices, rescanned per row
  ValueFetchQueue vfetch_;
  bool row_ready_ = false;
  bool row_merge_done_ = false;  ///< matrix side exhausted; marker pending
  bool prefer_cols_ = true;      ///< round-robin between the index streams
  std::uint32_t cmp_phase_ = 0;  ///< merge-recurrence phase counter
  std::uint64_t* c_rows_done_;
  std::uint64_t* c_comparisons_;
  std::uint64_t* c_matches_;
  std::uint64_t* c_emit_stall_;
};

}  // namespace hht::core
