#pragma once

#include "core/engine.h"
#include "core/walkers.h"

namespace hht::core {

/// SpMSpV variant-2 engine: for *every* stored matrix non-zero, emit the
/// vector's value at that column — the matched non-zero when one exists,
/// otherwise a literal 0.0f (§5.1: "either a nonzero value if the
/// corresponding vector location contains a value or zero otherwise").
///
/// The CPU keeps fetching the matrix values itself (they are contiguous)
/// and multiply-accumulates against this stream, so the stream is dense in
/// matrix-NZ order and vectorizable — which is why variant-2 wins at low
/// sparsity and loses to variant-1 above ~80% sparsity, where most emitted
/// values are wasted zeros.
class StreamEngine : public Engine {
 public:
  explicit StreamEngine(const EngineContext& ctx);

  void tick(Cycle now) override;
  bool done() const override;

  /// The comparator recurrence free-runs every tick, even when idle or
  /// done; skipped ticks must advance it identically (DESIGN.md §11).
  void creditSkippedCycles(Cycle n) override {
    cmp_phase_ = static_cast<std::uint32_t>(
        (cmp_phase_ + n) % ctx_.cfg.cmp_recurrence);
  }

  void serialize(sim::StateWriter& w) const override {
    Engine::serialize(w);
    rows_.serialize(w);
    cols_.serialize(w);
    vidx_.serialize(w);
    vfetch_.serialize(w);
    w.b(row_ready_);
    w.b(prefer_cols_);
    w.u32(cmp_phase_);
  }
  void deserialize(sim::StateReader& r) override {
    Engine::deserialize(r);
    rows_.deserialize(r);
    cols_.deserialize(r);
    vidx_.deserialize(r);
    vfetch_.deserialize(r);
    row_ready_ = r.b();
    prefer_cols_ = r.b();
    cmp_phase_ = r.u32();
  }

 private:
  void configureRow();

  RowPtrWalker rows_;
  IndexStream cols_;
  IndexStream vidx_;
  ValueFetchQueue vfetch_;
  bool row_ready_ = false;
  bool prefer_cols_ = true;
  std::uint32_t cmp_phase_ = 0;  ///< merge-recurrence phase counter
  std::uint64_t* c_rows_done_;
  std::uint64_t* c_comparisons_;
  std::uint64_t* c_matches_;
  std::uint64_t* c_zeros_emitted_;
  std::uint64_t* c_emit_stall_;
};

}  // namespace hht::core
