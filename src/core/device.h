#pragma once

#include <string>
#include <utility>

#include "mem/mmio.h"
#include "obs/trace.h"
#include "sim/fault.h"
#include "sim/state_io.h"
#include "sim/stats.h"
#include "sim/types.h"

namespace hht::core {

/// Common interface of the two HHT implementations: the dedicated ASIC
/// (core::Hht, §3) and the programmable micro-core variant (core::MicroHht,
/// the §7 design the paper proposes as future work). The harness and the
/// primary core interact with either through this surface plus the shared
/// MMIO register map (core/mmr.h).
///
/// The device is also the system's FaultSink: back-end engines, walkers and
/// the FE's parity checks report detected errors here. The first fault wins
/// and is latched into architectural state (the FAULT/CAUSE MMRs) — the
/// device halts, software polls, and the harness either re-runs on the
/// scalar baseline (graceful degradation) or raises a structured SimError.
class HhtDevice : public mem::MmioDevice, public sim::FaultSink {
 public:
  /// Advance the accelerator one cycle (called before the primary core).
  virtual void tick(sim::Cycle now) = 0;

  /// Producing, or holding undelivered data.
  virtual bool busy() const = 0;

  /// Quiescence protocol (DESIGN.md §11): earliest future cycle (> now) at
  /// which this device can change state, perform an event, or needs its
  /// tick for side effects; sim::kNeverCycle when fully idle. The default
  /// (tick me every cycle) is always correct, merely never skippable —
  /// devices opt in by overriding.
  virtual sim::Cycle nextEventCycle(sim::Cycle now) const { return now + 1; }

  /// Bulk-credit `n` skipped cycles: exactly the counter bumps and phase
  /// advances the skipped ticks would have performed. Paired with
  /// nextEventCycle(); the default has nothing to credit.
  virtual void skipCycles(sim::Cycle n) { (void)n; }

  virtual sim::StatSet& stats() = 0;
  virtual const sim::StatSet& stats() const = 0;

  /// Cycles the primary CPU stalled on a not-ready FE read (Fig. 6/7).
  virtual std::uint64_t cpuWaitCycles() const = 0;
  /// Cycles the accelerator was throttled by buffer availability.
  virtual std::uint64_t hhtWaitCycles() const = 0;

  // ---- fault surface ----

  /// Latch a detected fault (first one wins; later reports are dropped so
  /// CAUSE names the root error, not a cascade).
  void raiseFault(sim::FaultCause cause, std::string detail) override {
    if (fault_cause_ != sim::FaultCause::None) return;
    fault_cause_ = cause;
    fault_detail_ = std::move(detail);
    ++stats().counter("hht.faults_raised");
  }
  /// Re-arm after software handled the fault (the FAULT_CLEAR MMR).
  void clearFault() {
    fault_cause_ = sim::FaultCause::None;
    fault_detail_.clear();
  }
  bool faultRaised() const { return fault_cause_ != sim::FaultCause::None; }
  sim::FaultCause faultCause() const { return fault_cause_; }
  const std::string& faultDetail() const { return fault_detail_; }

  /// Wire the shared fault injector (nullptr = no injection, zero cost).
  virtual void setFaultInjector(sim::FaultInjector* injector) = 0;

  /// Attach a structured trace sink (obs layer). Host-side observation
  /// only — never serialized, never consulted by simulated logic. An
  /// attached sink forces per-cycle mode (nextEventCycle returns now + 1)
  /// so no traced cycle is ever fast-forwarded over.
  virtual void setTraceSink(obs::TraceSink* sink) { (void)sink; }

  /// Return to the just-constructed state: MMRs cleared, buffers emptied,
  /// engine torn down, fault latch re-armed. Used by the harness's
  /// graceful-degradation path before re-running on the software baseline.
  virtual void reset() = 0;

  /// Monotonic count of observable forward progress (FIFO pops, and for the
  /// programmable variant the micro-core's retired instructions). Feeds the
  /// run loop's watchdog.
  virtual std::uint64_t progressSignal() const = 0;

  /// Multi-line snapshot for diagnostic dumps.
  virtual std::string describeState() const = 0;

  /// Checkpoint hooks. Implementations that cannot snapshot themselves
  /// (the programmable variant borrows its firmware by reference) throw
  /// SimError(Checkpoint) from both.
  virtual void serialize(sim::StateWriter& w) const = 0;
  virtual void deserialize(sim::StateReader& r) = 0;

 protected:
  /// Shared fault-latch serialization for the concrete devices.
  void serializeFaultLatch(sim::StateWriter& w) const {
    w.u32(static_cast<std::uint32_t>(fault_cause_));
    w.str(fault_detail_);
  }
  void deserializeFaultLatch(sim::StateReader& r) {
    fault_cause_ = static_cast<sim::FaultCause>(r.u32());
    fault_detail_ = r.str();
  }

  sim::FaultCause fault_cause_ = sim::FaultCause::None;
  std::string fault_detail_;
};

}  // namespace hht::core
