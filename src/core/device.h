#pragma once

#include "mem/mmio.h"
#include "sim/stats.h"
#include "sim/types.h"

namespace hht::core {

/// Common interface of the two HHT implementations: the dedicated ASIC
/// (core::Hht, §3) and the programmable micro-core variant (core::MicroHht,
/// the §7 design the paper proposes as future work). The harness and the
/// primary core interact with either through this surface plus the shared
/// MMIO register map (core/mmr.h).
class HhtDevice : public mem::MmioDevice {
 public:
  /// Advance the accelerator one cycle (called before the primary core).
  virtual void tick(sim::Cycle now) = 0;

  /// Producing, or holding undelivered data.
  virtual bool busy() const = 0;

  virtual sim::StatSet& stats() = 0;
  virtual const sim::StatSet& stats() const = 0;

  /// Cycles the primary CPU stalled on a not-ready FE read (Fig. 6/7).
  virtual std::uint64_t cpuWaitCycles() const = 0;
  /// Cycles the accelerator was throttled by buffer availability.
  virtual std::uint64_t hhtWaitCycles() const = 0;
};

}  // namespace hht::core
