#pragma once

#include "core/buffers.h"
#include "core/config.h"
#include "core/emission.h"
#include "core/mmr.h"
#include "mem/memory_system.h"
#include "sim/stats.h"
#include "sim/types.h"

namespace hht::core {

using sim::Addr;
using sim::Cycle;

/// Everything a back-end engine needs: configuration, the programmed MMRs,
/// the shared memory system (BE port), the CPU-side buffers and the
/// emission queue feeding them, plus the device's stat set.
struct EngineContext {
  const HhtConfig& cfg;
  const MmrFile& mmr;
  mem::MemorySystem& mem;
  BufferPool& buffers;
  EmissionQueue& emit;
  sim::StatSet& stats;
};

/// A back-end engine implements one MODE's pipeline (§3.2). The device
/// ticks it once per cycle; the engine processes memory responses, performs
/// its comparisons/address generation, and issues at most
/// cfg.be_issue_per_cycle new memory requests.
class Engine {
 public:
  explicit Engine(const EngineContext& ctx) : ctx_(ctx) {}
  virtual ~Engine() = default;

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  virtual void tick(Cycle now) = 0;

  /// True once every slot of the stream has been handed to the emission
  /// queue (the queue and buffers may still hold undelivered slots).
  virtual bool done() const = 0;

  /// Issue one 4-byte BE read. Callers (the engine itself and its walker
  /// helpers) enforce the per-cycle issue budget.
  mem::RequestId issueReadFor(Addr addr) {
    ++ctx_.stats.counter("hht.mem_reads");
    return ctx_.mem.submit({addr, 4, false, 0, mem::Requester::Hht});
  }

 protected:
  EngineContext ctx_;
};

}  // namespace hht::core
