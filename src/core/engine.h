#pragma once

#include <string>

#include "core/buffers.h"
#include "core/config.h"
#include "core/emission.h"
#include "core/mmr.h"
#include "mem/memory_system.h"
#include "obs/trace.h"
#include "sim/state_io.h"
#include "sim/stats.h"
#include "sim/types.h"

namespace hht::core {

using sim::Addr;
using sim::Cycle;

/// Everything a back-end engine needs: configuration, the programmed MMRs,
/// the shared memory system (BE port), the CPU-side buffers and the
/// emission queue feeding them, plus the device's stat set.
struct EngineContext {
  const HhtConfig& cfg;
  const MmrFile& mmr;
  mem::MemorySystem& mem;
  BufferPool& buffers;
  EmissionQueue& emit;
  sim::StatSet& stats;
  /// Where detected faults go (the owning device). May be null in
  /// unit-test contexts; reports are then dropped.
  sim::FaultSink* fault = nullptr;
  /// Structured trace sink (obs layer); null = no tracing, zero cost.
  obs::TraceSink* trace = nullptr;
  /// Tile this BE's memory traffic belongs to (multi-tile scale-out; 0 in
  /// a single-tile system).
  std::uint8_t tile = 0;
};

/// A back-end engine implements one MODE's pipeline (§3.2). The device
/// ticks it once per cycle; the engine processes memory responses, performs
/// its comparisons/address generation, and issues at most
/// cfg.be_issue_per_cycle new memory requests.
class Engine {
 public:
  explicit Engine(const EngineContext& ctx)
      : ctx_(ctx), c_mem_reads_(&ctx_.stats.counter("hht.mem_reads")) {}
  virtual ~Engine() = default;

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  virtual void tick(Cycle now) = 0;

  /// True once every slot of the stream has been handed to the emission
  /// queue (the queue and buffers may still hold undelivered slots).
  virtual bool done() const = 0;

  /// Quiescence protocol (DESIGN.md §11): credit `n` ticks the device
  /// skipped over. Engines whose tick advances free-running state even
  /// while idle (the comparator recurrence phase) override this so a
  /// skipping run serializes byte-identically to a naive one.
  virtual void creditSkippedCycles(Cycle n) { (void)n; }

  /// Checkpoint hooks. The base serializes the shared `faulted_` flag;
  /// each engine appends its own pipeline latches and walker state. The
  /// restoring device reconstructs the engine from the (already-restored)
  /// MMRs via its mode factory, then calls deserialize.
  virtual void serialize(sim::StateWriter& w) const { w.b(faulted_); }
  virtual void deserialize(sim::StateReader& r) { faulted_ = r.b(); }

  /// Issue one 4-byte BE read. Callers (the engine itself and its walker
  /// helpers) enforce the per-cycle issue budget.
  ///
  /// Every BE-generated address passes a physical bounds check here: an
  /// address outside the SRAM (the product of corrupted metadata) raises an
  /// AddrOutOfBounds fault and returns kInvalidRequest instead of letting
  /// the corrupt pointer reach the memory system.
  mem::RequestId issueReadFor(Addr addr) {
    if (!ctx_.mem.sram().inBounds(addr, 4)) {
      reportFault(sim::FaultCause::AddrOutOfBounds,
                  "BE-generated read address 0x" + toHex(addr) +
                      " outside SRAM (" +
                      std::to_string(ctx_.mem.sram().size()) + " bytes)");
      return mem::kInvalidRequest;
    }
    ++*c_mem_reads_;
    return ctx_.mem.submit(
        {addr, 4, false, 0, mem::Requester::Hht, ctx_.tile});
  }

  /// One-load gate for the per-tick response polls: when this tile's BE
  /// lane holds no completed response, no stream poll can make progress, so
  /// the per-pending scans are skipped wholesale on quiet cycles.
  bool responsesWaiting() const {
    return ctx_.mem.hasResponses(mem::Requester::Hht, ctx_.tile);
  }

  /// Report a detected fault to the owning device and freeze this engine
  /// (the device stops ticking a faulted pipeline).
  void reportFault(sim::FaultCause cause, const std::string& detail) {
    faulted_ = true;
    if (ctx_.fault != nullptr) ctx_.fault->raiseFault(cause, detail);
  }
  bool faulted() const { return faulted_; }

  /// Validate a CSR row extent [start, end) fetched from memory before any
  /// address is generated from it. A corrupted row pointer shows up as an
  /// inverted extent (end < start would underflow into a ~4-billion-element
  /// row) or one past the programmed M_NNZ cap. Returns false (fault
  /// raised) when the metadata cannot be trusted.
  bool checkRowExtent(std::uint32_t row, std::uint32_t start,
                      std::uint32_t end) {
    if (end < start) {
      reportFault(sim::FaultCause::MalformedMeta,
                  "CSR row " + std::to_string(row) +
                      " extent inverted: rows[r+1]=" + std::to_string(end) +
                      " < rows[r]=" + std::to_string(start));
      return false;
    }
    if (ctx_.mmr.m_nnz != 0 && end > ctx_.mmr.m_nnz) {
      reportFault(sim::FaultCause::MalformedMeta,
                  "CSR row " + std::to_string(row) + " extent end " +
                      std::to_string(end) + " exceeds programmed M_NNZ " +
                      std::to_string(ctx_.mmr.m_nnz));
      return false;
    }
    return true;
  }

  /// Trace helpers for the per-engine pipeline events. The emit sites sit
  /// exactly at the corresponding stat-counter bumps so the profiler's
  /// tallies reconcile with fig6/fig7 counters by construction.
  void traceRowDone(Cycle now, std::uint64_t row) {
    if (ctx_.trace != nullptr && ctx_.trace->enabled(obs::Category::kPipe)) {
      ctx_.trace->emit(now, obs::Category::kPipe, obs::Component::kHhtBe,
                       obs::EventKind::kEngineRowDone, row);
    }
  }
  void traceEmitStall(Cycle now) {
    if (ctx_.trace != nullptr && ctx_.trace->enabled(obs::Category::kPipe)) {
      ctx_.trace->emit(now, obs::Category::kPipe, obs::Component::kHhtBe,
                       obs::EventKind::kEngineEmitStall);
    }
  }

 protected:
  static std::string toHex(Addr addr) {
    static const char* digits = "0123456789abcdef";
    std::string out;
    for (int shift = 28; shift >= 0; shift -= 4) {
      out.push_back(digits[(addr >> shift) & 0xF]);
    }
    return out;
  }

  EngineContext ctx_;
  bool faulted_ = false;
  std::uint64_t* c_mem_reads_;  ///< hot path: one BE read per issue slot
};

}  // namespace hht::core
