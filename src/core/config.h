#pragma once

#include <cstdint>

#include "sim/error.h"
#include "sim/types.h"

namespace hht::core {

using sim::Cycle;

/// Operating mode programmed into the MODE register (§3, §5.1, §6).
enum class Mode : std::uint32_t {
  SpmvGather = 0,  ///< SpMV: gather V values at the row's column indices
  SpmspvV1 = 1,    ///< SpMSpV variant-1: emit aligned (m_val, v_val) pairs
  SpmspvV2 = 2,    ///< SpMSpV variant-2: emit v value or 0 per matrix NZ
  HierBitmap = 3,  ///< SMASH-style hierarchical-bitmap walk + gather (§6)
  FlatBitmap = 4,  ///< one-level bit-vector walk (Fig. 1's second format)
};

/// ASIC HHT design-time parameters.
///
/// Table 1 fixes N=2 buffers of 32 B (8 x 32-bit elements, matching the
/// vector width BLEN). The back-end's single memory port (one request per
/// cycle) and one-comparison-per-cycle merge unit reflect the "simple
/// dedicated hardware" sizing of §3; benches sweep these for ablations.
struct HhtConfig {
  std::uint32_t num_buffers = 2;        ///< N CPU-side buffers (>=1)
  std::uint32_t buffer_len = 8;         ///< BLEN, elements per buffer
  std::uint32_t be_issue_per_cycle = 1; ///< BE memory requests issued/cycle
  std::uint32_t cmp_per_cycle = 1;      ///< comparisons per merge step (v1/v2)
  /// Cycles per merge step: the compare-select-advance recurrence of the
  /// merge unit (head mux, comparator, pointer update) does not close in a
  /// single cycle in the ASIC, so one comparison completes every
  /// cmp_recurrence cycles.
  std::uint32_t cmp_recurrence = 2;
  std::uint32_t emit_per_cycle = 2;     ///< slots drained to buffers/cycle
  std::uint32_t prefetch_queue = 8;     ///< per-stream index prefetch depth
  /// Reorder/emission queue depth. This models the pipeline-stage storage
  /// between the BE and the CPU-side buffers, so it is kept small — a deep
  /// queue would act as hidden extra buffering and erase the difference
  /// between the 1-buffer and 2-buffer configurations of Fig. 4/5.
  std::uint32_t emission_queue = 2;

  /// End-to-end stream checksum channel (DESIGN.md §15): the BE folds every
  /// slot it stages into a running CRC-32C, the last slot of each published
  /// buffer carries the running value as a check tag, and the FE re-folds
  /// every slot it delivers and compares at each tag — so corruption
  /// anywhere between staging and delivery (FIFO cell, merge path, the
  /// delivery port itself) raises FaultCause::StreamCheck at the
  /// architectural boundary instead of shipping silently. Excluded from the
  /// snapshot config fingerprint (same discipline as host_fastforward):
  /// with no corruption the channel never changes an architectural outcome.
  bool e2e_check = false;
  /// Poison containment (DESIGN.md §15): an ECC-uncorrectable *value* fetch
  /// no longer freezes the whole engine at poll time; the poisoned response
  /// fills its reserved slot with the poison bit set, flows through the
  /// FIFOs in order, and faults (MemUncorrectable) precisely when the FE
  /// would deliver it — turning a coarse pipeline freeze into an exact,
  /// tile-attributable delivery-point error. Metadata walks (row pointers,
  /// index streams) keep the immediate-fault semantics: their loss corrupts
  /// control flow, not one element. Fingerprint-excluded like e2e_check.
  bool poison_containment = false;

  /// Test-only hook for the verification layer: when not ~0, the FE XORs
  /// bit 0 of the Nth delivered BUF_DATA element (0-based, parity left OK —
  /// a *silent* corruption the differential oracle must catch). Never set
  /// outside fuzz-campaign self-tests; no hardware analogue.
  std::uint64_t test_flip_element = ~0ull;

  /// Reject impossible sizings with SimError(Config). Every field below is
  /// a hardware resource count — zero means "this unit does not exist" and
  /// the pipelines would deadlock rather than error at runtime.
  void validate() const {
    const struct {
      const char* name;
      std::uint32_t value;
    } required[] = {
        {"num_buffers", num_buffers},
        {"buffer_len", buffer_len},
        {"be_issue_per_cycle", be_issue_per_cycle},
        {"cmp_per_cycle", cmp_per_cycle},
        {"cmp_recurrence", cmp_recurrence},
        {"emit_per_cycle", emit_per_cycle},
        {"prefetch_queue", prefetch_queue},
        {"emission_queue", emission_queue},
    };
    for (const auto& field : required) {
      if (field.value == 0) {
        throw sim::SimError(sim::ErrorKind::Config, "hht",
                            std::string(field.name) + " must be >= 1");
      }
    }
    // Variant-1 reserves both slots of an aligned (m_val, v_val) pair
    // atomically at compare time so the stream order is fixed while the two
    // value fetches are in flight. A 1-deep emission queue can never accept
    // a pair, so the back-end wedges with the CPU blocked on the FE — found
    // by the differential fuzz campaign, now rejected up front.
    if (emission_queue < 2) {
      throw sim::SimError(sim::ErrorKind::Config, "hht",
                          "emission_queue must be >= 2 (variant-1 reserves "
                          "aligned m/v pair slots atomically)");
    }
  }
};

}  // namespace hht::core
