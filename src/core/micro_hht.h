#pragma once

#include <memory>

#include "core/buffers.h"
#include "core/config.h"
#include "core/device.h"
#include "core/mmr.h"
#include "cpu/core.h"
#include "mem/memory_system.h"

namespace hht::core {

/// The *programmable* Hardware Helper Thread proposed in the paper's
/// conclusions (§7): instead of the fixed-function gather/merge pipelines,
/// a minimal scalar RISC-V-like micro-core ("very few integer instructions,
/// very few integer registers, very small caches") runs *firmware* that
/// performs the metadata walk in software and feeds the same CPU-side
/// buffers through a push port.
///
/// The CPU-facing register map is identical to the ASIC HHT's, so the
/// primary core runs the same consumer kernels unchanged; only the engine
/// behind the buffers differs. Firmware talks to the front-end via the
/// kFw* offsets: a blocking read of kFwSpace (free buffer slots — the
/// flow-control the ASIC's control unit does in hardware) followed by a
/// posted write of the element to one of the push offsets.
///
/// The flexibility/performance trade-off the paper anticipates shows up
/// directly: bench/abl_programmable measures the slowdown of firmware
/// metadata processing versus the ASIC pipelines.
class MicroHht final : public HhtDevice {
 public:
  MicroHht(const HhtConfig& config, mem::MemorySystem& memory,
           const cpu::TimingConfig& micro_timing = cpu::TimingConfig{});

  /// Install the firmware the micro-core will run on the next START pulse.
  /// The program must end in ECALL (firmware halts when the stream is
  /// fully pushed).
  void setFirmware(const isa::Program& firmware);

  void tick(sim::Cycle now) override;
  bool busy() const override;

  /// Quiescence protocol (DESIGN.md §11): the front-end has no autonomous
  /// per-cycle work, so skippability delegates to the micro-core (whose
  /// Busy stretches — long divides in address arithmetic — are exactly the
  /// firmware's dead cycles).
  sim::Cycle nextEventCycle(sim::Cycle now) const override;
  void skipCycles(sim::Cycle n) override;

  mem::MmioReadResult mmioRead(Addr offset, std::uint32_t size,
                               mem::Requester who) override;
  void mmioWrite(Addr offset, std::uint32_t size, std::uint32_t value,
                 mem::Requester who) override;

  sim::StatSet& stats() override { return stats_; }
  const sim::StatSet& stats() const override { return stats_; }
  std::uint64_t cpuWaitCycles() const override {
    return stats_.value("hht.cpu_wait_cycles");
  }
  std::uint64_t hhtWaitCycles() const override {
    return stats_.value("hht.fw_space_wait_cycles");
  }

  const MmrFile& mmrs() const { return mmr_; }
  cpu::Core& microCore() { return *micro_core_; }
  const cpu::Core& microCore() const { return *micro_core_; }

  // ---- observability surface (HhtDevice) ----
  // Host-only, never serialized: forwards to the embedded micro-core as
  // Component::kMicroCore so firmware compute/stall phases show up as
  // their own trace track alongside the front-end FIFO events.
  void setTraceSink(obs::TraceSink* sink) override {
    trace_ = sink;
    trace_bucket_ = obs::kNoBucket;
    micro_core_->setTraceSink(sink, obs::Component::kMicroCore);
  }

  // ---- fault surface (HhtDevice) ----
  void setFaultInjector(sim::FaultInjector* injector) override;
  std::uint64_t progressSignal() const override;
  void reset() override;
  std::string describeState() const override;

  // ---- checkpoint surface (HhtDevice) ----
  // The programmable variant borrows its firmware by reference and cannot
  // prove a restored program matches; checkpointing it is a documented
  // limitation (DESIGN.md §10) until firmware lives in simulated memory.
  void serialize(sim::StateWriter&) const override {
    throw sim::SimError(sim::ErrorKind::Checkpoint, "uhht",
                        "the programmable HHT does not support checkpoints "
                        "(firmware is borrowed host state)");
  }
  void deserialize(sim::StateReader&) override {
    throw sim::SimError(sim::ErrorKind::Checkpoint, "uhht",
                        "the programmable HHT does not support checkpoints "
                        "(firmware is borrowed host state)");
  }

 private:
  void start();
  mem::MmioReadResult cpuRead(Addr offset);
  mem::MmioReadResult firmwareRead(Addr offset);
  void firmwareWrite(Addr offset, std::uint32_t value);

  HhtConfig cfg_;
  MmrFile mmr_;
  BufferPool buffers_;
  std::unique_ptr<cpu::Core> micro_core_;
  const isa::Program* firmware_ = nullptr;
  bool started_ = false;
  /// FE-side running stream CRC (e2e_check; the CHECK_FE MMR). The BE side
  /// lives in the pool: firmware pushes funnel through BufferPool::push,
  /// the single fold chokepoint — so the channel covers firmware streams
  /// with no firmware changes.
  std::uint32_t fe_crc_ = 0;
  bool mmr_parity_ok_ = true;
  sim::FaultInjector* injector_ = nullptr;
  // Host-only observability state (never serialized; see DESIGN.md §12).
  // MMIO handlers run during the memory tick, after this device's tick at
  // the same cycle, so FIFO/firmware-port events are stamped with the
  // cycle recorded at tick() entry.
  obs::TraceSink* trace_ = nullptr;
  std::uint8_t trace_bucket_ = obs::kNoBucket;
  sim::Cycle last_tick_cycle_ = 0;
  sim::StatSet stats_;
  std::uint64_t* fifo_pops_ = nullptr;  ///< cached "hht.fifo_pops"
  // Hot-path counters cached once (StatSet references are stable).
  std::uint64_t* c_active_cycles_ = nullptr;
  std::uint64_t* c_cpu_wait_cycles_ = nullptr;
  std::uint64_t* c_elements_delivered_ = nullptr;
  std::uint64_t* c_fw_space_wait_ = nullptr;
  std::uint64_t* c_fw_pushes_ = nullptr;
  std::uint64_t* c_fw_row_ends_ = nullptr;
};

}  // namespace hht::core
