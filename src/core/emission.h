#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <vector>

#include "core/buffers.h"

namespace hht::core {

/// In-order emission/reorder queue between a back-end engine and the
/// buffer pool.
///
/// Engines discover the *order* of emitted slots before all their payloads
/// are available (e.g. variant-2 interleaves immediate zeros with vector
/// values still being fetched from memory; variant-1 reserves the m/v pair
/// slots at compare time and fills them when the two value reads return).
/// The engine reserves slots in stream order, fills them as responses
/// arrive, and the queue drains filled head slots into the BufferPool at
/// the pipeline's emit rate.
class EmissionQueue {
 public:
  using Ticket = std::uint64_t;

  explicit EmissionQueue(std::uint32_t depth) : depth_(depth) {}

  bool canReserve(std::uint32_t slots = 1) const {
    return entries_.size() + slots <= depth_;
  }

  /// Reserve the next slot in stream order; fill it later via fill().
  Ticket reserve() {
    if (!canReserve()) throw std::logic_error("EmissionQueue overflow");
    entries_.push_back(std::nullopt);
    return base_ + entries_.size() - 1;
  }

  /// Reserve and immediately fill (markers, literal zeros).
  void emitNow(const Slot& slot) {
    const Ticket t = reserve();
    fill(t, slot);
  }

  void fill(Ticket ticket, const Slot& slot) {
    if (ticket < base_ || ticket - base_ >= entries_.size()) {
      throw std::logic_error("EmissionQueue::fill bad ticket");
    }
    auto& entry = entries_[static_cast<std::size_t>(ticket - base_)];
    if (entry.has_value()) throw std::logic_error("EmissionQueue double fill");
    entry = slot;
  }

  /// Move up to `max_slots` filled head slots into the pool (bounded also
  /// by the pool's free capacity). Returns slots drained.
  std::uint32_t drainTo(BufferPool& pool, std::uint32_t max_slots) {
    std::uint32_t drained = 0;
    while (drained < max_slots && !entries_.empty() &&
           entries_.front().has_value() && pool.canPush()) {
      pool.push(*entries_.front());
      entries_.erase(entries_.begin());
      ++base_;
      ++drained;
    }
    return drained;
  }

  bool empty() const { return entries_.empty(); }
  std::size_t size() const { return entries_.size(); }

  void reset() {
    entries_.clear();
    base_ = 0;
  }

  void serialize(sim::StateWriter& w) const {
    w.tag("EMIQ");
    w.u64(base_);
    w.u64(entries_.size());
    for (const auto& entry : entries_) {
      w.b(entry.has_value());
      if (entry) {
        w.u32(entry->bits);
        w.b(entry->is_row_end);
        w.b(entry->publish_after);
        w.b(entry->parity_ok);
        w.b(entry->poisoned);    // snapshot v5: integrity channel fields
        w.b(entry->has_check);
        w.u32(entry->check);
      }
    }
  }

  void deserialize(sim::StateReader& r) {
    r.expectTag("EMIQ");
    base_ = r.u64();
    entries_.clear();
    const std::uint64_t n = r.u64();
    for (std::uint64_t i = 0; i < n; ++i) {
      if (!r.b()) {
        entries_.push_back(std::nullopt);
        continue;
      }
      Slot slot;
      slot.bits = r.u32();
      slot.is_row_end = r.b();
      slot.publish_after = r.b();
      slot.parity_ok = r.b();
      slot.poisoned = r.b();
      slot.has_check = r.b();
      slot.check = r.u32();
      entries_.push_back(slot);
    }
  }

 private:
  std::uint32_t depth_;
  /// Bounded by depth_ and touched every engine tick; a contiguous vector
  /// keeps reserve/fill/drain on cache-line-friendly storage.
  std::vector<std::optional<Slot>> entries_;
  Ticket base_ = 0;
};

}  // namespace hht::core
