#pragma once

#include <memory>

#include "core/buffers.h"
#include "core/config.h"
#include "core/device.h"
#include "core/emission.h"
#include "core/engine.h"
#include "core/mmr.h"
#include "mem/memory_system.h"
#include "sim/probe.h"
#include "sim/stats.h"

namespace hht::core {

/// The Hardware Helper Thread device: front-end (MMRs + CPU-side buffers +
/// streaming FIFO load interface) and back-end (per-mode pipeline engine),
/// coupled through the control unit's buffer-availability throttling (§3).
///
/// Attach to the memory system's MMIO window and tick once per cycle
/// *before* the CPU (registered interface: data published in cycle t is
/// loadable at t+1).
class Hht final : public HhtDevice {
 public:
  /// `tile` identifies the {CPU+HHT} tile this device belongs to in a
  /// multi-tile system; the BE tags its memory traffic with it (0 in the
  /// paper's single-tile machine).
  Hht(const HhtConfig& config, mem::MemorySystem& memory,
      std::uint32_t tile = 0);

  /// Advance the back-end one cycle and drain the emission queue into the
  /// CPU-side buffers.
  void tick(sim::Cycle now) override;

  /// Quiescence protocol (DESIGN.md §11). The device is skippable only
  /// once the engine is done, the emission queue is drained, the tail
  /// buffer is flushed and the BE's memory traffic has fully drained
  /// (a done engine may still hold speculative reads in flight whose
  /// responses only leave the memory system through its tick polls). Any
  /// attached observer — stream tap or trace sink — forces per-cycle mode:
  /// delivery timestamps must come from real ticks. The two share one
  /// combined check so stacking observers never double-disables anything.
  sim::Cycle nextEventCycle(sim::Cycle now) const override;
  void skipCycles(sim::Cycle n) override;

  // MmioDevice interface (driven by the memory system). The ASIC HHT has
  // no device-side micro-core, so `who` only guards against misuse.
  mem::MmioReadResult mmioRead(Addr offset, std::uint32_t size,
                               mem::Requester who) override;
  void mmioWrite(Addr offset, std::uint32_t size, std::uint32_t value,
                 mem::Requester who) override;

  /// True while the BE is producing or the FE holds undelivered data.
  bool busy() const override;

  const MmrFile& mmrs() const { return mmr_; }
  const HhtConfig& config() const { return cfg_; }
  sim::StatSet& stats() override { return stats_; }
  const sim::StatSet& stats() const override { return stats_; }

  /// Cycles the CPU spent stalled on a not-ready FE read — Fig. 6/7's
  /// "CPU wait" metric.
  std::uint64_t cpuWaitCycles() const override {
    return stats_.value("hht.cpu_wait_cycles");
  }
  /// Cycles the BE spent throttled because all buffers were full — the
  /// control unit's "HHT waiting for CPU" counter (§4).
  std::uint64_t hhtWaitCycles() const override {
    return stats_.value("hht.stall_buffers_full");
  }

  // ---- fault surface (HhtDevice) ----
  void setFaultInjector(sim::FaultInjector* injector) override;
  void reset() override;
  std::uint64_t progressSignal() const override { return *fifo_pops_; }
  std::string describeState() const override;

  // ---- verification / observability surface ----

  /// Register an observer of every delivered element (a DifferentialOracle
  /// tap, a test probe, ...). Several can coexist; delivery order is
  /// registration order. Empty registry = zero overhead per pop.
  void addStreamTap(sim::StreamTap* tap) { taps_.add(tap); }
  void removeStreamTap(sim::StreamTap* tap) { taps_.remove(tap); }
  /// Attach a structured trace sink (obs layer; host-only, not serialized).
  void setTraceSink(obs::TraceSink* sink) override {
    trace_ = sink;
    trace_bucket_ = obs::kNoBucket;
  }
  /// Read-only FE internals for the oracle's occupancy invariants.
  const BufferPool& bufferPool() const { return buffers_; }
  const EmissionQueue& emissionQueue() const { return emit_; }

  // ---- checkpoint surface (HhtDevice) ----
  void serialize(sim::StateWriter& w) const override;
  void deserialize(sim::StateReader& r) override;

 private:
  void start();
  /// Construct the mode's back-end engine from the current MMRs (shared by
  /// start() and deserialize(); engine constructors have no memory side
  /// effects, so reconstruct-then-deserialize restores exact state).
  std::unique_ptr<Engine> makeEngine();

  HhtConfig cfg_;
  mem::MemorySystem& mem_;
  std::uint8_t tile_;
  MmrFile mmr_;
  BufferPool buffers_;
  EmissionQueue emit_;
  std::unique_ptr<Engine> engine_;
  bool finished_flush_done_ = false;
  /// FE-side running stream CRC (e2e_check): folds every slot the FE pops,
  /// compared against the BE's check tag on each published buffer's closing
  /// slot. Architectural state (the CHECK_FE MMR) — serialized (v5).
  std::uint32_t fe_crc_ = 0;
  /// Config-register parity: cleared when the injector glitches a latched
  /// MMR value; checked once at START (writes are posted, so detection at
  /// use time is the only architecturally visible point).
  bool mmr_parity_ok_ = true;
  sim::FaultInjector* injector_ = nullptr;
  sim::TapRegistry taps_;
  /// Host-only trace state (not serialized).
  obs::TraceSink* trace_ = nullptr;
  std::uint8_t trace_bucket_ = obs::kNoBucket;
  /// Cycle of the most recent tick; MMIO pops have no cycle parameter, so
  /// this is the timestamp the stream taps (and divergence reports) see.
  sim::Cycle last_tick_cycle_ = 0;
  sim::StatSet stats_;
  std::uint64_t* fifo_pops_;  ///< cached "hht.fifo_pops" (watchdog signal)
  // Hot-path counters cached once (StatSet references are stable).
  std::uint64_t* c_active_cycles_;
  std::uint64_t* c_stall_buffers_full_;
  std::uint64_t* c_cpu_wait_cycles_;
  std::uint64_t* c_elements_delivered_;
};

}  // namespace hht::core
