#include "serve/server.h"

#include <algorithm>
#include <bit>

#include "harness/sweep.h"
#include "sparse/reference.h"

namespace hht::serve {

namespace {

constexpr std::uint32_t kServeSnapshotVersion = 1;
/// Same golden-ratio stride MultiTileSystem uses to give each tile its own
/// fault stream.
constexpr std::uint64_t kTileSeedStride = 0x9E3779B97F4A7C15ull;
constexpr std::uint64_t kAttemptSeedStride = 0xD1B54A32D192ED03ull;
constexpr std::uint64_t kRequestSeedStride = 0x632BE59BD9B4E019ull;

std::uint64_t fnv1a(const std::vector<std::uint8_t>& bytes) {
  std::uint64_t h = 0xCBF29CE484222325ull;
  for (const std::uint8_t b : bytes) {
    h ^= b;
    h *= 0x100000001B3ull;
  }
  return h;
}

bool sameVector(const sparse::DenseVector& got,
                const sparse::DenseVector& want) {
  if (got.size() != want.size()) return false;
  for (sim::Index i = 0; i < want.size(); ++i) {
    if (got.at(i) != want.at(i)) return false;
  }
  return true;
}

}  // namespace

void ServerConfig::validate() const {
  system.validate();
  health.validate();
  if (num_tiles == 0) {
    throw sim::SimError(sim::ErrorKind::Config, "serve",
                        "num_tiles must be >= 1");
  }
  if (queue_capacity == 0) {
    throw sim::SimError(sim::ErrorKind::Config, "serve",
                        "queue_capacity must be >= 1");
  }
  if (backoff_base == 0) {
    throw sim::SimError(sim::ErrorKind::Config, "serve",
                        "backoff_base must be >= 1");
  }
  if (probe_size == 0) {
    throw sim::SimError(sim::ErrorKind::Config, "serve",
                        "probe_size must be >= 1");
  }
  if (attempt_max_cycles == 0) {
    throw sim::SimError(sim::ErrorKind::Config, "serve",
                        "attempt_max_cycles must be >= 1");
  }
}

Server::Server(const ServerConfig& cfg)
    : cfg_(cfg), health_(cfg.num_tiles, cfg.health) {
  cfg_.validate();
}

std::optional<Rejected> Server::submit(const Request& r) {
  ++submitted_;
  const auto reject = [&](const std::string& reason) -> std::optional<Rejected> {
    Rejected rej{r.id, now_, static_cast<std::uint32_t>(queue_.size()), reason};
    rejections_.push_back(rej);
    complete(Completion{r.id, Outcome::kRejected, 0, -1, now_, 0, 0, reason});
    return rej;
  };
  if (r.size == 0) return reject("request size must be >= 1");
  if (r.deadline_cycle != 0 && r.deadline_cycle <= r.arrival_cycle) {
    return reject("deadline at or before arrival");
  }
  if (r.arrival_cycle < now_) {
    return reject("arrival cycle " + std::to_string(r.arrival_cycle) +
                  " is in the server's past (now " + std::to_string(now_) +
                  ")");
  }
  const auto taken = [&](std::uint64_t id) {
    for (const Completion& c : completions_) {
      if (c.id == id) return true;
    }
    for (const Pending& p : arrivals_) {
      if (p.r.id == id) return true;
    }
    for (const Pending& p : queue_) {
      if (p.r.id == id) return true;
    }
    for (const Pending& p : retries_) {
      if (p.r.id == id) return true;
    }
    return false;
  };
  if (taken(r.id)) {
    return reject("duplicate request id " + std::to_string(r.id));
  }
  Pending p;
  p.r = r;
  // Stable insert by arrival cycle: equal arrivals keep submission order.
  const auto pos = std::upper_bound(
      arrivals_.begin(), arrivals_.end(), r.arrival_cycle,
      [](Cycle at, const Pending& q) { return at < q.r.arrival_cycle; });
  arrivals_.insert(pos, std::move(p));
  return std::nullopt;
}

void Server::complete(Completion c) { completions_.push_back(std::move(c)); }

void Server::shed(const Request& r, const std::string& reason) {
  rejections_.push_back(
      Rejected{r.id, now_, static_cast<std::uint32_t>(queue_.size()), reason});
  complete(Completion{r.id, Outcome::kRejected, 0, -1, now_, 0, 0, reason});
}

void Server::admitArrivals() {
  while (!arrivals_.empty() && arrivals_.front().r.arrival_cycle <= now_) {
    Pending p = std::move(arrivals_.front());
    arrivals_.erase(arrivals_.begin());
    if (queue_.size() >= cfg_.queue_capacity) {
      shed(p.r, "queue full (" + std::to_string(cfg_.queue_capacity) +
                    " requests) at admission");
      continue;
    }
    queue_.push_back(std::move(p));
  }
}

std::uint64_t Server::drain(std::uint64_t batch_limit) {
  std::uint64_t executed = 0;
  while (executed < batch_limit && !idle()) {
    if (stepBatch()) ++executed;
  }
  return executed;
}

bool Server::stepBatch() {
  // If nothing is dispatchable now, jump the clock to the next event
  // (earliest arrival or retry becoming ready). Safe: !idle() guarantees
  // such an event exists whenever the queue is empty.
  if (queue_.empty()) {
    bool any_ready =
        !arrivals_.empty() && arrivals_.front().r.arrival_cycle <= now_;
    for (const Pending& p : retries_) any_ready |= p.ready_cycle <= now_;
    if (!any_ready) {
      Cycle next = ~Cycle{0};
      if (!arrivals_.empty()) {
        next = std::min(next, arrivals_.front().r.arrival_cycle);
      }
      for (const Pending& p : retries_) next = std::min(next, p.ready_cycle);
      if (next == ~Cycle{0}) return false;  // idle (caller re-checks)
      now_ = std::max(now_, next);
    }
  }
  admitArrivals();

  // Ready retries dispatch ahead of fresh queue entries (they have waited
  // longest); order within the retry set is (ready_cycle, id) — stable and
  // jobs-independent.
  std::deque<Pending> pool;
  for (auto it = retries_.begin(); it != retries_.end();) {
    if (it->ready_cycle <= now_) {
      pool.push_back(std::move(*it));
      it = retries_.erase(it);
    } else {
      ++it;
    }
  }
  while (!queue_.empty()) {
    pool.push_back(std::move(queue_.front()));
    queue_.pop_front();
  }

  // Deadline shedding at dispatch: a request whose deadline already passed
  // never occupies a tile.
  for (auto it = pool.begin(); it != pool.end();) {
    if (it->r.deadline_cycle != 0 && now_ > it->r.deadline_cycle) {
      complete(Completion{it->r.id, Outcome::kDeadlineExpired,
                          it->attempts_used, it->last_tile, now_,
                          now_ - it->r.arrival_cycle, 0,
                          "deadline " + std::to_string(it->r.deadline_cycle) +
                              " passed before dispatch" +
                              (it->last_error.empty()
                                   ? std::string()
                                   : "; last fault: " + it->last_error)});
      it = pool.erase(it);
    } else {
      ++it;
    }
  }

  // Eligible tiles: the healthy ones — or, as a last resort so admitted
  // work always drains, every tile (attempts then run degraded when the
  // fallback is enabled).
  std::vector<std::uint32_t> tiles;
  for (std::uint32_t t = 0; t < cfg_.num_tiles; ++t) {
    if (!health_.quarantined(t)) tiles.push_back(t);
  }
  const bool no_healthy = tiles.empty();
  if (no_healthy) {
    for (std::uint32_t t = 0; t < cfg_.num_tiles; ++t) tiles.push_back(t);
  }

  std::vector<Job> jobs;
  // Probes first: a quarantined tile whose cooldown elapsed gets a canary
  // this batch (it rides the same host pool as real attempts).
  for (std::uint32_t t = 0; t < cfg_.num_tiles; ++t) {
    if (health_.probeDue(t)) {
      Job j;
      j.is_probe = true;
      j.tile = t;
      j.probe_seq = probe_seq_++;
      jobs.push_back(std::move(j));
    }
  }
  // One attempt per eligible tile. A retried request prefers a tile other
  // than the one that faulted on it (re-execute in-flight work on healthy
  // *different* silicon when the pool allows it).
  for (const std::uint32_t t : tiles) {
    if (pool.empty()) break;
    auto pick = pool.begin();
    for (auto it = pool.begin(); it != pool.end(); ++it) {
      if (it->last_tile != static_cast<std::int32_t>(t)) {
        pick = it;
        break;
      }
    }
    Job j;
    j.p = std::move(*pick);
    pool.erase(pick);
    j.tile = t;
    const std::uint32_t attempt_index = j.p.attempts_used + 1;
    const std::uint32_t total_attempts = cfg_.retry_budget + 1;
    j.degraded = cfg_.degraded_fallback &&
                 ((attempt_index > 1 && attempt_index == total_attempts) ||
                  no_healthy);
    jobs.push_back(std::move(j));
  }
  // Anything not dispatched this batch returns to the queue unchanged.
  while (!pool.empty()) {
    queue_.push_front(std::move(pool.back()));
    pool.pop_back();
  }

  if (jobs.empty()) return false;  // everything expired or backed off

  // Execute the batch on the host pool. Each job is a pure function of its
  // own fields, so results are byte-identical for every jobs value; faults
  // are caught inside the task (SweepRunner rethrows escapes).
  harness::SweepRunner runner(cfg_.jobs);
  const std::vector<AttemptResult> results =
      runner.run(jobs.size(), [&](std::size_t i) -> AttemptResult {
        const Job& j = jobs[i];
        if (j.is_probe) return runProbe(j.tile, j.probe_seq);
        return runAttempt(j.p.r, j.tile, j.p.attempts_used + 1, j.degraded);
      });

  // Batch duration on the server clock: the slowest attempt (the tiles run
  // concurrently in simulated time). Individual requests finish at
  // now_ + their own attempt's cycles.
  Cycle duration = 1;
  for (const AttemptResult& res : results) {
    duration = std::max(duration, res.cycles);
  }
  const Cycle batch_end = now_ + duration;

  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const Job& j = jobs[i];
    const AttemptResult& res = results[i];
    if (j.is_probe) {
      ++probe_count_;
      if (res.fault) {
        health_.probeFailed(j.tile);
      } else {
        health_.reinstate(j.tile);
      }
      continue;
    }
    const std::uint32_t attempt_index = j.p.attempts_used + 1;
    // Only HHT-path attempts say anything about tile health; the degraded
    // path never touches the device.
    if (!j.degraded) health_.record(j.tile, res.fault);
    if (!res.fault) {
      const Cycle finish = now_ + res.cycles;
      Outcome o = j.degraded ? Outcome::kDegraded : Outcome::kOk;
      if (j.p.r.deadline_cycle != 0 && finish > j.p.r.deadline_cycle) {
        o = Outcome::kLate;
      }
      const Cycle latency = finish - j.p.r.arrival_cycle;
      latency_hist_.add(latency);
      complete(Completion{j.p.r.id, o, attempt_index,
                          static_cast<std::int32_t>(j.tile), finish, latency,
                          res.y_hash, {}});
      continue;
    }
    if (!j.degraded) ++hht_faults_;
    if (attempt_index >= cfg_.retry_budget + 1) {
      complete(Completion{j.p.r.id, Outcome::kFailed, attempt_index,
                          static_cast<std::int32_t>(j.tile),
                          now_ + res.cycles, now_ + res.cycles - j.p.r.arrival_cycle,
                          0, "retry budget exhausted; last fault: " + res.error});
      continue;
    }
    ++retry_count_;
    Pending p = std::move(jobs[i].p);
    p.attempts_used = attempt_index;
    p.last_tile = static_cast<std::int32_t>(j.tile);
    p.last_error = res.error;
    const std::uint32_t shift = std::min(attempt_index - 1, 40u);
    p.ready_cycle = batch_end + (cfg_.backoff_base << shift);
    const auto pos = std::upper_bound(
        retries_.begin(), retries_.end(), p, [](const Pending& a, const Pending& b) {
          return a.ready_cycle != b.ready_cycle ? a.ready_cycle < b.ready_cycle
                                                : a.r.id < b.r.id;
        });
    retries_.insert(pos, std::move(p));
  }

  now_ = batch_end;
  health_.tickBatch();
  ++batches_;
  return true;
}

Server::AttemptResult Server::runAttempt(const Request& r, std::uint32_t tile,
                                         std::uint32_t attempt_index,
                                         bool degraded) const {
  AttemptResult out;
  try {
    const Operands ops = materialize(r);
    harness::SystemConfig scfg = cfg_.system;
    if (degraded) {
      // CPU-fallback mode mirrors System's graceful degradation: injection
      // is detached, the scalar software baseline computes y.
      scfg.faults.enabled = false;
    } else if (scfg.faults.enabled) {
      // Every attempt gets its own fault stream: reproducible (pure
      // function of these four values) and isolated (one attempt's fault
      // history never leaks into a retry or another tile).
      scfg.faults.seed += kTileSeedStride * tile +
                          kAttemptSeedStride * attempt_index +
                          kRequestSeedStride * r.id;
    }
    harness::System sys(scfg);
    harness::RunResult rr = [&] {
      if (r.kind == Kind::kSpmv) {
        const kernels::SpmvLayout layout = harness::loadSpmv(sys, ops.m, ops.v);
        const isa::Program prog =
            degraded ? kernels::spmvScalarBaseline(layout)
                     : kernels::spmvScalarHht(layout, scfg.memory.mmio_base);
        return sys.run(prog, layout.y, layout.num_rows, cfg_.attempt_max_cycles);
      }
      const kernels::SpmspvLayout layout = harness::loadSpmspv(sys, ops.m, ops.sv);
      const isa::Program prog =
          degraded ? kernels::spmspvScalarBaseline(layout)
                   : kernels::spmspvHhtV2Scalar(layout, scfg.memory.mmio_base);
      return sys.run(prog, layout.y, layout.num_rows, cfg_.attempt_max_cycles);
    }();
    out.cycles = std::max<Cycle>(rr.cycles, 1);
    // Acceptance check: every served result is verified against the
    // software reference before it leaves the server, so an undetected
    // in-flight corruption becomes a retryable fault — never a silently
    // wrong response (kSmallIntegers operands make == exact).
    const sparse::DenseVector reference =
        r.kind == Kind::kSpmv ? sparse::spmvCsr(ops.m, ops.v)
                              : sparse::spmspvMerge(ops.m, ops.sv);
    if (!sameVector(rr.y, reference)) {
      out.fault = true;
      out.error = "acceptance check failed: y diverges from the software "
                  "reference on tile " + std::to_string(tile);
      return out;
    }
    out.y_hash = hashVector(rr.y);
  } catch (const sim::SimError& e) {
    out.fault = true;
    // A detected fault is charged the watchdog period — the upper bound on
    // how long the failure takes to surface (deterministic, config-only).
    out.cycles = std::max<Cycle>(cfg_.system.watchdog_cycles, 1);
    out.error = e.what();
  }
  return out;
}

Server::AttemptResult Server::runProbe(std::uint32_t tile,
                                       std::uint64_t probe_seq) const {
  // The canary is a tiny SpMV whose operands derive from the probe
  // sequence number, so probe workloads never repeat (a tile must pass on
  // fresh data, not replay a memorized success) yet stay reproducible.
  Request canary;
  canary.id = ~std::uint64_t{0} - probe_seq;  // outside the user id space
  canary.kind = Kind::kSpmv;
  canary.seed = cfg_.system.faults.seed ^ (0xC0FFEEull + probe_seq);
  canary.size = cfg_.probe_size;
  return runAttempt(canary, tile, 1, /*degraded=*/false);
}

ServerStats Server::stats() const {
  ServerStats s;
  s.submitted = submitted_;
  s.batches = batches_;
  s.hht_faults = hht_faults_;
  s.retries = retry_count_;
  s.probes = probe_count_;
  s.quarantine_events = health_.quarantineEvents();
  s.reinstate_events = health_.reinstateEvents();
  s.quarantined_now = health_.quarantinedCount();
  s.final_cycle = now_;
  std::vector<Cycle> latencies;
  for (const Completion& c : completions_) {
    switch (c.outcome) {
      case Outcome::kOk: ++s.ok; break;
      case Outcome::kDegraded: ++s.degraded; break;
      case Outcome::kLate: ++s.late; break;
      case Outcome::kRejected: ++s.rejected; break;
      case Outcome::kDeadlineExpired: ++s.deadline_expired; break;
      case Outcome::kFailed: ++s.failed; break;
    }
    if (served(c.outcome)) latencies.push_back(c.latency_cycles);
  }
  s.served = latencies.size();
  if (!latencies.empty()) {
    std::sort(latencies.begin(), latencies.end());
    const auto pct = [&](std::uint64_t permille) {
      const std::size_t idx = std::min(
          latencies.size() - 1,
          static_cast<std::size_t>((latencies.size() * permille) / 1000));
      return latencies[idx];
    };
    s.p50 = pct(500);
    s.p99 = pct(990);
    s.p999 = pct(999);
    s.max_latency = latencies.back();
  }
  if (s.submitted > 0) {
    s.goodput = static_cast<double>(s.ok + s.degraded) /
                static_cast<double>(s.submitted);
  }
  return s;
}

void Server::writeConfig(sim::StateWriter& w, const ServerConfig& cfg) {
  harness::writeSystemConfig(w, cfg.system);
  w.u32(cfg.num_tiles);
  // jobs is deliberately excluded: it is a host-side knob and results are
  // byte-identical for every value (SweepRunner determinism contract).
  w.u32(cfg.queue_capacity);
  w.u32(cfg.retry_budget);
  w.u64(cfg.backoff_base);
  w.b(cfg.degraded_fallback);
  w.u32(cfg.health.window);
  w.u32(cfg.health.min_samples);
  w.u64(std::bit_cast<std::uint64_t>(cfg.health.fault_rate_threshold));
  w.u32(cfg.health.probe_period);
  w.u32(cfg.probe_size);
  w.u64(cfg.attempt_max_cycles);
}

std::uint64_t Server::configFingerprint(const ServerConfig& cfg) {
  sim::StateWriter w;
  writeConfig(w, cfg);
  return fnv1a(w.data());
}

std::vector<std::uint8_t> Server::checkpoint() const {
  sim::StateWriter w;
  w.tag("SRVS");
  w.u32(kServeSnapshotVersion);
  w.u64(configFingerprint(cfg_));
  w.u64(now_);
  w.u64(batches_);
  w.u64(probe_seq_);
  w.u64(submitted_);
  w.u64(hht_faults_);
  w.u64(retry_count_);
  w.u64(probe_count_);
  const auto pending = [&w](const Pending& p) {
    writeRequest(w, p.r);
    w.u32(p.attempts_used);
    w.u32(static_cast<std::uint32_t>(p.last_tile));
    w.u64(p.ready_cycle);
    w.str(p.last_error);
  };
  w.tag("ARRV");
  w.u64(arrivals_.size());
  for (const Pending& p : arrivals_) pending(p);
  w.tag("QUEU");
  w.u64(queue_.size());
  for (const Pending& p : queue_) pending(p);
  w.tag("RTRY");
  w.u64(retries_.size());
  for (const Pending& p : retries_) pending(p);
  w.tag("DONE");
  w.u64(completions_.size());
  for (const Completion& c : completions_) writeCompletion(w, c);
  w.tag("SHED");
  w.u64(rejections_.size());
  for (const Rejected& rej : rejections_) writeRejected(w, rej);
  health_.serialize(w);
  latency_hist_.serialize(w);
  return w.data();
}

void Server::restore(const std::vector<std::uint8_t>& snapshot) {
  sim::StateReader r(snapshot);
  r.expectTag("SRVS");
  const std::uint32_t version = r.u32();
  if (version != kServeSnapshotVersion) {
    throw sim::SimError(sim::ErrorKind::Checkpoint, "serve",
                        "server snapshot version " + std::to_string(version) +
                            " != supported version " +
                            std::to_string(kServeSnapshotVersion));
  }
  const std::uint64_t fp = r.u64();
  if (fp != configFingerprint(cfg_)) {
    throw sim::SimError(sim::ErrorKind::Checkpoint, "serve",
                        "server snapshot was taken under a different "
                        "ServerConfig (fingerprint mismatch)");
  }
  now_ = r.u64();
  batches_ = r.u64();
  probe_seq_ = r.u64();
  submitted_ = r.u64();
  hht_faults_ = r.u64();
  retry_count_ = r.u64();
  probe_count_ = r.u64();
  const auto pending = [&r]() {
    Pending p;
    p.r = readRequest(r);
    p.attempts_used = r.u32();
    p.last_tile = static_cast<std::int32_t>(r.u32());
    p.ready_cycle = r.u64();
    p.last_error = r.str();
    return p;
  };
  r.expectTag("ARRV");
  arrivals_.clear();
  for (std::uint64_t i = 0, n = r.u64(); i < n; ++i) {
    arrivals_.push_back(pending());
  }
  r.expectTag("QUEU");
  queue_.clear();
  for (std::uint64_t i = 0, n = r.u64(); i < n; ++i) {
    queue_.push_back(pending());
  }
  r.expectTag("RTRY");
  retries_.clear();
  for (std::uint64_t i = 0, n = r.u64(); i < n; ++i) {
    retries_.push_back(pending());
  }
  r.expectTag("DONE");
  completions_.clear();
  for (std::uint64_t i = 0, n = r.u64(); i < n; ++i) {
    completions_.push_back(readCompletion(r));
  }
  r.expectTag("SHED");
  rejections_.clear();
  for (std::uint64_t i = 0, n = r.u64(); i < n; ++i) {
    rejections_.push_back(readRejected(r));
  }
  health_.deserialize(r);
  latency_hist_.deserialize(r);
  if (!r.atEnd()) {
    throw sim::SimError(sim::ErrorKind::Checkpoint, "serve",
                        "trailing bytes after server snapshot payload");
  }
}

}  // namespace hht::serve
