#pragma once

#include <cstdint>
#include <vector>

#include "sim/error.h"
#include "sim/state_io.h"

namespace hht::serve {

/// Per-tile health tracker implementing the quarantine policy (DESIGN.md
/// §14): every HHT attempt's outcome lands in a sliding window per tile;
/// a tile whose windowed fault rate crosses the threshold (with enough
/// samples to mean anything) is quarantined — excluded from HHT dispatch —
/// and periodically probed with a canary workload. A passing probe
/// reinstates the tile with a cleared window, so one old burst of faults
/// cannot re-quarantine it instantly.
///
/// Pure bookkeeping, no simulator dependencies: the Server records
/// outcomes and asks scheduling questions; tests drive it directly.
class TileHealth {
 public:
  struct Config {
    std::uint32_t window = 8;          ///< attempts remembered per tile
    std::uint32_t min_samples = 4;     ///< no verdict on fewer attempts
    double fault_rate_threshold = 0.5; ///< quarantine at >= this rate
    std::uint32_t probe_period = 4;    ///< batches between probes

    void validate() const {
      if (window == 0 || min_samples == 0 || min_samples > window) {
        throw sim::SimError(sim::ErrorKind::Config, "serve",
                            "health window/min_samples must satisfy "
                            "0 < min_samples <= window");
      }
      if (fault_rate_threshold <= 0.0 || fault_rate_threshold > 1.0) {
        throw sim::SimError(sim::ErrorKind::Config, "serve",
                            "fault_rate_threshold must be in (0, 1]");
      }
      if (probe_period == 0) {
        throw sim::SimError(sim::ErrorKind::Config, "serve",
                            "probe_period must be >= 1");
      }
    }
  };

  TileHealth(std::uint32_t num_tiles, const Config& cfg);

  std::uint32_t numTiles() const {
    return static_cast<std::uint32_t>(tiles_.size());
  }

  /// Record one HHT attempt outcome on `tile`; may flip it to quarantined.
  void record(std::uint32_t tile, bool fault);

  bool quarantined(std::uint32_t tile) const { return at(tile).quarantined; }
  /// A probe should be dispatched to `tile` this batch.
  bool probeDue(std::uint32_t tile) const {
    return at(tile).quarantined && at(tile).cooldown == 0;
  }
  /// A probe on `tile` came back faulty: stay quarantined, restart the
  /// probe cooldown.
  void probeFailed(std::uint32_t tile);
  /// A probe on `tile` passed: clear quarantine and forget the window.
  void reinstate(std::uint32_t tile);
  /// Advance one batch (counts down probe cooldowns).
  void tickBatch();

  std::uint32_t quarantinedCount() const;
  std::uint64_t quarantineEvents() const { return quarantine_events_; }
  std::uint64_t reinstateEvents() const { return reinstate_events_; }
  /// Windowed fault count / sample count for `tile` (diagnostics).
  std::uint32_t windowFaults(std::uint32_t tile) const {
    return at(tile).faults;
  }
  std::uint32_t windowSamples(std::uint32_t tile) const {
    return at(tile).filled;
  }

  void serialize(sim::StateWriter& w) const;
  /// Restores state written by serialize(); tile count and window size
  /// must match this instance's construction or SimError(Checkpoint).
  void deserialize(sim::StateReader& r);

 private:
  struct Tile {
    std::vector<std::uint8_t> ring;  ///< fault flags, size == cfg.window
    std::uint32_t head = 0;          ///< next slot to overwrite
    std::uint32_t filled = 0;        ///< valid entries in the ring
    std::uint32_t faults = 0;        ///< set flags among valid entries
    bool quarantined = false;
    std::uint32_t cooldown = 0;      ///< batches until the next probe
  };

  Tile& at(std::uint32_t tile);
  const Tile& at(std::uint32_t tile) const;

  Config cfg_;
  std::vector<Tile> tiles_;
  std::uint64_t quarantine_events_ = 0;
  std::uint64_t reinstate_events_ = 0;
};

}  // namespace hht::serve
