#include "serve/request.h"

#include <bit>

#include "workload/synthetic.h"

namespace hht::serve {

const char* kindName(Kind k) {
  switch (k) {
    case Kind::kSpmv: return "spmv";
    case Kind::kSpmspv: return "spmspv";
  }
  return "?";
}

const char* outcomeName(Outcome o) {
  switch (o) {
    case Outcome::kOk: return "ok";
    case Outcome::kDegraded: return "degraded";
    case Outcome::kRejected: return "rejected";
    case Outcome::kDeadlineExpired: return "deadline_expired";
    case Outcome::kLate: return "late";
    case Outcome::kFailed: return "failed";
  }
  return "?";
}

Operands materialize(const Request& r) {
  sim::Rng rng(r.seed);
  Operands ops;
  // Both operand vectors are always drawn (in a fixed order) so a request's
  // matrix does not depend on its kind — flipping kind for an A/B never
  // perturbs the matrix stream.
  ops.m = workload::randomCsr(rng, r.size, r.size, r.sparsity);
  ops.v = workload::randomDenseVector(rng, r.size);
  ops.sv = workload::randomSparseVector(rng, r.size, r.vec_sparsity);
  return ops;
}

std::uint64_t hashVector(const sparse::DenseVector& y) {
  std::uint64_t h = 0xCBF29CE484222325ull;  // FNV-1a offset basis
  for (sim::Index i = 0; i < y.size(); ++i) {
    const std::uint32_t bits = std::bit_cast<std::uint32_t>(y.at(i));
    for (int shift = 0; shift < 32; shift += 8) {
      h ^= (bits >> shift) & 0xFFu;
      h *= 0x100000001B3ull;
    }
  }
  return h;
}

std::vector<Request> randomRequestStream(std::uint64_t seed,
                                         const StreamConfig& sc) {
  sim::Rng rng(seed);
  std::vector<Request> out;
  out.reserve(sc.count);
  Cycle arrival = 0;
  for (std::uint32_t i = 0; i < sc.count; ++i) {
    Request r;
    r.id = sc.first_id + i;
    // nextBelow(1000) < fraction*1000 gives a platform-independent draw.
    r.kind = rng.nextBelow(1000) <
                     static_cast<std::uint64_t>(sc.spmspv_fraction * 1000.0)
                 ? Kind::kSpmspv
                 : Kind::kSpmv;
    r.seed = rng.next64();
    r.size = sc.size;
    if (i > 0 && sc.mean_gap > 0) arrival += 1 + rng.nextBelow(2 * sc.mean_gap);
    r.arrival_cycle = arrival;
    r.deadline_cycle = sc.deadline_slack == 0 ? 0 : arrival + sc.deadline_slack;
    out.push_back(r);
  }
  return out;
}

void writeRequest(sim::StateWriter& w, const Request& r) {
  w.u64(r.id);
  w.u8(static_cast<std::uint8_t>(r.kind));
  w.u64(r.seed);
  w.u32(r.size);
  w.f32(r.sparsity);
  w.f32(r.vec_sparsity);
  w.u64(r.arrival_cycle);
  w.u64(r.deadline_cycle);
}

Request readRequest(sim::StateReader& r) {
  Request q;
  q.id = r.u64();
  q.kind = static_cast<Kind>(r.u8());
  q.seed = r.u64();
  q.size = r.u32();
  q.sparsity = r.f32();
  q.vec_sparsity = r.f32();
  q.arrival_cycle = r.u64();
  q.deadline_cycle = r.u64();
  return q;
}

void writeCompletion(sim::StateWriter& w, const Completion& c) {
  w.u64(c.id);
  w.u8(static_cast<std::uint8_t>(c.outcome));
  w.u32(c.attempts);
  w.u32(static_cast<std::uint32_t>(c.tile));
  w.u64(c.finish_cycle);
  w.u64(c.latency_cycles);
  w.u64(c.y_hash);
  w.str(c.error);
}

Completion readCompletion(sim::StateReader& r) {
  Completion c;
  c.id = r.u64();
  c.outcome = static_cast<Outcome>(r.u8());
  c.attempts = r.u32();
  c.tile = static_cast<std::int32_t>(r.u32());
  c.finish_cycle = r.u64();
  c.latency_cycles = r.u64();
  c.y_hash = r.u64();
  c.error = r.str();
  return c;
}

void writeRejected(sim::StateWriter& w, const Rejected& rej) {
  w.u64(rej.id);
  w.u64(rej.cycle);
  w.u32(rej.queue_depth);
  w.str(rej.reason);
}

Rejected readRejected(sim::StateReader& r) {
  Rejected rej;
  rej.id = r.u64();
  rej.cycle = r.u64();
  rej.queue_depth = r.u32();
  rej.reason = r.str();
  return rej;
}

}  // namespace hht::serve
