#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/state_io.h"
#include "sim/types.h"
#include "sparse/csr.h"
#include "sparse/dense.h"
#include "sparse/sparse_vector.h"

namespace hht::serve {

using sim::Cycle;

/// Which kernel a request asks for.
enum class Kind : std::uint8_t { kSpmv = 0, kSpmspv = 1 };

const char* kindName(Kind k);

/// One serving request. Operands are carried by *seed*, not by value: a
/// request names the deterministic workload-generator stream that produces
/// its matrix and vector (materialize()), so requests are a few dozen
/// bytes, snapshots stay small, and a re-executed attempt — on another
/// tile, after a crash recovery, or in a recomputed reference — sees
/// bit-identical operands.
struct Request {
  std::uint64_t id = 0;         ///< unique per server; admission rejects reuse
  Kind kind = Kind::kSpmv;
  std::uint64_t seed = 0;       ///< operand generator seed
  std::uint32_t size = 32;      ///< square matrix dimension
  float sparsity = 0.7f;        ///< matrix zero fraction
  float vec_sparsity = 0.5f;    ///< SpMSpV operand zero fraction
  Cycle arrival_cycle = 0;      ///< simulated arrival time
  Cycle deadline_cycle = 0;     ///< absolute deadline; 0 = none
};

/// Terminal state of a request (DESIGN.md §14 request lifecycle).
enum class Outcome : std::uint8_t {
  kOk = 0,            ///< served on the HHT path, y verified, met deadline
  kDegraded,          ///< served on the CPU fallback path, met deadline
  kRejected,          ///< shed at admission (queue full / malformed)
  kDeadlineExpired,   ///< deadline passed before the request could run
  kLate,              ///< served correctly but after its deadline
  kFailed,            ///< retry budget exhausted without a verified result
};

const char* outcomeName(Outcome o);
/// Outcomes that produced a (verified) result vector.
inline bool served(Outcome o) {
  return o == Outcome::kOk || o == Outcome::kDegraded || o == Outcome::kLate;
}

/// Terminal record for one request — the unit crash recovery compares:
/// two runs are equivalent iff their per-id (outcome, attempts, y_hash,
/// latency) tuples all match.
struct Completion {
  std::uint64_t id = 0;
  Outcome outcome = Outcome::kFailed;
  std::uint32_t attempts = 0;       ///< attempts actually executed
  std::int32_t tile = -1;           ///< tile of the final attempt; -1 = none
  Cycle finish_cycle = 0;
  Cycle latency_cycles = 0;         ///< finish - arrival (0 for rejections)
  std::uint64_t y_hash = 0;         ///< hashVector(y); 0 when not served
  std::string error;                ///< diagnostic for non-served outcomes
};

/// Structured admission/shedding verdict (the "why" a request was turned
/// away, machine-readable — never just a dropped request).
struct Rejected {
  std::uint64_t id = 0;
  Cycle cycle = 0;              ///< server clock at the decision
  std::uint32_t queue_depth = 0;
  std::string reason;
};

/// Deterministic operand materialization: everything derives from
/// Request::seed via the workload generators (kSmallIntegers values, so
/// scalar / vector / HHT execution orders agree bit-for-bit).
struct Operands {
  sparse::CsrMatrix m;
  sparse::DenseVector v;    ///< SpMV operand
  sparse::SparseVector sv;  ///< SpMSpV operand
};
Operands materialize(const Request& r);

/// FNV-1a over the little-endian bit patterns of y — the per-request result
/// fingerprint recorded in completions and compared across crash recovery.
std::uint64_t hashVector(const sparse::DenseVector& y);

/// Knobs for randomRequestStream.
struct StreamConfig {
  std::uint32_t count = 32;
  std::uint32_t size = 32;          ///< matrix dimension for every request
  double spmspv_fraction = 0.5;     ///< probability a request is SpMSpV
  Cycle mean_gap = 2'000;           ///< mean inter-arrival gap (uniform 0..2x)
  Cycle deadline_slack = 0;         ///< per-request deadline after arrival; 0 = none
  std::uint64_t first_id = 1;
};

/// Seeded open-loop request stream: ids, kinds, operand seeds and arrival
/// times all derive from `seed`, so a campaign's request set is a pure
/// function of its flags.
std::vector<Request> randomRequestStream(std::uint64_t seed,
                                         const StreamConfig& sc);

// Snapshot plumbing (used by Server::checkpoint/restore).
void writeRequest(sim::StateWriter& w, const Request& r);
Request readRequest(sim::StateReader& r);
void writeCompletion(sim::StateWriter& w, const Completion& c);
Completion readCompletion(sim::StateReader& r);
void writeRejected(sim::StateWriter& w, const Rejected& rej);
Rejected readRejected(sim::StateReader& r);

}  // namespace hht::serve
