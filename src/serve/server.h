#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <vector>

#include "harness/system.h"
#include "serve/health.h"
#include "serve/request.h"
#include "sim/stats.h"

namespace hht::serve {

/// Sparse-as-a-service configuration (DESIGN.md §14).
struct ServerConfig {
  /// Per-tile machine configuration. faults.* here is the *base* fault
  /// environment: every attempt derives its injector seed from
  /// (faults.seed, tile, attempt, request id) so fault histories are
  /// isolated per attempt and reproducible after crash recovery.
  harness::SystemConfig system;
  std::uint32_t num_tiles = 4;    ///< serving pool size
  unsigned jobs = 0;              ///< host threads for a batch; 0 = all
  std::uint32_t queue_capacity = 32;  ///< admission bound; overflow is shed
  /// Retries after the first attempt. Total attempts = retry_budget + 1.
  std::uint32_t retry_budget = 2;
  /// Retry r of a request waits backoff_base << (r-1) cycles before it is
  /// eligible again (exponential backoff).
  Cycle backoff_base = 1'024;
  /// When true the *last* allowed attempt (and any attempt with no healthy
  /// tile left) runs the CPU baseline with injection detached — it cannot
  /// fault, so every admitted request terminates. When false, all attempts
  /// take the HHT path and budget exhaustion yields Outcome::kFailed.
  bool degraded_fallback = true;
  TileHealth::Config health;
  /// Probe canary matrix dimension (small: probes ride the batch barrier).
  std::uint32_t probe_size = 16;
  /// Per-attempt simulated-cycle ceiling (the watchdog usually fires long
  /// before this; both surface as a retryable fault).
  Cycle attempt_max_cycles = 100'000'000;

  void validate() const;
};

/// Aggregate serving metrics (exact percentiles over served latencies).
struct ServerStats {
  std::uint64_t submitted = 0;
  std::uint64_t rejected = 0;          ///< structural + load-shed
  std::uint64_t ok = 0;
  std::uint64_t degraded = 0;
  std::uint64_t late = 0;
  std::uint64_t deadline_expired = 0;
  std::uint64_t failed = 0;
  std::uint64_t batches = 0;
  std::uint64_t hht_faults = 0;        ///< faulty HHT attempts observed
  std::uint64_t retries = 0;           ///< attempts re-queued after a fault
  std::uint64_t probes = 0;            ///< canary probes dispatched
  std::uint64_t quarantine_events = 0;
  std::uint64_t reinstate_events = 0;
  std::uint32_t quarantined_now = 0;
  Cycle final_cycle = 0;               ///< server clock after the last batch
  // Latency distribution over served requests (ok + degraded + late), in
  // simulated cycles from arrival to finish.
  std::uint64_t served = 0;
  Cycle p50 = 0;
  Cycle p99 = 0;
  Cycle p999 = 0;
  Cycle max_latency = 0;
  double goodput = 0.0;  ///< (ok + degraded) / submitted — on-time fraction
};

/// Fault-tolerant batched request server over a pool of simulated tiles.
///
/// Each tile is an independent single-tile harness::System world: an
/// attempt constructs a fresh System from the server's SystemConfig, runs
/// one kernel, and checks the result against the sparse:: reference. That
/// makes every attempt a pure function of (request, tile, attempt index,
/// mode) — attempts on different tiles share no simulator state (so the
/// SweepRunner thread pool may execute them concurrently), a faulty
/// attempt cannot poison a later one, and crash recovery replays to
/// bit-identical per-request outputs. Per-tile fault isolation follows the
/// MultiTileSystem convention: tile t's injector seed mixes the tile index
/// into the base seed with the same 0x9E3779B97F4A7C15 stride.
///
/// Scheduling is batch-synchronous in simulated time: each batch dispatches
/// at most one attempt per eligible tile, the batch occupies
/// max(attempt cycles) on the server clock, and a request's own finish
/// time is batch start + its own attempt's cycles. The request lifecycle
/// (admit -> queue -> attempt -> retry/degrade -> complete) and the
/// quarantine/probe policy are specified in DESIGN.md §14.
class Server {
 public:
  explicit Server(const ServerConfig& cfg);

  /// Admission control. A structurally valid request whose arrival is not
  /// in the server's past is scheduled (it enters the bounded queue at its
  /// arrival cycle; if the queue is full then, it is shed with a logged
  /// kRejected completion). Returns a structured verdict immediately for
  /// requests that can never be scheduled: duplicate id, zero size, a
  /// deadline at or before arrival, or an arrival cycle already in the
  /// past. Rejections are also appended to rejections() and completions().
  std::optional<Rejected> submit(const Request& r);

  /// Run up to `batch_limit` batches (default: until idle). Returns the
  /// number of batches executed. Guaranteed to terminate: every admitted
  /// request completes within retry_budget + 1 attempts or expires.
  std::uint64_t drain(std::uint64_t batch_limit = ~std::uint64_t{0});

  /// No queued, retrying, or not-yet-arrived requests remain.
  bool idle() const {
    return arrivals_.empty() && queue_.empty() && retries_.empty();
  }

  Cycle now() const { return now_; }
  std::uint64_t batches() const { return batches_; }
  const ServerConfig& config() const { return cfg_; }
  const std::vector<Completion>& completions() const { return completions_; }
  const std::vector<Rejected>& rejections() const { return rejections_; }
  const TileHealth& health() const { return health_; }
  const sim::Histogram& latencyHistogram() const { return latency_hist_; }
  ServerStats stats() const;

  /// Serialize the complete serving state ("SRVS" container): clock, queue,
  /// retry set, pending arrivals, completion/rejection logs, tile health
  /// and latency accounting. Attempts in flight never appear — checkpoints
  /// are taken at batch boundaries, where there is no partial state.
  std::vector<std::uint8_t> checkpoint() const;

  /// Restore a checkpoint() snapshot into a server built from an identical
  /// ServerConfig (enforced via fingerprint). Because attempt execution is
  /// deterministic, a restored server replays any batches that ran after
  /// the snapshot bit-identically — recovery needs only the *latest*
  /// periodic checkpoint, not one per batch.
  void restore(const std::vector<std::uint8_t>& snapshot);

  /// Fingerprint of everything that shapes scheduling and attempt
  /// execution; restore() requires equality.
  static std::uint64_t configFingerprint(const ServerConfig& cfg);

 private:
  /// A request in flight through the retry state machine.
  struct Pending {
    Request r;
    std::uint32_t attempts_used = 0;
    std::int32_t last_tile = -1;   ///< tile of the previous (faulty) attempt
    Cycle ready_cycle = 0;         ///< backoff: not dispatchable before this
    std::string last_error;        ///< most recent fault diagnostic
  };

  /// One unit of work in a batch.
  struct Job {
    bool is_probe = false;
    Pending p;                 ///< valid when !is_probe
    std::uint32_t tile = 0;
    bool degraded = false;     ///< CPU-fallback mode for this attempt
    std::uint64_t probe_seq = 0;
  };

  /// Outcome of executing one Job on the host pool.
  struct AttemptResult {
    bool fault = false;
    Cycle cycles = 0;
    std::uint64_t y_hash = 0;
    std::string error;
  };

  bool stepBatch();
  void admitArrivals();
  void shed(const Request& r, const std::string& reason);
  void complete(Completion c);
  AttemptResult runAttempt(const Request& r, std::uint32_t tile,
                           std::uint32_t attempt_index, bool degraded) const;
  AttemptResult runProbe(std::uint32_t tile, std::uint64_t probe_seq) const;
  static void writeConfig(sim::StateWriter& w, const ServerConfig& cfg);

  ServerConfig cfg_;
  Cycle now_ = 0;
  std::uint64_t batches_ = 0;
  std::uint64_t probe_seq_ = 0;
  std::uint64_t submitted_ = 0;
  std::uint64_t hht_faults_ = 0;
  std::uint64_t retry_count_ = 0;
  std::uint64_t probe_count_ = 0;
  /// Submitted but not yet arrived, sorted by (arrival_cycle, submit order).
  std::vector<Pending> arrivals_;
  std::deque<Pending> queue_;     ///< admitted, ready, FIFO
  std::vector<Pending> retries_;  ///< backing off, sorted by (ready, id)
  std::vector<Completion> completions_;
  std::vector<Rejected> rejections_;
  TileHealth health_;
  sim::Histogram latency_hist_;
};

}  // namespace hht::serve
