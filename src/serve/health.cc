#include "serve/health.h"

namespace hht::serve {

TileHealth::TileHealth(std::uint32_t num_tiles, const Config& cfg)
    : cfg_(cfg) {
  cfg_.validate();
  if (num_tiles == 0) {
    throw sim::SimError(sim::ErrorKind::Config, "serve",
                        "TileHealth needs at least one tile");
  }
  tiles_.resize(num_tiles);
  for (Tile& t : tiles_) t.ring.assign(cfg_.window, 0);
}

TileHealth::Tile& TileHealth::at(std::uint32_t tile) {
  if (tile >= tiles_.size()) {
    throw sim::SimError(sim::ErrorKind::Config, "serve",
                        "tile " + std::to_string(tile) + " out of range",
                        {}, static_cast<int>(tile));
  }
  return tiles_[tile];
}

const TileHealth::Tile& TileHealth::at(std::uint32_t tile) const {
  return const_cast<TileHealth*>(this)->at(tile);
}

void TileHealth::record(std::uint32_t tile, bool fault) {
  Tile& t = at(tile);
  if (t.filled == cfg_.window) {
    t.faults -= t.ring[t.head];  // evict the oldest sample
  } else {
    ++t.filled;
  }
  t.ring[t.head] = fault ? 1 : 0;
  t.faults += t.ring[t.head];
  t.head = (t.head + 1) % cfg_.window;
  if (!t.quarantined && t.filled >= cfg_.min_samples &&
      static_cast<double>(t.faults) >=
          cfg_.fault_rate_threshold * static_cast<double>(t.filled)) {
    t.quarantined = true;
    t.cooldown = cfg_.probe_period;
    ++quarantine_events_;
  }
}

void TileHealth::probeFailed(std::uint32_t tile) {
  Tile& t = at(tile);
  t.cooldown = cfg_.probe_period;
}

void TileHealth::reinstate(std::uint32_t tile) {
  Tile& t = at(tile);
  t.quarantined = false;
  t.cooldown = 0;
  t.filled = 0;
  t.faults = 0;
  t.head = 0;
  for (auto& slot : t.ring) slot = 0;
  ++reinstate_events_;
}

void TileHealth::tickBatch() {
  for (Tile& t : tiles_) {
    if (t.quarantined && t.cooldown > 0) --t.cooldown;
  }
}

std::uint32_t TileHealth::quarantinedCount() const {
  std::uint32_t n = 0;
  for (const Tile& t : tiles_) n += t.quarantined ? 1 : 0;
  return n;
}

void TileHealth::serialize(sim::StateWriter& w) const {
  w.tag("HLTH");
  w.u32(static_cast<std::uint32_t>(tiles_.size()));
  w.u32(cfg_.window);
  w.u64(quarantine_events_);
  w.u64(reinstate_events_);
  for (const Tile& t : tiles_) {
    w.u32(t.head).u32(t.filled).u32(t.faults);
    w.b(t.quarantined);
    w.u32(t.cooldown);
    for (const std::uint8_t slot : t.ring) w.u8(slot);
  }
}

void TileHealth::deserialize(sim::StateReader& r) {
  r.expectTag("HLTH");
  const std::uint32_t tiles = r.u32();
  const std::uint32_t window = r.u32();
  if (tiles != tiles_.size() || window != cfg_.window) {
    throw sim::SimError(
        sim::ErrorKind::Checkpoint, "serve",
        "health snapshot shape (" + std::to_string(tiles) + " tiles, window " +
            std::to_string(window) + ") does not match this server (" +
            std::to_string(tiles_.size()) + " tiles, window " +
            std::to_string(cfg_.window) + ")");
  }
  quarantine_events_ = r.u64();
  reinstate_events_ = r.u64();
  for (Tile& t : tiles_) {
    t.head = r.u32();
    t.filled = r.u32();
    t.faults = r.u32();
    t.quarantined = r.b();
    t.cooldown = r.u32();
    for (std::uint8_t& slot : t.ring) slot = r.u8();
  }
}

}  // namespace hht::serve
