#pragma once

#include "sim/types.h"

namespace hht::cpu {

using sim::Cycle;

/// Per-class instruction latencies for the in-order core, mirroring the
/// paper's Spike "multi-cycle instruction latency" extension (§4).
///
/// The core is a 3-stage in-order pipeline folded into a per-instruction
/// occupancy model: an instruction holds the pipeline for its latency;
/// loads additionally hold it until the memory response returns (Table 1:
/// "loads that do not complete in a single cycle stall the pipeline");
/// the vector unit is not pipelined.
///
/// Defaults reproduce Table 1 (1.1 GHz embedded core, vector arithmetic
/// latency = 4 cycles) with conventional embedded-core values for the
/// classes Table 1 does not pin down.
struct TimingConfig {
  // Scalar integer.
  Cycle int_alu = 1;
  Cycle int_mul = 3;
  Cycle int_div = 16;

  // Control flow: a taken branch flushes the 2 stages behind fetch.
  Cycle branch_not_taken = 1;
  Cycle branch_taken = 2;
  Cycle jump = 2;

  // Scalar FP (single precision).
  Cycle fp_alu = 2;
  Cycle fp_mul = 3;
  Cycle fp_madd = 4;
  Cycle fp_div = 12;
  Cycle fp_move = 1;

  // Memory issue occupancy. Loads additionally wait for the response;
  // stores are posted (the 1 MB SRAM absorbs them without a stall).
  Cycle load_issue = 1;
  Cycle store_issue = 1;

  // Vector unit (Table 1: non-pipelined, arithmetic latency 4).
  Cycle vec_cfg = 1;
  Cycle vec_alu = 2;
  Cycle vec_fp = 4;
  Cycle vec_red = 4;
  Cycle vec_move = 1;
  Cycle vec_mem_issue = 1;        ///< startup cycles before the first beat
  /// Extra startup for indexed gathers (vluxei32): the non-pipelined vector
  /// unit must read the index register and set up per-element address
  /// generation before the first element issues.
  Cycle gather_startup = 3;
  std::uint32_t vec_bus_bytes = 8; ///< unit-stride bytes transferred per cycle
  /// Indexed-gather (vluxei32) element requests issued per cycle. 1 is the
  /// paper's premise: gathers serialise into element-sized random accesses,
  /// which is the metadata bottleneck the HHT removes.
  std::uint32_t gather_issue_per_cycle = 1;

  /// Nominal clock, used only to convert cycles to seconds for the energy
  /// model and reports (Table 1: 1.1 GHz; §5.5 synthesises at 50 MHz).
  double clock_hz = 1.1e9;
};

}  // namespace hht::cpu
