#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "cpu/timing.h"
#include "isa/program.h"
#include "mem/memory_system.h"
#include "obs/trace.h"
#include "sim/state_io.h"
#include "sim/stats.h"
#include "sim/types.h"

namespace hht::cpu {

using isa::Instr;
using isa::Opcode;
using isa::Program;
using isa::Reg;
using sim::Addr;
using sim::Cycle;
using sim::StatSet;

/// Cycle-stepped in-order RV32-flavoured core with an RVV-style vector unit.
///
/// One instruction is in flight at a time (3-stage in-order pipeline folded
/// into per-instruction occupancy, as in the paper's extended Spike):
/// non-memory instructions occupy the pipe for their class latency; loads
/// stall until the memory system responds; vector memory operations issue
/// element transactions at the configured rates. Functional execution is
/// exact — kernels compute real results in simulated SRAM, which tests
/// compare against the sparse library's reference kernels.
class Core {
 public:
  /// `vlmax` is the hardware vector length in 32-bit elements (Table 1:
  /// 8; Fig. 8 sweeps {1, 4, 8}). Must be 1..isa::kMaxVl.
  /// `requester` tags this core's memory traffic for arbitration and
  /// statistics: the primary core is Requester::Cpu; the programmable
  /// HHT's micro-core (§7) runs as Requester::Hht. `tile` identifies the
  /// {CPU+HHT} tile this core belongs to in a multi-tile system (0 in the
  /// paper's single-tile machine).
  Core(const TimingConfig& timing, mem::MemorySystem& memory, int vlmax,
       mem::Requester requester = mem::Requester::Cpu,
       std::uint32_t tile = 0);

  /// Install a program and reset architectural + pipeline state.
  void loadProgram(const Program& program);
  void reset();

  /// Install a program WITHOUT resetting state — the checkpoint-restore
  /// path: deserialize() supplies every architectural and pipeline field,
  /// and the caller has already verified the program's identity against
  /// the snapshot header.
  void installProgram(const Program& program) { program_ = &program; }

  /// Checkpoint hooks: full architectural + pipeline state. The program
  /// itself is NOT serialized (host-owned); System records its identity.
  void serialize(sim::StateWriter& w) const;
  void deserialize(sim::StateReader& r);

  /// Advance one cycle. No-op once halted.
  void tick(Cycle now);

  /// Earliest future cycle (> now) at which this core can change state or
  /// perform an event, assuming nothing else in the system acts first.
  /// Returns sim::kNeverCycle when halted (quiescence protocol, DESIGN.md
  /// §11). A return of now + 1 means "not quiescent — tick me".
  Cycle nextEventCycle(Cycle now) const;

  /// Bulk-credit `n` skipped cycles: exactly the counter bumps and timer
  /// decrements the pure-stall ticks would have performed, with no other
  /// side effects. Only valid for n < nextEventCycle(now) - now - 1.
  void skipCycles(Cycle n);

  bool halted() const { return halted_; }
  /// True when the core has more work this cycle (used by run loops
  /// together with MemorySystem::idle()).
  bool busy() const { return !halted_; }

  // Architectural state access (harness setup / test inspection).
  std::uint32_t getX(Reg r) const { return x_[r]; }
  void setX(Reg r, std::uint32_t v) { if (r != 0) x_[r] = v; }
  float getF(Reg r) const { return f_[r]; }
  void setF(Reg r, float v) { f_[r] = v; }
  std::uint32_t getVLane(Reg vr, int lane) const { return v_[vr][lane]; }
  int vl() const { return vl_; }
  int vlmax() const { return vlmax_; }
  std::size_t pc() const { return pc_; }

  StatSet& stats() { return stats_; }
  const StatSet& stats() const { return stats_; }
  const TimingConfig& timing() const { return timing_; }

  /// Attach a structured trace sink (obs layer). Host-side observation
  /// only: never serialized, never consulted by architectural logic, so a
  /// traced run is bit-identical to an untraced one. `component` labels
  /// this core's events (primary core vs the micro-HHT's embedded core).
  void setTraceSink(obs::TraceSink* sink, obs::Component component) {
    trace_ = sink;
    trace_component_ = component;
    trace_bucket_ = obs::kNoBucket;
  }

  /// Cycles retired so far attribute totals; convenience accessors for the
  /// counters the paper reports.
  std::uint64_t retiredInstructions() const { return stats_.value("cpu.retired"); }

 private:
  enum class Phase {
    Ready,     ///< fetch/dispatch a new instruction this cycle
    Busy,      ///< multi-cycle non-memory instruction draining
    LoadWait,  ///< scalar load waiting on the memory response
    VecMem,    ///< vector load/store/gather issuing + waiting on elements
  };

  void dispatch(Cycle now);
  void traceCycle(Cycle now);
  void execNonMemory(const Instr& instr, Cycle now);
  void startScalarMemory(const Instr& instr);
  void startVectorMemory(const Instr& instr);
  void tickVecMem(Cycle now);
  void retire();

  float fLane(Reg vr, int lane) const;
  void setFLane(Reg vr, int lane, float v);

  TimingConfig timing_;
  mem::MemorySystem& mem_;
  int vlmax_;
  mem::Requester requester_;
  std::uint8_t tile_;

  const Program* program_ = nullptr;

  // Architectural state.
  std::array<std::uint32_t, isa::kNumXRegs> x_{};
  std::array<float, isa::kNumFRegs> f_{};
  std::array<std::array<std::uint32_t, isa::kMaxVl>, isa::kNumVRegs> v_{};
  int vl_ = 0;
  std::size_t pc_ = 0;
  bool halted_ = true;

  // Pipeline state.
  Phase phase_ = Phase::Ready;
  Cycle busy_left_ = 0;          ///< extra cycles after the current one
  std::size_t next_pc_ = 0;

  // Scalar load in flight.
  mem::RequestId load_req_ = mem::kInvalidRequest;
  Instr load_instr_{};
  Addr load_addr_ = 0;  ///< for the machine-check diagnostic

  // Vector memory operation in flight.
  struct VecElem {
    mem::RequestId req = mem::kInvalidRequest;
    int lane = 0;
  };
  Instr vec_instr_{};
  int vec_issued_ = 0;           ///< elements issued so far
  int vec_total_ = 0;            ///< elements to transfer (= vl at dispatch)
  Cycle vec_startup_left_ = 0;
  std::vector<VecElem> vec_pending_;

  StatSet stats_;

  // Host-only trace state (not serialized; resumed runs re-announce their
  // first bucket, which tests normalize by expanding to per-cycle values).
  obs::TraceSink* trace_ = nullptr;
  obs::Component trace_component_ = obs::Component::kCpu;
  std::uint8_t trace_bucket_ = obs::kNoBucket;

  // Hot-path counters cached once (StatSet references are stable).
  std::uint64_t* c_cycles_;
  std::uint64_t* c_retired_;
  std::uint64_t* c_load_stall_;
  std::uint64_t* c_vec_mem_;
  std::uint64_t* c_loads_;
  std::uint64_t* c_stores_;
  std::uint64_t* c_br_taken_;
  std::uint64_t* c_br_not_taken_;
  std::uint64_t* c_gathers_;
  std::uint64_t* c_vector_mem_;
};

}  // namespace hht::cpu
