#include "cpu/core.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "sim/error.h"
#include "sim/log.h"

namespace hht::cpu {

using isa::InstrClass;
using isa::instrClass;

Core::Core(const TimingConfig& timing, mem::MemorySystem& memory, int vlmax,
           mem::Requester requester, std::uint32_t tile)
    : timing_(timing),
      mem_(memory),
      vlmax_(vlmax),
      requester_(requester),
      tile_(static_cast<std::uint8_t>(tile)) {
  if (vlmax < 1 || vlmax > isa::kMaxVl) {
    throw std::invalid_argument("vlmax must be in [1, kMaxVl]");
  }
  c_cycles_ = &stats_.counter("cpu.cycles");
  c_retired_ = &stats_.counter("cpu.retired");
  c_load_stall_ = &stats_.counter("cpu.load_stall_cycles");
  c_vec_mem_ = &stats_.counter("cpu.vec_mem_cycles");
  c_loads_ = &stats_.counter("cpu.loads");
  c_stores_ = &stats_.counter("cpu.stores");
  c_br_taken_ = &stats_.counter("cpu.branches_taken");
  c_br_not_taken_ = &stats_.counter("cpu.branches_not_taken");
  c_gathers_ = &stats_.counter("cpu.vector_gathers");
  c_vector_mem_ = &stats_.counter("cpu.vector_mem");
}

void Core::loadProgram(const Program& program) {
  program_ = &program;
  reset();
}

void Core::reset() {
  x_.fill(0);
  f_.fill(0.0f);
  for (auto& vreg : v_) vreg.fill(0);
  vl_ = vlmax_;
  pc_ = 0;
  next_pc_ = 0;
  halted_ = (program_ == nullptr || program_->size() == 0);
  phase_ = Phase::Ready;
  busy_left_ = 0;
  load_req_ = mem::kInvalidRequest;
  vec_pending_.clear();
  vec_issued_ = 0;
  vec_total_ = 0;
  vec_startup_left_ = 0;
}

namespace {

void writeInstr(sim::StateWriter& w, const Instr& instr) {
  w.u8(static_cast<std::uint8_t>(instr.op));
  w.u8(instr.rd);
  w.u8(instr.rs1);
  w.u8(instr.rs2);
  w.u8(instr.rs3);
  w.u32(static_cast<std::uint32_t>(instr.imm));
}

Instr readInstr(sim::StateReader& r) {
  Instr instr;
  instr.op = static_cast<Opcode>(r.u8());
  instr.rd = r.u8();
  instr.rs1 = r.u8();
  instr.rs2 = r.u8();
  instr.rs3 = r.u8();
  instr.imm = static_cast<std::int32_t>(r.u32());
  return instr;
}

}  // namespace

void Core::serialize(sim::StateWriter& w) const {
  w.tag("CORE");
  for (std::uint32_t x : x_) w.u32(x);
  for (float f : f_) w.f32(f);
  for (const auto& vreg : v_) {
    for (std::uint32_t lane : vreg) w.u32(lane);
  }
  w.u32(static_cast<std::uint32_t>(vl_));
  w.u64(pc_);
  w.b(halted_);
  w.u8(static_cast<std::uint8_t>(phase_));
  w.u64(busy_left_);
  w.u64(next_pc_);
  w.u64(load_req_);
  writeInstr(w, load_instr_);
  w.u32(load_addr_);
  writeInstr(w, vec_instr_);
  w.u32(static_cast<std::uint32_t>(vec_issued_));
  w.u32(static_cast<std::uint32_t>(vec_total_));
  w.u64(vec_startup_left_);
  w.u64(vec_pending_.size());
  for (const VecElem& e : vec_pending_) {
    w.u64(e.req);
    w.u32(static_cast<std::uint32_t>(e.lane));
  }
  stats_.serialize(w);
}

void Core::deserialize(sim::StateReader& r) {
  r.expectTag("CORE");
  for (auto& x : x_) x = r.u32();
  for (auto& f : f_) f = r.f32();
  for (auto& vreg : v_) {
    for (auto& lane : vreg) lane = r.u32();
  }
  vl_ = static_cast<int>(r.u32());
  pc_ = static_cast<std::size_t>(r.u64());
  halted_ = r.b();
  phase_ = static_cast<Phase>(r.u8());
  busy_left_ = r.u64();
  next_pc_ = static_cast<std::size_t>(r.u64());
  load_req_ = r.u64();
  load_instr_ = readInstr(r);
  load_addr_ = r.u32();
  vec_instr_ = readInstr(r);
  vec_issued_ = static_cast<int>(r.u32());
  vec_total_ = static_cast<int>(r.u32());
  vec_startup_left_ = r.u64();
  vec_pending_.clear();
  const std::uint64_t n = r.u64();
  for (std::uint64_t i = 0; i < n; ++i) {
    VecElem e;
    e.req = r.u64();
    e.lane = static_cast<int>(r.u32());
    vec_pending_.push_back(e);
  }
  stats_.deserialize(r);
}

float Core::fLane(Reg vr, int lane) const {
  return std::bit_cast<float>(v_[vr][lane]);
}

void Core::setFLane(Reg vr, int lane, float value) {
  v_[vr][lane] = std::bit_cast<std::uint32_t>(value);
}

void Core::tick(Cycle now) {
  if (halted_) return;
  ++*c_cycles_;
  if (trace_ != nullptr) traceCycle(now);
  switch (phase_) {
    case Phase::Ready:
      dispatch(now);
      break;
    case Phase::Busy:
      if (--busy_left_ == 0) phase_ = Phase::Ready;
      break;
    case Phase::LoadWait: {
      ++*c_load_stall_;
      if (auto response = mem_.takeResponse(load_req_)) {
        if (response->poisoned) {
          // Machine check: an ECC-uncorrectable response reached a scalar
          // load. Architectural state must not absorb the corrupt word.
          throw sim::SimError(
              sim::ErrorKind::MachineCheck,
              requester_ == mem::Requester::Cpu ? "cpu" : "uhht-core",
              "uncorrectable memory error on scalar load from addr=" +
                  std::to_string(load_addr_) + " at pc=" +
                  std::to_string(pc_),
              {}, tile_);
        }
        const Instr& in = load_instr_;
        const std::uint32_t raw = response->data;
        switch (in.op) {
          case Opcode::LW: setX(in.rd, raw); break;
          case Opcode::LB:
            setX(in.rd, static_cast<std::uint32_t>(
                            static_cast<std::int32_t>(static_cast<std::int8_t>(raw))));
            break;
          case Opcode::LBU: setX(in.rd, raw & 0xFFu); break;
          case Opcode::LH:
            setX(in.rd, static_cast<std::uint32_t>(
                            static_cast<std::int32_t>(static_cast<std::int16_t>(raw))));
            break;
          case Opcode::LHU: setX(in.rd, raw & 0xFFFFu); break;
          case Opcode::FLW: f_[in.rd] = std::bit_cast<float>(raw); break;
          default: break;
        }
        load_req_ = mem::kInvalidRequest;
        pc_ = next_pc_;
        phase_ = Phase::Ready;
      }
      break;
    }
    case Phase::VecMem:
      tickVecMem(now);
      break;
  }
}

Cycle Core::nextEventCycle(Cycle now) const {
  if (halted_) return sim::kNeverCycle;
  switch (phase_) {
    case Phase::Ready:
      return now + 1;  // dispatch is an event
    case Phase::Busy:
      // Ticks now+1 .. now+busy_left_ only decrement the timer; the flip to
      // Ready happens on the last of them and dispatch on the one after.
      return now + busy_left_ + 1;
    case Phase::LoadWait:
      return mem_.responseReadyCycle(load_req_, now);
    case Phase::VecMem:
      if (vec_startup_left_ > 0) return now + vec_startup_left_ + 1;
      if (vec_issued_ < vec_total_) return now + 1;  // issuing every cycle
      if (vec_pending_.empty()) return now + 1;
      {
        Cycle earliest = sim::kNeverCycle;
        for (const VecElem& e : vec_pending_) {
          earliest = std::min(earliest, mem_.responseReadyCycle(e.req, now));
          if (earliest <= now + 1) return earliest;  // can't skip; stop scanning
        }
        return earliest;
      }
  }
  return now + 1;
}

void Core::skipCycles(Cycle n) {
  if (halted_ || n == 0) return;
  *c_cycles_ += n;
  switch (phase_) {
    case Phase::Ready:
      break;  // never skipped across: nextEventCycle() is now + 1
    case Phase::Busy:
      busy_left_ -= n;
      if (busy_left_ == 0) phase_ = Phase::Ready;
      break;
    case Phase::LoadWait:
      *c_load_stall_ += n;
      break;
    case Phase::VecMem:
      *c_vec_mem_ += n;
      vec_startup_left_ -= std::min(vec_startup_left_, n);
      break;
  }
}

// Classify the cycle about to execute into a stall-attribution bucket and
// emit a kPhase event on transitions (coalesced: one event per contiguous
// span, so the stream stays small and deterministic). MMIO-directed waits
// are FIFO waits (the HHT FE's streaming port) — except loads aimed at the
// shared work-queue window, which are queue waits (chunk-claim
// arbitration, DESIGN.md §18); SRAM waits are memory waits. Retires are
// stamped at dispatch, which is where c_retired_ bumps.
void Core::traceCycle(Cycle now) {
  if (!trace_->enabled(obs::Category::kCpu)) return;
  std::uint8_t bucket = obs::kBucketCompute;
  switch (phase_) {
    case Phase::Ready:
    case Phase::Busy:
      bucket = obs::kBucketCompute;
      break;
    case Phase::LoadWait:
      bucket = mem_.isWorkQueue(load_addr_) ? obs::kBucketQueueWait
               : mem_.isMmio(load_addr_)    ? obs::kBucketFifoWait
                                            : obs::kBucketMemWait;
      break;
    case Phase::VecMem:
      bucket = mem_.isMmio(x_[vec_instr_.rs1]) ? obs::kBucketFifoWait
                                               : obs::kBucketMemWait;
      break;
  }
  if (bucket != trace_bucket_) {
    trace_bucket_ = bucket;
    trace_->emit(now, obs::Category::kCpu, trace_component_,
                 obs::EventKind::kPhase, bucket);
  }
  if (phase_ == Phase::Ready) {
    const Instr& in = program_->at(pc_);
    trace_->emit(now, obs::Category::kCpu, trace_component_,
                 obs::EventKind::kRetire, pc_,
                 static_cast<std::uint64_t>(in.op));
  }
}

void Core::dispatch(Cycle now) {
  const Instr& in = program_->at(pc_);
  ++*c_retired_;
  switch (instrClass(in.op)) {
    case InstrClass::Load:
    case InstrClass::FpLoad:
      ++*c_loads_;
      startScalarMemory(in);
      return;
    case InstrClass::Store:
    case InstrClass::FpStore:
      ++*c_stores_;
      startScalarMemory(in);
      return;
    case InstrClass::VecLoad:
    case InstrClass::VecStore:
    case InstrClass::VecGather:
      ++*(in.op == Opcode::VLUXEI32 ? c_gathers_ : c_vector_mem_);
      startVectorMemory(in);
      return;
    default:
      execNonMemory(in, now);
      return;
  }
}

namespace {

std::int32_t asSigned(std::uint32_t v) { return static_cast<std::int32_t>(v); }
std::uint32_t asUnsigned(std::int32_t v) { return static_cast<std::uint32_t>(v); }

}  // namespace

void Core::execNonMemory(const Instr& in, Cycle now) {
  Cycle latency = timing_.int_alu;
  std::size_t next = pc_ + 1;

  const std::uint32_t rs1 = x_[in.rs1];
  const std::uint32_t rs2 = x_[in.rs2];

  switch (in.op) {
    // ----- integer register-register -----
    case Opcode::ADD: setX(in.rd, rs1 + rs2); break;
    case Opcode::SUB: setX(in.rd, rs1 - rs2); break;
    case Opcode::SLL: setX(in.rd, rs1 << (rs2 & 31)); break;
    case Opcode::SLT: setX(in.rd, asSigned(rs1) < asSigned(rs2) ? 1 : 0); break;
    case Opcode::SLTU: setX(in.rd, rs1 < rs2 ? 1 : 0); break;
    case Opcode::XOR: setX(in.rd, rs1 ^ rs2); break;
    case Opcode::SRL: setX(in.rd, rs1 >> (rs2 & 31)); break;
    case Opcode::SRA: setX(in.rd, asUnsigned(asSigned(rs1) >> (rs2 & 31))); break;
    case Opcode::OR: setX(in.rd, rs1 | rs2); break;
    case Opcode::AND: setX(in.rd, rs1 & rs2); break;
    case Opcode::MUL:
      latency = timing_.int_mul;
      setX(in.rd, rs1 * rs2);
      break;
    case Opcode::MULH:
      latency = timing_.int_mul;
      setX(in.rd, static_cast<std::uint32_t>(
                      (static_cast<std::int64_t>(asSigned(rs1)) *
                       static_cast<std::int64_t>(asSigned(rs2))) >> 32));
      break;
    case Opcode::MULHU:
      latency = timing_.int_mul;
      setX(in.rd, static_cast<std::uint32_t>(
                      (static_cast<std::uint64_t>(rs1) *
                       static_cast<std::uint64_t>(rs2)) >> 32));
      break;
    case Opcode::DIV: {
      latency = timing_.int_div;
      const std::int32_t a = asSigned(rs1), b = asSigned(rs2);
      std::int32_t q;
      if (b == 0) {
        q = -1;  // RISC-V: division by zero yields all ones
      } else if (a == std::numeric_limits<std::int32_t>::min() && b == -1) {
        q = a;   // signed overflow wraps to the dividend
      } else {
        q = a / b;
      }
      setX(in.rd, asUnsigned(q));
      break;
    }
    case Opcode::DIVU:
      latency = timing_.int_div;
      setX(in.rd, rs2 == 0 ? ~std::uint32_t{0} : rs1 / rs2);
      break;
    case Opcode::REM: {
      latency = timing_.int_div;
      const std::int32_t a = asSigned(rs1), b = asSigned(rs2);
      std::int32_t r;
      if (b == 0) {
        r = a;
      } else if (a == std::numeric_limits<std::int32_t>::min() && b == -1) {
        r = 0;
      } else {
        r = a % b;
      }
      setX(in.rd, asUnsigned(r));
      break;
    }
    case Opcode::REMU:
      latency = timing_.int_div;
      setX(in.rd, rs2 == 0 ? rs1 : rs1 % rs2);
      break;

    // ----- integer immediate -----
    case Opcode::ADDI: setX(in.rd, rs1 + asUnsigned(in.imm)); break;
    case Opcode::SLTI: setX(in.rd, asSigned(rs1) < in.imm ? 1 : 0); break;
    case Opcode::SLTIU: setX(in.rd, rs1 < asUnsigned(in.imm) ? 1 : 0); break;
    case Opcode::XORI: setX(in.rd, rs1 ^ asUnsigned(in.imm)); break;
    case Opcode::ORI: setX(in.rd, rs1 | asUnsigned(in.imm)); break;
    case Opcode::ANDI: setX(in.rd, rs1 & asUnsigned(in.imm)); break;
    case Opcode::SLLI: setX(in.rd, rs1 << (in.imm & 31)); break;
    case Opcode::SRLI: setX(in.rd, rs1 >> (in.imm & 31)); break;
    case Opcode::SRAI: setX(in.rd, asUnsigned(asSigned(rs1) >> (in.imm & 31))); break;
    case Opcode::LUI: setX(in.rd, asUnsigned(in.imm)); break;

    // ----- control flow -----
    case Opcode::BEQ:
    case Opcode::BNE:
    case Opcode::BLT:
    case Opcode::BGE:
    case Opcode::BLTU:
    case Opcode::BGEU: {
      bool taken = false;
      switch (in.op) {
        case Opcode::BEQ: taken = rs1 == rs2; break;
        case Opcode::BNE: taken = rs1 != rs2; break;
        case Opcode::BLT: taken = asSigned(rs1) < asSigned(rs2); break;
        case Opcode::BGE: taken = asSigned(rs1) >= asSigned(rs2); break;
        case Opcode::BLTU: taken = rs1 < rs2; break;
        case Opcode::BGEU: taken = rs1 >= rs2; break;
        default: break;
      }
      if (taken) {
        next = static_cast<std::size_t>(in.imm);
        latency = timing_.branch_taken;
        ++*c_br_taken_;
      } else {
        latency = timing_.branch_not_taken;
        ++*c_br_not_taken_;
      }
      break;
    }
    case Opcode::JAL:
      setX(in.rd, static_cast<std::uint32_t>(pc_ + 1));
      next = static_cast<std::size_t>(in.imm);
      latency = timing_.jump;
      break;
    case Opcode::JALR:
      setX(in.rd, static_cast<std::uint32_t>(pc_ + 1));
      next = static_cast<std::size_t>(rs1 + asUnsigned(in.imm));
      latency = timing_.jump;
      break;

    // ----- scalar FP -----
    case Opcode::FADD_S: latency = timing_.fp_alu; f_[in.rd] = f_[in.rs1] + f_[in.rs2]; break;
    case Opcode::FSUB_S: latency = timing_.fp_alu; f_[in.rd] = f_[in.rs1] - f_[in.rs2]; break;
    case Opcode::FMUL_S: latency = timing_.fp_mul; f_[in.rd] = f_[in.rs1] * f_[in.rs2]; break;
    case Opcode::FDIV_S: latency = timing_.fp_div; f_[in.rd] = f_[in.rs1] / f_[in.rs2]; break;
    case Opcode::FMIN_S: latency = timing_.fp_alu; f_[in.rd] = std::fmin(f_[in.rs1], f_[in.rs2]); break;
    case Opcode::FMAX_S: latency = timing_.fp_alu; f_[in.rd] = std::fmax(f_[in.rs1], f_[in.rs2]); break;
    case Opcode::FMADD_S:
      latency = timing_.fp_madd;
      f_[in.rd] = std::fma(f_[in.rs1], f_[in.rs2], f_[in.rs3]);
      break;
    case Opcode::FMSUB_S:
      latency = timing_.fp_madd;
      f_[in.rd] = std::fma(f_[in.rs1], f_[in.rs2], -f_[in.rs3]);
      break;
    case Opcode::FSGNJ_S:
      latency = timing_.fp_move;
      f_[in.rd] = std::copysign(f_[in.rs1], f_[in.rs2]);
      break;
    case Opcode::FEQ_S: latency = timing_.fp_alu; setX(in.rd, f_[in.rs1] == f_[in.rs2] ? 1 : 0); break;
    case Opcode::FLT_S: latency = timing_.fp_alu; setX(in.rd, f_[in.rs1] < f_[in.rs2] ? 1 : 0); break;
    case Opcode::FLE_S: latency = timing_.fp_alu; setX(in.rd, f_[in.rs1] <= f_[in.rs2] ? 1 : 0); break;
    case Opcode::FMV_W_X: latency = timing_.fp_move; f_[in.rd] = std::bit_cast<float>(rs1); break;
    case Opcode::FMV_X_W: latency = timing_.fp_move; setX(in.rd, std::bit_cast<std::uint32_t>(f_[in.rs1])); break;
    case Opcode::FCVT_S_W:
      latency = timing_.fp_move;
      f_[in.rd] = static_cast<float>(asSigned(rs1));
      break;
    case Opcode::FCVT_W_S: {
      latency = timing_.fp_move;
      const float s = f_[in.rs1];
      std::int32_t r;
      if (std::isnan(s)) {
        r = std::numeric_limits<std::int32_t>::max();
      } else if (s >= 2147483648.0f) {
        r = std::numeric_limits<std::int32_t>::max();
      } else if (s < -2147483648.0f) {
        r = std::numeric_limits<std::int32_t>::min();
      } else {
        r = static_cast<std::int32_t>(s);
      }
      setX(in.rd, asUnsigned(r));
      break;
    }

    // ----- vector -----
    case Opcode::VSETVLI: {
      latency = timing_.vec_cfg;
      const std::uint32_t requested = rs1;
      vl_ = static_cast<int>(
          std::min<std::uint32_t>(requested, static_cast<std::uint32_t>(vlmax_)));
      setX(in.rd, static_cast<std::uint32_t>(vl_));
      break;
    }
    case Opcode::VADD_VV:
      latency = timing_.vec_alu;
      for (int i = 0; i < vl_; ++i) v_[in.rd][i] = v_[in.rs1][i] + v_[in.rs2][i];
      break;
    case Opcode::VMUL_VV:
      latency = timing_.vec_alu;
      for (int i = 0; i < vl_; ++i) v_[in.rd][i] = v_[in.rs1][i] * v_[in.rs2][i];
      break;
    case Opcode::VAND_VV:
      latency = timing_.vec_alu;
      for (int i = 0; i < vl_; ++i) v_[in.rd][i] = v_[in.rs1][i] & v_[in.rs2][i];
      break;
    case Opcode::VSLL_VI:
      latency = timing_.vec_alu;
      for (int i = 0; i < vl_; ++i) v_[in.rd][i] = v_[in.rs1][i] << (in.imm & 31);
      break;
    case Opcode::VFADD_VV:
      latency = timing_.vec_fp;
      for (int i = 0; i < vl_; ++i)
        setFLane(in.rd, i, fLane(in.rs1, i) + fLane(in.rs2, i));
      break;
    case Opcode::VFSUB_VV:
      latency = timing_.vec_fp;
      for (int i = 0; i < vl_; ++i)
        setFLane(in.rd, i, fLane(in.rs1, i) - fLane(in.rs2, i));
      break;
    case Opcode::VFMUL_VV:
      latency = timing_.vec_fp;
      for (int i = 0; i < vl_; ++i)
        setFLane(in.rd, i, fLane(in.rs1, i) * fLane(in.rs2, i));
      break;
    case Opcode::VFMACC_VV:
      latency = timing_.vec_fp;
      for (int i = 0; i < vl_; ++i)
        setFLane(in.rd, i, std::fma(fLane(in.rs1, i), fLane(in.rs2, i), fLane(in.rd, i)));
      break;
    case Opcode::VFREDOSUM: {
      latency = timing_.vec_red;
      // builder: vfredosum(vd, vs2, vs1) -> rs1 = element vector, rs2 = seed
      float acc = fLane(in.rs2, 0);
      for (int i = 0; i < vl_; ++i) acc += fLane(in.rs1, i);
      setFLane(in.rd, 0, acc);
      break;
    }
    case Opcode::VMV_V_I:
      latency = timing_.vec_move;
      for (int i = 0; i < vl_; ++i) v_[in.rd][i] = asUnsigned(in.imm);
      break;
    case Opcode::VMV_V_X:
      latency = timing_.vec_move;
      for (int i = 0; i < vl_; ++i) v_[in.rd][i] = rs1;
      break;
    case Opcode::VFMV_F_S: latency = timing_.vec_move; f_[in.rd] = fLane(in.rs1, 0); break;
    case Opcode::VFMV_S_F: latency = timing_.vec_move; setFLane(in.rd, 0, f_[in.rs1]); break;

    // ----- system -----
    case Opcode::NOP: break;
    case Opcode::ECALL:
      halted_ = true;
      return;  // no pc advance, no busy cycles
    case Opcode::CSRR_CYCLE:
      setX(in.rd, static_cast<std::uint32_t>(now));
      break;

    default:
      throw std::logic_error("execNonMemory: unexpected opcode " +
                             std::string(isa::mnemonic(in.op)));
  }

  pc_ = next;
  if (latency > 1) {
    busy_left_ = latency - 1;
    phase_ = Phase::Busy;
  } else {
    phase_ = Phase::Ready;
  }
}

void Core::startScalarMemory(const Instr& in) {
  const Addr addr = x_[in.rs1] + asUnsigned(in.imm);
  std::uint32_t size = 4;
  if (in.op == Opcode::LB || in.op == Opcode::LBU || in.op == Opcode::SB) size = 1;
  if (in.op == Opcode::LH || in.op == Opcode::LHU || in.op == Opcode::SH) size = 2;

  const InstrClass cls = instrClass(in.op);
  if (cls == InstrClass::Store || cls == InstrClass::FpStore) {
    std::uint32_t wdata = 0;
    if (in.op == Opcode::FSW) {
      wdata = std::bit_cast<std::uint32_t>(f_[in.rs2]);
    } else {
      wdata = x_[in.rs2];
    }
    mem_.submit({addr, size, /*is_write=*/true, wdata, requester_, tile_});
    // Posted store: occupy the pipe for the issue cycle(s) only.
    pc_ = pc_ + 1;
    if (timing_.store_issue > 1) {
      busy_left_ = timing_.store_issue - 1;
      phase_ = Phase::Busy;
    } else {
      phase_ = Phase::Ready;
    }
    return;
  }

  load_req_ =
      mem_.submit({addr, size, /*is_write=*/false, 0, requester_, tile_});
  load_instr_ = in;
  load_addr_ = addr;
  next_pc_ = pc_ + 1;
  phase_ = Phase::LoadWait;
}

void Core::startVectorMemory(const Instr& in) {
  vec_instr_ = in;
  vec_issued_ = 0;
  vec_total_ = vl_;
  vec_pending_.clear();
  next_pc_ = pc_ + 1;
  if (vec_total_ == 0) {
    // Empty transfer: costs the startup only.
    pc_ = next_pc_;
    if (timing_.vec_mem_issue > 1) {
      busy_left_ = timing_.vec_mem_issue - 1;
      phase_ = Phase::Busy;
    } else {
      phase_ = Phase::Ready;
    }
    return;
  }
  vec_startup_left_ = in.op == Opcode::VLUXEI32
                          ? timing_.vec_mem_issue + timing_.gather_startup
                          : timing_.vec_mem_issue;
  phase_ = Phase::VecMem;
}

void Core::tickVecMem(Cycle now) {
  (void)now;
  ++*c_vec_mem_;
  if (vec_startup_left_ > 0) {
    --vec_startup_left_;
    return;
  }

  const Instr& in = vec_instr_;
  const bool gather = in.op == Opcode::VLUXEI32;
  const bool store = in.op == Opcode::VSE32;
  const Addr base = x_[in.rs1];
  const bool fifo_port = mem_.isMmio(base);  // HHT FE: fixed buffer address

  // Issue element transactions at the class rate.
  std::uint32_t rate = gather ? timing_.gather_issue_per_cycle
                              : std::max<std::uint32_t>(1, timing_.vec_bus_bytes / 4);
  while (rate-- > 0 && vec_issued_ < vec_total_) {
    const int lane = vec_issued_++;
    Addr addr;
    if (gather) {
      addr = base + v_[in.rs2][lane];  // byte offsets, as in RVV vluxei32
    } else if (fifo_port) {
      addr = base;  // streaming FIFO interface (§3.1)
    } else {
      addr = base + static_cast<Addr>(lane) * 4;
    }
    if (store) {
      mem_.submit({addr, 4, true, v_[in.rs2][lane], requester_, tile_});
    } else {
      const mem::RequestId id =
          mem_.submit({addr, 4, false, 0, requester_, tile_});
      vec_pending_.push_back({id, lane});
    }
  }

  // Collect load responses. One lane-emptiness load gates the whole scan:
  // with no completed response on this requester's lane, no element poll
  // can succeed, and the per-pending takeResponse scans are skipped.
  if (!vec_pending_.empty() && mem_.hasResponses(requester_, tile_)) {
    std::erase_if(vec_pending_, [&](const VecElem& e) {
      if (auto response = mem_.takeResponse(e.req)) {
        if (response->poisoned) {
          throw sim::SimError(
              sim::ErrorKind::MachineCheck,
              requester_ == mem::Requester::Cpu ? "cpu" : "uhht-core",
              "uncorrectable memory error on vector element load, lane " +
                  std::to_string(e.lane) + " at pc=" + std::to_string(pc_),
              {}, tile_);
        }
        v_[in.rd][e.lane] = response->data;
        return true;
      }
      return false;
    });
  }

  if (vec_issued_ == vec_total_ && vec_pending_.empty()) {
    pc_ = next_pc_;
    phase_ = Phase::Ready;
  }
}

}  // namespace hht::cpu
