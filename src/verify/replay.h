#pragma once

#include <string>
#include <vector>

#include "verify/cosim.h"

namespace hht::verify {

/// Everything needed to reproduce a fuzz failure on another machine:
/// the machine configuration, the operands, the campaign seed that found
/// it, where it failed, and a cycle-0 snapshot of the failing run so the
/// replay tool exercises the checkpoint/restore path instead of trusting
/// its own operand placement.
struct ReplayBundle {
  CosimCase c;
  std::uint64_t seed = 0;            ///< campaign seed that found the case
  std::uint64_t run_index = 0;       ///< which run of the campaign
  std::uint64_t failing_element = 0; ///< Divergence::element_index
  std::uint64_t failing_cycle = 0;   ///< Divergence::cycle
  std::string detail;                ///< Divergence/SimError text
  std::vector<std::uint8_t> cycle0_snapshot;
};

/// Serialize a bundle ("HHTR" version-1 container). Throws
/// SimError(Verify) on I/O failure.
void saveBundle(const std::string& path, const ReplayBundle& bundle);

/// Parse a bundle; throws SimError(Verify) on I/O failure and
/// SimError(Checkpoint) on a malformed or version-skewed container.
/// Truncated payloads, element counts larger than the bytes remaining,
/// and out-of-bounds matrix/vector coordinates are all rejected before
/// any state is built, with the failing byte offset named in the error —
/// never a crash, giant allocation, or silently misread case.
ReplayBundle loadBundle(const std::string& path);

}  // namespace hht::verify
