#include "verify/replay.h"

#include <fstream>

#include "sparse/coo.h"

namespace hht::verify {

namespace {
// v2: the embedded SystemConfig stream gained mem.work_queue_enabled
// (snapshot v7); v1 bundles would misparse, so the version gate rejects
// them with a structured error instead.
constexpr std::uint32_t kBundleVersion = 2;

void writeCase(sim::StateWriter& w, const CosimCase& c) {
  w.u32(static_cast<std::uint32_t>(c.kind));
  harness::writeSystemConfig(w, c.cfg);
  w.tag("CSRM");
  w.u32(c.m.numRows()).u32(c.m.numCols()).u64(c.m.nnz());
  const sparse::CooMatrix coo = c.m.toCoo();  // keep alive across the loop
  for (const sparse::Triplet& t : coo.entries()) {
    w.u32(t.row).u32(t.col).f32(t.value);
  }
  w.tag("DVEC");
  w.u32(c.v.size());
  for (sparse::Value val : c.v.values()) w.f32(val);
  w.tag("SVEC");
  w.u32(c.sv.size()).u32(c.sv.nnz());
  for (sim::Index i : c.sv.indices()) w.u32(i);
  for (sparse::Value val : c.sv.vals()) w.f32(val);
}

/// Reject a corrupt element count BEFORE allocating for it or mis-decoding
/// the rest of the stream as payload: a count claiming more elements than
/// the bytes left in the container can hold is structurally impossible.
/// Names the offset of the count so a truncated/flipped bundle diagnoses
/// itself.
void checkCount(const sim::StateReader& r, std::uint64_t count,
                std::uint64_t bytes_each, const char* what) {
  if (bytes_each != 0 && count > r.remaining() / bytes_each) {
    throw sim::SimError(
        sim::ErrorKind::Checkpoint, "replay",
        std::string("corrupt bundle: ") + what + " count " +
            std::to_string(count) + " needs " +
            std::to_string(count * bytes_each) + " bytes but only " +
            std::to_string(r.remaining()) + " remain (count read just "
            "before offset " + std::to_string(r.offset()) + ")");
  }
}

CosimCase readCase(sim::StateReader& r) {
  CosimCase c;
  const std::uint32_t kind = r.u32();
  if (kind > static_cast<std::uint32_t>(EngineKind::Flat)) {
    throw sim::SimError(sim::ErrorKind::Checkpoint, "replay",
                        "bundle names engine kind " + std::to_string(kind) +
                            ", which this build does not know (offset " +
                            std::to_string(r.offset()) + ")");
  }
  c.kind = static_cast<EngineKind>(kind);
  c.cfg = harness::readSystemConfig(r);
  r.expectTag("CSRM");
  const sim::Index num_rows = r.u32();
  const sim::Index num_cols = r.u32();
  const std::uint64_t nnz = r.u64();
  checkCount(r, nnz, 12, "CSRM triplet");  // row + col + value
  sparse::CooMatrix coo(num_rows, num_cols);
  for (std::uint64_t i = 0; i < nnz; ++i) {
    const std::size_t at = r.offset();
    const sim::Index row = r.u32();
    const sim::Index col = r.u32();
    if (row >= num_rows || col >= num_cols) {
      throw sim::SimError(
          sim::ErrorKind::Checkpoint, "replay",
          "corrupt bundle: triplet " + std::to_string(i) + " at offset " +
              std::to_string(at) + " names (" + std::to_string(row) + ", " +
              std::to_string(col) + ") outside the declared " +
              std::to_string(num_rows) + "x" + std::to_string(num_cols) +
              " matrix");
    }
    coo.add(row, col, r.f32());
  }
  c.m = sparse::CsrMatrix::fromCoo(std::move(coo));
  r.expectTag("DVEC");
  const std::uint32_t dv_len = r.u32();
  checkCount(r, dv_len, 4, "DVEC element");
  std::vector<sparse::Value> dv(dv_len);
  for (auto& val : dv) val = r.f32();
  c.v = sparse::DenseVector(std::move(dv));
  r.expectTag("SVEC");
  const sim::Index sv_size = r.u32();
  const std::uint32_t sv_nnz = r.u32();
  checkCount(r, sv_nnz, 8, "SVEC entry");  // index + value
  std::vector<sim::Index> idx(sv_nnz);
  for (auto& i : idx) {
    const std::size_t at = r.offset();
    i = r.u32();
    if (i >= sv_size) {
      throw sim::SimError(sim::ErrorKind::Checkpoint, "replay",
                          "corrupt bundle: SVEC index " + std::to_string(i) +
                              " at offset " + std::to_string(at) +
                              " >= declared vector size " +
                              std::to_string(sv_size));
    }
  }
  std::vector<sparse::Value> vals(idx.size());
  for (auto& val : vals) val = r.f32();
  c.sv = sparse::SparseVector(sv_size, std::move(idx), std::move(vals));
  return c;
}
}  // namespace

void saveBundle(const std::string& path, const ReplayBundle& bundle) {
  sim::StateWriter w;
  w.tag("HHTR");
  w.u32(kBundleVersion);
  writeCase(w, bundle.c);
  w.u64(bundle.seed).u64(bundle.run_index);
  w.u64(bundle.failing_element).u64(bundle.failing_cycle);
  w.str(bundle.detail);
  w.bytes(bundle.cycle0_snapshot.data(), bundle.cycle0_snapshot.size());

  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    throw sim::SimError(sim::ErrorKind::Verify, "replay",
                        "cannot open '" + path + "' for writing");
  }
  out.write(reinterpret_cast<const char*>(w.data().data()),
            static_cast<std::streamsize>(w.size()));
  if (!out) {
    throw sim::SimError(sim::ErrorKind::Verify, "replay",
                        "short write to '" + path + "'");
  }
}

ReplayBundle loadBundle(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw sim::SimError(sim::ErrorKind::Verify, "replay",
                        "cannot open '" + path + "'");
  }
  std::vector<std::uint8_t> buf(
      (std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());

  sim::StateReader r(buf);
  r.expectTag("HHTR");
  const std::uint32_t version = r.u32();
  if (version != kBundleVersion) {
    throw sim::SimError(sim::ErrorKind::Checkpoint, "replay",
                        "bundle version " + std::to_string(version) +
                            " != supported version " +
                            std::to_string(kBundleVersion));
  }
  ReplayBundle bundle;
  bundle.c = readCase(r);
  bundle.seed = r.u64();
  bundle.run_index = r.u64();
  bundle.failing_element = r.u64();
  bundle.failing_cycle = r.u64();
  bundle.detail = r.str();
  bundle.cycle0_snapshot = r.bytes();
  if (!r.atEnd()) {
    throw sim::SimError(sim::ErrorKind::Checkpoint, "replay",
                        "trailing bytes after bundle payload");
  }
  return bundle;
}

}  // namespace hht::verify
