#pragma once

#include <bit>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "harness/multi_tile.h"
#include "harness/system.h"
#include "sim/probe.h"
#include "sparse/csr.h"
#include "sparse/dense.h"
#include "sparse/hier_bitmap.h"
#include "sparse/bitvector.h"
#include "sparse/sparse_vector.h"

namespace hht::verify {

/// One element the HHT front-end is expected to deliver to the CPU, in
/// stream order: either a data element (the 32 bits a BUF_DATA pop must
/// return) or a row-end marker (a VALID=0 pop).
struct StreamEvent {
  bool row_end = false;
  std::uint32_t bits = 0;

  friend bool operator==(const StreamEvent&, const StreamEvent&) = default;
};

/// First point where the simulated device's behaviour departed from the
/// functional model, with enough context to aim a waveform-level debug
/// session: the ordinal of the divergent element and the cycle window
/// [prev_cycle, cycle] between the previous delivery and the divergent one.
struct Divergence {
  std::uint64_t element_index = 0;  ///< 0-based ordinal in the delivery stream
  bool expected_row_end = false;
  bool actual_row_end = false;
  std::uint32_t expected_bits = 0;
  std::uint32_t actual_bits = 0;
  sim::Cycle prev_cycle = 0;  ///< cycle of the previous delivered element
  sim::Cycle cycle = 0;       ///< cycle of the divergent element (or check)
  std::string detail;         ///< human-readable classification

  std::string describe() const;
};

// --- expected-stream builders (the functional model of each engine) ---

/// SpmvGather: one data element per stored non-zero, row-major —
/// bit_cast(v[cols[k]]). The gather engine emits no row-end markers (the
/// consumer walks rowPtr itself).
std::vector<StreamEvent> expectedGatherStream(const sparse::CsrMatrix& m,
                                              const sparse::DenseVector& v);

/// SpmspvV1: per index match of row r with the sparse vector, the matrix
/// value then the vector value; after every row (including empty ones)
/// exactly one row-end marker.
std::vector<StreamEvent> expectedMergeV1Stream(const sparse::CsrMatrix& m,
                                               const sparse::SparseVector& v);

/// SpmspvV2: one data element per stored matrix non-zero — the matching
/// vector value, or literal 0.0f bits when the column is absent from the
/// sparse vector. No markers.
std::vector<StreamEvent> expectedStreamV2Stream(const sparse::CsrMatrix& m,
                                                const sparse::SparseVector& v);

// Shard-restricted variants: the expected stream of one tile of a
// MultiTileSystem running the corresponding *Shard kernel — exactly the
// full-matrix stream with the row loop clamped to the shard (the tile
// streams of a run concatenate, in tile order, into the full stream).
std::vector<StreamEvent> expectedGatherStreamShard(
    const sparse::CsrMatrix& m, const sparse::DenseVector& v,
    const kernels::RowShard& shard);
std::vector<StreamEvent> expectedMergeV1StreamShard(
    const sparse::CsrMatrix& m, const sparse::SparseVector& v,
    const kernels::RowShard& shard);
std::vector<StreamEvent> expectedStreamV2StreamShard(
    const sparse::CsrMatrix& m, const sparse::SparseVector& v,
    const kernels::RowShard& shard);

/// HierBitmap: gathered v[col] per set position in row-major position
/// order, plus one row-end marker per row (trailing empty rows close at
/// the end of the walk).
std::vector<StreamEvent> expectedHierStream(const sparse::HierBitmapMatrix& m,
                                            const sparse::DenseVector& v);

/// FlatBitmap: same contract as the hierarchical walk over the one-level
/// bit-vector format.
std::vector<StreamEvent> expectedFlatStream(const sparse::BitVectorMatrix& m,
                                            const sparse::DenseVector& v);

/// Differential co-simulation oracle.
///
/// Runs in lockstep with harness::System via two hooks:
///  - sim::StreamTap (install with Hht::addStreamTap): every element the FE
///    delivers to the CPU is compared against the expected stream; the
///    first mismatch is latched as a Divergence with its cycle window.
///  - harness::RunObserver (pass to System::run): every `check_interval`
///    cycles the FIFO occupancy invariants are checked against the
///    configured hardware sizes (staging <= BLEN, published buffers <= N,
///    emission queue <= its depth).
///
/// After the run, checkFinal() verifies the delivered-element count and the
/// bit-exact output vector. The oracle never throws on divergence — it
/// latches the first one and keeps observing, so a campaign driver can
/// always collect the full report and decide what to do.
class DifferentialOracle : public sim::StreamTap, public harness::RunObserver {
 public:
  explicit DifferentialOracle(std::vector<StreamEvent> expected,
                              sim::Cycle check_interval = 64)
      : expected_(std::move(expected)), check_interval_(check_interval) {}

  void onDelivered(sim::Cycle now, bool is_row_end,
                   std::uint32_t bits) override;
  void onCycle(harness::System& sys, sim::Cycle now) override;

  /// The FIFO-occupancy invariant check against `hht`'s own configured
  /// sizes, independent of where the device lives — onCycle delegates here
  /// for a System's device, and MultiTileOracle calls it per tile. Latches
  /// (never throws) like every other check.
  void checkOccupancy(const core::Hht& hht, sim::Cycle now);

  /// Whether `now` is an occupancy-sampling cycle (check_interval gating;
  /// interval 0 disables sampling entirely).
  bool occupancyCheckDue(sim::Cycle now) const {
    return check_interval_ != 0 && now % check_interval_ == 0;
  }

  /// Post-run checks: the whole expected stream was delivered and the
  /// output vector matches the reference bit-for-bit.
  void checkFinal(const sparse::DenseVector& actual_y,
                  const sparse::DenseVector& expected_y);

  /// Post-run stream-completeness check alone (no output comparison) — the
  /// per-tile half of a multi-tile checkFinal, where y is shared and
  /// compared once globally.
  void checkStreamComplete();

  /// Extend the expected stream mid-run — the per-row dynamic mode: a
  /// chunk-queue run's row->tile mapping is decided by the arbiter, so the
  /// MultiTileOracle appends each tile's expected events as the claim log
  /// reveals which rows it won. Safe because a claim's first delivery is
  /// always at least one cycle after the observer sees the claim (the CPU
  /// still has to reprogram and START the HHT).
  void appendExpected(std::vector<StreamEvent> more) {
    expected_.insert(expected_.end(), more.begin(), more.end());
  }

  bool diverged() const { return divergence_.has_value(); }
  const std::optional<Divergence>& divergence() const { return divergence_; }
  std::uint64_t delivered() const { return delivered_; }

 private:
  void latch(Divergence d) {
    if (!divergence_) divergence_ = std::move(d);
  }

  std::vector<StreamEvent> expected_;
  sim::Cycle check_interval_;
  std::uint64_t delivered_ = 0;
  sim::Cycle last_cycle_ = 0;
  std::optional<Divergence> divergence_;
};

/// Multi-tile differential oracle: one DifferentialOracle (and so one
/// stream tap) per tile, each holding that tile's shard-restricted expected
/// stream, plus the per-cycle occupancy sweep over every tile's device.
/// Divergences latch per tile; the shared output vector is checked once
/// globally in checkFinal. Like the single-tile oracle it never throws —
/// campaign drivers collect the report.
class MultiTileOracle : public harness::MultiTileObserver {
 public:
  /// Builds the expected events of one claimed row window [row_begin,
  /// row_begin + row_count) — wrap the matching expected*StreamShard
  /// builder (e.g. expectedGatherStreamShard with a {begin, end, 0} shard).
  using RowStreamFn = std::function<std::vector<StreamEvent>(
      std::uint32_t row_begin, std::uint32_t row_count)>;

  /// `expected_per_tile.size()` must equal the system's tile count at
  /// attach(). check_interval gates the occupancy sweep (0 disables).
  explicit MultiTileOracle(
      std::vector<std::vector<StreamEvent>> expected_per_tile,
      sim::Cycle check_interval = 64);

  /// Per-row dynamic mode for chunk-queue runs: every tile starts with an
  /// empty expected stream, and onCycle drains the work-queue claim log,
  /// appending `row_stream(row_begin, row_count)` to the claiming tile's
  /// oracle — so the expectation follows whatever row->tile mapping the
  /// arbiter produced. Requires the system to have a work queue and a
  /// fresh (not restored mid-run) claim log.
  MultiTileOracle(std::uint32_t num_tiles, RowStreamFn row_stream,
                  sim::Cycle check_interval = 64);

  /// Install tile t's oracle as a stream tap on sys.hht(t). Pair with
  /// detach() before the system (or this oracle) is destroyed.
  void attach(harness::MultiTileSystem& sys);
  void detach(harness::MultiTileSystem& sys);

  void onCycle(harness::MultiTileSystem& sys, sim::Cycle now) override;

  /// Post-run: every tile's stream completed, and the shared output vector
  /// matches the reference bit-for-bit.
  void checkFinal(const sparse::DenseVector& actual_y,
                  const sparse::DenseVector& expected_y);

  bool diverged() const;
  /// All latched divergences, one line per tile, for a campaign report.
  std::string describe() const;
  std::uint32_t numTiles() const {
    return static_cast<std::uint32_t>(tiles_.size());
  }
  DifferentialOracle& tileOracle(std::uint32_t tile) {
    return tiles_.at(tile);
  }

 private:
  std::vector<DifferentialOracle> tiles_;  ///< stable: sized once in the ctor
  std::optional<Divergence> y_divergence_;
  RowStreamFn row_stream_;        ///< set = per-row dynamic mode
  std::size_t next_claim_ = 0;    ///< claim-log drain cursor (dynamic mode)
};

}  // namespace hht::verify
