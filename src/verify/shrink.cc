#include "verify/shrink.h"

#include <algorithm>

#include "sparse/coo.h"

namespace hht::verify {

namespace {

using sim::Index;

/// Mutable decomposition of a case's operands; rebuilt into a CosimCase
/// for every candidate evaluation.
struct Operands {
  std::vector<sparse::Triplet> triplets;
  Index num_rows = 0;
  Index num_cols = 0;
  std::vector<sparse::Value> v;
  std::vector<Index> sv_idx;
  std::vector<sparse::Value> sv_vals;
};

Operands decompose(const CosimCase& c) {
  Operands ops;
  ops.triplets = c.m.toCoo().entries();
  ops.num_rows = c.m.numRows();
  ops.num_cols = c.m.numCols();
  ops.v.assign(c.v.values().begin(), c.v.values().end());
  ops.sv_idx = c.sv.indices();
  ops.sv_vals = c.sv.vals();
  return ops;
}

CosimCase rebuild(const CosimCase& base, const Operands& ops) {
  CosimCase c = base;
  c.m = sparse::CsrMatrix::fromCoo(
      sparse::CooMatrix(ops.num_rows, ops.num_cols, ops.triplets));
  std::vector<sparse::Value> v = ops.v;
  v.resize(ops.num_cols, 1.0f);
  c.v = sparse::DenseVector(std::move(v));
  std::vector<Index> idx;
  std::vector<sparse::Value> vals;
  for (std::size_t i = 0; i < ops.sv_idx.size(); ++i) {
    if (ops.sv_idx[i] < ops.num_cols) {
      idx.push_back(ops.sv_idx[i]);
      vals.push_back(ops.sv_vals[i]);
    }
  }
  c.sv = sparse::SparseVector(ops.num_cols, std::move(idx), std::move(vals));
  return c;
}

class Shrinker {
 public:
  Shrinker(const CosimCase& base, int max_evals)
      : base_(base), max_evals_(max_evals) {}

  bool fails(const Operands& ops) {
    if (evals_ >= max_evals_) return false;  // budget exhausted: reject
    ++evals_;
    return !runCosim(rebuild(base_, ops)).ok;
  }

  int evals() const { return evals_; }

  /// ddmin-style chunk removal over the triplet list.
  bool shrinkTriplets(Operands& ops) {
    bool any = false;
    std::size_t chunk = std::max<std::size_t>(1, ops.triplets.size() / 2);
    while (chunk >= 1 && evals_ < max_evals_) {
      bool removed = false;
      for (std::size_t at = 0;
           at < ops.triplets.size() && evals_ < max_evals_;) {
        Operands cand = ops;
        const std::size_t n =
            std::min(chunk, cand.triplets.size() - at);
        cand.triplets.erase(
            cand.triplets.begin() + static_cast<std::ptrdiff_t>(at),
            cand.triplets.begin() + static_cast<std::ptrdiff_t>(at + n));
        if (fails(cand)) {
          ops = std::move(cand);
          removed = any = true;  // retry same offset at same granularity
        } else {
          at += chunk;
        }
      }
      if (!removed && chunk == 1) break;
      if (!removed) chunk /= 2;
    }
    return any;
  }

  /// Drop one row at a time, remapping rows above it down; also truncates
  /// trailing rows past the last occupied one.
  bool shrinkRows(Operands& ops) {
    bool any = false;
    for (Index r = 0; r < ops.num_rows && ops.num_rows > 1 &&
                      evals_ < max_evals_;) {
      Operands cand = ops;
      cand.num_rows -= 1;
      std::vector<sparse::Triplet> kept;
      for (const sparse::Triplet& t : cand.triplets) {
        if (t.row == r) continue;
        sparse::Triplet nt = t;
        if (nt.row > r) nt.row -= 1;
        kept.push_back(nt);
      }
      cand.triplets = std::move(kept);
      if (fails(cand)) {
        ops = std::move(cand);
        any = true;  // same r now names the next row
      } else {
        ++r;
      }
    }
    return any;
  }

  /// Truncate columns past the last one referenced by the matrix or the
  /// sparse vector (shrinks v and the sv domain with it).
  bool truncateCols(Operands& ops) {
    Index max_col = 0;
    bool seen = false;
    for (const sparse::Triplet& t : ops.triplets) {
      max_col = std::max(max_col, t.col);
      seen = true;
    }
    for (Index i : ops.sv_idx) {
      max_col = std::max(max_col, i);
      seen = true;
    }
    const Index want = seen ? max_col + 1 : 1;
    if (want >= ops.num_cols) return false;
    Operands cand = ops;
    cand.num_cols = want;
    cand.v.resize(want);
    if (!fails(cand)) return false;
    ops = std::move(cand);
    return true;
  }

  /// Thin the sparse vector one entry at a time.
  bool shrinkSv(Operands& ops) {
    bool any = false;
    for (std::size_t i = 0; i < ops.sv_idx.size() && evals_ < max_evals_;) {
      Operands cand = ops;
      cand.sv_idx.erase(cand.sv_idx.begin() + static_cast<std::ptrdiff_t>(i));
      cand.sv_vals.erase(cand.sv_vals.begin() +
                         static_cast<std::ptrdiff_t>(i));
      if (fails(cand)) {
        ops = std::move(cand);
        any = true;
      } else {
        ++i;
      }
    }
    return any;
  }

 private:
  const CosimCase& base_;
  int max_evals_;
  int evals_ = 0;
};

}  // namespace

ShrinkResult shrinkCase(const CosimCase& failing, int max_evals) {
  ShrinkResult result;
  result.initial_nnz = failing.m.nnz();
  result.initial_rows = failing.m.numRows();

  Operands ops = decompose(failing);
  Shrinker shrinker(failing, max_evals);
  bool progress = true;
  while (progress) {
    progress = false;
    progress |= shrinker.shrinkTriplets(ops);
    progress |= shrinker.shrinkRows(ops);
    progress |= shrinker.truncateCols(ops);
    progress |= shrinker.shrinkSv(ops);
  }

  result.c = rebuild(failing, ops);
  result.evals = shrinker.evals();
  result.final_nnz = result.c.m.nnz();
  result.final_rows = result.c.m.numRows();
  return result;
}

}  // namespace hht::verify
