#include "verify/oracle.h"

#include <sstream>

#include "sparse/reference.h"

namespace hht::verify {

namespace {
std::uint32_t bitsOf(float v) { return std::bit_cast<std::uint32_t>(v); }
}  // namespace

std::string Divergence::describe() const {
  std::ostringstream os;
  os << "divergence at element " << element_index << " (cycle window ["
     << prev_cycle << ", " << cycle << "]): " << detail;
  if (expected_row_end != actual_row_end) {
    os << " expected " << (expected_row_end ? "row-end" : "data")
       << ", device delivered " << (actual_row_end ? "row-end" : "data");
  }
  if (!expected_row_end && !actual_row_end &&
      expected_bits != actual_bits) {
    os << " expected bits 0x" << std::hex << expected_bits
       << ", device delivered 0x" << actual_bits << std::dec;
  }
  return os.str();
}

namespace {
kernels::RowShard fullShard(const sparse::CsrMatrix& m) {
  return {0, m.numRows(), 0};
}
}  // namespace

std::vector<StreamEvent> expectedGatherStream(const sparse::CsrMatrix& m,
                                              const sparse::DenseVector& v) {
  return expectedGatherStreamShard(m, v, fullShard(m));
}

std::vector<StreamEvent> expectedMergeV1Stream(const sparse::CsrMatrix& m,
                                               const sparse::SparseVector& v) {
  return expectedMergeV1StreamShard(m, v, fullShard(m));
}

std::vector<StreamEvent> expectedStreamV2Stream(const sparse::CsrMatrix& m,
                                                const sparse::SparseVector& v) {
  return expectedStreamV2StreamShard(m, v, fullShard(m));
}

std::vector<StreamEvent> expectedGatherStreamShard(
    const sparse::CsrMatrix& m, const sparse::DenseVector& v,
    const kernels::RowShard& shard) {
  std::vector<StreamEvent> out;
  const auto& row_ptr = m.rowPtr();
  const sim::Index nnz_begin = row_ptr[shard.row_begin];
  const sim::Index nnz_end = row_ptr[shard.row_end];
  out.reserve(nnz_end - nnz_begin);
  for (sim::Index k = nnz_begin; k < nnz_end; ++k) {
    out.push_back({false, bitsOf(v[m.cols()[k]])});
  }
  return out;
}

std::vector<StreamEvent> expectedMergeV1StreamShard(
    const sparse::CsrMatrix& m, const sparse::SparseVector& v,
    const kernels::RowShard& shard) {
  std::vector<StreamEvent> out;
  for (sim::Index r = shard.row_begin; r < shard.row_end; ++r) {
    for (const sparse::AlignedPair& pair : sparse::intersectRow(m, r, v)) {
      out.push_back({false, bitsOf(pair.m_val)});
      out.push_back({false, bitsOf(pair.v_val)});
    }
    out.push_back({true, 0});
  }
  return out;
}

std::vector<StreamEvent> expectedStreamV2StreamShard(
    const sparse::CsrMatrix& m, const sparse::SparseVector& v,
    const kernels::RowShard& shard) {
  std::vector<StreamEvent> out;
  for (sim::Index r = shard.row_begin; r < shard.row_end; ++r) {
    for (sparse::Value val : sparse::valueStreamRow(m, r, v)) {
      out.push_back({false, bitsOf(val)});
    }
  }
  return out;
}

namespace {
/// Shared walk for both bitmap formats: enumerate (position, value) pairs
/// in row-major position order, emit the gathered v[col] per set position
/// and close each row with a marker as the walk crosses its boundary.
std::vector<StreamEvent> bitmapStream(
    const std::vector<std::pair<std::size_t, sparse::Value>>& nonzeros,
    sim::Index num_rows, sim::Index num_cols, const sparse::DenseVector& v) {
  std::vector<StreamEvent> out;
  out.reserve(nonzeros.size() + num_rows);
  sim::Index cur_row = 0;
  for (const auto& [pos, val] : nonzeros) {
    (void)val;  // the device streams gathered v values; vals come via CPU
    const sim::Index row = static_cast<sim::Index>(pos / num_cols);
    const sim::Index col = static_cast<sim::Index>(pos % num_cols);
    while (cur_row < row) {
      out.push_back({true, 0});
      ++cur_row;
    }
    out.push_back({false, bitsOf(v[col])});
  }
  while (cur_row < num_rows) {
    out.push_back({true, 0});
    ++cur_row;
  }
  return out;
}
}  // namespace

std::vector<StreamEvent> expectedHierStream(const sparse::HierBitmapMatrix& m,
                                            const sparse::DenseVector& v) {
  return bitmapStream(m.enumerate(), m.numRows(), m.numCols(), v);
}

std::vector<StreamEvent> expectedFlatStream(const sparse::BitVectorMatrix& m,
                                            const sparse::DenseVector& v) {
  std::vector<std::pair<std::size_t, sparse::Value>> nonzeros;
  nonzeros.reserve(m.nnz());
  const std::size_t positions =
      static_cast<std::size_t>(m.numRows()) * m.numCols();
  std::size_t vi = 0;
  for (std::size_t pos = 0; pos < positions; ++pos) {
    if ((m.words()[pos >> 6] >> (pos & 63)) & 1u) {
      nonzeros.emplace_back(pos, m.vals()[vi++]);
    }
  }
  return bitmapStream(nonzeros, m.numRows(), m.numCols(), v);
}

void DifferentialOracle::onDelivered(sim::Cycle now, bool is_row_end,
                                     std::uint32_t bits) {
  const sim::Cycle prev = last_cycle_;
  last_cycle_ = now;
  const std::uint64_t index = delivered_++;
  if (divergence_) return;  // first divergence already latched; keep counting

  if (index >= expected_.size()) {
    latch({index, false, is_row_end, 0, bits, prev, now,
           "device delivered more elements than the functional model "
           "expects (" +
               std::to_string(expected_.size()) + ")"});
    return;
  }
  const StreamEvent& want = expected_[index];
  if (want.row_end != is_row_end) {
    latch({index, want.row_end, is_row_end, want.bits, bits, prev, now,
           "element kind mismatch"});
    return;
  }
  if (!want.row_end && want.bits != bits) {
    latch({index, want.row_end, is_row_end, want.bits, bits, prev, now,
           "payload mismatch"});
  }
}

void DifferentialOracle::onCycle(harness::System& sys, sim::Cycle now) {
  if (!occupancyCheckDue(now)) return;
  const core::Hht* hht = sys.asicHht();
  if (hht == nullptr) return;
  checkOccupancy(*hht, now);
}

void DifferentialOracle::checkOccupancy(const core::Hht& hht, sim::Cycle now) {
  if (divergence_) return;
  const core::HhtConfig& cfg = hht.config();
  const core::BufferPool& pool = hht.bufferPool();
  if (pool.stagedSlots() > cfg.buffer_len) {
    latch({delivered_, false, false, 0, 0, last_cycle_, now,
           "FIFO invariant violated: staging holds " +
               std::to_string(pool.stagedSlots()) + " slots > BLEN " +
               std::to_string(cfg.buffer_len)});
    return;
  }
  if (pool.publishedBuffers() > cfg.num_buffers) {
    latch({delivered_, false, false, 0, 0, last_cycle_, now,
           "FIFO invariant violated: " +
               std::to_string(pool.publishedBuffers()) +
               " published buffers > N " + std::to_string(cfg.num_buffers)});
    return;
  }
  if (hht.emissionQueue().size() > cfg.emission_queue) {
    latch({delivered_, false, false, 0, 0, last_cycle_, now,
           "FIFO invariant violated: emission queue holds " +
               std::to_string(hht.emissionQueue().size()) +
               " entries > depth " + std::to_string(cfg.emission_queue)});
  }
}

void DifferentialOracle::checkStreamComplete() {
  if (divergence_) return;
  if (delivered_ != expected_.size()) {
    latch({delivered_, false, false, 0, 0, last_cycle_, last_cycle_,
           "stream ended after " + std::to_string(delivered_) +
               " elements; the functional model expects " +
               std::to_string(expected_.size())});
  }
}

void DifferentialOracle::checkFinal(const sparse::DenseVector& actual_y,
                                    const sparse::DenseVector& expected_y) {
  checkStreamComplete();
  if (divergence_) return;
  if (actual_y.size() != expected_y.size()) {
    latch({delivered_, false, false, 0, 0, last_cycle_, last_cycle_,
           "output vector length " + std::to_string(actual_y.size()) +
               " != reference length " + std::to_string(expected_y.size())});
    return;
  }
  for (sim::Index i = 0; i < expected_y.size(); ++i) {
    if (bitsOf(actual_y[i]) != bitsOf(expected_y[i])) {
      latch({delivered_, false, false, bitsOf(expected_y[i]),
             bitsOf(actual_y[i]), last_cycle_, last_cycle_,
             "output y[" + std::to_string(i) +
                 "] differs from the reference kernel"});
      return;
    }
  }
}

MultiTileOracle::MultiTileOracle(
    std::vector<std::vector<StreamEvent>> expected_per_tile,
    sim::Cycle check_interval) {
  tiles_.reserve(expected_per_tile.size());
  for (auto& expected : expected_per_tile) {
    tiles_.emplace_back(std::move(expected), check_interval);
  }
}

MultiTileOracle::MultiTileOracle(std::uint32_t num_tiles,
                                 RowStreamFn row_stream,
                                 sim::Cycle check_interval)
    : row_stream_(std::move(row_stream)) {
  tiles_.reserve(num_tiles);
  for (std::uint32_t t = 0; t < num_tiles; ++t) {
    tiles_.emplace_back(std::vector<StreamEvent>{}, check_interval);
  }
}

void MultiTileOracle::attach(harness::MultiTileSystem& sys) {
  if (sys.numTiles() != tiles_.size()) {
    throw sim::SimError(sim::ErrorKind::Config, "oracle",
                        "MultiTileOracle holds " +
                            std::to_string(tiles_.size()) +
                            " expected streams, system has " +
                            std::to_string(sys.numTiles()) + " tiles");
  }
  for (std::uint32_t t = 0; t < sys.numTiles(); ++t) {
    sys.hht(t).addStreamTap(&tiles_[t]);
  }
}

void MultiTileOracle::detach(harness::MultiTileSystem& sys) {
  for (std::uint32_t t = 0; t < sys.numTiles() && t < tiles_.size(); ++t) {
    sys.hht(t).removeStreamTap(&tiles_[t]);
  }
}

void MultiTileOracle::onCycle(harness::MultiTileSystem& sys, sim::Cycle now) {
  // Dynamic mode: fold newly granted claims into the claiming tiles'
  // expected streams. The observer runs after the memory tick that granted
  // them, and the first delivery of a claimed chunk is at least one cycle
  // later (the CPU reprograms the HHT first), so the append always lands
  // before the deliveries it predicts.
  if (row_stream_) {
    if (const mem::ChunkQueueDevice* wq = sys.workQueue()) {
      const auto& log = wq->claimLog();
      for (; next_claim_ < log.size(); ++next_claim_) {
        const mem::ChunkQueueDevice::Claim& c = log[next_claim_];
        tiles_.at(c.tile).appendExpected(row_stream_(c.row_begin, c.row_count));
      }
    }
  }
  for (std::uint32_t t = 0; t < sys.numTiles() && t < tiles_.size(); ++t) {
    if (tiles_[t].occupancyCheckDue(now)) {
      tiles_[t].checkOccupancy(sys.hht(t), now);
    }
  }
}

void MultiTileOracle::checkFinal(const sparse::DenseVector& actual_y,
                                 const sparse::DenseVector& expected_y) {
  for (DifferentialOracle& tile : tiles_) tile.checkStreamComplete();
  if (y_divergence_) return;
  if (actual_y.size() != expected_y.size()) {
    y_divergence_ = {0,     false, false,
                     0,     0,     0,
                     0,     "output vector length " +
                                std::to_string(actual_y.size()) +
                                " != reference length " +
                                std::to_string(expected_y.size())};
    return;
  }
  for (sim::Index i = 0; i < expected_y.size(); ++i) {
    if (bitsOf(actual_y[i]) != bitsOf(expected_y[i])) {
      y_divergence_ = {0,
                       false,
                       false,
                       bitsOf(expected_y[i]),
                       bitsOf(actual_y[i]),
                       0,
                       0,
                       "output y[" + std::to_string(i) +
                           "] differs from the reference kernel"};
      return;
    }
  }
}

bool MultiTileOracle::diverged() const {
  if (y_divergence_) return true;
  for (const DifferentialOracle& tile : tiles_) {
    if (tile.diverged()) return true;
  }
  return false;
}

std::string MultiTileOracle::describe() const {
  std::ostringstream os;
  for (std::size_t t = 0; t < tiles_.size(); ++t) {
    if (tiles_[t].diverged()) {
      os << "tile " << t << ": " << tiles_[t].divergence()->describe() << "\n";
    }
  }
  if (y_divergence_) {
    os << "shared output: " << y_divergence_->describe() << "\n";
  }
  return os.str();
}

}  // namespace hht::verify
