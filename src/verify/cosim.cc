#include "verify/cosim.h"

#include <sstream>

#include "sparse/reference.h"

namespace hht::verify {

const char* engineKindName(EngineKind kind) {
  switch (kind) {
    case EngineKind::Gather: return "gather";
    case EngineKind::MergeV1: return "merge-v1";
    case EngineKind::StreamV2: return "stream-v2";
    case EngineKind::Hier: return "hier-bitmap";
    case EngineKind::Flat: return "flat-bitmap";
  }
  return "unknown";
}

std::string CosimReport::describe() const {
  std::ostringstream os;
  if (ok) {
    os << "ok: " << elements << " elements, " << cycles << " cycles";
    return os.str();
  }
  if (!error.empty()) {
    os << "simulator error: " << error;
    return os.str();
  }
  if (divergence) {
    os << divergence->describe();
    return os.str();
  }
  os << "failed (no detail)";
  return os.str();
}

CosimReport runCosim(const CosimCase& c, const CosimOptions& opts) {
  CosimReport rep;
  try {
    harness::System sys(c.cfg);
    const sim::Addr mmio = c.cfg.memory.mmio_base;

    // Operand placement + consumer program + functional model, per kind.
    // Scalar consumers throughout: the oracle verifies the device, not the
    // vector unit, and scalar kernels cover every engine type.
    isa::Program program = isa::ProgramBuilder("cosim-empty").ecall().build();
    sim::Addr y_addr = 0;
    std::uint32_t y_len = 0;
    std::vector<StreamEvent> expected;
    sparse::DenseVector expected_y;
    switch (c.kind) {
      case EngineKind::Gather: {
        const kernels::SpmvLayout layout = harness::loadSpmv(sys, c.m, c.v);
        program = kernels::spmvScalarHht(layout, mmio);
        y_addr = layout.y;
        y_len = layout.num_rows;
        expected = expectedGatherStream(c.m, c.v);
        expected_y = sparse::spmvCsr(c.m, c.v);
        break;
      }
      case EngineKind::MergeV1: {
        const kernels::SpmspvLayout layout =
            harness::loadSpmspv(sys, c.m, c.sv);
        program = kernels::spmspvHhtV1(layout, mmio);
        y_addr = layout.y;
        y_len = layout.num_rows;
        expected = expectedMergeV1Stream(c.m, c.sv);
        expected_y = sparse::spmspvMerge(c.m, c.sv);
        break;
      }
      case EngineKind::StreamV2: {
        const kernels::SpmspvLayout layout =
            harness::loadSpmspv(sys, c.m, c.sv);
        program = kernels::spmspvHhtV2Scalar(layout, mmio);
        y_addr = layout.y;
        y_len = layout.num_rows;
        expected = expectedStreamV2Stream(c.m, c.sv);
        expected_y = sparse::spmspvValueStream(c.m, c.sv);
        break;
      }
      case EngineKind::Hier: {
        const sparse::HierBitmapMatrix hm =
            sparse::HierBitmapMatrix::fromDense(c.m.toDense());
        const kernels::HierLayout layout = harness::loadHier(sys, hm, c.v);
        program = kernels::hierBitmapHht(layout, mmio);
        y_addr = layout.y;
        y_len = layout.num_rows;
        expected = expectedHierStream(hm, c.v);
        expected_y = sparse::spmvCsr(c.m, c.v);
        break;
      }
      case EngineKind::Flat: {
        const sparse::BitVectorMatrix bm =
            sparse::BitVectorMatrix::fromDense(c.m.toDense());
        const kernels::HierLayout layout =
            harness::loadFlatBitmap(sys, bm, c.v);
        program = kernels::flatBitmapHht(layout, mmio);
        y_addr = layout.y;
        y_len = layout.num_rows;
        expected = expectedFlatStream(bm, c.v);
        expected_y = sparse::spmvCsr(c.m, c.v);
        break;
      }
    }

    DifferentialOracle oracle(std::move(expected), opts.invariant_interval);
    if (sys.asicHht() != nullptr) sys.asicHht()->addStreamTap(&oracle);

    harness::RunResult res;
    if (opts.restore_snapshot != nullptr) {
      const sim::Cycle start = sys.restore(*opts.restore_snapshot, program);
      res = sys.resume(program, y_addr, y_len, start, opts.max_cycles,
                       nullptr, &oracle);
    } else {
      if (opts.capture_snapshot) {
        // Arm the architectural state first so the snapshot resumes into
        // the run rather than into a halted core.
        sys.cpu().loadProgram(program);
        rep.cycle0_snapshot = sys.checkpoint(program, 0);
      }
      res = sys.run(program, y_addr, y_len, opts.max_cycles, nullptr,
                    &oracle);
    }
    oracle.checkFinal(res.y, expected_y);

    rep.cycles = res.cycles;
    rep.elements = oracle.delivered();
    if (oracle.diverged()) {
      rep.ok = false;
      rep.divergence = oracle.divergence();
    }
  } catch (const sim::SimError& e) {
    rep.ok = false;
    rep.error = e.what();
  }
  return rep;
}

}  // namespace hht::verify
