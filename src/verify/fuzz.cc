#include "verify/fuzz.h"

#include <algorithm>

#include "harness/experiment.h"
#include "sparse/coo.h"

namespace hht::verify {

namespace {

using sim::Index;
using sim::Rng;

/// Small-integer value in [1, 15]: exact under float accumulation in any
/// order the pipelines produce.
float smallValue(Rng& rng) {
  return static_cast<float>(1 + rng.nextBelow(15));
}

Index pickDim(Rng& rng, Index cap) {
  // Bias towards tiny dimensions (where off-by-ones live) but keep some
  // mid-sized draws for occupancy pressure.
  switch (rng.nextBelow(6)) {
    case 0: return 1;
    case 1: return 2;
    case 2: return static_cast<Index>(2 + rng.nextBelow(6));     // 2..7
    case 3: return static_cast<Index>(8 + rng.nextBelow(9));     // 8..16
    default:
      return static_cast<Index>(
          std::min<std::uint64_t>(cap, 8 + rng.nextBelow(cap)));
  }
}

sparse::CsrMatrix randomMatrix(Rng& rng, Index num_rows, Index num_cols) {
  sparse::CooMatrix coo(num_rows, num_cols);
  const std::uint64_t shape = rng.nextBelow(8);
  auto fill_row = [&](Index r, double density) {
    for (Index c = 0; c < num_cols; ++c) {
      if (rng.nextBool(density)) coo.add(r, c, smallValue(rng));
    }
  };
  switch (shape) {
    case 0:
      break;  // completely empty matrix
    case 1:   // one singleton non-zero in a random cell
      coo.add(static_cast<Index>(rng.nextBelow(num_rows)),
              static_cast<Index>(rng.nextBelow(num_cols)), smallValue(rng));
      break;
    case 2:  // one fully dense row amid empty rows
      fill_row(static_cast<Index>(rng.nextBelow(num_rows)), 1.0);
      break;
    case 3:  // alternating dense / empty rows
      for (Index r = 0; r < num_rows; r += 2) fill_row(r, 1.0);
      break;
    case 4:  // fully dense
      for (Index r = 0; r < num_rows; ++r) fill_row(r, 1.0);
      break;
    case 5: {  // adversarial column ordering: reversed-stride diagonal band
      for (Index r = 0; r < num_rows; ++r) {
        const Index c = (num_cols - 1) - (r % num_cols);
        coo.add(r, c, smallValue(rng));
        if (c > 0 && rng.nextBool(0.5)) coo.add(r, c - 1, smallValue(rng));
      }
      break;
    }
    case 6: {  // one huge row (every column), rest sparse
      fill_row(static_cast<Index>(rng.nextBelow(num_rows)), 1.0);
      for (Index r = 0; r < num_rows; ++r) fill_row(r, 0.1);
      break;
    }
    default:  // plain random 5%..50% density
      for (Index r = 0; r < num_rows; ++r) {
        fill_row(r, 0.05 + 0.45 * rng.nextDouble());
      }
      break;
  }
  return sparse::CsrMatrix::fromCoo(std::move(coo));
}

sparse::DenseVector randomDense(Rng& rng, Index n) {
  sparse::DenseVector v(n);
  for (Index i = 0; i < n; ++i) v[i] = smallValue(rng);
  return v;
}

sparse::SparseVector randomSparse(Rng& rng, Index n) {
  std::vector<Index> idx;
  std::vector<sparse::Value> vals;
  // Edge-biased occupancy: sometimes empty, sometimes full, usually partial.
  const double density = [&] {
    switch (rng.nextBelow(4)) {
      case 0: return 0.0;
      case 1: return 1.0;
      default: return 0.1 + 0.8 * rng.nextDouble();
    }
  }();
  for (Index i = 0; i < n; ++i) {
    if (rng.nextBool(density)) {
      idx.push_back(i);
      vals.push_back(smallValue(rng));
    }
  }
  return sparse::SparseVector(n, std::move(idx), std::move(vals));
}

}  // namespace

void randomizeHardware(sim::Rng& rng, harness::SystemConfig& cfg) {
  cfg.hht.num_buffers = static_cast<std::uint32_t>(1 + rng.nextBelow(4));
  cfg.hht.buffer_len = static_cast<std::uint32_t>(1 + rng.nextBelow(16));
  cfg.hht.be_issue_per_cycle = static_cast<std::uint32_t>(1 + rng.nextBelow(2));
  cfg.hht.cmp_per_cycle = static_cast<std::uint32_t>(1 + rng.nextBelow(2));
  cfg.hht.cmp_recurrence = static_cast<std::uint32_t>(1 + rng.nextBelow(3));
  cfg.hht.emit_per_cycle = static_cast<std::uint32_t>(1 + rng.nextBelow(4));
  cfg.hht.prefetch_queue = static_cast<std::uint32_t>(1 + rng.nextBelow(8));
  // Depth >= 2: variant-1 reserves aligned pair slots atomically, and
  // HhtConfig::validate() rejects a 1-deep queue outright.
  cfg.hht.emission_queue = static_cast<std::uint32_t>(2 + rng.nextBelow(3));
  cfg.memory.sram_latency = 1 + rng.nextBelow(4);
  cfg.memory.grants_per_cycle = static_cast<std::uint32_t>(1 + rng.nextBelow(4));
  cfg.memory.policy = rng.nextBool(0.5) ? mem::ArbiterPolicy::CpuPriority
                                        : mem::ArbiterPolicy::RoundRobin;
  cfg.memory.hht_cache_enabled = rng.nextBool(0.25);
  cfg.memory.cpu_cache_enabled = rng.nextBool(0.25);
  cfg.memory.prefetch_enabled =
      cfg.memory.cpu_cache_enabled && rng.nextBool(0.5);
}

CosimCase randomCase(sim::Rng& rng, EngineKind kind) {
  CosimCase c;
  c.kind = kind;
  // Bitmap walks enumerate the whole position space; keep those dims small
  // so a campaign run stays in the tens of milliseconds.
  const Index cap = (kind == EngineKind::Hier || kind == EngineKind::Flat)
                        ? 40
                        : 96;
  const Index num_rows = pickDim(rng, cap);
  const Index num_cols = pickDim(rng, cap);
  c.m = randomMatrix(rng, num_rows, num_cols);
  c.v = randomDense(rng, num_cols);
  c.sv = randomSparse(rng, num_cols);
  c.cfg = harness::defaultConfig();
  // Fuzz operands are tiny; a small SRAM keeps cycle-0 snapshots (and so
  // replay bundles) compact.
  c.cfg.memory.sram_bytes = 256u << 10;
  randomizeHardware(rng, c.cfg);
  return c;
}

}  // namespace hht::verify
