#pragma once

#include "sim/rng.h"
#include "verify/cosim.h"

namespace hht::verify {

/// Deterministic pathological-case generator for the fuzz campaign.
///
/// Draws one co-simulation case from `rng`: a sparse matrix biased towards
/// the structural edge cases that break metadata walkers (empty matrix,
/// empty rows mixed with dense rows, singleton non-zeros, one huge row,
/// adversarial column orderings, single-column/single-row shapes) plus a
/// randomized hardware configuration (buffer counts and lengths, pipeline
/// rates, memory latencies, arbiter policy, caches) so every run exercises
/// a different timing interleaving of the same functional contract.
///
/// Values are drawn from small integers so float accumulation is exact and
/// the oracle's bit-exact output comparison has no tolerance question.
CosimCase randomCase(sim::Rng& rng, EngineKind kind);

/// Randomize only the hardware knobs of `cfg` (in place); used by
/// randomCase and exposed for tests.
void randomizeHardware(sim::Rng& rng, harness::SystemConfig& cfg);

}  // namespace hht::verify
