#pragma once

#include "verify/cosim.h"

namespace hht::verify {

struct ShrinkResult {
  CosimCase c;     ///< the smallest still-failing case found
  int evals = 0;   ///< co-simulations spent shrinking
  std::size_t initial_nnz = 0;
  std::size_t final_nnz = 0;
  sim::Index initial_rows = 0;
  sim::Index final_rows = 0;
};

/// Greedy shrink of a failing co-simulation case: repeatedly try removing
/// chunks of matrix non-zeros (delta-debugging style, halving chunk
/// sizes), dropping rows, truncating unreferenced trailing columns and
/// thinning the sparse vector — keeping any reduction under which the case
/// still fails — until a fixpoint or the evaluation budget is reached.
/// The failure predicate is simply "runCosim reports not-ok", so a shrink
/// may walk from one failure mode to another; what it never does is return
/// a passing case.
ShrinkResult shrinkCase(const CosimCase& failing, int max_evals = 300);

}  // namespace hht::verify
