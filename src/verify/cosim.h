#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "harness/system.h"
#include "verify/oracle.h"

namespace hht::verify {

/// Which HHT engine a co-simulation case exercises. Mirrors core::Mode but
/// lives here so verification code never widens the device's own enum.
enum class EngineKind : std::uint32_t {
  Gather = 0,    ///< SpMV gather
  MergeV1 = 1,   ///< SpMSpV variant-1 aligned pairs
  StreamV2 = 2,  ///< SpMSpV variant-2 value-or-zero stream
  Hier = 3,      ///< hierarchical-bitmap walker
  Flat = 4,      ///< one-level bit-vector walker
};

const char* engineKindName(EngineKind kind);

/// A self-contained co-simulation input: the operands plus the machine
/// configuration. The CSR matrix is the canonical operand for every kind;
/// the bitmap kinds derive their format from it through the dense form.
/// `v` feeds Gather/Hier/Flat; `sv` feeds MergeV1/StreamV2.
struct CosimCase {
  EngineKind kind = EngineKind::Gather;
  sparse::CsrMatrix m;
  sparse::DenseVector v;
  sparse::SparseVector sv;
  harness::SystemConfig cfg;
};

struct CosimOptions {
  sim::Cycle invariant_interval = 64;  ///< FIFO checks every N cycles; 0 off
  sim::Cycle max_cycles = 50'000'000;
  /// Fill CosimReport::cycle0_snapshot with a checkpoint taken before the
  /// first cycle (what a replay bundle embeds).
  bool capture_snapshot = false;
  /// Restore this snapshot instead of starting fresh (the bench/replay
  /// path); must have been captured from an identical case.
  const std::vector<std::uint8_t>* restore_snapshot = nullptr;
};

struct CosimReport {
  bool ok = true;
  std::optional<Divergence> divergence;  ///< when the oracle disagreed
  std::string error;  ///< when the simulator threw (SimError text)
  std::uint64_t cycles = 0;
  std::uint64_t elements = 0;  ///< elements the FE delivered
  std::vector<std::uint8_t> cycle0_snapshot;  ///< when capture_snapshot

  std::string describe() const;
};

/// Run one case against the differential oracle: fresh System, operands
/// loaded, expected stream + reference output computed from the functional
/// model, scalar consumer kernel simulated to completion with the oracle
/// tapped into the FE delivery path. Never throws on divergence or
/// SimError — both are reported through the returned CosimReport.
CosimReport runCosim(const CosimCase& c, const CosimOptions& opts = {});

}  // namespace hht::verify
