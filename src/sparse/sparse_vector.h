#pragma once

#include <vector>

#include "sparse/dense.h"

namespace hht::sparse {

/// Compressed sparse vector: ascending indices of the non-zeros plus their
/// values. This is the "sparse Vector" operand of the paper's SpMSpV
/// kernels; the HHT's merge engine intersects its index array with a CSR
/// row's column indices.
class SparseVector {
 public:
  SparseVector() = default;
  SparseVector(Index size, std::vector<Index> indices, std::vector<Value> vals)
      : size_(size), indices_(std::move(indices)), vals_(std::move(vals)) {}

  static SparseVector fromDense(const DenseVector& dense);

  Index size() const { return size_; }
  Index nnz() const { return static_cast<Index>(vals_.size()); }

  const std::vector<Index>& indices() const { return indices_; }
  const std::vector<Value>& vals() const { return vals_; }

  /// Indices strictly ascending, in range, parallel arrays, no stored zeros.
  bool validate() const;

  DenseVector toDense() const;

  /// Value at position i (zero when i is not a stored index).
  /// Binary search; used by reference kernels and tests, not by simulation.
  Value at(Index i) const;

  double sparsity() const {
    return size_ == 0 ? 0.0
                      : 1.0 - static_cast<double>(nnz()) /
                                  static_cast<double>(size_);
  }

  bool operator==(const SparseVector&) const = default;

 private:
  Index size_ = 0;
  std::vector<Index> indices_;
  std::vector<Value> vals_;
};

}  // namespace hht::sparse
