#include "sparse/csc.h"

#include <algorithm>

namespace hht::sparse {

CscMatrix CscMatrix::fromDense(const DenseMatrix& dense) {
  std::vector<Index> col_ptr(dense.numCols() + 1, 0);
  std::vector<Index> rows;
  std::vector<Value> vals;
  for (Index c = 0; c < dense.numCols(); ++c) {
    for (Index r = 0; r < dense.numRows(); ++r) {
      if (Value v = dense.at(r, c); v != 0.0f) {
        rows.push_back(r);
        vals.push_back(v);
      }
    }
    col_ptr[c + 1] = static_cast<Index>(rows.size());
  }
  return CscMatrix(dense.numRows(), dense.numCols(), std::move(col_ptr),
                   std::move(rows), std::move(vals));
}

CscMatrix CscMatrix::fromCoo(CooMatrix coo) {
  coo.canonicalize();
  // Column-major counting sort over the canonical (row-major) entries keeps
  // rows ascending within each column.
  std::vector<Index> col_ptr(coo.numCols() + 1, 0);
  for (const Triplet& t : coo.entries()) ++col_ptr[t.col + 1];
  for (Index c = 0; c < coo.numCols(); ++c) col_ptr[c + 1] += col_ptr[c];

  std::vector<Index> rows(coo.nnz());
  std::vector<Value> vals(coo.nnz());
  std::vector<Index> cursor(col_ptr.begin(), col_ptr.end() - 1);
  for (const Triplet& t : coo.entries()) {
    const Index slot = cursor[t.col]++;
    rows[slot] = t.row;
    vals[slot] = t.value;
  }
  return CscMatrix(coo.numRows(), coo.numCols(), std::move(col_ptr),
                   std::move(rows), std::move(vals));
}

bool CscMatrix::validate() const {
  if (col_ptr_.size() != static_cast<std::size_t>(n_cols_) + 1) return false;
  if (col_ptr_.front() != 0) return false;
  if (col_ptr_.back() != vals_.size()) return false;
  if (rows_.size() != vals_.size()) return false;
  for (Index c = 0; c < n_cols_; ++c) {
    if (col_ptr_[c] > col_ptr_[c + 1]) return false;
    for (Index k = col_ptr_[c]; k < col_ptr_[c + 1]; ++k) {
      if (rows_[k] >= n_rows_) return false;
      if (k > col_ptr_[c] && rows_[k - 1] >= rows_[k]) return false;
    }
  }
  return true;
}

DenseMatrix CscMatrix::toDense() const {
  DenseMatrix dense(n_rows_, n_cols_);
  for (Index c = 0; c < n_cols_; ++c) {
    for (Index k = col_ptr_[c]; k < col_ptr_[c + 1]; ++k) {
      dense.at(rows_[k], c) += vals_[k];
    }
  }
  return dense;
}

CooMatrix CscMatrix::toCoo() const {
  CooMatrix coo(n_rows_, n_cols_);
  for (Index c = 0; c < n_cols_; ++c) {
    for (Index k = col_ptr_[c]; k < col_ptr_[c + 1]; ++k) {
      coo.add(rows_[k], c, vals_[k]);
    }
  }
  return coo;
}

}  // namespace hht::sparse
