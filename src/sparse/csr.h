#pragma once

#include <span>
#include <vector>

#include "sparse/coo.h"
#include "sparse/dense.h"

namespace hht::sparse {

/// Compressed Sparse Row matrix — the paper's primary representation
/// (Fig. 1) and the one the ASIC HHT's memory-mapped registers describe
/// (M_Rows_Base / M_Cols_Base / vals).
///
/// Layout (identical to what the simulator writes into simulated SRAM):
///   rowPtr : n_rows+1 indices; row r's entries live in [rowPtr[r], rowPtr[r+1])
///   cols   : column index of each non-zero, ascending within a row
///   vals   : the non-zero values, parallel to cols
class CsrMatrix {
 public:
  CsrMatrix() : row_ptr_(1, 0) {}
  CsrMatrix(Index n_rows, Index n_cols, std::vector<Index> row_ptr,
            std::vector<Index> cols, std::vector<Value> vals)
      : n_rows_(n_rows), n_cols_(n_cols), row_ptr_(std::move(row_ptr)),
        cols_(std::move(cols)), vals_(std::move(vals)) {}

  static CsrMatrix fromDense(const DenseMatrix& dense);
  /// Builds from COO; canonicalizes a copy first (sorts + merges duplicates).
  static CsrMatrix fromCoo(CooMatrix coo);

  Index numRows() const { return n_rows_; }
  Index numCols() const { return n_cols_; }
  std::size_t nnz() const { return vals_.size(); }

  const std::vector<Index>& rowPtr() const { return row_ptr_; }
  const std::vector<Index>& cols() const { return cols_; }
  const std::vector<Value>& vals() const { return vals_; }

  Index rowNnz(Index r) const { return row_ptr_[r + 1] - row_ptr_[r]; }
  std::span<const Index> rowCols(Index r) const {
    return {cols_.data() + row_ptr_[r], rowNnz(r)};
  }
  std::span<const Value> rowVals(Index r) const {
    return {vals_.data() + row_ptr_[r], rowNnz(r)};
  }

  /// Structural invariants: rowPtr monotone starting at 0 and ending at nnz,
  /// parallel cols/vals, column indices in range and strictly ascending
  /// per row.
  bool validate() const;

  DenseMatrix toDense() const;
  CooMatrix toCoo() const;

  /// Longest / average row occupancy — workload statistics the experiment
  /// harness reports next to each run.
  Index maxRowNnz() const;
  double avgRowNnz() const;

  /// Fraction of zero entries relative to the dense n_rows*n_cols size.
  double sparsity() const;

  /// Extract the sub-matrix rows [r0,r0+h) x cols [c0,c0+w) as CSR.
  /// Used by the §5.5 energy study, which tiles matrices into 16x16 blocks.
  CsrMatrix extractTile(Index r0, Index c0, Index h, Index w) const;

  bool operator==(const CsrMatrix&) const = default;

 private:
  Index n_rows_ = 0;
  Index n_cols_ = 0;
  std::vector<Index> row_ptr_;
  std::vector<Index> cols_;
  std::vector<Value> vals_;
};

}  // namespace hht::sparse
