#include "sparse/hier_bitmap.h"

#include <bit>

namespace hht::sparse {

namespace {

std::size_t popcountBefore(const std::vector<std::uint64_t>& words,
                           std::size_t bit_pos) {
  std::size_t count = 0;
  for (std::size_t w = 0; w < bit_pos >> 6; ++w) {
    count += static_cast<std::size_t>(std::popcount(words[w]));
  }
  if (bit_pos & 63) {
    const std::uint64_t mask = (std::uint64_t{1} << (bit_pos & 63)) - 1;
    count += static_cast<std::size_t>(std::popcount(words[bit_pos >> 6] & mask));
  }
  return count;
}

bool testBit(const std::vector<std::uint64_t>& words, std::size_t bit_pos) {
  return (words[bit_pos >> 6] >> (bit_pos & 63)) & 1u;
}

}  // namespace

HierBitmapMatrix HierBitmapMatrix::fromDense(const DenseMatrix& dense) {
  HierBitmapMatrix m;
  m.n_rows_ = dense.numRows();
  m.n_cols_ = dense.numCols();
  const std::size_t positions =
      static_cast<std::size_t>(m.n_rows_) * m.n_cols_;
  const std::size_t slots = (positions + kLeafBits - 1) / kLeafBits;
  m.level1_.assign((slots + 63) / 64, 0);

  for (std::size_t slot = 0; slot < slots; ++slot) {
    std::uint64_t leaf = 0;
    for (Index b = 0; b < kLeafBits; ++b) {
      const std::size_t pos = slot * kLeafBits + b;
      if (pos >= positions) break;
      const Value v = dense.at(static_cast<Index>(pos / m.n_cols_),
                               static_cast<Index>(pos % m.n_cols_));
      if (v != 0.0f) {
        leaf |= std::uint64_t{1} << b;
        m.vals_.push_back(v);
      }
    }
    if (leaf != 0) {
      m.level1_[slot >> 6] |= std::uint64_t{1} << (slot & 63);
      m.leaves_.push_back(leaf);
    }
  }
  return m;
}

Value HierBitmapMatrix::at(Index r, Index c) const {
  const std::size_t pos = static_cast<std::size_t>(r) * n_cols_ + c;
  const std::size_t slot = pos / kLeafBits;
  if (!testBit(level1_, slot)) return 0.0f;
  const std::size_t leaf_index = popcountBefore(level1_, slot);
  const std::uint64_t leaf = leaves_[leaf_index];
  const Index bit = static_cast<Index>(pos % kLeafBits);
  if (!((leaf >> bit) & 1u)) return 0.0f;

  // Values before this one = all values in earlier leaves + earlier bits
  // in this leaf.
  std::size_t before = 0;
  for (std::size_t l = 0; l < leaf_index; ++l) {
    before += static_cast<std::size_t>(std::popcount(leaves_[l]));
  }
  if (bit != 0) {
    before += static_cast<std::size_t>(
        std::popcount(leaf & ((std::uint64_t{1} << bit) - 1)));
  }
  return vals_[before];
}

std::vector<std::pair<std::size_t, Value>> HierBitmapMatrix::enumerate() const {
  std::vector<std::pair<std::size_t, Value>> out;
  out.reserve(vals_.size());
  std::size_t leaf_index = 0;
  std::size_t val_index = 0;
  const std::size_t slots = numLeafSlots();
  for (std::size_t slot = 0; slot < slots; ++slot) {
    if (!testBit(level1_, slot)) continue;
    std::uint64_t leaf = leaves_[leaf_index++];
    while (leaf != 0) {
      const int bit = std::countr_zero(leaf);
      leaf &= leaf - 1;
      out.emplace_back(slot * kLeafBits + static_cast<std::size_t>(bit),
                       vals_[val_index++]);
    }
  }
  return out;
}

bool HierBitmapMatrix::validate() const {
  const std::size_t slots = numLeafSlots();
  if (level1_.size() != (slots + 63) / 64 && !(slots == 0 && level1_.empty())) {
    return false;
  }
  std::size_t set_slots = 0;
  for (std::uint64_t w : level1_) {
    set_slots += static_cast<std::size_t>(std::popcount(w));
  }
  if (set_slots != leaves_.size()) return false;
  std::size_t total = 0;
  for (std::uint64_t leaf : leaves_) {
    if (leaf == 0) return false;  // a recorded leaf must be occupied
    total += static_cast<std::size_t>(std::popcount(leaf));
  }
  if (total != vals_.size()) return false;
  for (Value v : vals_) {
    if (v == 0.0f) return false;
  }
  return true;
}

DenseMatrix HierBitmapMatrix::toDense() const {
  DenseMatrix dense(n_rows_, n_cols_);
  for (const auto& [pos, v] : enumerate()) {
    dense.at(static_cast<Index>(pos / n_cols_),
             static_cast<Index>(pos % n_cols_)) = v;
  }
  return dense;
}

}  // namespace hht::sparse
