#pragma once

#include <cstdint>
#include <vector>

#include "sparse/dense.h"

namespace hht::sparse {

/// Hierarchical bitmap representation in the style of SMASH [21]
/// (Kanellopoulos et al., MICRO'19), which the paper programs the HHT to
/// traverse (§6, results omitted there; we reproduce the mechanism and
/// benchmark it in bench/abl_smash).
///
/// Two levels over the row-major position space, 64 positions per leaf:
///   level-1: one bit per 64-position leaf block; set iff the block holds
///            at least one non-zero.
///   level-0: for each *set* level-1 bit, a 64-bit occupancy word.
///   vals   : non-zero values packed in position order.
///
/// Locating the k-th non-zero requires popcount walks over both levels —
/// the "complicated indexing" the paper notes makes the HHT work harder
/// than the CPU it serves.
class HierBitmapMatrix {
 public:
  static constexpr Index kLeafBits = 64;

  HierBitmapMatrix() = default;

  static HierBitmapMatrix fromDense(const DenseMatrix& dense);

  Index numRows() const { return n_rows_; }
  Index numCols() const { return n_cols_; }
  std::size_t nnz() const { return vals_.size(); }

  const std::vector<std::uint64_t>& level1() const { return level1_; }
  const std::vector<std::uint64_t>& leaves() const { return leaves_; }
  const std::vector<Value>& vals() const { return vals_; }

  /// Number of leaf blocks the position space divides into.
  Index numLeafSlots() const {
    const std::size_t positions = static_cast<std::size_t>(n_rows_) * n_cols_;
    return static_cast<Index>((positions + kLeafBits - 1) / kLeafBits);
  }

  /// Value at (r, c); popcount-rank walk over both levels.
  Value at(Index r, Index c) const;

  /// Enumerate non-zeros in row-major order as (position, value).
  /// The HHT's hier-bitmap engine performs exactly this walk in hardware.
  std::vector<std::pair<std::size_t, Value>> enumerate() const;

  bool validate() const;
  DenseMatrix toDense() const;

  std::size_t storageBytes() const {
    return (level1_.size() + leaves_.size()) * sizeof(std::uint64_t) +
           vals_.size() * sizeof(Value);
  }

  bool operator==(const HierBitmapMatrix&) const = default;

 private:
  Index n_rows_ = 0;
  Index n_cols_ = 0;
  std::vector<std::uint64_t> level1_;
  std::vector<std::uint64_t> leaves_;  ///< one word per set level-1 bit
  std::vector<Value> vals_;
};

}  // namespace hht::sparse
