#pragma once

#include <iosfwd>
#include <string>

#include "sim/error.h"
#include "sparse/coo.h"

namespace hht::sparse {

/// Matrix Market (.mtx) coordinate-format I/O.
///
/// The paper draws additional workloads from the Texas A&M (SuiteSparse)
/// collection, which is distributed as Matrix Market files. We implement
/// the subset the collection uses for real matrices:
///   %%MatrixMarket matrix coordinate {real|integer|pattern} {general|symmetric}
/// Pattern entries get value 1.0; symmetric files are expanded to general
/// on load (mirror entries added, diagonal not duplicated).
///
/// Malformed input — truncated files, dimensions that overflow Index,
/// entry counts inconsistent with the dimensions, out-of-range
/// coordinates, non-finite values, trailing garbage — is rejected with a
/// structured error; nothing is inferred from a broken file.

/// Structured parse error: a sim::SimError of kind Config raised by
/// component "matrix-market", so campaign drivers can classify loader
/// failures alongside every other configuration rejection.
class MatrixMarketError : public sim::SimError {
 public:
  explicit MatrixMarketError(const std::string& message)
      : sim::SimError(sim::ErrorKind::Config, "matrix-market", message) {}
};

/// Parse a Matrix Market stream into COO (1-based coordinates converted to
/// 0-based). Throws MatrixMarketError on malformed input.
CooMatrix readMatrixMarket(std::istream& in);
CooMatrix readMatrixMarketFile(const std::string& path);

/// Write COO as "matrix coordinate real general" (canonical order).
void writeMatrixMarket(std::ostream& out, const CooMatrix& coo);
void writeMatrixMarketFile(const std::string& path, const CooMatrix& coo);

}  // namespace hht::sparse
