#pragma once

#include <iosfwd>
#include <stdexcept>
#include <string>

#include "sparse/coo.h"

namespace hht::sparse {

/// Matrix Market (.mtx) coordinate-format I/O.
///
/// The paper draws additional workloads from the Texas A&M (SuiteSparse)
/// collection, which is distributed as Matrix Market files. We implement
/// the subset the collection uses for real matrices:
///   %%MatrixMarket matrix coordinate {real|integer|pattern} {general|symmetric}
/// Pattern entries get value 1.0; symmetric files are expanded to general
/// on load (mirror entries added, diagonal not duplicated).

class MatrixMarketError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Parse a Matrix Market stream into COO (1-based coordinates converted to
/// 0-based). Throws MatrixMarketError on malformed input.
CooMatrix readMatrixMarket(std::istream& in);
CooMatrix readMatrixMarketFile(const std::string& path);

/// Write COO as "matrix coordinate real general" (canonical order).
void writeMatrixMarket(std::ostream& out, const CooMatrix& coo);
void writeMatrixMarketFile(const std::string& path, const CooMatrix& coo);

}  // namespace hht::sparse
