#include "sparse/coo.h"

#include <algorithm>

namespace hht::sparse {

CooMatrix CooMatrix::fromDense(const DenseMatrix& dense) {
  CooMatrix coo(dense.numRows(), dense.numCols());
  for (Index r = 0; r < dense.numRows(); ++r) {
    for (Index c = 0; c < dense.numCols(); ++c) {
      if (Value v = dense.at(r, c); v != 0.0f) coo.add(r, c, v);
    }
  }
  return coo;
}

void CooMatrix::canonicalize() {
  std::sort(entries_.begin(), entries_.end(),
            [](const Triplet& a, const Triplet& b) {
              return a.row != b.row ? a.row < b.row : a.col < b.col;
            });
  std::vector<Triplet> merged;
  merged.reserve(entries_.size());
  for (const Triplet& t : entries_) {
    if (!merged.empty() && merged.back().row == t.row &&
        merged.back().col == t.col) {
      merged.back().value += t.value;
    } else {
      merged.push_back(t);
    }
  }
  std::erase_if(merged, [](const Triplet& t) { return t.value == 0.0f; });
  entries_ = std::move(merged);
}

bool CooMatrix::isCanonical() const {
  for (std::size_t i = 1; i < entries_.size(); ++i) {
    const Triplet& prev = entries_[i - 1];
    const Triplet& cur = entries_[i];
    const bool ordered =
        prev.row < cur.row || (prev.row == cur.row && prev.col < cur.col);
    if (!ordered) return false;
  }
  return true;
}

bool CooMatrix::validate() const {
  return std::all_of(entries_.begin(), entries_.end(), [this](const Triplet& t) {
    return t.row < n_rows_ && t.col < n_cols_;
  });
}

DenseMatrix CooMatrix::toDense() const {
  DenseMatrix dense(n_rows_, n_cols_);
  for (const Triplet& t : entries_) dense.at(t.row, t.col) += t.value;
  return dense;
}

}  // namespace hht::sparse
