#include "sparse/bitvector.h"

#include <bit>

namespace hht::sparse {

BitVectorMatrix BitVectorMatrix::fromDense(const DenseMatrix& dense) {
  BitVectorMatrix m;
  m.n_rows_ = dense.numRows();
  m.n_cols_ = dense.numCols();
  const std::size_t bits =
      static_cast<std::size_t>(m.n_rows_) * m.n_cols_;
  m.words_.assign((bits + 63) / 64, 0);
  for (Index r = 0; r < m.n_rows_; ++r) {
    for (Index c = 0; c < m.n_cols_; ++c) {
      if (Value v = dense.at(r, c); v != 0.0f) {
        const std::size_t pos = static_cast<std::size_t>(r) * m.n_cols_ + c;
        m.words_[pos >> 6] |= std::uint64_t{1} << (pos & 63);
        m.vals_.push_back(v);
      }
    }
  }
  return m;
}

std::size_t BitVectorMatrix::rank(Index r, Index c) const {
  const std::size_t pos = static_cast<std::size_t>(r) * n_cols_ + c;
  std::size_t count = 0;
  for (std::size_t w = 0; w < pos >> 6; ++w) {
    count += static_cast<std::size_t>(std::popcount(words_[w]));
  }
  if (pos & 63) {
    const std::uint64_t mask = (std::uint64_t{1} << (pos & 63)) - 1;
    count += static_cast<std::size_t>(std::popcount(words_[pos >> 6] & mask));
  }
  return count;
}

bool BitVectorMatrix::validate() const {
  const std::size_t bits = static_cast<std::size_t>(n_rows_) * n_cols_;
  if (words_.size() != (bits + 63) / 64 && !(bits == 0 && words_.empty())) {
    return false;
  }
  std::size_t set = 0;
  for (std::uint64_t w : words_) set += static_cast<std::size_t>(std::popcount(w));
  if (set != vals_.size()) return false;
  // No spurious bits beyond the last position.
  if (bits & 63) {
    const std::uint64_t tail_mask = ~((std::uint64_t{1} << (bits & 63)) - 1);
    if (!words_.empty() && (words_.back() & tail_mask) != 0) return false;
  }
  for (Value v : vals_) {
    if (v == 0.0f) return false;
  }
  return true;
}

DenseMatrix BitVectorMatrix::toDense() const {
  DenseMatrix dense(n_rows_, n_cols_);
  std::size_t next = 0;
  for (Index r = 0; r < n_rows_; ++r) {
    for (Index c = 0; c < n_cols_; ++c) {
      if (bit(r, c)) dense.at(r, c) = vals_[next++];
    }
  }
  return dense;
}

}  // namespace hht::sparse
