#pragma once

#include <span>
#include <vector>

#include "sparse/coo.h"
#include "sparse/dense.h"

namespace hht::sparse {

/// Compressed Sparse Column matrix (CSR's transpose-dual, §1's CSC [19]).
///
///   colPtr : n_cols+1; column c's entries live in [colPtr[c], colPtr[c+1])
///   rows   : row index of each non-zero, ascending within a column
///   vals   : values parallel to rows
class CscMatrix {
 public:
  CscMatrix() : col_ptr_(1, 0) {}
  CscMatrix(Index n_rows, Index n_cols, std::vector<Index> col_ptr,
            std::vector<Index> rows, std::vector<Value> vals)
      : n_rows_(n_rows), n_cols_(n_cols), col_ptr_(std::move(col_ptr)),
        rows_(std::move(rows)), vals_(std::move(vals)) {}

  static CscMatrix fromDense(const DenseMatrix& dense);
  static CscMatrix fromCoo(CooMatrix coo);

  Index numRows() const { return n_rows_; }
  Index numCols() const { return n_cols_; }
  std::size_t nnz() const { return vals_.size(); }

  const std::vector<Index>& colPtr() const { return col_ptr_; }
  const std::vector<Index>& rows() const { return rows_; }
  const std::vector<Value>& vals() const { return vals_; }

  Index colNnz(Index c) const { return col_ptr_[c + 1] - col_ptr_[c]; }
  std::span<const Index> colRows(Index c) const {
    return {rows_.data() + col_ptr_[c], colNnz(c)};
  }
  std::span<const Value> colVals(Index c) const {
    return {vals_.data() + col_ptr_[c], colNnz(c)};
  }

  bool validate() const;
  DenseMatrix toDense() const;
  CooMatrix toCoo() const;

  bool operator==(const CscMatrix&) const = default;

 private:
  Index n_rows_ = 0;
  Index n_cols_ = 0;
  std::vector<Index> col_ptr_;
  std::vector<Index> rows_;
  std::vector<Value> vals_;
};

}  // namespace hht::sparse
