#pragma once

#include <vector>

#include "sparse/dense.h"

namespace hht::sparse {

/// ELLPACK (ELL) format: every row padded to the same width K = max row
/// nnz. Regular structure suits vector units (no per-row trip counts) at
/// the cost of padding; classic companion to CSR in SpMV studies.
///
/// Storage is row-major: row r's slots are [r*K, (r+1)*K). Unused slots
/// hold column sentinel kPad and value 0.
class EllMatrix {
 public:
  static constexpr Index kPad = ~Index{0};

  EllMatrix() = default;

  static EllMatrix fromDense(const DenseMatrix& dense);

  Index numRows() const { return n_rows_; }
  Index numCols() const { return n_cols_; }
  Index width() const { return width_; }
  std::size_t nnz() const;

  const std::vector<Index>& cols() const { return cols_; }
  const std::vector<Value>& vals() const { return vals_; }

  Index colAt(Index r, Index slot) const {
    return cols_[static_cast<std::size_t>(r) * width_ + slot];
  }
  Value valAt(Index r, Index slot) const {
    return vals_[static_cast<std::size_t>(r) * width_ + slot];
  }

  /// Real entries packed left, strictly ascending; padding slots carry
  /// (kPad, 0); indices in range.
  bool validate() const;

  DenseMatrix toDense() const;

  std::size_t storageBytes() const {
    return cols_.size() * sizeof(Index) + vals_.size() * sizeof(Value);
  }
  /// Fraction of slots that are padding.
  double paddingWaste() const {
    return cols_.empty() ? 0.0
                         : 1.0 - static_cast<double>(nnz()) /
                                     static_cast<double>(cols_.size());
  }

  bool operator==(const EllMatrix&) const = default;

 private:
  Index n_rows_ = 0;
  Index n_cols_ = 0;
  Index width_ = 0;
  std::vector<Index> cols_;
  std::vector<Value> vals_;
};

}  // namespace hht::sparse
