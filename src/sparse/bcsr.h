#pragma once

#include <vector>

#include "sparse/dense.h"

namespace hht::sparse {

/// Block Compressed Sparse Row (BCSR [18]): CSR over fixed-size dense
/// blocks. A block is stored (fully, including its internal zeros) whenever
/// it contains at least one non-zero; this trades storage for regular,
/// vectorizable inner loops.
class BcsrMatrix {
 public:
  BcsrMatrix() : block_row_ptr_(1, 0) {}

  /// Builds with the given block shape. Dimensions that are not multiples
  /// of the block shape are handled by implicit zero padding on the borders.
  static BcsrMatrix fromDense(const DenseMatrix& dense, Index block_rows,
                              Index block_cols);

  Index numRows() const { return n_rows_; }
  Index numCols() const { return n_cols_; }
  Index blockRows() const { return block_rows_; }
  Index blockCols() const { return block_cols_; }
  /// Number of stored blocks.
  std::size_t numBlocks() const { return block_cols_idx_.size(); }
  /// Count of non-zero scalars inside stored blocks.
  std::size_t nnz() const;

  const std::vector<Index>& blockRowPtr() const { return block_row_ptr_; }
  const std::vector<Index>& blockColIdx() const { return block_cols_idx_; }
  /// Block values, each block stored row-major, blocks in CSR order.
  const std::vector<Value>& vals() const { return vals_; }

  bool validate() const;
  DenseMatrix toDense() const;

  std::size_t storageBytes() const {
    return block_row_ptr_.size() * sizeof(Index) +
           block_cols_idx_.size() * sizeof(Index) + vals_.size() * sizeof(Value);
  }

  /// Fraction of stored scalars that are zero (block fill waste).
  double fillWaste() const;

  bool operator==(const BcsrMatrix&) const = default;

 private:
  Index n_rows_ = 0;
  Index n_cols_ = 0;
  Index block_rows_ = 1;
  Index block_cols_ = 1;
  std::vector<Index> block_row_ptr_;   ///< per block-row
  std::vector<Index> block_cols_idx_;  ///< block-column index of each block
  std::vector<Value> vals_;
};

}  // namespace hht::sparse
