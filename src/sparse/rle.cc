#include "sparse/rle.h"

namespace hht::sparse {

RleMatrix RleMatrix::fromDense(const DenseMatrix& dense) {
  RleMatrix m;
  m.n_rows_ = dense.numRows();
  m.n_cols_ = dense.numCols();
  Index zeros = 0;
  for (Index r = 0; r < m.n_rows_; ++r) {
    for (Index c = 0; c < m.n_cols_; ++c) {
      if (Value v = dense.at(r, c); v != 0.0f) {
        m.runs_.push_back({zeros, v});
        zeros = 0;
      } else {
        ++zeros;
      }
    }
  }
  return m;
}

bool RleMatrix::validate() const {
  std::size_t positions = 0;
  for (const Run& run : runs_) {
    if (run.value == 0.0f) return false;
    positions += run.zeros_before + 1;
  }
  return positions <= static_cast<std::size_t>(n_rows_) * n_cols_;
}

DenseMatrix RleMatrix::toDense() const {
  DenseMatrix dense(n_rows_, n_cols_);
  std::size_t pos = 0;
  for (const Run& run : runs_) {
    pos += run.zeros_before;
    dense.at(static_cast<Index>(pos / n_cols_),
             static_cast<Index>(pos % n_cols_)) = run.value;
    ++pos;
  }
  return dense;
}

}  // namespace hht::sparse
