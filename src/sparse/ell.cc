#include "sparse/ell.h"

#include <algorithm>

namespace hht::sparse {

EllMatrix EllMatrix::fromDense(const DenseMatrix& dense) {
  EllMatrix m;
  m.n_rows_ = dense.numRows();
  m.n_cols_ = dense.numCols();
  Index width = 0;
  for (Index r = 0; r < m.n_rows_; ++r) {
    Index row_nnz = 0;
    for (Index c = 0; c < m.n_cols_; ++c) row_nnz += (dense.at(r, c) != 0.0f);
    width = std::max(width, row_nnz);
  }
  m.width_ = width;
  m.cols_.assign(static_cast<std::size_t>(m.n_rows_) * width, kPad);
  m.vals_.assign(static_cast<std::size_t>(m.n_rows_) * width, 0.0f);
  for (Index r = 0; r < m.n_rows_; ++r) {
    Index slot = 0;
    for (Index c = 0; c < m.n_cols_; ++c) {
      if (Value v = dense.at(r, c); v != 0.0f) {
        m.cols_[static_cast<std::size_t>(r) * width + slot] = c;
        m.vals_[static_cast<std::size_t>(r) * width + slot] = v;
        ++slot;
      }
    }
  }
  return m;
}

std::size_t EllMatrix::nnz() const {
  std::size_t count = 0;
  for (Index c : cols_) count += (c != kPad);
  return count;
}

bool EllMatrix::validate() const {
  const std::size_t expected = static_cast<std::size_t>(n_rows_) * width_;
  if (cols_.size() != expected || vals_.size() != expected) return false;
  for (Index r = 0; r < n_rows_; ++r) {
    bool in_padding = false;
    Index prev = 0;
    for (Index slot = 0; slot < width_; ++slot) {
      const Index c = colAt(r, slot);
      if (c == kPad) {
        if (valAt(r, slot) != 0.0f) return false;
        in_padding = true;
        continue;
      }
      if (in_padding) return false;  // real entry after padding started
      if (c >= n_cols_) return false;
      if (slot > 0 && prev >= c) return false;
      prev = c;
    }
  }
  return true;
}

DenseMatrix EllMatrix::toDense() const {
  DenseMatrix dense(n_rows_, n_cols_);
  for (Index r = 0; r < n_rows_; ++r) {
    for (Index slot = 0; slot < width_; ++slot) {
      const Index c = colAt(r, slot);
      if (c != kPad) dense.at(r, c) = valAt(r, slot);
    }
  }
  return dense;
}

}  // namespace hht::sparse
