#pragma once

#include "sparse/bcsr.h"
#include "sparse/bitvector.h"
#include "sparse/coo.h"
#include "sparse/csc.h"
#include "sparse/csr.h"
#include "sparse/dia.h"
#include "sparse/ell.h"
#include "sparse/hier_bitmap.h"
#include "sparse/rle.h"

namespace hht::sparse {

/// Direct format-to-format conversions. Anything not specialised below goes
/// through the COO interchange form (or dense, for the position-stream
/// formats); all paths are exact for float values since no arithmetic is
/// performed, only re-indexing.
CscMatrix csrToCsc(const CsrMatrix& csr);
CsrMatrix cscToCsr(const CscMatrix& csc);

/// CSR transpose (rows become columns), via the CSC dual.
CsrMatrix transpose(const CsrMatrix& csr);

BitVectorMatrix csrToBitVector(const CsrMatrix& csr);
CsrMatrix bitVectorToCsr(const BitVectorMatrix& bv);

RleMatrix csrToRle(const CsrMatrix& csr);
CsrMatrix rleToCsr(const RleMatrix& rle);

HierBitmapMatrix csrToHierBitmap(const CsrMatrix& csr);
CsrMatrix hierBitmapToCsr(const HierBitmapMatrix& hb);

BcsrMatrix csrToBcsr(const CsrMatrix& csr, Index block_rows, Index block_cols);
CsrMatrix bcsrToCsr(const BcsrMatrix& bcsr);

EllMatrix csrToEll(const CsrMatrix& csr);
CsrMatrix ellToCsr(const EllMatrix& ell);

DiaMatrix csrToDia(const CsrMatrix& csr);
CsrMatrix diaToCsr(const DiaMatrix& dia);

/// Storage footprint of a CSR matrix in bytes (rowPtr + cols + vals),
/// for the format-comparison reporting.
std::size_t csrStorageBytes(const CsrMatrix& csr);

}  // namespace hht::sparse
