#pragma once

#include <vector>

#include "sparse/csr.h"
#include "sparse/dense.h"
#include "sparse/sparse_vector.h"

namespace hht::sparse {

/// Software reference kernels.
///
/// These are the *functional* ground truth the simulated kernels (baseline
/// and HHT-assisted, executed instruction-by-instruction on the cycle
/// simulator) must reproduce bit-for-bit: the simulated code performs the
/// same multiplies and adds in the same order, so results compare with ==,
/// no epsilon.

/// Dense mat-vec (used to validate the sparse references themselves).
DenseVector matVecDense(const DenseMatrix& m, const DenseVector& v);

/// Algorithm 1 of the paper: CSR SpMV, row-major accumulation order.
DenseVector spmvCsr(const CsrMatrix& m, const DenseVector& v);

/// SpMSpV by per-row two-pointer merge of the row's column indices with the
/// sparse vector's indices — the ordering the baseline simulated kernel and
/// the HHT variant-1 engine both follow.
DenseVector spmspvMerge(const CsrMatrix& m, const SparseVector& v);

/// SpMSpV in variant-2 order: for *every* stored matrix non-zero, multiply
/// by the (possibly zero) vector value at its column. Same result as
/// spmspvMerge, but the FLOP order matches the variant-2 kernel.
DenseVector spmspvValueStream(const CsrMatrix& m, const SparseVector& v);

/// The aligned (matrix value, vector value) pairs the HHT variant-1 engine
/// must emit for row r — the index intersection.
struct AlignedPair {
  Value m_val = 0.0f;
  Value v_val = 0.0f;
  friend bool operator==(const AlignedPair&, const AlignedPair&) = default;
};
std::vector<AlignedPair> intersectRow(const CsrMatrix& m, Index row,
                                      const SparseVector& v);

/// The value-or-zero stream the HHT variant-2 engine must emit for row r:
/// one entry per stored matrix non-zero in the row.
std::vector<Value> valueStreamRow(const CsrMatrix& m, Index row,
                                  const SparseVector& v);

/// SpMM: Y = M * B with B dense (num_cols x k). Computed column-by-column
/// in spmvCsr order, which is exactly how the simulated kernels batch the
/// HHT (one gather pass per B column).
DenseMatrix spmmCsr(const CsrMatrix& m, const DenseMatrix& b);

}  // namespace hht::sparse
