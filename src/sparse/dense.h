#pragma once

#include <cassert>
#include <cstddef>
#include <span>
#include <vector>

#include "sim/types.h"

namespace hht::sparse {

using sim::Index;
using sim::Value;

/// Row-major dense matrix of 32-bit floats.
///
/// The dense form is the ground truth every compressed format converts to
/// and from; reference kernels and tests compare against it.
class DenseMatrix {
 public:
  DenseMatrix() = default;
  DenseMatrix(Index n_rows, Index n_cols, Value fill = 0.0f)
      : n_rows_(n_rows), n_cols_(n_cols),
        data_(static_cast<std::size_t>(n_rows) * n_cols, fill) {}

  Index numRows() const { return n_rows_; }
  Index numCols() const { return n_cols_; }

  Value& at(Index r, Index c) {
    assert(r < n_rows_ && c < n_cols_);
    return data_[static_cast<std::size_t>(r) * n_cols_ + c];
  }
  Value at(Index r, Index c) const {
    assert(r < n_rows_ && c < n_cols_);
    return data_[static_cast<std::size_t>(r) * n_cols_ + c];
  }

  std::span<const Value> row(Index r) const {
    assert(r < n_rows_);
    return {data_.data() + static_cast<std::size_t>(r) * n_cols_, n_cols_};
  }
  std::span<Value> row(Index r) {
    assert(r < n_rows_);
    return {data_.data() + static_cast<std::size_t>(r) * n_cols_, n_cols_};
  }

  std::span<const Value> data() const { return data_; }
  std::span<Value> data() { return data_; }

  /// Number of exactly-zero entries (sparsity accounting is exact-zero
  /// based throughout, as in the paper's synthetic workloads).
  std::size_t countZeros() const {
    std::size_t zeros = 0;
    for (Value v : data_) zeros += (v == 0.0f);
    return zeros;
  }
  std::size_t countNonZeros() const { return data_.size() - countZeros(); }

  /// Fraction of zero entries in [0,1]; 0 for an empty matrix.
  double sparsity() const {
    return data_.empty() ? 0.0
                         : static_cast<double>(countZeros()) /
                               static_cast<double>(data_.size());
  }

  bool operator==(const DenseMatrix&) const = default;

 private:
  Index n_rows_ = 0;
  Index n_cols_ = 0;
  std::vector<Value> data_;
};

/// Dense vector with the same conventions.
class DenseVector {
 public:
  DenseVector() = default;
  explicit DenseVector(Index n, Value fill = 0.0f) : data_(n, fill) {}
  explicit DenseVector(std::vector<Value> values) : data_(std::move(values)) {}

  Index size() const { return static_cast<Index>(data_.size()); }
  Value& at(Index i) { assert(i < size()); return data_[i]; }
  Value at(Index i) const { assert(i < size()); return data_[i]; }
  Value& operator[](Index i) { return at(i); }
  Value operator[](Index i) const { return at(i); }

  std::span<const Value> data() const { return data_; }
  std::span<Value> data() { return data_; }
  std::vector<Value>& values() { return data_; }
  const std::vector<Value>& values() const { return data_; }

  std::size_t countNonZeros() const {
    std::size_t nnz = 0;
    for (Value v : data_) nnz += (v != 0.0f);
    return nnz;
  }
  double sparsity() const {
    return data_.empty() ? 0.0
                         : 1.0 - static_cast<double>(countNonZeros()) /
                                     static_cast<double>(data_.size());
  }

  bool operator==(const DenseVector&) const = default;

 private:
  std::vector<Value> data_;
};

}  // namespace hht::sparse
