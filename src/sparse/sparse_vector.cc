#include "sparse/sparse_vector.h"

#include <algorithm>

namespace hht::sparse {

SparseVector SparseVector::fromDense(const DenseVector& dense) {
  std::vector<Index> indices;
  std::vector<Value> vals;
  for (Index i = 0; i < dense.size(); ++i) {
    if (Value v = dense.at(i); v != 0.0f) {
      indices.push_back(i);
      vals.push_back(v);
    }
  }
  return SparseVector(dense.size(), std::move(indices), std::move(vals));
}

bool SparseVector::validate() const {
  if (indices_.size() != vals_.size()) return false;
  for (std::size_t k = 0; k < indices_.size(); ++k) {
    if (indices_[k] >= size_) return false;
    if (k > 0 && indices_[k - 1] >= indices_[k]) return false;
    if (vals_[k] == 0.0f) return false;
  }
  return true;
}

DenseVector SparseVector::toDense() const {
  DenseVector dense(size_);
  for (std::size_t k = 0; k < indices_.size(); ++k) {
    dense.at(indices_[k]) = vals_[k];
  }
  return dense;
}

Value SparseVector::at(Index i) const {
  auto it = std::lower_bound(indices_.begin(), indices_.end(), i);
  if (it == indices_.end() || *it != i) return 0.0f;
  return vals_[static_cast<std::size_t>(it - indices_.begin())];
}

}  // namespace hht::sparse
