#include "sparse/reference.h"

#include <stdexcept>

namespace hht::sparse {

DenseVector matVecDense(const DenseMatrix& m, const DenseVector& v) {
  DenseVector y(m.numRows());
  for (Index r = 0; r < m.numRows(); ++r) {
    Value s = 0.0f;
    for (Index c = 0; c < m.numCols(); ++c) s += m.at(r, c) * v.at(c);
    y.at(r) = s;
  }
  return y;
}

DenseVector spmvCsr(const CsrMatrix& m, const DenseVector& v) {
  DenseVector y(m.numRows());
  for (Index r = 0; r < m.numRows(); ++r) {
    Value s = 0.0f;
    const auto cols = m.rowCols(r);
    const auto vals = m.rowVals(r);
    for (std::size_t k = 0; k < cols.size(); ++k) s += vals[k] * v.at(cols[k]);
    y.at(r) = s;
  }
  return y;
}

DenseVector spmspvMerge(const CsrMatrix& m, const SparseVector& v) {
  DenseVector y(m.numRows());
  for (Index r = 0; r < m.numRows(); ++r) {
    Value s = 0.0f;
    for (const AlignedPair& p : intersectRow(m, r, v)) s += p.m_val * p.v_val;
    y.at(r) = s;
  }
  return y;
}

DenseVector spmspvValueStream(const CsrMatrix& m, const SparseVector& v) {
  DenseVector y(m.numRows());
  for (Index r = 0; r < m.numRows(); ++r) {
    Value s = 0.0f;
    const auto vals = m.rowVals(r);
    const std::vector<Value> stream = valueStreamRow(m, r, v);
    for (std::size_t k = 0; k < vals.size(); ++k) s += vals[k] * stream[k];
    y.at(r) = s;
  }
  return y;
}

DenseMatrix spmmCsr(const CsrMatrix& m, const DenseMatrix& b) {
  if (b.numRows() != m.numCols()) {
    throw std::invalid_argument("spmmCsr: B rows != M cols");
  }
  DenseMatrix y(m.numRows(), b.numCols());
  for (Index j = 0; j < b.numCols(); ++j) {
    DenseVector column(b.numRows());
    for (Index i = 0; i < b.numRows(); ++i) column.at(i) = b.at(i, j);
    const DenseVector yj = spmvCsr(m, column);
    for (Index i = 0; i < m.numRows(); ++i) y.at(i, j) = yj.at(i);
  }
  return y;
}

std::vector<AlignedPair> intersectRow(const CsrMatrix& m, Index row,
                                      const SparseVector& v) {
  std::vector<AlignedPair> pairs;
  const auto cols = m.rowCols(row);
  const auto vals = m.rowVals(row);
  const auto& vidx = v.indices();
  const auto& vvals = v.vals();
  std::size_t a = 0;
  std::size_t b = 0;
  while (a < cols.size() && b < vidx.size()) {
    if (cols[a] == vidx[b]) {
      pairs.push_back({vals[a], vvals[b]});
      ++a;
      ++b;
    } else if (cols[a] < vidx[b]) {
      ++a;
    } else {
      ++b;
    }
  }
  return pairs;
}

std::vector<Value> valueStreamRow(const CsrMatrix& m, Index row,
                                  const SparseVector& v) {
  const auto cols = m.rowCols(row);
  const auto& vidx = v.indices();
  const auto& vvals = v.vals();
  std::vector<Value> stream(cols.size(), 0.0f);
  std::size_t b = 0;
  for (std::size_t a = 0; a < cols.size(); ++a) {
    while (b < vidx.size() && vidx[b] < cols[a]) ++b;
    if (b < vidx.size() && vidx[b] == cols[a]) stream[a] = vvals[b];
  }
  return stream;
}

}  // namespace hht::sparse
