#pragma once

#include <cstdint>
#include <vector>

#include "sparse/dense.h"

namespace hht::sparse {

/// Bit-vector sparse matrix format (Fig. 1's right-hand representation,
/// used by SCNN-style accelerators [5]).
///
/// One bit per dense position, row-major: bit set => the next value in the
/// packed `vals` stream belongs to that position. Rank (popcount) over the
/// bitmap recovers the value index for any coordinate.
class BitVectorMatrix {
 public:
  BitVectorMatrix() = default;

  static BitVectorMatrix fromDense(const DenseMatrix& dense);

  Index numRows() const { return n_rows_; }
  Index numCols() const { return n_cols_; }
  std::size_t nnz() const { return vals_.size(); }

  bool bit(Index r, Index c) const {
    const std::size_t pos = static_cast<std::size_t>(r) * n_cols_ + c;
    return (words_[pos >> 6] >> (pos & 63)) & 1u;
  }

  /// Number of set bits strictly before row-major position (r, c) —
  /// the packed-value index of coordinate (r, c) when its bit is set.
  std::size_t rank(Index r, Index c) const;

  Value at(Index r, Index c) const {
    return bit(r, c) ? vals_[rank(r, c)] : 0.0f;
  }

  const std::vector<std::uint64_t>& words() const { return words_; }
  const std::vector<Value>& vals() const { return vals_; }

  /// Storage footprint in bytes (bitmap words + packed values); compared
  /// against CSR in the format-comparison example.
  std::size_t storageBytes() const {
    return words_.size() * sizeof(std::uint64_t) + vals_.size() * sizeof(Value);
  }

  bool validate() const;
  DenseMatrix toDense() const;

  bool operator==(const BitVectorMatrix&) const = default;

 private:
  Index n_rows_ = 0;
  Index n_cols_ = 0;
  std::vector<std::uint64_t> words_;
  std::vector<Value> vals_;
};

}  // namespace hht::sparse
