#include "sparse/bcsr.h"

namespace hht::sparse {

BcsrMatrix BcsrMatrix::fromDense(const DenseMatrix& dense, Index block_rows,
                                 Index block_cols) {
  BcsrMatrix m;
  m.n_rows_ = dense.numRows();
  m.n_cols_ = dense.numCols();
  m.block_rows_ = block_rows;
  m.block_cols_ = block_cols;
  const Index brows = (dense.numRows() + block_rows - 1) / block_rows;
  const Index bcols = (dense.numCols() + block_cols - 1) / block_cols;
  m.block_row_ptr_.assign(brows + 1, 0);

  for (Index br = 0; br < brows; ++br) {
    for (Index bc = 0; bc < bcols; ++bc) {
      bool any = false;
      for (Index i = 0; i < block_rows && !any; ++i) {
        for (Index j = 0; j < block_cols && !any; ++j) {
          const Index r = br * block_rows + i;
          const Index c = bc * block_cols + j;
          any = r < m.n_rows_ && c < m.n_cols_ && dense.at(r, c) != 0.0f;
        }
      }
      if (!any) continue;
      m.block_cols_idx_.push_back(bc);
      for (Index i = 0; i < block_rows; ++i) {
        for (Index j = 0; j < block_cols; ++j) {
          const Index r = br * block_rows + i;
          const Index c = bc * block_cols + j;
          m.vals_.push_back((r < m.n_rows_ && c < m.n_cols_) ? dense.at(r, c)
                                                             : 0.0f);
        }
      }
    }
    m.block_row_ptr_[br + 1] = static_cast<Index>(m.block_cols_idx_.size());
  }
  return m;
}

std::size_t BcsrMatrix::nnz() const {
  std::size_t count = 0;
  for (Value v : vals_) count += (v != 0.0f);
  return count;
}

bool BcsrMatrix::validate() const {
  const Index brows = block_rows_ == 0
                          ? 0
                          : (n_rows_ + block_rows_ - 1) / block_rows_;
  const Index bcols = block_cols_ == 0
                          ? 0
                          : (n_cols_ + block_cols_ - 1) / block_cols_;
  if (block_row_ptr_.size() != static_cast<std::size_t>(brows) + 1) return false;
  if (block_row_ptr_.front() != 0) return false;
  if (block_row_ptr_.back() != block_cols_idx_.size()) return false;
  const std::size_t block_size =
      static_cast<std::size_t>(block_rows_) * block_cols_;
  if (vals_.size() != block_cols_idx_.size() * block_size) return false;
  for (Index br = 0; br < brows; ++br) {
    if (block_row_ptr_[br] > block_row_ptr_[br + 1]) return false;
    for (Index k = block_row_ptr_[br]; k < block_row_ptr_[br + 1]; ++k) {
      if (block_cols_idx_[k] >= bcols) return false;
      if (k > block_row_ptr_[br] && block_cols_idx_[k - 1] >= block_cols_idx_[k]) {
        return false;
      }
    }
  }
  return true;
}

DenseMatrix BcsrMatrix::toDense() const {
  DenseMatrix dense(n_rows_, n_cols_);
  const Index brows =
      block_rows_ == 0 ? 0 : (n_rows_ + block_rows_ - 1) / block_rows_;
  const std::size_t block_size =
      static_cast<std::size_t>(block_rows_) * block_cols_;
  for (Index br = 0; br < brows; ++br) {
    for (Index k = block_row_ptr_[br]; k < block_row_ptr_[br + 1]; ++k) {
      const Index bc = block_cols_idx_[k];
      const Value* block = vals_.data() + static_cast<std::size_t>(k) * block_size;
      for (Index i = 0; i < block_rows_; ++i) {
        for (Index j = 0; j < block_cols_; ++j) {
          const Index r = br * block_rows_ + i;
          const Index c = bc * block_cols_ + j;
          if (r < n_rows_ && c < n_cols_) {
            dense.at(r, c) = block[static_cast<std::size_t>(i) * block_cols_ + j];
          }
        }
      }
    }
  }
  return dense;
}

double BcsrMatrix::fillWaste() const {
  if (vals_.empty()) return 0.0;
  return 1.0 - static_cast<double>(nnz()) / static_cast<double>(vals_.size());
}

}  // namespace hht::sparse
