#pragma once

#include <vector>

#include "sparse/dense.h"

namespace hht::sparse {

/// Run-length encoded sparse matrix (§1's RLE variant [5]).
///
/// Each non-zero is stored as (zero_run, value): the number of zeros that
/// precede it in row-major order since the previous non-zero. Trailing
/// zeros are implied by the dense dimensions. This is the encoding used by
/// compressed-weight DNN accelerators where runs are short and bounded.
class RleMatrix {
 public:
  struct Run {
    Index zeros_before = 0;  ///< zeros since the previous stored value
    Value value = 0.0f;

    friend bool operator==(const Run&, const Run&) = default;
  };

  RleMatrix() = default;

  static RleMatrix fromDense(const DenseMatrix& dense);

  Index numRows() const { return n_rows_; }
  Index numCols() const { return n_cols_; }
  std::size_t nnz() const { return runs_.size(); }
  const std::vector<Run>& runs() const { return runs_; }

  /// Total implied positions must not exceed the dense size, and stored
  /// values must be non-zero.
  bool validate() const;

  DenseMatrix toDense() const;

  std::size_t storageBytes() const {
    return runs_.size() * (sizeof(Index) + sizeof(Value));
  }

  bool operator==(const RleMatrix&) const = default;

 private:
  Index n_rows_ = 0;
  Index n_cols_ = 0;
  std::vector<Run> runs_;
};

}  // namespace hht::sparse
