#pragma once

#include <cstdint>
#include <vector>

#include "sparse/dense.h"

namespace hht::sparse {

/// DIA (diagonal) format: values stored per occupied diagonal. Offsets are
/// column - row (negative = below the main diagonal). Natural for stencil
/// matrices from discretised PDEs (§1's ODE/PDE solvers) where only a few
/// diagonals are occupied.
///
/// `data` is diag-major: diagonal d's entry for row r lives at
/// data[d * n_rows + r]; positions falling outside the matrix hold 0.
class DiaMatrix {
 public:
  DiaMatrix() = default;

  static DiaMatrix fromDense(const DenseMatrix& dense);

  Index numRows() const { return n_rows_; }
  Index numCols() const { return n_cols_; }
  std::size_t numDiagonals() const { return offsets_.size(); }
  std::size_t nnz() const;

  const std::vector<std::int32_t>& offsets() const { return offsets_; }
  const std::vector<Value>& data() const { return data_; }

  Value at(Index r, Index c) const;

  /// Offsets strictly ascending and in range; out-of-matrix slots zero;
  /// no entirely-zero stored diagonal.
  bool validate() const;

  DenseMatrix toDense() const;

  std::size_t storageBytes() const {
    return offsets_.size() * sizeof(std::int32_t) + data_.size() * sizeof(Value);
  }

  bool operator==(const DiaMatrix&) const = default;

 private:
  Index n_rows_ = 0;
  Index n_cols_ = 0;
  std::vector<std::int32_t> offsets_;
  std::vector<Value> data_;
};

}  // namespace hht::sparse
