#include "sparse/matrix_market.h"

#include <cmath>
#include <cstdint>
#include <fstream>
#include <limits>
#include <sstream>

namespace hht::sparse {

namespace {

std::string lower(std::string s) {
  for (char& c : s) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return s;
}

/// Reject trailing non-whitespace after the expected fields of a line.
bool hasTrailingGarbage(std::istringstream& parsed) {
  std::string rest;
  return static_cast<bool>(parsed >> rest);
}

}  // namespace

CooMatrix readMatrixMarket(std::istream& in) {
  std::string line;
  if (!std::getline(in, line)) {
    throw MatrixMarketError("empty Matrix Market stream");
  }
  std::istringstream header(line);
  std::string banner, object, format, field, symmetry;
  header >> banner >> object >> format >> field >> symmetry;
  if (banner != "%%MatrixMarket") {
    throw MatrixMarketError("missing %%MatrixMarket banner");
  }
  object = lower(object);
  format = lower(format);
  field = lower(field);
  symmetry = lower(symmetry);
  if (object != "matrix" || format != "coordinate") {
    throw MatrixMarketError("only 'matrix coordinate' files are supported");
  }
  const bool pattern = field == "pattern";
  if (!pattern && field != "real" && field != "integer") {
    throw MatrixMarketError("unsupported field type: " + field);
  }
  const bool symmetric = symmetry == "symmetric";
  if (!symmetric && symmetry != "general") {
    throw MatrixMarketError("unsupported symmetry: " + symmetry);
  }

  // Skip comments, then read the size line.
  bool have_size_line = false;
  while (std::getline(in, line)) {
    if (!line.empty() && line[0] != '%') {
      have_size_line = true;
      break;
    }
  }
  if (!have_size_line) {
    throw MatrixMarketError("truncated file: no size line after the header");
  }
  std::istringstream size_line(line);
  long long n_rows = 0, n_cols = 0, n_entries = 0;
  if (!(size_line >> n_rows >> n_cols >> n_entries) || n_rows < 0 ||
      n_cols < 0 || n_entries < 0 || hasTrailingGarbage(size_line)) {
    throw MatrixMarketError("malformed size line: " + line);
  }
  // Dimensions must fit the simulator's 32-bit Index; an overflowing header
  // would otherwise wrap silently in the Index casts below.
  constexpr long long kMaxDim = std::numeric_limits<Index>::max();
  if (n_rows > kMaxDim || n_cols > kMaxDim) {
    throw MatrixMarketError("dimensions overflow 32-bit Index: " + line);
  }
  // A coordinate file cannot hold more entries than cells; a header
  // claiming otherwise is corrupt (and would make the reader loop try to
  // consume an absurd number of lines from a truncated body).
  const unsigned long long cells = static_cast<unsigned long long>(n_rows) *
                                   static_cast<unsigned long long>(n_cols);
  if (static_cast<unsigned long long>(n_entries) > cells) {
    throw MatrixMarketError("entry count " + std::to_string(n_entries) +
                            " exceeds " + std::to_string(n_rows) + "x" +
                            std::to_string(n_cols) + " cells");
  }

  CooMatrix coo(static_cast<Index>(n_rows), static_cast<Index>(n_cols));
  for (long long e = 0; e < n_entries; ++e) {
    if (!std::getline(in, line)) {
      throw MatrixMarketError("unexpected end of file in entry list");
    }
    if (line.empty() || line[0] == '%') {
      --e;  // tolerate blank/comment lines between entries
      continue;
    }
    std::istringstream entry(line);
    long long r = 0, c = 0;
    double v = 1.0;
    if (!(entry >> r >> c)) {
      throw MatrixMarketError("malformed entry: " + line);
    }
    if (!pattern && !(entry >> v)) {
      throw MatrixMarketError("entry missing value: " + line);
    }
    if (hasTrailingGarbage(entry)) {
      throw MatrixMarketError("trailing garbage after entry: " + line);
    }
    if (r < 1 || r > n_rows || c < 1 || c > n_cols) {
      throw MatrixMarketError("entry out of bounds: " + line);
    }
    if (!std::isfinite(v)) {
      throw MatrixMarketError("non-finite value in entry: " + line);
    }
    const Index ri = static_cast<Index>(r - 1);
    const Index ci = static_cast<Index>(c - 1);
    coo.add(ri, ci, static_cast<Value>(v));
    if (symmetric && ri != ci) coo.add(ci, ri, static_cast<Value>(v));
  }
  return coo;
}

CooMatrix readMatrixMarketFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw MatrixMarketError("cannot open " + path);
  return readMatrixMarket(in);
}

void writeMatrixMarket(std::ostream& out, const CooMatrix& coo) {
  CooMatrix canonical = coo;
  canonical.canonicalize();
  out << "%%MatrixMarket matrix coordinate real general\n";
  out << "% written by hht_repro sparse library\n";
  out << canonical.numRows() << ' ' << canonical.numCols() << ' '
      << canonical.nnz() << '\n';
  for (const Triplet& t : canonical.entries()) {
    out << (t.row + 1) << ' ' << (t.col + 1) << ' ' << t.value << '\n';
  }
}

void writeMatrixMarketFile(const std::string& path, const CooMatrix& coo) {
  std::ofstream out(path);
  if (!out) throw MatrixMarketError("cannot open " + path + " for writing");
  writeMatrixMarket(out, coo);
}

}  // namespace hht::sparse
