#pragma once

#include <vector>

#include "sparse/dense.h"

namespace hht::sparse {

/// One non-zero entry in coordinate (triplet) form.
struct Triplet {
  Index row = 0;
  Index col = 0;
  Value value = 0.0f;

  friend bool operator==(const Triplet&, const Triplet&) = default;
};

/// Coordinate-list (COO) sparse matrix.
///
/// COO is the interchange format: every other compressed representation
/// converts through it. Entries may be held unsorted; `canonicalize()`
/// sorts row-major and sums duplicates, which is the normal form the
/// conversions require.
class CooMatrix {
 public:
  CooMatrix() = default;
  CooMatrix(Index n_rows, Index n_cols) : n_rows_(n_rows), n_cols_(n_cols) {}
  CooMatrix(Index n_rows, Index n_cols, std::vector<Triplet> entries)
      : n_rows_(n_rows), n_cols_(n_cols), entries_(std::move(entries)) {}

  static CooMatrix fromDense(const DenseMatrix& dense);

  Index numRows() const { return n_rows_; }
  Index numCols() const { return n_cols_; }
  std::size_t nnz() const { return entries_.size(); }

  /// Append one entry. Out-of-range coordinates are a programming error
  /// caught by validate(); duplicates are legal until canonicalize().
  void add(Index row, Index col, Value value) {
    entries_.push_back({row, col, value});
  }

  const std::vector<Triplet>& entries() const { return entries_; }

  /// Sort row-major (row, then col), merge duplicate coordinates by summing
  /// their values, and drop entries whose (possibly summed) value is zero.
  void canonicalize();

  /// True when entries are sorted row-major with no duplicate coordinates.
  bool isCanonical() const;

  /// All coordinates within bounds?
  bool validate() const;

  DenseMatrix toDense() const;

 private:
  Index n_rows_ = 0;
  Index n_cols_ = 0;
  std::vector<Triplet> entries_;
};

}  // namespace hht::sparse
