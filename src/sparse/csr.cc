#include "sparse/csr.h"

#include <algorithm>

namespace hht::sparse {

CsrMatrix CsrMatrix::fromDense(const DenseMatrix& dense) {
  std::vector<Index> row_ptr(dense.numRows() + 1, 0);
  std::vector<Index> cols;
  std::vector<Value> vals;
  for (Index r = 0; r < dense.numRows(); ++r) {
    for (Index c = 0; c < dense.numCols(); ++c) {
      if (Value v = dense.at(r, c); v != 0.0f) {
        cols.push_back(c);
        vals.push_back(v);
      }
    }
    row_ptr[r + 1] = static_cast<Index>(cols.size());
  }
  return CsrMatrix(dense.numRows(), dense.numCols(), std::move(row_ptr),
                   std::move(cols), std::move(vals));
}

CsrMatrix CsrMatrix::fromCoo(CooMatrix coo) {
  coo.canonicalize();
  std::vector<Index> row_ptr(coo.numRows() + 1, 0);
  std::vector<Index> cols;
  std::vector<Value> vals;
  cols.reserve(coo.nnz());
  vals.reserve(coo.nnz());
  for (const Triplet& t : coo.entries()) {
    ++row_ptr[t.row + 1];
    cols.push_back(t.col);
    vals.push_back(t.value);
  }
  for (Index r = 0; r < coo.numRows(); ++r) row_ptr[r + 1] += row_ptr[r];
  return CsrMatrix(coo.numRows(), coo.numCols(), std::move(row_ptr),
                   std::move(cols), std::move(vals));
}

bool CsrMatrix::validate() const {
  if (row_ptr_.size() != static_cast<std::size_t>(n_rows_) + 1) return false;
  if (row_ptr_.front() != 0) return false;
  if (row_ptr_.back() != vals_.size()) return false;
  if (cols_.size() != vals_.size()) return false;
  for (Index r = 0; r < n_rows_; ++r) {
    if (row_ptr_[r] > row_ptr_[r + 1]) return false;
    for (Index k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      if (cols_[k] >= n_cols_) return false;
      if (k > row_ptr_[r] && cols_[k - 1] >= cols_[k]) return false;
    }
  }
  return true;
}

DenseMatrix CsrMatrix::toDense() const {
  DenseMatrix dense(n_rows_, n_cols_);
  for (Index r = 0; r < n_rows_; ++r) {
    for (Index k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      dense.at(r, cols_[k]) += vals_[k];
    }
  }
  return dense;
}

CooMatrix CsrMatrix::toCoo() const {
  CooMatrix coo(n_rows_, n_cols_);
  for (Index r = 0; r < n_rows_; ++r) {
    for (Index k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      coo.add(r, cols_[k], vals_[k]);
    }
  }
  return coo;
}

Index CsrMatrix::maxRowNnz() const {
  Index best = 0;
  for (Index r = 0; r < n_rows_; ++r) best = std::max(best, rowNnz(r));
  return best;
}

double CsrMatrix::avgRowNnz() const {
  return n_rows_ == 0 ? 0.0
                      : static_cast<double>(nnz()) / static_cast<double>(n_rows_);
}

double CsrMatrix::sparsity() const {
  const double total = static_cast<double>(n_rows_) * n_cols_;
  return total == 0.0 ? 0.0 : 1.0 - static_cast<double>(nnz()) / total;
}

CsrMatrix CsrMatrix::extractTile(Index r0, Index c0, Index h, Index w) const {
  std::vector<Index> row_ptr(h + 1, 0);
  std::vector<Index> cols;
  std::vector<Value> vals;
  for (Index r = 0; r < h; ++r) {
    if (r0 + r < n_rows_) {
      for (Index k = row_ptr_[r0 + r]; k < row_ptr_[r0 + r + 1]; ++k) {
        const Index c = cols_[k];
        if (c >= c0 && c < c0 + w) {
          cols.push_back(c - c0);
          vals.push_back(vals_[k]);
        }
      }
    }
    row_ptr[r + 1] = static_cast<Index>(cols.size());
  }
  return CsrMatrix(h, w, std::move(row_ptr), std::move(cols), std::move(vals));
}

}  // namespace hht::sparse
