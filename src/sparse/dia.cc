#include "sparse/dia.h"

namespace hht::sparse {

DiaMatrix DiaMatrix::fromDense(const DenseMatrix& dense) {
  DiaMatrix m;
  m.n_rows_ = dense.numRows();
  m.n_cols_ = dense.numCols();
  // Pass 1: find occupied diagonals (ascending offset order).
  const std::int64_t lo = -static_cast<std::int64_t>(m.n_rows_) + 1;
  const std::int64_t hi = static_cast<std::int64_t>(m.n_cols_) - 1;
  for (std::int64_t off = lo; off <= hi; ++off) {
    bool any = false;
    for (Index r = 0; r < m.n_rows_ && !any; ++r) {
      const std::int64_t c = static_cast<std::int64_t>(r) + off;
      any = c >= 0 && c < m.n_cols_ &&
            dense.at(r, static_cast<Index>(c)) != 0.0f;
    }
    if (any) m.offsets_.push_back(static_cast<std::int32_t>(off));
  }
  // Pass 2: fill diag-major data.
  m.data_.assign(m.offsets_.size() * m.n_rows_, 0.0f);
  for (std::size_t d = 0; d < m.offsets_.size(); ++d) {
    for (Index r = 0; r < m.n_rows_; ++r) {
      const std::int64_t c = static_cast<std::int64_t>(r) + m.offsets_[d];
      if (c >= 0 && c < m.n_cols_) {
        m.data_[d * m.n_rows_ + r] = dense.at(r, static_cast<Index>(c));
      }
    }
  }
  return m;
}

std::size_t DiaMatrix::nnz() const {
  std::size_t count = 0;
  for (Value v : data_) count += (v != 0.0f);
  return count;
}

Value DiaMatrix::at(Index r, Index c) const {
  const std::int32_t off =
      static_cast<std::int32_t>(c) - static_cast<std::int32_t>(r);
  for (std::size_t d = 0; d < offsets_.size(); ++d) {
    if (offsets_[d] == off) return data_[d * n_rows_ + r];
  }
  return 0.0f;
}

bool DiaMatrix::validate() const {
  if (data_.size() != offsets_.size() * n_rows_) return false;
  for (std::size_t d = 0; d < offsets_.size(); ++d) {
    if (d > 0 && offsets_[d - 1] >= offsets_[d]) return false;
    if (offsets_[d] <= -static_cast<std::int64_t>(n_rows_) ||
        offsets_[d] >= static_cast<std::int64_t>(n_cols_)) {
      return false;
    }
    bool any = false;
    for (Index r = 0; r < n_rows_; ++r) {
      const std::int64_t c = static_cast<std::int64_t>(r) + offsets_[d];
      const Value v = data_[d * n_rows_ + r];
      const bool inside = c >= 0 && c < n_cols_;
      if (!inside && v != 0.0f) return false;  // out-of-matrix slot non-zero
      any |= (v != 0.0f);
    }
    if (!any) return false;  // stored diagonal must carry something
  }
  return true;
}

DenseMatrix DiaMatrix::toDense() const {
  DenseMatrix dense(n_rows_, n_cols_);
  for (std::size_t d = 0; d < offsets_.size(); ++d) {
    for (Index r = 0; r < n_rows_; ++r) {
      const std::int64_t c = static_cast<std::int64_t>(r) + offsets_[d];
      if (c >= 0 && c < n_cols_) {
        dense.at(r, static_cast<Index>(c)) = data_[d * n_rows_ + r];
      }
    }
  }
  return dense;
}

}  // namespace hht::sparse
