#include "sparse/convert.h"

namespace hht::sparse {

CscMatrix csrToCsc(const CsrMatrix& csr) { return CscMatrix::fromCoo(csr.toCoo()); }

CsrMatrix cscToCsr(const CscMatrix& csc) { return CsrMatrix::fromCoo(csc.toCoo()); }

CsrMatrix transpose(const CsrMatrix& csr) {
  // A CSR matrix reinterpreted with rows<->cols swapped *is* the CSC form of
  // the transpose; convert through CSC to keep per-row column ordering.
  const CscMatrix csc = csrToCsc(csr);
  return CsrMatrix(csr.numCols(), csr.numRows(), csc.colPtr(), csc.rows(),
                   csc.vals());
}

BitVectorMatrix csrToBitVector(const CsrMatrix& csr) {
  return BitVectorMatrix::fromDense(csr.toDense());
}

CsrMatrix bitVectorToCsr(const BitVectorMatrix& bv) {
  return CsrMatrix::fromDense(bv.toDense());
}

RleMatrix csrToRle(const CsrMatrix& csr) {
  return RleMatrix::fromDense(csr.toDense());
}

CsrMatrix rleToCsr(const RleMatrix& rle) {
  return CsrMatrix::fromDense(rle.toDense());
}

HierBitmapMatrix csrToHierBitmap(const CsrMatrix& csr) {
  return HierBitmapMatrix::fromDense(csr.toDense());
}

CsrMatrix hierBitmapToCsr(const HierBitmapMatrix& hb) {
  return CsrMatrix::fromDense(hb.toDense());
}

BcsrMatrix csrToBcsr(const CsrMatrix& csr, Index block_rows, Index block_cols) {
  return BcsrMatrix::fromDense(csr.toDense(), block_rows, block_cols);
}

CsrMatrix bcsrToCsr(const BcsrMatrix& bcsr) {
  return CsrMatrix::fromDense(bcsr.toDense());
}

EllMatrix csrToEll(const CsrMatrix& csr) {
  return EllMatrix::fromDense(csr.toDense());
}

CsrMatrix ellToCsr(const EllMatrix& ell) {
  return CsrMatrix::fromDense(ell.toDense());
}

DiaMatrix csrToDia(const CsrMatrix& csr) {
  return DiaMatrix::fromDense(csr.toDense());
}

CsrMatrix diaToCsr(const DiaMatrix& dia) {
  return CsrMatrix::fromDense(dia.toDense());
}

std::size_t csrStorageBytes(const CsrMatrix& csr) {
  return csr.rowPtr().size() * sizeof(Index) + csr.cols().size() * sizeof(Index) +
         csr.vals().size() * sizeof(Value);
}

}  // namespace hht::sparse
