#include "kernels/firmware.h"

namespace hht::kernels {

using namespace isa::reg;
using isa::Label;
using isa::Program;
using isa::ProgramBuilder;
using core::mmr::kFwPushRowEnd;
using core::mmr::kFwPushValue;
using core::mmr::kFwPushValueEor;
using core::mmr::kFwSpace;

namespace {

std::int32_t bits(sim::Addr a) { return static_cast<std::int32_t>(a); }

/// space-read + push of the value bits in `src` through offset `port`.
void push(ProgramBuilder& b, isa::Reg src, sim::Addr port) {
  b.lw(s5, s11, static_cast<std::int32_t>(kFwSpace));  // blocking flow control
  b.sw(src, s11, static_cast<std::int32_t>(port));
}

}  // namespace

Program firmwareSpmvGather(const SpmvLayout& m, sim::Addr mmio_base) {
  ProgramBuilder b("fw_spmv_gather");
  b.li(a0, bits(m.rows)).li(a1, bits(m.cols)).li(a3, bits(m.v));
  b.li(a5, static_cast<std::int32_t>(m.num_rows));
  b.li(s11, bits(mmio_base));

  Label row_loop = b.newLabel(), elem_loop = b.newLabel();
  Label last = b.newLabel(), row_next = b.newLabel(), done = b.newLabel();

  b.lw(t3, a0, 0);
  b.addi(t2, a0, 4);
  b.li(t0, 0);

  b.bind(row_loop);
  b.bge(t0, a5, done);
  b.lw(t4, t2, 0);
  b.sub(t5, t4, t3);
  b.beqz(t5, row_next);

  b.bind(elem_loop);
  b.lw(t6, a1, 0);       // col index
  b.slli(t6, t6, 2);
  b.add(t6, t6, a3);
  b.lw(s0, t6, 0);       // v[col] raw bits
  b.addi(a1, a1, 4);
  b.addi(t5, t5, -1);
  b.beqz(t5, last);
  push(b, s0, kFwPushValue);
  b.j(elem_loop);

  b.bind(last);
  push(b, s0, kFwPushValueEor);  // row-aligned publish

  b.bind(row_next);
  b.mv(t3, t4);
  b.addi(t2, t2, 4);
  b.addi(t0, t0, 1);
  b.j(row_loop);

  b.bind(done);
  b.ecall();
  return b.build();
}

Program firmwareSpmspvV1(const SpmspvLayout& m, sim::Addr mmio_base) {
  ProgramBuilder b("fw_spmspv_v1");
  b.li(a0, bits(m.rows)).li(a1, bits(m.cols)).li(a2, bits(m.vals));
  b.li(a3, bits(m.vidx)).li(a4, bits(m.vvals));
  b.li(a6, static_cast<std::int32_t>(m.num_rows));
  b.li(a7, static_cast<std::int32_t>(m.v_nnz));
  b.li(s11, bits(mmio_base));

  Label row_loop = b.newLabel(), merge_loop = b.newLabel();
  Label adv_a = b.newLabel(), match = b.newLabel();
  Label row_done = b.newLabel(), done = b.newLabel();

  b.lw(t3, a0, 0);
  b.addi(t2, a0, 4);
  b.li(t0, 0);

  b.bind(row_loop);
  b.bge(t0, a6, done);
  b.lw(t4, t2, 0);
  b.sub(t5, t4, t3);
  b.slli(s2, t3, 2);
  b.add(s0, a1, s2);     // cols cursor
  b.add(s1, a2, s2);     // vals cursor
  b.mv(s2, a3);          // vidx cursor (rescans per row)
  b.mv(s3, a4);          // vvals cursor
  b.mv(s4, a7);          // vector nnz remaining

  b.bind(merge_loop);
  b.beqz(t5, row_done);
  b.beqz(s4, row_done);
  b.lw(t6, s0, 0);
  b.lw(t1, s2, 0);
  b.beq(t6, t1, match);
  b.blt(t6, t1, adv_a);
  b.addi(s2, s2, 4);
  b.addi(s3, s3, 4);
  b.addi(s4, s4, -1);
  b.j(merge_loop);

  b.bind(adv_a);
  b.addi(s0, s0, 4);
  b.addi(s1, s1, 4);
  b.addi(t5, t5, -1);
  b.j(merge_loop);

  b.bind(match);
  b.lw(s6, s1, 0);           // matrix value bits
  b.lw(s7, s3, 0);           // vector value bits
  push(b, s6, kFwPushValue);
  push(b, s7, kFwPushValue);
  b.addi(s0, s0, 4);
  b.addi(s1, s1, 4);
  b.addi(t5, t5, -1);
  b.addi(s2, s2, 4);
  b.addi(s3, s3, 4);
  b.addi(s4, s4, -1);
  b.j(merge_loop);

  b.bind(row_done);
  push(b, zero, kFwPushRowEnd);
  b.mv(t3, t4);
  b.addi(t2, t2, 4);
  b.addi(t0, t0, 1);
  b.j(row_loop);

  b.bind(done);
  b.ecall();
  return b.build();
}

Program firmwareSpmspvV2(const SpmspvLayout& m, sim::Addr mmio_base) {
  ProgramBuilder b("fw_spmspv_v2");
  b.li(a0, bits(m.rows)).li(a1, bits(m.cols));
  b.li(a3, bits(m.vidx)).li(a4, bits(m.vvals));
  b.li(a6, static_cast<std::int32_t>(m.num_rows));
  b.li(a7, static_cast<std::int32_t>(m.v_nnz));
  b.li(s11, bits(mmio_base));

  Label row_loop = b.newLabel(), col_loop = b.newLabel();
  Label scan_v = b.newLabel(), have_v = b.newLabel(), emit = b.newLabel();
  Label row_next = b.newLabel(), done = b.newLabel();

  b.lw(t3, a0, 0);
  b.addi(t2, a0, 4);
  b.li(t0, 0);

  b.bind(row_loop);
  b.bge(t0, a6, done);
  b.lw(t4, t2, 0);
  b.sub(t5, t4, t3);
  b.slli(s2, t3, 2);
  b.add(s0, a1, s2);     // cols cursor
  b.mv(s2, a3);          // vidx cursor
  b.mv(s3, a4);          // vvals cursor
  b.mv(s4, a7);          // vector nnz remaining
  b.beqz(t5, row_next);

  b.bind(col_loop);
  b.lw(t6, s0, 0);       // matrix col
  b.addi(s0, s0, 4);
  b.li(s6, 0);           // emitted value defaults to 0.0f bits

  b.bind(scan_v);        // advance the vector cursor to >= col
  b.beqz(s4, emit);
  b.lw(t1, s2, 0);
  b.bge(t1, t6, have_v);
  b.addi(s2, s2, 4);
  b.addi(s3, s3, 4);
  b.addi(s4, s4, -1);
  b.j(scan_v);

  b.bind(have_v);
  b.bne(t1, t6, emit);   // vidx > col: miss, keep zero
  b.lw(s6, s3, 0);       // match: vector value bits
  b.addi(s2, s2, 4);
  b.addi(s3, s3, 4);
  b.addi(s4, s4, -1);

  b.bind(emit);
  b.addi(t5, t5, -1);
  {
    Label not_last = b.newLabel(), next = b.newLabel();
    b.bnez(t5, not_last);
    push(b, s6, kFwPushValueEor);
    b.j(next);
    b.bind(not_last);
    push(b, s6, kFwPushValue);
    b.bind(next);
  }
  b.bnez(t5, col_loop);

  b.bind(row_next);
  b.mv(t3, t4);
  b.addi(t2, t2, 4);
  b.addi(t0, t0, 1);
  b.j(row_loop);

  b.bind(done);
  b.ecall();
  return b.build();
}

}  // namespace hht::kernels
