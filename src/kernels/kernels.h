#pragma once

#include "core/mmr.h"
#include "isa/program.h"
#include "sim/types.h"

namespace hht::kernels {

using sim::Addr;

/// Simulated-memory placement of the CSR operands for SpMV
/// (y = M * v, M in CSR, v dense). All addresses are simulated SRAM
/// addresses produced by the harness's Arena.
struct SpmvLayout {
  Addr rows = 0;   ///< CSR row pointers, num_rows+1 x u32
  Addr cols = 0;   ///< CSR column indices
  Addr vals = 0;   ///< CSR values (f32)
  Addr v = 0;      ///< dense vector (f32, num_cols)
  Addr y = 0;      ///< output (f32, num_rows)
  std::uint32_t num_rows = 0;
};

/// Placement for SpMSpV (y = M * v, v sparse: ascending indices + values).
struct SpmspvLayout {
  Addr rows = 0;
  Addr cols = 0;
  Addr vals = 0;
  Addr vidx = 0;   ///< sparse vector indices, v_nnz x u32
  Addr vvals = 0;  ///< sparse vector values, v_nnz x f32
  Addr y = 0;
  std::uint32_t num_rows = 0;
  std::uint32_t v_nnz = 0;
};

/// Placement for the SMASH-style hierarchical bitmap SpMV (§6 mode).
struct HierLayout {
  Addr l1 = 0;          ///< level-1 bitmap words
  Addr leaves = 0;      ///< leaf occupancy words (u64 as 2 x u32, LE)
  Addr packed_vals = 0; ///< matrix non-zero values in position order
  Addr v = 0;           ///< dense vector
  Addr y = 0;
  std::uint32_t num_rows = 0;
  std::uint32_t num_cols = 0;
};

/// One tile's contiguous row range of a CSR operand (multi-tile scale-out,
/// DESIGN.md §13). Shards partition [0, num_rows): row-disjoint shards give
/// each tile its own y slice, so "reduction" is just reading slices back in
/// tile order — bit-identical to the single-tile kernel by construction
/// (each y[i] is produced by exactly one tile running the same per-row
/// FMA sequence).
struct RowShard {
  std::uint32_t row_begin = 0;
  std::uint32_t row_end = 0;    ///< exclusive
  /// rowPtr[row_begin]: where this shard's slice of cols/vals starts. The
  /// engines index cols/vals by *absolute* rowPtr values, so only the CPU
  /// consumer's contiguous vals cursor needs it.
  std::uint32_t nnz_begin = 0;

  std::uint32_t rows() const { return row_end - row_begin; }
  bool empty() const { return row_end <= row_begin; }
};

// ----- SpMV (Fig. 4 / Fig. 8 / Fig. 9) -----

/// Algorithm 1 exactly: scalar CSR SpMV (the VL=1 baseline of Fig. 8).
isa::Program spmvScalarBaseline(const SpmvLayout& m);

/// Vectorized baseline: vle32 of cols/vals + vluxei32 indexed gather of v —
/// the paper's baseline "using the vector indexed-load instruction" (§5.4).
isa::Program spmvVectorBaseline(const SpmvLayout& m);

/// HHT-assisted scalar SpMV: gathers come from the FE's fixed buffer
/// address; the CPU keeps only vals loads + FMAs.
isa::Program spmvScalarHht(const SpmvLayout& m,
                           Addr mmio_base = core::kDefaultMmioBase);

/// HHT-assisted vector SpMV (the Fig. 4 configuration).
isa::Program spmvVectorHht(const SpmvLayout& m,
                           Addr mmio_base = core::kDefaultMmioBase);

/// Sharded HHT SpMV: the same kernels restricted to `shard`'s rows, for one
/// tile of a MultiTileSystem (pass the tile's own MMIO window base). An
/// empty shard builds a trivial ecall-only program that never starts the
/// tile's HHT. Program names encode the row range, so snapshots of
/// different shards never collide.
isa::Program spmvScalarHhtShard(const SpmvLayout& m, const RowShard& shard,
                                Addr mmio_base = core::kDefaultMmioBase);
isa::Program spmvVectorHhtShard(const SpmvLayout& m, const RowShard& shard,
                                Addr mmio_base = core::kDefaultMmioBase);

/// Chunk-queue HHT SpMV: instead of a fixed shard, the tile claims packed
/// (row_begin << 12 | row_count) chunks from the shared work-queue device by
/// loading `claim_addr` (its per-tile claim register,
/// MultiTileSystem::workQueueBase() + 4*tile). Per chunk the CPU re-points
/// M_Rows_Base / M_Num_Rows and re-pulses START (the SpMM re-configuration
/// idiom), then runs the same per-row consumer loop as the static kernels —
/// so each y[i] is still produced by exactly one tile with the single-tile
/// FMA order, and the concatenated output stays bit-identical regardless of
/// which tile claimed which chunk. A claim of 0 means the queue is drained
/// and the program halts. Program names encode the claim register, so the
/// per-tile programs never collide in snapshots.
isa::Program spmvScalarHhtChunkQueue(const SpmvLayout& m, Addr mmio_base,
                                     Addr claim_addr);
isa::Program spmvVectorHhtChunkQueue(const SpmvLayout& m, Addr mmio_base,
                                     Addr claim_addr);

// ----- SpMM (batched SpMV: DNN inference with batch > 1) -----

/// Placement for Y = M * B with B dense num_cols x k, stored column-major
/// (column j at b + j*num_cols*4); Y is num_rows x k column-major.
struct SpmmLayout {
  Addr rows = 0;
  Addr cols = 0;
  Addr vals = 0;
  Addr b = 0;
  Addr y = 0;
  std::uint32_t num_rows = 0;
  std::uint32_t num_cols = 0;
  std::uint32_t k = 0;
};

/// Column-by-column vector baseline (indexed gathers per column).
isa::Program spmmVectorBaseline(const SpmmLayout& m);

/// HHT-assisted SpMM: the CPU re-points V_Base and pulses START once per
/// B column — the tiling/reuse pattern §5.5 describes for large operands.
isa::Program spmmVectorHht(const SpmmLayout& m,
                           Addr mmio_base = core::kDefaultMmioBase);

// ----- SpMSpV (Fig. 5) -----

/// Scalar two-pointer merge baseline (per-row rescan of the vector
/// indices) — the "CPU performs both index computations and MACs" baseline.
isa::Program spmspvScalarBaseline(const SpmspvLayout& m);

/// Variant-1: HHT supplies aligned (m_val, v_val) pairs via the VALID
/// protocol; the CPU only multiply-accumulates.
isa::Program spmspvHhtV1(const SpmspvLayout& m,
                         Addr mmio_base = core::kDefaultMmioBase);

/// Variant-2, vectorized consumer: HHT streams v-or-zero per matrix NZ;
/// the CPU loads matrix values itself and vfmaccs against the stream.
isa::Program spmspvHhtV2(const SpmspvLayout& m,
                         Addr mmio_base = core::kDefaultMmioBase);

/// Variant-2 with a scalar consumer (used for the VL=1 sensitivity runs).
isa::Program spmspvHhtV2Scalar(const SpmspvLayout& m,
                               Addr mmio_base = core::kDefaultMmioBase);

/// Sharded SpMSpV variants (see spmvScalarHhtShard). Every tile rescans the
/// full sparse vector — exactly what the single-tile kernel does per row —
/// so shard results concatenate into the reference output bit-for-bit.
isa::Program spmspvHhtV1Shard(const SpmspvLayout& m, const RowShard& shard,
                              Addr mmio_base = core::kDefaultMmioBase);
isa::Program spmspvHhtV2Shard(const SpmspvLayout& m, const RowShard& shard,
                              Addr mmio_base = core::kDefaultMmioBase);

/// Chunk-queue SpMSpV variants (see spmvScalarHhtChunkQueue): the tile
/// claims row chunks from the shared work queue and reprograms the HHT per
/// chunk. Every chunk rescans the full sparse vector, exactly like the
/// static shard variants.
isa::Program spmspvHhtV1ChunkQueue(const SpmspvLayout& m, Addr mmio_base,
                                   Addr claim_addr);
isa::Program spmspvHhtV2ChunkQueue(const SpmspvLayout& m, Addr mmio_base,
                                   Addr claim_addr);

// ----- Hierarchical bitmap (§6, bench/abl_smash) -----

/// HHT walks the SMASH-style bitmaps and gathers v; the CPU streams the
/// packed matrix values and consumes via the VALID protocol.
isa::Program hierBitmapHht(const HierLayout& m,
                           Addr mmio_base = core::kDefaultMmioBase);

/// Same consumer over the one-level bit-vector format (Fig. 1): `leaves`
/// is the base of the full occupancy bitmap; `l1` is unused.
isa::Program flatBitmapHht(const HierLayout& m,
                           Addr mmio_base = core::kDefaultMmioBase);

}  // namespace hht::kernels
