#include "kernels/kernels.h"

#include <string>
#include <utility>

#include "core/config.h"

namespace hht::kernels {

using namespace isa::reg;
using isa::Label;
using isa::Program;
using isa::ProgramBuilder;
using core::mmr::kBufData;
using core::mmr::kElementSize;
using core::mmr::kL1Base;
using core::mmr::kLeavesBase;
using core::mmr::kMColsBase;
using core::mmr::kMNumRows;
using core::mmr::kMRowsBase;
using core::mmr::kMValsBase;
using core::mmr::kMode;
using core::mmr::kNumCols;
using core::mmr::kStart;
using core::mmr::kVBase;
using core::mmr::kVIdxBase;
using core::mmr::kVNnz;
using core::mmr::kVValsBase;
using core::mmr::kValid;

namespace {

std::int32_t bits(Addr a) { return static_cast<std::int32_t>(a); }

/// Write one configuration MMR: li scratch, value; sw scratch, off(base).
void writeMmr(ProgramBuilder& b, isa::Reg base, Addr offset, std::uint32_t value) {
  b.li(t1, static_cast<std::int32_t>(value));
  b.sw(t1, base, static_cast<std::int32_t>(offset));
}

/// "<base>_r<begin>_<end>": shard programs must hash differently per range
/// (snapshots record programs by identity).
std::string shardName(const char* base, const RowShard& s) {
  return std::string(base) + "_r" + std::to_string(s.row_begin) + "_" +
         std::to_string(s.row_end);
}

/// "<base>_cq<claim_addr>": chunk-queue programs differ only by their claim
/// register (and MMIO window), so the claim address is the per-tile identity.
std::string cqName(const char* base, Addr claim_addr) {
  return std::string(base) + "_cq" + std::to_string(claim_addr);
}

/// Claim one packed chunk from the work queue into `claim` and unpack it:
/// count <- low 12 bits (shift pair, not andi — the I-type immediate would
/// sign-extend 0xFFF), row_begin byte offset <- (claim >> 12) * 4. Falls
/// through on a grant; branches to `done` on the drained sentinel 0.
/// Clobbers t1. s6 must hold the claim register address.
void claimChunk(ProgramBuilder& b, isa::Reg claim, isa::Reg count,
                isa::Reg row_off, Label done) {
  b.lw(claim, s6, 0);        // stalls until the queue arbiter grants
  b.beqz(claim, done);       // 0 = drained
  b.slli(count, claim, 20);
  b.srli(count, count, 20);  // row_count
  b.srli(t1, claim, 12);
  b.slli(row_off, t1, 2);    // row_begin * 4
}

/// A tile whose shard is empty runs no kernel and never starts its HHT.
Program emptyShardProgram(const char* base, const RowShard& s) {
  ProgramBuilder b(shardName(base, s));
  b.ecall();
  return b.build();
}

/// View of the CSR operands restricted to a shard's rows. The engines
/// index cols AND vals by *absolute* rowPtr values (MergeEngine reads
/// m_vals_base + headGlobal()*4), so every base except the row-pointer
/// window and the y slice stays as loaded; only the CPU consumer's
/// contiguous vals cursor shifts, and it shifts separately (`cpu_vals`
/// parameters below), never through this view.
SpmvLayout shardView(const SpmvLayout& m, const RowShard& s) {
  SpmvLayout out = m;
  out.rows = m.rows + s.row_begin * 4;
  out.y = m.y + s.row_begin * 4;
  out.num_rows = s.rows();
  return out;
}

SpmspvLayout shardView(const SpmspvLayout& m, const RowShard& s) {
  SpmspvLayout out = m;
  out.rows = m.rows + s.row_begin * 4;
  out.y = m.y + s.row_begin * 4;
  out.num_rows = s.rows();
  return out;
}

}  // namespace

// ---------------------------------------------------------------------------
// SpMV
// ---------------------------------------------------------------------------

Program spmvScalarBaseline(const SpmvLayout& m) {
  ProgramBuilder b("spmv_scalar_baseline");
  b.li(a0, bits(m.rows)).li(a1, bits(m.cols)).li(a2, bits(m.vals));
  b.li(a3, bits(m.v)).li(a4, bits(m.y)).li(a5, static_cast<std::int32_t>(m.num_rows));
  b.fcvtSW(ft0, zero);  // 0.0f constant

  Label row_loop = b.newLabel(), row_done = b.newLabel();
  Label elem_loop = b.newLabel(), done = b.newLabel();

  b.lw(t3, a0, 0);      // rows[0]
  b.addi(t2, a0, 4);    // &rows[i+1]
  b.li(t0, 0);          // i

  b.bind(row_loop);
  b.bge(t0, a5, done);
  b.lw(t4, t2, 0);      // row_end
  b.sub(t5, t4, t3);    // nnz
  b.fsgnj(fs0, ft0, ft0);  // s = 0
  b.beqz(t5, row_done);

  b.bind(elem_loop);
  b.lw(t6, a1, 0);      // col index — the metadata access
  b.slli(t6, t6, 2);
  b.add(t6, t6, a3);
  b.flw(ft1, t6, 0);    // v[col] — the indirect access
  b.flw(ft2, a2, 0);    // matrix value
  b.fmadd(fs0, ft1, ft2, fs0);
  b.addi(a1, a1, 4);
  b.addi(a2, a2, 4);
  b.addi(t5, t5, -1);
  b.bnez(t5, elem_loop);

  b.bind(row_done);
  b.fsw(fs0, a4, 0);
  b.addi(a4, a4, 4);
  b.mv(t3, t4);
  b.addi(t2, t2, 4);
  b.addi(t0, t0, 1);
  b.j(row_loop);

  b.bind(done);
  b.ecall();
  return b.build();
}

Program spmvVectorBaseline(const SpmvLayout& m) {
  ProgramBuilder b("spmv_vector_baseline");
  b.li(a0, bits(m.rows)).li(a1, bits(m.cols)).li(a2, bits(m.vals));
  b.li(a3, bits(m.v)).li(a4, bits(m.y)).li(a5, static_cast<std::int32_t>(m.num_rows));
  b.fcvtSW(ft0, zero);
  b.li(s3, isa::kMaxVl * 8);  // large AVL -> vsetvli yields VLMAX

  Label row_loop = b.newLabel(), chunk_loop = b.newLabel();
  Label reduce = b.newLabel(), done = b.newLabel();

  b.lw(t3, a0, 0);
  b.addi(t2, a0, 4);
  b.li(t0, 0);

  b.bind(row_loop);
  b.bge(t0, a5, done);
  b.lw(t4, t2, 0);
  b.sub(t5, t4, t3);
  b.vsetvli(s4, s3);   // full width for the accumulator
  b.vmvVI(v0, 0);      // acc lanes = 0
  b.beqz(t5, reduce);

  b.bind(chunk_loop);
  b.vsetvli(t6, t5);
  b.vle32(v1, a1);        // column indices (metadata)
  b.vsllVI(v1, v1, 2);    // scale to byte offsets
  b.vluxei32(v2, a3, v1); // indexed gather of v — cache/prefetch-unfriendly
  b.vle32(v3, a2);        // matrix values
  b.vfmaccVV(v0, v2, v3);
  b.slli(s2, t6, 2);
  b.add(a1, a1, s2);
  b.add(a2, a2, s2);
  b.sub(t5, t5, t6);
  b.bnez(t5, chunk_loop);

  b.bind(reduce);
  b.vsetvli(s4, s3);
  b.vfmvSF(v4, ft0);       // ordered-sum seed = 0.0f
  b.vfredosum(v5, v0, v4);
  b.vfmvFS(fs0, v5);
  b.fsw(fs0, a4, 0);
  b.addi(a4, a4, 4);
  b.mv(t3, t4);
  b.addi(t2, t2, 4);
  b.addi(t0, t0, 1);
  b.j(row_loop);

  b.bind(done);
  b.ecall();
  return b.build();
}

namespace {

/// Program the SpMV-gather MMRs and pulse START (§3.1's configuration
/// sequence; START is written last).
void configureSpmvHht(ProgramBuilder& b, const SpmvLayout& m, Addr mmio_base) {
  b.li(s11, bits(mmio_base));
  writeMmr(b, s11, kMNumRows, m.num_rows);
  writeMmr(b, s11, kMRowsBase, m.rows);
  writeMmr(b, s11, kMColsBase, m.cols);
  writeMmr(b, s11, kVBase, m.v);
  writeMmr(b, s11, kElementSize, 4);
  writeMmr(b, s11, kMode, static_cast<std::uint32_t>(core::Mode::SpmvGather));
  writeMmr(b, s11, kStart, 1);
}

/// `cpu_vals` is the consumer's contiguous matrix-values cursor — m.vals
/// for the full kernel, m.vals + nnz_begin*4 for a shard (the MMR bases in
/// `m` stay absolute either way).
Program buildSpmvScalarHht(std::string name, const SpmvLayout& m,
                           Addr cpu_vals, Addr mmio_base) {
  ProgramBuilder b(std::move(name));
  b.li(a0, bits(m.rows)).li(a2, bits(cpu_vals));
  b.li(a4, bits(m.y)).li(a5, static_cast<std::int32_t>(m.num_rows));
  configureSpmvHht(b, m, mmio_base);
  b.fcvtSW(ft0, zero);

  Label row_loop = b.newLabel(), row_done = b.newLabel();
  Label elem_loop = b.newLabel(), done = b.newLabel();

  b.lw(t3, a0, 0);
  b.addi(t2, a0, 4);
  b.li(t0, 0);

  b.bind(row_loop);
  b.bge(t0, a5, done);
  b.lw(t4, t2, 0);
  b.sub(t5, t4, t3);
  b.fsgnj(fs0, ft0, ft0);
  b.beqz(t5, row_done);

  b.bind(elem_loop);
  b.flw(ft1, s11, static_cast<std::int32_t>(kBufData));  // gathered v[col]
  b.flw(ft2, a2, 0);
  b.fmadd(fs0, ft1, ft2, fs0);
  b.addi(a2, a2, 4);
  b.addi(t5, t5, -1);
  b.bnez(t5, elem_loop);

  b.bind(row_done);
  b.fsw(fs0, a4, 0);
  b.addi(a4, a4, 4);
  b.mv(t3, t4);
  b.addi(t2, t2, 4);
  b.addi(t0, t0, 1);
  b.j(row_loop);

  b.bind(done);
  b.ecall();
  return b.build();
}

Program buildSpmvVectorHht(std::string name, const SpmvLayout& m,
                           Addr cpu_vals, Addr mmio_base) {
  ProgramBuilder b(std::move(name));
  b.li(a0, bits(m.rows)).li(a2, bits(cpu_vals));
  b.li(a4, bits(m.y)).li(a5, static_cast<std::int32_t>(m.num_rows));
  configureSpmvHht(b, m, mmio_base);
  b.li(s10, bits(mmio_base + kBufData));  // fixed FIFO load address
  b.fcvtSW(ft0, zero);
  b.li(s3, isa::kMaxVl * 8);

  Label row_loop = b.newLabel(), chunk_loop = b.newLabel();
  Label reduce = b.newLabel(), done = b.newLabel();

  b.lw(t3, a0, 0);
  b.addi(t2, a0, 4);
  b.li(t0, 0);

  b.bind(row_loop);
  b.bge(t0, a5, done);
  b.lw(t4, t2, 0);
  b.sub(t5, t4, t3);
  b.vsetvli(s4, s3);
  b.vmvVI(v0, 0);
  b.beqz(t5, reduce);

  b.bind(chunk_loop);
  b.vsetvli(t6, t5);
  b.vle32(v2, s10);   // HHT buffer: only the *needed* v values arrive
  b.vle32(v3, a2);    // matrix values (contiguous, prefetch-friendly)
  b.vfmaccVV(v0, v2, v3);
  b.slli(s2, t6, 2);
  b.add(a2, a2, s2);
  b.sub(t5, t5, t6);
  b.bnez(t5, chunk_loop);

  b.bind(reduce);
  b.vsetvli(s4, s3);
  b.vfmvSF(v4, ft0);
  b.vfredosum(v5, v0, v4);
  b.vfmvFS(fs0, v5);
  b.fsw(fs0, a4, 0);
  b.addi(a4, a4, 4);
  b.mv(t3, t4);
  b.addi(t2, t2, 4);
  b.addi(t0, t0, 1);
  b.j(row_loop);

  b.bind(done);
  b.ecall();
  return b.build();
}

}  // namespace

Program spmvScalarHht(const SpmvLayout& m, Addr mmio_base) {
  return buildSpmvScalarHht("spmv_scalar_hht", m, m.vals, mmio_base);
}

Program spmvVectorHht(const SpmvLayout& m, Addr mmio_base) {
  return buildSpmvVectorHht("spmv_vector_hht", m, m.vals, mmio_base);
}

Program spmvScalarHhtShard(const SpmvLayout& m, const RowShard& shard,
                           Addr mmio_base) {
  if (shard.empty()) return emptyShardProgram("spmv_scalar_hht", shard);
  return buildSpmvScalarHht(shardName("spmv_scalar_hht", shard),
                            shardView(m, shard), m.vals + shard.nnz_begin * 4,
                            mmio_base);
}

Program spmvVectorHhtShard(const SpmvLayout& m, const RowShard& shard,
                           Addr mmio_base) {
  if (shard.empty()) return emptyShardProgram("spmv_vector_hht", shard);
  return buildSpmvVectorHht(shardName("spmv_vector_hht", shard),
                            shardView(m, shard), m.vals + shard.nnz_begin * 4,
                            mmio_base);
}

namespace {

/// Program the SpMV MMRs that hold for every chunk; M_Rows_Base, M_Num_Rows
/// and START are (re)written per claim.
void configureSpmvHhtStatic(ProgramBuilder& b, const SpmvLayout& m,
                            Addr mmio_base) {
  b.li(s11, bits(mmio_base));
  writeMmr(b, s11, kMColsBase, m.cols);
  writeMmr(b, s11, kVBase, m.v);
  writeMmr(b, s11, kElementSize, 4);
  writeMmr(b, s11, kMode, static_cast<std::uint32_t>(core::Mode::SpmvGather));
}

/// Chunk prologue shared by the SpMV consumers: from the claimed chunk
/// (count in a5, row_begin*4 in t2) derive the rowPtr window (a0), the y
/// cursor (a4) and the contiguous CPU vals cursor (a2, from the absolute
/// rowPtr[row_begin]), then retarget the HHT at the window and pulse START.
/// Leaves t3 = rowPtr[row_begin] and t2 = &rowPtr[row_begin + 1] for the
/// per-row loop. s7/s8/s9 must hold the rows/vals/y bases.
void spmvChunkPrologue(ProgramBuilder& b) {
  b.add(a0, s7, t2);    // &rowPtr[row_begin]
  b.add(a4, s9, t2);    // y cursor
  b.lw(t3, a0, 0);      // rowPtr[row_begin] (absolute)
  b.slli(t6, t3, 2);
  b.add(a2, s8, t6);    // vals cursor
  b.sw(a0, s11, static_cast<std::int32_t>(kMRowsBase));
  b.sw(a5, s11, static_cast<std::int32_t>(kMNumRows));
  b.li(t1, 1);
  b.sw(t1, s11, static_cast<std::int32_t>(kStart));
  b.addi(t2, a0, 4);    // &rowPtr[i + 1]
}

}  // namespace

Program spmvScalarHhtChunkQueue(const SpmvLayout& m, Addr mmio_base,
                                Addr claim_addr) {
  ProgramBuilder b(cqName("spmv_scalar_hht", claim_addr));
  b.li(s6, bits(claim_addr));
  b.li(s7, bits(m.rows)).li(s8, bits(m.vals)).li(s9, bits(m.y));
  configureSpmvHhtStatic(b, m, mmio_base);
  b.fcvtSW(ft0, zero);

  Label claim_loop = b.newLabel(), row_loop = b.newLabel();
  Label elem_loop = b.newLabel(), row_done = b.newLabel();
  Label done = b.newLabel();

  b.bind(claim_loop);
  claimChunk(b, a6, a5, t2, done);
  spmvChunkPrologue(b);

  b.bind(row_loop);
  b.beqz(a5, claim_loop);  // chunk consumed -> claim the next one
  b.lw(t4, t2, 0);
  b.sub(t5, t4, t3);
  b.fsgnj(fs0, ft0, ft0);
  b.beqz(t5, row_done);

  b.bind(elem_loop);
  b.flw(ft1, s11, static_cast<std::int32_t>(kBufData));
  b.flw(ft2, a2, 0);
  b.fmadd(fs0, ft1, ft2, fs0);
  b.addi(a2, a2, 4);
  b.addi(t5, t5, -1);
  b.bnez(t5, elem_loop);

  b.bind(row_done);
  b.fsw(fs0, a4, 0);
  b.addi(a4, a4, 4);
  b.mv(t3, t4);
  b.addi(t2, t2, 4);
  b.addi(a5, a5, -1);
  b.j(row_loop);

  b.bind(done);
  b.ecall();
  return b.build();
}

Program spmvVectorHhtChunkQueue(const SpmvLayout& m, Addr mmio_base,
                                Addr claim_addr) {
  ProgramBuilder b(cqName("spmv_vector_hht", claim_addr));
  b.li(s6, bits(claim_addr));
  b.li(s7, bits(m.rows)).li(s8, bits(m.vals)).li(s9, bits(m.y));
  configureSpmvHhtStatic(b, m, mmio_base);
  b.li(s10, bits(mmio_base + kBufData));
  b.fcvtSW(ft0, zero);
  b.li(s3, isa::kMaxVl * 8);

  Label claim_loop = b.newLabel(), row_loop = b.newLabel();
  Label chunk_loop = b.newLabel(), reduce = b.newLabel();
  Label done = b.newLabel();

  b.bind(claim_loop);
  claimChunk(b, a6, a5, t2, done);
  spmvChunkPrologue(b);

  b.bind(row_loop);
  b.beqz(a5, claim_loop);
  b.lw(t4, t2, 0);
  b.sub(t5, t4, t3);
  b.vsetvli(s4, s3);
  b.vmvVI(v0, 0);
  b.beqz(t5, reduce);

  b.bind(chunk_loop);
  b.vsetvli(t6, t5);
  b.vle32(v2, s10);
  b.vle32(v3, a2);
  b.vfmaccVV(v0, v2, v3);
  b.slli(s2, t6, 2);
  b.add(a2, a2, s2);
  b.sub(t5, t5, t6);
  b.bnez(t5, chunk_loop);

  b.bind(reduce);
  b.vsetvli(s4, s3);
  b.vfmvSF(v4, ft0);
  b.vfredosum(v5, v0, v4);
  b.vfmvFS(fs0, v5);
  b.fsw(fs0, a4, 0);
  b.addi(a4, a4, 4);
  b.mv(t3, t4);
  b.addi(t2, t2, 4);
  b.addi(a5, a5, -1);
  b.j(row_loop);

  b.bind(done);
  b.ecall();
  return b.build();
}

// ---------------------------------------------------------------------------
// SpMM (batched SpMV)
// ---------------------------------------------------------------------------

namespace {

/// Shared inner structure of the SpMM kernels: an outer loop over B's
/// columns around the familiar per-row vector loop. `hht` selects the
/// BUF_DATA consumer (with a per-column START pulse) vs the gather path.
Program buildSpmm(const SpmmLayout& m, Addr mmio_base, bool hht) {
  ProgramBuilder b(hht ? "spmm_vector_hht" : "spmm_vector_baseline");
  b.li(a0, bits(m.rows)).li(a1, bits(m.cols)).li(a2, bits(m.vals));
  b.li(a3, bits(m.b)).li(a4, bits(m.y));
  b.li(a5, static_cast<std::int32_t>(m.num_rows));
  b.li(a6, static_cast<std::int32_t>(m.k));
  b.li(s5, static_cast<std::int32_t>(m.num_cols) * 4);  // B column stride
  b.fcvtSW(ft0, zero);
  b.li(s3, isa::kMaxVl * 8);
  if (hht) {
    b.li(s11, bits(mmio_base));
    writeMmr(b, s11, kMNumRows, m.num_rows);
    writeMmr(b, s11, kMRowsBase, m.rows);
    writeMmr(b, s11, kMColsBase, m.cols);
    writeMmr(b, s11, kElementSize, 4);
    writeMmr(b, s11, kMode, static_cast<std::uint32_t>(core::Mode::SpmvGather));
    b.li(s10, bits(mmio_base + kBufData));
  }

  Label col_loop = b.newLabel(), row_loop = b.newLabel();
  Label chunk_loop = b.newLabel(), reduce = b.newLabel();
  Label col_done = b.newLabel(), done = b.newLabel();

  b.li(s7, 0);       // j
  b.mv(s1, a3);      // current B column base
  b.mv(s0, a4);      // current Y column cursor

  b.bind(col_loop);
  b.bge(s7, a6, done);
  if (hht) {
    b.sw(s1, s11, static_cast<std::int32_t>(kVBase));  // retarget the gather
    b.li(t1, 1);
    b.sw(t1, s11, static_cast<std::int32_t>(kStart));
  }
  b.mv(s8, a1);      // cols cursor (restarts per column)
  b.mv(s9, a2);      // vals cursor
  b.lw(t3, a0, 0);
  b.addi(t2, a0, 4);
  b.li(t0, 0);

  b.bind(row_loop);
  b.bge(t0, a5, col_done);
  b.lw(t4, t2, 0);
  b.sub(t5, t4, t3);
  b.vsetvli(s4, s3);
  b.vmvVI(v0, 0);
  b.beqz(t5, reduce);

  b.bind(chunk_loop);
  b.vsetvli(t6, t5);
  if (hht) {
    b.vle32(v2, s10);
  } else {
    b.vle32(v1, s8);
    b.vsllVI(v1, v1, 2);
    b.vluxei32(v2, s1, v1);
  }
  b.vle32(v3, s9);
  b.vfmaccVV(v0, v2, v3);
  b.slli(s2, t6, 2);
  if (!hht) b.add(s8, s8, s2);
  b.add(s9, s9, s2);
  b.sub(t5, t5, t6);
  b.bnez(t5, chunk_loop);

  b.bind(reduce);
  b.vsetvli(s4, s3);
  b.vfmvSF(v4, ft0);
  b.vfredosum(v5, v0, v4);
  b.vfmvFS(fs0, v5);
  b.fsw(fs0, s0, 0);
  b.addi(s0, s0, 4);
  b.mv(t3, t4);
  b.addi(t2, t2, 4);
  b.addi(t0, t0, 1);
  b.j(row_loop);

  b.bind(col_done);
  b.add(s1, s1, s5);
  b.addi(s7, s7, 1);
  b.j(col_loop);

  b.bind(done);
  b.ecall();
  return b.build();
}

}  // namespace

Program spmmVectorBaseline(const SpmmLayout& m) {
  return buildSpmm(m, 0, /*hht=*/false);
}

Program spmmVectorHht(const SpmmLayout& m, Addr mmio_base) {
  return buildSpmm(m, mmio_base, /*hht=*/true);
}

// ---------------------------------------------------------------------------
// SpMSpV
// ---------------------------------------------------------------------------

Program spmspvScalarBaseline(const SpmspvLayout& m) {
  ProgramBuilder b("spmspv_scalar_baseline");
  b.li(a0, bits(m.rows)).li(a1, bits(m.cols)).li(a2, bits(m.vals));
  b.li(a3, bits(m.vidx)).li(a4, bits(m.vvals)).li(a5, bits(m.y));
  b.li(a6, static_cast<std::int32_t>(m.num_rows));
  b.li(a7, static_cast<std::int32_t>(m.v_nnz));
  b.fcvtSW(ft0, zero);

  Label row_loop = b.newLabel(), merge_loop = b.newLabel();
  Label adv_a = b.newLabel(), match = b.newLabel();
  Label row_done = b.newLabel(), done = b.newLabel();

  b.lw(t3, a0, 0);
  b.addi(t2, a0, 4);
  b.li(t0, 0);

  b.bind(row_loop);
  b.bge(t0, a6, done);
  b.lw(t4, t2, 0);
  b.sub(t5, t4, t3);     // row nnz remaining
  b.slli(s2, t3, 2);
  b.add(s0, a1, s2);     // cols cursor for this row
  b.add(s1, a2, s2);     // vals cursor
  b.mv(s2, a3);          // vector index cursor (restarts every row)
  b.mv(s3, a4);          // vector value cursor
  b.mv(s4, a7);          // vector nnz remaining
  b.fsgnj(fs0, ft0, ft0);
  // Software-pipelined merge: both heads live in registers; only the
  // advanced side reloads.
  b.beqz(t5, row_done);
  b.beqz(s4, row_done);
  b.lw(t6, s0, 0);       // matrix column index
  b.lw(s5, s2, 0);       // vector index

  b.bind(merge_loop);
  b.beq(t6, s5, match);
  b.blt(t6, s5, adv_a);
  // advance vector side
  b.addi(s2, s2, 4);
  b.addi(s3, s3, 4);
  b.addi(s4, s4, -1);
  b.beqz(s4, row_done);
  b.lw(s5, s2, 0);
  b.j(merge_loop);

  b.bind(adv_a);
  b.addi(s0, s0, 4);
  b.addi(s1, s1, 4);
  b.addi(t5, t5, -1);
  b.beqz(t5, row_done);
  b.lw(t6, s0, 0);
  b.j(merge_loop);

  b.bind(match);
  b.flw(ft1, s1, 0);
  b.flw(ft2, s3, 0);
  b.fmadd(fs0, ft1, ft2, fs0);
  b.addi(s0, s0, 4);
  b.addi(s1, s1, 4);
  b.addi(t5, t5, -1);
  b.addi(s2, s2, 4);
  b.addi(s3, s3, 4);
  b.addi(s4, s4, -1);
  b.beqz(t5, row_done);
  b.beqz(s4, row_done);
  b.lw(t6, s0, 0);
  b.lw(s5, s2, 0);
  b.j(merge_loop);

  b.bind(row_done);
  b.fsw(fs0, a5, 0);
  b.addi(a5, a5, 4);
  b.mv(t3, t4);
  b.addi(t2, t2, 4);
  b.addi(t0, t0, 1);
  b.j(row_loop);

  b.bind(done);
  b.ecall();
  return b.build();
}

namespace {

void configureSpmspvHht(ProgramBuilder& b, const SpmspvLayout& m,
                        Addr mmio_base, core::Mode mode) {
  b.li(s11, bits(mmio_base));
  writeMmr(b, s11, kMNumRows, m.num_rows);
  writeMmr(b, s11, kMRowsBase, m.rows);
  writeMmr(b, s11, kMColsBase, m.cols);
  writeMmr(b, s11, kMValsBase, m.vals);
  writeMmr(b, s11, kVIdxBase, m.vidx);
  writeMmr(b, s11, kVValsBase, m.vvals);
  writeMmr(b, s11, kVNnz, m.v_nnz);
  writeMmr(b, s11, kElementSize, 4);
  writeMmr(b, s11, kMode, static_cast<std::uint32_t>(mode));
  writeMmr(b, s11, kStart, 1);
}

/// Variant-1's consumer touches only y and the FIFO — no vals cursor.
Program buildSpmspvV1(std::string name, const SpmspvLayout& m,
                      Addr mmio_base) {
  ProgramBuilder b(std::move(name));
  b.li(a5, bits(m.y)).li(a6, static_cast<std::int32_t>(m.num_rows));
  configureSpmspvHht(b, m, mmio_base, core::Mode::SpmspvV1);
  b.fcvtSW(ft0, zero);

  Label row_loop = b.newLabel(), pair_loop = b.newLabel();
  Label row_done = b.newLabel(), done = b.newLabel();

  b.li(t0, 0);
  b.bind(row_loop);
  b.bge(t0, a6, done);
  b.fsgnj(fs0, ft0, ft0);

  b.bind(pair_loop);
  b.lw(t1, s11, static_cast<std::int32_t>(kValid));
  b.beqz(t1, row_done);
  b.flw(ft1, s11, static_cast<std::int32_t>(kBufData));  // matrix value
  b.flw(ft2, s11, static_cast<std::int32_t>(kBufData));  // vector value
  b.fmadd(fs0, ft1, ft2, fs0);
  b.j(pair_loop);

  b.bind(row_done);
  b.fsw(fs0, a5, 0);
  b.addi(a5, a5, 4);
  b.addi(t0, t0, 1);
  b.j(row_loop);

  b.bind(done);
  b.ecall();
  return b.build();
}

Program buildSpmspvV2(std::string name, const SpmspvLayout& m, Addr cpu_vals,
                      Addr mmio_base) {
  ProgramBuilder b(std::move(name));
  b.li(a0, bits(m.rows)).li(a2, bits(cpu_vals));
  b.li(a5, bits(m.y)).li(a6, static_cast<std::int32_t>(m.num_rows));
  configureSpmspvHht(b, m, mmio_base, core::Mode::SpmspvV2);
  b.li(s10, bits(mmio_base + kBufData));
  b.fcvtSW(ft0, zero);
  b.li(s3, isa::kMaxVl * 8);

  Label row_loop = b.newLabel(), chunk_loop = b.newLabel();
  Label reduce = b.newLabel(), done = b.newLabel();

  b.lw(t3, a0, 0);
  b.addi(t2, a0, 4);
  b.li(t0, 0);
  b.mv(s1, a2);  // matrix values cursor (contiguous across rows)

  b.bind(row_loop);
  b.bge(t0, a6, done);
  b.lw(t4, t2, 0);
  b.sub(t5, t4, t3);
  b.vsetvli(s4, s3);
  b.vmvVI(v0, 0);
  b.beqz(t5, reduce);

  b.bind(chunk_loop);
  b.vsetvli(t6, t5);
  b.vle32(v3, s1);    // matrix values
  b.vle32(v2, s10);   // HHT value-or-zero stream
  b.vfmaccVV(v0, v2, v3);
  b.slli(s2, t6, 2);
  b.add(s1, s1, s2);
  b.sub(t5, t5, t6);
  b.bnez(t5, chunk_loop);

  b.bind(reduce);
  b.vsetvli(s4, s3);
  b.vfmvSF(v4, ft0);
  b.vfredosum(v5, v0, v4);
  b.vfmvFS(fs0, v5);
  b.fsw(fs0, a5, 0);
  b.addi(a5, a5, 4);
  b.mv(t3, t4);
  b.addi(t2, t2, 4);
  b.addi(t0, t0, 1);
  b.j(row_loop);

  b.bind(done);
  b.ecall();
  return b.build();
}

}  // namespace

Program spmspvHhtV1(const SpmspvLayout& m, Addr mmio_base) {
  return buildSpmspvV1("spmspv_hht_v1", m, mmio_base);
}

Program spmspvHhtV2(const SpmspvLayout& m, Addr mmio_base) {
  return buildSpmspvV2("spmspv_hht_v2", m, m.vals, mmio_base);
}

Program spmspvHhtV1Shard(const SpmspvLayout& m, const RowShard& shard,
                         Addr mmio_base) {
  if (shard.empty()) return emptyShardProgram("spmspv_hht_v1", shard);
  return buildSpmspvV1(shardName("spmspv_hht_v1", shard), shardView(m, shard),
                       mmio_base);
}

Program spmspvHhtV2Shard(const SpmspvLayout& m, const RowShard& shard,
                         Addr mmio_base) {
  if (shard.empty()) return emptyShardProgram("spmspv_hht_v2", shard);
  return buildSpmspvV2(shardName("spmspv_hht_v2", shard), shardView(m, shard),
                       m.vals + shard.nnz_begin * 4, mmio_base);
}

namespace {

/// Per-chunk-invariant SpMSpV MMRs; M_Rows_Base, M_Num_Rows and START are
/// rewritten per claimed chunk.
void configureSpmspvHhtStatic(ProgramBuilder& b, const SpmspvLayout& m,
                              Addr mmio_base, core::Mode mode) {
  b.li(s11, bits(mmio_base));
  writeMmr(b, s11, kMColsBase, m.cols);
  writeMmr(b, s11, kMValsBase, m.vals);
  writeMmr(b, s11, kVIdxBase, m.vidx);
  writeMmr(b, s11, kVValsBase, m.vvals);
  writeMmr(b, s11, kVNnz, m.v_nnz);
  writeMmr(b, s11, kElementSize, 4);
  writeMmr(b, s11, kMode, static_cast<std::uint32_t>(mode));
}

}  // namespace

Program spmspvHhtV1ChunkQueue(const SpmspvLayout& m, Addr mmio_base,
                              Addr claim_addr) {
  ProgramBuilder b(cqName("spmspv_hht_v1", claim_addr));
  b.li(s6, bits(claim_addr));
  b.li(s7, bits(m.rows)).li(s9, bits(m.y));
  configureSpmspvHhtStatic(b, m, mmio_base, core::Mode::SpmspvV1);
  b.fcvtSW(ft0, zero);

  Label claim_loop = b.newLabel(), row_loop = b.newLabel();
  Label pair_loop = b.newLabel(), row_done = b.newLabel();
  Label done = b.newLabel();

  b.bind(claim_loop);
  claimChunk(b, a6, a5, t2, done);
  b.add(a0, s7, t2);  // &rowPtr[row_begin]
  b.add(a4, s9, t2);  // y cursor
  b.sw(a0, s11, static_cast<std::int32_t>(kMRowsBase));
  b.sw(a5, s11, static_cast<std::int32_t>(kMNumRows));
  b.li(t1, 1);
  b.sw(t1, s11, static_cast<std::int32_t>(kStart));

  b.bind(row_loop);
  b.beqz(a5, claim_loop);
  b.fsgnj(fs0, ft0, ft0);

  b.bind(pair_loop);
  b.lw(t1, s11, static_cast<std::int32_t>(kValid));
  b.beqz(t1, row_done);
  b.flw(ft1, s11, static_cast<std::int32_t>(kBufData));  // matrix value
  b.flw(ft2, s11, static_cast<std::int32_t>(kBufData));  // vector value
  b.fmadd(fs0, ft1, ft2, fs0);
  b.j(pair_loop);

  b.bind(row_done);
  b.fsw(fs0, a4, 0);
  b.addi(a4, a4, 4);
  b.addi(a5, a5, -1);
  b.j(row_loop);

  b.bind(done);
  b.ecall();
  return b.build();
}

Program spmspvHhtV2ChunkQueue(const SpmspvLayout& m, Addr mmio_base,
                              Addr claim_addr) {
  ProgramBuilder b(cqName("spmspv_hht_v2", claim_addr));
  b.li(s6, bits(claim_addr));
  b.li(s7, bits(m.rows)).li(s8, bits(m.vals)).li(s9, bits(m.y));
  configureSpmspvHhtStatic(b, m, mmio_base, core::Mode::SpmspvV2);
  b.li(s10, bits(mmio_base + kBufData));
  b.fcvtSW(ft0, zero);
  b.li(s3, isa::kMaxVl * 8);

  Label claim_loop = b.newLabel(), row_loop = b.newLabel();
  Label chunk_loop = b.newLabel(), reduce = b.newLabel();
  Label done = b.newLabel();

  b.bind(claim_loop);
  claimChunk(b, a6, a5, t2, done);
  b.add(a0, s7, t2);    // &rowPtr[row_begin]
  b.add(a4, s9, t2);    // y cursor
  b.lw(t3, a0, 0);      // rowPtr[row_begin] (absolute)
  b.slli(t6, t3, 2);
  b.add(s1, s8, t6);    // CPU matrix-values cursor
  b.sw(a0, s11, static_cast<std::int32_t>(kMRowsBase));
  b.sw(a5, s11, static_cast<std::int32_t>(kMNumRows));
  b.li(t1, 1);
  b.sw(t1, s11, static_cast<std::int32_t>(kStart));
  b.addi(t2, a0, 4);    // &rowPtr[i + 1]

  b.bind(row_loop);
  b.beqz(a5, claim_loop);
  b.lw(t4, t2, 0);
  b.sub(t5, t4, t3);
  b.vsetvli(s4, s3);
  b.vmvVI(v0, 0);
  b.beqz(t5, reduce);

  b.bind(chunk_loop);
  b.vsetvli(t6, t5);
  b.vle32(v3, s1);
  b.vle32(v2, s10);
  b.vfmaccVV(v0, v2, v3);
  b.slli(s2, t6, 2);
  b.add(s1, s1, s2);
  b.sub(t5, t5, t6);
  b.bnez(t5, chunk_loop);

  b.bind(reduce);
  b.vsetvli(s4, s3);
  b.vfmvSF(v4, ft0);
  b.vfredosum(v5, v0, v4);
  b.vfmvFS(fs0, v5);
  b.fsw(fs0, a4, 0);
  b.addi(a4, a4, 4);
  b.mv(t3, t4);
  b.addi(t2, t2, 4);
  b.addi(a5, a5, -1);
  b.j(row_loop);

  b.bind(done);
  b.ecall();
  return b.build();
}

Program spmspvHhtV2Scalar(const SpmspvLayout& m, Addr mmio_base) {
  ProgramBuilder b("spmspv_hht_v2_scalar");
  b.li(a0, bits(m.rows)).li(a2, bits(m.vals));
  b.li(a5, bits(m.y)).li(a6, static_cast<std::int32_t>(m.num_rows));
  configureSpmspvHht(b, m, mmio_base, core::Mode::SpmspvV2);
  b.fcvtSW(ft0, zero);

  Label row_loop = b.newLabel(), elem_loop = b.newLabel();
  Label row_done = b.newLabel(), done = b.newLabel();

  b.lw(t3, a0, 0);
  b.addi(t2, a0, 4);
  b.li(t0, 0);
  b.mv(s1, a2);

  b.bind(row_loop);
  b.bge(t0, a6, done);
  b.lw(t4, t2, 0);
  b.sub(t5, t4, t3);
  b.fsgnj(fs0, ft0, ft0);
  b.beqz(t5, row_done);

  b.bind(elem_loop);
  b.flw(ft1, s11, static_cast<std::int32_t>(kBufData));  // v value or zero
  b.flw(ft2, s1, 0);
  b.fmadd(fs0, ft1, ft2, fs0);
  b.addi(s1, s1, 4);
  b.addi(t5, t5, -1);
  b.bnez(t5, elem_loop);

  b.bind(row_done);
  b.fsw(fs0, a5, 0);
  b.addi(a5, a5, 4);
  b.mv(t3, t4);
  b.addi(t2, t2, 4);
  b.addi(t0, t0, 1);
  b.j(row_loop);

  b.bind(done);
  b.ecall();
  return b.build();
}

// ---------------------------------------------------------------------------
// Hierarchical bitmap (SMASH-style)
// ---------------------------------------------------------------------------

namespace {

Program bitmapConsumer(const char* name, const HierLayout& m, Addr mmio_base,
                       core::Mode mode) {
  ProgramBuilder b(name);
  b.li(a5, bits(m.y)).li(a6, static_cast<std::int32_t>(m.num_rows));
  b.li(s1, bits(m.packed_vals));
  b.li(s11, bits(mmio_base));
  writeMmr(b, s11, kMNumRows, m.num_rows);
  writeMmr(b, s11, kNumCols, m.num_cols);
  writeMmr(b, s11, kL1Base, m.l1);
  writeMmr(b, s11, kLeavesBase, m.leaves);
  writeMmr(b, s11, kVBase, m.v);
  writeMmr(b, s11, kElementSize, 4);
  writeMmr(b, s11, kMode, static_cast<std::uint32_t>(mode));
  writeMmr(b, s11, kStart, 1);
  b.fcvtSW(ft0, zero);

  Label row_loop = b.newLabel(), elem_loop = b.newLabel();
  Label row_done = b.newLabel(), done = b.newLabel();

  b.li(t0, 0);
  b.bind(row_loop);
  b.bge(t0, a6, done);
  b.fsgnj(fs0, ft0, ft0);

  b.bind(elem_loop);
  b.lw(t1, s11, static_cast<std::int32_t>(kValid));
  b.beqz(t1, row_done);
  b.flw(ft1, s11, static_cast<std::int32_t>(kBufData));  // gathered v[col]
  b.flw(ft2, s1, 0);                                     // packed matrix value
  b.addi(s1, s1, 4);
  b.fmadd(fs0, ft1, ft2, fs0);
  b.j(elem_loop);

  b.bind(row_done);
  b.fsw(fs0, a5, 0);
  b.addi(a5, a5, 4);
  b.addi(t0, t0, 1);
  b.j(row_loop);

  b.bind(done);
  b.ecall();
  return b.build();
}

}  // namespace

Program hierBitmapHht(const HierLayout& m, Addr mmio_base) {
  return bitmapConsumer("hier_bitmap_hht", m, mmio_base, core::Mode::HierBitmap);
}

Program flatBitmapHht(const HierLayout& m, Addr mmio_base) {
  return bitmapConsumer("flat_bitmap_hht", m, mmio_base, core::Mode::FlatBitmap);
}

}  // namespace hht::kernels
