#pragma once

#include "kernels/kernels.h"

namespace hht::kernels {

/// Firmware programs for the *programmable* HHT (§7, core::MicroHht).
///
/// Each builder compiles the operand addresses in (the host configures the
/// firmware for the kernel it is about to offload, just as it programs the
/// ASIC's MMRs) and produces the micro-core program that performs the
/// metadata walk and feeds the CPU-side buffers via the kFw* push port.
/// Flow control is explicit: every push is preceded by a blocking read of
/// kFwSpace, the software analogue of the ASIC control unit's throttle.
///
/// The CPU-side consumer kernels (kernels.h) are reused unchanged — the
/// programmable device exposes the identical register map.

/// SpMV gather firmware: stream v[cols[k]] in row order, publishing at row
/// boundaries (pairs with spmvScalarHht / spmvVectorHht on the CPU).
isa::Program firmwareSpmvGather(const SpmvLayout& m,
                                sim::Addr mmio_base = core::kDefaultMmioBase);

/// SpMSpV variant-1 firmware: software merge; push aligned (m_val, v_val)
/// pairs and a RowEnd marker per row (pairs with spmspvHhtV1).
isa::Program firmwareSpmspvV1(const SpmspvLayout& m,
                              sim::Addr mmio_base = core::kDefaultMmioBase);

/// SpMSpV variant-2 firmware: push the vector's value-or-zero for every
/// matrix non-zero (pairs with spmspvHhtV2 / spmspvHhtV2Scalar).
isa::Program firmwareSpmspvV2(const SpmspvLayout& m,
                              sim::Addr mmio_base = core::kDefaultMmioBase);

}  // namespace hht::kernels
