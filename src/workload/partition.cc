#include "workload/partition.h"

#include <algorithm>
#include <stdexcept>

namespace hht::workload {

namespace {

std::uint32_t checkedTiles(std::uint32_t num_tiles) {
  if (num_tiles == 0) {
    throw std::invalid_argument("partitionRows: num_tiles must be >= 1");
  }
  return num_tiles;
}

/// Shards from a sorted boundary list: shard t covers
/// [bounds[t], bounds[t+1]).
std::vector<kernels::RowShard> fromBounds(
    const sparse::CsrMatrix& m, const std::vector<std::uint32_t>& bounds) {
  std::vector<kernels::RowShard> shards;
  shards.reserve(bounds.size() - 1);
  for (std::size_t t = 0; t + 1 < bounds.size(); ++t) {
    kernels::RowShard s;
    s.row_begin = bounds[t];
    s.row_end = bounds[t + 1];
    s.nnz_begin = static_cast<std::uint32_t>(m.rowPtr()[s.row_begin]);
    shards.push_back(s);
  }
  return shards;
}

}  // namespace

std::vector<kernels::RowShard> partitionRowsBlock(const sparse::CsrMatrix& m,
                                                  std::uint32_t num_tiles) {
  checkedTiles(num_tiles);
  const std::uint32_t rows = static_cast<std::uint32_t>(m.numRows());
  const std::uint32_t block = (rows + num_tiles - 1) / num_tiles;
  std::vector<std::uint32_t> bounds(num_tiles + 1, rows);
  for (std::uint32_t t = 0; t <= num_tiles; ++t) {
    const std::uint64_t edge = static_cast<std::uint64_t>(t) * block;
    bounds[t] = static_cast<std::uint32_t>(std::min<std::uint64_t>(edge, rows));
  }
  return fromBounds(m, bounds);
}

std::vector<kernels::RowShard> partitionRowsNnzBalanced(
    const sparse::CsrMatrix& m, std::uint32_t num_tiles) {
  checkedTiles(num_tiles);
  const std::uint32_t rows = static_cast<std::uint32_t>(m.numRows());
  const std::uint64_t nnz = m.nnz();
  const auto& row_ptr = m.rowPtr();
  std::vector<std::uint32_t> bounds(num_tiles + 1, rows);
  bounds[0] = 0;
  std::uint32_t row = 0;
  for (std::uint32_t t = 1; t < num_tiles; ++t) {
    // Advance to the first row at which shard t-1 has claimed at least its
    // proportional share of nonzeros. Integer targets keep the split exact
    // and deterministic: target(t) = floor(nnz * t / num_tiles).
    const std::uint64_t target = nnz * t / num_tiles;
    while (row < rows &&
           static_cast<std::uint64_t>(row_ptr[row + 1]) <= target) {
      ++row;
    }
    bounds[t] = row;
  }
  return fromBounds(m, bounds);
}

}  // namespace hht::workload
