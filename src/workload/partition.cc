#include "workload/partition.h"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "sim/error.h"

namespace hht::workload {

namespace {

std::uint32_t checkedTiles(std::uint32_t num_tiles) {
  if (num_tiles == 0) {
    throw std::invalid_argument("partitionRows: num_tiles must be >= 1");
  }
  return num_tiles;
}

}  // namespace

std::vector<kernels::RowShard> partitionFromBounds(
    const sparse::CsrMatrix& m, const std::vector<std::uint32_t>& bounds) {
  const std::uint32_t rows = static_cast<std::uint32_t>(m.numRows());
  if (bounds.size() < 2) {
    throw sim::SimError(sim::ErrorKind::Config, "partition",
                        "bounds needs >= 2 entries (got " +
                            std::to_string(bounds.size()) + ")");
  }
  if (bounds.front() != 0) {
    throw sim::SimError(sim::ErrorKind::Config, "partition",
                        "bounds[0] must be 0 (got " +
                            std::to_string(bounds.front()) +
                            "); leading rows would be skipped");
  }
  for (std::size_t t = 1; t < bounds.size(); ++t) {
    if (bounds[t] < bounds[t - 1]) {
      throw sim::SimError(sim::ErrorKind::Config, "partition",
                          "bounds[" + std::to_string(t) + "] = " +
                              std::to_string(bounds[t]) + " < bounds[" +
                              std::to_string(t - 1) + "] = " +
                              std::to_string(bounds[t - 1]) +
                              "; shards must be non-decreasing");
    }
    if (bounds[t] > rows) {
      throw sim::SimError(sim::ErrorKind::Config, "partition",
                          "bounds[" + std::to_string(t) + "] = " +
                              std::to_string(bounds[t]) +
                              " past numRows() = " + std::to_string(rows));
    }
  }
  if (bounds.back() != rows) {
    throw sim::SimError(sim::ErrorKind::Config, "partition",
                        "bounds.back() = " + std::to_string(bounds.back()) +
                            " != numRows() = " + std::to_string(rows) +
                            "; the row tail would be silently dropped");
  }
  std::vector<kernels::RowShard> shards;
  shards.reserve(bounds.size() - 1);
  for (std::size_t t = 0; t + 1 < bounds.size(); ++t) {
    kernels::RowShard s;
    s.row_begin = bounds[t];
    s.row_end = bounds[t + 1];
    s.nnz_begin = static_cast<std::uint32_t>(m.rowPtr()[s.row_begin]);
    shards.push_back(s);
  }
  return shards;
}

std::vector<kernels::RowShard> partitionRowsBlock(const sparse::CsrMatrix& m,
                                                  std::uint32_t num_tiles) {
  checkedTiles(num_tiles);
  const std::uint32_t rows = static_cast<std::uint32_t>(m.numRows());
  const std::uint32_t block = (rows + num_tiles - 1) / num_tiles;
  std::vector<std::uint32_t> bounds(num_tiles + 1, rows);
  for (std::uint32_t t = 0; t <= num_tiles; ++t) {
    const std::uint64_t edge = static_cast<std::uint64_t>(t) * block;
    bounds[t] = static_cast<std::uint32_t>(std::min<std::uint64_t>(edge, rows));
  }
  return partitionFromBounds(m, bounds);
}

std::vector<kernels::RowShard> partitionRowsNnzBalanced(
    const sparse::CsrMatrix& m, std::uint32_t num_tiles) {
  checkedTiles(num_tiles);
  const std::uint32_t rows = static_cast<std::uint32_t>(m.numRows());
  const std::uint64_t nnz = m.nnz();
  const auto& row_ptr = m.rowPtr();
  std::vector<std::uint32_t> bounds(num_tiles + 1, rows);
  std::uint32_t row = 0;
  for (std::uint32_t t = 0; t < num_tiles; ++t) {
    bounds[t] = row;
    if (row >= rows) continue;  // more tiles than rows: trailing empties
    const std::uint32_t shards_left = num_tiles - t;
    const std::uint64_t remaining =
        nnz - static_cast<std::uint64_t>(row_ptr[row]);
    // Fair share of what is left, recomputed per shard — fixed cumulative
    // targets are the bug this replaces: a row denser than one share made
    // every later target fall inside it, collapsing the remaining bounds
    // onto each other (empty shards) while the first shard kept everything.
    const std::uint64_t share = (remaining + shards_left - 1) / shards_left;
    std::uint32_t end = row + 1;  // never empty while rows remain
    if (remaining == 0) {
      // Only empty rows remain: spread them evenly so the per-row output
      // writes (one y store per row) stay balanced too.
      end = row + std::max<std::uint32_t>(1, (rows - row) / shards_left);
    } else {
      // Leave at least one row for each of the shards after this one.
      const std::uint32_t cap =
          rows - row >= shards_left ? rows - (shards_left - 1) : end;
      while (end < cap &&
             static_cast<std::uint64_t>(row_ptr[end]) - row_ptr[row] < share) {
        ++end;
      }
    }
    row = end;
  }
  bounds[num_tiles] = rows;
  return partitionFromBounds(m, bounds);
}

PartitionStats partitionStats(const sparse::CsrMatrix& m,
                              const std::vector<kernels::RowShard>& shards) {
  PartitionStats st;
  if (shards.empty()) return st;
  const auto& row_ptr = m.rowPtr();
  for (const kernels::RowShard& s : shards) {
    if (s.empty()) {
      ++st.empty_shards;
      continue;
    }
    const std::uint64_t shard_nnz =
        static_cast<std::uint64_t>(row_ptr[s.row_end]) - row_ptr[s.row_begin];
    st.max_nnz = std::max(st.max_nnz, shard_nnz);
  }
  st.mean_nnz = m.nnz() / shards.size();
  st.imbalance_pct = st.mean_nnz == 0 ? 0 : 100 * st.max_nnz / st.mean_nnz;
  return st;
}

}  // namespace hht::workload
