#pragma once

#include <vector>

#include "kernels/kernels.h"
#include "sparse/csr.h"

namespace hht::workload {

/// Row partitioners for multi-tile scale-out (DESIGN.md §13): split a CSR
/// matrix's rows into `num_tiles` contiguous, disjoint shards covering
/// [0, numRows()). Both always return exactly num_tiles shards (trailing
/// ones may be empty when there are fewer rows than tiles), with
/// nnz_begin = rowPtr[row_begin] filled in.

/// Static block partition: ceil(num_rows / num_tiles) rows per shard,
/// ignoring the nonzero distribution. Cheap and cache-friendly, but a
/// skewed matrix leaves some tiles idle while one drains a dense stripe.
std::vector<kernels::RowShard> partitionRowsBlock(const sparse::CsrMatrix& m,
                                                  std::uint32_t num_tiles);

/// NNZ-balanced partition: each shard takes rows until its cumulative
/// nonzero count reaches the next multiple of nnz/num_tiles. Rows are never
/// split, so a single pathological row still bounds the imbalance, but
/// banded/skewed matrices divide far more evenly than the block split.
std::vector<kernels::RowShard> partitionRowsNnzBalanced(
    const sparse::CsrMatrix& m, std::uint32_t num_tiles);

}  // namespace hht::workload
