#pragma once

#include <vector>

#include "kernels/kernels.h"
#include "sparse/csr.h"

namespace hht::workload {

/// Row partitioners for multi-tile scale-out (DESIGN.md §13): split a CSR
/// matrix's rows into `num_tiles` contiguous, disjoint shards covering
/// [0, numRows()). Both always return exactly num_tiles shards (trailing
/// ones may be empty when there are fewer rows than tiles), with
/// nnz_begin = rowPtr[row_begin] filled in.

/// Static block partition: ceil(num_rows / num_tiles) rows per shard,
/// ignoring the nonzero distribution. Cheap and cache-friendly, but a
/// skewed matrix leaves some tiles idle while one drains a dense stripe.
std::vector<kernels::RowShard> partitionRowsBlock(const sparse::CsrMatrix& m,
                                                  std::uint32_t num_tiles);

/// NNZ-balanced partition: greedy remaining-share split. Each shard takes
/// at least one row (while rows remain) and keeps taking rows until it
/// holds its proportional share of the nonzeros *still unassigned* —
/// share(t) = ceil(remaining_nnz / shards_left) — capped so every later
/// shard can still receive a row. Recomputing the share from the remainder
/// (instead of fixed cumulative targets) is what keeps a single dense row
/// from collapsing the bounds: the dense row lands alone in one shard and
/// the split of everything after it is unaffected. Rows are never split,
/// so one pathological row still bounds the imbalance — see
/// partitionStats() for the diagnostic, and the chunk-queue drivers for
/// the dynamic alternative.
std::vector<kernels::RowShard> partitionRowsNnzBalanced(
    const sparse::CsrMatrix& m, std::uint32_t num_tiles);

/// Shards from an explicit sorted boundary list: shard t covers
/// [bounds[t], bounds[t+1]). A malformed list — fewer than two entries,
/// bounds[0] != 0, a decreasing step, an entry past numRows(), or
/// bounds.back() != numRows() (a silently dropped row tail) — throws
/// sim::SimError(Config) naming the offending index instead of producing
/// shards that skip or double-count rows.
std::vector<kernels::RowShard> partitionFromBounds(
    const sparse::CsrMatrix& m, const std::vector<std::uint32_t>& bounds);

/// Static-partition quality diagnostic (surfaced by the sharded drivers as
/// workload.shard_* counters).
struct PartitionStats {
  std::uint64_t max_nnz = 0;   ///< heaviest shard's nonzero count
  std::uint64_t mean_nnz = 0;  ///< nnz / num_shards (rounded down)
  /// 100 * max_nnz / mean_nnz (100 = perfectly balanced); 0 when nnz == 0.
  std::uint64_t imbalance_pct = 0;
  std::uint32_t empty_shards = 0;  ///< shards with zero rows
};
PartitionStats partitionStats(const sparse::CsrMatrix& m,
                              const std::vector<kernels::RowShard>& shards);

}  // namespace hht::workload
