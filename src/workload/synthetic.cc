#include "workload/synthetic.h"

#include <algorithm>
#include <cmath>
#include <set>

namespace hht::workload {

Value drawValue(Rng& rng, ValueDist dist) {
  switch (dist) {
    case ValueDist::kSmallIntegers:
      return static_cast<Value>(1 + rng.nextBelow(15));
    case ValueDist::kUniformReal:
      return rng.nextFloat(0.5f, 1.5f);
  }
  return 1.0f;
}

sparse::DenseMatrix randomDense(Rng& rng, Index rows, Index cols,
                                double sparsity, ValueDist dist) {
  sparse::DenseMatrix m(rows, cols);
  for (Index r = 0; r < rows; ++r) {
    for (Index c = 0; c < cols; ++c) {
      if (!rng.nextBool(sparsity)) m.at(r, c) = drawValue(rng, dist);
    }
  }
  return m;
}

sparse::CsrMatrix randomCsr(Rng& rng, Index rows, Index cols, double sparsity,
                            ValueDist dist) {
  return sparse::CsrMatrix::fromDense(randomDense(rng, rows, cols, sparsity, dist));
}

sparse::DenseVector randomDenseVector(Rng& rng, Index size, ValueDist dist) {
  sparse::DenseVector v(size);
  for (Index i = 0; i < size; ++i) v.at(i) = drawValue(rng, dist);
  return v;
}

sparse::SparseVector randomSparseVector(Rng& rng, Index size, double sparsity,
                                        ValueDist dist) {
  std::vector<Index> indices;
  std::vector<Value> vals;
  for (Index i = 0; i < size; ++i) {
    if (!rng.nextBool(sparsity)) {
      indices.push_back(i);
      vals.push_back(drawValue(rng, dist));
    }
  }
  return sparse::SparseVector(size, std::move(indices), std::move(vals));
}

sparse::CsrMatrix bandedCsr(Rng& rng, Index n, Index half_bandwidth,
                            double fill, ValueDist dist) {
  sparse::CooMatrix coo(n, n);
  for (Index r = 0; r < n; ++r) {
    const Index lo = r > half_bandwidth ? r - half_bandwidth : 0;
    const Index hi = std::min<Index>(n - 1, r + half_bandwidth);
    for (Index c = lo; c <= hi; ++c) {
      if (rng.nextBool(fill)) coo.add(r, c, drawValue(rng, dist));
    }
  }
  return sparse::CsrMatrix::fromCoo(std::move(coo));
}

sparse::CsrMatrix powerLawCsr(Rng& rng, Index rows, Index cols,
                              Index max_degree, double alpha, ValueDist dist) {
  sparse::CooMatrix coo(rows, cols);
  for (Index r = 0; r < rows; ++r) {
    const double raw =
        static_cast<double>(max_degree) / std::pow(static_cast<double>(r + 1), alpha);
    const Index degree = std::max<Index>(1, static_cast<Index>(raw));
    std::set<Index> picked;
    while (picked.size() < std::min<std::size_t>(degree, cols)) {
      picked.insert(static_cast<Index>(rng.nextBelow(cols)));
    }
    for (Index c : picked) coo.add(r, c, drawValue(rng, dist));
  }
  return sparse::CsrMatrix::fromCoo(std::move(coo));
}

sparse::CsrMatrix blockDiagonalCsr(Rng& rng, Index num_blocks, Index block_size,
                                   double block_fill, ValueDist dist) {
  const Index n = num_blocks * block_size;
  sparse::CooMatrix coo(n, n);
  for (Index b = 0; b < num_blocks; ++b) {
    const Index base = b * block_size;
    for (Index i = 0; i < block_size; ++i) {
      for (Index j = 0; j < block_size; ++j) {
        if (rng.nextBool(block_fill)) {
          coo.add(base + i, base + j, drawValue(rng, dist));
        }
      }
    }
  }
  return sparse::CsrMatrix::fromCoo(std::move(coo));
}

double rowNnzGini(const sparse::CsrMatrix& m) {
  const Index rows = m.numRows();
  if (rows == 0 || m.nnz() == 0) return 0.0;
  const auto& row_ptr = m.rowPtr();
  std::vector<double> deg(rows);
  for (Index r = 0; r < rows; ++r) {
    deg[r] = static_cast<double>(row_ptr[r + 1] - row_ptr[r]);
  }
  std::sort(deg.begin(), deg.end());
  // Gini via the sorted-rank identity:
  //   G = (2 * sum_i (i+1)*x_i) / (n * sum_i x_i) - (n + 1) / n.
  double weighted = 0.0, total = 0.0;
  for (Index i = 0; i < rows; ++i) {
    weighted += static_cast<double>(i + 1) * deg[i];
    total += deg[i];
  }
  const double n = static_cast<double>(rows);
  return (2.0 * weighted) / (n * total) - (n + 1.0) / n;
}

}  // namespace hht::workload
