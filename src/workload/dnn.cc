#include "workload/dnn.h"

#include <array>

namespace hht::workload {

namespace {

// Classifier (final FC) shapes of the published architectures; sparsity
// levels follow the relative ordering Fig. 9's speedups imply.
constexpr std::array<DnnFcLayer, 7> kCatalog{{
    {"MobileNet", 1024, 1000, 0.60},
    {"MobileNetV2", 1280, 1000, 0.65},
    {"DenseNet", 1024, 1000, 0.50},
    {"ResNet", 2048, 1000, 0.62},
    {"ResNetV2", 2048, 1000, 0.64},
    {"VGG16", 4096, 1000, 0.72},
    {"VGG19", 4096, 1000, 0.75},
}};

}  // namespace

std::span<const DnnFcLayer> dnnFcCatalog() { return kCatalog; }

sparse::CsrMatrix dnnLayerMatrix(const DnnFcLayer& layer, std::uint64_t seed,
                                 sim::Index row_limit) {
  sim::Rng rng(seed);
  const sim::Index rows = (row_limit == 0 || row_limit > layer.out_features)
                              ? layer.out_features
                              : row_limit;
  return randomCsr(rng, rows, layer.in_features, layer.sparsity,
                   ValueDist::kSmallIntegers);
}

}  // namespace hht::workload
