#pragma once

#include <span>

#include "sim/rng.h"
#include "sparse/csr.h"
#include "workload/synthetic.h"

namespace hht::workload {

/// The fully-connected classifier layer of each network evaluated in §5.4
/// (Fig. 9). Dimensions are the published classifier shapes
/// (in_features -> 1000 ImageNet classes); the sparsity column is the
/// weight sparsity after quantization/pruning, in the range the paper's
/// figure implies (DenseNet lowest speedup => lowest sparsity benefit).
///
/// SUBSTITUTION NOTE (DESIGN.md #3): the paper's quantized weight tensors
/// are not shipped; we generate seeded random weights at each layer's shape
/// and sparsity, which preserves the statistics SpMV performance depends
/// on (row length distribution and index randomness).
struct DnnFcLayer {
  const char* network;
  sim::Index in_features;   ///< matrix columns
  sim::Index out_features;  ///< matrix rows (one per class)
  double sparsity;          ///< fraction of zero weights
};

std::span<const DnnFcLayer> dnnFcCatalog();

/// Materialise a layer's weight matrix (CSR). `row_limit` optionally caps
/// the number of output rows simulated — SpMV rows are independent, so a
/// row slice preserves per-row cycle ratios while keeping bench runtimes
/// bounded (the full 1000-row layers change nothing but wall-clock time).
sparse::CsrMatrix dnnLayerMatrix(const DnnFcLayer& layer, std::uint64_t seed,
                                 sim::Index row_limit = 0);

}  // namespace hht::workload
