#pragma once

#include "sim/rng.h"
#include "sparse/csr.h"
#include "sparse/dense.h"
#include "sparse/sparse_vector.h"

namespace hht::workload {

using sim::Index;
using sim::Rng;
using sim::Value;

/// Value distribution for generated non-zeros.
///
/// kSmallIntegers draws from {1..15} (as floats): every product is an exact
/// small integer and sums below 2^24 stay exact, so scalar, vector and
/// HHT-assisted kernels — which accumulate in different orders — produce
/// *bit-identical* results and tests can compare with ==. kUniformReal
/// draws from [0.5, 1.5) for realistic rounding behaviour (compare with a
/// tolerance).
enum class ValueDist { kSmallIntegers, kUniformReal };

Value drawValue(Rng& rng, ValueDist dist);

/// Uniform-random dense matrix with the requested fraction of zeros —
/// the paper's synthetic workload ("randomly generated matrices with
/// varying degrees of sparsity", §4). Each entry is zero with probability
/// `sparsity`, independently.
sparse::DenseMatrix randomDense(Rng& rng, Index rows, Index cols,
                                double sparsity,
                                ValueDist dist = ValueDist::kSmallIntegers);

/// Convenience: CSR form of randomDense.
sparse::CsrMatrix randomCsr(Rng& rng, Index rows, Index cols, double sparsity,
                            ValueDist dist = ValueDist::kSmallIntegers);

/// Fully dense vector with non-zero entries (SpMV operand).
sparse::DenseVector randomDenseVector(Rng& rng, Index size,
                                      ValueDist dist = ValueDist::kSmallIntegers);

/// Sparse vector with the requested sparsity (SpMSpV operand).
sparse::SparseVector randomSparseVector(Rng& rng, Index size, double sparsity,
                                        ValueDist dist = ValueDist::kSmallIntegers);

// --- structured generators standing in for the Texas A&M (SuiteSparse)
//     matrices (§4; see DESIGN.md substitution #4). All produce the >90 %
//     sparsity regimes the paper notes for that collection. ---

/// Banded matrix: non-zeros only within `half_bandwidth` of the diagonal,
/// kept with probability `fill` (discretised PDE stencils).
sparse::CsrMatrix bandedCsr(Rng& rng, Index n, Index half_bandwidth, double fill,
                            ValueDist dist = ValueDist::kSmallIntegers);

/// Power-law row degrees (graph adjacency): row r gets about
/// max_degree / (r+1)^alpha random columns.
sparse::CsrMatrix powerLawCsr(Rng& rng, Index rows, Index cols,
                              Index max_degree, double alpha,
                              ValueDist dist = ValueDist::kSmallIntegers);

/// Block-diagonal with dense-ish blocks (multi-physics coupling).
sparse::CsrMatrix blockDiagonalCsr(Rng& rng, Index num_blocks, Index block_size,
                                   double block_fill,
                                   ValueDist dist = ValueDist::kSmallIntegers);

/// Gini coefficient of the row-nnz distribution in [0, 1): 0 = every row
/// holds the same number of nonzeros, ->1 = all nonzeros in one row. The
/// skew knob for the zipf sweeps: powerLawCsr's Gini rises monotonically
/// with `alpha` (as long as `max_degree / rows^alpha` stays above the
/// min-degree clamp, which otherwise flattens the tail into equal 1s),
/// which is what makes it a load-imbalance stressor for the static
/// partitioners. Returns 0 for empty matrices.
double rowNnzGini(const sparse::CsrMatrix& m);

}  // namespace hht::workload
