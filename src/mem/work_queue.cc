#include "mem/work_queue.h"

#include <string>

#include "sim/error.h"

namespace hht::mem {

ChunkQueueDevice::ChunkQueueDevice(std::uint32_t num_tiles,
                                   std::uint32_t claims_per_cycle)
    : num_tiles_(num_tiles),
      claims_per_cycle_(claims_per_cycle == 0 ? 1 : claims_per_cycle),
      queues_(num_tiles),
      grants_(&stats_.counter("mem.wq.grants")),
      steals_(&stats_.counter("mem.wq.steals")),
      conflict_cycles_(&stats_.counter("mem.wq.conflict_cycles")) {
  if (num_tiles == 0) {
    throw sim::SimError(sim::ErrorKind::Config, "wq",
                        "chunk queue needs at least one tile");
  }
}

void ChunkQueueDevice::seed(const std::vector<std::vector<Chunk>>& per_tile) {
  if (per_tile.size() != num_tiles_) {
    throw sim::SimError(sim::ErrorKind::Config, "wq",
                        "seed: got " + std::to_string(per_tile.size()) +
                            " deques for " + std::to_string(num_tiles_) +
                            " tiles");
  }
  for (std::size_t t = 0; t < per_tile.size(); ++t) {
    for (const Chunk& c : per_tile[t]) {
      if (c.row_count == 0 || c.row_count > kMaxChunkRows ||
          c.row_begin > kMaxRowBegin) {
        throw sim::SimError(
            sim::ErrorKind::Config, "wq",
            "seed: chunk [" + std::to_string(c.row_begin) + ", +" +
                std::to_string(c.row_count) + ") for tile " +
                std::to_string(t) + " outside the packed encoding (count in "
                "[1, " + std::to_string(kMaxChunkRows) + "], row_begin <= " +
                std::to_string(kMaxRowBegin) + ")");
      }
    }
    queues_[t].assign(per_tile[t].begin(), per_tile[t].end());
  }
  log_.clear();
}

bool ChunkQueueDevice::empty() const {
  for (const auto& q : queues_) {
    if (!q.empty()) return false;
  }
  return true;
}

std::uint64_t ChunkQueueDevice::pendingRows() const {
  std::uint64_t rows = 0;
  for (const auto& q : queues_) {
    for (const Chunk& c : q) rows += c.row_count;
  }
  return rows;
}

std::uint32_t ChunkQueueDevice::claim(std::uint32_t tile) {
  Chunk chunk;
  bool stolen = false;
  if (!queues_[tile].empty()) {
    chunk = queues_[tile].front();
    queues_[tile].pop_front();
  } else {
    // Steal from the back of the most-loaded victim (most pending rows;
    // ties break to the lowest tile index, so the choice is deterministic).
    std::uint32_t victim = num_tiles_;
    std::uint64_t victim_rows = 0;
    for (std::uint32_t t = 0; t < num_tiles_; ++t) {
      std::uint64_t rows = 0;
      for (const Chunk& c : queues_[t]) rows += c.row_count;
      if (rows > victim_rows) {
        victim_rows = rows;
        victim = t;
      }
    }
    if (victim == num_tiles_) return 0;  // drained: sentinel
    chunk = queues_[victim].back();
    queues_[victim].pop_back();
    stolen = true;
    ++*steals_;
  }
  ++*grants_;
  ++claims_this_cycle_;
  log_.push_back(Claim{tile, chunk.row_begin, chunk.row_count, stolen});
  const std::uint32_t packed = pack(chunk);
  if (trace_ != nullptr && trace_->enabled(obs::Category::kWq)) {
    trace_->emit(now_, obs::Category::kWq, obs::Component::kMem,
                 obs::EventKind::kWqClaim, packed,
                 tile | (stolen ? 1ull << 8 : 0ull));
  }
  return packed;
}

MmioReadResult ChunkQueueDevice::mmioRead(Addr offset, std::uint32_t size,
                                          Requester who) {
  (void)who;
  // Claim registers live at offset tile*4; anything else in the window
  // (including a misaligned or non-word read) reads as 0, the same as an
  // unmapped window — a mis-wired kernel sees "queue drained" and halts.
  if (size != 4 || offset % 4 != 0 || offset / 4 >= num_tiles_) {
    return {true, 0};
  }
  if (claims_this_cycle_ >= claims_per_cycle_) {
    ++*conflict_cycles_;
    return {false, 0};  // retried next cycle, per-requester FIFO order
  }
  return {true, claim(static_cast<std::uint32_t>(offset / 4))};
}

void ChunkQueueDevice::serialize(sim::StateWriter& w) const {
  w.tag("WKQ7");
  w.u32(num_tiles_);
  for (const auto& q : queues_) {
    w.u64(q.size());
    for (const Chunk& c : q) {
      w.u32(c.row_begin);
      w.u32(c.row_count);
    }
  }
  w.u64(log_.size());
  for (const Claim& c : log_) {
    w.u32(c.tile);
    w.u32(c.row_begin);
    w.u32(c.row_count);
    w.b(c.stolen);
  }
  stats_.serialize(w);
}

void ChunkQueueDevice::deserialize(sim::StateReader& r) {
  r.expectTag("WKQ7");
  const std::uint32_t tiles = r.u32();
  if (tiles != num_tiles_) {
    throw sim::SimError(sim::ErrorKind::Checkpoint, "wq",
                        "snapshot has " + std::to_string(tiles) +
                            " work-queue deques, this machine has " +
                            std::to_string(num_tiles_));
  }
  for (auto& q : queues_) {
    q.clear();
    const std::uint64_t n = r.u64();
    for (std::uint64_t i = 0; i < n; ++i) {
      Chunk c;
      c.row_begin = r.u32();
      c.row_count = r.u32();
      q.push_back(c);
    }
  }
  log_.clear();
  const std::uint64_t n = r.u64();
  log_.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    Claim c;
    c.tile = r.u32();
    c.row_begin = r.u32();
    c.row_count = r.u32();
    c.stolen = r.b();
    log_.push_back(c);
  }
  stats_.deserialize(r);
}

}  // namespace hht::mem
