#pragma once

#include <cstdint>
#include <vector>

#include "mem/cache.h"
#include "sim/error.h"
#include "sim/types.h"

namespace hht::mem {

using sim::Addr;
using sim::Cycle;

/// Per-node overrides for one shared-level channel. A node is a bank set
/// with its own arbiter: it keeps its own request queue, rotation state and
/// conflict accounting. Zero-valued fields inherit the MemorySystemConfig
/// top-level knobs, so `{}` describes a clone of the flat SRAM's arbiter.
struct TopologyNodeConfig {
  std::uint32_t grants_per_cycle = 0;  ///< 0 = inherit MemorySystemConfig
  Cycle extra_latency = 0;             ///< service-latency adder for this node
};

/// Composable memory topology (DESIGN.md §17): nodes are bank sets with
/// their own arbiter, edges are latency/bandwidth links — NUMA/chiplet
/// layouts become config, not code.
///
/// The default-constructed value is the *flat* topology: one channel, no
/// links, no tile-local storage. Flat runs are bit-identical to the
/// pre-topology memory system (same grant schedule, same stats names, same
/// snapshot bytes), which is what keeps the single-tile `System` oracle and
/// the golden traces stable.
///
/// The hierarchical (Occamy-style) layout used by `bench/fig_scaleout`:
///   - per-tile L1 (`tile_l1_enabled`, reusing mem::Cache) close to each
///     {CPU+HHT} pair, for row pointers, accumulator spills and streamed
///     value lines;
///   - a shared second level split into `channels` independent channels,
///     address-interleaved every `interleave_bytes`, each with its own
///     arbiter (per-node policy state, grant slots, conflict counters);
///   - tile<->channel edges modelled as links: `link_latency` cycles added
///     to every channel-path completion and `link_bandwidth` requests per
///     tile per cycle crossing the edge (0 = unbounded);
///   - an HHT-side stride prefetcher (`hht_prefetch_enabled`) watching each
///     tile's HHT demand-read stream and filling its L1 from spare channel
///     slots (demand traffic always wins; the patrol scrubber stays last).
struct TopologyConfig {
  std::uint32_t channels = 1;           ///< shared-level channel count
  std::uint32_t interleave_bytes = 256; ///< address-interleave granule
  Cycle link_latency = 0;               ///< tile<->channel edge latency
  /// Per-tile edge bandwidth: lane entries serviced (L1 lookups + channel
  /// forwards) per cycle. 0 = unbounded.
  std::uint32_t link_bandwidth = 0;
  bool tile_l1_enabled = false;
  CacheConfig tile_l1;
  bool hht_prefetch_enabled = false;
  std::uint32_t hht_prefetch_degree = 4;   ///< lines predicted per trigger
  std::uint32_t hht_prefetch_queue = 16;   ///< pending fill targets per system
  /// Per-channel overrides; empty = every channel inherits the top-level
  /// arbiter knobs. Non-empty must have exactly `channels` entries.
  std::vector<TopologyNodeConfig> nodes;

  /// Do requests route through per-tile lanes (edges with their own
  /// service step) before reaching the shared level?
  bool routed() const { return tile_l1_enabled || link_bandwidth != 0; }

  /// Anything beyond the flat single-arbiter SRAM?
  bool hierarchical() const {
    return channels > 1 || routed() || link_latency != 0 ||
           hht_prefetch_enabled || !nodes.empty();
  }

  std::uint32_t channelOf(Addr addr) const {
    return channels == 1 ? 0u : (addr / interleave_bytes) % channels;
  }

  void validate() const {
    using sim::ErrorKind;
    using sim::SimError;
    if (channels < 1 || channels > 16) {
      throw SimError(ErrorKind::Config, "mem",
                     "topology.channels must be in [1, 16], got " +
                         std::to_string(channels));
    }
    if (interleave_bytes < 4 ||
        (interleave_bytes & (interleave_bytes - 1)) != 0) {
      throw SimError(ErrorKind::Config, "mem",
                     "topology.interleave_bytes must be a power of two >= 4");
    }
    if (!nodes.empty() && nodes.size() != channels) {
      throw SimError(ErrorKind::Config, "mem",
                     "topology.nodes must be empty or have exactly "
                     "`channels` entries (" +
                         std::to_string(nodes.size()) + " vs " +
                         std::to_string(channels) + ")");
    }
    if (hht_prefetch_enabled && !tile_l1_enabled) {
      throw SimError(ErrorKind::Config, "mem",
                     "topology.hht_prefetch_enabled requires tile_l1_enabled "
                     "(prefetches fill the tile-local L1)");
    }
    if (hht_prefetch_enabled &&
        (hht_prefetch_degree == 0 || hht_prefetch_queue == 0)) {
      throw SimError(ErrorKind::Config, "mem",
                     "topology.hht_prefetch_enabled requires degree >= 1 and "
                     "queue >= 1");
    }
    if (tile_l1_enabled && interleave_bytes < tile_l1.line_bytes) {
      throw SimError(ErrorKind::Config, "mem",
                     "topology.interleave_bytes must be >= tile_l1.line_bytes "
                     "(a line fill must not straddle two channels)");
    }
  }
};

}  // namespace hht::mem
