#pragma once

#include <cstdint>
#include <string>

#include "sim/types.h"

namespace hht::mem {

using sim::Addr;
using sim::Cycle;

/// Role of the agent issuing a memory request. Together with the tile id a
/// role identifies one arbiter port; the arbiter's policies and the
/// per-requester statistics key off the pair.
enum class Requester : std::uint8_t { Cpu = 0, Hht = 1 };

inline const char* requesterName(Requester r) {
  return r == Requester::Cpu ? "cpu" : "hht";
}

/// Handle used to poll for request completion.
using RequestId = std::uint64_t;

inline constexpr RequestId kInvalidRequest = 0;

/// A completed memory response. `poisoned` marks data the controller's ECC
/// detected as corrupt but could not repair within its bounded retry budget;
/// consumers must not use the payload (cores machine-check, the HHT raises
/// a MemUncorrectable fault).
struct MemResponse {
  std::uint32_t data = 0;
  bool poisoned = false;
};

/// One element-sized access to the simulated memory system.
///
/// All simulated traffic is element-granular (1/2/4-byte scalars, or 4-byte
/// beats of vector transfers) — matching the paper's MCU integration where
/// the on-chip RAM is word-addressed with no cache lines in the way.
struct MemAccess {
  Addr addr = 0;
  std::uint32_t size = 4;     ///< bytes: 1, 2 or 4
  bool is_write = false;
  std::uint32_t wdata = 0;    ///< write payload (low `size` bytes)
  Requester requester = Requester::Cpu;
  /// Which {CPU+HHT} tile issued the access (multi-tile scale-out; 0 in a
  /// single-tile system, so single-tile call sites never mention it).
  std::uint8_t tile = 0;
};

// --- flat requester indexing (multi-tile arbitration) ---
//
// The arbiter sees 2*num_tiles independent ports, one per {tile, role}
// pair, numbered tile*2 + role so tile 0 keeps the historic indices
// (cpu=0, hht=1) and every single-tile stat name is unchanged.

inline std::uint32_t requesterIndex(Requester role, std::uint32_t tile) {
  return tile * 2u + static_cast<std::uint32_t>(role);
}

inline std::uint32_t requesterIndex(const MemAccess& a) {
  return requesterIndex(a.requester, a.tile);
}

inline Requester requesterRole(std::uint32_t index) {
  return static_cast<Requester>(index & 1u);
}

inline std::uint32_t requesterTile(std::uint32_t index) { return index >> 1; }

/// Stat-name label of a flat requester index: "cpu"/"hht" on tile 0 (the
/// historic names), "t<N>.cpu"/"t<N>.hht" on the others.
inline std::string requesterLabel(std::uint32_t index) {
  const char* who = requesterName(requesterRole(index));
  const std::uint32_t tile = requesterTile(index);
  return tile == 0 ? std::string(who)
                   : "t" + std::to_string(tile) + "." + who;
}

}  // namespace hht::mem
