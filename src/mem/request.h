#pragma once

#include <cstdint>

#include "sim/types.h"

namespace hht::mem {

using sim::Addr;
using sim::Cycle;

/// Who issued a memory request. The arbiter's CPU-priority policy and the
/// per-requester statistics key off this.
enum class Requester : std::uint8_t { Cpu = 0, Hht = 1 };

inline const char* requesterName(Requester r) {
  return r == Requester::Cpu ? "cpu" : "hht";
}

/// Handle used to poll for request completion.
using RequestId = std::uint64_t;

inline constexpr RequestId kInvalidRequest = 0;

/// A completed memory response. `poisoned` marks data the controller's ECC
/// detected as corrupt but could not repair within its bounded retry budget;
/// consumers must not use the payload (cores machine-check, the HHT raises
/// a MemUncorrectable fault).
struct MemResponse {
  std::uint32_t data = 0;
  bool poisoned = false;
};

/// One element-sized access to the simulated memory system.
///
/// All simulated traffic is element-granular (1/2/4-byte scalars, or 4-byte
/// beats of vector transfers) — matching the paper's MCU integration where
/// the on-chip RAM is word-addressed with no cache lines in the way.
struct MemAccess {
  Addr addr = 0;
  std::uint32_t size = 4;     ///< bytes: 1, 2 or 4
  bool is_write = false;
  std::uint32_t wdata = 0;    ///< write payload (low `size` bytes)
  Requester requester = Requester::Cpu;
};

}  // namespace hht::mem
