#include "mem/cache.h"

#include <bit>
#include <stdexcept>

namespace hht::mem {

Cache::Cache(const CacheConfig& config) : config_(config) {
  if (config_.line_bytes == 0 || !std::has_single_bit(config_.line_bytes)) {
    throw std::invalid_argument("cache line size must be a power of two");
  }
  if (config_.ways == 0) {
    throw std::invalid_argument("cache must have at least one way");
  }
  const std::uint32_t lines_total = config_.size_bytes / config_.line_bytes;
  if (lines_total == 0 || lines_total % config_.ways != 0) {
    throw std::invalid_argument("cache size/line/ways combination invalid");
  }
  num_sets_ = lines_total / config_.ways;
  if (!std::has_single_bit(num_sets_)) {
    throw std::invalid_argument("cache set count must be a power of two");
  }
  lines_.assign(static_cast<std::size_t>(num_sets_) * config_.ways, Line{});
}

Cycle Cache::access(Addr addr, bool is_write) {
  ++access_counter_;
  last_missed_ = false;
  const std::uint64_t block = addr / config_.line_bytes;
  const std::uint32_t set = static_cast<std::uint32_t>(block) & (num_sets_ - 1);
  const std::uint64_t tag = block / num_sets_;
  Line* set_base = lines_.data() + static_cast<std::size_t>(set) * config_.ways;

  // Hit path.
  for (std::uint32_t w = 0; w < config_.ways; ++w) {
    Line& line = set_base[w];
    if (line.valid && line.tag == tag) {
      line.lru_stamp = access_counter_;
      line.dirty |= is_write;
      ++hits_;
      return config_.hit_latency;
    }
  }

  // Miss: pick the LRU victim (preferring an invalid way).
  ++misses_;
  last_missed_ = true;
  Line* victim = set_base;
  for (std::uint32_t w = 0; w < config_.ways; ++w) {
    Line& line = set_base[w];
    if (!line.valid) {
      victim = &line;
      break;
    }
    if (line.lru_stamp < victim->lru_stamp) victim = &line;
  }

  Cycle latency = config_.hit_latency + config_.miss_penalty;
  if (victim->valid && victim->dirty) {
    latency += config_.writeback_penalty;
    ++writebacks_;
  }
  victim->valid = true;
  victim->tag = tag;
  victim->dirty = is_write;  // write-allocate
  victim->lru_stamp = access_counter_;
  return latency;
}

bool Cache::install(Addr addr) {
  ++access_counter_;
  const std::uint64_t block = addr / config_.line_bytes;
  const std::uint32_t set = static_cast<std::uint32_t>(block) & (num_sets_ - 1);
  const std::uint64_t tag = block / num_sets_;
  Line* set_base = lines_.data() + static_cast<std::size_t>(set) * config_.ways;
  for (std::uint32_t w = 0; w < config_.ways; ++w) {
    if (set_base[w].valid && set_base[w].tag == tag) return false;
  }
  Line* victim = set_base;
  for (std::uint32_t w = 0; w < config_.ways; ++w) {
    Line& line = set_base[w];
    if (!line.valid) {
      victim = &line;
      break;
    }
    if (line.lru_stamp < victim->lru_stamp) victim = &line;
  }
  if (victim->valid && victim->dirty) ++writebacks_;
  victim->valid = true;
  victim->tag = tag;
  victim->dirty = false;
  victim->lru_stamp = access_counter_;
  ++prefetch_fills_;
  return true;
}

bool Cache::contains(Addr addr) const {
  const std::uint64_t block = addr / config_.line_bytes;
  const std::uint32_t set = static_cast<std::uint32_t>(block) & (num_sets_ - 1);
  const std::uint64_t tag = block / num_sets_;
  const Line* set_base =
      lines_.data() + static_cast<std::size_t>(set) * config_.ways;
  for (std::uint32_t w = 0; w < config_.ways; ++w) {
    if (set_base[w].valid && set_base[w].tag == tag) return true;
  }
  return false;
}

void Cache::flush() {
  for (Line& line : lines_) line = Line{};
}

}  // namespace hht::mem
