#pragma once

#include <cstdint>

#include "mem/request.h"
#include "sim/types.h"

namespace hht::mem {

using sim::Addr;

/// Result of an MMIO read attempt. A device may refuse to answer this cycle
/// (`ready == false`), in which case the memory system keeps the load
/// pending and retries every cycle — this is exactly the HHT front-end's
/// "stall the CPU load until a buffer is ready" behaviour (§3.1).
struct MmioReadResult {
  bool ready = false;
  std::uint32_t data = 0;
};

/// A memory-mapped device occupying an address window.
///
/// Offsets passed to the hooks are relative to the device's base address.
/// Writes are posted (always accepted, complete in one cycle) — the MMRs of
/// §3.1 are plain configuration registers.
class MmioDevice {
 public:
  virtual ~MmioDevice() = default;

  /// Attempt a read of `size` bytes at `offset`. Return ready=false to
  /// stall the requester; the call is repeated each cycle until ready.
  /// `who` distinguishes the primary core from a device-side micro-core
  /// (the programmable HHT's firmware talks to the FE through the same
  /// window).
  virtual MmioReadResult mmioRead(Addr offset, std::uint32_t size,
                                  Requester who) = 0;

  /// Posted write of `size` bytes at `offset`.
  virtual void mmioWrite(Addr offset, std::uint32_t size, std::uint32_t value,
                         Requester who) = 0;
};

}  // namespace hht::mem
