#pragma once

#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "mem/cache.h"
#include "mem/mmio.h"
#include "mem/request.h"
#include "mem/sram.h"
#include "mem/topology.h"
#include "obs/trace.h"
#include "sim/fault.h"
#include "sim/stats.h"
#include "sim/types.h"

namespace hht::mem {

using sim::Cycle;
using sim::StatSet;

/// Arbitration policy when requesters compete for the same-cycle SRAM
/// grant slots.
enum class ArbiterPolicy : std::uint8_t {
  CpuPriority,  ///< paper design: never add latency to the primary core
  RoundRobin,   ///< fair rotation over all 2*num_tiles requesters
};

struct MemorySystemConfig {
  std::size_t sram_bytes = 1u << 20;      ///< Table 1: RAM size = 1 MB
  Cycle sram_latency = 1;                  ///< cycles from grant to data
  std::uint32_t grants_per_cycle = 2;      ///< SRAM bandwidth (ports/banks)
  ArbiterPolicy policy = ArbiterPolicy::CpuPriority;
  /// Number of {CPU+HHT} tiles sharing this memory system (scale-out,
  /// DESIGN.md §13). Each tile contributes two arbiter ports (requester
  /// indices tile*2 and tile*2+1) and owns its own MMIO window at
  /// mmio_base + tile*mmio_size. 1 = the paper's single-tile machine.
  std::uint32_t num_tiles = 1;
  /// CpuPriority starvation bound: maximum consecutive CPU-role grants
  /// issued while an HHT-role request was left waiting before the arbiter
  /// forces one grant to the oldest waiting HHT request. Unbounded CPU
  /// priority (0) can defer HHT grants indefinitely under a saturating
  /// CPU stream — a real deadlock risk once the CPU itself spins on an
  /// HHT FIFO that cannot fill because the BE never gets a grant. The
  /// default is far above anything the paper's workloads produce, so
  /// Table-1 results are unchanged. Ignored under RoundRobin.
  std::uint32_t cpu_starvation_limit = 64;
  bool cpu_cache_enabled = false;          ///< L1D on the CPU path (§3.2 HP integration)
  bool hht_cache_enabled = false;          ///< let the HHT BE hit the same-level cache
  CacheConfig cache;
  /// Next-line stream prefetcher on the CPU's L1D (requires
  /// cpu_cache_enabled): each demand miss queues the following
  /// `prefetch_degree` lines, filled using *spare* SRAM grant slots. This
  /// is the "traditional prefetcher" of §2 — it recovers streaming misses
  /// (rows/cols/vals) but cannot anticipate the v[cols[k]] indirection.
  bool prefetch_enabled = false;
  std::uint32_t prefetch_degree = 2;
  /// Background patrol scrubber (DESIGN.md §15): a lowest-priority
  /// requester class that walks the SRAM one ECC word per scrub_period
  /// cycles using *spare* arbitration slots only (demand traffic and the
  /// prefetcher always win), correcting latent single-bit flips before a
  /// second flip in the same word makes them uncorrectable. Excluded from
  /// the snapshot config fingerprint (same discipline as host_fastforward):
  /// scrubbing is an integrity knob, not a different machine, and with no
  /// latent faults registered it never changes an architectural outcome.
  bool scrub_enabled = false;
  Cycle scrub_period = 64;  ///< cycles between patrol reads
  Addr mmio_base = 0xF000'0000u;
  Addr mmio_size = 0x1'0000u;
  /// Shared chunk-queue work-stealing device (DESIGN.md §18): adds one
  /// extra MMIO window at index num_tiles for a ChunkQueueDevice that
  /// tiles claim row chunks from. Architectural (the claim schedule is
  /// part of machine behaviour), so it is covered by the snapshot config
  /// fingerprint — unlike host-only knobs such as host_fastforward.
  bool work_queue_enabled = false;
  /// Memory topology (DESIGN.md §17): per-tile L1 + interleaved shared
  /// channels behind latency/bandwidth links. The default is the flat
  /// single-arbiter SRAM, bit-identical to the pre-topology machine.
  TopologyConfig topology;

  std::uint32_t numRequesters() const { return 2 * num_tiles; }

  /// MMIO windows: one per tile, plus the shared work-queue window when
  /// enabled (window index num_tiles).
  std::uint32_t numMmioWindows() const {
    return num_tiles + (work_queue_enabled ? 1u : 0u);
  }

  /// Reject obviously-broken configurations with SimError(Config). Called
  /// by SystemConfig::validate(); standalone users may call it directly.
  void validate() const;
};

/// The simulated memory system: a composable topology of bank-set nodes
/// behind bandwidth-limited arbiters, shared by the CPU and HHT ports of
/// every tile, plus per-tile MMIO windows routed to registered devices.
///
/// The flat default is the paper machine: one node (the 1 MB on-chip SRAM)
/// behind one arbiter. Hierarchical configurations (TopologyConfig) add
/// per-tile L1s, K address-interleaved channels each with its own arbiter,
/// latency/bandwidth tile<->channel links and an HHT stride prefetcher —
/// all timing-only: functional data always lives in the single Sram, so
/// every topology is output-identical to flat, and the flat topology is
/// bit-identical (grant schedule, stats, snapshot bytes) to the
/// pre-topology implementation.
///
/// Usage per cycle (strict order): requesters call submit() during their
/// tick; MemorySystem::tick() then arbitrates, applies latencies and marks
/// completions; requesters observe completion the following cycle via
/// takeCompleted(). MMIO does not consume SRAM grant slots (the FE sits on
/// the CPU's port, §3.1).
class MemorySystem {
 public:
  explicit MemorySystem(const MemorySystemConfig& config);

  /// Queue an access; returns a handle to poll with takeResponse(). The
  /// access is validated here — misaligned, oversized, out-of-SRAM or
  /// window-crossing MMIO accesses throw SimError(Memory) at submit time
  /// rather than corrupting state deeper in the pipeline.
  ///
  /// Request ids are drawn from per-requester streams (id = seq *
  /// numRequesters + requesterIndex + 1), so the id a requester receives
  /// depends only on its own submission history — never on how its
  /// submissions interleave with other tiles'. That property is what lets
  /// the threaded multi-tile epoch loop (DESIGN.md §16) allocate ids from
  /// concurrent workers and still match the serial schedule bit for bit.
  RequestId submit(const MemAccess& access);

  /// Epoch staging (threaded MultiTileSystem, DESIGN.md §16). Between
  /// beginStagedSubmission() and endStagedSubmission(), submit() validates,
  /// allocates the id and bumps the per-requester counters as usual but
  /// parks the access in a per-requester staging lane instead of the shared
  /// queues; submit() is then safe to call concurrently from different
  /// requesters (each touches only its own lane/counters). After the epoch
  /// barrier, drainStagedSubmissions() moves the staged accesses into the
  /// real queues in the canonical serial arrival order — every HHT-role
  /// lane in tile order, then every CPU-role lane in tile order — exactly
  /// the order the serial loop (all device ticks, then all core ticks)
  /// would have produced.
  void beginStagedSubmission();
  void drainStagedSubmissions();
  void endStagedSubmission();

  /// If request `id` has completed, consume it and return the response
  /// (data is zero for writes). Poison-aware consumers (cores, walkers)
  /// use this. Otherwise std::nullopt. Defined below, inline: every
  /// consumer polls this once per pending request per cycle, and the
  /// common miss (empty completed_) must cost a load and a branch.
  std::optional<MemResponse> takeResponse(RequestId id);

  /// Legacy convenience: like takeResponse but returns the bare data.
  /// Throws SimError(Memory) if the response was poisoned — callers that
  /// can recover must use takeResponse instead.
  std::optional<std::uint32_t> takeCompleted(RequestId id);

  /// Advance one cycle: service tile lanes (L1 lookups, link-bandwidth
  /// metering), arbitrate each channel's grants, retry MMIO reads, retire
  /// in-flight accesses whose latency elapsed.
  void tick(Cycle now);

  /// Register the device behind MMIO window `tile` (offset tile*mmio_size
  /// from mmio_base). Valid windows are the per-tile ones plus, with
  /// work_queue_enabled, the shared work-queue window at index num_tiles.
  /// Attaching a second device to the same window (or a null one, or to a
  /// window >= numMmioWindows()) throws SimError(Mmio) — a silently-
  /// replaced device window is a wiring bug, never intentional.
  void attachMmioDevice(MmioDevice* device, std::uint32_t tile = 0);

  /// Attach a structured trace sink (obs layer). Host-side observation
  /// only: arbitration grants (with queue depth), bank-conflict tallies and
  /// active/drained occupancy transitions. Never serialized, never
  /// consulted by simulated logic.
  void setTraceSink(obs::TraceSink* sink) {
    trace_ = sink;
    trace_bucket_ = obs::kNoBucket;
  }

  /// Wire the fault injector for tile 0 (nullptr = no injection, zero
  /// cost). Injection applies to SRAM read grants: bit flips (detected by
  /// ECC and retried up to FaultConfig::ecc_retry_limit times, else
  /// poisoned), dropped responses (controller re-request after
  /// drop_penalty_cycles) and delayed responses.
  void setFaultInjector(sim::FaultInjector* injector) {
    injectors_[0] = injector;
  }

  /// Per-tile injector wiring (multi-tile fault containment: each tile's
  /// SRAM read traffic draws from its own seeded injector, so one tile's
  /// fault history never perturbs another's). Tile 0 via the single-arg
  /// overload is identical to setTileFaultInjector(0, ...).
  void setTileFaultInjector(std::uint32_t tile, sim::FaultInjector* injector) {
    if (tile >= config_.num_tiles) {
      throw sim::SimError(sim::ErrorKind::Config, "mem",
                          "setTileFaultInjector: tile " + std::to_string(tile) +
                              " out of range (num_tiles=" +
                              std::to_string(config_.num_tiles) + ")");
    }
    injectors_[tile] = injector;
  }

  /// Drop every queued and in-flight access (graceful-degradation path:
  /// the harness aborts a faulted run and re-runs on the software
  /// baseline; stale responses must not leak into the rerun).
  void cancelAll();

  /// Multi-line queue/in-flight snapshot for diagnostic dumps.
  std::string describeState() const;

  bool isMmio(Addr addr) const {
    return addr >= config_.mmio_base &&
           addr - config_.mmio_base <
               static_cast<Addr>(config_.numMmioWindows()) * config_.mmio_size;
  }

  /// True when `addr` falls in the shared work-queue window (the extra
  /// window at index num_tiles, present only with work_queue_enabled).
  /// Lets the CPU stall profiler split queue-wait from FIFO-wait.
  bool isWorkQueue(Addr addr) const {
    return config_.work_queue_enabled &&
           addr >= config_.mmio_base +
                       static_cast<Addr>(config_.num_tiles) *
                           config_.mmio_size &&
           addr - config_.mmio_base <
               static_cast<Addr>(config_.numMmioWindows()) * config_.mmio_size;
  }

  /// MMIO window base of tile `tile` (each tile's HHT FE occupies its own
  /// mmio_size-byte window).
  Addr mmioBaseOf(std::uint32_t tile) const {
    return config_.mmio_base + tile * config_.mmio_size;
  }

  /// True when no request is queued or in flight (used by run loops to
  /// detect quiescence). Only called from serial loop contexts (never from
  /// inside a threaded epoch's parallel phase), so scanning the per-
  /// requester completed lanes is race-free; with <= 2*16 lanes it is also
  /// a trivial cost. Prefetch fill queues are deliberately excluded —
  /// abandoned prefetches at quiescence are harmless (timing-only fills).
  bool idle() const {
    if (!mmio_queue_.empty() || !in_flight_.empty()) return false;
    for (const ChannelState& ch : channels_) {
      if (!ch.queue.empty()) return false;
    }
    for (const auto& lane : tile_lanes_) {
      if (!lane.empty()) return false;
    }
    for (const auto& lane : completed_) {
      if (!lane.empty()) return false;
    }
    return true;
  }

  /// True when tick() must run next cycle regardless of in-flight latency:
  /// queued SRAM/MMIO/lane work awaits arbitration, or a prefetcher holds
  /// fill candidates. The event-scheduled loop consults this after the
  /// device/core phase, because a submit *this* cycle makes the memory
  /// system due the same cycle (nextEventCycle() snapshots are stale by
  /// then).
  bool pendingArbitration() const {
    if (!mmio_queue_.empty() || !prefetch_queue_.empty() ||
        !hht_pf_queue_.empty()) {
      return true;
    }
    for (const ChannelState& ch : channels_) {
      if (!ch.queue.empty()) return true;
    }
    for (const auto& lane : tile_lanes_) {
      if (!lane.empty()) return true;
    }
    return false;
  }

  /// True while any MMIO access is queued (retried every cycle until the
  /// device window accepts it).
  bool mmioPending() const { return !mmio_queue_.empty(); }

  /// Any completed-but-unclaimed response on `role`/`tile`'s lane? One load
  /// and a compare: consumers with several outstanding requests check this
  /// before their per-pending poll scans, collapsing the common quiet-cycle
  /// case to a single branch.
  bool hasResponses(Requester role, std::uint32_t tile) const {
    return !completed_[requesterIndex(role, tile)].empty();
  }

  /// Quiescence protocol (DESIGN.md §11): first cycle (> now) at which a
  /// consumer polling takeResponse(id) can succeed. A completed response is
  /// consumable next cycle; an in-flight one the cycle after its latency
  /// elapses (components tick before the memory system, so the grant cycle
  /// itself is never consumable); anything still queued conservatively
  /// polls next cycle.
  Cycle responseReadyCycle(RequestId id, Cycle now) const;

  /// Earliest future cycle (> now) at which tick() can change state:
  /// next cycle while anything is queued on any node or lane (arbitration
  /// runs every tick), else the earliest in-flight completion, else
  /// sim::kNeverCycle. Pure-stall ticks mutate nothing, so there is no
  /// skipCycles().
  Cycle nextEventCycle(Cycle now) const;

  Sram& sram() { return sram_; }
  const Sram& sram() const { return sram_; }
  const MemorySystemConfig& config() const { return config_; }
  StatSet& stats() { return stats_; }
  const StatSet& stats() const { return stats_; }
  const Cache* cpuCache() const { return cpu_cache_.get(); }
  const Cache* hhtCache() const { return hht_cache_.get(); }
  /// Tile-local L1 (nullptr when topology.tile_l1_enabled is off).
  const Cache* tileL1(std::uint32_t tile) const {
    return tile < tile_l1_.size() ? tile_l1_[tile].get() : nullptr;
  }

  /// Export cache counters into stats() (called by run loops at the end).
  void finalizeStats();

  /// Checkpoint hooks: serialize the complete run state (SRAM contents,
  /// cache tag state, all queues — per-channel and per-tile-lane — the
  /// in-flight and completed responses, the request-id allocator, every
  /// node's arbiter turn and the prefetcher state). Topology-only sections
  /// are config-implied (the snapshot fingerprint pins the config), so the
  /// flat layout's bytes are identical to the pre-topology format v6. The
  /// MMIO device pointer and fault injector are wiring, re-established by
  /// the owning System.
  void serialize(sim::StateWriter& w) const;
  void deserialize(sim::StateReader& r);

 private:
  struct Pending {
    RequestId id;
    MemAccess access;
    /// Latency already determined by the tile L1 lookup (miss path):
    /// carried to the channel grant so the fill charges the L1's miss
    /// penalty instead of the raw sram_latency. 0 = no L1 on this path.
    Cycle l1_latency = 0;
  };
  struct InFlight {
    RequestId id;
    Cycle done_at;
    std::uint32_t data;
    bool poisoned = false;
  };
  /// One topology node: a bank set with its own queue and arbiter state.
  /// The flat topology has exactly one, reproducing the legacy single
  /// arbiter bit for bit.
  struct ChannelState {
    std::vector<Pending> queue;
    std::uint32_t rr_next = 0;
    std::uint32_t prio_next[2] = {0, 0};  ///< indexed by role
    std::uint64_t cpu_streak = 0;
    // Resolved config (top-level knobs + per-node overrides).
    std::uint32_t grants_per_cycle = 0;
    Cycle extra_latency = 0;
    // Transient per-tick slot budget (not serialized).
    std::uint32_t slots_left = 0;
    // Per-channel counters, created only on multi-channel topologies so
    // flat stat sets (and snapshots) are unchanged.
    std::uint64_t* grants = nullptr;
    std::uint64_t* conflict_cycles = nullptr;
  };
  /// Per-tile stride detector over the HHT demand-read stream.
  struct StrideState {
    Addr last_addr = 0;
    std::int64_t last_stride = 0;
    std::uint32_t confidence = 0;
  };
  struct PrefetchTarget {
    Addr line;
    std::uint8_t tile;
  };

  void routeDemand(const Pending& pending);
  void grant(const Pending& pending, Cycle now, ChannelState& ch,
             std::uint32_t ch_index);
  /// Service the per-tile lanes (hierarchical routed topologies): L1
  /// lookups complete hits locally; misses forward to their channel. At
  /// most link_bandwidth entries per tile per cycle (0 = all).
  void serviceLanes(Cycle now);
  /// Local completion off a tile-L1 hit: data comes from the backing Sram
  /// (with at-rest SECDED applied — a latent flip under a cached line is
  /// still corrected or contained), no shared-level grant consumed, no
  /// fault-injector draw (injection models the SRAM read port).
  void completeLocal(const Pending& pending, Cycle latency, Cycle now);
  /// At-rest SECDED check for a demand read (DESIGN.md §15): corrects a
  /// single latent flip in flight, delivers >=2 flips as poisoned data.
  void applySecded(const MemAccess& a, std::uint32_t& data, bool& poisoned);
  /// Observe one HHT demand read for the stride prefetcher; queue
  /// predicted line fills once confidence is established.
  void observeHhtStride(std::uint32_t tile, Addr addr, Cycle now);
  void emitPrefetchEvent(Cycle now, Addr line, std::uint32_t tile,
                         std::uint64_t action);
  /// One patrol read: inspect the word under the scrub pointer, correct a
  /// single latent flip (clear the cell), count an uncorrectable pair, and
  /// advance the pointer (wrapping). Costs one spare grant slot on the
  /// word's owning channel; never touches demand queues/in_flight_ (so
  /// idle() and the demand-grant watchdog signal are unaffected) and never
  /// bumps mem.grants.
  void scrubStep(Cycle now);
  void traceTick(Cycle now);
  /// Pick the flat requester index to grant `ch`'s current slot (ch.queue
  /// must be non-empty). Implements both policies over M requesters,
  /// including the CpuPriority starvation bound; rotation state is per
  /// node, so channels arbitrate independently.
  std::uint32_t pickRequester(ChannelState& ch, std::uint64_t present);

  MemorySystemConfig config_;
  std::uint32_t num_requesters_;
  Sram sram_;
  std::unique_ptr<Cache> cpu_cache_;
  std::unique_ptr<Cache> hht_cache_;
  /// Tile-local L1s (topology.tile_l1_enabled; empty otherwise).
  std::vector<std::unique_ptr<Cache>> tile_l1_;
  std::vector<MmioDevice*> mmio_devices_;  ///< one window per tile
  std::vector<sim::FaultInjector*> injectors_;  ///< one (optional) per tile

  /// Topology nodes. channels_[k].queue is arrival-ordered (arrival order
  /// IS the arbitration tiebreak and the serialized format); all queues
  /// stay short and are scanned every cycle, so contiguous storage wins
  /// over std::deque. Flat = exactly one channel.
  std::vector<ChannelState> channels_;
  /// Per-tile edge lanes (routed topologies only; empty when flat). A
  /// submitted SRAM access waits here for its tile's link slot, takes its
  /// L1 lookup, and either completes locally or forwards to its channel.
  std::vector<std::vector<Pending>> tile_lanes_;
  std::vector<Pending> mmio_queue_;
  std::vector<Addr> prefetch_queue_;  ///< CPU L1D line fills awaiting spare slots
  /// HHT stride-prefetcher fill targets awaiting spare channel slots.
  std::vector<PrefetchTarget> hht_pf_queue_;
  std::vector<StrideState> hht_pf_;  ///< per-tile detectors
  /// Lines installed by the prefetcher and not yet demanded (per tile,
  /// bounded): first demand hit counts `useful` and untracks.
  std::vector<std::vector<Addr>> hht_pf_tracked_;
  std::vector<InFlight> in_flight_;
  /// Unclaimed responses, one lane per requester (lane = (id-1) %
  /// numRequesters, well-defined because ids are per-requester streams).
  /// Per-lane storage keeps takeResponse() scanning only the caller's own
  /// handful of entries — and makes concurrent polls from different tiles
  /// race-free during the threaded epoch's parallel phase. Each lane stays
  /// in retirement order.
  std::vector<std::vector<std::pair<RequestId, MemResponse>>> completed_;

  /// Per-requester next sequence numbers (id = seq*R + who + 1); replaces
  /// the old global next_id_ counter (snapshot v6).
  std::vector<RequestId> next_seq_;
  /// Epoch staging lanes (host-only, always drained before any snapshot or
  /// idle() decision; never serialized).
  std::vector<std::vector<Pending>> stage_;
  bool staging_ = false;
  /// Patrol-scrubber walk state (serialized, snapshot v5): next word to
  /// inspect and the cycle its next read becomes due.
  Addr scrub_addr_ = 0;
  Cycle next_scrub_cycle_ = 0;
  StatSet stats_;

  // Host-only trace state (not serialized).
  obs::TraceSink* trace_ = nullptr;
  std::uint8_t trace_bucket_ = obs::kNoBucket;

  // Hot-path counters cached once (StatSet references are stable); indexed
  // by flat requester index (tile*2 + role).
  std::vector<std::uint64_t*> reads_;
  std::vector<std::uint64_t*> writes_;
  std::vector<std::uint64_t*> mmio_requests_;
  std::vector<std::uint64_t*> conflict_cycles_;
  std::vector<std::uint64_t*> grants_by_;  ///< per-requester grant counters
  std::uint64_t* grants_;  ///< watchdog progress signal
  std::uint64_t* forced_rotations_;  ///< starvation-bound interventions
  std::uint64_t* ecc_detected_;
  std::uint64_t* ecc_retries_;
  std::uint64_t* ecc_corrected_;
  std::uint64_t* ecc_uncorrectable_;
  std::uint64_t* drop_recoveries_;
  std::uint64_t* delayed_responses_;
  std::uint64_t* prefetch_fills_;
  std::uint64_t* scrub_reads_;            ///< == patrol grants issued
  std::uint64_t* scrub_corrected_;
  std::uint64_t* scrub_uncorrectable_;
  std::uint64_t* scrub_conflict_cycles_;  ///< due but no spare slot
  std::uint64_t* secded_demand_corrected_;
  std::uint64_t* secded_demand_uncorrectable_;
  // HHT prefetcher stat block (created only when enabled, so flat stat
  // sets and snapshots are unchanged). Final stat names after absorption:
  // hht.prefetch.{issued,useful,late,dropped}.
  std::uint64_t* hpf_issued_ = nullptr;
  std::uint64_t* hpf_useful_ = nullptr;
  std::uint64_t* hpf_late_ = nullptr;
  std::uint64_t* hpf_dropped_ = nullptr;
};

inline std::optional<MemResponse> MemorySystem::takeResponse(RequestId id) {
  auto& lane = completed_[(id - 1) % num_requesters_];
  for (std::size_t i = 0; i < lane.size(); ++i) {
    if (lane[i].first == id) {
      const MemResponse response = lane[i].second;
      lane.erase(lane.begin() + static_cast<std::ptrdiff_t>(i));
      return response;
    }
  }
  return std::nullopt;
}

}  // namespace hht::mem
