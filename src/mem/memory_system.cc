#include "mem/memory_system.h"

#include <algorithm>
#include <bit>
#include <sstream>

#include "sim/log.h"

namespace hht::mem {

namespace {
// kHhtPrefetch payload actions (trace.h).
constexpr std::uint64_t kPfIssued = 0;
constexpr std::uint64_t kPfFilled = 1;
constexpr std::uint64_t kPfUseful = 2;
constexpr std::uint64_t kPfLate = 3;
constexpr std::uint64_t kPfDropped = 4;
// Bound on per-tile tracked prefetched lines (useful-accounting only).
constexpr std::size_t kMaxTrackedLines = 64;
}  // namespace

void MemorySystemConfig::validate() const {
  using sim::ErrorKind;
  using sim::SimError;
  if (sram_bytes < 16) {
    throw SimError(ErrorKind::Config, "mem", "sram_bytes too small");
  }
  if (grants_per_cycle == 0) {
    throw SimError(ErrorKind::Config, "mem",
                   "grants_per_cycle must be >= 1 (zero-bandwidth SRAM "
                   "can never complete an access)");
  }
  if (prefetch_enabled && !cpu_cache_enabled) {
    throw SimError(ErrorKind::Config, "mem",
                   "prefetch_enabled requires cpu_cache_enabled (the "
                   "prefetcher fills L1D lines)");
  }
  if (prefetch_enabled && prefetch_degree == 0) {
    throw SimError(ErrorKind::Config, "mem",
                   "prefetch_enabled requires prefetch_degree >= 1");
  }
  if (mmio_size == 0) {
    throw SimError(ErrorKind::Config, "mem", "mmio_size must be non-zero");
  }
  if (scrub_enabled && scrub_period == 0) {
    throw SimError(ErrorKind::Config, "mem",
                   "scrub_enabled requires scrub_period >= 1");
  }
  if (scrub_enabled && sram_bytes % 4 != 0) {
    throw SimError(ErrorKind::Config, "mem",
                   "scrub_enabled requires a word-multiple sram_bytes (the "
                   "patrol walks 32-bit ECC words)");
  }
  if (mmio_base < sram_bytes) {
    throw SimError(ErrorKind::Config, "mem",
                   "MMIO window overlaps the SRAM address range");
  }
  if (num_tiles < 1 || num_tiles > 16) {
    throw SimError(ErrorKind::Config, "mem",
                   "num_tiles must be in [1, 16], got " +
                       std::to_string(num_tiles));
  }
  // All MMIO windows (per-tile plus the optional shared work-queue window)
  // must fit below the top of the address space.
  const std::uint64_t mmio_span =
      static_cast<std::uint64_t>(numMmioWindows()) * mmio_size;
  if (static_cast<std::uint64_t>(mmio_base) + mmio_span > 0x1'0000'0000ull) {
    throw SimError(ErrorKind::Config, "mem",
                   "MMIO windows wrap past the 32-bit address space: "
                   "base + numMmioWindows()*mmio_size overflows");
  }
  topology.validate();
  if (topology.tile_l1_enabled && (cpu_cache_enabled || hht_cache_enabled)) {
    throw SimError(ErrorKind::Config, "mem",
                   "topology.tile_l1_enabled conflicts with the flat "
                   "cpu/hht caches: two same-level caches would charge "
                   "every access twice");
  }
}

MemorySystem::MemorySystem(const MemorySystemConfig& config)
    : config_(config),
      num_requesters_(config.numRequesters()),
      sram_(config.sram_bytes),
      mmio_devices_(config.numMmioWindows(), nullptr),
      injectors_(config.num_tiles, nullptr) {
  reads_.resize(num_requesters_);
  writes_.resize(num_requesters_);
  mmio_requests_.resize(num_requesters_);
  conflict_cycles_.resize(num_requesters_);
  grants_by_.resize(num_requesters_);
  for (std::uint32_t r = 0; r < num_requesters_; ++r) {
    const std::string who = requesterLabel(r);
    reads_[r] = &stats_.counter("mem." + who + ".reads");
    writes_[r] = &stats_.counter("mem." + who + ".writes");
    mmio_requests_[r] = &stats_.counter("mem." + who + ".mmio_requests");
    conflict_cycles_[r] = &stats_.counter("mem." + who + ".conflict_cycles");
    grants_by_[r] = &stats_.counter("mem." + who + ".grants");
  }
  grants_ = &stats_.counter("mem.grants");
  forced_rotations_ = &stats_.counter("mem.arb.forced_rotations");
  ecc_detected_ = &stats_.counter("mem.ecc_detected");
  ecc_retries_ = &stats_.counter("mem.ecc_retries");
  ecc_corrected_ = &stats_.counter("mem.ecc_corrected");
  ecc_uncorrectable_ = &stats_.counter("mem.ecc_uncorrectable");
  drop_recoveries_ = &stats_.counter("mem.drop_recoveries");
  delayed_responses_ = &stats_.counter("mem.delayed_responses");
  prefetch_fills_ = &stats_.counter("mem.cpu.prefetch_fills");
  scrub_reads_ = &stats_.counter("mem.scrub.reads");
  scrub_corrected_ = &stats_.counter("mem.scrub.corrected");
  scrub_uncorrectable_ = &stats_.counter("mem.scrub.uncorrectable");
  scrub_conflict_cycles_ = &stats_.counter("mem.scrub.conflict_cycles");
  secded_demand_corrected_ = &stats_.counter("mem.secded.demand_corrected");
  secded_demand_uncorrectable_ =
      &stats_.counter("mem.secded.demand_uncorrectable");
  next_scrub_cycle_ = config_.scrub_period;
  next_seq_.resize(num_requesters_, 0);
  completed_.resize(num_requesters_);
  stage_.resize(num_requesters_);
  if (config_.cpu_cache_enabled) {
    cpu_cache_ = std::make_unique<Cache>(config_.cache);
  }
  if (config_.hht_cache_enabled) {
    hht_cache_ = std::make_unique<Cache>(config_.cache);
  }

  // Topology nodes: resolve each channel's arbiter knobs (top-level
  // defaults + per-node overrides). Flat = one node = the legacy arbiter.
  const TopologyConfig& topo = config_.topology;
  channels_.resize(topo.channels);
  for (std::uint32_t k = 0; k < topo.channels; ++k) {
    ChannelState& ch = channels_[k];
    const TopologyNodeConfig* node =
        topo.nodes.empty() ? nullptr : &topo.nodes[k];
    ch.grants_per_cycle =
        (node != nullptr && node->grants_per_cycle != 0)
            ? node->grants_per_cycle
            : config_.grants_per_cycle;
    ch.extra_latency = node != nullptr ? node->extra_latency : 0;
    if (topo.channels > 1) {
      const std::string prefix = "mem.ch" + std::to_string(k);
      ch.grants = &stats_.counter(prefix + ".grants");
      ch.conflict_cycles = &stats_.counter(prefix + ".conflict_cycles");
    }
  }
  if (topo.routed()) {
    tile_lanes_.resize(config_.num_tiles);
  }
  if (topo.tile_l1_enabled) {
    tile_l1_.reserve(config_.num_tiles);
    for (std::uint32_t t = 0; t < config_.num_tiles; ++t) {
      tile_l1_.push_back(std::make_unique<Cache>(topo.tile_l1));
    }
  }
  if (topo.hht_prefetch_enabled) {
    hht_pf_.resize(config_.num_tiles);
    hht_pf_tracked_.resize(config_.num_tiles);
    hpf_issued_ = &stats_.counter("hht.prefetch.issued");
    hpf_useful_ = &stats_.counter("hht.prefetch.useful");
    hpf_late_ = &stats_.counter("hht.prefetch.late");
    hpf_dropped_ = &stats_.counter("hht.prefetch.dropped");
  }
}

void MemorySystem::routeDemand(const Pending& pending) {
  if (!tile_lanes_.empty()) {
    // Routed topology: the access first crosses its tile's edge (link
    // bandwidth + L1 lookup happen at lane service).
    tile_lanes_[pending.access.tile].push_back(pending);
    return;
  }
  channels_[config_.topology.channelOf(pending.access.addr)].queue.push_back(
      pending);
}

RequestId MemorySystem::submit(const MemAccess& access) {
  using sim::ErrorKind;
  using sim::SimError;
  if (access.size != 1 && access.size != 2 && access.size != 4) {
    throw SimError(ErrorKind::Memory, requesterName(access.requester),
                   "oversized access: size=" + std::to_string(access.size) +
                       " at addr=" + std::to_string(access.addr),
                   {}, access.tile);
  }
  if (access.addr % access.size != 0) {
    throw SimError(ErrorKind::Memory, requesterName(access.requester),
                   "misaligned access: addr=" + std::to_string(access.addr) +
                       " size=" + std::to_string(access.size),
                   {}, access.tile);
  }
  if (access.tile >= config_.num_tiles) {
    throw SimError(ErrorKind::Memory, requesterName(access.requester),
                   "access from tile " + std::to_string(access.tile) +
                       " but the memory system has " +
                       std::to_string(config_.num_tiles) + " tile(s)",
                   {}, access.tile);
  }
  const std::uint32_t who = requesterIndex(access);
  const bool is_mmio = isMmio(access.addr);
  if (is_mmio) {
    // The access must stay inside its own tile's window: a straddling
    // access would silently touch the neighbouring tile's device.
    if ((access.addr - config_.mmio_base) % config_.mmio_size + access.size >
        config_.mmio_size) {
      throw SimError(ErrorKind::Memory, requesterName(access.requester),
                     "MMIO access crosses the window end: addr=" +
                         std::to_string(access.addr),
                     {}, access.tile);
    }
  } else if (!sram_.inBounds(access.addr, access.size)) {
    throw SimError(ErrorKind::Memory, requesterName(access.requester),
                   "SRAM access out of bounds: addr=" +
                       std::to_string(access.addr) +
                       " size=" + std::to_string(access.size) +
                       " sram_bytes=" + std::to_string(sram_.size()),
                   {}, access.tile);
  }
  // Per-requester id stream: the id depends only on this requester's own
  // submission count, never on cross-requester interleaving. +1 keeps ids
  // clear of kInvalidRequest.
  const RequestId id = next_seq_[who]++ * num_requesters_ + who + 1;
  if (is_mmio) {
    ++*mmio_requests_[who];
  } else {
    ++*(access.is_write ? writes_[who] : reads_[who]);
  }
  if (staging_) {
    // Threaded epoch: park in this requester's private lane; the epoch
    // barrier's drainStagedSubmissions() moves it into the shared queues
    // in canonical serial order. Everything touched on this path (seq,
    // counters, lane) is owned by `who`, so concurrent submits from
    // different requesters never race.
    stage_[who].push_back({id, access});
    return id;
  }
  if (is_mmio) {
    mmio_queue_.push_back({id, access});
  } else {
    routeDemand({id, access});
  }
  return id;
}

void MemorySystem::beginStagedSubmission() { staging_ = true; }

void MemorySystem::drainStagedSubmissions() {
  // Canonical serial arrival order: the serial multi-tile loop ticks every
  // device (HHT role, odd indices) in tile order, then every core (CPU
  // role, even indices) in tile order. Reproducing that order here makes
  // queue contents — and therefore arbitration history and snapshot bytes
  // — identical to the serial schedule.
  const auto drain_lane = [this](std::uint32_t who) {
    for (const Pending& p : stage_[who]) {
      if (isMmio(p.access.addr)) {
        mmio_queue_.push_back(p);
      } else {
        routeDemand(p);
      }
    }
    stage_[who].clear();
  };
  for (std::uint32_t who = 1; who < num_requesters_; who += 2) drain_lane(who);
  for (std::uint32_t who = 0; who < num_requesters_; who += 2) drain_lane(who);
}

void MemorySystem::endStagedSubmission() {
  drainStagedSubmissions();  // defensive: staged work must never be dropped
  staging_ = false;
}

std::optional<std::uint32_t> MemorySystem::takeCompleted(RequestId id) {
  auto response = takeResponse(id);
  if (!response) return std::nullopt;
  if (response->poisoned) {
    throw sim::SimError(sim::ErrorKind::Memory, "mem",
                        "poisoned response consumed through takeCompleted "
                        "(caller has no fault-handling path)");
  }
  return response->data;
}

void MemorySystem::applySecded(const MemAccess& a, std::uint32_t& data,
                               bool& poisoned) {
  if (sram_.latentCount() == 0) return;
  // At-rest SECDED (DESIGN.md §15). Sram::read returns the true data;
  // a word carrying one latent flip is corrected in flight (the cell
  // stays dirty until a write or the scrubber refreshes it), two or
  // more flips are uncorrectable: the observed (corrupted) bits are
  // delivered poisoned. Aligned 1/2/4-byte accesses never straddle a
  // 32-bit ECC word, so exactly one registry lookup covers the access.
  const std::uint32_t mask = sram_.latentMask(a.addr);
  if (mask == 0) return;
  if (std::popcount(mask) == 1) {
    ++*secded_demand_corrected_;
  } else {
    ++*secded_demand_uncorrectable_;
    const std::uint32_t shift = (a.addr & 3u) * 8;
    const std::uint32_t keep = a.size == 4 ? ~0u : (1u << (a.size * 8)) - 1u;
    data ^= (mask >> shift) & keep;
    poisoned = true;
  }
}

void MemorySystem::grant(const Pending& pending, Cycle now, ChannelState& ch,
                         std::uint32_t ch_index) {
  const MemAccess& a = pending.access;
  Cycle latency = config_.sram_latency;
  Cache* cache = a.requester == Requester::Cpu ? cpu_cache_.get()
                                               : hht_cache_.get();
  if (cache != nullptr) {
    latency = cache->access(a.addr, a.is_write);
    if (config_.prefetch_enabled && cache == cpu_cache_.get() &&
        cache->lastAccessMissed()) {
      // Queue the next lines; filled opportunistically from spare slots.
      const Addr line = a.addr - a.addr % config_.cache.line_bytes;
      for (std::uint32_t d = 1; d <= config_.prefetch_degree; ++d) {
        const Addr target = line + d * config_.cache.line_bytes;
        if (sram_.inBounds(target, config_.cache.line_bytes) &&
            prefetch_queue_.size() < 16) {
          prefetch_queue_.push_back(target);
        }
      }
    }
  } else if (pending.l1_latency != 0) {
    // Tile-L1 miss: the lookup already charged hit+miss(+writeback); the
    // shared level adds only its own node/link costs below.
    latency = pending.l1_latency;
  }
  latency += ch.extra_latency + config_.topology.link_latency;
  if (latency == 0) latency = 1;

  if (a.is_write) {
    // Posted write: applied at grant, no completion record — no requester
    // ever waits on a store (the SRAM absorbs it), so recording one would
    // leak and keep idle() false forever.
    sram_.write(a.addr, a.size, a.wdata);
    ++*grants_;
    ++*grants_by_[requesterIndex(a)];
    if (ch.grants != nullptr) ++*ch.grants;
    if (trace_ != nullptr && trace_->enabled(obs::Category::kMem)) {
      trace_->emit(now, obs::Category::kMem, obs::Component::kMem,
                   obs::EventKind::kMemGrant, a.addr,
                   static_cast<std::uint64_t>(a.requester) |
                       (std::uint64_t{a.is_write} << 1) |
                       (static_cast<std::uint64_t>(a.tile) << 2) |
                       (static_cast<std::uint64_t>(ch.queue.size()) << 8) |
                       (static_cast<std::uint64_t>(ch_index) << 56));
    }
    return;
  }
  std::uint32_t data = sram_.read(a.addr, a.size);
  bool poisoned = false;
  applySecded(a, data, poisoned);
  sim::FaultInjector* const injector = injectors_[a.tile];
  if (injector != nullptr) {
    // ECC path: a flip on the read port is always *detected* (SECDED-style
    // model); the controller re-reads up to ecc_retry_limit times, each
    // attempt paying another array access. A flip that recurs on every
    // attempt is delivered poisoned — consumers must not use the payload.
    const std::uint32_t clean = data;
    if (injector->corruptReadData(data)) {
      ++*ecc_detected_;
      const std::uint32_t limit = injector->config().ecc_retry_limit;
      std::uint32_t attempt = 0;
      for (; attempt < limit; ++attempt) {
        ++*ecc_retries_;
        latency += config_.sram_latency;
        data = clean;
        if (!injector->corruptReadData(data)) break;
      }
      if (attempt < limit) {
        ++*ecc_corrected_;
      } else {
        ++*ecc_uncorrectable_;
        poisoned = true;
      }
    }
    if (injector->dropResponse()) {
      // Dropped response: the controller times out and re-requests; the
      // requester just sees a long-latency completion.
      ++*drop_recoveries_;
      latency += injector->config().drop_penalty_cycles;
    }
    if (injector->delayResponse()) {
      ++*delayed_responses_;
      latency += injector->config().delay_cycles;
    }
  }
  in_flight_.push_back({pending.id, now + latency, data, poisoned});
  ++*grants_;
  ++*grants_by_[requesterIndex(a)];
  if (ch.grants != nullptr) ++*ch.grants;
  if (trace_ != nullptr && trace_->enabled(obs::Category::kMem)) {
    // b packs requester | is_write<<1 | tile<<2 | queue-depth-at-grant<<8 |
    // channel<<56, so the trace carries request-queue occupancy and the
    // granting node without a per-cycle event (tile and channel are 0 on a
    // flat single-tile machine: payloads unchanged).
    trace_->emit(now, obs::Category::kMem, obs::Component::kMem,
                 obs::EventKind::kMemGrant, a.addr,
                 static_cast<std::uint64_t>(a.requester) |
                     (std::uint64_t{a.is_write} << 1) |
                     (static_cast<std::uint64_t>(a.tile) << 2) |
                     (static_cast<std::uint64_t>(ch.queue.size()) << 8) |
                     (static_cast<std::uint64_t>(ch_index) << 56));
  }
  HHT_LOG_AT(Trace, "mem", "grant id=%llu %s addr=0x%x done@%llu",
             static_cast<unsigned long long>(pending.id),
             a.is_write ? "W" : "R", a.addr,
             static_cast<unsigned long long>(now + latency));
}

void MemorySystem::completeLocal(const Pending& pending, Cycle latency,
                                 Cycle now) {
  const MemAccess& a = pending.access;
  if (latency == 0) latency = 1;
  if (a.is_write) {
    // Posted, like a channel-granted store: functional data lives in the
    // backing Sram, the L1 only tracked the dirty bit for timing.
    sram_.write(a.addr, a.size, a.wdata);
    return;
  }
  std::uint32_t data = sram_.read(a.addr, a.size);
  bool poisoned = false;
  applySecded(a, data, poisoned);
  // No fault-injector draw: injection models the shared SRAM read port,
  // which a tile-local hit never touches. Keeping the draw sequence off
  // this path also keeps a tile's injector stream identical between flat
  // and hierarchical runs of the same miss traffic.
  in_flight_.push_back({pending.id, now + latency, data, poisoned});
}

void MemorySystem::emitPrefetchEvent(Cycle now, Addr line, std::uint32_t tile,
                                     std::uint64_t action) {
  if (trace_ != nullptr && trace_->enabled(obs::Category::kMem)) {
    trace_->emit(now, obs::Category::kMem, obs::Component::kMem,
                 obs::EventKind::kHhtPrefetch, line,
                 static_cast<std::uint64_t>(tile) | (action << 8));
  }
}

void MemorySystem::observeHhtStride(std::uint32_t tile, Addr addr, Cycle now) {
  StrideState& pf = hht_pf_[tile];
  const std::int64_t stride = static_cast<std::int64_t>(addr) -
                              static_cast<std::int64_t>(pf.last_addr);
  const bool warm = pf.last_addr != 0;
  if (warm && stride != 0 && stride == pf.last_stride) {
    if (pf.confidence < 255) ++pf.confidence;
  } else {
    pf.confidence = (warm && stride != 0) ? 1 : 0;
    pf.last_stride = stride;
  }
  pf.last_addr = addr;
  if (pf.confidence < 2) return;

  const TopologyConfig& topo = config_.topology;
  const std::uint32_t line_bytes = topo.tile_l1.line_bytes;
  Cache* l1 = tile_l1_[tile].get();
  Addr prev_line = ~Addr{0};
  for (std::uint32_t d = 1; d <= topo.hht_prefetch_degree; ++d) {
    const std::int64_t target =
        static_cast<std::int64_t>(addr) + stride * static_cast<std::int64_t>(d);
    if (target < 0) break;
    const Addr line = static_cast<Addr>(target) -
                      static_cast<Addr>(target) % line_bytes;
    if (line == prev_line) continue;  // small strides share a line
    prev_line = line;
    if (!sram_.inBounds(line, line_bytes)) {
      // Mispredicted past the array end: never submitted, never faults —
      // only the dropped counter sees it.
      ++*hpf_dropped_;
      emitPrefetchEvent(now, line, tile, kPfDropped);
      continue;
    }
    if (l1->contains(line)) continue;  // already resident, nothing to do
    bool queued = false;
    for (const PrefetchTarget& t : hht_pf_queue_) {
      if (t.line == line && t.tile == tile) {
        queued = true;
        break;
      }
    }
    if (queued) continue;
    if (hht_pf_queue_.size() >= topo.hht_prefetch_queue) {
      ++*hpf_dropped_;
      emitPrefetchEvent(now, line, tile, kPfDropped);
      continue;
    }
    hht_pf_queue_.push_back({line, static_cast<std::uint8_t>(tile)});
    ++*hpf_issued_;
    emitPrefetchEvent(now, line, tile, kPfIssued);
  }
}

void MemorySystem::serviceLanes(Cycle now) {
  const TopologyConfig& topo = config_.topology;
  const std::uint32_t bw = topo.link_bandwidth;  // 0 = unbounded
  const bool pf_on = topo.hht_prefetch_enabled;
  for (std::uint32_t t = 0; t < config_.num_tiles; ++t) {
    auto& lane = tile_lanes_[t];
    if (lane.empty()) continue;
    Cache* l1 = tile_l1_.empty() ? nullptr : tile_l1_[t].get();
    std::uint32_t served = 0;
    std::size_t i = 0;
    while (i < lane.size() && (bw == 0 || served < bw)) {
      ++served;
      Pending p = lane[i];
      lane.erase(lane.begin() + static_cast<std::ptrdiff_t>(i));
      const MemAccess& a = p.access;
      if (pf_on && !a.is_write && a.requester == Requester::Hht) {
        observeHhtStride(t, a.addr, now);
      }
      if (l1 == nullptr) {
        // Pure link (bandwidth/latency edge, no tile storage).
        channels_[topo.channelOf(a.addr)].queue.push_back(p);
        continue;
      }
      const Cycle lat = l1->access(a.addr, a.is_write);
      const Addr line = a.addr - a.addr % topo.tile_l1.line_bytes;
      if (!l1->lastAccessMissed()) {
        // Tile-local hit: completes without a shared-level grant. First
        // demand hit on a prefetched line counts it useful.
        if (pf_on) {
          auto& tracked = hht_pf_tracked_[t];
          auto it = std::find(tracked.begin(), tracked.end(), line);
          if (it != tracked.end()) {
            tracked.erase(it);
            ++*hpf_useful_;
            emitPrefetchEvent(now, line, t, kPfUseful);
          }
        }
        completeLocal(p, lat, now);
        continue;
      }
      // Demand miss: a queued-but-unfilled prefetch of this line was late;
      // the demand fetch supersedes it. A tracked line that missed was
      // evicted before use — quietly untrack it.
      if (pf_on) {
        for (std::size_t q = 0; q < hht_pf_queue_.size(); ++q) {
          if (hht_pf_queue_[q].line == line && hht_pf_queue_[q].tile == t) {
            hht_pf_queue_.erase(hht_pf_queue_.begin() +
                                static_cast<std::ptrdiff_t>(q));
            ++*hpf_late_;
            emitPrefetchEvent(now, line, t, kPfLate);
            break;
          }
        }
        auto& tracked = hht_pf_tracked_[t];
        auto it = std::find(tracked.begin(), tracked.end(), line);
        if (it != tracked.end()) tracked.erase(it);
      }
      p.l1_latency = lat;
      channels_[topo.channelOf(a.addr)].queue.push_back(p);
    }
  }
}

void MemorySystem::tick(Cycle now) {
  if (trace_ != nullptr) traceTick(now);
  // Pure-stall fast path: nothing queued on any node or lane, nothing in
  // flight, no prefetch candidates, no patrol read due — the whole tick is
  // a no-op, so skip the arbitration and conflict bookkeeping below. This
  // is the common case whenever the CPU computes out of registers (naive
  // mode pays this every such cycle).
  if (in_flight_.empty() && mmio_queue_.empty() && prefetch_queue_.empty() &&
      hht_pf_queue_.empty() &&
      !(config_.scrub_enabled && now >= next_scrub_cycle_)) {
    bool any_queued = false;
    for (const ChannelState& ch : channels_) {
      if (!ch.queue.empty()) {
        any_queued = true;
        break;
      }
    }
    if (!any_queued) {
      for (const auto& lane : tile_lanes_) {
        if (!lane.empty()) {
          any_queued = true;
          break;
        }
      }
    }
    if (!any_queued) return;
  }
  // 1. Retire accesses whose latency has elapsed.
  std::erase_if(in_flight_, [&](const InFlight& f) {
    if (f.done_at > now) return false;
    completed_[(f.id - 1) % num_requesters_].emplace_back(
        f.id, MemResponse{f.data, f.poisoned});
    return true;
  });

  // 1b. Edge service (routed topologies): per-tile L1 lookups and link
  //     bandwidth metering; hits complete locally, misses drop into their
  //     channel's queue and arbitrate this same cycle (the edge adds no
  //     pipeline bubble, matching the flat submit->arbitrate timing).
  if (!tile_lanes_.empty()) serviceLanes(now);

  // 2. Arbitrate every node's grant slots over the 2*num_tiles requester
  //    ports. Channels arbitrate independently (own rotation, own slots).
  for (std::uint32_t k = 0; k < channels_.size(); ++k) {
    ChannelState& ch = channels_[k];
    ch.slots_left = ch.grants_per_cycle;
    for (std::uint32_t slot = 0; slot < ch.grants_per_cycle; ++slot) {
      if (ch.queue.empty()) break;
      --ch.slots_left;

      std::uint64_t present = 0;
      for (const Pending& p : ch.queue) {
        present |= 1ull << requesterIndex(p.access);
      }
      const std::uint32_t winner = pickRequester(ch, present);
      // Oldest request of the winning requester: taking the first queue
      // entry with the matching port preserves per-requester program order.
      auto it = std::find_if(ch.queue.begin(), ch.queue.end(),
                             [&](const Pending& p) {
                               return requesterIndex(p.access) == winner;
                             });
      grant(*it, now, ch, k);
      ch.queue.erase(it);
    }
  }
  // Requesters left with work waiting lost arbitration this cycle — on any
  // channel, or stuck behind a saturated tile link. Each stalled
  // *requester* counts one conflict cycle regardless of how many of its
  // requests sat in queues — the counter answers "how many cycles did this
  // port wait", and a deferred request re-arbitrated next cycle must not
  // be double-counted as a fresh conflict.
  std::uint64_t stalled = 0;
  for (ChannelState& ch : channels_) {
    for (const Pending& p : ch.queue) {
      stalled |= 1ull << requesterIndex(p.access);
    }
    if (ch.conflict_cycles != nullptr && !ch.queue.empty()) {
      ++*ch.conflict_cycles;
    }
  }
  for (const auto& lane : tile_lanes_) {
    for (const Pending& p : lane) {
      stalled |= 1ull << requesterIndex(p.access);
    }
  }
  if (stalled != 0) {
    std::uint64_t stalled_by_role[2] = {0, 0};
    for (std::uint32_t r = 0; r < num_requesters_; ++r) {
      if ((stalled >> r) & 1u) {
        ++*conflict_cycles_[r];
        ++stalled_by_role[static_cast<int>(requesterRole(r))];
      }
    }
    if (trace_ != nullptr && trace_->enabled(obs::Category::kMem)) {
      trace_->emit(now, obs::Category::kMem, obs::Component::kMem,
                   obs::EventKind::kMemConflict, stalled_by_role[0],
                   stalled_by_role[1]);
    }
  }

  // Spare slots feed the CPU stream prefetcher (demand traffic always
  // wins). Each target consumes a slot on its own channel.
  for (std::size_t i = 0; i < prefetch_queue_.size();) {
    ChannelState& ch = channels_[config_.topology.channelOf(prefetch_queue_[i])];
    if (ch.slots_left == 0) {
      ++i;
      continue;
    }
    --ch.slots_left;
    const Addr target = prefetch_queue_[i];
    prefetch_queue_.erase(prefetch_queue_.begin() +
                          static_cast<std::ptrdiff_t>(i));
    if (cpu_cache_ && cpu_cache_->install(target)) {
      ++*prefetch_fills_;
    }
  }

  // Then the HHT stride prefetcher: fills install into the owning tile's
  // L1 from whatever slots demand and the CPU prefetcher left over.
  for (std::size_t i = 0; i < hht_pf_queue_.size();) {
    const PrefetchTarget target = hht_pf_queue_[i];
    ChannelState& ch = channels_[config_.topology.channelOf(target.line)];
    if (ch.slots_left == 0) {
      ++i;
      continue;
    }
    --ch.slots_left;
    hht_pf_queue_.erase(hht_pf_queue_.begin() +
                        static_cast<std::ptrdiff_t>(i));
    if (tile_l1_[target.tile]->install(target.line)) {
      auto& tracked = hht_pf_tracked_[target.tile];
      if (tracked.size() >= kMaxTrackedLines) tracked.erase(tracked.begin());
      tracked.push_back(target.line);
      emitPrefetchEvent(now, target.line, target.tile, kPfFilled);
    } else {
      // Raced with a demand fill of the same line: the slot was wasted.
      ++*hpf_dropped_;
      emitPrefetchEvent(now, target.line, target.tile, kPfDropped);
    }
  }

  // The patrol scrubber is the lowest-priority requester class: it takes
  // a slot only after demand traffic and the prefetchers are satisfied —
  // a spare slot on the channel that owns the patrol word. A due patrol
  // read that finds no spare bandwidth counts a conflict cycle and retries
  // every tick until one frees up.
  if (config_.scrub_enabled && now >= next_scrub_cycle_) {
    ChannelState& ch = channels_[config_.topology.channelOf(scrub_addr_)];
    if (ch.slots_left > 0) {
      scrubStep(now);
      next_scrub_cycle_ = now + config_.scrub_period;
    } else {
      ++*scrub_conflict_cycles_;
    }
  }

  // 3. MMIO windows (device-adjacent ports; no SRAM bandwidth consumed).
  //    One window per tile, each routed to that tile's device.
  //    Per-requester FIFO: a stalled CPU read must not block the
  //    programmable HHT's firmware-side port and vice versa, but each
  //    requester's own accesses stay in program order.
  std::uint64_t blocked = 0;
  std::erase_if(mmio_queue_, [&](Pending& p) {
    const std::uint32_t who = requesterIndex(p.access);
    if ((blocked >> who) & 1u) return false;
    const Addr window = p.access.addr - config_.mmio_base;
    const std::uint32_t window_tile = window / config_.mmio_size;
    MmioDevice* device = mmio_devices_[window_tile];
    if (device == nullptr) {
      // Unmapped MMIO: reads return 0, writes are dropped.
      if (!p.access.is_write) {
        completed_[(p.id - 1) % num_requesters_].emplace_back(
            p.id, MemResponse{0, false});
      }
      return true;
    }
    const Addr offset = window % config_.mmio_size;
    if (p.access.is_write) {
      device->mmioWrite(offset, p.access.size, p.access.wdata,
                        p.access.requester);
      return true;  // posted, like SRAM stores
    }
    const MmioReadResult result =
        device->mmioRead(offset, p.access.size, p.access.requester);
    if (!result.ready) {
      blocked |= 1ull << who;  // retry next cycle; requester stays stalled
      return false;
    }
    completed_[(p.id - 1) % num_requesters_].emplace_back(
        p.id, MemResponse{result.data, false});
    return true;
  });
}

// Coalesced active/drained occupancy transitions (one kPhase event per
// contiguous span). Host-only; see DESIGN.md §12 for the resume contract.
void MemorySystem::traceTick(Cycle now) {
  if (!trace_->enabled(obs::Category::kMem)) return;
  const std::uint8_t bucket =
      idle() ? obs::kBucketDrained : obs::kBucketActive;
  if (bucket != trace_bucket_) {
    trace_bucket_ = bucket;
    trace_->emit(now, obs::Category::kMem, obs::Component::kMem,
                 obs::EventKind::kPhase, bucket);
  }
}

void MemorySystem::scrubStep(Cycle now) {
  ++*scrub_reads_;
  const std::uint32_t mask = sram_.latentMask(scrub_addr_);
  std::uint64_t outcome = 0;
  if (mask != 0) {
    if (std::popcount(mask) == 1) {
      // Correctable: the patrol read runs the word through SECDED and
      // writes the corrected data back, clearing the latent flip.
      sram_.clearLatentWord(scrub_addr_);
      ++*scrub_corrected_;
      outcome = 1;
    } else {
      // Uncorrectable pair: the scrubber can only report it; a demand
      // read of this word will deliver a poisoned response.
      ++*scrub_uncorrectable_;
      outcome = 2;
    }
  }
  if (trace_ != nullptr && trace_->enabled(obs::Category::kScrub)) {
    trace_->emit(now, obs::Category::kScrub, obs::Component::kMem,
                 obs::EventKind::kScrubGrant, scrub_addr_, outcome);
  }
  scrub_addr_ += 4;
  if (static_cast<std::size_t>(scrub_addr_) >= sram_.size()) scrub_addr_ = 0;
}

std::uint32_t MemorySystem::pickRequester(ChannelState& ch,
                                          std::uint64_t present) {
  const std::uint32_t R = num_requesters_;
  // Scan helper: first requester with work at-or-after `from`, wrapping.
  const auto scan = [&](std::uint32_t from, std::uint64_t mask) {
    for (std::uint32_t i = 0; i < R; ++i) {
      const std::uint32_t r = (from + i) % R;
      if ((mask >> r) & 1u) return r;
    }
    return R;  // unreachable when mask != 0
  };

  if (config_.policy == ArbiterPolicy::RoundRobin) {
    const std::uint32_t r = scan(ch.rr_next, present);
    ch.rr_next = (r + 1) % R;
    return r;
  }

  // CpuPriority: every CPU-role port outranks every HHT-role port, with
  // rotation inside each role so no tile monopolizes its role's turn.
  // Role masks: CPU-role ports are the even indices.
  const std::uint64_t all = R >= 64 ? ~0ull : (1ull << R) - 1;
  const std::uint64_t cpu_mask = present & (0x5555'5555'5555'5555ull & all);
  const std::uint64_t hht_mask = present & ~0x5555'5555'5555'5555ull;
  if (cpu_mask != 0 && hht_mask != 0 && config_.cpu_starvation_limit != 0 &&
      ch.cpu_streak >= config_.cpu_starvation_limit) {
    // Starvation bound: the CPU side has taken cpu_starvation_limit
    // consecutive grants while HHT work waited; force one HHT grant so a
    // saturating CPU stream cannot defer the BE indefinitely.
    const std::uint32_t r = scan(ch.prio_next[1], hht_mask);
    ch.prio_next[1] = (r + 2) % R;
    ch.cpu_streak = 0;
    ++*forced_rotations_;
    return r;
  }
  if (cpu_mask != 0) {
    const std::uint32_t r = scan(ch.prio_next[0], cpu_mask);
    ch.prio_next[0] = (r + 2) % R;
    if (hht_mask != 0) {
      ++ch.cpu_streak;  // a CPU grant that left HHT work waiting
    } else {
      ch.cpu_streak = 0;
    }
    return r;
  }
  const std::uint32_t r = scan(ch.prio_next[1], hht_mask);
  ch.prio_next[1] = (r + 2) % R;
  ch.cpu_streak = 0;
  return r;
}

Cycle MemorySystem::responseReadyCycle(RequestId id, Cycle now) const {
  for (const auto& [done_id, response] : completed_[(id - 1) % num_requesters_]) {
    (void)response;
    if (done_id == id) return now + 1;
  }
  for (const InFlight& f : in_flight_) {
    // The response enters completed_ during tick(done_at); consumers tick
    // before the memory system, so the first successful poll is done_at+1.
    if (f.id == id) return std::max(f.done_at, now) + 1;
  }
  return now + 1;  // still queued (lane, channel or MMIO): poll next cycle
}

Cycle MemorySystem::nextEventCycle(Cycle now) const {
  if (pendingArbitration()) {
    return now + 1;  // arbitration / MMIO retry runs every tick
  }
  Cycle earliest = sim::kNeverCycle;
  if (config_.scrub_enabled) {
    // Quiescence fast-forward must land exactly on patrol ticks: a skipped
    // stretch may not jump over a due scrub read.
    earliest = std::max(next_scrub_cycle_, now + 1);
  }
  for (const InFlight& f : in_flight_) {
    earliest = std::min(earliest, f.done_at);
  }
  return earliest == sim::kNeverCycle ? sim::kNeverCycle
                                      : std::max(earliest, now + 1);
}

void MemorySystem::attachMmioDevice(MmioDevice* device, std::uint32_t tile) {
  if (device == nullptr) {
    throw sim::SimError(sim::ErrorKind::Mmio, "mem",
                        "attachMmioDevice(nullptr): detaching the device "
                        "window is not supported");
  }
  if (tile >= config_.numMmioWindows()) {
    throw sim::SimError(sim::ErrorKind::Mmio, "mem",
                        "attachMmioDevice: window " + std::to_string(tile) +
                            " out of range (numMmioWindows=" +
                            std::to_string(config_.numMmioWindows()) + ")");
  }
  if (mmio_devices_[tile] != nullptr) {
    throw sim::SimError(sim::ErrorKind::Mmio, "mem",
                        "attachMmioDevice: a device is already mapped in tile " +
                            std::to_string(tile) +
                            "'s window; silently replacing it would orphan "
                            "in-flight MMIO requests");
  }
  mmio_devices_[tile] = device;
}

void MemorySystem::cancelAll() {
  for (ChannelState& ch : channels_) ch.queue.clear();
  for (auto& lane : tile_lanes_) lane.clear();
  mmio_queue_.clear();
  prefetch_queue_.clear();
  hht_pf_queue_.clear();
  for (StrideState& pf : hht_pf_) pf = StrideState{};
  for (auto& tracked : hht_pf_tracked_) tracked.clear();
  in_flight_.clear();
  for (auto& lane : completed_) lane.clear();
  for (auto& lane : stage_) lane.clear();
}

std::string MemorySystem::describeState() const {
  std::size_t completed_total = 0;
  for (const auto& lane : completed_) completed_total += lane.size();
  std::size_t channel_total = 0;
  for (const ChannelState& ch : channels_) channel_total += ch.queue.size();
  std::size_t lane_total = 0;
  for (const auto& lane : tile_lanes_) lane_total += lane.size();
  std::ostringstream os;
  os << "mem: sram_queue=" << channel_total;
  if (channels_.size() > 1) os << " (channels=" << channels_.size() << ")";
  if (!tile_lanes_.empty()) os << " tile_lanes=" << lane_total;
  os << " mmio_queue=" << mmio_queue_.size()
     << " in_flight=" << in_flight_.size()
     << " completed_unclaimed=" << completed_total << "\n";
  auto line = [&os](const std::string& tag, const Pending& p) {
    os << "  " << tag << " id=" << p.id << " "
       << requesterLabel(requesterIndex(p.access)) << " "
       << (p.access.is_write ? "W" : "R") << " addr=0x" << std::hex
       << p.access.addr << std::dec << " size=" << p.access.size << "\n";
  };
  std::size_t shown = 0;
  for (std::size_t k = 0; k < channels_.size(); ++k) {
    const std::string tag =
        channels_.size() == 1 ? "sram" : "ch" + std::to_string(k);
    for (const Pending& p : channels_[k].queue) {
      if (++shown > 8) break;
      line(tag, p);
    }
  }
  shown = 0;
  for (std::size_t t = 0; t < tile_lanes_.size(); ++t) {
    for (const Pending& p : tile_lanes_[t]) {
      if (++shown > 8) break;
      line("lane" + std::to_string(t), p);
    }
  }
  shown = 0;
  for (const Pending& p : mmio_queue_) {
    if (++shown > 8) break;
    line("mmio", p);
  }
  for (const InFlight& f : in_flight_) {
    os << "  in-flight id=" << f.id << " done_at=" << f.done_at
       << (f.poisoned ? " POISONED" : "") << "\n";
  }
  return os.str();
}

namespace {

void writeAccess(sim::StateWriter& w, const MemAccess& a) {
  w.u32(a.addr);
  w.u32(a.size);
  w.b(a.is_write);
  w.u32(a.wdata);
  w.u8(static_cast<std::uint8_t>(a.requester));
  w.u8(a.tile);
}

MemAccess readAccess(sim::StateReader& r) {
  MemAccess a;
  a.addr = r.u32();
  a.size = r.u32();
  a.is_write = r.b();
  a.wdata = r.u32();
  a.requester = static_cast<Requester>(r.u8());
  a.tile = r.u8();
  return a;
}

}  // namespace

void MemorySystem::serialize(sim::StateWriter& w) const {
  // Topology-dependent sections are config-implied (present exactly when
  // the corresponding topology feature is on); the snapshot's config
  // fingerprint pins the topology, so decoding is unambiguous and the
  // flat layout's byte stream is identical to the pre-topology format v6.
  const bool with_l1 = config_.topology.tile_l1_enabled;
  w.tag("MEMS");
  sram_.serialize(w);
  w.b(cpu_cache_ != nullptr);
  if (cpu_cache_) cpu_cache_->serialize(w);
  w.b(hht_cache_ != nullptr);
  if (hht_cache_) hht_cache_->serialize(w);
  for (const auto& l1 : tile_l1_) l1->serialize(w);

  auto write_queue = [&w, with_l1](const std::vector<Pending>& q) {
    w.u64(q.size());
    for (const Pending& p : q) {
      w.u64(p.id);
      writeAccess(w, p.access);
      if (with_l1) w.u64(p.l1_latency);
    }
  };
  for (const ChannelState& ch : channels_) write_queue(ch.queue);
  for (const auto& lane : tile_lanes_) write_queue(lane);
  write_queue(mmio_queue_);

  w.u64(prefetch_queue_.size());
  for (Addr a : prefetch_queue_) w.u32(a);

  if (config_.topology.hht_prefetch_enabled) {
    w.u64(hht_pf_queue_.size());
    for (const PrefetchTarget& t : hht_pf_queue_) {
      w.u32(t.line);
      w.u8(t.tile);
    }
    for (const StrideState& pf : hht_pf_) {
      w.u32(pf.last_addr);
      w.u64(static_cast<std::uint64_t>(pf.last_stride));
      w.u32(pf.confidence);
    }
    for (const auto& tracked : hht_pf_tracked_) {
      w.u64(tracked.size());
      for (Addr a : tracked) w.u32(a);
    }
  }

  w.u64(in_flight_.size());
  for (const InFlight& f : in_flight_) {
    w.u64(f.id);
    w.u64(f.done_at);
    w.u32(f.data);
    w.b(f.poisoned);
  }

  // Unclaimed responses are kept per-lane in retirement order; serialize
  // flattened and sorted by id so identical states produce identical
  // snapshot bytes regardless of the order responses retired.
  std::vector<std::pair<RequestId, MemResponse>> done;
  for (const auto& lane : completed_) {
    done.insert(done.end(), lane.begin(), lane.end());
  }
  std::sort(done.begin(), done.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  w.u64(done.size());
  for (const auto& [id, response] : done) {
    w.u64(id);
    w.u32(response.data);
    w.b(response.poisoned);
  }

  // Snapshot v6: per-requester id-stream counters (replaces the single
  // global next_id_ of v5 and earlier).
  w.u64(next_seq_.size());
  for (const RequestId seq : next_seq_) w.u64(seq);
  // Per-node arbiter turn; one record per channel (flat = one record,
  // byte-identical to the legacy rr/prio/streak fields).
  for (const ChannelState& ch : channels_) {
    w.u32(ch.rr_next);
    w.u32(ch.prio_next[0]);
    w.u32(ch.prio_next[1]);
    w.u64(ch.cpu_streak);
  }
  w.u32(scrub_addr_);         // snapshot v5: patrol walk state
  w.u64(next_scrub_cycle_);
  stats_.serialize(w);
}

void MemorySystem::deserialize(sim::StateReader& r) {
  const bool with_l1 = config_.topology.tile_l1_enabled;
  r.expectTag("MEMS");
  sram_.deserialize(r);
  const bool has_cpu_cache = r.b();
  if (has_cpu_cache != (cpu_cache_ != nullptr)) {
    throw sim::SimError(sim::ErrorKind::Checkpoint, "mem",
                        "snapshot CPU-cache presence disagrees with config");
  }
  if (cpu_cache_) cpu_cache_->deserialize(r);
  const bool has_hht_cache = r.b();
  if (has_hht_cache != (hht_cache_ != nullptr)) {
    throw sim::SimError(sim::ErrorKind::Checkpoint, "mem",
                        "snapshot HHT-cache presence disagrees with config");
  }
  if (hht_cache_) hht_cache_->deserialize(r);
  for (const auto& l1 : tile_l1_) l1->deserialize(r);

  auto read_queue = [&r, with_l1](std::vector<Pending>& q) {
    q.clear();
    const std::uint64_t n = r.u64();
    for (std::uint64_t i = 0; i < n; ++i) {
      Pending p;
      p.id = r.u64();
      p.access = readAccess(r);
      if (with_l1) p.l1_latency = r.u64();
      q.push_back(p);
    }
  };
  for (ChannelState& ch : channels_) read_queue(ch.queue);
  for (auto& lane : tile_lanes_) read_queue(lane);
  read_queue(mmio_queue_);

  prefetch_queue_.clear();
  const std::uint64_t n_prefetch = r.u64();
  for (std::uint64_t i = 0; i < n_prefetch; ++i) {
    prefetch_queue_.push_back(r.u32());
  }

  if (config_.topology.hht_prefetch_enabled) {
    hht_pf_queue_.clear();
    const std::uint64_t n_pf = r.u64();
    for (std::uint64_t i = 0; i < n_pf; ++i) {
      PrefetchTarget t;
      t.line = r.u32();
      t.tile = r.u8();
      hht_pf_queue_.push_back(t);
    }
    for (StrideState& pf : hht_pf_) {
      pf.last_addr = r.u32();
      pf.last_stride = static_cast<std::int64_t>(r.u64());
      pf.confidence = r.u32();
    }
    for (auto& tracked : hht_pf_tracked_) {
      tracked.clear();
      const std::uint64_t n = r.u64();
      for (std::uint64_t i = 0; i < n; ++i) tracked.push_back(r.u32());
    }
  }

  in_flight_.clear();
  const std::uint64_t n_flight = r.u64();
  for (std::uint64_t i = 0; i < n_flight; ++i) {
    InFlight f;
    f.id = r.u64();
    f.done_at = r.u64();
    f.data = r.u32();
    f.poisoned = r.b();
    in_flight_.push_back(f);
  }

  for (auto& lane : completed_) lane.clear();
  const std::uint64_t n_done = r.u64();
  for (std::uint64_t i = 0; i < n_done; ++i) {
    const RequestId id = r.u64();
    MemResponse response;
    response.data = r.u32();
    response.poisoned = r.b();
    completed_[(id - 1) % num_requesters_].emplace_back(id, response);
  }

  const std::uint64_t n_seq = r.u64();
  if (n_seq != next_seq_.size()) {
    throw sim::SimError(sim::ErrorKind::Checkpoint, "mem",
                        "snapshot requester count disagrees with config: " +
                            std::to_string(n_seq) + " vs " +
                            std::to_string(next_seq_.size()));
  }
  for (RequestId& seq : next_seq_) seq = r.u64();
  for (ChannelState& ch : channels_) {
    ch.rr_next = r.u32();
    ch.prio_next[0] = r.u32();
    ch.prio_next[1] = r.u32();
    ch.cpu_streak = r.u64();
  }
  scrub_addr_ = r.u32();
  next_scrub_cycle_ = r.u64();
  stats_.deserialize(r);
}

void MemorySystem::finalizeStats() {
  if (cpu_cache_) {
    stats_.counter("mem.cpu.cache_hits") = cpu_cache_->hits();
    stats_.counter("mem.cpu.cache_misses") = cpu_cache_->misses();
    stats_.counter("mem.cpu.cache_writebacks") = cpu_cache_->writebacks();
  }
  if (hht_cache_) {
    stats_.counter("mem.hht.cache_hits") = hht_cache_->hits();
    stats_.counter("mem.hht.cache_misses") = hht_cache_->misses();
    stats_.counter("mem.hht.cache_writebacks") = hht_cache_->writebacks();
  }
  if (!tile_l1_.empty()) {
    std::uint64_t hits = 0, misses = 0, writebacks = 0, fills = 0;
    for (std::uint32_t t = 0; t < tile_l1_.size(); ++t) {
      const Cache& l1 = *tile_l1_[t];
      const std::string prefix = "mem.l1.t" + std::to_string(t);
      stats_.counter(prefix + ".hits") = l1.hits();
      stats_.counter(prefix + ".misses") = l1.misses();
      stats_.counter(prefix + ".writebacks") = l1.writebacks();
      stats_.counter(prefix + ".prefetch_fills") = l1.prefetchFills();
      hits += l1.hits();
      misses += l1.misses();
      writebacks += l1.writebacks();
      fills += l1.prefetchFills();
    }
    stats_.counter("mem.l1.hits") = hits;
    stats_.counter("mem.l1.misses") = misses;
    stats_.counter("mem.l1.writebacks") = writebacks;
    stats_.counter("mem.l1.prefetch_fills") = fills;
  }
}

}  // namespace hht::mem
