#include "mem/memory_system.h"

#include <algorithm>

#include "sim/log.h"

namespace hht::mem {

MemorySystem::MemorySystem(const MemorySystemConfig& config)
    : config_(config), sram_(config.sram_bytes) {
  for (int r = 0; r < 2; ++r) {
    const std::string who = requesterName(static_cast<Requester>(r));
    reads_[r] = &stats_.counter("mem." + who + ".reads");
    writes_[r] = &stats_.counter("mem." + who + ".writes");
    mmio_requests_[r] = &stats_.counter("mem." + who + ".mmio_requests");
    conflict_cycles_[r] = &stats_.counter("mem." + who + ".conflict_cycles");
  }
  if (config_.cpu_cache_enabled) {
    cpu_cache_ = std::make_unique<Cache>(config_.cache);
  }
  if (config_.hht_cache_enabled) {
    hht_cache_ = std::make_unique<Cache>(config_.cache);
  }
}

RequestId MemorySystem::submit(const MemAccess& access) {
  const RequestId id = next_id_++;
  const int who = static_cast<int>(access.requester);
  if (isMmio(access.addr)) {
    mmio_queue_.push_back({id, access});
    ++*mmio_requests_[who];
  } else {
    sram_queue_.push_back({id, access});
    ++*(access.is_write ? writes_[who] : reads_[who]);
  }
  return id;
}

std::optional<std::uint32_t> MemorySystem::takeCompleted(RequestId id) {
  auto it = completed_.find(id);
  if (it == completed_.end()) return std::nullopt;
  const std::uint32_t data = it->second;
  completed_.erase(it);
  return data;
}

void MemorySystem::grant(const Pending& pending, Cycle now) {
  const MemAccess& a = pending.access;
  Cycle latency = config_.sram_latency;
  Cache* cache = a.requester == Requester::Cpu ? cpu_cache_.get()
                                               : hht_cache_.get();
  if (cache != nullptr) {
    latency = cache->access(a.addr, a.is_write);
    if (config_.prefetch_enabled && cache == cpu_cache_.get() &&
        cache->lastAccessMissed()) {
      // Queue the next lines; filled opportunistically from spare slots.
      const Addr line = a.addr - a.addr % config_.cache.line_bytes;
      for (std::uint32_t d = 1; d <= config_.prefetch_degree; ++d) {
        const Addr target = line + d * config_.cache.line_bytes;
        if (sram_.inBounds(target, config_.cache.line_bytes) &&
            prefetch_queue_.size() < 16) {
          prefetch_queue_.push_back(target);
        }
      }
    }
  }
  if (latency == 0) latency = 1;

  if (a.is_write) {
    // Posted write: applied at grant, no completion record — no requester
    // ever waits on a store (the SRAM absorbs it), so recording one would
    // leak and keep idle() false forever.
    sram_.write(a.addr, a.size, a.wdata);
    return;
  }
  const std::uint32_t data = sram_.read(a.addr, a.size);
  in_flight_.push_back({pending.id, now + latency, data});
  HHT_LOG_AT(Trace, "mem", "grant id=%llu %s addr=0x%x done@%llu",
             static_cast<unsigned long long>(pending.id),
             a.is_write ? "W" : "R", a.addr,
             static_cast<unsigned long long>(now + latency));
}

void MemorySystem::tick(Cycle now) {
  // 1. Retire accesses whose latency has elapsed.
  std::erase_if(in_flight_, [&](const InFlight& f) {
    if (f.done_at > now) return false;
    completed_.emplace(f.id, f.data);
    return true;
  });

  // 2. Arbitrate SRAM grant slots.
  std::uint32_t slots_left = config_.grants_per_cycle;
  for (std::uint32_t slot = 0; slot < config_.grants_per_cycle; ++slot) {
    if (sram_queue_.empty()) break;
    --slots_left;

    Requester preferred = Requester::Cpu;
    if (config_.policy == ArbiterPolicy::RoundRobin) {
      preferred = rr_hht_turn_ ? Requester::Hht : Requester::Cpu;
      rr_hht_turn_ = !rr_hht_turn_;
    }
    // Oldest request of the preferred requester, else oldest overall.
    // Taking the first queue entry with the matching requester preserves
    // per-requester program order.
    auto it = std::find_if(sram_queue_.begin(), sram_queue_.end(),
                           [&](const Pending& p) {
                             return p.access.requester == preferred;
                           });
    if (it == sram_queue_.end()) it = sram_queue_.begin();
    grant(*it, now);
    sram_queue_.erase(it);
  }
  // Requests left waiting lost arbitration this cycle.
  for (const Pending& p : sram_queue_) {
    ++*conflict_cycles_[static_cast<int>(p.access.requester)];
  }

  // Spare slots feed the stream prefetcher (demand traffic always wins).
  while (slots_left > 0 && !prefetch_queue_.empty()) {
    const Addr target = prefetch_queue_.front();
    prefetch_queue_.pop_front();
    if (cpu_cache_ && cpu_cache_->install(target)) {
      ++stats_.counter("mem.cpu.prefetch_fills");
    }
    --slots_left;
  }

  // 3. MMIO window (device-adjacent port; no SRAM bandwidth consumed).
  //    Per-requester FIFO: a stalled CPU read must not block the
  //    programmable HHT's firmware-side port and vice versa, but each
  //    requester's own accesses stay in program order.
  bool blocked[2] = {false, false};
  std::erase_if(mmio_queue_, [&](Pending& p) {
    const int who = static_cast<int>(p.access.requester);
    if (blocked[who]) return false;
    if (mmio_device_ == nullptr) {
      // Unmapped MMIO: reads return 0, writes are dropped.
      if (!p.access.is_write) completed_.emplace(p.id, 0);
      return true;
    }
    const Addr offset = p.access.addr - config_.mmio_base;
    if (p.access.is_write) {
      mmio_device_->mmioWrite(offset, p.access.size, p.access.wdata,
                              p.access.requester);
      return true;  // posted, like SRAM stores
    }
    const MmioReadResult result =
        mmio_device_->mmioRead(offset, p.access.size, p.access.requester);
    if (!result.ready) {
      blocked[who] = true;  // retry next cycle; requester stays stalled
      return false;
    }
    completed_.emplace(p.id, result.data);
    return true;
  });
}

void MemorySystem::attachMmioDevice(MmioDevice* device) { mmio_device_ = device; }

void MemorySystem::finalizeStats() {
  if (cpu_cache_) {
    stats_.counter("mem.cpu.cache_hits") = cpu_cache_->hits();
    stats_.counter("mem.cpu.cache_misses") = cpu_cache_->misses();
    stats_.counter("mem.cpu.cache_writebacks") = cpu_cache_->writebacks();
  }
  if (hht_cache_) {
    stats_.counter("mem.hht.cache_hits") = hht_cache_->hits();
    stats_.counter("mem.hht.cache_misses") = hht_cache_->misses();
    stats_.counter("mem.hht.cache_writebacks") = hht_cache_->writebacks();
  }
}

}  // namespace hht::mem
