#include "mem/memory_system.h"

#include <algorithm>
#include <bit>
#include <sstream>

#include "sim/log.h"

namespace hht::mem {

void MemorySystemConfig::validate() const {
  using sim::ErrorKind;
  using sim::SimError;
  if (sram_bytes < 16) {
    throw SimError(ErrorKind::Config, "mem", "sram_bytes too small");
  }
  if (grants_per_cycle == 0) {
    throw SimError(ErrorKind::Config, "mem",
                   "grants_per_cycle must be >= 1 (zero-bandwidth SRAM "
                   "can never complete an access)");
  }
  if (prefetch_enabled && !cpu_cache_enabled) {
    throw SimError(ErrorKind::Config, "mem",
                   "prefetch_enabled requires cpu_cache_enabled (the "
                   "prefetcher fills L1D lines)");
  }
  if (prefetch_enabled && prefetch_degree == 0) {
    throw SimError(ErrorKind::Config, "mem",
                   "prefetch_enabled requires prefetch_degree >= 1");
  }
  if (mmio_size == 0) {
    throw SimError(ErrorKind::Config, "mem", "mmio_size must be non-zero");
  }
  if (scrub_enabled && scrub_period == 0) {
    throw SimError(ErrorKind::Config, "mem",
                   "scrub_enabled requires scrub_period >= 1");
  }
  if (scrub_enabled && sram_bytes % 4 != 0) {
    throw SimError(ErrorKind::Config, "mem",
                   "scrub_enabled requires a word-multiple sram_bytes (the "
                   "patrol walks 32-bit ECC words)");
  }
  if (mmio_base < sram_bytes) {
    throw SimError(ErrorKind::Config, "mem",
                   "MMIO window overlaps the SRAM address range");
  }
  if (num_tiles < 1 || num_tiles > 16) {
    throw SimError(ErrorKind::Config, "mem",
                   "num_tiles must be in [1, 16], got " +
                       std::to_string(num_tiles));
  }
  // All per-tile MMIO windows must fit below the top of the address space.
  const std::uint64_t mmio_span =
      static_cast<std::uint64_t>(num_tiles) * mmio_size;
  if (static_cast<std::uint64_t>(mmio_base) + mmio_span > 0x1'0000'0000ull) {
    throw SimError(ErrorKind::Config, "mem",
                   "per-tile MMIO windows wrap past the 32-bit address "
                   "space: base + num_tiles*mmio_size overflows");
  }
}

MemorySystem::MemorySystem(const MemorySystemConfig& config)
    : config_(config),
      num_requesters_(config.numRequesters()),
      sram_(config.sram_bytes),
      mmio_devices_(config.num_tiles, nullptr),
      injectors_(config.num_tiles, nullptr) {
  reads_.resize(num_requesters_);
  writes_.resize(num_requesters_);
  mmio_requests_.resize(num_requesters_);
  conflict_cycles_.resize(num_requesters_);
  grants_by_.resize(num_requesters_);
  for (std::uint32_t r = 0; r < num_requesters_; ++r) {
    const std::string who = requesterLabel(r);
    reads_[r] = &stats_.counter("mem." + who + ".reads");
    writes_[r] = &stats_.counter("mem." + who + ".writes");
    mmio_requests_[r] = &stats_.counter("mem." + who + ".mmio_requests");
    conflict_cycles_[r] = &stats_.counter("mem." + who + ".conflict_cycles");
    grants_by_[r] = &stats_.counter("mem." + who + ".grants");
  }
  grants_ = &stats_.counter("mem.grants");
  forced_rotations_ = &stats_.counter("mem.arb.forced_rotations");
  ecc_detected_ = &stats_.counter("mem.ecc_detected");
  ecc_retries_ = &stats_.counter("mem.ecc_retries");
  ecc_corrected_ = &stats_.counter("mem.ecc_corrected");
  ecc_uncorrectable_ = &stats_.counter("mem.ecc_uncorrectable");
  drop_recoveries_ = &stats_.counter("mem.drop_recoveries");
  delayed_responses_ = &stats_.counter("mem.delayed_responses");
  prefetch_fills_ = &stats_.counter("mem.cpu.prefetch_fills");
  scrub_reads_ = &stats_.counter("mem.scrub.reads");
  scrub_corrected_ = &stats_.counter("mem.scrub.corrected");
  scrub_uncorrectable_ = &stats_.counter("mem.scrub.uncorrectable");
  scrub_conflict_cycles_ = &stats_.counter("mem.scrub.conflict_cycles");
  secded_demand_corrected_ = &stats_.counter("mem.secded.demand_corrected");
  secded_demand_uncorrectable_ =
      &stats_.counter("mem.secded.demand_uncorrectable");
  next_scrub_cycle_ = config_.scrub_period;
  next_seq_.resize(num_requesters_, 0);
  completed_.resize(num_requesters_);
  stage_.resize(num_requesters_);
  if (config_.cpu_cache_enabled) {
    cpu_cache_ = std::make_unique<Cache>(config_.cache);
  }
  if (config_.hht_cache_enabled) {
    hht_cache_ = std::make_unique<Cache>(config_.cache);
  }
}

RequestId MemorySystem::submit(const MemAccess& access) {
  using sim::ErrorKind;
  using sim::SimError;
  if (access.size != 1 && access.size != 2 && access.size != 4) {
    throw SimError(ErrorKind::Memory, requesterName(access.requester),
                   "oversized access: size=" + std::to_string(access.size) +
                       " at addr=" + std::to_string(access.addr),
                   {}, access.tile);
  }
  if (access.addr % access.size != 0) {
    throw SimError(ErrorKind::Memory, requesterName(access.requester),
                   "misaligned access: addr=" + std::to_string(access.addr) +
                       " size=" + std::to_string(access.size),
                   {}, access.tile);
  }
  if (access.tile >= config_.num_tiles) {
    throw SimError(ErrorKind::Memory, requesterName(access.requester),
                   "access from tile " + std::to_string(access.tile) +
                       " but the memory system has " +
                       std::to_string(config_.num_tiles) + " tile(s)",
                   {}, access.tile);
  }
  const std::uint32_t who = requesterIndex(access);
  const bool is_mmio = isMmio(access.addr);
  if (is_mmio) {
    // The access must stay inside its own tile's window: a straddling
    // access would silently touch the neighbouring tile's device.
    if ((access.addr - config_.mmio_base) % config_.mmio_size + access.size >
        config_.mmio_size) {
      throw SimError(ErrorKind::Memory, requesterName(access.requester),
                     "MMIO access crosses the window end: addr=" +
                         std::to_string(access.addr),
                     {}, access.tile);
    }
  } else if (!sram_.inBounds(access.addr, access.size)) {
    throw SimError(ErrorKind::Memory, requesterName(access.requester),
                   "SRAM access out of bounds: addr=" +
                       std::to_string(access.addr) +
                       " size=" + std::to_string(access.size) +
                       " sram_bytes=" + std::to_string(sram_.size()),
                   {}, access.tile);
  }
  // Per-requester id stream: the id depends only on this requester's own
  // submission count, never on cross-requester interleaving. +1 keeps ids
  // clear of kInvalidRequest.
  const RequestId id = next_seq_[who]++ * num_requesters_ + who + 1;
  if (is_mmio) {
    ++*mmio_requests_[who];
  } else {
    ++*(access.is_write ? writes_[who] : reads_[who]);
  }
  if (staging_) {
    // Threaded epoch: park in this requester's private lane; the epoch
    // barrier's drainStagedSubmissions() moves it into the shared queues
    // in canonical serial order. Everything touched on this path (seq,
    // counters, lane) is owned by `who`, so concurrent submits from
    // different requesters never race.
    stage_[who].push_back({id, access});
    return id;
  }
  (is_mmio ? mmio_queue_ : sram_queue_).push_back({id, access});
  return id;
}

void MemorySystem::beginStagedSubmission() { staging_ = true; }

void MemorySystem::drainStagedSubmissions() {
  // Canonical serial arrival order: the serial multi-tile loop ticks every
  // device (HHT role, odd indices) in tile order, then every core (CPU
  // role, even indices) in tile order. Reproducing that order here makes
  // queue contents — and therefore arbitration history and snapshot bytes
  // — identical to the serial schedule.
  const auto drain_lane = [this](std::uint32_t who) {
    for (const Pending& p : stage_[who]) {
      (isMmio(p.access.addr) ? mmio_queue_ : sram_queue_).push_back(p);
    }
    stage_[who].clear();
  };
  for (std::uint32_t who = 1; who < num_requesters_; who += 2) drain_lane(who);
  for (std::uint32_t who = 0; who < num_requesters_; who += 2) drain_lane(who);
}

void MemorySystem::endStagedSubmission() {
  drainStagedSubmissions();  // defensive: staged work must never be dropped
  staging_ = false;
}

std::optional<std::uint32_t> MemorySystem::takeCompleted(RequestId id) {
  auto response = takeResponse(id);
  if (!response) return std::nullopt;
  if (response->poisoned) {
    throw sim::SimError(sim::ErrorKind::Memory, "mem",
                        "poisoned response consumed through takeCompleted "
                        "(caller has no fault-handling path)");
  }
  return response->data;
}

void MemorySystem::grant(const Pending& pending, Cycle now) {
  const MemAccess& a = pending.access;
  Cycle latency = config_.sram_latency;
  Cache* cache = a.requester == Requester::Cpu ? cpu_cache_.get()
                                               : hht_cache_.get();
  if (cache != nullptr) {
    latency = cache->access(a.addr, a.is_write);
    if (config_.prefetch_enabled && cache == cpu_cache_.get() &&
        cache->lastAccessMissed()) {
      // Queue the next lines; filled opportunistically from spare slots.
      const Addr line = a.addr - a.addr % config_.cache.line_bytes;
      for (std::uint32_t d = 1; d <= config_.prefetch_degree; ++d) {
        const Addr target = line + d * config_.cache.line_bytes;
        if (sram_.inBounds(target, config_.cache.line_bytes) &&
            prefetch_queue_.size() < 16) {
          prefetch_queue_.push_back(target);
        }
      }
    }
  }
  if (latency == 0) latency = 1;

  if (a.is_write) {
    // Posted write: applied at grant, no completion record — no requester
    // ever waits on a store (the SRAM absorbs it), so recording one would
    // leak and keep idle() false forever.
    sram_.write(a.addr, a.size, a.wdata);
    ++*grants_;
    ++*grants_by_[requesterIndex(a)];
    if (trace_ != nullptr && trace_->enabled(obs::Category::kMem)) {
      trace_->emit(now, obs::Category::kMem, obs::Component::kMem,
                   obs::EventKind::kMemGrant, a.addr,
                   static_cast<std::uint64_t>(a.requester) |
                       (std::uint64_t{a.is_write} << 1) |
                       (static_cast<std::uint64_t>(a.tile) << 2) |
                       (static_cast<std::uint64_t>(sram_queue_.size()) << 8));
    }
    return;
  }
  std::uint32_t data = sram_.read(a.addr, a.size);
  bool poisoned = false;
  if (sram_.latentCount() != 0) {
    // At-rest SECDED (DESIGN.md §15). Sram::read returns the true data;
    // a word carrying one latent flip is corrected in flight (the cell
    // stays dirty until a write or the scrubber refreshes it), two or
    // more flips are uncorrectable: the observed (corrupted) bits are
    // delivered poisoned. Aligned 1/2/4-byte accesses never straddle a
    // 32-bit ECC word, so exactly one registry lookup covers the access.
    const std::uint32_t mask = sram_.latentMask(a.addr);
    if (mask != 0) {
      if (std::popcount(mask) == 1) {
        ++*secded_demand_corrected_;
      } else {
        ++*secded_demand_uncorrectable_;
        const std::uint32_t shift = (a.addr & 3u) * 8;
        const std::uint32_t keep =
            a.size == 4 ? ~0u : (1u << (a.size * 8)) - 1u;
        data ^= (mask >> shift) & keep;
        poisoned = true;
      }
    }
  }
  sim::FaultInjector* const injector = injectors_[a.tile];
  if (injector != nullptr) {
    // ECC path: a flip on the read port is always *detected* (SECDED-style
    // model); the controller re-reads up to ecc_retry_limit times, each
    // attempt paying another array access. A flip that recurs on every
    // attempt is delivered poisoned — consumers must not use the payload.
    const std::uint32_t clean = data;
    if (injector->corruptReadData(data)) {
      ++*ecc_detected_;
      const std::uint32_t limit = injector->config().ecc_retry_limit;
      std::uint32_t attempt = 0;
      for (; attempt < limit; ++attempt) {
        ++*ecc_retries_;
        latency += config_.sram_latency;
        data = clean;
        if (!injector->corruptReadData(data)) break;
      }
      if (attempt < limit) {
        ++*ecc_corrected_;
      } else {
        ++*ecc_uncorrectable_;
        poisoned = true;
      }
    }
    if (injector->dropResponse()) {
      // Dropped response: the controller times out and re-requests; the
      // requester just sees a long-latency completion.
      ++*drop_recoveries_;
      latency += injector->config().drop_penalty_cycles;
    }
    if (injector->delayResponse()) {
      ++*delayed_responses_;
      latency += injector->config().delay_cycles;
    }
  }
  in_flight_.push_back({pending.id, now + latency, data, poisoned});
  ++*grants_;
  ++*grants_by_[requesterIndex(a)];
  if (trace_ != nullptr && trace_->enabled(obs::Category::kMem)) {
    // b packs requester | is_write<<1 | tile<<2 | queue-depth-at-grant<<8,
    // so the trace carries request-queue occupancy without a per-cycle
    // event (tile is 0 on a single-tile machine: payloads unchanged).
    trace_->emit(now, obs::Category::kMem, obs::Component::kMem,
                 obs::EventKind::kMemGrant, a.addr,
                 static_cast<std::uint64_t>(a.requester) |
                     (std::uint64_t{a.is_write} << 1) |
                     (static_cast<std::uint64_t>(a.tile) << 2) |
                     (static_cast<std::uint64_t>(sram_queue_.size()) << 8));
  }
  HHT_LOG_AT(Trace, "mem", "grant id=%llu %s addr=0x%x done@%llu",
             static_cast<unsigned long long>(pending.id),
             a.is_write ? "W" : "R", a.addr,
             static_cast<unsigned long long>(now + latency));
}

// Coalesced active/drained occupancy transitions (one kPhase event per
// contiguous span). Host-only; see DESIGN.md §12 for the resume contract.
void MemorySystem::traceTick(Cycle now) {
  if (!trace_->enabled(obs::Category::kMem)) return;
  const std::uint8_t bucket =
      idle() ? obs::kBucketDrained : obs::kBucketActive;
  if (bucket != trace_bucket_) {
    trace_bucket_ = bucket;
    trace_->emit(now, obs::Category::kMem, obs::Component::kMem,
                 obs::EventKind::kPhase, bucket);
  }
}

void MemorySystem::tick(Cycle now) {
  if (trace_ != nullptr) traceTick(now);
  // Pure-stall fast path: nothing queued, nothing in flight, no patrol
  // read due — the whole tick is a no-op, so skip the arbitration and
  // conflict bookkeeping below. This is the common case whenever the CPU
  // computes out of registers (naive mode pays this every such cycle).
  if (in_flight_.empty() && sram_queue_.empty() && mmio_queue_.empty() &&
      prefetch_queue_.empty() &&
      !(config_.scrub_enabled && now >= next_scrub_cycle_)) {
    return;
  }
  // 1. Retire accesses whose latency has elapsed.
  std::erase_if(in_flight_, [&](const InFlight& f) {
    if (f.done_at > now) return false;
    completed_[(f.id - 1) % num_requesters_].emplace_back(
        f.id, MemResponse{f.data, f.poisoned});
    return true;
  });

  // 2. Arbitrate SRAM grant slots over the 2*num_tiles requester ports.
  std::uint32_t slots_left = config_.grants_per_cycle;
  for (std::uint32_t slot = 0; slot < config_.grants_per_cycle; ++slot) {
    if (sram_queue_.empty()) break;
    --slots_left;

    std::uint64_t present = 0;
    for (const Pending& p : sram_queue_) {
      present |= 1ull << requesterIndex(p.access);
    }
    const std::uint32_t winner = pickRequester(present);
    // Oldest request of the winning requester: taking the first queue
    // entry with the matching port preserves per-requester program order.
    auto it = std::find_if(sram_queue_.begin(), sram_queue_.end(),
                           [&](const Pending& p) {
                             return requesterIndex(p.access) == winner;
                           });
    grant(*it, now);
    sram_queue_.erase(it);
  }
  // Requesters left with work waiting lost arbitration this cycle. Each
  // stalled *requester* counts one conflict cycle regardless of how many
  // of its requests sat in the queue — the counter answers "how many
  // cycles did this port wait", and a deferred request re-arbitrated next
  // cycle must not be double-counted as a fresh conflict.
  std::uint64_t stalled = 0;
  for (const Pending& p : sram_queue_) {
    stalled |= 1ull << requesterIndex(p.access);
  }
  if (stalled != 0) {
    std::uint64_t stalled_by_role[2] = {0, 0};
    for (std::uint32_t r = 0; r < num_requesters_; ++r) {
      if ((stalled >> r) & 1u) {
        ++*conflict_cycles_[r];
        ++stalled_by_role[static_cast<int>(requesterRole(r))];
      }
    }
    if (trace_ != nullptr && trace_->enabled(obs::Category::kMem)) {
      trace_->emit(now, obs::Category::kMem, obs::Component::kMem,
                   obs::EventKind::kMemConflict, stalled_by_role[0],
                   stalled_by_role[1]);
    }
  }

  // Spare slots feed the stream prefetcher (demand traffic always wins).
  while (slots_left > 0 && !prefetch_queue_.empty()) {
    const Addr target = prefetch_queue_.front();
    prefetch_queue_.erase(prefetch_queue_.begin());
    if (cpu_cache_ && cpu_cache_->install(target)) {
      ++*prefetch_fills_;
    }
    --slots_left;
  }

  // The patrol scrubber is the lowest-priority requester class: it takes
  // a slot only after demand traffic and the prefetcher are satisfied. A
  // due patrol read that finds no spare bandwidth counts a conflict cycle
  // and retries every tick until one frees up.
  if (config_.scrub_enabled && now >= next_scrub_cycle_) {
    if (slots_left > 0) {
      scrubStep(now);
      next_scrub_cycle_ = now + config_.scrub_period;
    } else {
      ++*scrub_conflict_cycles_;
    }
  }

  // 3. MMIO windows (device-adjacent ports; no SRAM bandwidth consumed).
  //    One window per tile, each routed to that tile's device.
  //    Per-requester FIFO: a stalled CPU read must not block the
  //    programmable HHT's firmware-side port and vice versa, but each
  //    requester's own accesses stay in program order.
  std::uint64_t blocked = 0;
  std::erase_if(mmio_queue_, [&](Pending& p) {
    const std::uint32_t who = requesterIndex(p.access);
    if ((blocked >> who) & 1u) return false;
    const Addr window = p.access.addr - config_.mmio_base;
    const std::uint32_t window_tile = window / config_.mmio_size;
    MmioDevice* device = mmio_devices_[window_tile];
    if (device == nullptr) {
      // Unmapped MMIO: reads return 0, writes are dropped.
      if (!p.access.is_write) {
        completed_[(p.id - 1) % num_requesters_].emplace_back(
            p.id, MemResponse{0, false});
      }
      return true;
    }
    const Addr offset = window % config_.mmio_size;
    if (p.access.is_write) {
      device->mmioWrite(offset, p.access.size, p.access.wdata,
                        p.access.requester);
      return true;  // posted, like SRAM stores
    }
    const MmioReadResult result =
        device->mmioRead(offset, p.access.size, p.access.requester);
    if (!result.ready) {
      blocked |= 1ull << who;  // retry next cycle; requester stays stalled
      return false;
    }
    completed_[(p.id - 1) % num_requesters_].emplace_back(
        p.id, MemResponse{result.data, false});
    return true;
  });
}

void MemorySystem::scrubStep(Cycle now) {
  ++*scrub_reads_;
  const std::uint32_t mask = sram_.latentMask(scrub_addr_);
  std::uint64_t outcome = 0;
  if (mask != 0) {
    if (std::popcount(mask) == 1) {
      // Correctable: the patrol read runs the word through SECDED and
      // writes the corrected data back, clearing the latent flip.
      sram_.clearLatentWord(scrub_addr_);
      ++*scrub_corrected_;
      outcome = 1;
    } else {
      // Uncorrectable pair: the scrubber can only report it; a demand
      // read of this word will deliver a poisoned response.
      ++*scrub_uncorrectable_;
      outcome = 2;
    }
  }
  if (trace_ != nullptr && trace_->enabled(obs::Category::kScrub)) {
    trace_->emit(now, obs::Category::kScrub, obs::Component::kMem,
                 obs::EventKind::kScrubGrant, scrub_addr_, outcome);
  }
  scrub_addr_ += 4;
  if (static_cast<std::size_t>(scrub_addr_) >= sram_.size()) scrub_addr_ = 0;
}

std::uint32_t MemorySystem::pickRequester(std::uint64_t present) {
  const std::uint32_t R = num_requesters_;
  // Scan helper: first requester with work at-or-after `from`, wrapping.
  const auto scan = [&](std::uint32_t from, std::uint64_t mask) {
    for (std::uint32_t i = 0; i < R; ++i) {
      const std::uint32_t r = (from + i) % R;
      if ((mask >> r) & 1u) return r;
    }
    return R;  // unreachable when mask != 0
  };

  if (config_.policy == ArbiterPolicy::RoundRobin) {
    const std::uint32_t r = scan(rr_next_, present);
    rr_next_ = (r + 1) % R;
    return r;
  }

  // CpuPriority: every CPU-role port outranks every HHT-role port, with
  // rotation inside each role so no tile monopolizes its role's turn.
  // Role masks: CPU-role ports are the even indices.
  const std::uint64_t all = R >= 64 ? ~0ull : (1ull << R) - 1;
  const std::uint64_t cpu_mask = present & (0x5555'5555'5555'5555ull & all);
  const std::uint64_t hht_mask = present & ~0x5555'5555'5555'5555ull;
  if (cpu_mask != 0 && hht_mask != 0 && config_.cpu_starvation_limit != 0 &&
      cpu_streak_ >= config_.cpu_starvation_limit) {
    // Starvation bound: the CPU side has taken cpu_starvation_limit
    // consecutive grants while HHT work waited; force one HHT grant so a
    // saturating CPU stream cannot defer the BE indefinitely.
    const std::uint32_t r = scan(prio_next_[1], hht_mask);
    prio_next_[1] = (r + 2) % R;
    cpu_streak_ = 0;
    ++*forced_rotations_;
    return r;
  }
  if (cpu_mask != 0) {
    const std::uint32_t r = scan(prio_next_[0], cpu_mask);
    prio_next_[0] = (r + 2) % R;
    if (hht_mask != 0) {
      ++cpu_streak_;  // a CPU grant that left HHT work waiting
    } else {
      cpu_streak_ = 0;
    }
    return r;
  }
  const std::uint32_t r = scan(prio_next_[1], hht_mask);
  prio_next_[1] = (r + 2) % R;
  cpu_streak_ = 0;
  return r;
}

Cycle MemorySystem::responseReadyCycle(RequestId id, Cycle now) const {
  for (const auto& [done_id, response] : completed_[(id - 1) % num_requesters_]) {
    (void)response;
    if (done_id == id) return now + 1;
  }
  for (const InFlight& f : in_flight_) {
    // The response enters completed_ during tick(done_at); consumers tick
    // before the memory system, so the first successful poll is done_at+1.
    if (f.id == id) return std::max(f.done_at, now) + 1;
  }
  return now + 1;  // still queued (SRAM or MMIO): poll again next cycle
}

Cycle MemorySystem::nextEventCycle(Cycle now) const {
  if (!sram_queue_.empty() || !mmio_queue_.empty() ||
      !prefetch_queue_.empty()) {
    return now + 1;  // arbitration / MMIO retry runs every tick
  }
  Cycle earliest = sim::kNeverCycle;
  if (config_.scrub_enabled) {
    // Quiescence fast-forward must land exactly on patrol ticks: a skipped
    // stretch may not jump over a due scrub read.
    earliest = std::max(next_scrub_cycle_, now + 1);
  }
  for (const InFlight& f : in_flight_) {
    earliest = std::min(earliest, f.done_at);
  }
  return earliest == sim::kNeverCycle ? sim::kNeverCycle
                                      : std::max(earliest, now + 1);
}

void MemorySystem::attachMmioDevice(MmioDevice* device, std::uint32_t tile) {
  if (device == nullptr) {
    throw sim::SimError(sim::ErrorKind::Mmio, "mem",
                        "attachMmioDevice(nullptr): detaching the device "
                        "window is not supported");
  }
  if (tile >= config_.num_tiles) {
    throw sim::SimError(sim::ErrorKind::Mmio, "mem",
                        "attachMmioDevice: tile " + std::to_string(tile) +
                            " out of range (num_tiles=" +
                            std::to_string(config_.num_tiles) + ")");
  }
  if (mmio_devices_[tile] != nullptr) {
    throw sim::SimError(sim::ErrorKind::Mmio, "mem",
                        "attachMmioDevice: a device is already mapped in tile " +
                            std::to_string(tile) +
                            "'s window; silently replacing it would orphan "
                            "in-flight MMIO requests");
  }
  mmio_devices_[tile] = device;
}

void MemorySystem::cancelAll() {
  sram_queue_.clear();
  mmio_queue_.clear();
  prefetch_queue_.clear();
  in_flight_.clear();
  for (auto& lane : completed_) lane.clear();
  for (auto& lane : stage_) lane.clear();
}

std::string MemorySystem::describeState() const {
  std::size_t completed_total = 0;
  for (const auto& lane : completed_) completed_total += lane.size();
  std::ostringstream os;
  os << "mem: sram_queue=" << sram_queue_.size()
     << " mmio_queue=" << mmio_queue_.size()
     << " in_flight=" << in_flight_.size()
     << " completed_unclaimed=" << completed_total << "\n";
  auto line = [&os](const char* tag, const Pending& p) {
    os << "  " << tag << " id=" << p.id << " "
       << requesterLabel(requesterIndex(p.access)) << " "
       << (p.access.is_write ? "W" : "R") << " addr=0x" << std::hex
       << p.access.addr << std::dec << " size=" << p.access.size << "\n";
  };
  std::size_t shown = 0;
  for (const Pending& p : sram_queue_) {
    if (++shown > 8) break;
    line("sram", p);
  }
  shown = 0;
  for (const Pending& p : mmio_queue_) {
    if (++shown > 8) break;
    line("mmio", p);
  }
  for (const InFlight& f : in_flight_) {
    os << "  in-flight id=" << f.id << " done_at=" << f.done_at
       << (f.poisoned ? " POISONED" : "") << "\n";
  }
  return os.str();
}

namespace {

void writeAccess(sim::StateWriter& w, const MemAccess& a) {
  w.u32(a.addr);
  w.u32(a.size);
  w.b(a.is_write);
  w.u32(a.wdata);
  w.u8(static_cast<std::uint8_t>(a.requester));
  w.u8(a.tile);
}

MemAccess readAccess(sim::StateReader& r) {
  MemAccess a;
  a.addr = r.u32();
  a.size = r.u32();
  a.is_write = r.b();
  a.wdata = r.u32();
  a.requester = static_cast<Requester>(r.u8());
  a.tile = r.u8();
  return a;
}

}  // namespace

void MemorySystem::serialize(sim::StateWriter& w) const {
  w.tag("MEMS");
  sram_.serialize(w);
  w.b(cpu_cache_ != nullptr);
  if (cpu_cache_) cpu_cache_->serialize(w);
  w.b(hht_cache_ != nullptr);
  if (hht_cache_) hht_cache_->serialize(w);

  auto write_queue = [&w](const std::vector<Pending>& q) {
    w.u64(q.size());
    for (const Pending& p : q) {
      w.u64(p.id);
      writeAccess(w, p.access);
    }
  };
  write_queue(sram_queue_);
  write_queue(mmio_queue_);

  w.u64(prefetch_queue_.size());
  for (Addr a : prefetch_queue_) w.u32(a);

  w.u64(in_flight_.size());
  for (const InFlight& f : in_flight_) {
    w.u64(f.id);
    w.u64(f.done_at);
    w.u32(f.data);
    w.b(f.poisoned);
  }

  // Unclaimed responses are kept per-lane in retirement order; serialize
  // flattened and sorted by id so identical states produce identical
  // snapshot bytes regardless of the order responses retired.
  std::vector<std::pair<RequestId, MemResponse>> done;
  for (const auto& lane : completed_) {
    done.insert(done.end(), lane.begin(), lane.end());
  }
  std::sort(done.begin(), done.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  w.u64(done.size());
  for (const auto& [id, response] : done) {
    w.u64(id);
    w.u32(response.data);
    w.b(response.poisoned);
  }

  // Snapshot v6: per-requester id-stream counters (replaces the single
  // global next_id_ of v5 and earlier).
  w.u64(next_seq_.size());
  for (const RequestId seq : next_seq_) w.u64(seq);
  w.u32(rr_next_);
  w.u32(prio_next_[0]);
  w.u32(prio_next_[1]);
  w.u64(cpu_streak_);
  w.u32(scrub_addr_);         // snapshot v5: patrol walk state
  w.u64(next_scrub_cycle_);
  stats_.serialize(w);
}

void MemorySystem::deserialize(sim::StateReader& r) {
  r.expectTag("MEMS");
  sram_.deserialize(r);
  const bool has_cpu_cache = r.b();
  if (has_cpu_cache != (cpu_cache_ != nullptr)) {
    throw sim::SimError(sim::ErrorKind::Checkpoint, "mem",
                        "snapshot CPU-cache presence disagrees with config");
  }
  if (cpu_cache_) cpu_cache_->deserialize(r);
  const bool has_hht_cache = r.b();
  if (has_hht_cache != (hht_cache_ != nullptr)) {
    throw sim::SimError(sim::ErrorKind::Checkpoint, "mem",
                        "snapshot HHT-cache presence disagrees with config");
  }
  if (hht_cache_) hht_cache_->deserialize(r);

  auto read_queue = [&r](std::vector<Pending>& q) {
    q.clear();
    const std::uint64_t n = r.u64();
    for (std::uint64_t i = 0; i < n; ++i) {
      const RequestId id = r.u64();
      q.push_back({id, readAccess(r)});
    }
  };
  read_queue(sram_queue_);
  read_queue(mmio_queue_);

  prefetch_queue_.clear();
  const std::uint64_t n_prefetch = r.u64();
  for (std::uint64_t i = 0; i < n_prefetch; ++i) {
    prefetch_queue_.push_back(r.u32());
  }

  in_flight_.clear();
  const std::uint64_t n_flight = r.u64();
  for (std::uint64_t i = 0; i < n_flight; ++i) {
    InFlight f;
    f.id = r.u64();
    f.done_at = r.u64();
    f.data = r.u32();
    f.poisoned = r.b();
    in_flight_.push_back(f);
  }

  for (auto& lane : completed_) lane.clear();
  const std::uint64_t n_done = r.u64();
  for (std::uint64_t i = 0; i < n_done; ++i) {
    const RequestId id = r.u64();
    MemResponse response;
    response.data = r.u32();
    response.poisoned = r.b();
    completed_[(id - 1) % num_requesters_].emplace_back(id, response);
  }

  const std::uint64_t n_seq = r.u64();
  if (n_seq != next_seq_.size()) {
    throw sim::SimError(sim::ErrorKind::Checkpoint, "mem",
                        "snapshot requester count disagrees with config: " +
                            std::to_string(n_seq) + " vs " +
                            std::to_string(next_seq_.size()));
  }
  for (RequestId& seq : next_seq_) seq = r.u64();
  rr_next_ = r.u32();
  prio_next_[0] = r.u32();
  prio_next_[1] = r.u32();
  cpu_streak_ = r.u64();
  scrub_addr_ = r.u32();
  next_scrub_cycle_ = r.u64();
  stats_.deserialize(r);
}

void MemorySystem::finalizeStats() {
  if (cpu_cache_) {
    stats_.counter("mem.cpu.cache_hits") = cpu_cache_->hits();
    stats_.counter("mem.cpu.cache_misses") = cpu_cache_->misses();
    stats_.counter("mem.cpu.cache_writebacks") = cpu_cache_->writebacks();
  }
  if (hht_cache_) {
    stats_.counter("mem.hht.cache_hits") = hht_cache_->hits();
    stats_.counter("mem.hht.cache_misses") = hht_cache_->misses();
    stats_.counter("mem.hht.cache_writebacks") = hht_cache_->writebacks();
  }
}

}  // namespace hht::mem
