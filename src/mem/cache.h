#pragma once

#include <cstdint>
#include <vector>

#include "sim/state_io.h"
#include "sim/stats.h"
#include "sim/types.h"

namespace hht::mem {

using sim::Addr;
using sim::Cycle;

/// L1D cache configuration for the "high-performance processor integration"
/// of §3.2 (the MCU integration runs cache-less against on-chip SRAM).
struct CacheConfig {
  std::uint32_t size_bytes = 16 * 1024;
  std::uint32_t line_bytes = 32;
  std::uint32_t ways = 4;
  Cycle hit_latency = 1;      ///< cycles for a hit (beyond request issue)
  Cycle miss_penalty = 20;    ///< extra cycles to fill a line from backing RAM
  Cycle writeback_penalty = 8; ///< extra cycles when the victim line is dirty
};

/// Timing-only set-associative write-back/write-allocate cache with true-LRU
/// replacement.
///
/// Functional data always lives in the Sram backing store (the simulation is
/// single-master-at-a-time and element-granular, so no coherence state is
/// needed); the cache tracks tags and dirty bits purely to decide each
/// access's latency — exactly the abstraction level of the paper's modified
/// Spike simulator.
class Cache {
 public:
  explicit Cache(const CacheConfig& config);

  /// Account one access; returns its total latency in cycles and updates
  /// tag/LRU/dirty state.
  Cycle access(Addr addr, bool is_write);

  /// Did the most recent access() miss? (Drives the prefetcher.)
  bool lastAccessMissed() const { return last_missed_; }

  /// Prefetch fill: bring the line in (evicting LRU, possibly dirty)
  /// without charging demand-access latency or hit/miss statistics.
  /// Returns false if the line was already resident (prefetch was useless).
  bool install(Addr addr);

  /// Residency probe: is `addr`'s line present? Pure lookup — no LRU,
  /// counter or dirty-bit side effects (prefetchers use it to skip targets
  /// that are already resident without perturbing replacement state).
  bool contains(Addr addr) const;

  /// Drop all lines (dirty contents are functionally in SRAM already).
  void flush();

  const CacheConfig& config() const { return config_; }
  std::uint32_t numSets() const { return num_sets_; }

  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }
  std::uint64_t writebacks() const { return writebacks_; }
  std::uint64_t prefetchFills() const { return prefetch_fills_; }
  double hitRate() const {
    const std::uint64_t total = hits_ + misses_;
    return total == 0 ? 0.0 : static_cast<double>(hits_) / static_cast<double>(total);
  }

  void serialize(sim::StateWriter& w) const {
    w.tag("CACH");
    w.u64(lines_.size());
    for (const Line& line : lines_) {
      w.u64(line.tag);
      w.b(line.valid);
      w.b(line.dirty);
      w.u64(line.lru_stamp);
    }
    w.u64(access_counter_);
    w.u64(hits_);
    w.u64(misses_);
    w.u64(writebacks_);
    w.u64(prefetch_fills_);
    w.b(last_missed_);
  }

  void deserialize(sim::StateReader& r) {
    r.expectTag("CACH");
    const std::uint64_t n = r.u64();
    if (n != lines_.size()) {
      throw sim::SimError(sim::ErrorKind::Checkpoint, "cache",
                          "snapshot line count " + std::to_string(n) +
                              " != configured " + std::to_string(lines_.size()));
    }
    for (Line& line : lines_) {
      line.tag = r.u64();
      line.valid = r.b();
      line.dirty = r.b();
      line.lru_stamp = r.u64();
    }
    access_counter_ = r.u64();
    hits_ = r.u64();
    misses_ = r.u64();
    writebacks_ = r.u64();
    prefetch_fills_ = r.u64();
    last_missed_ = r.b();
  }

 private:
  struct Line {
    std::uint64_t tag = 0;
    bool valid = false;
    bool dirty = false;
    std::uint64_t lru_stamp = 0;  ///< larger = more recently used
  };

  CacheConfig config_;
  std::uint32_t num_sets_;
  std::vector<Line> lines_;  ///< num_sets_ * ways, set-major
  std::uint64_t access_counter_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t writebacks_ = 0;
  std::uint64_t prefetch_fills_ = 0;
  bool last_missed_ = false;
};

}  // namespace hht::mem
