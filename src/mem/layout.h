#pragma once

#include <span>
#include <stdexcept>

#include "mem/sram.h"
#include "sim/types.h"

namespace hht::mem {

/// Bump allocator over the simulated address space.
///
/// The experiment harness uses it to place the CSR arrays, the vector, and
/// the output buffer into simulated SRAM before a kernel run, exactly as a
/// linker/loader would on the real MCU.
class Arena {
 public:
  Arena(Addr base, std::size_t size) : base_(base), limit_(base + size), cursor_(base) {}

  /// Reserve `bytes`, aligned to `align` (power of two). Throws when the
  /// arena is exhausted — a mis-sized workload, not a simulation condition.
  Addr allocate(std::size_t bytes, std::size_t align = 4) {
    const Addr aligned =
        static_cast<Addr>((cursor_ + (align - 1)) & ~(static_cast<Addr>(align) - 1));
    if (aligned + bytes > limit_ || aligned < cursor_) {
      throw std::runtime_error("simulated memory arena exhausted");
    }
    cursor_ = static_cast<Addr>(aligned + bytes);
    return aligned;
  }

  /// Reserve and copy a host array into simulated memory; returns its base.
  template <typename T>
  Addr place(Sram& sram, std::span<const T> values, std::size_t align = 4) {
    const Addr addr = allocate(values.size_bytes(), align);
    sram.pokeArray(addr, values);
    return addr;
  }

  Addr cursor() const { return cursor_; }
  std::size_t remaining() const { return limit_ - cursor_; }

 private:
  Addr base_;
  Addr limit_;
  Addr cursor_;
};

}  // namespace hht::mem
