#pragma once

#include <cstring>
#include <span>
#include <stdexcept>
#include <vector>

#include "sim/error.h"
#include "sim/state_io.h"
#include "sim/types.h"

namespace hht::mem {

using sim::Addr;

/// Functional backing store: a flat byte array modelling the MCU's on-chip
/// SRAM (Table 1: 1 MB). Timing lives in MemorySystem; this class only
/// holds state and does bounds-checked byte access.
class Sram {
 public:
  explicit Sram(std::size_t bytes) : bytes_(bytes, 0) {}

  std::size_t size() const { return bytes_.size(); }

  bool inBounds(Addr addr, std::size_t len) const {
    return static_cast<std::size_t>(addr) + len <= bytes_.size() &&
           static_cast<std::size_t>(addr) + len >= len;  // overflow guard
  }

  std::uint32_t read(Addr addr, std::uint32_t size) const {
    check(addr, size);
    std::uint32_t v = 0;
    std::memcpy(&v, bytes_.data() + addr, size);
    return v;
  }

  void write(Addr addr, std::uint32_t size, std::uint32_t value) {
    check(addr, size);
    std::memcpy(bytes_.data() + addr, &value, size);
  }

  /// Bulk helpers for loading workloads / reading back results. These are
  /// host-side conveniences and carry no simulated cost.
  void pokeBytes(Addr addr, std::span<const std::byte> data) {
    check(addr, data.size());
    if (data.empty()) return;  // empty span has a null data(); memcpy forbids it
    std::memcpy(bytes_.data() + addr, data.data(), data.size());
  }
  void peekBytes(Addr addr, std::span<std::byte> out) const {
    check(addr, out.size());
    if (out.empty()) return;
    std::memcpy(out.data(), bytes_.data() + addr, out.size());
  }

  template <typename T>
  void pokeValue(Addr addr, const T& value) {
    static_assert(std::is_trivially_copyable_v<T>);
    pokeBytes(addr, std::as_bytes(std::span(&value, 1)));
  }
  template <typename T>
  T peekValue(Addr addr) const {
    static_assert(std::is_trivially_copyable_v<T>);
    T out{};
    peekBytes(addr, std::as_writable_bytes(std::span(&out, 1)));
    return out;
  }

  template <typename T>
  void pokeArray(Addr addr, std::span<const T> values) {
    static_assert(std::is_trivially_copyable_v<T>);
    pokeBytes(addr, std::as_bytes(values));
  }
  template <typename T>
  std::vector<T> peekArray(Addr addr, std::size_t count) const {
    static_assert(std::is_trivially_copyable_v<T>);
    std::vector<T> out(count);
    peekBytes(addr, std::as_writable_bytes(std::span(out)));
    return out;
  }

  void serialize(sim::StateWriter& w) const {
    w.tag("SRAM");
    w.bytes(bytes_.data(), bytes_.size());
  }

  /// The SRAM is sized by config, never by snapshot: a size mismatch means
  /// the snapshot belongs to a different SystemConfig.
  void deserialize(sim::StateReader& r) {
    r.expectTag("SRAM");
    std::vector<std::uint8_t> blob = r.bytes();
    if (blob.size() != bytes_.size()) {
      throw sim::SimError(sim::ErrorKind::Checkpoint, "sram",
                          "snapshot SRAM size " + std::to_string(blob.size()) +
                              " != configured " + std::to_string(bytes_.size()));
    }
    bytes_ = std::move(blob);
  }

 private:
  void check(Addr addr, std::size_t len) const {
    if (!inBounds(addr, len)) {
      throw std::out_of_range("Sram access out of bounds: addr=" +
                              std::to_string(addr) + " len=" +
                              std::to_string(len) + " size=" +
                              std::to_string(bytes_.size()));
    }
  }

  std::vector<std::uint8_t> bytes_;
};

}  // namespace hht::mem
