#pragma once

#include <cstring>
#include <map>
#include <span>
#include <stdexcept>
#include <vector>

#include "sim/error.h"
#include "sim/state_io.h"
#include "sim/types.h"

namespace hht::mem {

using sim::Addr;

/// Functional backing store: a flat byte array modelling the MCU's on-chip
/// SRAM (Table 1: 1 MB). Timing lives in MemorySystem; this class only
/// holds state and does bounds-checked byte access.
class Sram {
 public:
  explicit Sram(std::size_t bytes) : bytes_(bytes, 0) {}

  std::size_t size() const { return bytes_.size(); }

  bool inBounds(Addr addr, std::size_t len) const {
    return static_cast<std::size_t>(addr) + len <= bytes_.size() &&
           static_cast<std::size_t>(addr) + len >= len;  // overflow guard
  }

  std::uint32_t read(Addr addr, std::uint32_t size) const {
    check(addr, size);
    std::uint32_t v = 0;
    std::memcpy(&v, bytes_.data() + addr, size);
    return v;
  }

  void write(Addr addr, std::uint32_t size, std::uint32_t value) {
    check(addr, size);
    std::memcpy(bytes_.data() + addr, &value, size);
    if (!latent_.empty()) clearLatentRange(addr, size);
  }

  // --- latent-fault registry (DESIGN.md §15) ---
  //
  // `bytes_` always holds the *true* data; `latent_` records at-rest bit
  // flips per 32-bit ECC word (key = word-aligned address, value = flipped
  // bit mask). A demand read of a word with one flipped bit is corrected
  // in flight (SECDED) but the cell stays dirty until a write refreshes it
  // or the patrol scrubber cleans it; two or more flips in one word are
  // uncorrectable and the response is poisoned. With no flips registered
  // every path below is a single `empty()` test — zero-cost.

  /// XOR `mask` into the latent-flip registry of the word containing
  /// `addr`. An even re-flip of the same bits clears the entry.
  void injectLatentFlip(Addr addr, std::uint32_t mask) {
    check(addr & ~Addr{3}, 4);
    if (mask == 0) return;
    const Addr word = addr & ~Addr{3};
    const std::uint32_t merged = latent_[word] ^ mask;
    if (merged == 0) {
      latent_.erase(word);
    } else {
      latent_[word] = merged;
    }
  }

  std::size_t latentCount() const { return latent_.size(); }

  /// Flipped-bit mask of the word containing `addr` (0 = clean).
  std::uint32_t latentMask(Addr addr) const {
    if (latent_.empty()) return 0;
    auto it = latent_.find(addr & ~Addr{3});
    return it == latent_.end() ? 0 : it->second;
  }

  /// Scrub correction: drop the registry entry of the word containing
  /// `addr` (the scrubber rewrites the cell from the corrected data).
  void clearLatentWord(Addr addr) { latent_.erase(addr & ~Addr{3}); }

  /// Word-aligned addresses with latent flips, in address order.
  const std::map<Addr, std::uint32_t>& latentWords() const { return latent_; }

  /// Bulk helpers for loading workloads / reading back results. These are
  /// host-side conveniences and carry no simulated cost.
  void pokeBytes(Addr addr, std::span<const std::byte> data) {
    check(addr, data.size());
    if (data.empty()) return;  // empty span has a null data(); memcpy forbids it
    std::memcpy(bytes_.data() + addr, data.data(), data.size());
    if (!latent_.empty()) clearLatentRange(addr, data.size());
  }
  void peekBytes(Addr addr, std::span<std::byte> out) const {
    check(addr, out.size());
    if (out.empty()) return;
    std::memcpy(out.data(), bytes_.data() + addr, out.size());
  }

  template <typename T>
  void pokeValue(Addr addr, const T& value) {
    static_assert(std::is_trivially_copyable_v<T>);
    pokeBytes(addr, std::as_bytes(std::span(&value, 1)));
  }
  template <typename T>
  T peekValue(Addr addr) const {
    static_assert(std::is_trivially_copyable_v<T>);
    T out{};
    peekBytes(addr, std::as_writable_bytes(std::span(&out, 1)));
    return out;
  }

  template <typename T>
  void pokeArray(Addr addr, std::span<const T> values) {
    static_assert(std::is_trivially_copyable_v<T>);
    pokeBytes(addr, std::as_bytes(values));
  }
  template <typename T>
  std::vector<T> peekArray(Addr addr, std::size_t count) const {
    static_assert(std::is_trivially_copyable_v<T>);
    std::vector<T> out(count);
    peekBytes(addr, std::as_writable_bytes(std::span(out)));
    return out;
  }

  void serialize(sim::StateWriter& w) const {
    w.tag("SRAM");
    w.bytes(bytes_.data(), bytes_.size());
    w.u64(latent_.size());  // snapshot v5: latent-flip registry
    for (const auto& [word, mask] : latent_) {
      w.u64(word);
      w.u32(mask);
    }
  }

  /// The SRAM is sized by config, never by snapshot: a size mismatch means
  /// the snapshot belongs to a different SystemConfig.
  void deserialize(sim::StateReader& r) {
    r.expectTag("SRAM");
    std::vector<std::uint8_t> blob = r.bytes();
    if (blob.size() != bytes_.size()) {
      throw sim::SimError(sim::ErrorKind::Checkpoint, "sram",
                          "snapshot SRAM size " + std::to_string(blob.size()) +
                              " != configured " + std::to_string(bytes_.size()));
    }
    bytes_ = std::move(blob);
    latent_.clear();
    const std::uint64_t n = r.u64();
    for (std::uint64_t i = 0; i < n; ++i) {
      const Addr word = static_cast<Addr>(r.u64());
      latent_[word] = r.u32();
    }
  }

 private:
  void check(Addr addr, std::size_t len) const {
    if (!inBounds(addr, len)) {
      throw std::out_of_range("Sram access out of bounds: addr=" +
                              std::to_string(addr) + " len=" +
                              std::to_string(len) + " size=" +
                              std::to_string(bytes_.size()));
    }
  }

  void clearLatentRange(Addr addr, std::size_t len) {
    const Addr first = addr & ~Addr{3};
    const Addr last = (addr + static_cast<Addr>(len) - 1) & ~Addr{3};
    latent_.erase(latent_.lower_bound(first), latent_.upper_bound(last));
  }

  std::vector<std::uint8_t> bytes_;
  std::map<Addr, std::uint32_t> latent_;
};

}  // namespace hht::mem
