#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "mem/mmio.h"
#include "obs/trace.h"
#include "sim/state_io.h"
#include "sim/stats.h"
#include "sim/types.h"

namespace hht::mem {

using sim::Cycle;
using sim::StatSet;

/// Shared work-queue device for dynamic row distribution across tiles
/// (DESIGN.md §18).
///
/// The device occupies ONE extra MMIO window at index `num_tiles`
/// (mmio_base + num_tiles*mmio_size), enabled by
/// MemorySystemConfig::work_queue_enabled. Each tile claims row chunks by
/// reading its own claim register at offset tile*4 inside that window —
/// the offset is the tile identity, so the MmioDevice interface needs no
/// extra plumbing. A claim returns a packed chunk descriptor
///
///   packed = (row_begin << 12) | row_count       (row_count in [1, 4095])
///
/// or the sentinel 0 once every deque is drained (0 also happens to be
/// what an unmapped MMIO window reads as, so a mis-wired kernel halts
/// instead of spinning). The host seeds one chunk deque per tile; a tile
/// pops its own deque front-first and, when empty, steals from the BACK of
/// the most-loaded victim's deque (classic work-stealing: owner and thief
/// touch opposite ends, and the steal grabs the work farthest from the
/// victim's current locality).
///
/// Arbitration: the device answers at most `claims_per_cycle` claims per
/// simulated cycle (beginCycle() resets the budget; the MultiTileSystem
/// run loop calls it just before MemorySystem::tick). A claim that misses
/// the budget returns ready=false, which the memory system retries every
/// cycle in per-requester FIFO order — the contention shows up as
/// `mem.wq.conflict_cycles`, successful claims as `mem.wq.grants`, and
/// cross-tile grabs additionally as `mem.wq.steals`.
///
/// Determinism: claims are processed inside MemorySystem::tick in MMIO
/// queue arrival order, which the staged-submission epoch protocol keeps
/// canonical under tile_workers > 1, so the claim schedule — and with it
/// the whole run — is bit-identical across serial and threaded loops.
///
/// The claim log (who got which rows, in grant order) is host-side
/// observability for the per-row oracle mode; it is serialized with the
/// deques (snapshot v7) so a restored run's oracle sees the same history.
class ChunkQueueDevice : public MmioDevice {
 public:
  /// Chunk descriptors: row_count occupies the low 12 bits.
  static constexpr std::uint32_t kCountBits = 12;
  static constexpr std::uint32_t kMaxChunkRows = (1u << kCountBits) - 1;
  static constexpr std::uint32_t kMaxRowBegin = (1u << 20) - 1;

  struct Chunk {
    std::uint32_t row_begin = 0;
    std::uint32_t row_count = 0;
  };
  /// One granted claim, in grant order.
  struct Claim {
    std::uint32_t tile = 0;
    std::uint32_t row_begin = 0;
    std::uint32_t row_count = 0;
    bool stolen = false;
  };

  explicit ChunkQueueDevice(std::uint32_t num_tiles,
                            std::uint32_t claims_per_cycle = 1);

  /// Load the per-tile chunk deques (one vector per tile, index = tile).
  /// Throws SimError(Config) on an encoding-range violation or a zero-row
  /// chunk. Replaces any previous content; clears the claim log.
  void seed(const std::vector<std::vector<Chunk>>& per_tile);

  /// Reset the per-cycle claim budget. Called once per simulated cycle by
  /// the owning run loop before MemorySystem::tick processes MMIO.
  void beginCycle(Cycle now) {
    now_ = now;
    claims_this_cycle_ = 0;
  }

  MmioReadResult mmioRead(Addr offset, std::uint32_t size,
                          Requester who) override;
  /// The queue has no writable registers; writes are dropped.
  void mmioWrite(Addr offset, std::uint32_t size, std::uint32_t value,
                 Requester who) override {
    (void)offset;
    (void)size;
    (void)value;
    (void)who;
  }

  /// True once every tile deque is drained.
  bool empty() const;
  /// Rows not yet claimed, across all deques.
  std::uint64_t pendingRows() const;

  /// Granted claims in grant order (the per-row oracle drains this).
  const std::vector<Claim>& claimLog() const { return log_; }

  StatSet& stats() { return stats_; }
  const StatSet& stats() const { return stats_; }

  void setTraceSink(obs::TraceSink* sink) { trace_ = sink; }

  /// Snapshot hooks (v7): deque contents and the claim log. The per-cycle
  /// claim budget is transient (checkpoints land on cycle boundaries).
  void serialize(sim::StateWriter& w) const;
  void deserialize(sim::StateReader& r);

 private:
  static std::uint32_t pack(const Chunk& c) {
    return (c.row_begin << kCountBits) | c.row_count;
  }
  /// Grant one chunk to `tile`, or 0 when all deques are empty.
  std::uint32_t claim(std::uint32_t tile);

  std::uint32_t num_tiles_;
  std::uint32_t claims_per_cycle_;
  std::uint32_t claims_this_cycle_ = 0;
  Cycle now_ = 0;
  std::vector<std::deque<Chunk>> queues_;  ///< one per tile
  std::vector<Claim> log_;
  StatSet stats_;
  std::uint64_t* grants_;
  std::uint64_t* steals_;
  std::uint64_t* conflict_cycles_;
  obs::TraceSink* trace_ = nullptr;
};

}  // namespace hht::mem
