#pragma once

#include <cstdint>
#include <string>
#include <utility>

#include "sim/error.h"
#include "sim/types.h"

namespace hht::sim {

/// Forward-progress watchdog for a run loop.
///
/// The caller feeds it a monotonic progress sum each observation — for the
/// full system that is retired instructions + SRAM grants + HHT FIFO pops,
/// so a machine that is merely *slow* (long memory latency, throttled BE)
/// still shows progress, while a wedged one (CPU stalled on a FE read that
/// will never be ready, BE waiting on a response that was never sent) does
/// not. When the sum stays flat for `period` cycles the watchdog throws a
/// SimError carrying the caller-built diagnostic dump.
///
/// Observations are sampled every `interval` cycles (a power of two derived
/// from the period) so the per-cycle cost in the run loop is one branch.
class Watchdog {
 public:
  /// period = cycles without progress before firing; 0 disables. `tile`
  /// attributes the fired SimError to a tile (multi-tile run loops watch
  /// each tile's own progress sum with its own Watchdog).
  explicit Watchdog(Cycle period, int tile = SimError::kNoTile)
      : period_(period), tile_(tile) {
    Cycle target = period / 8;
    if (target > 1024) target = 1024;
    interval_mask_ = 0;
    while ((interval_mask_ + 1) * 2 <= target) {
      interval_mask_ = interval_mask_ * 2 + 1;  // next pow2 - 1
    }
  }

  bool enabled() const { return period_ != 0; }

  /// Cheap per-cycle gate: true when this cycle is a sampling point.
  bool due(Cycle now) const {
    return period_ != 0 && (now & interval_mask_) == 0;
  }

  /// Called instead of per-cycle sampling when the run loop is about to
  /// fast-forward across a quiescent stretch (during which the progress sum
  /// cannot change). Performs the one state-updating observation the naive
  /// loop would have made at the first sampling point after `now`, then
  /// returns the aligned cycle at which the watchdog would fire if the sum
  /// stays flat. The loop must not skip past the returned cycle: simulating
  /// it live makes due()/observe() fire with the exact naive diagnostics.
  /// Returns kNeverCycle when disabled.
  Cycle observeSkip(Cycle now, std::uint64_t progress_sum) {
    if (period_ == 0) return kNeverCycle;
    const Cycle first_sample = (now | interval_mask_) + 1;
    if (progress_sum != last_sum_) {
      last_sum_ = progress_sum;
      last_progress_ = first_sample;
    }
    Cycle fire = last_progress_ + period_;
    fire = (fire + interval_mask_) & ~interval_mask_;  // round up to a sample
    return fire > first_sample ? fire : first_sample;
  }

  /// Record the progress sum at a sampling point; throws SimError(Watchdog)
  /// once `period` cycles elapse with no change. `dump` is only invoked
  /// when firing (it is expensive to build).
  template <typename DumpFn>
  void observe(Cycle now, std::uint64_t progress_sum, DumpFn&& dump) {
    if (progress_sum != last_sum_) {
      last_sum_ = progress_sum;
      last_progress_ = now;
      return;
    }
    if (now - last_progress_ >= period_) {
      throw SimError(
          ErrorKind::Watchdog, "watchdog",
          "no forward progress for " + std::to_string(now - last_progress_) +
              " cycles (no retired instruction, no SRAM grant, no FIFO pop)",
          std::forward<DumpFn>(dump)(), tile_);
    }
  }

 private:
  Cycle period_;
  int tile_ = SimError::kNoTile;
  Cycle interval_mask_ = 0;
  Cycle last_progress_ = 0;
  std::uint64_t last_sum_ = 0;
};

}  // namespace hht::sim
