#pragma once

#include <bit>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "sim/error.h"

namespace hht::sim {

/// Byte-oriented snapshot writer. All multi-byte values are little-endian
/// regardless of host order, so a snapshot taken on one machine replays on
/// any other. Sections are framed with four-character tags (`tag()`) which
/// the reader verifies with `expectTag()` — a cheap structural checksum that
/// turns most truncation/skew bugs into a precise SimError(Checkpoint)
/// instead of silently mis-decoded state.
class StateWriter {
 public:
  StateWriter& u8(std::uint8_t v) {
    buf_.push_back(v);
    return *this;
  }
  StateWriter& b(bool v) { return u8(v ? 1u : 0u); }

  StateWriter& u32(std::uint32_t v) {
    buf_.push_back(static_cast<std::uint8_t>(v));
    buf_.push_back(static_cast<std::uint8_t>(v >> 8));
    buf_.push_back(static_cast<std::uint8_t>(v >> 16));
    buf_.push_back(static_cast<std::uint8_t>(v >> 24));
    return *this;
  }

  StateWriter& u64(std::uint64_t v) {
    u32(static_cast<std::uint32_t>(v));
    return u32(static_cast<std::uint32_t>(v >> 32));
  }

  StateWriter& f32(float v) { return u32(std::bit_cast<std::uint32_t>(v)); }

  StateWriter& str(const std::string& s) {
    u64(s.size());
    buf_.insert(buf_.end(), s.begin(), s.end());
    return *this;
  }

  StateWriter& bytes(const std::uint8_t* data, std::size_t n) {
    u64(n);
    buf_.insert(buf_.end(), data, data + n);
    return *this;
  }

  /// Write a four-character section tag, e.g. tag("SRAM").
  void tag(const char* four_cc);

  const std::vector<std::uint8_t>& data() const { return buf_; }
  std::size_t size() const { return buf_.size(); }

 private:
  std::vector<std::uint8_t> buf_;
};

/// Matching reader. Every accessor throws SimError(Checkpoint) on buffer
/// underrun; expectTag() additionally throws on a tag mismatch, naming both
/// the expected and the found tag so skewed snapshots diagnose themselves.
class StateReader {
 public:
  StateReader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}
  explicit StateReader(const std::vector<std::uint8_t>& buf)
      : StateReader(buf.data(), buf.size()) {}

  std::uint8_t u8() {
    need(1);
    return data_[pos_++];
  }
  bool b() { return u8() != 0; }

  std::uint32_t u32() {
    need(4);
    const std::uint32_t v = static_cast<std::uint32_t>(data_[pos_]) |
                            (static_cast<std::uint32_t>(data_[pos_ + 1]) << 8) |
                            (static_cast<std::uint32_t>(data_[pos_ + 2]) << 16) |
                            (static_cast<std::uint32_t>(data_[pos_ + 3]) << 24);
    pos_ += 4;
    return v;
  }

  std::uint64_t u64() {
    const std::uint64_t lo = u32();
    const std::uint64_t hi = u32();
    return lo | (hi << 32);
  }

  float f32() { return std::bit_cast<float>(u32()); }

  std::string str() {
    const std::uint64_t n = u64();
    need(n);
    std::string s(reinterpret_cast<const char*>(data_ + pos_),
                  static_cast<std::size_t>(n));
    pos_ += static_cast<std::size_t>(n);
    return s;
  }

  std::vector<std::uint8_t> bytes() {
    const std::uint64_t n = u64();
    need(n);
    std::vector<std::uint8_t> out(data_ + pos_, data_ + pos_ + n);
    pos_ += static_cast<std::size_t>(n);
    return out;
  }

  /// Consume a four-character tag and verify it matches.
  void expectTag(const char* four_cc);

  bool atEnd() const { return pos_ == size_; }
  std::size_t remaining() const { return size_ - pos_; }
  /// Current read position — for loaders that want to name the offset in
  /// their own validation errors (bounds checks, implausible counts).
  std::size_t offset() const { return pos_; }

 private:
  void need(std::uint64_t n) const {
    if (n > size_ - pos_) {
      throw SimError(ErrorKind::Checkpoint, "state-io",
                     "snapshot truncated: need " + std::to_string(n) +
                         " bytes at offset " + std::to_string(pos_) +
                         " of " + std::to_string(size_));
    }
  }

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

}  // namespace hht::sim
