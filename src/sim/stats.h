#pragma once

#include <algorithm>
#include <array>
#include <bit>
#include <cstdint>
#include <deque>
#include <map>
#include <ostream>
#include <string>
#include <string_view>

#include "sim/state_io.h"

namespace hht::sim {

/// Log2-bucketed interval histogram: bucket i counts values v with
/// bit_width(v) == i, i.e. bucket 0 holds v==0, bucket i>=1 holds
/// [2^(i-1), 2^i). Used for latency/occupancy/span-length distributions
/// where exact per-value storage would be unbounded.
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 65;

  void add(std::uint64_t v) {
    sum_ += v;
    if (count_ == 0) {
      min_ = v;
      max_ = v;
    } else {
      min_ = std::min(min_, v);
      max_ = std::max(max_, v);
    }
    ++count_;
    ++buckets_[bucketOf(v)];
  }

  static std::size_t bucketOf(std::uint64_t v) {
    return static_cast<std::size_t>(std::bit_width(v));
  }
  /// Inclusive lower bound of bucket i.
  static std::uint64_t bucketLow(std::size_t i) {
    return i == 0 ? 0 : std::uint64_t{1} << (i - 1);
  }

  std::uint64_t count() const { return count_; }
  std::uint64_t sum() const { return sum_; }
  std::uint64_t min() const { return min_; }
  std::uint64_t max() const { return max_; }
  const std::array<std::uint64_t, kBuckets>& buckets() const {
    return buckets_;
  }

  void absorb(const Histogram& other) {
    if (other.count_ == 0) return;
    if (count_ == 0) {
      *this = other;
      return;
    }
    count_ += other.count_;
    sum_ += other.sum_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
    for (std::size_t i = 0; i < kBuckets; ++i) buckets_[i] += other.buckets_[i];
  }

  void serialize(StateWriter& w) const {
    w.u64(count_);
    w.u64(sum_);
    w.u64(min_);
    w.u64(max_);
    for (const std::uint64_t b : buckets_) w.u64(b);
  }
  void deserialize(StateReader& r) {
    count_ = r.u64();
    sum_ = r.u64();
    min_ = r.u64();
    max_ = r.u64();
    for (std::uint64_t& b : buckets_) b = r.u64();
  }

 private:
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t min_ = 0;
  std::uint64_t max_ = 0;
  std::array<std::uint64_t, kBuckets> buckets_{};
};

/// A hierarchical set of named 64-bit counters.
///
/// Every simulator component (core, memory system, HHT) owns a StatSet and
/// bumps counters by name. Names are dotted paths ("cpu.load_stall_cycles")
/// so a merged dump groups naturally.
///
/// Storage is split into a string-keyed index (setup/report time only) and a
/// dense value array (hot path). Components that bump a counter per cycle
/// obtain either a stable `uint64_t&` via counter() or a dense Handle via
/// handle() once at construction; per-cycle code never touches the string
/// map. Values live in a std::deque so references stay valid as new counters
/// are created.
class StatSet {
 public:
  /// Dense index of a counter, obtained once via handle().
  using Handle = std::uint32_t;

  /// Returns the dense handle for `name`, creating the counter at zero on
  /// first use. Handles are stable for the StatSet's lifetime.
  Handle handle(std::string_view name) {
    auto it = index_.find(name);
    if (it != index_.end()) return it->second;
    const Handle id = static_cast<Handle>(values_.size());
    index_.emplace(std::string(name), id);
    values_.push_back(0);
    return id;
  }

  /// Hot-path access by dense handle.
  std::uint64_t& at(Handle id) { return values_[id]; }
  std::uint64_t at(Handle id) const { return values_[id]; }

  /// Returns a stable reference to the counter named `name`, creating it at
  /// zero on first use. References stay valid for the StatSet's lifetime
  /// (deque elements never move under push_back).
  std::uint64_t& counter(std::string_view name) { return values_[handle(name)]; }

  /// Read-only lookup; returns 0 for a counter never bumped.
  std::uint64_t value(std::string_view name) const {
    auto it = index_.find(name);
    return it == index_.end() ? 0 : values_[it->second];
  }

  bool contains(std::string_view name) const { return index_.contains(name); }

  /// Returns the interval histogram named `name`, creating it empty on
  /// first use. References stay valid for the StatSet's lifetime.
  Histogram& histogram(std::string_view name) {
    auto it = hists_.find(name);
    if (it != hists_.end()) return it->second;
    return hists_.emplace(std::string(name), Histogram{}).first->second;
  }

  /// Read-only lookup; nullptr if never created.
  const Histogram* findHistogram(std::string_view name) const {
    auto it = hists_.find(name);
    return it == hists_.end() ? nullptr : &it->second;
  }

  const std::map<std::string, Histogram, std::less<>>& histograms() const {
    return hists_;
  }

  /// Drops every counter. Invalidates all handles and references; only
  /// valid before components cache them (setup/report/test code).
  void clear() {
    index_.clear();
    values_.clear();
    hists_.clear();
  }

  /// Merge another StatSet into this one, prefixing each counter and
  /// histogram name.
  void absorb(const StatSet& other, std::string_view prefix) {
    for (const auto& [name, id] : other.index_) {
      counter(std::string(prefix) + name) += other.values_[id];
    }
    for (const auto& [name, hist] : other.hists_) {
      histogram(std::string(prefix) + name).absorb(hist);
    }
  }

  /// Name -> value snapshot (sorted by name), for reports and tests.
  std::map<std::string, std::uint64_t> all() const {
    std::map<std::string, std::uint64_t> out;
    for (const auto& [name, id] : index_) out.emplace(name, values_[id]);
    return out;
  }

  void serialize(StateWriter& w) const {
    w.u64(index_.size());
    for (const auto& [name, id] : index_) {
      w.str(name);
      w.u64(values_[id]);
    }
    w.u64(hists_.size());
    for (const auto& [name, hist] : hists_) {
      w.str(name);
      hist.serialize(w);
    }
  }

  /// Restore counter values WITHOUT invalidating handles: components cache
  /// counter() references and handle() ids, so existing entries must stay
  /// in place. Existing counters are zeroed, then snapshot values assigned
  /// via counter() (creating any the snapshot has that we don't yet).
  void deserialize(StateReader& r) {
    for (auto& v : values_) v = 0;
    const std::uint64_t n = r.u64();
    for (std::uint64_t i = 0; i < n; ++i) {
      const std::string name = r.str();
      counter(name) = r.u64();
    }
    hists_.clear();
    const std::uint64_t nh = r.u64();
    for (std::uint64_t i = 0; i < nh; ++i) {
      const std::string name = r.str();
      histogram(name).deserialize(r);
    }
  }

  friend std::ostream& operator<<(std::ostream& os, const StatSet& s) {
    for (const auto& [name, id] : s.index_) {
      os << name << " = " << s.values_[id] << '\n';
    }
    return os;
  }

 private:
  std::map<std::string, Handle, std::less<>> index_;
  std::deque<std::uint64_t> values_;
  std::map<std::string, Histogram, std::less<>> hists_;
};

}  // namespace hht::sim
