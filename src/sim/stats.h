#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <ostream>
#include <string>
#include <string_view>

#include "sim/state_io.h"

namespace hht::sim {

/// A hierarchical set of named 64-bit counters.
///
/// Every simulator component (core, memory system, HHT) owns a StatSet and
/// bumps counters by name. Names are dotted paths ("cpu.load_stall_cycles")
/// so a merged dump groups naturally.
///
/// Storage is split into a string-keyed index (setup/report time only) and a
/// dense value array (hot path). Components that bump a counter per cycle
/// obtain either a stable `uint64_t&` via counter() or a dense Handle via
/// handle() once at construction; per-cycle code never touches the string
/// map. Values live in a std::deque so references stay valid as new counters
/// are created.
class StatSet {
 public:
  /// Dense index of a counter, obtained once via handle().
  using Handle = std::uint32_t;

  /// Returns the dense handle for `name`, creating the counter at zero on
  /// first use. Handles are stable for the StatSet's lifetime.
  Handle handle(std::string_view name) {
    auto it = index_.find(name);
    if (it != index_.end()) return it->second;
    const Handle id = static_cast<Handle>(values_.size());
    index_.emplace(std::string(name), id);
    values_.push_back(0);
    return id;
  }

  /// Hot-path access by dense handle.
  std::uint64_t& at(Handle id) { return values_[id]; }
  std::uint64_t at(Handle id) const { return values_[id]; }

  /// Returns a stable reference to the counter named `name`, creating it at
  /// zero on first use. References stay valid for the StatSet's lifetime
  /// (deque elements never move under push_back).
  std::uint64_t& counter(std::string_view name) { return values_[handle(name)]; }

  /// Read-only lookup; returns 0 for a counter never bumped.
  std::uint64_t value(std::string_view name) const {
    auto it = index_.find(name);
    return it == index_.end() ? 0 : values_[it->second];
  }

  bool contains(std::string_view name) const { return index_.contains(name); }

  /// Drops every counter. Invalidates all handles and references; only
  /// valid before components cache them (setup/report/test code).
  void clear() {
    index_.clear();
    values_.clear();
  }

  /// Merge another StatSet into this one, prefixing each counter name.
  void absorb(const StatSet& other, std::string_view prefix) {
    for (const auto& [name, id] : other.index_) {
      counter(std::string(prefix) + name) += other.values_[id];
    }
  }

  /// Name -> value snapshot (sorted by name), for reports and tests.
  std::map<std::string, std::uint64_t> all() const {
    std::map<std::string, std::uint64_t> out;
    for (const auto& [name, id] : index_) out.emplace(name, values_[id]);
    return out;
  }

  void serialize(StateWriter& w) const {
    w.u64(index_.size());
    for (const auto& [name, id] : index_) {
      w.str(name);
      w.u64(values_[id]);
    }
  }

  /// Restore counter values WITHOUT invalidating handles: components cache
  /// counter() references and handle() ids, so existing entries must stay
  /// in place. Existing counters are zeroed, then snapshot values assigned
  /// via counter() (creating any the snapshot has that we don't yet).
  void deserialize(StateReader& r) {
    for (auto& v : values_) v = 0;
    const std::uint64_t n = r.u64();
    for (std::uint64_t i = 0; i < n; ++i) {
      const std::string name = r.str();
      counter(name) = r.u64();
    }
  }

  friend std::ostream& operator<<(std::ostream& os, const StatSet& s) {
    for (const auto& [name, id] : s.index_) {
      os << name << " = " << s.values_[id] << '\n';
    }
    return os;
  }

 private:
  std::map<std::string, Handle, std::less<>> index_;
  std::deque<std::uint64_t> values_;
};

}  // namespace hht::sim
