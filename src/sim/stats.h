#pragma once

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <string_view>

#include "sim/state_io.h"

namespace hht::sim {

/// A hierarchical set of named 64-bit counters.
///
/// Every simulator component (core, memory system, HHT) owns a StatSet and
/// bumps counters by name. Names are dotted paths ("cpu.load_stall_cycles")
/// so a merged dump groups naturally. Lookup cost is irrelevant off the hot
/// path; components that bump a counter per cycle cache a reference once via
/// counter().
class StatSet {
 public:
  /// Returns a stable reference to the counter named `name`, creating it at
  /// zero on first use. References stay valid for the StatSet's lifetime
  /// (std::map nodes never move).
  std::uint64_t& counter(std::string_view name) {
    return counters_[std::string(name)];
  }

  /// Read-only lookup; returns 0 for a counter never bumped.
  std::uint64_t value(std::string_view name) const {
    auto it = counters_.find(std::string(name));
    return it == counters_.end() ? 0 : it->second;
  }

  bool contains(std::string_view name) const {
    return counters_.contains(std::string(name));
  }

  void clear() { counters_.clear(); }

  /// Merge another StatSet into this one, prefixing each counter name.
  void absorb(const StatSet& other, std::string_view prefix) {
    for (const auto& [name, v] : other.counters_) {
      counters_[std::string(prefix) + name] += v;
    }
  }

  const std::map<std::string, std::uint64_t>& all() const { return counters_; }

  void serialize(StateWriter& w) const {
    w.u64(counters_.size());
    for (const auto& [name, v] : counters_) {
      w.str(name);
      w.u64(v);
    }
  }

  /// Restore counter values WITHOUT erasing map nodes: components cache
  /// `counter()` references, and std::map node stability is what keeps them
  /// valid. Existing counters are zeroed, then snapshot values assigned via
  /// counter() (creating any the snapshot has that we don't yet).
  void deserialize(StateReader& r) {
    for (auto& [name, v] : counters_) v = 0;
    const std::uint64_t n = r.u64();
    for (std::uint64_t i = 0; i < n; ++i) {
      const std::string name = r.str();
      counter(name) = r.u64();
    }
  }

  friend std::ostream& operator<<(std::ostream& os, const StatSet& s) {
    for (const auto& [name, v] : s.counters_) {
      os << name << " = " << v << '\n';
    }
    return os;
  }

 private:
  std::map<std::string, std::uint64_t> counters_;
};

}  // namespace hht::sim
