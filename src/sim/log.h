#pragma once

#include <cstdio>
#include <string>
#include <utility>

namespace hht::sim {

/// Trace verbosity for the whole process. Default Off: simulations are run
/// millions of cycles inside benchmarks and tests, so tracing must cost one
/// branch when disabled.
enum class LogLevel : int { Off = 0, Info = 1, Debug = 2, Trace = 3 };

/// Process-wide log level (set from a bench flag or HHT_LOG env var).
LogLevel logLevel();
void setLogLevel(LogLevel level);

/// Initialise the level from the HHT_LOG environment variable ("0".."3").
/// Called lazily by logLevel(); exposed for tests.
void initLogLevelFromEnv();

namespace detail {
void logLine(LogLevel level, const char* component, const std::string& msg);
}

/// Cheap leveled logging: HHT_LOG_AT(Debug, "mem", "grant req=%u", id).
/// The format arguments are not evaluated when the level is disabled.
#define HHT_LOG_AT(level_, component_, ...)                                  \
  do {                                                                       \
    if (::hht::sim::logLevel() >= ::hht::sim::LogLevel::level_) {            \
      char buf_[512];                                                        \
      std::snprintf(buf_, sizeof(buf_), __VA_ARGS__);                        \
      ::hht::sim::detail::logLine(::hht::sim::LogLevel::level_, component_,  \
                                  buf_);                                     \
    }                                                                        \
  } while (false)

}  // namespace hht::sim
