#pragma once

#include <atomic>
#include <cstdio>
#include <string>
#include <utility>

namespace hht::sim {

/// Trace verbosity for the whole process. Default Off: simulations are run
/// millions of cycles inside benchmarks and tests, so tracing must cost one
/// branch when disabled.
enum class LogLevel : int { Off = 0, Info = 1, Debug = 2, Trace = 3 };

namespace detail {
/// -1 = not yet initialised from the environment. Exposed only so that
/// logLevel() inlines to a relaxed load + branch at every HHT_LOG_AT site
/// (several million fire per simulated second with logging off).
extern std::atomic<int> g_level;
}  // namespace detail

/// Initialise the level from the HHT_LOG environment variable ("0".."3").
/// Called lazily by logLevel(); exposed for tests.
void initLogLevelFromEnv();

/// Process-wide log level (set from a bench flag or HHT_LOG env var).
inline LogLevel logLevel() {
  int v = detail::g_level.load(std::memory_order_relaxed);
  if (v < 0) {
    initLogLevelFromEnv();
    v = detail::g_level.load(std::memory_order_relaxed);
  }
  return static_cast<LogLevel>(v);
}
void setLogLevel(LogLevel level);

namespace detail {
void logLine(LogLevel level, const char* component, const std::string& msg);
}

/// Cheap leveled logging: HHT_LOG_AT(Debug, "mem", "grant req=%u", id).
/// The format arguments are not evaluated when the level is disabled.
#define HHT_LOG_AT(level_, component_, ...)                                  \
  do {                                                                       \
    if (::hht::sim::logLevel() >= ::hht::sim::LogLevel::level_) {            \
      char buf_[512];                                                        \
      std::snprintf(buf_, sizeof(buf_), __VA_ARGS__);                        \
      ::hht::sim::detail::logLine(::hht::sim::LogLevel::level_, component_,  \
                                  buf_);                                     \
    }                                                                        \
  } while (false)

}  // namespace hht::sim
