#include "sim/log.h"

#include <atomic>
#include <cstdlib>

namespace hht::sim {

namespace {
std::atomic<int> g_level{-1};  // -1 = not yet initialised from env
}

void initLogLevelFromEnv() {
  int level = 0;
  if (const char* env = std::getenv("HHT_LOG")) {
    level = std::atoi(env);
    if (level < 0) level = 0;
    if (level > 3) level = 3;
  }
  g_level.store(level, std::memory_order_relaxed);
}

LogLevel logLevel() {
  int v = g_level.load(std::memory_order_relaxed);
  if (v < 0) {
    initLogLevelFromEnv();
    v = g_level.load(std::memory_order_relaxed);
  }
  return static_cast<LogLevel>(v);
}

void setLogLevel(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

namespace detail {

void logLine(LogLevel level, const char* component, const std::string& msg) {
  static const char* const kNames[] = {"off", "info", "debug", "trace"};
  std::fprintf(stderr, "[%s] %-6s %s\n", kNames[static_cast<int>(level)],
               component, msg.c_str());
}

}  // namespace detail
}  // namespace hht::sim
