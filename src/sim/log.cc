#include "sim/log.h"

#include <cstdlib>

namespace hht::sim {

namespace detail {
std::atomic<int> g_level{-1};  // -1 = not yet initialised from env
}

void initLogLevelFromEnv() {
  int level = 0;
  if (const char* env = std::getenv("HHT_LOG")) {
    level = std::atoi(env);
    if (level < 0) level = 0;
    if (level > 3) level = 3;
  }
  detail::g_level.store(level, std::memory_order_relaxed);
}

void setLogLevel(LogLevel level) {
  detail::g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

namespace detail {

void logLine(LogLevel level, const char* component, const std::string& msg) {
  static const char* const kNames[] = {"off", "info", "debug", "trace"};
  std::fprintf(stderr, "[%s] %-6s %s\n", kNames[static_cast<int>(level)],
               component, msg.c_str());
}

}  // namespace detail
}  // namespace hht::sim
