#pragma once

#include <cstdint>
#include <string>

#include "sim/error.h"
#include "sim/rng.h"
#include "sim/stats.h"
#include "sim/types.h"

namespace hht::sim {

/// Architectural fault causes the HHT latches into its CAUSE MMR when it
/// detects an error (core/mmr.h: kFault / kCause). Mirrors how streaming
/// register designs expose stream-bounds faults as architectural state.
enum class FaultCause : std::uint32_t {
  None = 0,
  MmrParity = 1,        ///< a configuration register failed its parity check
  BadProgram = 2,       ///< MMR program rejected at START (extents, mode data)
  AddrOutOfBounds = 3,  ///< BE-generated address outside the programmed extents
  MalformedMeta = 4,    ///< inconsistent metadata (e.g. rows[r+1] < rows[r])
  FifoParity = 5,       ///< CPU-side buffer entry failed its parity check
  MemUncorrectable = 6, ///< ECC-uncorrectable memory response reached the BE
  StreamCheck = 7,      ///< end-to-end stream checksum mismatch at delivery
};

inline const char* faultCauseName(FaultCause cause) {
  switch (cause) {
    case FaultCause::None: return "none";
    case FaultCause::MmrParity: return "mmr-parity";
    case FaultCause::BadProgram: return "bad-program";
    case FaultCause::AddrOutOfBounds: return "addr-out-of-bounds";
    case FaultCause::MalformedMeta: return "malformed-metadata";
    case FaultCause::FifoParity: return "fifo-parity";
    case FaultCause::MemUncorrectable: return "mem-uncorrectable";
    case FaultCause::StreamCheck: return "stream-check";
  }
  return "?";
}

/// Receiver of detected faults. The HHT device implements this; back-end
/// engines and walkers report through it instead of throwing, so a detected
/// hardware error becomes pollable architectural state (FAULT/CAUSE MMRs)
/// rather than a host-level crash.
class FaultSink {
 public:
  virtual ~FaultSink() = default;
  virtual void raiseFault(FaultCause cause, std::string detail) = 0;
};

/// Per-run fault-injection knobs, carried in SystemConfig. All rates are
/// per-opportunity probabilities in [0, 1]; everything is driven by one
/// seeded Rng, so a campaign with a fixed seed is bit-reproducible.
struct FaultConfig {
  bool enabled = false;         ///< master switch; false = zero-cost
  std::uint64_t seed = 1;       ///< injector PRNG seed

  double sram_read_flip_rate = 0.0;  ///< bit flip per granted SRAM read
  double drop_rate = 0.0;            ///< response lost; controller re-requests
  double delay_rate = 0.0;           ///< response delayed by delay_cycles
  Cycle delay_cycles = 16;           ///< extra latency per delayed response
  double mmr_glitch_rate = 0.0;      ///< bit flip per latched MMR config write
  double fifo_corrupt_rate = 0.0;    ///< bit flip per slot pushed to a buffer

  /// ECC bounded-retry budget: how many times the memory controller re-reads
  /// on a detected flip before delivering a poisoned response.
  std::uint32_t ecc_retry_limit = 3;
  /// Cycles a dropped response costs before the controller's re-request
  /// completes (timeout + reissue).
  Cycle drop_penalty_cycles = 64;

  /// Sentinel for the silent-SDC ordinals below: no injection.
  static constexpr std::uint64_t kNoSdc = ~std::uint64_t{0};

  /// Silent-data-corruption mode for the SDC coverage campaign: flip bit
  /// `sdc_fifo_bit` of the Nth data slot pushed into a CPU-side buffer
  /// *without* marking its parity tag bad — the flip evades every modeled
  /// detection site and can only be caught by the end-to-end stream
  /// checksum (or the host-side reference diff). Deterministic (ordinal
  /// counting, no PRNG draw), so enabling it never perturbs the seeded
  /// fault stream of the probabilistic injectors above.
  std::uint64_t sdc_fifo_ordinal = kNoSdc;
  std::uint32_t sdc_fifo_bit = 0;

  void validate() const {
    const double rates[] = {sram_read_flip_rate, drop_rate, delay_rate,
                            mmr_glitch_rate, fifo_corrupt_rate};
    for (double r : rates) {
      if (r < 0.0 || r > 1.0) {
        throw SimError(ErrorKind::Config, "faults",
                       "injection rates must be within [0, 1]");
      }
    }
    if (enabled && delay_rate > 0.0 && delay_cycles == 0) {
      throw SimError(ErrorKind::Config, "faults",
                     "delay_rate > 0 requires delay_cycles > 0");
    }
    if (enabled && drop_rate > 0.0 && drop_penalty_cycles == 0) {
      throw SimError(ErrorKind::Config, "faults",
                     "drop_rate > 0 requires drop_penalty_cycles > 0");
    }
  }
};

/// Deterministic, seed-driven fault injector shared by the memory system
/// and the HHT device. Each maybe* call draws from the injector's own PRNG
/// in simulation order, so identical (config, workload) pairs produce
/// identical fault streams — the property the fault campaign relies on.
///
/// The injector only *creates* faults; detection and recovery live in the
/// components (ECC retry in mem::MemorySystem, parity and bounds checks in
/// the HHT). Counters under "faults." record every injection.
class FaultInjector {
 public:
  explicit FaultInjector(const FaultConfig& config);

  const FaultConfig& config() const { return cfg_; }
  bool enabled() const { return cfg_.enabled; }

  /// Maybe flip one random bit of a granted SRAM read response. Returns
  /// true when a flip happened (the model's "parity/ECC detected" signal).
  bool corruptReadData(std::uint32_t& data);
  /// Should this response be dropped (forcing a controller re-request)?
  bool dropResponse();
  /// Should this response be delayed by config().delay_cycles?
  bool delayResponse();
  /// Maybe flip one bit of a value being latched into an MMR. Returns true
  /// when glitched (the device then fails its MMR parity check at START).
  bool glitchMmrValue(std::uint32_t& value);
  /// Maybe flip one bit of a slot entering a CPU-side buffer. Returns true
  /// when corrupted (the slot's parity tag goes bad).
  bool corruptFifoSlot(std::uint32_t& bits);
  /// Parity-evading flip of the configured Nth buffer push (FaultConfig::
  /// sdc_fifo_ordinal). Returns true when this push is the target; the
  /// caller leaves the parity tag GOOD — the corruption is silent.
  bool silentFifoFlip(std::uint32_t& bits);

  /// Total injections of any type so far.
  std::uint64_t injected() const { return *c_total_; }

  StatSet& stats() { return stats_; }
  const StatSet& stats() const { return stats_; }

  /// Checkpoint hooks. The config is NOT serialized — the restoring side
  /// reconstructs the injector from the (fingerprint-checked) SystemConfig;
  /// only the PRNG position and injection counters are run state.
  void serialize(StateWriter& w) const {
    w.tag("FINJ");
    rng_.serialize(w);
    stats_.serialize(w);
    w.u64(sdc_fifo_seen_);  // snapshot v5
  }
  void deserialize(StateReader& r) {
    r.expectTag("FINJ");
    rng_.deserialize(r);
    stats_.deserialize(r);
    sdc_fifo_seen_ = r.u64();
  }

 private:
  bool flipOneBit(std::uint32_t& word, double rate, std::uint64_t* counter);

  FaultConfig cfg_;
  Rng rng_;
  StatSet stats_;
  std::uint64_t sdc_fifo_seen_ = 0;  ///< buffer pushes observed so far
  std::uint64_t* c_flips_;
  std::uint64_t* c_drops_;
  std::uint64_t* c_delays_;
  std::uint64_t* c_glitches_;
  std::uint64_t* c_fifo_;
  std::uint64_t* c_silent_;
  std::uint64_t* c_total_;
};

}  // namespace hht::sim
