#pragma once

#include <array>
#include <cstddef>

#include "sim/types.h"

/// Per-component next-event calendar for the event-scheduled run loop
/// (DESIGN.md §16).
///
/// The simulator has a small, fixed set of tickable components (device,
/// core, memory, watchdog, ...), so the calendar is an indexed table of
/// next-event cycles with a cached minimum rather than a heap: post() is
/// O(1), next() is O(1) amortised (the min is recomputed lazily, and only
/// when the slot holding the cached min moved later in time). With N <= 8
/// slots the recompute is a handful of loads, far cheaper than heap
/// bookkeeping at this size.
///
/// Invariants (unit-tested in tests/test_sim.cc):
///  - next() never exceeds the earliest posted event: the loop can never
///    skip past a cycle where some component has work.
///  - Re-posting a slot overwrites its previous entry (dedupe): a component
///    has exactly one "next event", the most recently declared one.
///  - Multiple slots posted for the same cycle all stay due until each is
///    individually re-posted past it (same-cycle multi-component wakeups).
///  - kNeverCycle in every slot means the calendar is idle.
namespace hht::sim {

template <std::size_t N>
class EventCalendar {
 public:
  EventCalendar() { slots_.fill(kNeverCycle); }

  /// Declare that component `slot` next has work at `cycle` (kNeverCycle =
  /// fully quiescent). Overwrites any previous posting for the slot.
  void post(std::size_t slot, Cycle cycle) {
    const Cycle old = slots_[slot];
    slots_[slot] = cycle;
    if (cycle < min_) {
      min_ = cycle;
    } else if (old == min_ && cycle > min_) {
      // The slot that defined the cached min moved later; another slot may
      // still hold the same cycle, so rescan.
      recompute();
    }
  }

  /// Next cycle at which any component has work (kNeverCycle if idle).
  Cycle next() const { return min_; }

  /// The posted next-event cycle for one slot.
  Cycle at(std::size_t slot) const { return slots_[slot]; }

  /// True if `slot` has work at or before `now`.
  bool due(std::size_t slot, Cycle now) const { return slots_[slot] <= now; }

  /// True if no component has any pending event.
  bool idle() const { return min_ == kNeverCycle; }

  static constexpr std::size_t size() { return N; }

 private:
  void recompute() {
    Cycle m = kNeverCycle;
    for (const Cycle c : slots_) {
      if (c < m) m = c;
    }
    min_ = m;
  }

  std::array<Cycle, N> slots_{};
  Cycle min_ = kNeverCycle;
};

}  // namespace hht::sim
