#pragma once

#include <cstdint>

#include "sim/types.h"

namespace hht::sim {

/// Observer of the HHT's delivered element stream. The differential oracle
/// installs one to see every BUF_DATA value pop and VALID row-end pop in
/// consumption order, with the device's last tick cycle for divergence
/// reports. Null tap = zero overhead (a single pointer test per pop).
class StreamTap {
 public:
  virtual ~StreamTap() = default;
  /// One element left the CPU-side buffers. `is_row_end` distinguishes the
  /// VALID==0 row terminator from a BUF_DATA payload (`bits`).
  virtual void onDelivered(Cycle now, bool is_row_end, std::uint32_t bits) = 0;
};

}  // namespace hht::sim
