#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "sim/types.h"

namespace hht::sim {

/// Observer of the HHT's delivered element stream. The differential oracle
/// installs one to see every BUF_DATA value pop and VALID row-end pop in
/// consumption order, with the device's last tick cycle for divergence
/// reports. Null tap = zero overhead (a single pointer test per pop).
class StreamTap {
 public:
  virtual ~StreamTap() = default;
  /// One element left the CPU-side buffers. `is_row_end` distinguishes the
  /// VALID==0 row terminator from a BUF_DATA payload (`bits`).
  virtual void onDelivered(Cycle now, bool is_row_end, std::uint32_t bits) = 0;
};

/// Small registry of delivery-port observers, so a run can carry several at
/// once (e.g. a DifferentialOracle tap AND an obs::TraceSink-driven probe)
/// without each claiming the device's single tap slot. Delivery order is
/// registration order, so the stream each tap sees is deterministic.
/// `empty()` is the device's "may I fast-forward?" input — one combined
/// check instead of one per observer kind.
class TapRegistry {
 public:
  void add(StreamTap* tap) {
    if (tap == nullptr) return;
    if (std::find(taps_.begin(), taps_.end(), tap) == taps_.end()) {
      taps_.push_back(tap);
    }
  }
  void remove(StreamTap* tap) {
    taps_.erase(std::remove(taps_.begin(), taps_.end(), tap), taps_.end());
  }
  bool empty() const { return taps_.empty(); }

  void onDelivered(Cycle now, bool is_row_end, std::uint32_t bits) const {
    for (StreamTap* tap : taps_) tap->onDelivered(now, is_row_end, bits);
  }

 private:
  std::vector<StreamTap*> taps_;
};

}  // namespace hht::sim
