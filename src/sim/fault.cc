#include "sim/fault.h"

namespace hht::sim {

FaultInjector::FaultInjector(const FaultConfig& config)
    : cfg_(config), rng_(config.seed) {
  cfg_.validate();
  c_flips_ = &stats_.counter("faults.sram_read_flips");
  c_drops_ = &stats_.counter("faults.drops");
  c_delays_ = &stats_.counter("faults.delays");
  c_glitches_ = &stats_.counter("faults.mmr_glitches");
  c_fifo_ = &stats_.counter("faults.fifo_corruptions");
  c_silent_ = &stats_.counter("faults.silent_fifo_flips");
  c_total_ = &stats_.counter("faults.total_injected");
}

bool FaultInjector::flipOneBit(std::uint32_t& word, double rate,
                               std::uint64_t* counter) {
  if (!cfg_.enabled || rate <= 0.0 || !rng_.nextBool(rate)) return false;
  word ^= 1u << rng_.nextBelow(32);
  ++*counter;
  ++*c_total_;
  return true;
}

bool FaultInjector::corruptReadData(std::uint32_t& data) {
  return flipOneBit(data, cfg_.sram_read_flip_rate, c_flips_);
}

bool FaultInjector::dropResponse() {
  if (!cfg_.enabled || cfg_.drop_rate <= 0.0 || !rng_.nextBool(cfg_.drop_rate)) {
    return false;
  }
  ++*c_drops_;
  ++*c_total_;
  return true;
}

bool FaultInjector::delayResponse() {
  if (!cfg_.enabled || cfg_.delay_rate <= 0.0 ||
      !rng_.nextBool(cfg_.delay_rate)) {
    return false;
  }
  ++*c_delays_;
  ++*c_total_;
  return true;
}

bool FaultInjector::glitchMmrValue(std::uint32_t& value) {
  return flipOneBit(value, cfg_.mmr_glitch_rate, c_glitches_);
}

bool FaultInjector::corruptFifoSlot(std::uint32_t& bits) {
  return flipOneBit(bits, cfg_.fifo_corrupt_rate, c_fifo_);
}

bool FaultInjector::silentFifoFlip(std::uint32_t& bits) {
  if (!cfg_.enabled || cfg_.sdc_fifo_ordinal == FaultConfig::kNoSdc) {
    return false;
  }
  const bool hit = sdc_fifo_seen_ == cfg_.sdc_fifo_ordinal;
  ++sdc_fifo_seen_;
  if (!hit) return false;
  bits ^= 1u << (cfg_.sdc_fifo_bit & 31u);
  ++*c_silent_;
  ++*c_total_;
  return true;
}

}  // namespace hht::sim
