#pragma once

#include <array>
#include <cstdint>

namespace hht::sim {

/// CRC-32C (Castagnoli) step functions for the end-to-end stream checksum
/// channel (DESIGN.md §15). The BE folds every slot it pushes into a running
/// CRC; the FE folds every slot it delivers; the two must agree at each
/// check point, so any single corruption between push and delivery — FIFO
/// cell, merge path, delivery port — changes one side and not the other.
///
/// Header-only and table-driven: cheap enough to leave on in campaigns, and
/// entirely skipped (no table touch) when the e2e channel is disabled.
namespace detail {
constexpr std::array<std::uint32_t, 256> makeCrc32cTable() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t crc = i;
    for (int k = 0; k < 8; ++k) {
      crc = (crc >> 1) ^ ((crc & 1u) ? 0x82F63B78u : 0u);
    }
    table[i] = crc;
  }
  return table;
}
inline constexpr std::array<std::uint32_t, 256> kCrc32cTable =
    makeCrc32cTable();
}  // namespace detail

/// Fold one byte into a running CRC-32C.
constexpr std::uint32_t crc32cByte(std::uint32_t crc, std::uint8_t byte) {
  return (crc >> 8) ^ detail::kCrc32cTable[(crc ^ byte) & 0xFFu];
}

/// Fold a 32-bit word (little-endian byte order) into a running CRC-32C.
constexpr std::uint32_t crc32cWord(std::uint32_t crc, std::uint32_t word) {
  crc = crc32cByte(crc, static_cast<std::uint8_t>(word));
  crc = crc32cByte(crc, static_cast<std::uint8_t>(word >> 8));
  crc = crc32cByte(crc, static_cast<std::uint8_t>(word >> 16));
  return crc32cByte(crc, static_cast<std::uint8_t>(word >> 24));
}

/// Fold one FIFO slot — payload bits plus the row-end marker — into a
/// running stream CRC. Both ends of the channel use exactly this.
constexpr std::uint32_t crcFoldSlot(std::uint32_t crc, std::uint32_t bits,
                                    bool is_row_end) {
  crc = crc32cWord(crc, bits);
  return crc32cByte(crc, is_row_end ? 1u : 0u);
}

}  // namespace hht::sim
