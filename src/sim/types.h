#pragma once

#include <cstdint>

/// Fundamental scalar types shared by every simulator module.
///
/// The simulated machine is a 32-bit embedded system (RV32-class core,
/// on-chip SRAM), so simulated addresses are 32-bit; simulation time is
/// counted in cycles of the single global clock and is 64-bit.
namespace hht::sim {

/// Simulation time, in cycles of the global clock.
using Cycle = std::uint64_t;

/// A byte address in the simulated 32-bit physical address space.
using Addr = std::uint32_t;

/// Element index type used throughout the sparse library (CSR cols, row
/// pointers, sparse-vector indices). 32-bit to match the simulated machine's
/// word size and the paper's SEW=32 configuration.
using Index = std::uint32_t;

/// Matrix/vector element value type. The paper's configuration is 32-bit
/// floating point (RV32F, SEW=32).
using Value = float;

/// Sentinel for "no cycle" / "not scheduled".
inline constexpr Cycle kNeverCycle = ~Cycle{0};

}  // namespace hht::sim
