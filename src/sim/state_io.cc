#include "sim/state_io.h"

namespace hht::sim {

void StateWriter::tag(const char* four_cc) {
  if (four_cc[0] == '\0' || four_cc[1] == '\0' || four_cc[2] == '\0' ||
      four_cc[3] == '\0' || four_cc[4] != '\0') {
    throw SimError(ErrorKind::Checkpoint, "state-io",
                   std::string("section tags must be exactly 4 characters: '") +
                       four_cc + "'");
  }
  buf_.insert(buf_.end(), four_cc, four_cc + 4);
}

void StateReader::expectTag(const char* four_cc) {
  need(4);
  const char* found = reinterpret_cast<const char*>(data_ + pos_);
  if (std::memcmp(found, four_cc, 4) != 0) {
    throw SimError(ErrorKind::Checkpoint, "state-io",
                   std::string("section tag mismatch at offset ") +
                       std::to_string(pos_) + ": expected '" + four_cc +
                       "', found '" + std::string(found, 4) + "'");
  }
  pos_ += 4;
}

}  // namespace hht::sim
