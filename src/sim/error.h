#pragma once

#include <stdexcept>
#include <string>
#include <utility>

namespace hht::sim {

/// What class of failure a SimError reports. The harness and the fault
/// campaign classify outcomes by this, so every structured error carries
/// exactly one kind.
enum class ErrorKind {
  Config,        ///< rejected configuration (SystemConfig::validate &c.)
  Mmio,          ///< MMIO protocol misuse (double attach, wrong requester)
  Memory,        ///< malformed memory access (misaligned, oversized, OOB)
  MachineCheck,  ///< uncorrectable memory fault consumed by a core
  DeviceFault,   ///< HHT raised FAULT and no degradation path was available
  Watchdog,      ///< forward-progress watchdog expired (or max_cycles)
  Checkpoint,    ///< snapshot serialization / restore failure (bad bundle)
  Verify,        ///< differential oracle detected a divergence
};

inline const char* errorKindName(ErrorKind kind) {
  switch (kind) {
    case ErrorKind::Config: return "config";
    case ErrorKind::Mmio: return "mmio";
    case ErrorKind::Memory: return "memory";
    case ErrorKind::MachineCheck: return "machine-check";
    case ErrorKind::DeviceFault: return "device-fault";
    case ErrorKind::Watchdog: return "watchdog";
    case ErrorKind::Checkpoint: return "checkpoint";
    case ErrorKind::Verify: return "verify";
  }
  return "?";
}

/// Structured simulator error: a kind, the component that raised it, a
/// one-line message, and an optional multi-line diagnostic dump (pipeline
/// state, queue occupancies, MMR contents) appended to what().
///
/// Errors raised on a multi-tile path additionally carry the tile index
/// (kNoTile for single-tile / tile-agnostic errors), rendered as ":tN" in
/// the what() bracket so serving logs can attribute a failure to a tile.
///
/// Derives from std::runtime_error so existing catch sites keep working;
/// new code catches SimError and dispatches on kind().
class SimError : public std::runtime_error {
 public:
  /// Sentinel tile index: not attributable to any particular tile.
  static constexpr int kNoTile = -1;

  SimError(ErrorKind kind, std::string component, const std::string& message,
           std::string diagnostic = {}, int tile = kNoTile)
      : std::runtime_error(std::string("[") + errorKindName(kind) + ":" +
                           component +
                           (tile == kNoTile ? ""
                                            : ":t" + std::to_string(tile)) +
                           "] " + message +
                           (diagnostic.empty() ? "" : "\n" + diagnostic)),
        kind_(kind),
        component_(std::move(component)),
        message_(message),
        diagnostic_(std::move(diagnostic)),
        tile_(tile) {}

  ErrorKind kind() const noexcept { return kind_; }
  const std::string& component() const noexcept { return component_; }
  const std::string& message() const noexcept { return message_; }
  const std::string& diagnostic() const noexcept { return diagnostic_; }
  /// Tile the error is attributed to, or kNoTile.
  int tile() const noexcept { return tile_; }

  /// Copy of this error re-attributed to `tile` (used by multi-tile paths
  /// that catch a tile-agnostic error from a shared component).
  SimError withTile(int tile) const {
    return SimError(kind_, component_, message_, diagnostic_, tile);
  }

 private:
  ErrorKind kind_;
  std::string component_;
  std::string message_;
  std::string diagnostic_;
  int tile_ = kNoTile;
};

}  // namespace hht::sim
