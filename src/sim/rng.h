#pragma once

#include <cstdint>
#include <limits>

#include "sim/state_io.h"

namespace hht::sim {

/// Deterministic, seedable PRNG used by all workload generators.
///
/// xoshiro256** seeded via SplitMix64. We deliberately avoid <random>'s
/// distribution objects for reproducibility: their outputs are
/// implementation-defined, while every value produced here is identical
/// across platforms and standard libraries, so experiment inputs (and
/// therefore cycle counts) are bit-exact everywhere.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) { reseed(seed); }

  /// Re-initialise the state from a 64-bit seed (SplitMix64 expansion).
  void reseed(std::uint64_t seed) {
    std::uint64_t x = seed;
    for (auto& word : state_) {
      // SplitMix64 step.
      x += 0x9E3779B97F4A7C15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
      word = z ^ (z >> 31);
    }
  }

  /// Next raw 64-bit value (xoshiro256**).
  std::uint64_t next64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  /// Uses Lemire's multiply-shift rejection method (unbiased).
  std::uint64_t nextBelow(std::uint64_t bound) {
    // Rejection loop terminates quickly; expected iterations < 2.
    const std::uint64_t threshold = (-bound) % bound;
    for (;;) {
      const std::uint64_t r = next64();
      // 128-bit multiply high.
      const unsigned __int128 m =
          static_cast<unsigned __int128>(r) * static_cast<unsigned __int128>(bound);
      if (static_cast<std::uint64_t>(m) >= threshold) {
        return static_cast<std::uint64_t>(m >> 64);
      }
    }
  }

  /// Uniform double in [0, 1).
  double nextDouble() {
    // 53 high bits -> [0,1) with full double precision.
    return static_cast<double>(next64() >> 11) * 0x1.0p-53;
  }

  /// Uniform float in [lo, hi).
  float nextFloat(float lo, float hi) {
    return lo + static_cast<float>(nextDouble()) * (hi - lo);
  }

  /// Bernoulli trial with probability p (clamped to [0,1]).
  bool nextBool(double p) { return nextDouble() < p; }

  /// Checkpoint hooks: the full generator state is the four state words.
  void serialize(StateWriter& w) const {
    for (std::uint64_t word : state_) w.u64(word);
  }
  void deserialize(StateReader& r) {
    for (auto& word : state_) word = r.u64();
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
};

}  // namespace hht::sim
