#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "harness/system.h"
#include "mem/work_queue.h"

namespace hht::harness {

class MultiTileSystem;

/// Per-cycle observer of a running MultiTileSystem (the multi-tile
/// differential oracle's hook; mirrors harness::RunObserver). Attaching one
/// disables quiescence fast-forward — observers see every executed cycle.
class MultiTileObserver {
 public:
  virtual ~MultiTileObserver() = default;
  virtual void onCycle(MultiTileSystem& sys, Cycle now) = 0;
};

/// N {cpu::Core + core::Hht} tiles over one shared banked MemorySystem
/// (multi-tile scale-out, DESIGN.md §13). The tile count comes from
/// config.memory.num_tiles; each tile's BE and core tag their memory
/// traffic with the tile id (arbiter ports tile*2 and tile*2+1) and the
/// tile's HHT sits behind its own MMIO window at mmioBaseOf(tile), so
/// kernels for tile t must be built against that base.
///
/// Per cycle, in fixed order: every tile's HHT ticks, then every tile's
/// core, then the shared memory system — for num_tiles=1 this is exactly
/// System's lockstep, and a 1-tile MultiTileSystem is cycle- and
/// bit-identical to a System under the same config.
///
/// Fault injection (config.faults) is per tile: each tile draws from its
/// own seeded FaultInjector (tile 0 keeps config.faults.seed so a 1-tile
/// faulty MultiTileSystem stays bit-identical to a System; other tiles mix
/// the tile index into the seed), so one tile's fault history never
/// perturbs another's. There is no graceful-degradation fallback at this
/// level — a tile's HHT fault surfaces as a SimError(DeviceFault) carrying
/// the tile index, and the serving layer (src/serve) owns the retry /
/// degrade / quarantine policy. Each tile is also watched by its own
/// forward-progress watchdog, so a wedged tile fires SimError(Watchdog)
/// attributed to that tile.
///
/// Deliberately narrower than System: ASIC HHTs only (programmable_hht is
/// rejected).
class MultiTileSystem {
 public:
  explicit MultiTileSystem(const SystemConfig& config);

  std::uint32_t numTiles() const { return num_tiles_; }
  mem::MemorySystem& memory() { return *mem_; }
  mem::Arena& arena() { return arena_; }
  const SystemConfig& config() const { return config_; }
  cpu::Core& cpu(std::uint32_t tile) { return *cpus_.at(tile); }
  core::Hht& hht(std::uint32_t tile) { return *hhts_.at(tile); }
  /// Tile `tile`'s fault injector; null unless config().faults.enabled.
  sim::FaultInjector* faultInjector(std::uint32_t tile) {
    return injectors_.at(tile).get();
  }
  /// Tile t's MMIO window base — the mmio_base to build tile t's kernel
  /// against.
  Addr mmioBaseOf(std::uint32_t tile) const { return mem_->mmioBaseOf(tile); }

  /// Shared chunk-queue device (config.memory.work_queue_enabled), nullptr
  /// otherwise. The harness seeds chunks before run(); the per-row oracle
  /// mode drains its claim log.
  mem::ChunkQueueDevice* workQueue() { return wq_.get(); }
  const mem::ChunkQueueDevice* workQueue() const { return wq_.get(); }
  /// Base of the shared work-queue MMIO window (window index num_tiles);
  /// tile t's claim register is workQueueBase() + 4*t.
  Addr workQueueBase() const { return mem_->mmioBaseOf(num_tiles_); }

  /// Attach a structured trace sink to tile `tile`'s core + HHT (host-only;
  /// the shared memory system and the kRunEnd horizon marker use
  /// config.trace_sink). One sink per tile keeps per-tile stall profiles
  /// separable: each tile's stream folds into an obs::ProfileReport whose
  /// buckets partition the SAME horizon, because every sink receives the
  /// run's kRunEnd. Any attached sink disables fast-forward.
  void setTileTraceSink(std::uint32_t tile, obs::TraceSink* sink);

  /// Run one program per tile (programs.size() == numTiles()) until every
  /// core has halted and the memory system has drained, then read back
  /// `y_len` floats at `y_addr`. RunResult::cycles is the wall-clock (max
  /// per-tile core cycles); per-tile counters land in RunResult::stats
  /// under the tile-0-unprefixed / "t<N>."-prefixed naming the memory
  /// system's stats already use.
  RunResult run(const std::vector<isa::Program>& programs, Addr y_addr,
                std::uint32_t y_len, Cycle max_cycles = 500'000'000,
                MultiTileObserver* observer = nullptr);

  /// Continue a restore()d run from `start_cycle` (programs installed
  /// without reset; all state came from the snapshot).
  RunResult resume(const std::vector<isa::Program>& programs, Addr y_addr,
                   std::uint32_t y_len, Cycle start_cycle,
                   Cycle max_cycles = 500'000'000,
                   MultiTileObserver* observer = nullptr);

  /// Snapshot (kSnapshotVersion) with per-tile sections: the common header
  /// (magic, version, config fingerprint) is followed by the tile count,
  /// each tile's program identity, the shared memory system, and one
  /// injector(v4)+HHT+core section per tile.
  std::vector<std::uint8_t> checkpoint(
      const std::vector<isa::Program>& programs, Cycle next_cycle) const;

  /// Restore a checkpoint() snapshot. Config fingerprint, tile count and
  /// every tile's program identity must match; any mismatch, version skew
  /// (including newer-than-supported) or corruption throws
  /// SimError(Checkpoint). Returns the cycle to pass to resume().
  Cycle restore(const std::vector<std::uint8_t>& snapshot,
                const std::vector<isa::Program>& programs);

  /// Multi-line per-tile diagnostic dump (watchdog reports).
  std::string dumpDiagnostics(Cycle now) const;

  /// Host cycles elapsed via fast-forward during the most recent run.
  std::uint64_t hostSkippedCycles() const { return host_skipped_cycles_; }

 private:
  RunResult runLoop(Addr y_addr, std::uint32_t y_len, Cycle start_cycle,
                    Cycle max_cycles, MultiTileObserver* observer);
  void checkProgramCount(const std::vector<isa::Program>& programs) const;

  SystemConfig config_;
  std::uint32_t num_tiles_;
  std::unique_ptr<mem::MemorySystem> mem_;
  /// Per-tile injectors (empty slots when faults are disabled).
  std::vector<std::unique_ptr<sim::FaultInjector>> injectors_;
  std::vector<std::unique_ptr<core::Hht>> hhts_;
  std::vector<std::unique_ptr<cpu::Core>> cpus_;
  /// Shared work-queue device behind MMIO window num_tiles (null unless
  /// config.memory.work_queue_enabled).
  std::unique_ptr<mem::ChunkQueueDevice> wq_;
  std::vector<obs::TraceSink*> tile_sinks_;  ///< per tile; may hold nulls
  mem::Arena arena_;
  std::uint64_t host_skipped_cycles_ = 0;
};

}  // namespace hht::harness
