#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/device.h"
#include "core/hht.h"
#include "core/micro_hht.h"
#include "cpu/core.h"
#include "cpu/timing.h"
#include "kernels/kernels.h"
#include "mem/layout.h"
#include "mem/memory_system.h"
#include "sparse/csr.h"
#include "sparse/dense.h"
#include "sparse/bitvector.h"
#include "sparse/hier_bitmap.h"
#include "obs/trace.h"
#include "sim/fault.h"
#include "sim/state_io.h"
#include "sparse/sparse_vector.h"

namespace hht::harness {

using sim::Addr;
using sim::Cycle;

/// Host scheduling strategy for the run loop (DESIGN.md §16). All three
/// modes produce bit-identical simulated results — they differ only in how
/// much host work each simulated cycle costs. Host-only tooling, excluded
/// from writeSystemConfig/readSystemConfig and the snapshot fingerprint
/// (same discipline as host_fastforward).
enum class SchedMode : std::uint8_t {
  /// Tick every component every cycle. The reference schedule; forced
  /// whenever an observer or trace sink must see each executed cycle.
  Naive,
  /// Naive ticking plus the all-or-nothing quiescence fast-forward of
  /// DESIGN.md §11: skip stretches where NO component can change state.
  Quiescence,
  /// Event-scheduled (DESIGN.md §16): a per-component next-event calendar;
  /// each component is ticked only on cycles it has work, lazily credited
  /// for the cycles it provably idled, and the loop jumps to the next
  /// cycle any component has work.
  Event,
};

/// Full simulated-machine configuration (Table 1 defaults).
struct SystemConfig {
  cpu::TimingConfig timing;
  mem::MemorySystemConfig memory;
  core::HhtConfig hht;
  int vlmax = 8;  ///< Table 1: VL = 8 elements (Fig. 8 sweeps 1/4/8)
  /// Instantiate the §7 programmable HHT (core::MicroHht) instead of the
  /// ASIC engines. Firmware must then be installed via System::microHht().
  bool programmable_hht = false;
  cpu::TimingConfig micro_timing;  ///< the micro-core's own latencies
  /// Fault-injection knobs (disabled by default: zero cost, identical
  /// cycle-for-cycle behaviour to a build without the fault layer).
  sim::FaultConfig faults;
  /// Forward-progress watchdog period: a run with this many consecutive
  /// cycles of no retired instruction, no SRAM grant and no FIFO pop is
  /// declared wedged (SimError(Watchdog) with a diagnostic dump). 0
  /// disables the watchdog; the max_cycles ceiling still applies.
  Cycle watchdog_cycles = 100'000;
  /// Host-side quiescence fast-forward (DESIGN.md §11): when no RunObserver
  /// is attached, the run loop skips stretches in which no component can
  /// change simulated state, bulk-crediting the skipped cycles so results
  /// are bit-identical to the naive loop. This knob is host-only tooling —
  /// it is deliberately excluded from writeSystemConfig/readSystemConfig
  /// and the snapshot fingerprint, because two configs differing only here
  /// describe the same simulated machine. Disable (or pass
  /// --no-fastforward to the benches) for A/B verification.
  bool host_fastforward = true;
  /// Which accelerated run-loop strategy to use when host_fastforward is on
  /// (host_fastforward=false always means SchedMode::Naive; observers and
  /// trace sinks force Naive regardless). Host-only, fingerprint-excluded.
  SchedMode sched_mode = SchedMode::Event;
  /// Worker threads for MultiTileSystem's tile phase (DESIGN.md §16):
  /// tiles tick in parallel between shared-memory epochs, exchanging
  /// requests at the epoch boundary in canonical tile order, so results
  /// and snapshot bytes stay bit-identical to the serial schedule. 1 =
  /// serial (the default); clamped to the tile count. Host-only,
  /// fingerprint-excluded; ignored by the single-tile System.
  std::uint32_t tile_workers = 1;
  /// Optional cycle-accurate trace sink (src/obs, DESIGN.md §12). Host-only
  /// tooling exactly like host_fastforward: excluded from
  /// writeSystemConfig/readSystemConfig and the snapshot fingerprint — a
  /// traced machine and an untraced machine are the same simulated machine.
  /// Attaching a sink disables quiescence fast-forward (every executed
  /// cycle must be observed) but never changes results, stats or snapshot
  /// bytes. The sink must outlive the System.
  obs::TraceSink* trace_sink = nullptr;

  /// Reject broken configurations with SimError(Config); called by the
  /// System constructor before any component is built.
  void validate() const {
    memory.validate();
    hht.validate();
    faults.validate();
    if (vlmax < 1) {
      throw sim::SimError(sim::ErrorKind::Config, "system",
                          "vlmax must be >= 1");
    }
  }
};

/// Canonical binary serialization of a SystemConfig: the byte stream the
/// snapshot fingerprint hashes, and the representation replay bundles embed
/// so a failure reproduces under the exact machine configuration.
void writeSystemConfig(sim::StateWriter& w, const SystemConfig& cfg);
SystemConfig readSystemConfig(sim::StateReader& r);

/// Snapshot format version written after the "HHTS" magic (bytes 4..8).
/// v2: StatSet gained interval histograms. v3: multi-tile scale-out —
/// MemAccess records carry a tile byte, the arbiter serializes its
/// rotation pointers + CPU streak, writeSystemConfig covers
/// num_tiles/cpu_starvation_limit, and MultiTileSystem snapshots append
/// per-tile HHT/CPU sections. v4: degraded-mode continuation — System
/// snapshots record whether the machine was mid-degraded-fallback (plus
/// the latched fault cause/detail) so a checkpoint taken during the
/// graceful-degradation rerun restores into the degraded loop, and
/// MultiTileSystem snapshots carry per-tile fault-injector sections.
/// v5: data-integrity subsystem — buffer/emission slots carry the poison
/// bit and e2e check tag, the BE/FE running stream CRCs are serialized,
/// the SRAM appends its latent-flip registry, the memory system appends
/// the patrol scrubber's cursor and due-cycle, and the fault injector
/// appends its silent-flip ordinal counter. writeSystemConfig is
/// unchanged: the integrity knobs are fingerprint-excluded (like
/// host_fastforward) because with no corruption they never change an
/// architectural outcome.
/// v6: per-requester request-id streams — the memory system serializes one
/// sequence counter per arbiter port instead of the v5 global next_id_
/// (ids are now allocation-order-independent across requesters, the
/// property the threaded multi-tile epoch protocol relies on).
/// v7: dynamic work distribution — writeSystemConfig appends
/// mem.work_queue_enabled (architectural: the claim schedule is machine
/// behaviour), and MultiTileSystem snapshots append the ChunkQueueDevice
/// section (per-tile chunk deques, the claim log and the wq stat block)
/// after the memory system when the queue is enabled.
/// restore() fails with SimError(Checkpoint) on any other version — and
/// with a distinct "newer than this binary" error when the snapshot is
/// from the future (no best-effort field skipping).
inline constexpr std::uint32_t kSnapshotVersion = 7;

/// FNV-1a fingerprint of writeSystemConfig(cfg)'s bytes — the identity
/// restore() checks before touching any component state.
std::uint64_t configFingerprint(const SystemConfig& cfg);

/// FNV-1a hash of a program's name + encoded instructions (snapshots record
/// programs by identity, never by contents).
std::uint64_t programHash(const isa::Program& program);

/// Outcome of simulating one kernel to completion.
struct RunResult {
  std::uint64_t cycles = 0;           ///< CPU cycles to ECALL
  std::uint64_t retired = 0;          ///< dynamic instruction count
  std::uint64_t cpu_wait_cycles = 0;  ///< CPU stalled on the HHT FE (Fig. 6/7)
  std::uint64_t hht_wait_cycles = 0;  ///< BE throttled on full buffers
  bool hht_residual_busy = false;     ///< HHT still busy after ECALL (kernel bug)
  /// The HHT faulted mid-run and the result was recomputed on the scalar
  /// software baseline: `y` is correct, the timing fields cover both runs.
  bool degraded = false;
  sim::FaultCause fault_cause = sim::FaultCause::None;  ///< when degraded
  std::string fault_detail;                             ///< when degraded
  sparse::DenseVector y;              ///< output vector read back from SRAM
  sim::StatSet stats;                 ///< merged cpu/mem/hht counters

  double cpuWaitFraction() const {
    return cycles == 0 ? 0.0
                       : static_cast<double>(cpu_wait_cycles) /
                             static_cast<double>(cycles);
  }
};

class System;

/// Per-cycle observer of a running System. The differential oracle uses
/// this for its periodic FIFO-occupancy invariants; tests use it to trigger
/// mid-run checkpoints. Called after the three component ticks and the
/// fault poll of each cycle, before halt detection — so the observer sees
/// every cycle the machine actually executed.
class RunObserver {
 public:
  virtual ~RunObserver() = default;
  virtual void onCycle(System& sys, Cycle now) = 0;
};

/// One simulated machine instance: memory system + HHT + core, advanced in
/// lock-step (HHT first so its publications are CPU-visible next cycle,
/// then CPU, then the memory system which arbitrates both).
class System {
 public:
  explicit System(const SystemConfig& config);

  mem::MemorySystem& memory() { return *mem_; }
  cpu::Core& cpu() { return *cpu_; }
  core::HhtDevice& hht() { return *hht_; }
  /// Non-null when configured with programmable_hht.
  core::MicroHht* microHht() { return micro_hht_; }
  /// Non-null for the default (ASIC) device; the oracle's tap/invariant
  /// hooks live on the concrete core::Hht.
  core::Hht* asicHht() { return asic_hht_; }
  mem::Arena& arena() { return arena_; }
  const SystemConfig& config() const { return config_; }
  /// Non-null when config().faults.enabled.
  sim::FaultInjector* faultInjector() { return injector_.get(); }

  /// Run `program` to ECALL (plus memory drain); read back `y_len` floats
  /// from `y_addr`.
  ///
  /// Failure handling:
  /// - HHT fault detected mid-run: if `fallback` is non-null the system
  ///   gracefully degrades — injection is disabled, the device and memory
  ///   system are quiesced, and `fallback` (the scalar software baseline,
  ///   which must fully overwrite y) re-runs to completion; the result has
  ///   degraded=true with the fault recorded. Without a fallback the fault
  ///   becomes a SimError(DeviceFault) carrying a diagnostic dump.
  /// - No forward progress for config().watchdog_cycles: SimError(Watchdog)
  ///   with a dump naming the stalled components.
  /// - `max_cycles` elapsed: SimError(Watchdog) — a deadlocked kernel is
  ///   always a bug, never a valid result.
  RunResult run(const isa::Program& program, Addr y_addr, std::uint32_t y_len,
                Cycle max_cycles = 500'000'000,
                const isa::Program* fallback = nullptr,
                RunObserver* observer = nullptr);

  /// Continue a run previously restore()d from a snapshot: the program is
  /// installed WITHOUT a reset (all state came from the snapshot) and the
  /// cycle loop starts at `start_cycle`. Semantics otherwise match run().
  RunResult resume(const isa::Program& program, Addr y_addr,
                   std::uint32_t y_len, Cycle start_cycle,
                   Cycle max_cycles = 500'000'000,
                   const isa::Program* fallback = nullptr,
                   RunObserver* observer = nullptr);

  /// Serialize the complete simulator state (SRAM, caches, queues, HHT
  /// pipeline, CPU, RNG/fault-injector) to a versioned binary snapshot.
  /// `next_cycle` is the cycle at which a resume() should continue — from
  /// a RunObserver at cycle `now`, pass `now + 1`. The program is recorded
  /// by identity (name + code hash), not contents.
  std::vector<std::uint8_t> checkpoint(const isa::Program& program,
                                       Cycle next_cycle) const;

  /// Restore a snapshot taken by checkpoint() into this System. The
  /// SystemConfig must be identical (enforced via fingerprint) and
  /// `program` must be the recorded program (name + code hash); mismatch
  /// or corruption throws SimError(Checkpoint). Returns the cycle to pass
  /// to resume().
  Cycle restore(const std::vector<std::uint8_t>& snapshot,
                const isa::Program& program);

  /// Multi-line snapshot of every component (watchdog / fault dumps).
  std::string dumpDiagnostics(Cycle now) const;

  /// True while the machine is executing (or restored into) the
  /// graceful-degradation fallback rerun. Observers use this to tell
  /// degraded-loop cycles (which restart at 0) from primary-run cycles.
  bool degradedActive() const { return degraded_active_; }

  /// Host cycles elapsed via fast-forward during the most recent run() /
  /// resume() (host diagnostic, not a simulated statistic — it never
  /// appears in RunResult::stats).
  std::uint64_t hostSkippedCycles() const { return host_skipped_cycles_; }

  /// Persistent observer registry: observers registered here are invoked
  /// every executed cycle, after the per-run observer passed to run() /
  /// resume() (registration order). This is the single attach point that
  /// lets a differential-oracle tap and a trace sink ride the same run:
  /// fast-forward is disabled once by the combined check in runLoop — there
  /// is no per-observer disable to double-apply. Observers are borrowed;
  /// remove before destroying.
  void addObserver(RunObserver* observer) {
    if (observer == nullptr) return;
    for (RunObserver* o : observers_) {
      if (o == observer) return;
    }
    observers_.push_back(observer);
  }
  void removeObserver(RunObserver* observer) {
    std::erase(observers_, observer);
  }

 private:
  RunResult runLoop(const isa::Program& program, Addr y_addr,
                    std::uint32_t y_len, Cycle start_cycle, Cycle max_cycles,
                    const isa::Program* fallback, RunObserver* observer);
  /// Event-scheduled run loop (SchedMode::Event, DESIGN.md §16): per-
  /// component next-event tracking with lazy skip credit. Bit-identical to
  /// the naive loop; only reachable when no observer or trace sink is
  /// attached (runLoop dispatches).
  RunResult runEventLoop(const isa::Program& program, Addr y_addr,
                         std::uint32_t y_len, Cycle start_cycle,
                         Cycle max_cycles, const isa::Program* fallback,
                         RunObserver* observer);
  void degradedRerun(const isa::Program& fallback, Cycle max_cycles,
                     RunObserver* observer);
  /// Continue the degraded fallback loop from `start_cycle` (degraded
  /// resume path); shared by degradedRerun (start_cycle 0) and resume().
  void degradedLoop(const isa::Program& fallback, Cycle start_cycle,
                    Cycle max_cycles, RunObserver* observer);
  /// Read back y + merge stats into `result` (common run/resume tail).
  void finishResult(RunResult& result, Addr y_addr, std::uint32_t y_len);

  SystemConfig config_;
  std::unique_ptr<sim::FaultInjector> injector_;  ///< null when disabled
  std::unique_ptr<mem::MemorySystem> mem_;
  std::unique_ptr<core::HhtDevice> hht_;
  core::MicroHht* micro_hht_ = nullptr;  ///< alias into hht_ when programmable
  core::Hht* asic_hht_ = nullptr;        ///< alias into hht_ when ASIC
  std::unique_ptr<cpu::Core> cpu_;
  mem::Arena arena_;
  std::vector<RunObserver*> observers_;  ///< borrowed; see addObserver
  std::uint64_t host_skipped_cycles_ = 0;
  /// Degraded-mode continuation state (serialized, v4): while true the
  /// machine is inside the fallback rerun — injection is detached and a
  /// resume() continues the degraded loop instead of the primary one.
  bool degraded_active_ = false;
  sim::FaultCause degraded_cause_ = sim::FaultCause::None;
  std::string degraded_detail_;
};

// --- workload loaders: place operands into simulated SRAM ---
//
// The Arena&/Sram& overloads are the primitive form (MultiTileSystem loads
// shared operands once into its single memory system); the System&
// overloads delegate.

kernels::SpmvLayout loadSpmv(mem::Arena& arena, mem::Sram& sram,
                             const sparse::CsrMatrix& m,
                             const sparse::DenseVector& v);
kernels::SpmvLayout loadSpmv(System& sys, const sparse::CsrMatrix& m,
                             const sparse::DenseVector& v);

kernels::SpmspvLayout loadSpmspv(mem::Arena& arena, mem::Sram& sram,
                                 const sparse::CsrMatrix& m,
                                 const sparse::SparseVector& v);
kernels::SpmspvLayout loadSpmspv(System& sys, const sparse::CsrMatrix& m,
                                 const sparse::SparseVector& v);

kernels::HierLayout loadHier(System& sys, const sparse::HierBitmapMatrix& m,
                             const sparse::DenseVector& v);

/// SpMM operands: B and Y stored column-major in simulated SRAM.
kernels::SpmmLayout loadSpmm(System& sys, const sparse::CsrMatrix& m,
                             const sparse::DenseMatrix& b);

/// Flat bit-vector layout (Fig. 1): the occupancy bitmap goes where the
/// hier layout's leaves live; l1 is unused.
kernels::HierLayout loadFlatBitmap(System& sys, const sparse::BitVectorMatrix& m,
                                   const sparse::DenseVector& v);

}  // namespace hht::harness
