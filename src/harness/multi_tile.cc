#include "harness/multi_tile.h"

#include <algorithm>
#include <condition_variable>
#include <exception>
#include <functional>
#include <mutex>
#include <sstream>
#include <thread>

#include "sim/watchdog.h"

namespace hht::harness {

namespace {
constexpr Addr kArenaBase = 0x1000;  // matches System: address 0 stays unmapped

/// Persistent worker pool for the threaded tile phase (DESIGN.md §16).
///
/// Epoch protocol: the main thread publishes a cycle number; every worker
/// ticks its statically-assigned tiles (all devices first, then all cores,
/// in increasing tile order — the same phase order as the serial loop) with
/// memory submissions parked in per-requester staging lanes; the main
/// thread waits for all workers, drains the staged submissions in the
/// canonical serial arrival order and runs the serial phase (shared memory
/// tick, fault polls, halt detection, watchdog, fast-forward). Tiles never
/// share mutable state during the parallel phase — every cross-tile
/// interaction flows through the staged memory system — so the schedule is
/// bit-identical to serial by construction (proven in tests/test_multi_tile
/// and race-checked under the tsan preset).
class TilePool {
 public:
  TilePool(std::uint32_t workers,
           std::function<void(std::uint32_t, Cycle)> work)
      : work_(std::move(work)), errors_(workers) {
    threads_.reserve(workers);
    for (std::uint32_t w = 0; w < workers; ++w) {
      threads_.emplace_back([this, w] { runWorker(w); });
    }
  }

  TilePool(const TilePool&) = delete;
  TilePool& operator=(const TilePool&) = delete;

  ~TilePool() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    start_cv_.notify_all();
    for (std::thread& t : threads_) t.join();
  }

  /// Run one parallel phase at cycle `now`; blocks until every worker is
  /// done. A worker exception aborts the run: rethrown here, lowest worker
  /// index first (workers own contiguous tile ranges, so this is the
  /// lowest faulting tile — matching the serial loop's throw order).
  void runEpoch(Cycle now) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      now_ = now;
      pending_ = static_cast<std::uint32_t>(threads_.size());
      ++epoch_;
    }
    start_cv_.notify_all();
    {
      std::unique_lock<std::mutex> lock(mu_);
      done_cv_.wait(lock, [this] { return pending_ == 0; });
    }
    for (std::exception_ptr& e : errors_) {
      if (e != nullptr) {
        std::exception_ptr thrown = e;
        e = nullptr;
        std::rethrow_exception(thrown);
      }
    }
  }

 private:
  void runWorker(std::uint32_t w) {
    std::uint64_t seen = 0;
    for (;;) {
      Cycle now;
      {
        std::unique_lock<std::mutex> lock(mu_);
        start_cv_.wait(lock, [&] { return stop_ || epoch_ != seen; });
        if (stop_) return;
        seen = epoch_;
        now = now_;
      }
      try {
        work_(w, now);
      } catch (...) {
        errors_[w] = std::current_exception();
      }
      {
        std::lock_guard<std::mutex> lock(mu_);
        if (--pending_ == 0) done_cv_.notify_one();
      }
    }
  }

  std::function<void(std::uint32_t, Cycle)> work_;
  std::vector<std::exception_ptr> errors_;  ///< one slot per worker
  std::vector<std::thread> threads_;
  std::mutex mu_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  Cycle now_ = 0;
  std::uint64_t epoch_ = 0;
  std::uint32_t pending_ = 0;
  bool stop_ = false;
};

/// Pre-construction validation: same hook as System, plus the multi-tile
/// restriction (ASIC HHTs only — the programmable HHT models a single-tile
/// microarchitecture study and has no per-tile story).
const SystemConfig& multiTileValidated(const SystemConfig& config) {
  config.validate();
  if (config.programmable_hht) {
    throw sim::SimError(sim::ErrorKind::Config, "multi_tile",
                        "MultiTileSystem supports ASIC HHTs only "
                        "(programmable_hht requires harness::System)");
  }
  return config;
}

/// Tile t's fault configuration: tile 0 keeps the base seed (a 1-tile
/// faulty MultiTileSystem must stay bit-identical to a System under the
/// same config); other tiles mix the tile index in with a golden-ratio
/// stride so per-tile fault streams are independent but reproducible.
sim::FaultConfig tileFaultConfig(const sim::FaultConfig& base,
                                 std::uint32_t tile) {
  sim::FaultConfig f = base;
  f.seed = base.seed + 0x9E3779B97F4A7C15ull * tile;
  return f;
}
}  // namespace

MultiTileSystem::MultiTileSystem(const SystemConfig& config)
    : config_(multiTileValidated(config)),
      num_tiles_(config.memory.num_tiles),
      mem_(std::make_unique<mem::MemorySystem>(config.memory)),
      tile_sinks_(config.memory.num_tiles, nullptr),
      arena_(kArenaBase, config.memory.sram_bytes - kArenaBase) {
  hhts_.reserve(num_tiles_);
  cpus_.reserve(num_tiles_);
  injectors_.resize(num_tiles_);
  for (std::uint32_t t = 0; t < num_tiles_; ++t) {
    hhts_.push_back(std::make_unique<core::Hht>(config.hht, *mem_, t));
    mem_->attachMmioDevice(hhts_.back().get(), t);
    cpus_.push_back(std::make_unique<cpu::Core>(
        config.timing, *mem_, config.vlmax, mem::Requester::Cpu, t));
    if (config.faults.enabled) {
      injectors_[t] = std::make_unique<sim::FaultInjector>(
          tileFaultConfig(config.faults, t));
      mem_->setTileFaultInjector(t, injectors_[t].get());
      hhts_[t]->setFaultInjector(injectors_[t].get());
    }
  }
  if (config.memory.work_queue_enabled) {
    wq_ = std::make_unique<mem::ChunkQueueDevice>(num_tiles_);
    mem_->attachMmioDevice(wq_.get(), num_tiles_);
  }
  if (config.trace_sink != nullptr) {
    mem_->setTraceSink(config.trace_sink);
    if (wq_) wq_->setTraceSink(config.trace_sink);
  }
}

void MultiTileSystem::setTileTraceSink(std::uint32_t tile,
                                       obs::TraceSink* sink) {
  tile_sinks_.at(tile) = sink;
  cpus_.at(tile)->setTraceSink(sink, obs::Component::kCpu);
  hhts_.at(tile)->setTraceSink(sink);
}

void MultiTileSystem::checkProgramCount(
    const std::vector<isa::Program>& programs) const {
  if (programs.size() != num_tiles_) {
    throw sim::SimError(sim::ErrorKind::Config, "multi_tile",
                        "expected " + std::to_string(num_tiles_) +
                            " programs (one per tile), got " +
                            std::to_string(programs.size()));
  }
}

RunResult MultiTileSystem::run(const std::vector<isa::Program>& programs,
                               Addr y_addr, std::uint32_t y_len,
                               Cycle max_cycles, MultiTileObserver* observer) {
  checkProgramCount(programs);
  for (std::uint32_t t = 0; t < num_tiles_; ++t) {
    cpus_[t]->loadProgram(programs[t]);
  }
  return runLoop(y_addr, y_len, 0, max_cycles, observer);
}

RunResult MultiTileSystem::resume(const std::vector<isa::Program>& programs,
                                  Addr y_addr, std::uint32_t y_len,
                                  Cycle start_cycle, Cycle max_cycles,
                                  MultiTileObserver* observer) {
  checkProgramCount(programs);
  for (std::uint32_t t = 0; t < num_tiles_; ++t) {
    cpus_[t]->installProgram(programs[t]);
  }
  return runLoop(y_addr, y_len, start_cycle, max_cycles, observer);
}

RunResult MultiTileSystem::runLoop(Addr y_addr, std::uint32_t y_len,
                                   Cycle start_cycle, Cycle max_cycles,
                                   MultiTileObserver* observer) {
  // One watchdog per tile over that tile's own progress sum (its core's
  // retirement, its HHT's FIFO/BE activity, its two arbiter ports' grants):
  // a single wedged tile fires SimError(Watchdog) attributed to that tile
  // even while the others keep the global sum moving. Halted tiles are
  // excluded — a tile that finished early makes no progress by design.
  std::vector<sim::Watchdog> watchdogs;
  watchdogs.reserve(num_tiles_);
  std::vector<const std::uint64_t*> retired;
  std::vector<const std::uint64_t*> grants_cpu;
  std::vector<const std::uint64_t*> grants_hht;
  retired.reserve(num_tiles_);
  for (std::uint32_t t = 0; t < num_tiles_; ++t) {
    watchdogs.emplace_back(config_.watchdog_cycles, static_cast<int>(t));
    retired.push_back(&cpus_[t]->stats().counter("cpu.retired"));
    grants_cpu.push_back(&mem_->stats().counter(
        "mem." + mem::requesterLabel(2 * t) + ".grants"));
    grants_hht.push_back(&mem_->stats().counter(
        "mem." + mem::requesterLabel(2 * t + 1) + ".grants"));
  }
  const auto tileProgress = [&](std::uint32_t t) {
    return *retired[t] + hhts_[t]->progressSignal() + *grants_cpu[t] +
           *grants_hht[t];
  };

  // Fast-forward gating mirrors System: any observer or any attached sink
  // (shared or per-tile) must see every executed cycle.
  bool any_sink = config_.trace_sink != nullptr;
  for (obs::TraceSink* s : tile_sinks_) any_sink = any_sink || s != nullptr;
  const bool allow_ff =
      config_.host_fastforward && observer == nullptr && !any_sink;
  host_skipped_cycles_ = 0;
  Cycle ff_next_attempt = 0;
  Cycle ff_backoff = 0;

  // Threaded tile phase: with tile_workers > 1 the per-tile components tick
  // on a persistent worker pool while every memory submission parks in its
  // requester's staging lane; the serial phase drains the lanes in canonical
  // order, so results are bit-identical to the serial loop (tile_workers is
  // host-only and excluded from the config fingerprint). The guard restores
  // immediate-submission mode on every exit path, including thrown faults.
  const std::uint32_t workers =
      std::min(std::max(config_.tile_workers, 1u), num_tiles_);
  struct StagingGuard {
    mem::MemorySystem* mem;
    ~StagingGuard() {
      if (mem != nullptr) mem->endStagedSubmission();
    }
  } staging_guard{workers > 1 ? mem_.get() : nullptr};
  std::unique_ptr<TilePool> pool;
  if (workers > 1) {
    mem_->beginStagedSubmission();
    pool = std::make_unique<TilePool>(
        workers, [this, workers](std::uint32_t w, Cycle cycle) {
          const std::uint32_t per = num_tiles_ / workers;
          const std::uint32_t rem = num_tiles_ % workers;
          const std::uint32_t begin = w * per + std::min(w, rem);
          const std::uint32_t end = begin + per + (w < rem ? 1 : 0);
          for (std::uint32_t t = begin; t < end; ++t) hhts_[t]->tick(cycle);
          for (std::uint32_t t = begin; t < end; ++t) cpus_[t]->tick(cycle);
        });
  }

  RunResult result;
  Cycle now = start_cycle;
  for (; now < max_cycles; ++now) {
    // Fixed tile order keeps arbitration deterministic: all HHTs publish,
    // then all cores, then the single shared memory system arbitrates the
    // whole cycle's requests. The threaded phase reconstructs exactly that
    // arrival order from the staging lanes before the memory tick.
    if (pool) {
      pool->runEpoch(now);
      mem_->drainStagedSubmissions();
    } else {
      for (auto& h : hhts_) h->tick(now);
      for (auto& c : cpus_) c->tick(now);
    }
    // Reset the chunk queue's per-cycle claim budget before the memory
    // tick processes this cycle's MMIO (claims beyond the budget retry
    // next cycle as mem.wq.conflict_cycles).
    if (wq_) wq_->beginCycle(now);
    mem_->tick(now);
    for (std::uint32_t t = 0; t < num_tiles_; ++t) {
      if (hhts_[t]->faultRaised()) {
        result.fault_cause = hhts_[t]->faultCause();
        result.fault_detail = hhts_[t]->faultDetail();
        throw sim::SimError(
            sim::ErrorKind::DeviceFault, "multi_tile",
            "tile " + std::to_string(t) + " HHT raised fault [" +
                sim::faultCauseName(result.fault_cause) +
                "]: " + result.fault_detail,
            dumpDiagnostics(now), static_cast<int>(t));
      }
    }
    if (observer != nullptr) observer->onCycle(*this, now);
    bool all_halted = true;
    for (auto& c : cpus_) all_halted = all_halted && c->halted();
    if (all_halted && mem_->idle()) break;
    if (!watchdogs.empty() && watchdogs[0].due(now)) {
      for (std::uint32_t t = 0; t < num_tiles_; ++t) {
        if (cpus_[t]->halted()) continue;
        watchdogs[t].observe(now, tileProgress(t),
                             [&] { return dumpDiagnostics(now); });
      }
    }
    if (allow_ff && now >= ff_next_attempt) {
      // Skip only when EVERY tile is quiescent: the earliest next event
      // across all cores, all HHTs and the memory system bounds the skip.
      // Cores first (cheapest, and usually the binding components).
      Cycle ev = max_cycles;
      for (auto& c : cpus_) {
        ev = std::min(ev, c->nextEventCycle(now));
        if (ev <= now + 1) break;
      }
      if (ev > now + 1) {
        for (auto& h : hhts_) {
          ev = std::min(ev, h->nextEventCycle(now));
          if (ev <= now + 1) break;
        }
      }
      if (ev > now + 1) ev = std::min(ev, mem_->nextEventCycle(now));
      // Short skips cost more in probing than they save (the historic
      // <1.0x in_binary_speedup regression); treat them as failed attempts.
      constexpr Cycle kMinProfitableSkip = 8;
      if (ev <= now + kMinProfitableSkip) {
        ff_backoff = std::min<Cycle>(ff_backoff == 0 ? 1 : ff_backoff * 2, 64);
        ff_next_attempt = now + ff_backoff;
      } else {
        Cycle target = std::min(ev, max_cycles);
        for (std::uint32_t t = 0; t < num_tiles_; ++t) {
          if (cpus_[t]->halted()) continue;
          target =
              std::min(target, watchdogs[t].observeSkip(now, tileProgress(t)));
        }
        if (target > now + 1) {
          const Cycle skipped = target - (now + 1);
          for (auto& c : cpus_) c->skipCycles(skipped);
          for (auto& h : hhts_) h->skipCycles(skipped);
          host_skipped_cycles_ += skipped;
          now += skipped;
          ff_backoff = 0;
        }
      }
    }
  }
  if (now >= max_cycles) {
    throw sim::SimError(sim::ErrorKind::Watchdog, "multi_tile",
                        "simulation exceeded max_cycles (" +
                            std::to_string(num_tiles_) + " tiles)",
                        dumpDiagnostics(now));
  }
  // Horizon marker to every attached sink: per-tile profiles must all use
  // the run's shared denominator (the buckets of each tile partition the
  // SAME wall-clock horizon).
  const auto emitRunEnd = [&](obs::TraceSink* sink) {
    if (sink != nullptr && sink->enabled(obs::Category::kSystem)) {
      sink->emit(now, obs::Category::kSystem, obs::Component::kSystem,
                 obs::EventKind::kRunEnd, now + 1);
    }
  };
  emitRunEnd(config_.trace_sink);
  for (obs::TraceSink* s : tile_sinks_) {
    if (s != config_.trace_sink) emitRunEnd(s);
  }

  // Wall-clock = slowest tile; wait counters sum across tiles (total CPU
  // cycles burnt stalling on FIFOs, the Fig. 6/7 quantity).
  for (std::uint32_t t = 0; t < num_tiles_; ++t) {
    result.cycles = std::max(result.cycles, cpus_[t]->stats().value("cpu.cycles"));
    result.retired += cpus_[t]->stats().value("cpu.retired");
    result.cpu_wait_cycles += hhts_[t]->cpuWaitCycles();
    result.hht_wait_cycles += hhts_[t]->hhtWaitCycles();
    result.hht_residual_busy = result.hht_residual_busy || hhts_[t]->busy();
  }
  result.y = sparse::DenseVector(mem_->sram().peekArray<float>(y_addr, y_len));

  mem_->finalizeStats();
  result.stats.absorb(mem_->stats(), "");
  if (wq_) result.stats.absorb(wq_->stats(), "");
  for (std::uint32_t t = 0; t < num_tiles_; ++t) {
    // Tile 0 keeps the historic unprefixed names (a 1-tile MultiTileSystem's
    // stats are a System's stats); tiles 1.. get the same "t<N>." prefix the
    // memory system already uses for its per-requester counters.
    const std::string prefix = t == 0 ? "" : "t" + std::to_string(t) + ".";
    result.stats.absorb(cpus_[t]->stats(), prefix);
    result.stats.absorb(hhts_[t]->stats(), prefix);
    if (injectors_[t]) result.stats.absorb(injectors_[t]->stats(), prefix);
  }
  return result;
}

std::vector<std::uint8_t> MultiTileSystem::checkpoint(
    const std::vector<isa::Program>& programs, Cycle next_cycle) const {
  checkProgramCount(programs);
  sim::StateWriter w;
  w.tag("HHTS");
  w.u32(kSnapshotVersion);
  w.u64(configFingerprint(config_));
  w.u32(num_tiles_);
  for (const isa::Program& p : programs) {
    w.str(p.name());
    w.u64(programHash(p));
  }
  w.u64(next_cycle);
  mem_->serialize(w);
  // v7: the chunk-queue section is config-implied (the fingerprint pins
  // work_queue_enabled), like the memory system's topology sections.
  if (wq_) wq_->serialize(w);
  for (std::uint32_t t = 0; t < num_tiles_; ++t) {
    // v4: each tile's fault-injector (RNG + stats) precedes its HHT/core
    // sections, so a restored campaign replays the same per-tile fault
    // stream it would have seen uninterrupted.
    w.b(injectors_[t] != nullptr);
    if (injectors_[t]) injectors_[t]->serialize(w);
    hhts_[t]->serialize(w);
    cpus_[t]->serialize(w);
  }
  return w.data();
}

Cycle MultiTileSystem::restore(const std::vector<std::uint8_t>& snapshot,
                               const std::vector<isa::Program>& programs) {
  checkProgramCount(programs);
  sim::StateReader r(snapshot);
  r.expectTag("HHTS");
  const std::uint32_t version = r.u32();
  if (version > kSnapshotVersion) {
    throw sim::SimError(sim::ErrorKind::Checkpoint, "multi_tile",
                        "snapshot version " + std::to_string(version) +
                            " is newer than this binary's supported version " +
                            std::to_string(kSnapshotVersion) +
                            "; refusing best-effort restore (upgrade the "
                            "binary that restores, not the snapshot)");
  }
  if (version != kSnapshotVersion) {
    throw sim::SimError(sim::ErrorKind::Checkpoint, "multi_tile",
                        "snapshot version " + std::to_string(version) +
                            " != supported version " +
                            std::to_string(kSnapshotVersion));
  }
  const std::uint64_t fingerprint = r.u64();
  if (fingerprint != configFingerprint(config_)) {
    throw sim::SimError(sim::ErrorKind::Checkpoint, "multi_tile",
                        "snapshot was taken under a different SystemConfig "
                        "(fingerprint mismatch)");
  }
  const std::uint32_t tiles = r.u32();
  if (tiles != num_tiles_) {
    throw sim::SimError(sim::ErrorKind::Checkpoint, "multi_tile",
                        "snapshot records " + std::to_string(tiles) +
                            " tiles, this system has " +
                            std::to_string(num_tiles_));
  }
  for (std::uint32_t t = 0; t < num_tiles_; ++t) {
    const std::string prog_name = r.str();
    const std::uint64_t prog_hash = r.u64();
    if (prog_name != programs[t].name() ||
        prog_hash != programHash(programs[t])) {
      throw sim::SimError(sim::ErrorKind::Checkpoint, "multi_tile",
                          "tile " + std::to_string(t) +
                              " snapshot records program '" + prog_name +
                              "', got '" + programs[t].name() +
                              "' (or the code differs)",
                          {}, static_cast<int>(t));
    }
  }
  const Cycle next_cycle = r.u64();
  mem_->deserialize(r);
  if (wq_) wq_->deserialize(r);
  for (std::uint32_t t = 0; t < num_tiles_; ++t) {
    // Attribute section-level corruption to the tile whose section was
    // being decoded — serving logs need to name the tile, and the reader's
    // own errors only know the byte offset.
    try {
      const bool has_injector = r.b();
      if (has_injector != (injectors_[t] != nullptr)) {
        throw sim::SimError(sim::ErrorKind::Checkpoint, "multi_tile",
                            "snapshot fault-injector presence does not "
                            "match this system's tile");
      }
      if (injectors_[t]) injectors_[t]->deserialize(r);
      hhts_[t]->deserialize(r);
      cpus_[t]->deserialize(r);
    } catch (const sim::SimError& e) {
      throw e.tile() == sim::SimError::kNoTile ? e.withTile(static_cast<int>(t))
                                               : e;
    }
  }
  if (!r.atEnd()) {
    throw sim::SimError(sim::ErrorKind::Checkpoint, "multi_tile",
                        std::to_string(r.remaining()) +
                            " trailing bytes after snapshot payload");
  }
  for (std::uint32_t t = 0; t < num_tiles_; ++t) {
    cpus_[t]->installProgram(programs[t]);
  }
  return next_cycle;
}

std::string MultiTileSystem::dumpDiagnostics(Cycle now) const {
  std::ostringstream os;
  os << "diagnostic dump at cycle " << now << " (" << num_tiles_
     << " tiles)\n";
  for (std::uint32_t t = 0; t < num_tiles_; ++t) {
    os << "tile " << t << " cpu: halted=" << cpus_[t]->halted()
       << " pc=" << cpus_[t]->pc()
       << " retired=" << cpus_[t]->stats().value("cpu.retired")
       << " load_stalls=" << cpus_[t]->stats().value("cpu.load_stall_cycles")
       << "\n";
    os << "tile " << t << " " << hhts_[t]->describeState() << "\n";
  }
  os << mem_->describeState();
  return os.str();
}

}  // namespace hht::harness
