#pragma once

#include "harness/multi_tile.h"
#include "harness/system.h"

namespace hht::harness {

/// Baseline Table-1 system configuration (1.1 GHz RV32 with VL=8 vector
/// unit, 1 MB SRAM, ASIC HHT with N buffers of 8 elements).
SystemConfig defaultConfig(std::uint32_t num_buffers = 2, int vlmax = 8);

// --- one-shot kernel drivers (fresh System per run; deterministic) ---

/// CPU-only SpMV. `vectorized` selects Algorithm-1 scalar code vs the
/// vector kernel with indexed loads (the Fig. 4 baseline).
RunResult runSpmvBaseline(const SystemConfig& cfg, const sparse::CsrMatrix& m,
                          const sparse::DenseVector& v, bool vectorized);

/// HHT-assisted SpMV (gather mode).
RunResult runSpmvHht(const SystemConfig& cfg, const sparse::CsrMatrix& m,
                     const sparse::DenseVector& v, bool vectorized);

/// CPU-only SpMSpV (scalar two-pointer merge).
RunResult runSpmspvBaseline(const SystemConfig& cfg, const sparse::CsrMatrix& m,
                            const sparse::SparseVector& v);

/// HHT-assisted SpMSpV. variant: 1 (aligned pairs) or 2 (value-or-zero
/// stream); variant 2 may use the vectorized consumer.
RunResult runSpmspvHht(const SystemConfig& cfg, const sparse::CsrMatrix& m,
                       const sparse::SparseVector& v, int variant,
                       bool vectorized = true);

/// HHT-assisted SpMV over the SMASH-style hierarchical bitmap (§6).
RunResult runHierHht(const SystemConfig& cfg, const sparse::HierBitmapMatrix& m,
                     const sparse::DenseVector& v);

/// SpMM Y = M*B (B dense num_cols x k): column-batched SpMV. Returns the
/// result matrix through RunResult::y, column-major flattened.
RunResult runSpmmBaseline(const SystemConfig& cfg, const sparse::CsrMatrix& m,
                          const sparse::DenseMatrix& b);
RunResult runSpmmHht(const SystemConfig& cfg, const sparse::CsrMatrix& m,
                     const sparse::DenseMatrix& b);

/// HHT-assisted SpMV over the flat bit-vector format (Fig. 1).
RunResult runFlatHht(const SystemConfig& cfg, const sparse::BitVectorMatrix& m,
                     const sparse::DenseVector& v);

/// SpMV assisted by the *programmable* HHT (§7): same consumer kernel, but
/// the metadata walk runs as firmware on the device's micro-core.
RunResult runSpmvProgHht(const SystemConfig& cfg, const sparse::CsrMatrix& m,
                         const sparse::DenseVector& v, bool vectorized);

/// SpMSpV (variant 1 or 2) assisted by the programmable HHT.
RunResult runSpmspvProgHht(const SystemConfig& cfg, const sparse::CsrMatrix& m,
                           const sparse::SparseVector& v, int variant,
                           bool vectorized = true);

/// HHT-assisted SpMV with graceful degradation: the scalar software
/// baseline is installed as the fallback program, so an HHT fault mid-run
/// yields RunResult{degraded=true} with a correct y instead of an error.
/// Pair with SystemConfig::faults for injection campaigns.
RunResult runSpmvHhtResilient(const SystemConfig& cfg,
                              const sparse::CsrMatrix& m,
                              const sparse::DenseVector& v, bool vectorized);

/// HHT-assisted SpMSpV (variant 1 or 2) with the scalar merge baseline as
/// the degradation fallback.
RunResult runSpmspvHhtResilient(const SystemConfig& cfg,
                                const sparse::CsrMatrix& m,
                                const sparse::SparseVector& v, int variant,
                                bool vectorized = true);

// --- multi-tile scale-out drivers (DESIGN.md §13) ---

/// Row partitioner selection for the sharded drivers.
enum class Partition { Block, NnzBalanced };

/// SpMV sharded across `num_tiles` {CPU+HHT} tiles of a MultiTileSystem
/// sharing one memory system: the matrix is row-partitioned, each tile runs
/// the single-tile HHT kernel restricted to its shard against its own MMIO
/// window, and the disjoint y slices concatenate in tile order — making the
/// result bit-identical to the single-tile kernel for any num_tiles. The
/// config's memory.num_tiles is overridden with `num_tiles`.
RunResult runSpmvHhtSharded(const SystemConfig& cfg, std::uint32_t num_tiles,
                            Partition part, const sparse::CsrMatrix& m,
                            const sparse::DenseVector& v, bool vectorized);

/// SpMSpV (variant 1 or 2) sharded across tiles; see runSpmvHhtSharded.
RunResult runSpmspvHhtSharded(const SystemConfig& cfg, std::uint32_t num_tiles,
                              Partition part, const sparse::CsrMatrix& m,
                              const sparse::SparseVector& v, int variant,
                              bool vectorized = true);

/// Split [0, num_rows) into ceil(num_rows / chunk_rows) fixed-size row
/// chunks and deal them to `num_tiles` deques in contiguous runs (tile 0
/// gets the first chunks, and so on) — so with no skew every tile starts
/// with its block-partition share and never needs to steal, while skew
/// drains one deque early and work-stealing rebalances. chunk_rows is
/// clamped to [1, ChunkQueueDevice::kMaxChunkRows].
std::vector<std::vector<mem::ChunkQueueDevice::Chunk>> dealRowChunks(
    std::uint32_t num_rows, std::uint32_t num_tiles, std::uint32_t chunk_rows);

/// SpMV with dynamic row distribution: a MultiTileSystem with the shared
/// chunk-queue device enabled (memory.work_queue_enabled), seeded via
/// dealRowChunks, each tile running the *ChunkQueue kernel against its own
/// MMIO window and claim register. Output stays bit-identical to the
/// single-tile kernel for any claim schedule (each y[i] is produced by
/// exactly one tile in the single-tile FMA order); the queue's arbitration
/// lands in the run stats as mem.wq.{grants,steals,conflict_cycles}.
RunResult runSpmvHhtChunkQueue(const SystemConfig& cfg, std::uint32_t num_tiles,
                               const sparse::CsrMatrix& m,
                               const sparse::DenseVector& v, bool vectorized,
                               std::uint32_t chunk_rows = 16);

/// SpMSpV (variant 1 or 2, vectorized consumer for 2) with dynamic row
/// distribution; see runSpmvHhtChunkQueue.
RunResult runSpmspvHhtChunkQueue(const SystemConfig& cfg,
                                 std::uint32_t num_tiles,
                                 const sparse::CsrMatrix& m,
                                 const sparse::SparseVector& v, int variant,
                                 std::uint32_t chunk_rows = 16);

/// speedup = baseline cycles / accelerated cycles.
inline double speedup(const RunResult& baseline, const RunResult& accel) {
  return accel.cycles == 0
             ? 0.0
             : static_cast<double>(baseline.cycles) /
                   static_cast<double>(accel.cycles);
}

}  // namespace hht::harness
