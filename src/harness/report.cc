#include "harness/report.h"

#include <algorithm>
#include <iomanip>
#include <sstream>

namespace hht::harness {

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size(), 0);
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  const auto line = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : std::string();
      os << "| " << std::left << std::setw(static_cast<int>(widths[c])) << cell
         << ' ';
    }
    os << "|\n";
  };
  line(headers_);
  for (std::size_t c = 0; c < widths.size(); ++c) {
    os << "|" << std::string(widths[c] + 2, '-');
  }
  os << "|\n";
  for (const auto& row : rows_) line(row);
}

void Table::printCsv(std::ostream& os) const {
  const auto line = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c) os << ',';
      os << cells[c];
    }
    os << '\n';
  };
  line(headers_);
  for (const auto& row : rows_) line(row);
}

std::string fmt(double value, int precision) {
  std::ostringstream out;
  out << std::fixed << std::setprecision(precision) << value;
  return out.str();
}

std::string pct(double fraction, int precision) {
  return fmt(fraction * 100.0, precision) + "%";
}

std::string bar(double value, double maximum, int width) {
  if (maximum <= 0.0) return std::string();
  int filled = static_cast<int>(value / maximum * width + 0.5);
  filled = std::clamp(filled, 0, width);
  return std::string(static_cast<std::size_t>(filled), '#');
}

void printBanner(std::ostream& os, const std::string& experiment,
                 const std::string& description) {
  os << "==============================================================\n";
  os << experiment << ": " << description << '\n';
  os << "System: RV32-style in-order core @1.1GHz, VL<=8, SEW=32,\n";
  os << "        1MB SRAM, ASIC HHT (Table 1 configuration)\n";
  os << "==============================================================\n";
}

}  // namespace hht::harness
