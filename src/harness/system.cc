#include "harness/system.h"

#include <sstream>
#include <stdexcept>

#include "sim/watchdog.h"

namespace hht::harness {

namespace {
constexpr Addr kArenaBase = 0x1000;  // keep address 0 unmapped-looking

/// Pre-construction validation hook: members are built from `config`, so
/// the checks must run before the initializer list touches it.
const SystemConfig& validated(const SystemConfig& config) {
  config.validate();
  return config;
}
}  // namespace

System::System(const SystemConfig& config)
    : config_(validated(config)),
      injector_(config.faults.enabled
                    ? std::make_unique<sim::FaultInjector>(config.faults)
                    : nullptr),
      mem_(std::make_unique<mem::MemorySystem>(config.memory)),
      cpu_(std::make_unique<cpu::Core>(config.timing, *mem_, config.vlmax)),
      arena_(kArenaBase, config.memory.sram_bytes - kArenaBase) {
  if (config.programmable_hht) {
    auto micro = std::make_unique<core::MicroHht>(config.hht, *mem_,
                                                  config.micro_timing);
    micro_hht_ = micro.get();
    hht_ = std::move(micro);
  } else {
    hht_ = std::make_unique<core::Hht>(config.hht, *mem_);
  }
  mem_->attachMmioDevice(hht_.get());
  if (injector_) {
    mem_->setFaultInjector(injector_.get());
    hht_->setFaultInjector(injector_.get());
  }
}

RunResult System::run(const isa::Program& program, Addr y_addr,
                      std::uint32_t y_len, Cycle max_cycles,
                      const isa::Program* fallback) {
  cpu_->loadProgram(program);

  sim::Watchdog watchdog(config_.watchdog_cycles);
  // Progress = retired instructions + SRAM grants + HHT FIFO pops/firmware
  // retirement. Counter references are stable, so the hot loop reads two
  // cached pointers plus one virtual call — and only on sampling cycles.
  const std::uint64_t* cpu_retired = &cpu_->stats().counter("cpu.retired");
  const std::uint64_t* mem_grants = &mem_->stats().counter("mem.grants");

  RunResult result;
  Cycle now = 0;
  for (; now < max_cycles; ++now) {
    hht_->tick(now);
    cpu_->tick(now);
    mem_->tick(now);
    if (hht_->faultRaised()) {
      // Host-side poll of the FAULT MMR (zero simulated cost): the run can
      // never complete with silently wrong data past this point.
      result.fault_cause = hht_->faultCause();
      result.fault_detail = hht_->faultDetail();
      if (fallback == nullptr) {
        throw sim::SimError(
            sim::ErrorKind::DeviceFault, "hht",
            std::string("HHT raised fault [") +
                sim::faultCauseName(result.fault_cause) +
                "] with no degradation fallback installed: " +
                result.fault_detail,
            dumpDiagnostics(now));
      }
      degradedRerun(*fallback, max_cycles);
      result.degraded = true;
      break;
    }
    if (cpu_->halted() && mem_->idle()) break;
    if (watchdog.due(now)) {
      watchdog.observe(
          now, *cpu_retired + *mem_grants + hht_->progressSignal(),
          [&] { return dumpDiagnostics(now); });
    }
  }
  if (!result.degraded && now >= max_cycles) {
    throw sim::SimError(sim::ErrorKind::Watchdog, "system",
                        "simulation exceeded max_cycles running " +
                            program.name(),
                        dumpDiagnostics(now));
  }

  result.cycles = cpu_->stats().value("cpu.cycles");
  result.retired = cpu_->stats().value("cpu.retired");
  result.cpu_wait_cycles = hht_->cpuWaitCycles();
  result.hht_wait_cycles = hht_->hhtWaitCycles();
  result.hht_residual_busy = hht_->busy();
  result.y = sparse::DenseVector(
      mem_->sram().peekArray<float>(y_addr, y_len));

  mem_->finalizeStats();
  result.stats.absorb(cpu_->stats(), "");
  result.stats.absorb(mem_->stats(), "");
  result.stats.absorb(hht_->stats(), "");
  if (injector_) result.stats.absorb(injector_->stats(), "");
  return result;
}

void System::degradedRerun(const isa::Program& fallback, Cycle max_cycles) {
  // Quiesce: stop injecting (the recovery run must succeed), drop every
  // in-flight access (stale responses must not leak into the rerun) and
  // return the device to its reset state.
  mem_->setFaultInjector(nullptr);
  hht_->setFaultInjector(nullptr);
  mem_->cancelAll();
  hht_->reset();

  cpu_->loadProgram(fallback);
  Cycle now = 0;
  for (; now < max_cycles; ++now) {
    hht_->tick(now);
    cpu_->tick(now);
    mem_->tick(now);
    if (cpu_->halted() && mem_->idle()) break;
  }
  if (now >= max_cycles) {
    throw sim::SimError(sim::ErrorKind::Watchdog, "system",
                        "degraded fallback run exceeded max_cycles running " +
                            fallback.name(),
                        dumpDiagnostics(now));
  }

  // Re-arm injection for any subsequent run on this System.
  if (injector_) {
    mem_->setFaultInjector(injector_.get());
    hht_->setFaultInjector(injector_.get());
  }
}

std::string System::dumpDiagnostics(Cycle now) const {
  std::ostringstream os;
  os << "diagnostic dump at cycle " << now << "\n";
  os << "cpu: halted=" << cpu_->halted() << " pc=" << cpu_->pc()
     << " retired=" << cpu_->stats().value("cpu.retired")
     << " load_stalls=" << cpu_->stats().value("cpu.load_stall_cycles")
     << "\n";
  os << hht_->describeState() << "\n";
  os << mem_->describeState();
  return os.str();
}

kernels::SpmvLayout loadSpmv(System& sys, const sparse::CsrMatrix& m,
                             const sparse::DenseVector& v) {
  if (v.size() != m.numCols()) {
    throw std::invalid_argument("loadSpmv: vector length != matrix columns");
  }
  mem::Arena& arena = sys.arena();
  mem::Sram& sram = sys.memory().sram();
  kernels::SpmvLayout layout;
  layout.num_rows = m.numRows();
  layout.rows = arena.place<sim::Index>(sram, m.rowPtr());
  layout.cols = arena.place<sim::Index>(sram, m.cols());
  layout.vals = arena.place<float>(sram, m.vals());
  layout.v = arena.place<float>(sram, v.data());
  layout.y = arena.allocate(static_cast<std::size_t>(m.numRows()) * 4);
  return layout;
}

kernels::SpmspvLayout loadSpmspv(System& sys, const sparse::CsrMatrix& m,
                                 const sparse::SparseVector& v) {
  if (v.size() != m.numCols()) {
    throw std::invalid_argument("loadSpmspv: vector length != matrix columns");
  }
  mem::Arena& arena = sys.arena();
  mem::Sram& sram = sys.memory().sram();
  kernels::SpmspvLayout layout;
  layout.num_rows = m.numRows();
  layout.v_nnz = v.nnz();
  layout.rows = arena.place<sim::Index>(sram, m.rowPtr());
  layout.cols = arena.place<sim::Index>(sram, m.cols());
  layout.vals = arena.place<float>(sram, m.vals());
  layout.vidx = arena.place<sim::Index>(sram, v.indices());
  layout.vvals = arena.place<float>(sram, v.vals());
  layout.y = arena.allocate(static_cast<std::size_t>(m.numRows()) * 4);
  return layout;
}

kernels::HierLayout loadHier(System& sys, const sparse::HierBitmapMatrix& m,
                             const sparse::DenseVector& v) {
  if (v.size() != m.numCols()) {
    throw std::invalid_argument("loadHier: vector length != matrix columns");
  }
  mem::Arena& arena = sys.arena();
  mem::Sram& sram = sys.memory().sram();
  kernels::HierLayout layout;
  layout.num_rows = m.numRows();
  layout.num_cols = m.numCols();
  // uint64 words laid out little-endian: the engine's 32-bit reads see
  // bits [i*32, i*32+32) at word offset i, as it expects.
  layout.l1 = arena.place<std::uint64_t>(sram, m.level1(), 8);
  layout.leaves = arena.place<std::uint64_t>(sram, m.leaves(), 8);
  layout.packed_vals = arena.place<float>(sram, m.vals());
  layout.v = arena.place<float>(sram, v.data());
  layout.y = arena.allocate(static_cast<std::size_t>(m.numRows()) * 4);
  return layout;
}

kernels::SpmmLayout loadSpmm(System& sys, const sparse::CsrMatrix& m,
                             const sparse::DenseMatrix& b) {
  if (b.numRows() != m.numCols()) {
    throw std::invalid_argument("loadSpmm: B rows != matrix columns");
  }
  mem::Arena& arena = sys.arena();
  mem::Sram& sram = sys.memory().sram();
  kernels::SpmmLayout layout;
  layout.num_rows = m.numRows();
  layout.num_cols = m.numCols();
  layout.k = b.numCols();
  layout.rows = arena.place<sim::Index>(sram, m.rowPtr());
  layout.cols = arena.place<sim::Index>(sram, m.cols());
  layout.vals = arena.place<float>(sram, m.vals());
  // Column-major copy of B.
  std::vector<float> colmajor(static_cast<std::size_t>(b.numRows()) * b.numCols());
  for (sim::Index j = 0; j < b.numCols(); ++j) {
    for (sim::Index i = 0; i < b.numRows(); ++i) {
      colmajor[static_cast<std::size_t>(j) * b.numRows() + i] = b.at(i, j);
    }
  }
  layout.b = arena.place<float>(sram, colmajor);
  layout.y = arena.allocate(static_cast<std::size_t>(m.numRows()) * b.numCols() * 4);
  return layout;
}

kernels::HierLayout loadFlatBitmap(System& sys, const sparse::BitVectorMatrix& m,
                                   const sparse::DenseVector& v) {
  if (v.size() != m.numCols()) {
    throw std::invalid_argument("loadFlatBitmap: vector length != matrix columns");
  }
  mem::Arena& arena = sys.arena();
  mem::Sram& sram = sys.memory().sram();
  kernels::HierLayout layout;
  layout.num_rows = m.numRows();
  layout.num_cols = m.numCols();
  layout.l1 = 0;  // unused in flat mode
  layout.leaves = arena.place<std::uint64_t>(sram, m.words(), 8);
  layout.packed_vals = arena.place<float>(sram, m.vals());
  layout.v = arena.place<float>(sram, v.data());
  layout.y = arena.allocate(static_cast<std::size_t>(m.numRows()) * 4);
  return layout;
}

}  // namespace hht::harness
