#include "harness/system.h"

#include <bit>
#include <sstream>
#include <stdexcept>

#include "sim/calendar.h"
#include "sim/state_io.h"
#include "sim/watchdog.h"

namespace hht::harness {

namespace {
constexpr Addr kArenaBase = 0x1000;  // keep address 0 unmapped-looking

/// Pre-construction validation hook: members are built from `config`, so
/// the checks must run before the initializer list touches it.
const SystemConfig& validated(const SystemConfig& config) {
  config.validate();
  return config;
}

// --- snapshot identity ---
//
// A snapshot only replays correctly on a System built from an *identical*
// SystemConfig running the *identical* program (same name and encoded
// instructions). Rather than serialize and diff whole configs, both sides
// are reduced to FNV-1a fingerprints over a canonical byte serialization;
// restore() rejects any mismatch with SimError(Checkpoint).

std::uint64_t fnv1a(const std::uint8_t* data, std::size_t size) {
  std::uint64_t h = 1469598103934665603ull;
  for (std::size_t i = 0; i < size; ++i) {
    h ^= data[i];
    h *= 1099511628211ull;
  }
  return h;
}

void writeTiming(sim::StateWriter& w, const cpu::TimingConfig& t) {
  w.u64(t.int_alu).u64(t.int_mul).u64(t.int_div);
  w.u64(t.branch_not_taken).u64(t.branch_taken).u64(t.jump);
  w.u64(t.fp_alu).u64(t.fp_mul).u64(t.fp_madd).u64(t.fp_div).u64(t.fp_move);
  w.u64(t.load_issue).u64(t.store_issue);
  w.u64(t.vec_cfg).u64(t.vec_alu).u64(t.vec_fp).u64(t.vec_red).u64(t.vec_move);
  w.u64(t.vec_mem_issue).u64(t.gather_startup);
  w.u32(t.vec_bus_bytes).u32(t.gather_issue_per_cycle);
  w.u64(std::bit_cast<std::uint64_t>(t.clock_hz));
}

cpu::TimingConfig readTiming(sim::StateReader& r) {
  cpu::TimingConfig t;
  t.int_alu = r.u64();
  t.int_mul = r.u64();
  t.int_div = r.u64();
  t.branch_not_taken = r.u64();
  t.branch_taken = r.u64();
  t.jump = r.u64();
  t.fp_alu = r.u64();
  t.fp_mul = r.u64();
  t.fp_madd = r.u64();
  t.fp_div = r.u64();
  t.fp_move = r.u64();
  t.load_issue = r.u64();
  t.store_issue = r.u64();
  t.vec_cfg = r.u64();
  t.vec_alu = r.u64();
  t.vec_fp = r.u64();
  t.vec_red = r.u64();
  t.vec_move = r.u64();
  t.vec_mem_issue = r.u64();
  t.gather_startup = r.u64();
  t.vec_bus_bytes = r.u32();
  t.gather_issue_per_cycle = r.u32();
  t.clock_hz = std::bit_cast<double>(r.u64());
  return t;
}
}  // namespace

std::uint64_t configFingerprint(const SystemConfig& cfg) {
  sim::StateWriter w;
  writeSystemConfig(w, cfg);
  return fnv1a(w.data().data(), w.size());
}

std::uint64_t programHash(const isa::Program& program) {
  sim::StateWriter w;
  w.str(program.name());
  for (std::size_t i = 0; i < program.size(); ++i) {
    const isa::Instr& instr = program.at(i);
    w.u8(static_cast<std::uint8_t>(instr.op));
    w.u8(instr.rd).u8(instr.rs1).u8(instr.rs2).u8(instr.rs3);
    w.u32(static_cast<std::uint32_t>(instr.imm));
  }
  return fnv1a(w.data().data(), w.size());
}

void writeSystemConfig(sim::StateWriter& w, const SystemConfig& cfg) {
  writeTiming(w, cfg.timing);
  const mem::MemorySystemConfig& m = cfg.memory;
  w.u64(m.sram_bytes).u64(m.sram_latency).u32(m.grants_per_cycle);
  w.u8(static_cast<std::uint8_t>(m.policy));
  w.u32(m.num_tiles).u32(m.cpu_starvation_limit);
  w.b(m.cpu_cache_enabled).b(m.hht_cache_enabled);
  w.u32(m.cache.size_bytes).u32(m.cache.line_bytes).u32(m.cache.ways);
  w.u64(m.cache.hit_latency).u64(m.cache.miss_penalty);
  w.u64(m.cache.writeback_penalty);
  w.b(m.prefetch_enabled).u32(m.prefetch_degree);
  w.u32(m.mmio_base).u32(m.mmio_size);
  w.b(m.work_queue_enabled);
  const mem::TopologyConfig& topo = m.topology;
  w.u32(topo.channels).u32(topo.interleave_bytes);
  w.u64(topo.link_latency).u32(topo.link_bandwidth);
  w.b(topo.tile_l1_enabled);
  w.u32(topo.tile_l1.size_bytes).u32(topo.tile_l1.line_bytes);
  w.u32(topo.tile_l1.ways);
  w.u64(topo.tile_l1.hit_latency).u64(topo.tile_l1.miss_penalty);
  w.u64(topo.tile_l1.writeback_penalty);
  w.b(topo.hht_prefetch_enabled);
  w.u32(topo.hht_prefetch_degree).u32(topo.hht_prefetch_queue);
  w.u32(static_cast<std::uint32_t>(topo.nodes.size()));
  for (const mem::TopologyNodeConfig& node : topo.nodes) {
    w.u32(node.grants_per_cycle).u64(node.extra_latency);
  }
  const core::HhtConfig& h = cfg.hht;
  w.u32(h.num_buffers).u32(h.buffer_len).u32(h.be_issue_per_cycle);
  w.u32(h.cmp_per_cycle).u32(h.cmp_recurrence).u32(h.emit_per_cycle);
  w.u32(h.prefetch_queue).u32(h.emission_queue);
  w.u64(h.test_flip_element);
  w.u32(static_cast<std::uint32_t>(cfg.vlmax));
  w.b(cfg.programmable_hht);
  writeTiming(w, cfg.micro_timing);
  const sim::FaultConfig& f = cfg.faults;
  w.b(f.enabled).u64(f.seed);
  w.u64(std::bit_cast<std::uint64_t>(f.sram_read_flip_rate));
  w.u64(std::bit_cast<std::uint64_t>(f.drop_rate));
  w.u64(std::bit_cast<std::uint64_t>(f.delay_rate));
  w.u64(f.delay_cycles);
  w.u64(std::bit_cast<std::uint64_t>(f.mmr_glitch_rate));
  w.u64(std::bit_cast<std::uint64_t>(f.fifo_corrupt_rate));
  w.u32(f.ecc_retry_limit).u64(f.drop_penalty_cycles);
  w.u64(cfg.watchdog_cycles);
}

SystemConfig readSystemConfig(sim::StateReader& r) {
  SystemConfig cfg;
  cfg.timing = readTiming(r);
  mem::MemorySystemConfig& m = cfg.memory;
  m.sram_bytes = static_cast<std::size_t>(r.u64());
  m.sram_latency = r.u64();
  m.grants_per_cycle = r.u32();
  m.policy = static_cast<mem::ArbiterPolicy>(r.u8());
  m.num_tiles = r.u32();
  m.cpu_starvation_limit = r.u32();
  m.cpu_cache_enabled = r.b();
  m.hht_cache_enabled = r.b();
  m.cache.size_bytes = r.u32();
  m.cache.line_bytes = r.u32();
  m.cache.ways = r.u32();
  m.cache.hit_latency = r.u64();
  m.cache.miss_penalty = r.u64();
  m.cache.writeback_penalty = r.u64();
  m.prefetch_enabled = r.b();
  m.prefetch_degree = r.u32();
  m.mmio_base = r.u32();
  m.mmio_size = r.u32();
  m.work_queue_enabled = r.b();
  mem::TopologyConfig& topo = m.topology;
  topo.channels = r.u32();
  topo.interleave_bytes = r.u32();
  topo.link_latency = r.u64();
  topo.link_bandwidth = r.u32();
  topo.tile_l1_enabled = r.b();
  topo.tile_l1.size_bytes = r.u32();
  topo.tile_l1.line_bytes = r.u32();
  topo.tile_l1.ways = r.u32();
  topo.tile_l1.hit_latency = r.u64();
  topo.tile_l1.miss_penalty = r.u64();
  topo.tile_l1.writeback_penalty = r.u64();
  topo.hht_prefetch_enabled = r.b();
  topo.hht_prefetch_degree = r.u32();
  topo.hht_prefetch_queue = r.u32();
  topo.nodes.resize(r.u32());
  for (mem::TopologyNodeConfig& node : topo.nodes) {
    node.grants_per_cycle = r.u32();
    node.extra_latency = r.u64();
  }
  core::HhtConfig& h = cfg.hht;
  h.num_buffers = r.u32();
  h.buffer_len = r.u32();
  h.be_issue_per_cycle = r.u32();
  h.cmp_per_cycle = r.u32();
  h.cmp_recurrence = r.u32();
  h.emit_per_cycle = r.u32();
  h.prefetch_queue = r.u32();
  h.emission_queue = r.u32();
  h.test_flip_element = r.u64();
  cfg.vlmax = static_cast<int>(r.u32());
  cfg.programmable_hht = r.b();
  cfg.micro_timing = readTiming(r);
  sim::FaultConfig& f = cfg.faults;
  f.enabled = r.b();
  f.seed = r.u64();
  f.sram_read_flip_rate = std::bit_cast<double>(r.u64());
  f.drop_rate = std::bit_cast<double>(r.u64());
  f.delay_rate = std::bit_cast<double>(r.u64());
  f.delay_cycles = r.u64();
  f.mmr_glitch_rate = std::bit_cast<double>(r.u64());
  f.fifo_corrupt_rate = std::bit_cast<double>(r.u64());
  f.ecc_retry_limit = r.u32();
  f.drop_penalty_cycles = r.u64();
  cfg.watchdog_cycles = r.u64();
  return cfg;
}

namespace {
/// System models exactly one {CPU+HHT} tile; MultiTileSystem owns the
/// N-tile topology. Catch the mismatch before components are built on a
/// memory system whose extra arbiter ports nothing would ever drive.
const SystemConfig& singleTileOnly(const SystemConfig& config) {
  if (config.memory.num_tiles != 1) {
    throw sim::SimError(sim::ErrorKind::Config, "system",
                        "System is single-tile; memory.num_tiles=" +
                            std::to_string(config.memory.num_tiles) +
                            " requires harness::MultiTileSystem");
  }
  return config;
}
}  // namespace

System::System(const SystemConfig& config)
    : config_(validated(singleTileOnly(config))),
      injector_(config.faults.enabled
                    ? std::make_unique<sim::FaultInjector>(config.faults)
                    : nullptr),
      mem_(std::make_unique<mem::MemorySystem>(config.memory)),
      cpu_(std::make_unique<cpu::Core>(config.timing, *mem_, config.vlmax)),
      arena_(kArenaBase, config.memory.sram_bytes - kArenaBase) {
  if (config.programmable_hht) {
    auto micro = std::make_unique<core::MicroHht>(config.hht, *mem_,
                                                  config.micro_timing);
    micro_hht_ = micro.get();
    hht_ = std::move(micro);
  } else {
    auto asic = std::make_unique<core::Hht>(config.hht, *mem_);
    asic_hht_ = asic.get();
    hht_ = std::move(asic);
  }
  mem_->attachMmioDevice(hht_.get());
  if (injector_) {
    mem_->setFaultInjector(injector_.get());
    hht_->setFaultInjector(injector_.get());
  }
  if (config.trace_sink != nullptr) {
    cpu_->setTraceSink(config.trace_sink, obs::Component::kCpu);
    mem_->setTraceSink(config.trace_sink);
    hht_->setTraceSink(config.trace_sink);
  }
}

RunResult System::run(const isa::Program& program, Addr y_addr,
                      std::uint32_t y_len, Cycle max_cycles,
                      const isa::Program* fallback, RunObserver* observer) {
  cpu_->loadProgram(program);
  return runLoop(program, y_addr, y_len, 0, max_cycles, fallback, observer);
}

RunResult System::resume(const isa::Program& program, Addr y_addr,
                         std::uint32_t y_len, Cycle start_cycle,
                         Cycle max_cycles, const isa::Program* fallback,
                         RunObserver* observer) {
  cpu_->installProgram(program);
  if (degraded_active_) {
    // The snapshot was taken mid-degraded-fallback: `program` is the
    // fallback the machine was re-running. Finish that loop — injection
    // stays detached, exactly as in the uninterrupted degraded rerun.
    degradedLoop(program, start_cycle, max_cycles, observer);
    if (injector_) {
      mem_->setFaultInjector(injector_.get());
      hht_->setFaultInjector(injector_.get());
    }
    degraded_active_ = false;
    RunResult result;
    result.degraded = true;
    result.fault_cause = degraded_cause_;
    result.fault_detail = degraded_detail_;
    finishResult(result, y_addr, y_len);
    return result;
  }
  return runLoop(program, y_addr, y_len, start_cycle, max_cycles, fallback,
                 observer);
}

RunResult System::runLoop(const isa::Program& program, Addr y_addr,
                          std::uint32_t y_len, Cycle start_cycle,
                          Cycle max_cycles, const isa::Program* fallback,
                          RunObserver* observer) {
  sim::Watchdog watchdog(config_.watchdog_cycles);
  // Progress = retired instructions + SRAM grants + HHT FIFO pops/firmware
  // retirement. Counter references are stable, so the hot loop reads two
  // cached pointers plus one virtual call — and only on sampling cycles.
  const std::uint64_t* cpu_retired = &cpu_->stats().counter("cpu.retired");
  const std::uint64_t* mem_grants = &mem_->stats().counter("mem.grants");

  // Host fast-forward (DESIGN.md §11): only when no observer (per-run or
  // registered) and no trace sink is attached — an observer is entitled to
  // see every executed cycle (the differential oracle samples FIFO
  // occupancy; checkpoint triggers fire at exact cycles) and a trace must
  // record every executed cycle's phase. One combined check: attaching
  // both an oracle tap and a trace sink disables fast-forward exactly
  // once. The fault injector needs no quiescence hook: faults only arise
  // from component activity, and skipped stretches have none.
  const bool allow_ff = config_.host_fastforward && observer == nullptr &&
                        observers_.empty() && config_.trace_sink == nullptr;
  if (allow_ff && config_.sched_mode == SchedMode::Event) {
    return runEventLoop(program, y_addr, y_len, start_cycle, max_cycles,
                        fallback, observer);
  }
  const bool quiescence_ff =
      allow_ff && config_.sched_mode != SchedMode::Naive;
  host_skipped_cycles_ = 0;
  // Failed-attempt throttle: on skip-hostile stretches (some component has
  // an event every cycle) the hook itself would otherwise tax every cycle.
  // Attempts are side-effect-free, so thinning them never changes results —
  // a skippable stretch is still found within ff_backoff cycles, and the
  // stretches that matter (idle tails, long stalls) are far longer than the
  // backoff cap.
  Cycle ff_next_attempt = 0;
  Cycle ff_backoff = 0;

  // Devirtualized tick target: both concrete device types are final, so
  // calling through the typed alias lets the per-cycle dispatch inline.
  core::Hht* const asic = asic_hht_;
  core::MicroHht* const micro = micro_hht_;

  RunResult result;
  Cycle now = start_cycle;
  for (; now < max_cycles; ++now) {
    if (asic != nullptr) {
      asic->tick(now);
    } else {
      micro->tick(now);
    }
    cpu_->tick(now);
    mem_->tick(now);
    if (hht_->faultRaised()) {
      // Host-side poll of the FAULT MMR (zero simulated cost): the run can
      // never complete with silently wrong data past this point.
      result.fault_cause = hht_->faultCause();
      result.fault_detail = hht_->faultDetail();
      if (fallback == nullptr) {
        throw sim::SimError(
            sim::ErrorKind::DeviceFault, "hht",
            std::string("HHT raised fault [") +
                sim::faultCauseName(result.fault_cause) +
                "] with no degradation fallback installed: " +
                result.fault_detail,
            dumpDiagnostics(now));
      }
      degraded_cause_ = result.fault_cause;
      degraded_detail_ = result.fault_detail;
      degradedRerun(*fallback, max_cycles, observer);
      result.degraded = true;
      break;
    }
    if (observer != nullptr) observer->onCycle(*this, now);
    for (RunObserver* o : observers_) o->onCycle(*this, now);
    if (cpu_->halted() && mem_->idle()) break;
    if (watchdog.due(now)) {
      watchdog.observe(
          now, *cpu_retired + *mem_grants + hht_->progressSignal(),
          [&] { return dumpDiagnostics(now); });
    }
    if (quiescence_ff && now >= ff_next_attempt) {
      // Cheapest hook first: the CPU is almost always the binding
      // component, so the HHT/memory hooks only run when the CPU already
      // reported a skippable stretch.
      Cycle ev = cpu_->nextEventCycle(now);
      if (ev > now + 1) {
        ev = std::min(ev, asic != nullptr ? asic->nextEventCycle(now)
                                          : micro->nextEventCycle(now));
      }
      if (ev > now + 1) ev = std::min(ev, mem_->nextEventCycle(now));
      // Minimum profitable skip: the three hook calls plus the bulk
      // credits cost more host time than simply ticking a handful of
      // quiescent cycles, so tiny skips are treated as failed attempts
      // (this was the source of the mode's historic <1.0x showing on
      // dense workloads — frequent 2-4 cycle skips, each a net loss).
      // Long skips — idle tails, deep stalls — are unaffected. Skips are
      // optional by construction, so thinning them never changes results.
      constexpr Cycle kMinProfitableSkip = 8;
      if (ev <= now + kMinProfitableSkip) {
        ff_backoff = std::min<Cycle>(ff_backoff == 0 ? 1 : ff_backoff * 2, 64);
        ff_next_attempt = now + ff_backoff;
      } else {
        // Cap at the watchdog's next state-changing sample so a wedged run
        // still fires at the exact cycle — and with the exact diagnostics —
        // the naive loop would produce, and at max_cycles so the timeout
        // path is also unchanged.
        Cycle target = std::min(ev, max_cycles);
        target = std::min(
            target, watchdog.observeSkip(
                        now, *cpu_retired + *mem_grants +
                                 hht_->progressSignal()));
        if (target > now + 1) {
          const Cycle skipped = target - (now + 1);
          cpu_->skipCycles(skipped);
          hht_->skipCycles(skipped);
          host_skipped_cycles_ += skipped;
          now += skipped;  // the for-loop ++now resumes ticking at `target`
          ff_backoff = 0;
        }
      }
    }
  }
  if (!result.degraded && now >= max_cycles) {
    throw sim::SimError(sim::ErrorKind::Watchdog, "system",
                        "simulation exceeded max_cycles running " +
                            program.name(),
                        dumpDiagnostics(now));
  }
  if (config_.trace_sink != nullptr &&
      config_.trace_sink->enabled(obs::Category::kSystem)) {
    // Horizon marker: the run executed cycles [start_cycle, now], so the
    // profiler's total-cycle denominator is now + 1.
    config_.trace_sink->emit(now, obs::Category::kSystem,
                             obs::Component::kSystem, obs::EventKind::kRunEnd,
                             now + 1);
  }

  finishResult(result, y_addr, y_len);
  return result;
}

RunResult System::runEventLoop(const isa::Program& program, Addr y_addr,
                               std::uint32_t y_len, Cycle start_cycle,
                               Cycle max_cycles, const isa::Program* fallback,
                               RunObserver* observer) {
  // Event-scheduled loop (DESIGN.md §16). Each component is ticked only on
  // cycles it declared work for; the cycles in between — where its
  // nextEventCycle() contract guarantees a tick would have been a pure
  // no-op plus bookkeeping — are bulk-credited via skipCycles() just
  // before its next real tick (or at a synchronization point: watchdog
  // dump, fault break, loop exit). The loop itself jumps straight to the
  // earliest posted event. Results, stats and snapshot bytes are
  // bit-identical to the naive schedule; the A/B proof lives in
  // tests/test_fastforward.cc.
  sim::Watchdog watchdog(config_.watchdog_cycles);
  const std::uint64_t* cpu_retired = &cpu_->stats().counter("cpu.retired");
  const std::uint64_t* mem_grants = &mem_->stats().counter("mem.grants");
  core::Hht* const asic = asic_hht_;
  core::MicroHht* const micro = micro_hht_;
  host_skipped_cycles_ = 0;
  RunResult result;

  enum : std::size_t { kHht = 0, kCpu = 1, kMem = 2 };
  sim::EventCalendar<3> cal;
  cal.post(kHht, start_cycle);
  cal.post(kCpu, start_cycle);
  cal.post(kMem, start_cycle);
  // First cycle each component has NOT yet been ticked or credited for.
  Cycle hht_from = start_cycle;
  Cycle cpu_from = start_cycle;
  // Hook thinning: while a component keeps answering "tick me next cycle",
  // consulting its nextEventCycle() hook every tick buys nothing — post
  // now+1 blindly for a stride of ticks before asking again. Extra ticks
  // are exactly the naive schedule, so this is always safe, and any hook
  // answer greater than now+1 ends the blind window at once, so multi-cycle
  // skips (load stalls, drained devices) are preserved. The only cost is up
  // to one stride of busy-ticks after a component actually goes quiet.
  // Only the device and memory hooks are thinned: both answer now+1 for as
  // long as any memory traffic exists, so their blind windows cost nothing.
  // The CPU hook is consulted every tick — its answer encodes per-stall
  // skips (LoadWait, vector-gather startup) that fire even while memory is
  // busy, and a blind now+1 post would turn each into a forced tick that
  // pays a response-lane scan.
  constexpr Cycle kHookThinStride = 16;
  Cycle hht_hook_due = start_cycle;
  Cycle mem_hook_due = start_cycle;
  // Busy-streak burst: when every component keeps answering now+1, the
  // calendar machinery (due checks, hooks, posts, min-scan) is pure
  // overhead over the naive loop. After kBurstStreak consecutive
  // iterations with no jump, fall back to naive ticking for a burst that
  // doubles up to kBurstCap (the quiescence probe cap), re-consulting the
  // calendar between bursts. A burst ticks every component every cycle —
  // exactly the naive schedule — so it can never change results; the cost
  // is a bounded delay (one burst) before a newly-skippable stretch is
  // noticed, the same bargain the quiescence backoff strikes.
  constexpr Cycle kBurstStreak = 8;
  constexpr Cycle kMinBurst = 16;
  constexpr Cycle kBurstCap = 256;
  Cycle burst_until = start_cycle;  // exclusive end of the current burst
  Cycle burst_len = kMinBurst;
  Cycle busy_streak = 0;

  const auto progressSum = [&] {
    return *cpu_retired + *mem_grants + hht_->progressSignal();
  };
  // Credit both lazily-skipped components through cycle `upto - 1`.
  const auto creditTo = [&](Cycle upto) {
    if (upto > hht_from) {
      hht_->skipCycles(upto - hht_from);
      hht_from = upto;
    }
    if (upto > cpu_from) {
      cpu_->skipCycles(upto - cpu_from);
      cpu_from = upto;
    }
  };

  bool finished = false;  // exited via halt or degraded fallback
  Cycle now = start_cycle;
  while (now < max_cycles) {
    if (now < burst_until) {
      // Naive-burst cycle: tick everything in the reference order with no
      // calendar traffic. The lazy-credit cursors advance with the ticks,
      // so the shared fault/halt/watchdog handling below needs no burst
      // special-casing.
      if (asic != nullptr) {
        asic->tick(now);
      } else {
        micro->tick(now);
      }
      hht_from = now + 1;
      cpu_->tick(now);
      cpu_from = now + 1;
      mem_->tick(now);
    } else {
    bool hht_ticked = false;
    if (cal.due(kHht, now)) {
      if (now > hht_from) hht_->skipCycles(now - hht_from);
      if (asic != nullptr) {
        asic->tick(now);
      } else {
        micro->tick(now);
      }
      hht_from = now + 1;
      hht_ticked = true;
    }
    bool cpu_ticked = false;
    if (cal.due(kCpu, now)) {
      if (now > cpu_from) cpu_->skipCycles(now - cpu_from);
      cpu_->tick(now);
      cpu_from = now + 1;
      cpu_ticked = true;
    }
    const bool mmio_was_pending = mem_->mmioPending();
    if (mmio_was_pending && now + 1 > hht_from) {
      // Settle the device's lazy credit BEFORE the memory tick delivers
      // MMIO: a delivered write can create or start an engine, and credits
      // applied after that would advance the new engine's phase for cycles
      // the naive schedule ticked against the old (engine-less) state.
      // Crediting through `now` is sound here: the device was not due this
      // cycle, so its contract covers every cycle up to and including now.
      hht_->skipCycles(now + 1 - hht_from);
      hht_from = now + 1;
    }
    if (cal.due(kMem, now) || mem_->pendingArbitration()) {
      // pendingArbitration covers submits made by this cycle's device/core
      // ticks: arbitration for them runs this same cycle, which a posting
      // taken before those ticks cannot know.
      mem_->tick(now);
      if (now >= mem_hook_due) {
        const Cycle next = mem_->nextEventCycle(now);
        cal.post(kMem, next);
        if (next == now + 1) mem_hook_due = now + kHookThinStride;
      } else {
        cal.post(kMem, now + 1);
      }
      if (!hht_ticked && mmio_was_pending) {
        // The memory system processed MMIO traffic this cycle; an MMIO
        // start write is the one path that hands an otherwise-idle device
        // new work, so refresh its posting.
        const Cycle next = asic != nullptr ? asic->nextEventCycle(now)
                                           : micro->nextEventCycle(now);
        cal.post(kHht, std::min(cal.at(kHht), next));
      }
    }
    // Both refreshes run after the memory tick: the device's next event
    // consults memory drain state, and a CPU load waits on a response
    // whose ready cycle the memory system only knows once granted. The
    // CPU is never woken externally — every wait phase it enters carries
    // its own wake cycle — so its posting refreshes only when it ticks.
    if (hht_ticked) {
      if (now >= hht_hook_due) {
        const Cycle next = asic != nullptr ? asic->nextEventCycle(now)
                                           : micro->nextEventCycle(now);
        cal.post(kHht, next);
        if (next == now + 1) hht_hook_due = now + kHookThinStride;
      } else {
        cal.post(kHht, now + 1);
      }
    }
    if (cpu_ticked) cal.post(kCpu, cpu_->nextEventCycle(now));
    }

    if (hht_->faultRaised()) {
      result.fault_cause = hht_->faultCause();
      result.fault_detail = hht_->faultDetail();
      creditTo(now + 1);
      if (fallback == nullptr) {
        throw sim::SimError(
            sim::ErrorKind::DeviceFault, "hht",
            std::string("HHT raised fault [") +
                sim::faultCauseName(result.fault_cause) +
                "] with no degradation fallback installed: " +
                result.fault_detail,
            dumpDiagnostics(now));
      }
      degraded_cause_ = result.fault_cause;
      degraded_detail_ = result.fault_detail;
      degradedRerun(*fallback, max_cycles, observer);
      result.degraded = true;
      finished = true;
      break;
    }
    if (cpu_->halted() && mem_->idle()) {
      creditTo(now + 1);
      finished = true;
      break;
    }
    if (watchdog.due(now)) {
      watchdog.observe(now, progressSum(), [&] {
        creditTo(now + 1);
        return dumpDiagnostics(now);
      });
    }

    if (now >= burst_until) {
      const Cycle ev = cal.next();
      if (ev > now + 1) {
        busy_streak = 0;
        burst_len = kMinBurst;
        // Jump to the earliest cycle any component has work, capped at
        // max_cycles (timeout path unchanged) and at the watchdog's next
        // state-changing sample (a wedged run fires at the exact cycle,
        // with the exact diagnostics, the naive loop would produce).
        Cycle target = std::min(ev, max_cycles);
        target = std::min(target, watchdog.observeSkip(now, progressSum()));
        if (target > now + 1) {
          host_skipped_cycles_ += target - (now + 1);
          now = target;
          continue;
        }
      } else if (++busy_streak >= kBurstStreak) {
        // ev == now+1 only means the EARLIEST component is due next cycle;
        // another may still carry uncredited lazily-skipped cycles. Settle
        // both cursors now — the burst ticks every component every cycle,
        // so it must start from fully-credited state, exactly like the
        // fault/halt exits. Exiting a burst leaves the calendar entries
        // stale-low, which is always safe: every component reads as due,
        // ticks once, and reposts from a fresh hook.
        creditTo(now + 1);
        busy_streak = 0;
        burst_until = now + 1 + burst_len;
        burst_len = std::min(burst_len * 2, kBurstCap);
        // A burst ticks without posting, so work created inside it (a
        // grant's retirement cycle, a stall wake) would leave the pre-burst
        // entries stale-HIGH and get missed. Force every slot due on the
        // first post-burst cycle: each component ticks once and reposts
        // from a fresh hook.
        cal.post(kHht, burst_until);
        cal.post(kCpu, burst_until);
        cal.post(kMem, burst_until);
      }
    }
    ++now;
  }
  if (!finished) {
    // now == max_cycles: credit the lazily-skipped tail through the last
    // simulated cycle, then fail exactly as the naive loop would.
    creditTo(now);
    throw sim::SimError(sim::ErrorKind::Watchdog, "system",
                        "simulation exceeded max_cycles running " +
                            program.name(),
                        dumpDiagnostics(now));
  }
  finishResult(result, y_addr, y_len);
  return result;
}

void System::finishResult(RunResult& result, Addr y_addr,
                          std::uint32_t y_len) {
  result.cycles = cpu_->stats().value("cpu.cycles");
  result.retired = cpu_->stats().value("cpu.retired");
  result.cpu_wait_cycles = hht_->cpuWaitCycles();
  result.hht_wait_cycles = hht_->hhtWaitCycles();
  result.hht_residual_busy = hht_->busy();
  result.y = sparse::DenseVector(
      mem_->sram().peekArray<float>(y_addr, y_len));

  mem_->finalizeStats();
  result.stats.absorb(cpu_->stats(), "");
  result.stats.absorb(mem_->stats(), "");
  result.stats.absorb(hht_->stats(), "");
  if (injector_) result.stats.absorb(injector_->stats(), "");
}

std::vector<std::uint8_t> System::checkpoint(const isa::Program& program,
                                             Cycle next_cycle) const {
  sim::StateWriter w;
  w.tag("HHTS");
  w.u32(kSnapshotVersion);
  w.u64(configFingerprint(config_));
  w.str(program.name());
  w.u64(programHash(program));
  w.u64(next_cycle);
  // v4: degraded-mode continuation state. When taken mid-fallback-rerun the
  // recorded program IS the fallback, and restore()+resume() must land in
  // the degraded loop (injection detached) rather than the primary one.
  w.b(degraded_active_);
  if (degraded_active_) {
    w.u8(static_cast<std::uint8_t>(degraded_cause_));
    w.str(degraded_detail_);
  }
  w.b(injector_ != nullptr);
  if (injector_) injector_->serialize(w);
  mem_->serialize(w);
  hht_->serialize(w);
  cpu_->serialize(w);
  return w.data();
}

Cycle System::restore(const std::vector<std::uint8_t>& snapshot,
                      const isa::Program& program) {
  sim::StateReader r(snapshot);
  r.expectTag("HHTS");
  const std::uint32_t version = r.u32();
  if (version > kSnapshotVersion) {
    // Forward compatibility is explicitly NOT attempted: a newer writer may
    // have added fields this binary cannot even skip safely (sections are
    // length-free), so best-effort reading would deserialize garbage into
    // live component state. Fail structurally instead.
    throw sim::SimError(sim::ErrorKind::Checkpoint, "system",
                        "snapshot version " + std::to_string(version) +
                            " is newer than this binary's supported version " +
                            std::to_string(kSnapshotVersion) +
                            "; refusing best-effort restore (upgrade the "
                            "binary that restores, not the snapshot)");
  }
  if (version != kSnapshotVersion) {
    throw sim::SimError(sim::ErrorKind::Checkpoint, "system",
                        "snapshot version " + std::to_string(version) +
                            " != supported version " +
                            std::to_string(kSnapshotVersion));
  }
  const std::uint64_t fingerprint = r.u64();
  if (fingerprint != configFingerprint(config_)) {
    throw sim::SimError(sim::ErrorKind::Checkpoint, "system",
                        "snapshot was taken under a different SystemConfig "
                        "(fingerprint mismatch)");
  }
  const std::string prog_name = r.str();
  const std::uint64_t prog_hash = r.u64();
  if (prog_name != program.name() || prog_hash != programHash(program)) {
    throw sim::SimError(sim::ErrorKind::Checkpoint, "system",
                        "snapshot records program '" + prog_name +
                            "', got '" + program.name() +
                            "' (or the code differs)");
  }
  const Cycle next_cycle = r.u64();
  degraded_active_ = r.b();
  if (degraded_active_) {
    degraded_cause_ = static_cast<sim::FaultCause>(r.u8());
    degraded_detail_ = r.str();
  } else {
    degraded_cause_ = sim::FaultCause::None;
    degraded_detail_.clear();
  }
  const bool has_injector = r.b();
  if (has_injector != (injector_ != nullptr)) {
    throw sim::SimError(sim::ErrorKind::Checkpoint, "system",
                        "snapshot fault-injector presence does not match "
                        "this System");
  }
  if (injector_) injector_->deserialize(r);
  mem_->deserialize(r);
  hht_->deserialize(r);
  cpu_->deserialize(r);
  if (!r.atEnd()) {
    throw sim::SimError(sim::ErrorKind::Checkpoint, "system",
                        std::to_string(r.remaining()) +
                            " trailing bytes after snapshot payload");
  }
  if (degraded_active_) {
    // Mid-fallback snapshot: the rerun executes with injection detached;
    // resume() re-arms it once the degraded loop completes.
    mem_->setFaultInjector(nullptr);
    hht_->setFaultInjector(nullptr);
  }
  cpu_->installProgram(program);
  return next_cycle;
}

void System::degradedRerun(const isa::Program& fallback, Cycle max_cycles,
                           RunObserver* observer) {
  // Quiesce: stop injecting (the recovery run must succeed), drop every
  // in-flight access (stale responses must not leak into the rerun) and
  // return the device to its reset state.
  mem_->setFaultInjector(nullptr);
  hht_->setFaultInjector(nullptr);
  mem_->cancelAll();
  hht_->reset();

  cpu_->loadProgram(fallback);
  degradedLoop(fallback, 0, max_cycles, observer);

  // Re-arm injection for any subsequent run on this System.
  if (injector_) {
    mem_->setFaultInjector(injector_.get());
    hht_->setFaultInjector(injector_.get());
  }
  degraded_active_ = false;
}

void System::degradedLoop(const isa::Program& fallback, Cycle start_cycle,
                          Cycle max_cycles, RunObserver* observer) {
  // The fallback loop restarts its cycle numbering at 0 and never injects
  // or polls the FAULT MMR (the device was reset; the fallback is
  // CPU-only). Observers still see every executed cycle — that is what
  // lets a mid-degraded checkpoint fire at an exact degraded cycle —
  // with degradedActive() distinguishing these cycles from primary ones.
  degraded_active_ = true;
  Cycle now = start_cycle;
  for (; now < max_cycles; ++now) {
    hht_->tick(now);
    cpu_->tick(now);
    mem_->tick(now);
    if (observer != nullptr) observer->onCycle(*this, now);
    for (RunObserver* o : observers_) o->onCycle(*this, now);
    if (cpu_->halted() && mem_->idle()) break;
  }
  if (now >= max_cycles) {
    throw sim::SimError(sim::ErrorKind::Watchdog, "system",
                        "degraded fallback run exceeded max_cycles running " +
                            fallback.name(),
                        dumpDiagnostics(now));
  }
}

std::string System::dumpDiagnostics(Cycle now) const {
  std::ostringstream os;
  os << "diagnostic dump at cycle " << now << "\n";
  os << "cpu: halted=" << cpu_->halted() << " pc=" << cpu_->pc()
     << " retired=" << cpu_->stats().value("cpu.retired")
     << " load_stalls=" << cpu_->stats().value("cpu.load_stall_cycles")
     << "\n";
  os << hht_->describeState() << "\n";
  os << mem_->describeState();
  return os.str();
}

kernels::SpmvLayout loadSpmv(mem::Arena& arena, mem::Sram& sram,
                             const sparse::CsrMatrix& m,
                             const sparse::DenseVector& v) {
  if (v.size() != m.numCols()) {
    throw std::invalid_argument("loadSpmv: vector length != matrix columns");
  }
  kernels::SpmvLayout layout;
  layout.num_rows = m.numRows();
  layout.rows = arena.place<sim::Index>(sram, m.rowPtr());
  layout.cols = arena.place<sim::Index>(sram, m.cols());
  layout.vals = arena.place<float>(sram, m.vals());
  layout.v = arena.place<float>(sram, v.data());
  layout.y = arena.allocate(static_cast<std::size_t>(m.numRows()) * 4);
  return layout;
}

kernels::SpmvLayout loadSpmv(System& sys, const sparse::CsrMatrix& m,
                             const sparse::DenseVector& v) {
  return loadSpmv(sys.arena(), sys.memory().sram(), m, v);
}

kernels::SpmspvLayout loadSpmspv(mem::Arena& arena, mem::Sram& sram,
                                 const sparse::CsrMatrix& m,
                                 const sparse::SparseVector& v) {
  if (v.size() != m.numCols()) {
    throw std::invalid_argument("loadSpmspv: vector length != matrix columns");
  }
  kernels::SpmspvLayout layout;
  layout.num_rows = m.numRows();
  layout.v_nnz = v.nnz();
  layout.rows = arena.place<sim::Index>(sram, m.rowPtr());
  layout.cols = arena.place<sim::Index>(sram, m.cols());
  layout.vals = arena.place<float>(sram, m.vals());
  layout.vidx = arena.place<sim::Index>(sram, v.indices());
  layout.vvals = arena.place<float>(sram, v.vals());
  layout.y = arena.allocate(static_cast<std::size_t>(m.numRows()) * 4);
  return layout;
}

kernels::SpmspvLayout loadSpmspv(System& sys, const sparse::CsrMatrix& m,
                                 const sparse::SparseVector& v) {
  return loadSpmspv(sys.arena(), sys.memory().sram(), m, v);
}

kernels::HierLayout loadHier(System& sys, const sparse::HierBitmapMatrix& m,
                             const sparse::DenseVector& v) {
  if (v.size() != m.numCols()) {
    throw std::invalid_argument("loadHier: vector length != matrix columns");
  }
  mem::Arena& arena = sys.arena();
  mem::Sram& sram = sys.memory().sram();
  kernels::HierLayout layout;
  layout.num_rows = m.numRows();
  layout.num_cols = m.numCols();
  // uint64 words laid out little-endian: the engine's 32-bit reads see
  // bits [i*32, i*32+32) at word offset i, as it expects.
  layout.l1 = arena.place<std::uint64_t>(sram, m.level1(), 8);
  layout.leaves = arena.place<std::uint64_t>(sram, m.leaves(), 8);
  layout.packed_vals = arena.place<float>(sram, m.vals());
  layout.v = arena.place<float>(sram, v.data());
  layout.y = arena.allocate(static_cast<std::size_t>(m.numRows()) * 4);
  return layout;
}

kernels::SpmmLayout loadSpmm(System& sys, const sparse::CsrMatrix& m,
                             const sparse::DenseMatrix& b) {
  if (b.numRows() != m.numCols()) {
    throw std::invalid_argument("loadSpmm: B rows != matrix columns");
  }
  mem::Arena& arena = sys.arena();
  mem::Sram& sram = sys.memory().sram();
  kernels::SpmmLayout layout;
  layout.num_rows = m.numRows();
  layout.num_cols = m.numCols();
  layout.k = b.numCols();
  layout.rows = arena.place<sim::Index>(sram, m.rowPtr());
  layout.cols = arena.place<sim::Index>(sram, m.cols());
  layout.vals = arena.place<float>(sram, m.vals());
  // Column-major copy of B.
  std::vector<float> colmajor(static_cast<std::size_t>(b.numRows()) * b.numCols());
  for (sim::Index j = 0; j < b.numCols(); ++j) {
    for (sim::Index i = 0; i < b.numRows(); ++i) {
      colmajor[static_cast<std::size_t>(j) * b.numRows() + i] = b.at(i, j);
    }
  }
  layout.b = arena.place<float>(sram, colmajor);
  layout.y = arena.allocate(static_cast<std::size_t>(m.numRows()) * b.numCols() * 4);
  return layout;
}

kernels::HierLayout loadFlatBitmap(System& sys, const sparse::BitVectorMatrix& m,
                                   const sparse::DenseVector& v) {
  if (v.size() != m.numCols()) {
    throw std::invalid_argument("loadFlatBitmap: vector length != matrix columns");
  }
  mem::Arena& arena = sys.arena();
  mem::Sram& sram = sys.memory().sram();
  kernels::HierLayout layout;
  layout.num_rows = m.numRows();
  layout.num_cols = m.numCols();
  layout.l1 = 0;  // unused in flat mode
  layout.leaves = arena.place<std::uint64_t>(sram, m.words(), 8);
  layout.packed_vals = arena.place<float>(sram, m.vals());
  layout.v = arena.place<float>(sram, v.data());
  layout.y = arena.allocate(static_cast<std::size_t>(m.numRows()) * 4);
  return layout;
}

}  // namespace hht::harness
