#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <exception>
#include <thread>
#include <vector>

namespace hht::harness {

/// Host-side parallel sweep driver: runs `n` independent tasks — typically
/// one fully-owned System per task — on a small pool of host threads and
/// returns the results in index order.
///
/// Determinism contract: the task function receives only its index, so it
/// must derive everything task-specific (operands, RNG stream, config) from
/// that index. Tasks share no simulator state; results land in a
/// pre-sized vector slot per index. Output is therefore byte-identical for
/// every `jobs` value, including 1 — the scheduling order can change, the
/// results cannot. (Simulator objects themselves are single-threaded;
/// never share a System between tasks.)
///
/// Error contract: every task runs to completion or failure; afterwards the
/// first failure *by index* (not by wall-clock order) is rethrown, so the
/// reported error is also independent of `jobs`.
class SweepRunner {
 public:
  /// `jobs` = 0 selects std::thread::hardware_concurrency().
  explicit SweepRunner(unsigned jobs = 0)
      : jobs_(jobs == 0 ? defaultJobs() : jobs) {}

  static unsigned defaultJobs() {
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : hw;
  }

  unsigned jobs() const { return jobs_; }

  /// Run fn(0) .. fn(n-1); return {fn(0), ..., fn(n-1)}. The result type
  /// must be default-constructible (slots are pre-sized). With jobs <= 1 or
  /// n <= 1 this is a plain inline loop — zero threading cost.
  template <typename Fn>
  auto run(std::size_t n, Fn&& fn)
      -> std::vector<decltype(fn(std::size_t{0}))> {
    using R = decltype(fn(std::size_t{0}));
    std::vector<R> results(n);
    if (n <= 1 || jobs_ <= 1) {
      // The inline loop throws at the lowest failing index, which is the
      // same failure the pool path selects below.
      for (std::size_t i = 0; i < n; ++i) results[i] = fn(i);
      return results;
    }
    std::vector<std::exception_ptr> errors(n);
    std::atomic<std::size_t> next{0};
    auto worker = [&] {
      for (;;) {
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= n) return;
        try {
          results[i] = fn(i);
        } catch (...) {
          errors[i] = std::current_exception();
        }
      }
    };
    const auto pool =
        static_cast<unsigned>(std::min<std::size_t>(jobs_, n));
    std::vector<std::thread> threads;
    threads.reserve(pool);
    for (unsigned t = 0; t < pool; ++t) threads.emplace_back(worker);
    for (std::thread& t : threads) t.join();
    for (std::size_t i = 0; i < n; ++i) {
      if (errors[i]) std::rethrow_exception(errors[i]);
    }
    return results;
  }

 private:
  unsigned jobs_;
};

}  // namespace hht::harness
