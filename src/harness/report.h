#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace hht::harness {

/// Fixed-width console table used by every bench binary to print its
/// figure/table rows in a uniform, diff-friendly format.
class Table {
 public:
  explicit Table(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  void addRow(std::vector<std::string> cells) { rows_.push_back(std::move(cells)); }
  void print(std::ostream& os) const;

  /// Also emit comma-separated values (for plotting scripts).
  void printCsv(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format a double with fixed precision.
std::string fmt(double value, int precision = 2);
/// Format a percentage (value in [0,1]).
std::string pct(double fraction, int precision = 1);
/// ASCII bar proportional to value/maximum (for figure-shaped output).
std::string bar(double value, double maximum, int width = 32);

/// Standard bench banner: experiment id + Table-1 style configuration line.
void printBanner(std::ostream& os, const std::string& experiment,
                 const std::string& description);

}  // namespace hht::harness
