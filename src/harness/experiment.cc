#include "harness/experiment.h"

#include "kernels/firmware.h"
#include "workload/partition.h"

#include <algorithm>
#include <stdexcept>

namespace hht::harness {

SystemConfig defaultConfig(std::uint32_t num_buffers, int vlmax) {
  SystemConfig cfg;
  // Table 1 lists a 1 MB RAM; the 512x512/10%-sparsity workloads of Fig. 4
  // need ~2 MB of CSR arrays, so the harness sizes the (flat-latency) RAM
  // to fit — capacity does not affect any timing path.
  cfg.memory.sram_bytes = 8u << 20;
  cfg.hht.num_buffers = num_buffers;
  cfg.vlmax = vlmax;
  // BLEN tracks the vector width (§3.1 footnote 3): buffers hold one
  // vector's worth of elements.
  cfg.hht.buffer_len = static_cast<std::uint32_t>(vlmax);
  return cfg;
}

RunResult runSpmvBaseline(const SystemConfig& cfg, const sparse::CsrMatrix& m,
                          const sparse::DenseVector& v, bool vectorized) {
  System sys(cfg);
  const kernels::SpmvLayout layout = loadSpmv(sys, m, v);
  const isa::Program program = vectorized ? kernels::spmvVectorBaseline(layout)
                                          : kernels::spmvScalarBaseline(layout);
  return sys.run(program, layout.y, layout.num_rows);
}

RunResult runSpmvHht(const SystemConfig& cfg, const sparse::CsrMatrix& m,
                     const sparse::DenseVector& v, bool vectorized) {
  System sys(cfg);
  const kernels::SpmvLayout layout = loadSpmv(sys, m, v);
  const Addr mmio = cfg.memory.mmio_base;
  const isa::Program program = vectorized
                                   ? kernels::spmvVectorHht(layout, mmio)
                                   : kernels::spmvScalarHht(layout, mmio);
  return sys.run(program, layout.y, layout.num_rows);
}

RunResult runSpmspvBaseline(const SystemConfig& cfg, const sparse::CsrMatrix& m,
                            const sparse::SparseVector& v) {
  System sys(cfg);
  const kernels::SpmspvLayout layout = loadSpmspv(sys, m, v);
  return sys.run(kernels::spmspvScalarBaseline(layout), layout.y,
                 layout.num_rows);
}

RunResult runSpmspvHht(const SystemConfig& cfg, const sparse::CsrMatrix& m,
                       const sparse::SparseVector& v, int variant,
                       bool vectorized) {
  System sys(cfg);
  const kernels::SpmspvLayout layout = loadSpmspv(sys, m, v);
  const Addr mmio = cfg.memory.mmio_base;
  isa::Program program = [&] {
    if (variant == 1) return kernels::spmspvHhtV1(layout, mmio);
    if (variant == 2) {
      return vectorized ? kernels::spmspvHhtV2(layout, mmio)
                        : kernels::spmspvHhtV2Scalar(layout, mmio);
    }
    throw std::invalid_argument("SpMSpV variant must be 1 or 2");
  }();
  return sys.run(program, layout.y, layout.num_rows);
}

RunResult runSpmmBaseline(const SystemConfig& cfg, const sparse::CsrMatrix& m,
                          const sparse::DenseMatrix& b) {
  System sys(cfg);
  const kernels::SpmmLayout layout = loadSpmm(sys, m, b);
  return sys.run(kernels::spmmVectorBaseline(layout), layout.y,
                 layout.num_rows * layout.k);
}

RunResult runSpmmHht(const SystemConfig& cfg, const sparse::CsrMatrix& m,
                     const sparse::DenseMatrix& b) {
  System sys(cfg);
  const kernels::SpmmLayout layout = loadSpmm(sys, m, b);
  return sys.run(kernels::spmmVectorHht(layout, cfg.memory.mmio_base),
                 layout.y, layout.num_rows * layout.k);
}

RunResult runFlatHht(const SystemConfig& cfg, const sparse::BitVectorMatrix& m,
                     const sparse::DenseVector& v) {
  System sys(cfg);
  const kernels::HierLayout layout = loadFlatBitmap(sys, m, v);
  return sys.run(kernels::flatBitmapHht(layout, cfg.memory.mmio_base),
                 layout.y, layout.num_rows);
}

RunResult runSpmvProgHht(const SystemConfig& cfg, const sparse::CsrMatrix& m,
                         const sparse::DenseVector& v, bool vectorized) {
  SystemConfig pcfg = cfg;
  pcfg.programmable_hht = true;
  System sys(pcfg);
  const kernels::SpmvLayout layout = loadSpmv(sys, m, v);
  const Addr mmio = pcfg.memory.mmio_base;
  const isa::Program firmware = kernels::firmwareSpmvGather(layout, mmio);
  sys.microHht()->setFirmware(firmware);
  const isa::Program program = vectorized
                                   ? kernels::spmvVectorHht(layout, mmio)
                                   : kernels::spmvScalarHht(layout, mmio);
  return sys.run(program, layout.y, layout.num_rows);
}

RunResult runSpmspvProgHht(const SystemConfig& cfg, const sparse::CsrMatrix& m,
                           const sparse::SparseVector& v, int variant,
                           bool vectorized) {
  SystemConfig pcfg = cfg;
  pcfg.programmable_hht = true;
  System sys(pcfg);
  const kernels::SpmspvLayout layout = loadSpmspv(sys, m, v);
  const Addr mmio = pcfg.memory.mmio_base;
  const isa::Program firmware = variant == 1
                                    ? kernels::firmwareSpmspvV1(layout, mmio)
                                    : kernels::firmwareSpmspvV2(layout, mmio);
  sys.microHht()->setFirmware(firmware);
  isa::Program program = [&] {
    if (variant == 1) return kernels::spmspvHhtV1(layout, mmio);
    if (variant == 2) {
      return vectorized ? kernels::spmspvHhtV2(layout, mmio)
                        : kernels::spmspvHhtV2Scalar(layout, mmio);
    }
    throw std::invalid_argument("SpMSpV variant must be 1 or 2");
  }();
  return sys.run(program, layout.y, layout.num_rows);
}

RunResult runSpmvHhtResilient(const SystemConfig& cfg,
                              const sparse::CsrMatrix& m,
                              const sparse::DenseVector& v, bool vectorized) {
  System sys(cfg);
  const kernels::SpmvLayout layout = loadSpmv(sys, m, v);
  const Addr mmio = cfg.memory.mmio_base;
  const isa::Program program = vectorized
                                   ? kernels::spmvVectorHht(layout, mmio)
                                   : kernels::spmvScalarHht(layout, mmio);
  const isa::Program fallback = kernels::spmvScalarBaseline(layout);
  return sys.run(program, layout.y, layout.num_rows, 500'000'000, &fallback);
}

RunResult runSpmspvHhtResilient(const SystemConfig& cfg,
                                const sparse::CsrMatrix& m,
                                const sparse::SparseVector& v, int variant,
                                bool vectorized) {
  System sys(cfg);
  const kernels::SpmspvLayout layout = loadSpmspv(sys, m, v);
  const Addr mmio = cfg.memory.mmio_base;
  isa::Program program = [&] {
    if (variant == 1) return kernels::spmspvHhtV1(layout, mmio);
    if (variant == 2) {
      return vectorized ? kernels::spmspvHhtV2(layout, mmio)
                        : kernels::spmspvHhtV2Scalar(layout, mmio);
    }
    throw std::invalid_argument("SpMSpV variant must be 1 or 2");
  }();
  const isa::Program fallback = kernels::spmspvScalarBaseline(layout);
  return sys.run(program, layout.y, layout.num_rows, 500'000'000, &fallback);
}

RunResult runHierHht(const SystemConfig& cfg, const sparse::HierBitmapMatrix& m,
                     const sparse::DenseVector& v) {
  System sys(cfg);
  const kernels::HierLayout layout = loadHier(sys, m, v);
  return sys.run(kernels::hierBitmapHht(layout, cfg.memory.mmio_base),
                 layout.y, layout.num_rows);
}

namespace {
std::vector<kernels::RowShard> partitionRows(const sparse::CsrMatrix& m,
                                             std::uint32_t num_tiles,
                                             Partition part) {
  return part == Partition::Block
             ? workload::partitionRowsBlock(m, num_tiles)
             : workload::partitionRowsNnzBalanced(m, num_tiles);
}

/// Surface the static split's quality next to the run's timing counters,
/// so a skewed matrix diagnoses itself (imbalance_pct far above 100, or
/// empty shards) instead of just running slowly.
void recordPartitionStats(RunResult& result, const sparse::CsrMatrix& m,
                          const std::vector<kernels::RowShard>& shards) {
  const workload::PartitionStats st = workload::partitionStats(m, shards);
  result.stats.counter("workload.shard_imbalance_pct") = st.imbalance_pct;
  result.stats.counter("workload.shard_empty") = st.empty_shards;
  result.stats.counter("workload.shard_max_nnz") = st.max_nnz;
}
}  // namespace

RunResult runSpmvHhtSharded(const SystemConfig& cfg, std::uint32_t num_tiles,
                            Partition part, const sparse::CsrMatrix& m,
                            const sparse::DenseVector& v, bool vectorized) {
  SystemConfig mcfg = cfg;
  mcfg.memory.num_tiles = num_tiles;
  MultiTileSystem sys(mcfg);
  // Operands live once in the shared SRAM; every tile reads the same
  // arrays, restricted to its own row range.
  const kernels::SpmvLayout layout =
      loadSpmv(sys.arena(), sys.memory().sram(), m, v);
  const std::vector<kernels::RowShard> shards =
      partitionRows(m, num_tiles, part);
  std::vector<isa::Program> programs;
  programs.reserve(num_tiles);
  for (std::uint32_t t = 0; t < num_tiles; ++t) {
    const Addr mmio = sys.mmioBaseOf(t);
    programs.push_back(
        vectorized ? kernels::spmvVectorHhtShard(layout, shards[t], mmio)
                   : kernels::spmvScalarHhtShard(layout, shards[t], mmio));
  }
  RunResult result = sys.run(programs, layout.y, layout.num_rows);
  recordPartitionStats(result, m, shards);
  return result;
}

RunResult runSpmspvHhtSharded(const SystemConfig& cfg, std::uint32_t num_tiles,
                              Partition part, const sparse::CsrMatrix& m,
                              const sparse::SparseVector& v, int variant,
                              bool vectorized) {
  if (variant != 1 && variant != 2) {
    throw std::invalid_argument("SpMSpV variant must be 1 or 2");
  }
  if (variant == 2 && !vectorized) {
    throw std::invalid_argument(
        "sharded SpMSpV variant 2 has a vectorized consumer only");
  }
  SystemConfig mcfg = cfg;
  mcfg.memory.num_tiles = num_tiles;
  MultiTileSystem sys(mcfg);
  const kernels::SpmspvLayout layout =
      loadSpmspv(sys.arena(), sys.memory().sram(), m, v);
  const std::vector<kernels::RowShard> shards =
      partitionRows(m, num_tiles, part);
  std::vector<isa::Program> programs;
  programs.reserve(num_tiles);
  for (std::uint32_t t = 0; t < num_tiles; ++t) {
    const Addr mmio = sys.mmioBaseOf(t);
    programs.push_back(variant == 1
                           ? kernels::spmspvHhtV1Shard(layout, shards[t], mmio)
                           : kernels::spmspvHhtV2Shard(layout, shards[t], mmio));
  }
  RunResult result = sys.run(programs, layout.y, layout.num_rows);
  recordPartitionStats(result, m, shards);
  return result;
}

std::vector<std::vector<mem::ChunkQueueDevice::Chunk>> dealRowChunks(
    std::uint32_t num_rows, std::uint32_t num_tiles,
    std::uint32_t chunk_rows) {
  chunk_rows = std::max<std::uint32_t>(
      1, std::min(chunk_rows, mem::ChunkQueueDevice::kMaxChunkRows));
  std::vector<mem::ChunkQueueDevice::Chunk> chunks;
  for (std::uint32_t row = 0; row < num_rows; row += chunk_rows) {
    chunks.push_back({row, std::min(chunk_rows, num_rows - row)});
  }
  std::vector<std::vector<mem::ChunkQueueDevice::Chunk>> per_tile(num_tiles);
  const std::size_t total = chunks.size();
  std::size_t next = 0;
  for (std::uint32_t t = 0; t < num_tiles; ++t) {
    // Contiguous deal, remainder spread over the leading tiles.
    const std::size_t take =
        total / num_tiles + (t < total % num_tiles ? 1 : 0);
    for (std::size_t i = 0; i < take; ++i) per_tile[t].push_back(chunks[next++]);
  }
  return per_tile;
}

RunResult runSpmvHhtChunkQueue(const SystemConfig& cfg, std::uint32_t num_tiles,
                               const sparse::CsrMatrix& m,
                               const sparse::DenseVector& v, bool vectorized,
                               std::uint32_t chunk_rows) {
  SystemConfig mcfg = cfg;
  mcfg.memory.num_tiles = num_tiles;
  mcfg.memory.work_queue_enabled = true;
  MultiTileSystem sys(mcfg);
  const kernels::SpmvLayout layout =
      loadSpmv(sys.arena(), sys.memory().sram(), m, v);
  sys.workQueue()->seed(
      dealRowChunks(layout.num_rows, num_tiles, chunk_rows));
  std::vector<isa::Program> programs;
  programs.reserve(num_tiles);
  for (std::uint32_t t = 0; t < num_tiles; ++t) {
    const Addr mmio = sys.mmioBaseOf(t);
    const Addr claim = sys.workQueueBase() + 4 * t;
    programs.push_back(
        vectorized ? kernels::spmvVectorHhtChunkQueue(layout, mmio, claim)
                   : kernels::spmvScalarHhtChunkQueue(layout, mmio, claim));
  }
  return sys.run(programs, layout.y, layout.num_rows);
}

RunResult runSpmspvHhtChunkQueue(const SystemConfig& cfg,
                                 std::uint32_t num_tiles,
                                 const sparse::CsrMatrix& m,
                                 const sparse::SparseVector& v, int variant,
                                 std::uint32_t chunk_rows) {
  if (variant != 1 && variant != 2) {
    throw std::invalid_argument("SpMSpV variant must be 1 or 2");
  }
  SystemConfig mcfg = cfg;
  mcfg.memory.num_tiles = num_tiles;
  mcfg.memory.work_queue_enabled = true;
  MultiTileSystem sys(mcfg);
  const kernels::SpmspvLayout layout =
      loadSpmspv(sys.arena(), sys.memory().sram(), m, v);
  sys.workQueue()->seed(
      dealRowChunks(layout.num_rows, num_tiles, chunk_rows));
  std::vector<isa::Program> programs;
  programs.reserve(num_tiles);
  for (std::uint32_t t = 0; t < num_tiles; ++t) {
    const Addr mmio = sys.mmioBaseOf(t);
    const Addr claim = sys.workQueueBase() + 4 * t;
    programs.push_back(
        variant == 1 ? kernels::spmspvHhtV1ChunkQueue(layout, mmio, claim)
                     : kernels::spmspvHhtV2ChunkQueue(layout, mmio, claim));
  }
  return sys.run(programs, layout.y, layout.num_rows);
}

}  // namespace hht::harness
