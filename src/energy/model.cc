#include "energy/model.h"

#include <array>
#include <stdexcept>

namespace hht::energy {

const char* featureSizeName(FeatureSize f) {
  switch (f) {
    case FeatureSize::Nm28: return "28nm";
    case FeatureSize::Nm16: return "16nm";
    case FeatureSize::Nm7: return "7nm";
  }
  return "?";
}

namespace {

// Anchor corner, from the paper: 16 nm, 50 MHz.
constexpr double kAnchorCoreUw = 223.0;
constexpr double kAnchorCoreHhtUw = 314.0;
constexpr double kAnchorClockMhz = 50.0;

// Static (leakage) fraction of the anchor power; the remainder scales
// linearly with clock. Embedded 16 nm logic at 50 MHz is dynamic-dominated.
constexpr double kStaticFraction = 0.12;

// Per-node scaling relative to 16 nm: dynamic power capacitance factor and
// area factor (conventional full-node scaling ratios).
struct NodeScale {
  double power;
  double area;
  double leakage;
};
constexpr NodeScale nodeScale(FeatureSize f) {
  switch (f) {
    case FeatureSize::Nm28: return {1.65, 2.1, 0.8};
    case FeatureSize::Nm16: return {1.0, 1.0, 1.0};
    case FeatureSize::Nm7: return {0.55, 0.45, 1.6};
  }
  return {1.0, 1.0, 1.0};
}

// Model constant: Ibex-class core area at 16 nm. Chosen so the published
// ratio (HHT = 38.9 % of Ibex) is met exactly by the component breakdown
// below.
constexpr double kIbexArea16nmUm2 = 21000.0;

constexpr std::array<AreaComponent, 7> kBreakdown{{
    {"control unit logic", 1450.0},
    {"pipeline stage storage", 980.0},
    {"memory-side buffers (2 x 8 elems)", 1650.0},
    {"memory-mapped registers", 850.0},
    {"internal state registers", 720.0},
    {"CPU-side buffer", 900.0},
    {"merge comparator + address generators", 1619.0},
}};
// Sum = 8169 um^2 = 0.389 * 21000 um^2.

}  // namespace

std::span<const AreaComponent> hhtAreaBreakdown() { return kBreakdown; }

SynthesisEstimate synthesisEstimate(FeatureSize f, double clock_mhz) {
  if (clock_mhz <= 0.0) {
    throw std::invalid_argument("clock must be positive");
  }
  const NodeScale scale = nodeScale(f);

  const auto scalePower = [&](double anchor_uw) {
    const double stat = anchor_uw * kStaticFraction * scale.leakage;
    const double dyn = anchor_uw * (1.0 - kStaticFraction) * scale.power *
                       (clock_mhz / kAnchorClockMhz);
    return stat + dyn;
  };

  SynthesisEstimate est;
  est.core_uW = scalePower(kAnchorCoreUw);
  est.core_hht_uW = scalePower(kAnchorCoreHhtUw);
  est.ibex_area_um2 = kIbexArea16nmUm2 * scale.area;
  double hht = 0.0;
  for (const AreaComponent& c : kBreakdown) hht += c.um2_16nm;
  est.hht_area_um2 = hht * scale.area;
  return est;
}

double energyUj(std::uint64_t cycles, double clock_mhz, double uW) {
  const double seconds = static_cast<double>(cycles) / (clock_mhz * 1e6);
  return uW * seconds;  // uW * s = uJ
}

EnergyComparison compareEnergy(std::uint64_t base_cycles,
                               std::uint64_t hht_cycles, FeatureSize f,
                               double clock_mhz) {
  const SynthesisEstimate est = synthesisEstimate(f, clock_mhz);
  EnergyComparison cmp;
  cmp.baseline_uj = energyUj(base_cycles, clock_mhz, est.core_uW);
  cmp.hht_uj = energyUj(hht_cycles, clock_mhz, est.core_hht_uW);
  cmp.savings_fraction = cmp.baseline_uj > 0.0
                             ? 1.0 - cmp.hht_uj / cmp.baseline_uj
                             : 0.0;
  return cmp;
}

}  // namespace hht::energy
