#pragma once

#include "energy/model.h"
#include "sim/stats.h"

namespace hht::energy {

/// Event-level energy model: an alternative to the lumped P x t computation
/// of model.h that decomposes a run's energy into per-event contributions
/// (instruction dispatches, SRAM traffic, HHT pipeline activity), using the
/// merged counters a harness::RunResult carries.
///
/// The per-event constants are calibrated so that a typical Table-1 SpMV
/// run lands on the anchored corner (16 nm @ 50 MHz: 223 uW core-only,
/// 314 uW with the HHT active) — tests pin the agreement to within 25 %.
/// Use this model to ask *where* the energy goes (e.g. how much of the HHT
/// adder is buffer traffic vs merge comparisons), not for absolute numbers.
struct EventEnergyTable {
  // Primary core, picojoules per event at the anchor corner.
  double cpu_cycle_base = 1.9;   ///< clock tree + pipeline registers
  double instr_dispatch = 2.6;   ///< decode + register file + ALU average
  double sram_read = 4.0;        ///< per element-sized SRAM read
  double sram_write = 4.4;
  double mmio_access = 1.2;      ///< FE port crossing

  // HHT, per event.
  double hht_active_cycle = 0.9; ///< control unit + pipeline clocking
  double hht_mem_read = 4.0;     ///< BE element fetch (same SRAM)
  double hht_comparison = 0.6;   ///< merge/scan step
  double hht_slot_delivered = 0.8; ///< buffer write+read per element
};

/// Per-component breakdown of one run's energy, in microjoules.
struct EnergyBreakdown {
  double cpu_clock_uj = 0.0;
  double cpu_instr_uj = 0.0;
  double cpu_sram_uj = 0.0;
  double cpu_mmio_uj = 0.0;
  double hht_clock_uj = 0.0;
  double hht_sram_uj = 0.0;
  double hht_compare_uj = 0.0;
  double hht_buffers_uj = 0.0;

  double cpuTotalUj() const {
    return cpu_clock_uj + cpu_instr_uj + cpu_sram_uj + cpu_mmio_uj;
  }
  double hhtTotalUj() const {
    return hht_clock_uj + hht_sram_uj + hht_compare_uj + hht_buffers_uj;
  }
  double totalUj() const { return cpuTotalUj() + hhtTotalUj(); }
};

/// Decompose a run's merged stats (cpu.*, mem.*, hht.* counters as merged
/// by harness::System::run) into the event breakdown.
EnergyBreakdown eventEnergy(const sim::StatSet& stats,
                            const EventEnergyTable& table = {});

}  // namespace hht::energy
