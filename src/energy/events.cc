#include "energy/events.h"

namespace hht::energy {

namespace {
constexpr double kPjToUj = 1e-6;
}

EnergyBreakdown eventEnergy(const sim::StatSet& stats,
                            const EventEnergyTable& t) {
  const auto v = [&](const char* name) {
    return static_cast<double>(stats.value(name));
  };

  EnergyBreakdown b;
  b.cpu_clock_uj = v("cpu.cycles") * t.cpu_cycle_base * kPjToUj;
  b.cpu_instr_uj = v("cpu.retired") * t.instr_dispatch * kPjToUj;
  b.cpu_sram_uj = (v("mem.cpu.reads") * t.sram_read +
                   v("mem.cpu.writes") * t.sram_write) *
                  kPjToUj;
  b.cpu_mmio_uj = v("mem.cpu.mmio_requests") * t.mmio_access * kPjToUj;

  b.hht_clock_uj = v("hht.active_cycles") * t.hht_active_cycle * kPjToUj;
  b.hht_sram_uj = v("hht.mem_reads") * t.hht_mem_read * kPjToUj;
  const double comparisons = v("hht.merge.comparisons") +
                             v("hht.stream.comparisons") +
                             v("hht.hier.l1_words_scanned") +
                             v("hht.hier.slots_found") +
                             v("hht.hier.values_requested");
  b.hht_compare_uj = comparisons * t.hht_comparison * kPjToUj;
  b.hht_buffers_uj = v("hht.elements_delivered") * t.hht_slot_delivered * kPjToUj;
  return b;
}

}  // namespace hht::energy
