#pragma once

#include <cstdint>
#include <span>
#include <string>

#include "sim/types.h"

namespace hht::energy {

/// Synthesis corners evaluated in §5.5 (ARM libraries at 28/16/7 nm,
/// clocked at 10/50/100 MHz).
enum class FeatureSize { Nm28, Nm16, Nm7 };

const char* featureSizeName(FeatureSize f);

/// Power/area figures for one (feature size, clock) corner.
///
/// SUBSTITUTION NOTE (see DESIGN.md §3): the paper derives these from
/// Synopsys Design Compiler + PrimeTime runs we cannot reproduce offline.
/// The model is anchored on the paper's published outputs —
///   16 nm @ 50 MHz: RISCV(Ibex) alone 223 uW, RISCV+HHT 314 uW,
///   HHT area = 38.9 % of the Ibex core —
/// and extended to the other corners with standard technology scaling
/// (dynamic power ~ f and ~ capacitance per node; area ~ 0.5x per node).
struct SynthesisEstimate {
  double core_uW = 0.0;       ///< Ibex-class RV32 core alone
  double core_hht_uW = 0.0;   ///< core + HHT operating together
  double ibex_area_um2 = 0.0;
  double hht_area_um2 = 0.0;

  double hhtAreaFraction() const { return hht_area_um2 / ibex_area_um2; }
  double hhtPowerUw() const { return core_hht_uW - core_uW; }
};

/// Interpolated/scaled estimate for a corner. clock_mhz in {10, 50, 100}
/// is exact; other clocks scale the dynamic component linearly.
SynthesisEstimate synthesisEstimate(FeatureSize f, double clock_mhz);

/// Breakdown of the ASIC HHT area (§5.5 lists these contributors: control
/// unit logic, pipeline-stage storage, two memory-side buffers of size 8,
/// MMRs, internal state registers, one CPU-side buffer; we add the merge
/// comparator + address generators which variant-1/2 require).
struct AreaComponent {
  const char* name;
  double um2_16nm;
};
std::span<const AreaComponent> hhtAreaBreakdown();

/// Energy for a run of `cycles` at `clock_mhz` under power `uW`: returns
/// micro-joules.
double energyUj(std::uint64_t cycles, double clock_mhz, double uW);

/// The §5.5 comparison: baseline core running for base_cycles vs core+HHT
/// running for hht_cycles, same corner. Positive = HHT saves energy.
struct EnergyComparison {
  double baseline_uj = 0.0;
  double hht_uj = 0.0;
  double savings_fraction = 0.0;  ///< 1 - hht/baseline
};
EnergyComparison compareEnergy(std::uint64_t base_cycles,
                               std::uint64_t hht_cycles, FeatureSize f,
                               double clock_mhz);

}  // namespace hht::energy
