// End-to-end SpMV kernel tests: the simulated programs (baseline scalar,
// baseline vector, HHT scalar, HHT vector) must reproduce the sparse
// library's reference result. Generators use small-integer values, so all
// accumulation orders are exact and comparison is bitwise.
#include <gtest/gtest.h>

#include "harness/experiment.h"
#include "sparse/reference.h"
#include "workload/synthetic.h"

namespace hht {
namespace {

using harness::RunResult;
using harness::SystemConfig;
using sparse::CsrMatrix;
using sparse::DenseVector;

void expectVectorsEqual(const DenseVector& expected, const DenseVector& actual) {
  ASSERT_EQ(expected.size(), actual.size());
  for (sim::Index i = 0; i < expected.size(); ++i) {
    ASSERT_EQ(expected.at(i), actual.at(i)) << "y[" << i << "]";
  }
}

struct Case {
  sim::Index rows;
  sim::Index cols;
  double sparsity;
  int vlmax;
};

class SpmvKernelTest : public ::testing::TestWithParam<Case> {};

TEST_P(SpmvKernelTest, AllKernelVariantsMatchReference) {
  const Case& c = GetParam();
  sim::Rng rng(0xC0FFEE ^ (c.rows * 131 + c.cols) ^
               static_cast<std::uint64_t>(c.sparsity * 100));
  const CsrMatrix m = workload::randomCsr(rng, c.rows, c.cols, c.sparsity);
  const DenseVector v = workload::randomDenseVector(rng, c.cols);
  const DenseVector expected = sparse::spmvCsr(m, v);

  const SystemConfig cfg = harness::defaultConfig(2, c.vlmax);

  const RunResult base_scalar = harness::runSpmvBaseline(cfg, m, v, false);
  expectVectorsEqual(expected, base_scalar.y);

  const RunResult base_vec = harness::runSpmvBaseline(cfg, m, v, true);
  expectVectorsEqual(expected, base_vec.y);

  const RunResult hht_scalar = harness::runSpmvHht(cfg, m, v, false);
  expectVectorsEqual(expected, hht_scalar.y);
  EXPECT_FALSE(hht_scalar.hht_residual_busy);

  const RunResult hht_vec = harness::runSpmvHht(cfg, m, v, true);
  expectVectorsEqual(expected, hht_vec.y);
  EXPECT_FALSE(hht_vec.hht_residual_busy);

  // Offloading the metadata accesses must shrink the dynamic instruction
  // count once the work outweighs the ~20-instruction MMR setup prologue.
  if (m.nnz() > 16) {
    EXPECT_LT(hht_scalar.retired, base_scalar.retired);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SpmvKernelTest,
    ::testing::Values(Case{1, 1, 0.0, 8}, Case{4, 4, 0.5, 8},
                      Case{16, 16, 0.1, 8}, Case{16, 16, 0.9, 8},
                      Case{33, 17, 0.5, 8}, Case{64, 64, 0.7, 8},
                      Case{64, 64, 0.99, 8}, Case{32, 32, 0.5, 4},
                      Case{32, 32, 0.5, 1}, Case{7, 64, 0.6, 8},
                      Case{64, 7, 0.6, 8}, Case{16, 16, 1.0, 8}));

}  // namespace
}  // namespace hht
