// Workload generator tests: statistical properties, determinism, and the
// DNN layer catalogue.
#include <gtest/gtest.h>

#include <cmath>

#include "workload/dnn.h"
#include "workload/synthetic.h"

namespace hht::workload {
namespace {

class SparsitySweep : public ::testing::TestWithParam<double> {};

TEST_P(SparsitySweep, RandomDenseHitsTargetSparsity) {
  sim::Rng rng(0x10 + static_cast<std::uint64_t>(GetParam() * 100));
  const sparse::DenseMatrix m = randomDense(rng, 128, 128, GetParam());
  EXPECT_NEAR(m.sparsity(), GetParam(), 0.03);
}

TEST_P(SparsitySweep, RandomSparseVectorHitsTargetSparsity) {
  sim::Rng rng(0x20 + static_cast<std::uint64_t>(GetParam() * 100));
  const sparse::SparseVector v = randomSparseVector(rng, 4096, GetParam());
  EXPECT_TRUE(v.validate());
  EXPECT_NEAR(v.sparsity(), GetParam(), 0.03);
}

INSTANTIATE_TEST_SUITE_P(Levels, SparsitySweep,
                         ::testing::Values(0.0, 0.1, 0.5, 0.9, 1.0));

TEST(Synthetic, DeterministicForEqualSeeds) {
  sim::Rng a(42), b(42);
  EXPECT_EQ(randomCsr(a, 32, 32, 0.5), randomCsr(b, 32, 32, 0.5));
  sim::Rng c(43);
  EXPECT_NE(randomCsr(c, 32, 32, 0.5), randomCsr(b, 32, 32, 0.5));
}

TEST(Synthetic, SmallIntegerValuesAreExactlyRepresentable) {
  sim::Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const float v = drawValue(rng, ValueDist::kSmallIntegers);
    EXPECT_GE(v, 1.0f);
    EXPECT_LE(v, 15.0f);
    EXPECT_EQ(v, std::floor(v));  // integral
  }
}

TEST(Synthetic, UniformRealValuesInRange) {
  sim::Rng rng(8);
  for (int i = 0; i < 1000; ++i) {
    const float v = drawValue(rng, ValueDist::kUniformReal);
    EXPECT_GE(v, 0.5f);
    EXPECT_LT(v, 1.5f);
  }
}

TEST(Synthetic, DenseVectorHasNoZeros) {
  sim::Rng rng(9);
  const sparse::DenseVector v = randomDenseVector(rng, 512);
  EXPECT_EQ(v.countNonZeros(), 512u);
}

TEST(Synthetic, BandedMatrixStaysInBand) {
  sim::Rng rng(10);
  const sparse::CsrMatrix m = bandedCsr(rng, 64, 3, 0.8);
  EXPECT_TRUE(m.validate());
  EXPECT_GT(m.nnz(), 0u);
  for (sim::Index r = 0; r < 64; ++r) {
    for (sim::Index c : m.rowCols(r)) {
      const auto dist = c > r ? c - r : r - c;
      ASSERT_LE(dist, 3u) << "entry (" << r << "," << c << ") out of band";
    }
  }
  EXPECT_GT(m.sparsity(), 0.85);  // banded at n=64, hb=3 is >90% sparse
}

TEST(Synthetic, PowerLawDegreesDecay) {
  sim::Rng rng(11);
  const sparse::CsrMatrix m = powerLawCsr(rng, 64, 64, 16, 0.7);
  EXPECT_TRUE(m.validate());
  EXPECT_LE(m.rowNnz(0), 16u);
  EXPECT_GE(m.rowNnz(0), m.rowNnz(63));  // head row densest
  for (sim::Index r = 0; r < 64; ++r) EXPECT_GE(m.rowNnz(r), 1u);
}

TEST(Synthetic, BlockDiagonalStructure) {
  sim::Rng rng(12);
  const sparse::CsrMatrix m = blockDiagonalCsr(rng, 4, 8, 0.9);
  EXPECT_EQ(m.numRows(), 32u);
  EXPECT_TRUE(m.validate());
  for (sim::Index r = 0; r < 32; ++r) {
    for (sim::Index c : m.rowCols(r)) {
      ASSERT_EQ(r / 8, c / 8) << "entry crosses block boundary";
    }
  }
}

TEST(Dnn, CatalogMatchesPublishedClassifierShapes) {
  const auto catalog = dnnFcCatalog();
  ASSERT_EQ(catalog.size(), 7u);
  for (const DnnFcLayer& l : catalog) {
    EXPECT_EQ(l.out_features, 1000u) << l.network;  // ImageNet classes
    EXPECT_GT(l.sparsity, 0.0);
    EXPECT_LT(l.sparsity, 1.0);
  }
  EXPECT_EQ(std::string(catalog[0].network), "MobileNet");
  EXPECT_EQ(catalog[0].in_features, 1024u);
  EXPECT_EQ(catalog[5].in_features, 4096u);  // VGG16
  EXPECT_EQ(catalog[6].in_features, 4096u);  // VGG19
}

TEST(Dnn, LayerMatrixRespectsRowLimitAndSparsity) {
  const DnnFcLayer& layer = dnnFcCatalog()[0];
  const sparse::CsrMatrix full = dnnLayerMatrix(layer, 5);
  EXPECT_EQ(full.numRows(), layer.out_features);
  EXPECT_EQ(full.numCols(), layer.in_features);
  EXPECT_NEAR(full.sparsity(), layer.sparsity, 0.01);

  const sparse::CsrMatrix slice = dnnLayerMatrix(layer, 5, 64);
  EXPECT_EQ(slice.numRows(), 64u);
  // A row limit above the layer size is clamped.
  EXPECT_EQ(dnnLayerMatrix(layer, 5, 5000).numRows(), layer.out_features);
}

TEST(Dnn, LayerMatrixIsSeedDeterministic) {
  const DnnFcLayer& layer = dnnFcCatalog()[2];
  EXPECT_EQ(dnnLayerMatrix(layer, 9, 32), dnnLayerMatrix(layer, 9, 32));
  EXPECT_NE(dnnLayerMatrix(layer, 9, 32), dnnLayerMatrix(layer, 10, 32));
}

}  // namespace
}  // namespace hht::workload
