// Stall-attribution profiler properties (DESIGN.md §12): for randomized
// machine configurations the per-component bucket cycles must sum exactly
// to the simulated horizon, and every event tally must reconcile with the
// fig6/fig7 wait-cycle counters the components maintain independently —
// the emit sites sit at the counter bumps, so any drift is a threading bug.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "harness/experiment.h"
#include "obs/profile.h"
#include "obs/trace.h"
#include "sim/rng.h"
#include "sim/state_io.h"
#include "sim/stats.h"
#include "workload/synthetic.h"

namespace hht {
namespace {

using harness::RunResult;
using harness::SystemConfig;

struct ProfiledRun {
  RunResult result;
  obs::ProfileReport report;
};

template <typename Body>
ProfiledRun profiled(SystemConfig cfg, Body&& body) {
  obs::TraceSink sink;
  cfg.trace_sink = &sink;
  ProfiledRun out;
  out.result = body(cfg);
  out.report = obs::profile(sink);
  EXPECT_EQ(sink.dropped(), 0u) << "workload overflowed the trace sink";
  return out;
}

/// Invariant 1: every component's buckets sum to the horizon — attributed
/// cycles plus implicit drained fill cover the whole run, no cycle counted
/// twice or lost.
void expectBucketsCoverHorizon(const ProfiledRun& run, const char* label) {
  EXPECT_EQ(run.report.horizon, run.result.cycles) << label;
  for (int c = 0; c < obs::kNumComponents; ++c) {
    EXPECT_EQ(run.report.componentTotal(static_cast<obs::Component>(c)),
              run.report.horizon)
        << label << " component " << obs::componentName(
               static_cast<obs::Component>(c));
  }
}

/// Invariant 2: event tallies == the stats counters maintained at the same
/// sites (kFifoNotReady at hht.cpu_wait_cycles, kFifoFull at
/// hht.stall_buffers_full, kMemGrant at mem.grants, kMemConflict at the
/// per-requester conflict_cycles, kRetire at cpu.retired).
void expectCountersReconcile(const ProfiledRun& run, const char* label) {
  const sim::StatSet& s = run.result.stats;
  EXPECT_EQ(run.report.fifo_not_ready, s.value("hht.cpu_wait_cycles")) << label;
  EXPECT_EQ(run.report.fifo_not_ready, run.result.cpu_wait_cycles) << label;
  EXPECT_EQ(run.report.mem_grants, s.value("mem.grants")) << label;
  EXPECT_EQ(run.report.mem_conflict_cpu, s.value("mem.cpu.conflict_cycles"))
      << label;
  EXPECT_EQ(run.report.mem_conflict_hht, s.value("mem.hht.conflict_cycles"))
      << label;
  EXPECT_EQ(run.report.retires[static_cast<int>(obs::Component::kCpu)],
            s.value("cpu.retired"))
      << label;
  EXPECT_EQ(run.report.fifo_pops, s.value("hht.fifo_pops")) << label;
}

/// Invariant 3: the span histograms fold back to the bucket totals — each
/// (component, bucket) histogram's sum equals the cycles attributed to
/// that bucket (the explicitly-closed spans; drained fill has no spans).
void expectHistogramsFold(const ProfiledRun& run, const char* label) {
  for (int c = 0; c < obs::kNumComponents; ++c) {
    for (int b = 0; b < obs::kNumBuckets; ++b) {
      const std::string name =
          std::string(obs::componentName(static_cast<obs::Component>(c))) +
          "." + std::string(obs::bucketName(static_cast<std::uint8_t>(b))) +
          "_span_cycles";
      const sim::Histogram* h = run.report.spans.findHistogram(name);
      const std::uint64_t attributed =
          run.report.bucketCycles(static_cast<obs::Component>(c),
                                  static_cast<std::uint8_t>(b));
      if (h == nullptr) continue;  // bucket never explicitly entered
      EXPECT_LE(h->sum(), attributed) << label << " " << name;
      if (b != obs::kBucketDrained) {
        // Non-drained buckets are only ever entered via spans.
        EXPECT_EQ(h->sum(), attributed) << label << " " << name;
      }
    }
  }
}

void expectAllInvariants(const ProfiledRun& run, const char* label) {
  expectBucketsCoverHorizon(run, label);
  expectCountersReconcile(run, label);
  expectHistogramsFold(run, label);
}

TEST(Profile, BucketsSumToTotalCyclesAcrossRandomizedConfigs) {
  // Randomized machine + workload sweep: sizes, sparsity, buffer counts,
  // SRAM latency, comparator recurrence and arbitration pressure all move
  // the phase boundaries; the invariants must hold at every point.
  sim::Rng meta(0xBEEF'0001);
  for (int trial = 0; trial < 8; ++trial) {
    SystemConfig cfg = harness::defaultConfig(
        /*num_buffers=*/1 + static_cast<std::uint32_t>(meta.next64() % 3));
    cfg.memory.sram_latency = 1 + meta.next64() % 24;
    cfg.memory.grants_per_cycle = 1 + static_cast<std::uint32_t>(meta.next64() % 2);
    cfg.hht.cmp_recurrence = 1 + static_cast<std::uint32_t>(meta.next64() % 3);
    const sim::Index n = 8 + static_cast<sim::Index>(meta.next64() % 17);
    const double sparsity = 0.2 + 0.1 * static_cast<double>(meta.next64() % 6);
    sim::Rng rng(meta.next64());
    const sparse::CsrMatrix m = workload::randomCsr(rng, n, n, sparsity);
    const sparse::DenseVector v = workload::randomDenseVector(rng, n);
    const sparse::SparseVector sv =
        workload::randomSparseVector(rng, n, sparsity);
    const std::string label = "trial " + std::to_string(trial);

    expectAllInvariants(profiled(cfg,
                                 [&](const SystemConfig& c) {
                                   return harness::runSpmvHht(c, m, v, true);
                                 }),
                        (label + " gather").c_str());
    expectAllInvariants(profiled(cfg,
                                 [&](const SystemConfig& c) {
                                   return harness::runSpmspvHht(c, m, sv, 1);
                                 }),
                        (label + " merge-v1").c_str());
    expectAllInvariants(profiled(cfg,
                                 [&](const SystemConfig& c) {
                                   return harness::runSpmspvHht(c, m, sv, 2);
                                 }),
                        (label + " stream-v2").c_str());
  }
}

TEST(Profile, BaselineRunHasNoFifoWaitAndFullCpuCoverage) {
  // A CPU-only run never touches the FE: no FIFO events at all, and the
  // CPU's compute + mem_wait buckets alone cover the horizon.
  sim::Rng rng(0xBEEF'0002);
  const sparse::CsrMatrix m = workload::randomCsr(rng, 12, 12, 0.4);
  const sparse::DenseVector v = workload::randomDenseVector(rng, 12);
  const ProfiledRun run =
      profiled(harness::defaultConfig(), [&](const SystemConfig& c) {
        return harness::runSpmvBaseline(c, m, v, false);
      });
  expectAllInvariants(run, "baseline");
  EXPECT_EQ(run.report.fifo_not_ready, 0u);
  EXPECT_EQ(run.report.fifo_pops, 0u);
  const auto cpu = static_cast<int>(obs::Component::kCpu);
  EXPECT_EQ(run.report.bucket_cycles[cpu][obs::kBucketFifoWait], 0u);
  EXPECT_EQ(run.report.bucket_cycles[cpu][obs::kBucketCompute] +
                run.report.bucket_cycles[cpu][obs::kBucketMemWait],
            run.report.horizon);
}

TEST(Profile, MicroHhtFirmwareCountersReconcile) {
  // The programmable front-end adds the kFw* kinds; their tallies must
  // match the firmware-port counters exactly (emit sites at the bumps).
  sim::Rng rng(0xBEEF'0003);
  const sparse::CsrMatrix m = workload::randomCsr(rng, 10, 10, 0.4);
  const sparse::DenseVector v = workload::randomDenseVector(rng, 10);
  const ProfiledRun run =
      profiled(harness::defaultConfig(), [&](const SystemConfig& c) {
        return harness::runSpmvProgHht(c, m, v, false);
      });
  expectBucketsCoverHorizon(run, "micro");
  const sim::StatSet& s = run.result.stats;
  EXPECT_EQ(run.report.fw_space_waits, s.value("hht.fw_space_wait_cycles"));
  EXPECT_EQ(run.report.fw_pushes, s.value("hht.fw_pushes"));
  EXPECT_EQ(run.report.fw_row_ends, s.value("hht.fw_row_ends"));
  EXPECT_EQ(run.report.fifo_pops, s.value("hht.fifo_pops"));
  EXPECT_EQ(run.report.fifo_not_ready, s.value("hht.cpu_wait_cycles"));
  // Firmware retires show up on the micro-core's own track (its StatSet is
  // device-internal, so just require the track to be populated).
  EXPECT_GT(run.report.retires[static_cast<int>(obs::Component::kMicroCore)],
            0u);
}

TEST(Profile, WaitBucketTracksTheFig6WaitFraction)  {
  // Starve the consumer (1 buffer, slow SRAM): the profiler's fifo_wait
  // bucket counts every CPU cycle spent in an MMIO-load phase — each
  // not-ready poll the fig6/fig7 cpu_wait_cycles counter records happens
  // inside one of those cycles, so the bucket dominates the counter (the
  // difference is the fixed MMIO access latency on ready polls). The
  // exact event-level identity (fifo_not_ready == cpu_wait_cycles) is
  // asserted by expectCountersReconcile.
  SystemConfig cfg = harness::defaultConfig(/*num_buffers=*/1);
  cfg.memory.sram_latency = 8;
  sim::Rng rng(0xBEEF'0004);
  const sparse::CsrMatrix m = workload::randomCsr(rng, 16, 16, 0.5);
  const sparse::SparseVector sv = workload::randomSparseVector(rng, 16, 0.5);
  const ProfiledRun run = profiled(cfg, [&](const SystemConfig& c) {
    return harness::runSpmspvHht(c, m, sv, 1);
  });
  expectAllInvariants(run, "merge-v1-starved");
  const auto cpu = static_cast<int>(obs::Component::kCpu);
  EXPECT_GE(run.report.bucket_cycles[cpu][obs::kBucketFifoWait],
            run.result.cpu_wait_cycles)
      << "every not-ready poll is a fifo_wait-classified CPU cycle";
  EXPECT_GT(run.result.cpu_wait_cycles, 0u)
      << "starved config produced no waits; test lost its teeth";
}

TEST(Profile, HistogramBucketsAndSerialization) {
  sim::Histogram h;
  EXPECT_EQ(h.count(), 0u);
  h.add(1);
  h.add(1);
  h.add(7);
  h.add(1000);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.sum(), 1009u);
  EXPECT_EQ(h.min(), 1u);
  EXPECT_EQ(h.max(), 1000u);

  sim::Histogram other;
  other.add(3);
  h.absorb(other);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.sum(), 1012u);

  sim::StateWriter w;
  h.serialize(w);
  sim::StateReader r(w.data());
  sim::Histogram back;
  back.deserialize(r);
  EXPECT_EQ(back.count(), h.count());
  EXPECT_EQ(back.sum(), h.sum());
  EXPECT_EQ(back.min(), h.min());
  EXPECT_EQ(back.max(), h.max());

  // StatSet round-trip with a histogram attached.
  sim::StatSet set;
  set.counter("x") = 42;
  set.histogram("spans").add(9);
  sim::StateWriter sw;
  set.serialize(sw);
  sim::StateReader sr(sw.data());
  sim::StatSet set2;
  set2.deserialize(sr);
  EXPECT_EQ(set2.value("x"), 42u);
  const sim::Histogram* hist = set2.findHistogram("spans");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->sum(), 9u);
}

TEST(Profile, EmptySinkProfilesToEmptyReport) {
  obs::TraceSink sink;
  const obs::ProfileReport rep = obs::profile(sink);
  EXPECT_EQ(rep.horizon, 0u);
  for (int c = 0; c < obs::kNumComponents; ++c) {
    EXPECT_EQ(rep.componentTotal(static_cast<obs::Component>(c)), 0u);
  }
}

}  // namespace
}  // namespace hht
