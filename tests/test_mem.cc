// Memory-system tests: SRAM functional store, request timing, arbitration
// policies and bandwidth limits, and MMIO routing (including stalled reads
// — the FE's CPU-stall mechanism).
#include <gtest/gtest.h>

#include "mem/layout.h"
#include "mem/memory_system.h"

namespace hht::mem {
namespace {

TEST(Sram, ReadWriteAllSizes) {
  Sram sram(64);
  sram.write(0, 4, 0xAABBCCDD);
  EXPECT_EQ(sram.read(0, 4), 0xAABBCCDDu);
  EXPECT_EQ(sram.read(0, 1), 0xDDu);         // little-endian
  EXPECT_EQ(sram.read(1, 2), 0xBBCCu);
  sram.write(8, 1, 0x12345678);              // only low byte stored
  EXPECT_EQ(sram.read(8, 4), 0x78u);
}

TEST(Sram, BoundsChecked) {
  Sram sram(16);
  EXPECT_NO_THROW(sram.read(12, 4));
  EXPECT_THROW(sram.read(13, 4), std::out_of_range);
  EXPECT_THROW(sram.write(16, 1, 0), std::out_of_range);
  EXPECT_THROW(sram.read(0xFFFFFFFF, 4), std::out_of_range);
}

TEST(Sram, TypedPeekPoke) {
  Sram sram(64);
  sram.pokeValue<float>(4, 3.5f);
  EXPECT_EQ(sram.peekValue<float>(4), 3.5f);
  const std::vector<std::uint32_t> xs{1, 2, 3};
  sram.pokeArray<std::uint32_t>(16, xs);
  EXPECT_EQ(sram.peekArray<std::uint32_t>(16, 3), xs);
}

TEST(Arena, AlignedBumpAllocation) {
  Arena arena(0x100, 0x100);
  EXPECT_EQ(arena.allocate(3, 4), 0x100u);
  EXPECT_EQ(arena.allocate(4, 4), 0x104u);   // bumped past the 3-byte block
  EXPECT_EQ(arena.allocate(1, 16), 0x110u);  // 16-byte alignment
  EXPECT_THROW(arena.allocate(0x1000), std::runtime_error);
}

MemorySystemConfig smallConfig() {
  MemorySystemConfig cfg;
  cfg.sram_bytes = 4096;
  cfg.sram_latency = 2;
  cfg.grants_per_cycle = 1;
  return cfg;
}

/// Tick until request `id` completes; returns (data, cycles waited).
std::pair<std::uint32_t, int> waitFor(MemorySystem& mem, RequestId id,
                                      sim::Cycle& now) {
  for (int waited = 0; waited < 100; ++waited) {
    mem.tick(now++);
    if (auto data = mem.takeCompleted(id)) return {*data, waited};
  }
  ADD_FAILURE() << "request never completed";
  return {0, -1};
}

TEST(MemorySystem, ReadSeesPriorWrite) {
  MemorySystem mem(smallConfig());
  sim::Cycle now = 0;
  mem.submit({0x40, 4, true, 0xDEADBEEF, Requester::Cpu});
  const RequestId id = mem.submit({0x40, 4, false, 0, Requester::Cpu});
  const auto [data, waited] = waitFor(mem, id, now);
  EXPECT_EQ(data, 0xDEADBEEFu);
  EXPECT_GE(waited, 1);  // latency 2 => not same-tick
}

TEST(MemorySystem, LatencyIsConfigLatency) {
  MemorySystemConfig cfg = smallConfig();
  cfg.sram_latency = 5;
  MemorySystem mem(cfg);
  sim::Cycle now = 0;
  const RequestId id = mem.submit({0, 4, false, 0, Requester::Cpu});
  const auto [data, waited] = waitFor(mem, id, now);
  (void)data;
  EXPECT_EQ(waited, 5);  // granted at tick 0, retired `latency` ticks later
}

TEST(MemorySystem, BandwidthLimitSpreadsGrants) {
  MemorySystemConfig cfg = smallConfig();
  cfg.sram_latency = 1;
  cfg.grants_per_cycle = 1;
  MemorySystem mem(cfg);
  std::vector<RequestId> ids;
  for (int i = 0; i < 4; ++i) {
    ids.push_back(mem.submit({static_cast<Addr>(4 * i), 4, false, 0,
                              Requester::Cpu}));
  }
  // With 1 grant/cycle and latency 1, completions arrive one per cycle.
  sim::Cycle now = 0;
  std::vector<int> completion_cycle(4, -1);
  for (int cycle = 0; cycle < 10; ++cycle) {
    mem.tick(now++);
    for (int i = 0; i < 4; ++i) {
      if (completion_cycle[i] < 0 && mem.takeCompleted(ids[i])) {
        completion_cycle[i] = cycle;
      }
    }
  }
  for (int i = 1; i < 4; ++i) {
    ASSERT_GE(completion_cycle[i], 0);
    EXPECT_EQ(completion_cycle[i], completion_cycle[i - 1] + 1);
  }
}

TEST(MemorySystem, CpuPriorityStarvesHhtUnderContention) {
  MemorySystemConfig cfg = smallConfig();
  cfg.grants_per_cycle = 1;
  cfg.policy = ArbiterPolicy::CpuPriority;
  MemorySystem mem(cfg);
  const RequestId hht = mem.submit({0, 4, false, 0, Requester::Hht});
  const RequestId cpu = mem.submit({4, 4, false, 0, Requester::Cpu});
  // CPU submitted *after* but must be granted first.
  sim::Cycle now = 0;
  int cpu_done = -1, hht_done = -1;
  for (int cycle = 0; cycle < 10; ++cycle) {
    mem.tick(now++);
    if (cpu_done < 0 && mem.takeCompleted(cpu)) cpu_done = cycle;
    if (hht_done < 0 && mem.takeCompleted(hht)) hht_done = cycle;
  }
  EXPECT_LT(cpu_done, hht_done);
  EXPECT_GT(mem.stats().value("mem.hht.conflict_cycles"), 0u);
}

TEST(MemorySystem, RoundRobinAlternates) {
  MemorySystemConfig cfg = smallConfig();
  cfg.grants_per_cycle = 1;
  cfg.policy = ArbiterPolicy::RoundRobin;
  MemorySystem mem(cfg);
  // Queue 2 HHT then 2 CPU; round-robin grants CPU, HHT, CPU, HHT.
  const RequestId h1 = mem.submit({0, 4, false, 0, Requester::Hht});
  const RequestId h2 = mem.submit({4, 4, false, 0, Requester::Hht});
  const RequestId c1 = mem.submit({8, 4, false, 0, Requester::Cpu});
  const RequestId c2 = mem.submit({12, 4, false, 0, Requester::Cpu});
  sim::Cycle now = 0;
  std::vector<RequestId> completion_order;
  for (int cycle = 0; cycle < 12 && completion_order.size() < 4; ++cycle) {
    mem.tick(now++);
    for (RequestId id : {h1, h2, c1, c2}) {
      if (mem.takeCompleted(id)) completion_order.push_back(id);
    }
  }
  ASSERT_EQ(completion_order.size(), 4u);
  EXPECT_EQ(completion_order[0], c1);
  EXPECT_EQ(completion_order[1], h1);
  EXPECT_EQ(completion_order[2], c2);
  EXPECT_EQ(completion_order[3], h2);
}

TEST(MemorySystem, PerRequesterFifoOrder) {
  MemorySystem mem(smallConfig());
  const RequestId a = mem.submit({0, 4, false, 0, Requester::Cpu});
  const RequestId b = mem.submit({4, 4, false, 0, Requester::Cpu});
  sim::Cycle now = 0;
  bool a_done = false;
  for (int cycle = 0; cycle < 10; ++cycle) {
    mem.tick(now++);
    if (mem.takeCompleted(b)) {
      EXPECT_TRUE(a_done) << "younger same-requester read completed first";
      break;
    }
    if (mem.takeCompleted(a)) a_done = true;
  }
  EXPECT_TRUE(a_done);
}

TEST(MemorySystem, IdleTracksOutstandingWork) {
  MemorySystem mem(smallConfig());
  EXPECT_TRUE(mem.idle());
  const RequestId id = mem.submit({0, 4, false, 0, Requester::Cpu});
  EXPECT_FALSE(mem.idle());
  sim::Cycle now = 0;
  waitFor(mem, id, now);
  EXPECT_TRUE(mem.idle());
  // Posted writes drain without any takeCompleted call.
  mem.submit({0, 4, true, 1, Requester::Cpu});
  EXPECT_FALSE(mem.idle());
  mem.tick(now++);
  EXPECT_TRUE(mem.idle());
}

/// Scripted MMIO device: not-ready for the first `stall_reads` attempts.
class StubDevice : public MmioDevice {
 public:
  MmioReadResult mmioRead(Addr offset, std::uint32_t, Requester) override {
    ++read_attempts;
    if (stall_reads > 0) {
      --stall_reads;
      return {false, 0};
    }
    return {true, 0x1000 + offset};
  }
  void mmioWrite(Addr offset, std::uint32_t, std::uint32_t value, Requester) override {
    last_write_offset = offset;
    last_write_value = value;
  }

  int stall_reads = 0;
  int read_attempts = 0;
  Addr last_write_offset = 0;
  std::uint32_t last_write_value = 0;
};

TEST(MemorySystem, MmioRoutesToDevice) {
  MemorySystemConfig cfg = smallConfig();
  MemorySystem mem(cfg);
  StubDevice dev;
  mem.attachMmioDevice(&dev);
  ASSERT_TRUE(mem.isMmio(cfg.mmio_base + 0x20));
  ASSERT_FALSE(mem.isMmio(0x20));

  mem.submit({cfg.mmio_base + 0x08, 4, true, 77, Requester::Cpu});
  sim::Cycle now = 0;
  mem.tick(now++);
  EXPECT_EQ(dev.last_write_offset, 0x08u);
  EXPECT_EQ(dev.last_write_value, 77u);

  const RequestId id = mem.submit({cfg.mmio_base + 0x40, 4, false, 0,
                                   Requester::Cpu});
  const auto [data, waited] = waitFor(mem, id, now);
  (void)waited;
  EXPECT_EQ(data, 0x1040u);
}

TEST(MemorySystem, StalledMmioReadRetriesEveryCycle) {
  MemorySystemConfig cfg = smallConfig();
  MemorySystem mem(cfg);
  StubDevice dev;
  dev.stall_reads = 3;
  mem.attachMmioDevice(&dev);
  const RequestId id = mem.submit({cfg.mmio_base, 4, false, 0, Requester::Cpu});
  sim::Cycle now = 0;
  const auto [data, waited] = waitFor(mem, id, now);
  EXPECT_EQ(data, 0x1000u);
  EXPECT_EQ(dev.read_attempts, 4);  // 3 stalls + 1 success
  EXPECT_GE(waited, 3);
}

TEST(MemorySystem, UnmappedMmioReadsZero) {
  MemorySystem mem(smallConfig());
  const RequestId id =
      mem.submit({mem.config().mmio_base, 4, false, 0, Requester::Cpu});
  sim::Cycle now = 0;
  const auto [data, waited] = waitFor(mem, id, now);
  (void)waited;
  EXPECT_EQ(data, 0u);
}

}  // namespace
}  // namespace hht::mem
