// Memory-system tests: SRAM functional store, request timing, arbitration
// policies and bandwidth limits, and MMIO routing (including stalled reads
// — the FE's CPU-stall mechanism).
#include <gtest/gtest.h>

#include <map>

#include "mem/layout.h"
#include "mem/memory_system.h"
#include "obs/trace.h"
#include "sim/rng.h"

namespace hht::mem {
namespace {

TEST(Sram, ReadWriteAllSizes) {
  Sram sram(64);
  sram.write(0, 4, 0xAABBCCDD);
  EXPECT_EQ(sram.read(0, 4), 0xAABBCCDDu);
  EXPECT_EQ(sram.read(0, 1), 0xDDu);         // little-endian
  EXPECT_EQ(sram.read(1, 2), 0xBBCCu);
  sram.write(8, 1, 0x12345678);              // only low byte stored
  EXPECT_EQ(sram.read(8, 4), 0x78u);
}

TEST(Sram, BoundsChecked) {
  Sram sram(16);
  EXPECT_NO_THROW(sram.read(12, 4));
  EXPECT_THROW(sram.read(13, 4), std::out_of_range);
  EXPECT_THROW(sram.write(16, 1, 0), std::out_of_range);
  EXPECT_THROW(sram.read(0xFFFFFFFF, 4), std::out_of_range);
}

TEST(Sram, TypedPeekPoke) {
  Sram sram(64);
  sram.pokeValue<float>(4, 3.5f);
  EXPECT_EQ(sram.peekValue<float>(4), 3.5f);
  const std::vector<std::uint32_t> xs{1, 2, 3};
  sram.pokeArray<std::uint32_t>(16, xs);
  EXPECT_EQ(sram.peekArray<std::uint32_t>(16, 3), xs);
}

TEST(Arena, AlignedBumpAllocation) {
  Arena arena(0x100, 0x100);
  EXPECT_EQ(arena.allocate(3, 4), 0x100u);
  EXPECT_EQ(arena.allocate(4, 4), 0x104u);   // bumped past the 3-byte block
  EXPECT_EQ(arena.allocate(1, 16), 0x110u);  // 16-byte alignment
  EXPECT_THROW(arena.allocate(0x1000), std::runtime_error);
}

MemorySystemConfig smallConfig() {
  MemorySystemConfig cfg;
  cfg.sram_bytes = 4096;
  cfg.sram_latency = 2;
  cfg.grants_per_cycle = 1;
  return cfg;
}

/// Tick until request `id` completes; returns (data, cycles waited).
std::pair<std::uint32_t, int> waitFor(MemorySystem& mem, RequestId id,
                                      sim::Cycle& now) {
  for (int waited = 0; waited < 100; ++waited) {
    mem.tick(now++);
    if (auto data = mem.takeCompleted(id)) return {*data, waited};
  }
  ADD_FAILURE() << "request never completed";
  return {0, -1};
}

TEST(MemorySystem, ReadSeesPriorWrite) {
  MemorySystem mem(smallConfig());
  sim::Cycle now = 0;
  mem.submit({0x40, 4, true, 0xDEADBEEF, Requester::Cpu});
  const RequestId id = mem.submit({0x40, 4, false, 0, Requester::Cpu});
  const auto [data, waited] = waitFor(mem, id, now);
  EXPECT_EQ(data, 0xDEADBEEFu);
  EXPECT_GE(waited, 1);  // latency 2 => not same-tick
}

TEST(MemorySystem, LatencyIsConfigLatency) {
  MemorySystemConfig cfg = smallConfig();
  cfg.sram_latency = 5;
  MemorySystem mem(cfg);
  sim::Cycle now = 0;
  const RequestId id = mem.submit({0, 4, false, 0, Requester::Cpu});
  const auto [data, waited] = waitFor(mem, id, now);
  (void)data;
  EXPECT_EQ(waited, 5);  // granted at tick 0, retired `latency` ticks later
}

TEST(MemorySystem, BandwidthLimitSpreadsGrants) {
  MemorySystemConfig cfg = smallConfig();
  cfg.sram_latency = 1;
  cfg.grants_per_cycle = 1;
  MemorySystem mem(cfg);
  std::vector<RequestId> ids;
  for (int i = 0; i < 4; ++i) {
    ids.push_back(mem.submit({static_cast<Addr>(4 * i), 4, false, 0,
                              Requester::Cpu}));
  }
  // With 1 grant/cycle and latency 1, completions arrive one per cycle.
  sim::Cycle now = 0;
  std::vector<int> completion_cycle(4, -1);
  for (int cycle = 0; cycle < 10; ++cycle) {
    mem.tick(now++);
    for (int i = 0; i < 4; ++i) {
      if (completion_cycle[i] < 0 && mem.takeCompleted(ids[i])) {
        completion_cycle[i] = cycle;
      }
    }
  }
  for (int i = 1; i < 4; ++i) {
    ASSERT_GE(completion_cycle[i], 0);
    EXPECT_EQ(completion_cycle[i], completion_cycle[i - 1] + 1);
  }
}

TEST(MemorySystem, CpuPriorityStarvesHhtUnderContention) {
  MemorySystemConfig cfg = smallConfig();
  cfg.grants_per_cycle = 1;
  cfg.policy = ArbiterPolicy::CpuPriority;
  MemorySystem mem(cfg);
  const RequestId hht = mem.submit({0, 4, false, 0, Requester::Hht});
  const RequestId cpu = mem.submit({4, 4, false, 0, Requester::Cpu});
  // CPU submitted *after* but must be granted first.
  sim::Cycle now = 0;
  int cpu_done = -1, hht_done = -1;
  for (int cycle = 0; cycle < 10; ++cycle) {
    mem.tick(now++);
    if (cpu_done < 0 && mem.takeCompleted(cpu)) cpu_done = cycle;
    if (hht_done < 0 && mem.takeCompleted(hht)) hht_done = cycle;
  }
  EXPECT_LT(cpu_done, hht_done);
  EXPECT_GT(mem.stats().value("mem.hht.conflict_cycles"), 0u);
}

// Regression (starvation bound): under CpuPriority a saturating CPU stream
// used to defer an HHT grant forever — the arbiter had no rotation escape.
// With cpu_starvation_limit = L the HHT request must be granted after at
// most L consecutive CPU grants. This test FAILS pre-fix (the HHT read
// never completes within the window and forced_rotations stays 0).
TEST(MemorySystem, CpuPriorityStarvationIsBounded) {
  MemorySystemConfig cfg = smallConfig();
  cfg.policy = ArbiterPolicy::CpuPriority;
  cfg.cpu_starvation_limit = 8;
  MemorySystem mem(cfg);
  const RequestId hht = mem.submit({0, 4, false, 0, Requester::Hht});
  sim::Cycle now = 0;
  int hht_done = -1;
  for (int cycle = 0; cycle < 64; ++cycle) {
    // One fresh CPU read every cycle: the CPU port is never empty, so an
    // unbounded CpuPriority arbiter would grant CPU forever.
    const RequestId cpu =
        mem.submit({static_cast<Addr>(4 + 4 * (cycle % 64)), 4, false, 0,
                    Requester::Cpu});
    mem.tick(now++);
    mem.takeCompleted(cpu);  // drain whatever completed; id reuse-free
    if (hht_done < 0 && mem.takeCompleted(hht)) hht_done = cycle;
  }
  ASSERT_GE(hht_done, 0) << "HHT request starved past the bound";
  // Granted after at most cpu_starvation_limit CPU grants, plus latency.
  EXPECT_LE(hht_done,
            static_cast<int>(cfg.cpu_starvation_limit + cfg.sram_latency + 2));
  EXPECT_GE(mem.stats().value("mem.arb.forced_rotations"), 1u);
}

// The pre-fix behaviour stays reachable: limit 0 means unbounded CPU
// priority, documenting exactly the starvation the bound exists to prevent.
TEST(MemorySystem, CpuPriorityLimitZeroIsUnbounded) {
  MemorySystemConfig cfg = smallConfig();
  cfg.policy = ArbiterPolicy::CpuPriority;
  cfg.cpu_starvation_limit = 0;
  MemorySystem mem(cfg);
  const RequestId hht = mem.submit({0, 4, false, 0, Requester::Hht});
  sim::Cycle now = 0;
  for (int cycle = 0; cycle < 100; ++cycle) {
    const RequestId cpu =
        mem.submit({static_cast<Addr>(4 + 4 * (cycle % 64)), 4, false, 0,
                    Requester::Cpu});
    mem.tick(now++);
    mem.takeCompleted(cpu);
    EXPECT_FALSE(mem.takeCompleted(hht))
        << "limit 0 must reproduce the unbounded pre-fix arbiter";
  }
  EXPECT_EQ(mem.stats().value("mem.arb.forced_rotations"), 0u);
}

// Regression (conflict accounting): conflict_cycles counts *cycles a
// requester spent with work queued but ungranted*, not re-arbitration
// attempts. Three same-port reads at G=1, latency 1: cycle 0 grants one
// (2 left waiting -> +1), cycle 1 grants the next (1 left -> +1), cycle 2
// drains the queue. Exactly 2 — the pre-fix per-waiting-request tally said
// 3 (and diverged further as queues deepened), inflating every
// fig6/fig7-style stall attribution.
TEST(MemorySystem, ConflictCyclesCountUniqueStalledCycles) {
  MemorySystemConfig cfg = smallConfig();
  cfg.sram_latency = 1;
  cfg.grants_per_cycle = 1;
  MemorySystem mem(cfg);
  for (int i = 0; i < 3; ++i) {
    mem.submit({static_cast<Addr>(4 * i), 4, false, 0, Requester::Cpu});
  }
  sim::Cycle now = 0;
  while (!mem.idle() && now < 20) mem.tick(now++);
  EXPECT_EQ(mem.stats().value("mem.cpu.conflict_cycles"), 2u);
}

// Property test: random multi-requester schedules over every tile count and
// both policies. Invariants, independent of policy:
//   - conservation: every submitted read completes, per-requester grant
//     counters sum to mem.grants, and each equals that port's submissions;
//   - bandwidth/exclusivity: never more than grants_per_cycle kMemGrant
//     events in one cycle;
//   - bounded wait (RoundRobin only): with per-port outstanding capped at
//     4, no request waits longer than a full rotation of everyone's cap.
TEST(MemorySystem, MultiRequesterArbitrationProperties) {
  for (const std::uint32_t tiles : {1u, 2u, 4u}) {
    for (const ArbiterPolicy policy :
         {ArbiterPolicy::CpuPriority, ArbiterPolicy::RoundRobin}) {
      MemorySystemConfig cfg = smallConfig();
      cfg.num_tiles = tiles;
      cfg.policy = policy;
      cfg.grants_per_cycle = 1;
      MemorySystem mem(cfg);
      obs::TraceSink sink;
      mem.setTraceSink(&sink);

      const std::uint32_t ports = cfg.numRequesters();
      sim::Rng rng(0xA5B1 + tiles * 16 + static_cast<int>(policy));
      struct Outstanding {
        RequestId id;
        sim::Cycle submitted;
        std::uint32_t port;
      };
      std::vector<Outstanding> pending;
      std::vector<std::uint32_t> in_flight(ports, 0);
      std::vector<std::uint64_t> submitted(ports, 0);
      std::uint64_t max_wait = 0;
      sim::Cycle now = 0;

      const auto drainCompleted = [&] {
        for (std::size_t i = 0; i < pending.size();) {
          if (mem.takeCompleted(pending[i].id)) {
            max_wait = std::max<std::uint64_t>(max_wait,
                                               now - pending[i].submitted);
            --in_flight[pending[i].port];
            pending[i] = pending.back();
            pending.pop_back();
          } else {
            ++i;
          }
        }
      };

      for (int cycle = 0; cycle < 256; ++cycle) {
        for (std::uint32_t port = 0; port < ports; ++port) {
          // ~50% chance per port per cycle, capped at 4 outstanding so the
          // round-robin wait bound below is meaningful.
          if (in_flight[port] < 4 && rng.nextBool(0.5)) {
            const MemAccess access{static_cast<Addr>(4 * port), 4, false, 0,
                                   requesterRole(port),
                                   static_cast<std::uint8_t>(
                                       requesterTile(port))};
            pending.push_back({mem.submit(access), now, port});
            ++in_flight[port];
            ++submitted[port];
          }
        }
        mem.tick(now++);
        drainCompleted();
      }
      while (!mem.idle() && now < 2048) {
        mem.tick(now++);
        drainCompleted();
      }
      EXPECT_TRUE(pending.empty())
          << pending.size() << " reads never completed (tiles=" << tiles
          << ")";

      // Conservation.
      std::uint64_t total = 0;
      for (std::uint32_t port = 0; port < ports; ++port) {
        const std::uint64_t grants =
            mem.stats().value("mem." + requesterLabel(port) + ".grants");
        EXPECT_EQ(grants, submitted[port])
            << "port " << port << " tiles=" << tiles;
        total += grants;
      }
      EXPECT_EQ(mem.stats().value("mem.grants"), total);

      // Bandwidth / per-bank exclusivity: grants per cycle never exceed G.
      std::map<sim::Cycle, std::uint32_t> grants_at;
      for (const obs::TraceEvent& ev : sink.events()) {
        if (ev.kind == obs::EventKind::kMemGrant) ++grants_at[ev.cycle];
      }
      for (const auto& [cycle, count] : grants_at) {
        EXPECT_LE(count, cfg.grants_per_cycle) << "cycle " << cycle;
      }

      // Bounded wait under round-robin: a port's oldest request is granted
      // after at most everyone else's full outstanding cap drains ahead of
      // it, plus its own queue and the SRAM latency.
      if (policy == ArbiterPolicy::RoundRobin) {
        const std::uint64_t bound =
            static_cast<std::uint64_t>(4) * ports + cfg.sram_latency + 8;
        EXPECT_LE(max_wait, bound) << "tiles=" << tiles;
      }
    }
  }
}

TEST(MemorySystem, RoundRobinAlternates) {
  MemorySystemConfig cfg = smallConfig();
  cfg.grants_per_cycle = 1;
  cfg.policy = ArbiterPolicy::RoundRobin;
  MemorySystem mem(cfg);
  // Queue 2 HHT then 2 CPU; round-robin grants CPU, HHT, CPU, HHT.
  const RequestId h1 = mem.submit({0, 4, false, 0, Requester::Hht});
  const RequestId h2 = mem.submit({4, 4, false, 0, Requester::Hht});
  const RequestId c1 = mem.submit({8, 4, false, 0, Requester::Cpu});
  const RequestId c2 = mem.submit({12, 4, false, 0, Requester::Cpu});
  sim::Cycle now = 0;
  std::vector<RequestId> completion_order;
  for (int cycle = 0; cycle < 12 && completion_order.size() < 4; ++cycle) {
    mem.tick(now++);
    for (RequestId id : {h1, h2, c1, c2}) {
      if (mem.takeCompleted(id)) completion_order.push_back(id);
    }
  }
  ASSERT_EQ(completion_order.size(), 4u);
  EXPECT_EQ(completion_order[0], c1);
  EXPECT_EQ(completion_order[1], h1);
  EXPECT_EQ(completion_order[2], c2);
  EXPECT_EQ(completion_order[3], h2);
}

TEST(MemorySystem, PerRequesterFifoOrder) {
  MemorySystem mem(smallConfig());
  const RequestId a = mem.submit({0, 4, false, 0, Requester::Cpu});
  const RequestId b = mem.submit({4, 4, false, 0, Requester::Cpu});
  sim::Cycle now = 0;
  bool a_done = false;
  for (int cycle = 0; cycle < 10; ++cycle) {
    mem.tick(now++);
    if (mem.takeCompleted(b)) {
      EXPECT_TRUE(a_done) << "younger same-requester read completed first";
      break;
    }
    if (mem.takeCompleted(a)) a_done = true;
  }
  EXPECT_TRUE(a_done);
}

TEST(MemorySystem, IdleTracksOutstandingWork) {
  MemorySystem mem(smallConfig());
  EXPECT_TRUE(mem.idle());
  const RequestId id = mem.submit({0, 4, false, 0, Requester::Cpu});
  EXPECT_FALSE(mem.idle());
  sim::Cycle now = 0;
  waitFor(mem, id, now);
  EXPECT_TRUE(mem.idle());
  // Posted writes drain without any takeCompleted call.
  mem.submit({0, 4, true, 1, Requester::Cpu});
  EXPECT_FALSE(mem.idle());
  mem.tick(now++);
  EXPECT_TRUE(mem.idle());
}

/// Scripted MMIO device: not-ready for the first `stall_reads` attempts.
class StubDevice : public MmioDevice {
 public:
  MmioReadResult mmioRead(Addr offset, std::uint32_t, Requester) override {
    ++read_attempts;
    if (stall_reads > 0) {
      --stall_reads;
      return {false, 0};
    }
    return {true, 0x1000 + offset};
  }
  void mmioWrite(Addr offset, std::uint32_t, std::uint32_t value, Requester) override {
    last_write_offset = offset;
    last_write_value = value;
  }

  int stall_reads = 0;
  int read_attempts = 0;
  Addr last_write_offset = 0;
  std::uint32_t last_write_value = 0;
};

TEST(MemorySystem, MmioRoutesToDevice) {
  MemorySystemConfig cfg = smallConfig();
  MemorySystem mem(cfg);
  StubDevice dev;
  mem.attachMmioDevice(&dev);
  ASSERT_TRUE(mem.isMmio(cfg.mmio_base + 0x20));
  ASSERT_FALSE(mem.isMmio(0x20));

  mem.submit({cfg.mmio_base + 0x08, 4, true, 77, Requester::Cpu});
  sim::Cycle now = 0;
  mem.tick(now++);
  EXPECT_EQ(dev.last_write_offset, 0x08u);
  EXPECT_EQ(dev.last_write_value, 77u);

  const RequestId id = mem.submit({cfg.mmio_base + 0x40, 4, false, 0,
                                   Requester::Cpu});
  const auto [data, waited] = waitFor(mem, id, now);
  (void)waited;
  EXPECT_EQ(data, 0x1040u);
}

TEST(MemorySystem, StalledMmioReadRetriesEveryCycle) {
  MemorySystemConfig cfg = smallConfig();
  MemorySystem mem(cfg);
  StubDevice dev;
  dev.stall_reads = 3;
  mem.attachMmioDevice(&dev);
  const RequestId id = mem.submit({cfg.mmio_base, 4, false, 0, Requester::Cpu});
  sim::Cycle now = 0;
  const auto [data, waited] = waitFor(mem, id, now);
  EXPECT_EQ(data, 0x1000u);
  EXPECT_EQ(dev.read_attempts, 4);  // 3 stalls + 1 success
  EXPECT_GE(waited, 3);
}

TEST(MemorySystem, UnmappedMmioReadsZero) {
  MemorySystem mem(smallConfig());
  const RequestId id =
      mem.submit({mem.config().mmio_base, 4, false, 0, Requester::Cpu});
  sim::Cycle now = 0;
  const auto [data, waited] = waitFor(mem, id, now);
  (void)waited;
  EXPECT_EQ(data, 0u);
}

}  // namespace
}  // namespace hht::mem
