// Deterministic checkpoint/replay tests: System::checkpoint() mid-run via a
// RunObserver, restore() into a fresh System, and resume() producing results
// bit-identical to the uninterrupted run; plus rejection of snapshots that
// do not match this machine or this program.
#include <gtest/gtest.h>

#include <cstring>

#include "harness/experiment.h"
#include "sparse/reference.h"
#include "workload/synthetic.h"

namespace hht::harness {
namespace {

using sparse::CsrMatrix;
using sparse::DenseVector;
using sim::Cycle;
using sim::ErrorKind;
using sim::SimError;

/// Observer that checkpoints the running System once, at cycle `at`.
class CheckpointAt : public RunObserver {
 public:
  CheckpointAt(const isa::Program& program, Cycle at)
      : program_(&program), at_(at) {}

  void onCycle(System& sys, Cycle now) override {
    if (now == at_ && snapshot_.empty()) {
      snapshot_ = sys.checkpoint(*program_, now + 1);
      resume_at_ = now + 1;
    }
  }

  const std::vector<std::uint8_t>& snapshot() const { return snapshot_; }
  Cycle resumeAt() const { return resume_at_; }

 private:
  const isa::Program* program_;
  Cycle at_;
  Cycle resume_at_ = 0;
  std::vector<std::uint8_t> snapshot_;
};

void expectIdentical(const RunResult& a, const RunResult& b) {
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.retired, b.retired);
  EXPECT_EQ(a.cpu_wait_cycles, b.cpu_wait_cycles);
  EXPECT_EQ(a.hht_wait_cycles, b.hht_wait_cycles);
  EXPECT_EQ(a.hht_residual_busy, b.hht_residual_busy);
  ASSERT_EQ(a.y.size(), b.y.size());
  for (sim::Index i = 0; i < a.y.size(); ++i) {
    EXPECT_EQ(a.y.at(i), b.y.at(i)) << "y[" << i << "]";
  }
  EXPECT_EQ(a.stats.all(), b.stats.all());
}

/// The figure-bench workload every test below runs: HHT-assisted SpMV with
/// the scalar consumer, deterministic operands.
struct Workload {
  CsrMatrix m;
  DenseVector v;
  isa::Program program;
  kernels::SpmvLayout layout;
};

Workload prepare(System& sys, std::uint64_t seed) {
  sim::Rng rng(seed);
  Workload w;
  w.m = workload::randomCsr(rng, 24, 24, 0.4);
  w.v = workload::randomDenseVector(rng, 24);
  w.layout = loadSpmv(sys, w.m, w.v);
  w.program =
      kernels::spmvScalarHht(w.layout, sys.config().memory.mmio_base);
  return w;
}

TEST(Checkpoint, MidRunRestoreIsBitIdenticalToUninterruptedRun) {
  const SystemConfig cfg = defaultConfig();

  System uninterrupted(cfg);
  const Workload w = prepare(uninterrupted, 0xC4EC);
  const RunResult base =
      uninterrupted.run(w.program, w.layout.y, w.layout.num_rows);
  ASSERT_GT(base.cycles, 200u) << "workload too small to checkpoint mid-run";

  // Same run again, snapshotting midway through.
  System observed(cfg);
  const Workload w2 = prepare(observed, 0xC4EC);
  CheckpointAt observer(w2.program, base.cycles / 2);
  const RunResult watched = observed.run(w2.program, w2.layout.y,
                                         w2.layout.num_rows, 500'000'000,
                                         nullptr, &observer);
  expectIdentical(base, watched);  // observing must not perturb the machine
  ASSERT_FALSE(observer.snapshot().empty());

  // Fresh machine, nothing loaded: the snapshot carries all state.
  System resumed_sys(cfg);
  const Cycle start = resumed_sys.restore(observer.snapshot(), w2.program);
  EXPECT_EQ(start, observer.resumeAt());
  const RunResult resumed = resumed_sys.resume(w2.program, w2.layout.y,
                                               w2.layout.num_rows, start);
  expectIdentical(base, resumed);
  // And the result is actually correct, not just self-consistent.
  const DenseVector ref = sparse::spmvCsr(w.m, w.v);
  for (sim::Index i = 0; i < ref.size(); ++i) {
    EXPECT_EQ(resumed.y.at(i), ref.at(i));
  }
}

TEST(Checkpoint, Cycle0SnapshotReplaysTheWholeRun) {
  const SystemConfig cfg = defaultConfig();
  System sys(cfg);
  const Workload w = prepare(sys, 0xC4ED);
  // Arm the architectural state, snapshot before the first cycle.
  sys.cpu().loadProgram(w.program);
  const std::vector<std::uint8_t> snap = sys.checkpoint(w.program, 0);
  const RunResult base = sys.run(w.program, w.layout.y, w.layout.num_rows);

  System fresh(cfg);
  const Cycle start = fresh.restore(snap, w.program);
  EXPECT_EQ(start, 0u);
  const RunResult replayed =
      fresh.resume(w.program, w.layout.y, w.layout.num_rows, start);
  expectIdentical(base, replayed);
}

TEST(Checkpoint, SnapshotBytesAreDeterministic) {
  const SystemConfig cfg = defaultConfig();
  System a(cfg);
  const Workload wa = prepare(a, 0xC4EE);
  a.cpu().loadProgram(wa.program);
  System b(cfg);
  const Workload wb = prepare(b, 0xC4EE);
  b.cpu().loadProgram(wb.program);
  EXPECT_EQ(a.checkpoint(wa.program, 0), b.checkpoint(wb.program, 0));
  // Idempotent: checkpointing is read-only.
  EXPECT_EQ(a.checkpoint(wa.program, 0), a.checkpoint(wa.program, 0));
}

TEST(Checkpoint, RestoreRejectsMismatchesAndCorruption) {
  const SystemConfig cfg = defaultConfig();
  System sys(cfg);
  const Workload w = prepare(sys, 0xC4EF);
  sys.cpu().loadProgram(w.program);
  const std::vector<std::uint8_t> snap = sys.checkpoint(w.program, 0);

  const auto expectCheckpointError = [&](System& target,
                                         const std::vector<std::uint8_t>& s,
                                         const isa::Program& p) {
    try {
      target.restore(s, p);
      ADD_FAILURE() << "restore accepted a bad snapshot";
    } catch (const SimError& e) {
      EXPECT_EQ(e.kind(), ErrorKind::Checkpoint) << e.what();
    }
  };

  {  // Different machine configuration: fingerprint mismatch.
    SystemConfig other = cfg;
    other.memory.sram_latency += 1;
    System target(other);
    expectCheckpointError(target, snap, w.program);
  }
  {  // Different program identity (name + code hash).
    System target(cfg);
    const isa::Program other =
        isa::ProgramBuilder("not_the_program").ecall().build();
    expectCheckpointError(target, snap, other);
  }
  {  // Truncated payload.
    System target(cfg);
    std::vector<std::uint8_t> cut(snap.begin(), snap.end() - 8);
    expectCheckpointError(target, cut, w.program);
  }
  {  // Trailing bytes.
    System target(cfg);
    std::vector<std::uint8_t> padded = snap;
    padded.push_back(0xFF);
    expectCheckpointError(target, padded, w.program);
  }
  {  // Corrupt magic.
    System target(cfg);
    std::vector<std::uint8_t> bad = snap;
    bad[0] ^= 0x5A;
    expectCheckpointError(target, bad, w.program);
  }
}

// Forward compatibility: a snapshot written by a NEWER simulator build must
// be rejected with a structured error naming the version skew, never parsed
// with this build's layout. Regression for the version check accepting any
// version >= the magic's (it only rejected *older* snapshots, so a v4
// snapshot's bytes were misinterpreted as v3 sections).
TEST(Checkpoint, RestoreRejectsSnapshotFromNewerVersion) {
  const SystemConfig cfg = defaultConfig();
  System sys(cfg);
  const Workload w = prepare(sys, 0xC4F0);
  sys.cpu().loadProgram(w.program);
  std::vector<std::uint8_t> snap = sys.checkpoint(w.program, 0);

  // The version field sits right after the 4-byte magic.
  const std::uint32_t newer = kSnapshotVersion + 1;
  std::memcpy(snap.data() + 4, &newer, sizeof newer);

  System target(cfg);
  try {
    target.restore(snap, w.program);
    ADD_FAILURE() << "restore accepted a snapshot from a newer build";
  } catch (const SimError& e) {
    EXPECT_EQ(e.kind(), ErrorKind::Checkpoint) << e.what();
    EXPECT_NE(std::string(e.what()).find("newer"), std::string::npos)
        << "diagnostic should name the skew direction: " << e.what();
  }
}

/// Observer that checkpoints once, `after` cycles into the degraded
/// fallback loop (v4 snapshots record the mid-degraded continuation).
class CheckpointInDegraded : public RunObserver {
 public:
  CheckpointInDegraded(const isa::Program& fallback, Cycle after)
      : fallback_(&fallback), after_(after) {}

  void onCycle(System& sys, Cycle now) override {
    if (!sys.degradedActive() || !snapshot_.empty()) return;
    if (++degraded_cycles_ == after_) {
      snapshot_ = sys.checkpoint(*fallback_, now + 1);
      resume_at_ = now + 1;
    }
  }

  const std::vector<std::uint8_t>& snapshot() const { return snapshot_; }
  Cycle resumeAt() const { return resume_at_; }

 private:
  const isa::Program* fallback_;
  Cycle after_;
  Cycle degraded_cycles_ = 0;
  Cycle resume_at_ = 0;
  std::vector<std::uint8_t> snapshot_;
};

// Checkpoint-under-fault: a snapshot taken while the machine is mid-way
// through the graceful-degradation rerun restores into the degraded loop
// (injection detached, fallback program as the identity) and completes
// with the same degraded RunResult — same y, same latched fault cause —
// as the uninterrupted faulty run.
TEST(Checkpoint, MidDegradedFallbackSnapshotResumesBitIdentically) {
  SystemConfig cfg = defaultConfig();
  cfg.faults.enabled = true;
  cfg.faults.seed = 43;
  cfg.faults.fifo_corrupt_rate = 1.0;  // deterministically forces fallback

  sim::Rng rng(22);
  const CsrMatrix m = workload::randomCsr(rng, 24, 24, 0.4);
  const DenseVector v = workload::randomDenseVector(rng, 24);

  System base_sys(cfg);
  const kernels::SpmvLayout layout = loadSpmv(base_sys, m, v);
  const isa::Program program =
      kernels::spmvScalarHht(layout, cfg.memory.mmio_base);
  const isa::Program fallback = kernels::spmvScalarBaseline(layout);
  const RunResult base = base_sys.run(program, layout.y, layout.num_rows,
                                      500'000'000, &fallback);
  ASSERT_TRUE(base.degraded);

  // Same run, snapshotting 100 cycles into the fallback rerun.
  System watched_sys(cfg);
  const kernels::SpmvLayout l2 = loadSpmv(watched_sys, m, v);
  const isa::Program p2 = kernels::spmvScalarHht(l2, cfg.memory.mmio_base);
  const isa::Program f2 = kernels::spmvScalarBaseline(l2);
  CheckpointInDegraded observer(f2, 100);
  const RunResult watched = watched_sys.run(p2, l2.y, l2.num_rows,
                                            500'000'000, &f2, &observer);
  ASSERT_TRUE(watched.degraded);
  ASSERT_FALSE(observer.snapshot().empty())
      << "fallback finished before the checkpoint trigger";
  expectIdentical(base, watched);
  EXPECT_EQ(base.fault_cause, watched.fault_cause);

  // Fresh machine: restore must land inside the degraded loop and resume
  // with the fallback program as the recorded identity.
  System fresh(cfg);
  const Cycle start = fresh.restore(observer.snapshot(), f2);
  EXPECT_EQ(start, observer.resumeAt());
  EXPECT_TRUE(fresh.degradedActive());
  const RunResult resumed = fresh.resume(f2, l2.y, l2.num_rows, start);
  EXPECT_TRUE(resumed.degraded);
  EXPECT_EQ(resumed.fault_cause, base.fault_cause);
  EXPECT_EQ(resumed.fault_detail, base.fault_detail);
  expectIdentical(base, resumed);
  // And the recovered result is correct, not merely self-consistent.
  const DenseVector ref = sparse::spmvCsr(m, v);
  ASSERT_EQ(resumed.y.size(), ref.size());
  for (sim::Index i = 0; i < ref.size(); ++i) {
    EXPECT_EQ(resumed.y.at(i), ref.at(i)) << "y[" << i << "]";
  }
}

// A mid-degraded snapshot names the *fallback* as the program identity:
// restoring it against the original HHT kernel must be rejected.
TEST(Checkpoint, MidDegradedSnapshotRejectsTheOriginalProgram) {
  SystemConfig cfg = defaultConfig();
  cfg.faults.enabled = true;
  cfg.faults.seed = 43;
  cfg.faults.fifo_corrupt_rate = 1.0;

  sim::Rng rng(22);
  const CsrMatrix m = workload::randomCsr(rng, 24, 24, 0.4);
  const DenseVector v = workload::randomDenseVector(rng, 24);

  System sys(cfg);
  const kernels::SpmvLayout layout = loadSpmv(sys, m, v);
  const isa::Program program =
      kernels::spmvScalarHht(layout, cfg.memory.mmio_base);
  const isa::Program fallback = kernels::spmvScalarBaseline(layout);
  CheckpointInDegraded observer(fallback, 100);
  const RunResult r = sys.run(program, layout.y, layout.num_rows, 500'000'000,
                              &fallback, &observer);
  ASSERT_TRUE(r.degraded);
  ASSERT_FALSE(observer.snapshot().empty());

  System fresh(cfg);
  try {
    fresh.restore(observer.snapshot(), program);
    ADD_FAILURE() << "restore accepted the pre-degradation program";
  } catch (const SimError& e) {
    EXPECT_EQ(e.kind(), ErrorKind::Checkpoint) << e.what();
  }
}

}  // namespace
}  // namespace hht::harness
