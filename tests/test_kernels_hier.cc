// End-to-end test of the SMASH-style hierarchical-bitmap mode (§6): the
// HHT walks both bitmap levels in simulated memory, gathers V, and the CPU
// consumes via the VALID protocol; the result must equal reference SpMV.
#include <gtest/gtest.h>

#include "harness/experiment.h"
#include "sparse/bitvector.h"
#include "sparse/hier_bitmap.h"
#include "sparse/reference.h"
#include "workload/synthetic.h"

namespace hht {
namespace {

using harness::RunResult;
using harness::SystemConfig;
using sparse::CsrMatrix;
using sparse::DenseVector;
using sparse::HierBitmapMatrix;

struct Case {
  sim::Index rows;
  sim::Index cols;
  double sparsity;
};

class HierKernelTest : public ::testing::TestWithParam<Case> {};

TEST_P(HierKernelTest, HhtBitmapWalkMatchesReference) {
  const Case& c = GetParam();
  sim::Rng rng(0xB17 ^ (c.rows * 57 + c.cols) ^
               static_cast<std::uint64_t>(c.sparsity * 100));
  const sparse::DenseMatrix dense =
      workload::randomDense(rng, c.rows, c.cols, c.sparsity);
  const HierBitmapMatrix hb = HierBitmapMatrix::fromDense(dense);
  ASSERT_TRUE(hb.validate());
  const DenseVector v = workload::randomDenseVector(rng, c.cols);
  const DenseVector expected =
      sparse::spmvCsr(CsrMatrix::fromDense(dense), v);

  const RunResult run = harness::runHierHht(harness::defaultConfig(), hb, v);
  ASSERT_EQ(expected.size(), run.y.size());
  for (sim::Index i = 0; i < expected.size(); ++i) {
    ASSERT_EQ(expected.at(i), run.y.at(i)) << "y[" << i << "]";
  }
  EXPECT_FALSE(run.hht_residual_busy);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, HierKernelTest,
    ::testing::Values(Case{1, 1, 0.0}, Case{8, 8, 0.5}, Case{16, 16, 0.1},
                      Case{16, 16, 0.9}, Case{16, 16, 1.0}, Case{13, 29, 0.7},
                      Case{64, 64, 0.95}, Case{3, 200, 0.6}, Case{200, 3, 0.6},
                      Case{32, 32, 0.99}));

class FlatKernelTest : public ::testing::TestWithParam<Case> {};

TEST_P(FlatKernelTest, HhtFlatBitmapWalkMatchesReference) {
  const Case& c = GetParam();
  sim::Rng rng(0xF1A7 ^ (c.rows * 91 + c.cols) ^
               static_cast<std::uint64_t>(c.sparsity * 100));
  const sparse::DenseMatrix dense =
      workload::randomDense(rng, c.rows, c.cols, c.sparsity);
  const sparse::BitVectorMatrix bv = sparse::BitVectorMatrix::fromDense(dense);
  ASSERT_TRUE(bv.validate());
  const DenseVector v = workload::randomDenseVector(rng, c.cols);
  const DenseVector expected =
      sparse::spmvCsr(CsrMatrix::fromDense(dense), v);

  const harness::RunResult run =
      harness::runFlatHht(harness::defaultConfig(), bv, v);
  ASSERT_EQ(expected.size(), run.y.size());
  for (sim::Index i = 0; i < expected.size(); ++i) {
    ASSERT_EQ(expected.at(i), run.y.at(i)) << "y[" << i << "]";
  }
  EXPECT_FALSE(run.hht_residual_busy);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, FlatKernelTest,
    ::testing::Values(Case{1, 1, 0.0}, Case{8, 8, 0.5}, Case{16, 16, 0.1},
                      Case{16, 16, 0.9}, Case{16, 16, 1.0}, Case{13, 29, 0.7},
                      Case{64, 64, 0.95}, Case{3, 200, 0.6}, Case{200, 3, 0.6}));

TEST(FlatVsHier, HierSkipsEmptyRegionsAtExtremeSparsity) {
  // The level-1 bitmap lets the hier engine skip empty 64-position leaves;
  // the flat walk must fetch every occupancy word. On a near-empty matrix
  // the hier walk therefore issues fewer BE memory reads.
  sim::Rng rng(0xF1A8);
  const sparse::DenseMatrix dense = workload::randomDense(rng, 64, 64, 0.99);
  const sparse::HierBitmapMatrix hb = sparse::HierBitmapMatrix::fromDense(dense);
  const sparse::BitVectorMatrix bv = sparse::BitVectorMatrix::fromDense(dense);
  const DenseVector v = workload::randomDenseVector(rng, 64);
  const auto cfg = harness::defaultConfig();
  const auto hier = harness::runHierHht(cfg, hb, v);
  const auto flat = harness::runFlatHht(cfg, bv, v);
  EXPECT_EQ(hier.y, flat.y);
  EXPECT_LT(hier.stats.value("hht.mem_reads"), flat.stats.value("hht.mem_reads"));
}

}  // namespace
}  // namespace hht
