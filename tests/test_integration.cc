// Integration tests: miniature versions of the paper's experiments whose
// qualitative outcomes must hold (speedups, wait fractions, crossovers,
// energy break-even), plus determinism and realistic-float tolerance runs.
#include <gtest/gtest.h>

#include <cmath>

#include "energy/events.h"
#include "energy/model.h"
#include "harness/experiment.h"
#include "sparse/reference.h"
#include "workload/synthetic.h"

namespace hht {
namespace {

using harness::RunResult;
using harness::SystemConfig;

TEST(Integration, SpmvSpeedupHoldsAcrossSparsities) {
  for (double sparsity : {0.3, 0.7}) {
    sim::Rng rng(0x401 + static_cast<std::uint64_t>(sparsity * 10));
    const sparse::CsrMatrix m = workload::randomCsr(rng, 64, 64, sparsity);
    const sparse::DenseVector v = workload::randomDenseVector(rng, 64);
    const auto base =
        harness::runSpmvBaseline(harness::defaultConfig(2), m, v, true);
    const auto hht = harness::runSpmvHht(harness::defaultConfig(2), m, v, true);
    EXPECT_GT(harness::speedup(base, hht), 1.3) << "sparsity " << sparsity;
    // Fig. 6: with the ASIC HHT the CPU rarely waits.
    EXPECT_LT(hht.cpuWaitFraction(), 0.05);
  }
}

TEST(Integration, SpmspvVariantsBeatBaselineAndCrossOver) {
  const SystemConfig cfg = harness::defaultConfig(2);
  // Low sparsity: variant-2 (vectorizable stream) must beat variant-1
  // (merge-bound) — Fig. 5's left side.
  {
    sim::Rng rng(0x402);
    const sparse::CsrMatrix m = workload::randomCsr(rng, 96, 96, 0.2);
    const sparse::SparseVector v = workload::randomSparseVector(rng, 96, 0.2);
    const auto base = harness::runSpmspvBaseline(cfg, m, v);
    const auto v1 = harness::runSpmspvHht(cfg, m, v, 1);
    const auto v2 = harness::runSpmspvHht(cfg, m, v, 2);
    EXPECT_GT(harness::speedup(base, v1), 1.0);
    EXPECT_GT(harness::speedup(base, v2), harness::speedup(base, v1));
  }
  // Very high sparsity: variant-1 supplies only the few matches and wins —
  // Fig. 5's right side.
  {
    sim::Rng rng(0x403);
    const sparse::CsrMatrix m = workload::randomCsr(rng, 96, 96, 0.95);
    const sparse::SparseVector v = workload::randomSparseVector(rng, 96, 0.95);
    const auto base = harness::runSpmspvBaseline(cfg, m, v);
    const auto v1 = harness::runSpmspvHht(cfg, m, v, 1);
    const auto v2 = harness::runSpmspvHht(cfg, m, v, 2);
    EXPECT_GT(harness::speedup(base, v1), 1.0);
    EXPECT_GE(harness::speedup(base, v1), harness::speedup(base, v2));
  }
}

TEST(Integration, Variant1IdlesMoreThanVariant2) {
  // Fig. 7's headline: the CPU waits for HHT far more under variant-1.
  sim::Rng rng(0x404);
  const sparse::CsrMatrix m = workload::randomCsr(rng, 96, 96, 0.8);
  const sparse::SparseVector v = workload::randomSparseVector(rng, 96, 0.8);
  const SystemConfig cfg = harness::defaultConfig(2);
  const auto v1 = harness::runSpmspvHht(cfg, m, v, 1);
  const auto v2 = harness::runSpmspvHht(cfg, m, v, 2);
  EXPECT_GT(v1.cpuWaitFraction(), v2.cpuWaitFraction());
}

TEST(Integration, OffloadReducesDynamicInstructions) {
  sim::Rng rng(0x405);
  const sparse::CsrMatrix m = workload::randomCsr(rng, 64, 64, 0.5);
  const sparse::DenseVector v = workload::randomDenseVector(rng, 64);
  const SystemConfig cfg = harness::defaultConfig(2);
  const auto base = harness::runSpmvBaseline(cfg, m, v, false);
  const auto hht = harness::runSpmvHht(cfg, m, v, false);
  // Scalar kernels: the HHT version drops the col-load + address-gen +
  // gather-load per non-zero (3 instructions) and adds none.
  EXPECT_LE(hht.retired + 3 * m.nnz(), base.retired + 64);
}

TEST(Integration, EnergySavingPositiveOnLargeEnoughKernels) {
  sim::Rng rng(0x406);
  const sparse::CsrMatrix m = workload::randomCsr(rng, 128, 128, 0.5);
  const sparse::DenseVector v = workload::randomDenseVector(rng, 128);
  const SystemConfig cfg = harness::defaultConfig(2);
  const auto base = harness::runSpmvBaseline(cfg, m, v, true);
  const auto hht = harness::runSpmvHht(cfg, m, v, true);
  const auto cmp = energy::compareEnergy(base.cycles, hht.cycles,
                                         energy::FeatureSize::Nm16, 50.0);
  EXPECT_GT(cmp.savings_fraction, 0.10);  // paper: 19% average
}

TEST(Integration, EventEnergyAgreesWithLumpedModel) {
  // The per-event table is calibrated against the anchored P x t corner;
  // check a typical Table-1 SpMV run lands within 35% for both the
  // baseline (core power) and the HHT run (core+HHT power) at 50 MHz.
  sim::Rng rng(0x40C);
  const sparse::CsrMatrix m = workload::randomCsr(rng, 96, 96, 0.5);
  const sparse::DenseVector v = workload::randomDenseVector(rng, 96);
  harness::SystemConfig cfg = harness::defaultConfig(2);
  const auto base = harness::runSpmvBaseline(cfg, m, v, true);
  const auto hht = harness::runSpmvHht(cfg, m, v, true);

  const double base_lumped = energy::energyUj(base.cycles, 50.0, 223.0);
  const double base_event = energy::eventEnergy(base.stats).totalUj();
  EXPECT_NEAR(base_event, base_lumped, 0.35 * base_lumped);

  const double hht_lumped = energy::energyUj(hht.cycles, 50.0, 314.0);
  const double hht_event = energy::eventEnergy(hht.stats).totalUj();
  EXPECT_NEAR(hht_event, hht_lumped, 0.35 * hht_lumped);

  // The decomposition must attribute real energy to the HHT's pipeline.
  EXPECT_GT(energy::eventEnergy(hht.stats).hhtTotalUj(), 0.0);
  EXPECT_DOUBLE_EQ(energy::eventEnergy(base.stats).hhtTotalUj(), 0.0);
}

TEST(Integration, RunsAreDeterministic) {
  sim::Rng rng(0x407);
  const sparse::CsrMatrix m = workload::randomCsr(rng, 48, 48, 0.6);
  const sparse::DenseVector v = workload::randomDenseVector(rng, 48);
  const SystemConfig cfg = harness::defaultConfig(2);
  const auto a = harness::runSpmvHht(cfg, m, v, true);
  const auto b = harness::runSpmvHht(cfg, m, v, true);
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.retired, b.retired);
  EXPECT_EQ(a.cpu_wait_cycles, b.cpu_wait_cycles);
  EXPECT_EQ(a.y, b.y);
}

TEST(Integration, RealisticFloatsMatchReferenceWithinTolerance) {
  // kUniformReal values accumulate rounding differently per kernel order;
  // the simulated results must still match the reference to float accuracy.
  sim::Rng rng(0x408);
  const sparse::CsrMatrix m = sparse::CsrMatrix::fromDense(
      workload::randomDense(rng, 48, 48, 0.5, workload::ValueDist::kUniformReal));
  const sparse::DenseVector v =
      workload::randomDenseVector(rng, 48, workload::ValueDist::kUniformReal);
  const sparse::DenseVector expected = sparse::spmvCsr(m, v);
  const auto hht = harness::runSpmvHht(harness::defaultConfig(2), m, v, true);
  for (sim::Index i = 0; i < expected.size(); ++i) {
    const float scale = std::max(1.0f, std::fabs(expected.at(i)));
    EXPECT_NEAR(hht.y.at(i), expected.at(i), 1e-4f * scale) << "row " << i;
  }
}

TEST(Integration, ScalarKernelsWorkOnWidth1Hardware) {
  // Fig. 8's VL=1 column: everything must run on a scalar-only vector file.
  sim::Rng rng(0x409);
  const sparse::CsrMatrix m = workload::randomCsr(rng, 32, 32, 0.5);
  const sparse::DenseVector v = workload::randomDenseVector(rng, 32);
  const SystemConfig cfg = harness::defaultConfig(2, /*vlmax=*/1);
  const auto base = harness::runSpmvBaseline(cfg, m, v, false);
  const auto hht = harness::runSpmvHht(cfg, m, v, false);
  EXPECT_EQ(base.y, sparse::spmvCsr(m, v));
  EXPECT_EQ(hht.y, sparse::spmvCsr(m, v));
  EXPECT_GT(harness::speedup(base, hht), 1.2);
}

TEST(Integration, HhtResidualNeverBusyAfterCorrectKernels) {
  sim::Rng rng(0x40A);
  const sparse::CsrMatrix m = workload::randomCsr(rng, 40, 40, 0.7);
  const sparse::DenseVector dv = workload::randomDenseVector(rng, 40);
  const sparse::SparseVector sv = workload::randomSparseVector(rng, 40, 0.7);
  const SystemConfig cfg = harness::defaultConfig(2);
  EXPECT_FALSE(harness::runSpmvHht(cfg, m, dv, true).hht_residual_busy);
  EXPECT_FALSE(harness::runSpmvHht(cfg, m, dv, false).hht_residual_busy);
  EXPECT_FALSE(harness::runSpmspvHht(cfg, m, sv, 1).hht_residual_busy);
  EXPECT_FALSE(harness::runSpmspvHht(cfg, m, sv, 2).hht_residual_busy);
}

TEST(Integration, SuiteSparseLikeMatricesKeepTheSpeedup) {
  // §4: the Texas A&M matrices (>90% sparse) behave like the synthetic
  // sweeps. Exercise the structured stand-ins end to end.
  sim::Rng rng(0x40B);
  const SystemConfig cfg = harness::defaultConfig(2);
  const sparse::CsrMatrix banded = workload::bandedCsr(rng, 96, 2, 0.7);
  const sparse::CsrMatrix power = workload::powerLawCsr(rng, 96, 96, 12, 0.6);
  for (const sparse::CsrMatrix* m : {&banded, &power}) {
    const sparse::DenseVector v = workload::randomDenseVector(rng, m->numCols());
    const auto base = harness::runSpmvBaseline(cfg, *m, v, true);
    const auto hht = harness::runSpmvHht(cfg, *m, v, true);
    EXPECT_EQ(hht.y, sparse::spmvCsr(*m, v));
    EXPECT_GT(harness::speedup(base, hht), 1.2);
  }
}

}  // namespace
}  // namespace hht
