// Dynamic work-stealing row distribution (DESIGN.md §18): the shared
// chunk-queue MMIO device, the *ChunkQueue kernels that claim row chunks
// from it, bit-identity of the dynamic schedule to the single-tile
// reference, the per-row oracle mode, arbitration stats, snapshot v7
// round-tripping of the queue state, and byte-identity under threaded tile
// workers.
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "harness/experiment.h"
#include "mem/work_queue.h"
#include "obs/profile.h"
#include "sparse/reference.h"
#include "verify/oracle.h"
#include "workload/synthetic.h"

namespace hht::harness {
namespace {

using mem::ChunkQueueDevice;
using sim::Cycle;
using sim::ErrorKind;
using sim::SimError;

SystemConfig cqConfig(std::uint32_t num_tiles) {
  SystemConfig cfg = defaultConfig();
  cfg.memory.num_tiles = num_tiles;
  cfg.memory.work_queue_enabled = true;
  return cfg;
}

void expectSameY(const sparse::DenseVector& a, const sparse::DenseVector& b) {
  ASSERT_EQ(a.size(), b.size());
  const auto& av = a.values();
  const auto& bv = b.values();
  EXPECT_TRUE(av.empty() ||
              std::memcmp(av.data(), bv.data(),
                          av.size() * sizeof(float)) == 0);
}

/// A 4-tile-unfriendly matrix: power-law row degrees concentrate the work
/// in the leading rows.
sparse::CsrMatrix skewedMatrix(std::uint64_t seed, sim::Index n = 96) {
  sim::Rng rng(seed);
  return workload::powerLawCsr(rng, n, n, n / 2, 1.1);
}

// --- device unit tests ---

TEST(ChunkQueue, OwnQueuePopsFrontAndDrainsToSentinel) {
  ChunkQueueDevice dev(2);
  dev.seed({{{0, 4}, {4, 4}}, {{8, 8}}});
  EXPECT_FALSE(dev.empty());
  EXPECT_EQ(dev.pendingRows(), 16u);

  dev.beginCycle(0);
  auto r = dev.mmioRead(0, 4, mem::Requester::Cpu);  // tile 0's register
  ASSERT_TRUE(r.ready);
  EXPECT_EQ(r.data, (0u << 12) | 4u);

  dev.beginCycle(1);
  r = dev.mmioRead(0, 4, mem::Requester::Cpu);
  ASSERT_TRUE(r.ready);
  EXPECT_EQ(r.data, (4u << 12) | 4u);

  dev.beginCycle(2);
  r = dev.mmioRead(4, 4, mem::Requester::Cpu);  // tile 1
  ASSERT_TRUE(r.ready);
  EXPECT_EQ(r.data, (8u << 12) | 8u);

  dev.beginCycle(3);
  r = dev.mmioRead(0, 4, mem::Requester::Cpu);  // everything is drained
  ASSERT_TRUE(r.ready);
  EXPECT_EQ(r.data, 0u);
  EXPECT_TRUE(dev.empty());
  EXPECT_EQ(dev.stats().value("mem.wq.grants"), 3u);
  EXPECT_EQ(dev.stats().value("mem.wq.steals"), 0u);
}

TEST(ChunkQueue, StealTakesBackOfMostLoadedVictim) {
  ChunkQueueDevice dev(3);
  // Tile 0 empty; tile 1 has 4 pending rows, tile 2 has 12 — the thief
  // must take the BACK chunk of tile 2's deque.
  dev.seed({{}, {{0, 4}}, {{4, 4}, {8, 8}}});
  dev.beginCycle(0);
  const auto r = dev.mmioRead(0, 4, mem::Requester::Cpu);
  ASSERT_TRUE(r.ready);
  EXPECT_EQ(r.data, (8u << 12) | 8u);
  EXPECT_EQ(dev.stats().value("mem.wq.steals"), 1u);
  ASSERT_EQ(dev.claimLog().size(), 1u);
  EXPECT_EQ(dev.claimLog()[0].tile, 0u);
  EXPECT_EQ(dev.claimLog()[0].row_begin, 8u);
  EXPECT_TRUE(dev.claimLog()[0].stolen);
  // Tile 2's own next claim still pops its front.
  dev.beginCycle(1);
  const auto own = dev.mmioRead(8, 4, mem::Requester::Cpu);
  ASSERT_TRUE(own.ready);
  EXPECT_EQ(own.data, (4u << 12) | 4u);
  EXPECT_FALSE(dev.claimLog()[1].stolen);
}

TEST(ChunkQueue, ClaimBudgetDefersSecondClaimInACycle) {
  ChunkQueueDevice dev(2);  // claims_per_cycle = 1
  dev.seed({{{0, 1}}, {{1, 1}}});
  dev.beginCycle(0);
  EXPECT_TRUE(dev.mmioRead(0, 4, mem::Requester::Cpu).ready);
  const auto deferred = dev.mmioRead(4, 4, mem::Requester::Cpu);
  EXPECT_FALSE(deferred.ready);  // budget spent: retry next cycle
  EXPECT_EQ(dev.stats().value("mem.wq.conflict_cycles"), 1u);
  dev.beginCycle(1);
  const auto retried = dev.mmioRead(4, 4, mem::Requester::Cpu);
  ASSERT_TRUE(retried.ready);
  EXPECT_EQ(retried.data, (1u << 12) | 1u);
}

TEST(ChunkQueue, SeedValidatesEncodingRanges) {
  ChunkQueueDevice dev(1);
  const auto expectConfigError = [&](std::vector<std::vector<
                                         ChunkQueueDevice::Chunk>>
                                         per_tile,
                                     const char* what) {
    try {
      dev.seed(per_tile);
      ADD_FAILURE() << "seed accepted " << what;
    } catch (const SimError& e) {
      EXPECT_EQ(e.kind(), ErrorKind::Config) << what;
    }
  };
  expectConfigError({{{0, 0}}}, "a zero-row chunk");
  expectConfigError({{{0, ChunkQueueDevice::kMaxChunkRows + 1}}},
                    "a chunk exceeding the 12-bit row count");
  expectConfigError({{{ChunkQueueDevice::kMaxRowBegin + 1, 1}}},
                    "a row_begin exceeding the 20-bit field");
  expectConfigError({{}, {}}, "a deque list not matching the tile count");
}

TEST(ChunkQueue, SerializeRoundTripsAndRejectsTileMismatch) {
  ChunkQueueDevice dev(2);
  dev.seed({{{0, 4}, {4, 4}}, {{8, 8}}});
  dev.beginCycle(0);
  ASSERT_TRUE(dev.mmioRead(0, 4, mem::Requester::Cpu).ready);

  sim::StateWriter w;
  dev.serialize(w);

  ChunkQueueDevice restored(2);
  sim::StateReader r(w.data());
  restored.deserialize(r);
  EXPECT_EQ(restored.pendingRows(), dev.pendingRows());
  ASSERT_EQ(restored.claimLog().size(), 1u);
  EXPECT_EQ(restored.claimLog()[0].row_begin, 0u);
  EXPECT_EQ(restored.stats().value("mem.wq.grants"), 1u);
  // The restored queue continues exactly where the original would.
  restored.beginCycle(1);
  const auto next = restored.mmioRead(0, 4, mem::Requester::Cpu);
  ASSERT_TRUE(next.ready);
  EXPECT_EQ(next.data, (4u << 12) | 4u);

  ChunkQueueDevice wrong(3);
  sim::StateReader r2(w.data());
  try {
    wrong.deserialize(r2);
    ADD_FAILURE() << "deserialize accepted a tile-count mismatch";
  } catch (const SimError& e) {
    EXPECT_EQ(e.kind(), ErrorKind::Checkpoint);
  }
}

// --- end-to-end kernels ---

TEST(ChunkQueue, SpmvBitIdenticalToSingleTileOnSkewedMatrix) {
  const sparse::CsrMatrix m = skewedMatrix(0xD1CE);
  sim::Rng rng(0xD1CF);
  const sparse::DenseVector v = workload::randomDenseVector(rng, m.numCols());
  const RunResult single = runSpmvHht(defaultConfig(), m, v, true);
  expectSameY(sparse::spmvCsr(m, v), single.y);

  for (const bool vectorized : {false, true}) {
    for (const std::uint32_t tiles : {1u, 2u, 4u}) {
      const RunResult dyn = runSpmvHhtChunkQueue(cqConfig(tiles), tiles, m, v,
                                                 vectorized, /*chunk_rows=*/8);
      expectSameY(single.y, dyn.y);
      // Every chunk was claimed exactly once.
      const std::uint64_t chunks = (m.numRows() + 7) / 8;
      EXPECT_EQ(dyn.stats.value("mem.wq.grants"), chunks)
          << tiles << " tiles, vectorized=" << vectorized;
    }
  }
}

TEST(ChunkQueue, SkewMakesTilesStealAndUniformDoesNot) {
  sim::Rng rng(0x5EAL);
  const sparse::DenseVector v = workload::randomDenseVector(rng, 96);
  const sparse::CsrMatrix skew = skewedMatrix(0x5EA0);
  const RunResult on_skew =
      runSpmvHhtChunkQueue(cqConfig(4), 4, skew, v, true, 4);
  EXPECT_GT(on_skew.stats.value("mem.wq.steals"), 0u)
      << "a power-law matrix must drain some tile's deque early";

  // With one chunk per tile there is nothing left to steal by the time any
  // tile finishes its own work.
  const RunResult even =
      runSpmvHhtChunkQueue(cqConfig(4), 4, skew, v, true, 24);
  EXPECT_EQ(even.stats.value("mem.wq.steals"), 0u);
}

TEST(ChunkQueue, SpmspvBothVariantsBitIdentical) {
  const sparse::CsrMatrix m = skewedMatrix(0xD1D0, 64);
  sim::Rng rng(0xD1D1);
  const sparse::SparseVector v =
      workload::randomSparseVector(rng, m.numCols(), 0.4);
  for (const int variant : {1, 2}) {
    const RunResult single = runSpmspvHht(defaultConfig(), m, v, variant);
    for (const std::uint32_t tiles : {2u, 4u}) {
      const RunResult dyn =
          runSpmspvHhtChunkQueue(cqConfig(tiles), tiles, m, v, variant, 8);
      expectSameY(single.y, dyn.y);
    }
  }
  expectSameY(sparse::spmspvMerge(m, v),
              runSpmspvHhtChunkQueue(cqConfig(4), 4, m, v, 1, 8).y);
}

TEST(ChunkQueue, PerRowOracleStaysCleanOnDynamicSchedule) {
  const SystemConfig cfg = cqConfig(4);
  MultiTileSystem sys(cfg);
  const sparse::CsrMatrix m = skewedMatrix(0xD1D2);
  sim::Rng rng(0xD1D3);
  const sparse::DenseVector v = workload::randomDenseVector(rng, m.numCols());
  const kernels::SpmvLayout layout =
      loadSpmv(sys.arena(), sys.memory().sram(), m, v);
  sys.workQueue()->seed(dealRowChunks(layout.num_rows, 4, 8));

  std::vector<isa::Program> programs;
  for (std::uint32_t t = 0; t < 4; ++t) {
    programs.push_back(kernels::spmvVectorHhtChunkQueue(
        layout, sys.mmioBaseOf(t), sys.workQueueBase() + 4 * t));
  }
  // Per-row dynamic mode: expectations follow the claim log, per claimed
  // row window.
  verify::MultiTileOracle oracle(
      4, [&](std::uint32_t row_begin, std::uint32_t row_count) {
        return verify::expectedGatherStreamShard(
            m, v, {row_begin, row_begin + row_count, 0});
      });
  oracle.attach(sys);
  const RunResult r =
      sys.run(programs, layout.y, layout.num_rows, 500'000'000, &oracle);
  oracle.detach(sys);
  oracle.checkFinal(r.y, sparse::spmvCsr(m, v));
  EXPECT_FALSE(oracle.diverged()) << oracle.describe();
  std::uint64_t delivered = 0;
  for (std::uint32_t t = 0; t < 4; ++t) {
    delivered += oracle.tileOracle(t).delivered();
  }
  EXPECT_EQ(delivered, m.nnz());
}

TEST(ChunkQueue, PerRowOracleLocalizesAnInjectedDivergence) {
  // Same run, but the expectation builder lies about one row's stream —
  // the tile that claims that row (whichever it is) must latch, proving
  // the dynamic expectations really track the claim log.
  const SystemConfig cfg = cqConfig(2);
  MultiTileSystem sys(cfg);
  const sparse::CsrMatrix m = skewedMatrix(0xD1D4, 48);
  sim::Rng rng(0xD1D5);
  const sparse::DenseVector v = workload::randomDenseVector(rng, m.numCols());
  const kernels::SpmvLayout layout =
      loadSpmv(sys.arena(), sys.memory().sram(), m, v);
  sys.workQueue()->seed(dealRowChunks(layout.num_rows, 2, 8));
  std::vector<isa::Program> programs;
  for (std::uint32_t t = 0; t < 2; ++t) {
    programs.push_back(kernels::spmvVectorHhtChunkQueue(
        layout, sys.mmioBaseOf(t), sys.workQueueBase() + 4 * t));
  }
  verify::MultiTileOracle oracle(
      2, [&](std::uint32_t row_begin, std::uint32_t row_count) {
        auto events = verify::expectedGatherStreamShard(
            m, v, {row_begin, row_begin + row_count, 0});
        if (row_begin == 0 && !events.empty()) {
          events[0].bits ^= 0x00400000;  // corrupt row 0's first element
        }
        return events;
      });
  oracle.attach(sys);
  sys.run(programs, layout.y, layout.num_rows, 500'000'000, &oracle);
  oracle.detach(sys);
  EXPECT_TRUE(oracle.diverged());
}

TEST(ChunkQueue, CheckpointRestoreResumeRoundTripsQueueState) {
  const SystemConfig cfg = cqConfig(4);
  const sparse::CsrMatrix m = skewedMatrix(0xD1D6);
  sim::Rng rng(0xD1D7);
  const sparse::DenseVector v = workload::randomDenseVector(rng, m.numCols());

  struct Prepared {
    kernels::SpmvLayout layout;
    std::vector<isa::Program> programs;
  };
  const auto prepare = [&](MultiTileSystem& sys) {
    Prepared p;
    p.layout = loadSpmv(sys.arena(), sys.memory().sram(), m, v);
    sys.workQueue()->seed(dealRowChunks(p.layout.num_rows, 4, 8));
    for (std::uint32_t t = 0; t < 4; ++t) {
      p.programs.push_back(kernels::spmvVectorHhtChunkQueue(
          p.layout, sys.mmioBaseOf(t), sys.workQueueBase() + 4 * t));
    }
    return p;
  };

  MultiTileSystem uninterrupted(cfg);
  const Prepared w = prepare(uninterrupted);
  const RunResult base =
      uninterrupted.run(w.programs, w.layout.y, w.layout.num_rows);
  ASSERT_GT(base.cycles, 200u);

  class CheckpointAt : public MultiTileObserver {
   public:
    CheckpointAt(const std::vector<isa::Program>& programs, Cycle at)
        : programs_(&programs), at_(at) {}
    void onCycle(MultiTileSystem& sys, Cycle now) override {
      if (now == at_ && snapshot_.empty()) {
        snapshot_ = sys.checkpoint(*programs_, now + 1);
      }
    }
    std::vector<std::uint8_t> snapshot_;

   private:
    const std::vector<isa::Program>* programs_;
    Cycle at_;
  };

  MultiTileSystem observed(cfg);
  const Prepared w2 = prepare(observed);
  // Checkpoint mid-run, when some chunks are claimed and some pending —
  // the interesting queue state.
  CheckpointAt observer(w2.programs, base.cycles / 2);
  observed.run(w2.programs, w2.layout.y, w2.layout.num_rows, 500'000'000,
               &observer);
  ASSERT_FALSE(observer.snapshot_.empty());

  MultiTileSystem resumed_sys(cfg);
  const Prepared w3 = prepare(resumed_sys);
  const Cycle start = resumed_sys.restore(observer.snapshot_, w3.programs);
  const RunResult resumed = resumed_sys.resume(w3.programs, w3.layout.y,
                                               w3.layout.num_rows, start);
  EXPECT_EQ(base.cycles, resumed.cycles);
  EXPECT_EQ(base.retired, resumed.retired);
  EXPECT_EQ(base.stats.all(), resumed.stats.all());
  expectSameY(base.y, resumed.y);
  expectSameY(sparse::spmvCsr(m, v), resumed.y);
}

TEST(ChunkQueue, SnapshotFingerprintSeparatesQueueOnFromOff) {
  // work_queue_enabled is architectural (an extra MMIO window exists), so
  // a snapshot from a queue-enabled system must not restore into a
  // queue-less one even before any section parsing.
  const sparse::CsrMatrix m = skewedMatrix(0xD1D8, 32);
  sim::Rng rng(0xD1D9);
  const sparse::DenseVector v = workload::randomDenseVector(rng, m.numCols());

  MultiTileSystem with_wq(cqConfig(2));
  const kernels::SpmvLayout layout =
      loadSpmv(with_wq.arena(), with_wq.memory().sram(), m, v);
  with_wq.workQueue()->seed(dealRowChunks(layout.num_rows, 2, 8));
  std::vector<isa::Program> programs;
  for (std::uint32_t t = 0; t < 2; ++t) {
    programs.push_back(kernels::spmvVectorHhtChunkQueue(
        layout, with_wq.mmioBaseOf(t), with_wq.workQueueBase() + 4 * t));
  }
  const auto snap = with_wq.checkpoint(programs, 0);

  SystemConfig plain = cqConfig(2);
  plain.memory.work_queue_enabled = false;
  MultiTileSystem without_wq(plain);
  loadSpmv(without_wq.arena(), without_wq.memory().sram(), m, v);
  try {
    without_wq.restore(snap, programs);
    ADD_FAILURE() << "restore crossed the work_queue_enabled boundary";
  } catch (const SimError& e) {
    EXPECT_EQ(e.kind(), ErrorKind::Checkpoint);
  }
}

TEST(ChunkQueue, ThreadedTileWorkersAreByteIdenticalToSerial) {
  // The claim schedule is part of the architectural state, so the staged
  // submission protocol must keep it — and with it every counter and the
  // output — byte-identical when tiles tick on worker threads.
  const sparse::CsrMatrix m = skewedMatrix(0xD1DA);
  sim::Rng rng(0xD1DB);
  const sparse::DenseVector v = workload::randomDenseVector(rng, m.numCols());

  SystemConfig serial = cqConfig(4);
  serial.tile_workers = 1;
  SystemConfig threaded = cqConfig(4);
  threaded.tile_workers = 4;

  const RunResult a = runSpmvHhtChunkQueue(serial, 4, m, v, true, 8);
  const RunResult b = runSpmvHhtChunkQueue(threaded, 4, m, v, true, 8);
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.retired, b.retired);
  EXPECT_EQ(a.stats.all(), b.stats.all());
  expectSameY(a.y, b.y);
}

TEST(ChunkQueue, QueueWaitShowsUpInPerTileStallProfiles) {
  // The claim loads are WQ-window MMIO reads, so the profiler must
  // attribute their stalls to the queue_wait bucket — and the buckets must
  // still partition the horizon exactly.
  const SystemConfig cfg = cqConfig(2);
  MultiTileSystem sys(cfg);
  const sparse::CsrMatrix m = skewedMatrix(0xD1DC, 48);
  sim::Rng rng(0xD1DD);
  const sparse::DenseVector v = workload::randomDenseVector(rng, m.numCols());
  const kernels::SpmvLayout layout =
      loadSpmv(sys.arena(), sys.memory().sram(), m, v);
  sys.workQueue()->seed(dealRowChunks(layout.num_rows, 2, 4));
  std::vector<isa::Program> programs;
  for (std::uint32_t t = 0; t < 2; ++t) {
    programs.push_back(kernels::spmvScalarHhtChunkQueue(
        layout, sys.mmioBaseOf(t), sys.workQueueBase() + 4 * t));
  }
  obs::TraceSink sink0, sink1;
  sys.setTileTraceSink(0, &sink0);
  sys.setTileTraceSink(1, &sink1);
  sys.run(programs, layout.y, layout.num_rows);

  const obs::ProfileReport rep0 = obs::profile(sink0);
  const obs::ProfileReport rep1 = obs::profile(sink1);
  ASSERT_GT(rep0.horizon, 0u);
  EXPECT_EQ(rep0.horizon, rep1.horizon);
  EXPECT_EQ(rep0.componentTotal(obs::Component::kCpu), rep0.horizon);
  EXPECT_EQ(rep1.componentTotal(obs::Component::kCpu), rep1.horizon);
  // Each tile made at least one claim, and at least one of them waited on
  // the queue at some point (two tiles, one claim granted per cycle).
  const std::uint64_t wait0 =
      rep0.bucketCycles(obs::Component::kCpu, obs::kBucketQueueWait);
  const std::uint64_t wait1 =
      rep1.bucketCycles(obs::Component::kCpu, obs::kBucketQueueWait);
  EXPECT_GT(wait0 + wait1, 0u);
}

}  // namespace
}  // namespace hht::harness
