// Harness tests: System run loop, workload loaders, and report formatting.
#include <gtest/gtest.h>

#include <sstream>

#include "harness/experiment.h"
#include "harness/report.h"
#include "workload/synthetic.h"

namespace hht::harness {
namespace {

using namespace isa::reg;

TEST(System, RunsTrivialProgramToCompletion) {
  System sys(defaultConfig());
  isa::ProgramBuilder b("trivial");
  const sim::Addr y = sys.arena().allocate(8);
  b.li(a0, static_cast<std::int32_t>(y));
  b.li(t0, 5);
  b.fcvtSW(ft0, t0);
  b.fsw(ft0, a0, 0);
  b.fsw(ft0, a0, 4);
  b.ecall();
  const isa::Program p = b.build();
  const RunResult r = sys.run(p, y, 2);
  EXPECT_GT(r.cycles, 0u);
  EXPECT_EQ(r.retired, p.size());
  ASSERT_EQ(r.y.size(), 2u);
  EXPECT_EQ(r.y.at(0), 5.0f);
  EXPECT_EQ(r.y.at(1), 5.0f);
  EXPECT_FALSE(r.hht_residual_busy);
}

TEST(System, InfiniteLoopHitsMaxCycles) {
  System sys(defaultConfig());
  isa::ProgramBuilder b("spin");
  isa::Label loop = b.newLabel();
  b.bind(loop);
  b.j(loop);
  const isa::Program p = b.build();
  EXPECT_THROW(sys.run(p, 0x1000, 0, /*max_cycles=*/5000), std::runtime_error);
}

TEST(System, StatsAreMergedFromAllComponents) {
  System sys(defaultConfig());
  isa::ProgramBuilder b("stats");
  b.li(a0, 0x2000).lw(t0, a0, 0).ecall();
  const isa::Program p = b.build();
  const RunResult r = sys.run(p, 0x2000, 1);
  EXPECT_GT(r.stats.value("cpu.cycles"), 0u);
  EXPECT_GT(r.stats.value("cpu.retired"), 0u);
  EXPECT_GT(r.stats.value("mem.cpu.reads"), 0u);
}

TEST(Loaders, SpmvLayoutPlacesArraysFaithfully) {
  System sys(defaultConfig());
  sim::Rng rng(5);
  const sparse::CsrMatrix m = workload::randomCsr(rng, 10, 10, 0.5);
  const sparse::DenseVector v = workload::randomDenseVector(rng, 10);
  const kernels::SpmvLayout layout = loadSpmv(sys, m, v);

  const auto& sram = sys.memory().sram();
  EXPECT_EQ(layout.num_rows, 10u);
  EXPECT_EQ(sram.peekArray<sim::Index>(layout.rows, 11), m.rowPtr());
  EXPECT_EQ(sram.peekArray<sim::Index>(layout.cols, m.nnz()), m.cols());
  EXPECT_EQ(sram.peekArray<float>(layout.vals, m.nnz()), m.vals());
  EXPECT_EQ(sram.peekArray<float>(layout.v, 10), v.values());
  // y starts zeroed.
  for (float f : sram.peekArray<float>(layout.y, 10)) EXPECT_EQ(f, 0.0f);
}

TEST(Loaders, SpmspvLayoutPlacesVectorArrays) {
  System sys(defaultConfig());
  sim::Rng rng(6);
  const sparse::CsrMatrix m = workload::randomCsr(rng, 6, 6, 0.5);
  const sparse::SparseVector v = workload::randomSparseVector(rng, 6, 0.5);
  const kernels::SpmspvLayout layout = loadSpmspv(sys, m, v);
  EXPECT_EQ(layout.v_nnz, v.nnz());
  EXPECT_EQ(sys.memory().sram().peekArray<sim::Index>(layout.vidx, v.nnz()),
            v.indices());
}

TEST(Loaders, DimensionMismatchesThrow) {
  System sys(defaultConfig());
  sim::Rng rng(7);
  const sparse::CsrMatrix m = workload::randomCsr(rng, 4, 6, 0.5);
  const sparse::DenseVector wrong = workload::randomDenseVector(rng, 4);
  EXPECT_THROW(loadSpmv(sys, m, wrong), std::invalid_argument);
  const sparse::SparseVector wrong_sv = workload::randomSparseVector(rng, 4, 0.5);
  EXPECT_THROW(loadSpmspv(sys, m, wrong_sv), std::invalid_argument);
}

TEST(Config, DefaultTracksTable1) {
  const SystemConfig cfg = defaultConfig();
  EXPECT_EQ(cfg.vlmax, 8);
  EXPECT_EQ(cfg.hht.num_buffers, 2u);
  EXPECT_EQ(cfg.hht.buffer_len, 8u);   // BLEN = vector width (32 B buffers)
  EXPECT_EQ(cfg.timing.vec_fp, 4u);    // vector arithmetic latency
  // Width-1 configuration shrinks BLEN with the vector width.
  EXPECT_EQ(defaultConfig(2, 4).hht.buffer_len, 4u);
}

TEST(Report, TableAlignsColumns) {
  Table t({"name", "value"});
  t.addRow({"alpha", "1"});
  t.addRow({"b", "22222"});
  std::ostringstream out;
  t.print(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("| name  | value |"), std::string::npos);
  EXPECT_NE(text.find("| alpha | 1     |"), std::string::npos);
}

TEST(Report, CsvEmitsCommaSeparatedRows) {
  Table t({"a", "b"});
  t.addRow({"1", "2"});
  std::ostringstream out;
  t.printCsv(out);
  EXPECT_EQ(out.str(), "a,b\n1,2\n");
}

TEST(Report, Formatters) {
  EXPECT_EQ(fmt(1.23456, 2), "1.23");
  EXPECT_EQ(fmt(2.0, 0), "2");
  EXPECT_EQ(pct(0.1234, 1), "12.3%");
  EXPECT_EQ(bar(2.0, 4.0, 8), "####");
  EXPECT_EQ(bar(0.0, 4.0, 8), "");
  EXPECT_EQ(bar(9.0, 4.0, 8), "########");  // clamped
  EXPECT_EQ(bar(1.0, 0.0, 8), "");          // degenerate max
}

TEST(Report, SpeedupHelper) {
  RunResult base, fast;
  base.cycles = 300;
  fast.cycles = 100;
  EXPECT_DOUBLE_EQ(speedup(base, fast), 3.0);
  fast.cycles = 0;
  EXPECT_DOUBLE_EQ(speedup(base, fast), 0.0);
}

}  // namespace
}  // namespace hht::harness
