// SpMM kernel tests: the column-batched baseline and HHT kernels (CPU
// re-points V_Base and restarts the gather per B column) must reproduce
// the reference Y = M * B exactly.
#include <gtest/gtest.h>

#include "harness/experiment.h"
#include "sparse/reference.h"
#include "workload/synthetic.h"

namespace hht {
namespace {

using harness::RunResult;
using sparse::CsrMatrix;
using sparse::DenseMatrix;

struct Case {
  sim::Index rows;
  sim::Index cols;
  sim::Index k;
  double sparsity;
};

class SpmmKernelTest : public ::testing::TestWithParam<Case> {};

void expectMatches(const DenseMatrix& expected, const RunResult& run) {
  // RunResult::y holds Y column-major flattened.
  ASSERT_EQ(run.y.size(), expected.numRows() * expected.numCols());
  for (sim::Index j = 0; j < expected.numCols(); ++j) {
    for (sim::Index i = 0; i < expected.numRows(); ++i) {
      ASSERT_EQ(run.y.at(j * expected.numRows() + i), expected.at(i, j))
          << "Y(" << i << "," << j << ")";
    }
  }
}

TEST_P(SpmmKernelTest, BaselineAndHhtMatchReference) {
  const Case& c = GetParam();
  sim::Rng rng(0x3B33 + c.rows * 7 + c.k);
  const CsrMatrix m = workload::randomCsr(rng, c.rows, c.cols, c.sparsity);
  DenseMatrix b(c.cols, c.k);
  for (sim::Index i = 0; i < c.cols; ++i) {
    for (sim::Index j = 0; j < c.k; ++j) {
      b.at(i, j) = workload::drawValue(rng, workload::ValueDist::kSmallIntegers);
    }
  }
  const DenseMatrix expected = sparse::spmmCsr(m, b);

  const harness::SystemConfig cfg = harness::defaultConfig(2);
  const RunResult base = harness::runSpmmBaseline(cfg, m, b);
  expectMatches(expected, base);

  const RunResult hht = harness::runSpmmHht(cfg, m, b);
  expectMatches(expected, hht);
  EXPECT_FALSE(hht.hht_residual_busy);

  // The per-column speedup carries over to the batch.
  if (m.nnz() > 64) {
    EXPECT_GT(harness::speedup(base, hht), 1.3);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SpmmKernelTest,
    ::testing::Values(Case{4, 4, 1, 0.5}, Case{16, 16, 2, 0.5},
                      Case{16, 16, 4, 0.1}, Case{16, 16, 3, 0.9},
                      Case{24, 16, 4, 0.6}, Case{16, 24, 4, 0.6},
                      Case{32, 32, 8, 0.7}, Case{8, 8, 2, 1.0}));

TEST(Spmm, DimensionMismatchThrows) {
  sim::Rng rng(1);
  const CsrMatrix m = workload::randomCsr(rng, 4, 6, 0.5);
  const DenseMatrix wrong(4, 2);
  EXPECT_THROW(sparse::spmmCsr(m, wrong), std::invalid_argument);
  harness::System sys(harness::defaultConfig());
  EXPECT_THROW(harness::loadSpmm(sys, m, wrong), std::invalid_argument);
}

}  // namespace
}  // namespace hht
