// Strict bench CLI parser tests (benchutil::tryParse — the exit-free core
// of every fig/abl binary's parse()). Regression coverage for two silent
// wrong-experiment holes: "--jobs=0" (a typo or empty-variable expansion in
// CI, previously accepted as "serial-ish") and duplicate flags (previously
// last-one-wins, ambiguous in scripted sweeps).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "bench_util.h"

namespace hht::benchutil {
namespace {

/// Build a mutable argv from string literals (argv[0] is the program name).
struct Argv {
  explicit Argv(std::vector<std::string> args) : strings(std::move(args)) {
    strings.insert(strings.begin(), "bench");
    for (std::string& s : strings) ptrs.push_back(s.data());
  }
  int argc() const { return static_cast<int>(ptrs.size()); }
  char** argv() { return ptrs.data(); }

  std::vector<std::string> strings;
  std::vector<char*> ptrs;
};

ParseStatus tryParseArgs(std::vector<std::string> args, Options& opt,
                         std::string& error, bool with_trace = false) {
  Argv a(std::move(args));
  return tryParse(a.argc(), a.argv(), with_trace, opt, error);
}

TEST(BenchUtil, ParsesEveryFlagOnce) {
  Options opt;
  std::string error;
  ASSERT_EQ(tryParseArgs({"--csv", "--size=512", "--seed=7", "--jobs=3",
                          "--no-fastforward"},
                         opt, error),
            ParseStatus::kOk)
      << error;
  EXPECT_TRUE(opt.csv);
  EXPECT_EQ(opt.size, 512u);
  EXPECT_EQ(opt.seed, 7u);
  EXPECT_EQ(opt.jobs, 3u);
  EXPECT_FALSE(opt.fastforward);
}

TEST(BenchUtil, DefaultsSurviveEmptyCommandLine) {
  Options opt;
  std::string error;
  ASSERT_EQ(tryParseArgs({}, opt, error), ParseStatus::kOk);
  EXPECT_FALSE(opt.csv);
  EXPECT_EQ(opt.size, 0u);
  EXPECT_EQ(opt.jobs, 0u);  // 0 = all hardware threads
  EXPECT_TRUE(opt.fastforward);
}

TEST(BenchUtil, RejectsJobsZero) {
  Options opt;
  std::string error;
  EXPECT_EQ(tryParseArgs({"--jobs=0"}, opt, error), ParseStatus::kError);
  EXPECT_NE(error.find("--jobs"), std::string::npos) << error;
}

TEST(BenchUtil, RejectsDuplicateFlags) {
  Options opt;
  std::string error;
  EXPECT_EQ(tryParseArgs({"--seed=1", "--seed=2"}, opt, error),
            ParseStatus::kError);
  EXPECT_NE(error.find("duplicate"), std::string::npos) << error;
  EXPECT_NE(error.find("--seed"), std::string::npos) << error;

  error.clear();
  Options opt2;
  EXPECT_EQ(tryParseArgs({"--csv", "--csv"}, opt2, error),
            ParseStatus::kError);
  EXPECT_NE(error.find("duplicate"), std::string::npos) << error;
}

TEST(BenchUtil, RejectsUnknownArguments) {
  Options opt;
  std::string error;
  // The historic hole: a typo silently ran the wrong experiment.
  EXPECT_EQ(tryParseArgs({"--sizes=512"}, opt, error), ParseStatus::kError);
  EXPECT_NE(error.find("--sizes=512"), std::string::npos) << error;
}

TEST(BenchUtil, ParsesTimeoutAndRejectsZero) {
  Options opt;
  std::string error;
  ASSERT_EQ(tryParseArgs({"--timeout-ms=30000"}, opt, error), ParseStatus::kOk)
      << error;
  EXPECT_EQ(opt.timeout_ms, 30000u);

  // 0 would mean "no watchdog" — make the caller omit the flag instead of
  // silently disarming it.
  Options opt2;
  EXPECT_EQ(tryParseArgs({"--timeout-ms=0"}, opt2, error), ParseStatus::kError);
  EXPECT_NE(error.find("--timeout-ms"), std::string::npos) << error;

  error.clear();
  Options opt3;
  EXPECT_EQ(tryParseArgs({"--timeout-ms=1", "--timeout-ms=2"}, opt3, error),
            ParseStatus::kError);
  EXPECT_NE(error.find("duplicate"), std::string::npos) << error;
}

TEST(BenchUtil, ExtraArgsCollectUnknownsForLayeredParsers) {
  // serve_campaign-style layering: the shared parser keeps its own flags
  // strict but hands unrecognised ones back instead of erroring.
  Argv a({"--seed=9", "--tiles=3", "--timeout-ms=5", "--recover"});
  Options opt;
  std::string error;
  std::vector<std::string> extra;
  ASSERT_EQ(tryParse(a.argc(), a.argv(), false, opt, error, &extra),
            ParseStatus::kOk)
      << error;
  EXPECT_EQ(opt.seed, 9u);
  EXPECT_EQ(opt.timeout_ms, 5u);
  ASSERT_EQ(extra.size(), 2u);
  EXPECT_EQ(extra[0], "--tiles=3");
  EXPECT_EQ(extra[1], "--recover");

  // Shared-flag errors still fail even with the extra channel open.
  Argv b({"--jobs=0", "--whatever"});
  Options opt2;
  std::vector<std::string> extra2;
  EXPECT_EQ(tryParse(b.argc(), b.argv(), false, opt2, error, &extra2),
            ParseStatus::kError);
}

ParseStatus tryParseModeArgs(std::vector<std::string> args, Options& opt,
                             std::string& error) {
  Argv a(std::move(args));
  return tryParse(a.argc(), a.argv(), /*with_trace=*/false, opt, error,
                  /*extra=*/nullptr, /*with_mode=*/true);
}

TEST(BenchUtil, ParsesModeAndRepeat) {
  {
    Options opt;
    std::string error;
    ASSERT_EQ(tryParseModeArgs({"--mode=event", "--repeat=5"}, opt, error),
              ParseStatus::kOk)
        << error;
    EXPECT_EQ(opt.mode, RunMode::kEvent);
    EXPECT_EQ(opt.repeat, 5u);
  }
  {
    Options opt;
    std::string error;
    ASSERT_EQ(tryParseModeArgs({"--mode=naive"}, opt, error), ParseStatus::kOk);
    EXPECT_EQ(opt.mode, RunMode::kNaive);
    EXPECT_EQ(opt.repeat, 1u) << "--repeat default is a single sample";
  }
  {
    Options opt;
    std::string error;
    ASSERT_EQ(tryParseModeArgs({"--mode=fast"}, opt, error), ParseStatus::kOk);
    EXPECT_EQ(opt.mode, RunMode::kFast);
  }
  {  // Default: run every mode.
    Options opt;
    std::string error;
    ASSERT_EQ(tryParseModeArgs({}, opt, error), ParseStatus::kOk);
    EXPECT_EQ(opt.mode, RunMode::kAll);
  }
}

TEST(BenchUtil, ModeFlagsOnlyExistWhenWired) {
  // A bench without mode passes (fig sweeps) must reject --mode rather
  // than silently ignore it.
  Options opt;
  std::string error;
  EXPECT_EQ(tryParseArgs({"--mode=event"}, opt, error), ParseStatus::kError);
  EXPECT_NE(error.find("--mode=event"), std::string::npos) << error;
}

TEST(BenchUtil, RejectsBadModeAndRepeatZero) {
  {
    Options opt;
    std::string error;
    EXPECT_EQ(tryParseModeArgs({"--mode=turbo"}, opt, error),
              ParseStatus::kError);
    EXPECT_NE(error.find("--mode"), std::string::npos) << error;
  }
  {  // min-of-zero-samples is meaningless; make the caller omit the flag.
    Options opt;
    std::string error;
    EXPECT_EQ(tryParseModeArgs({"--repeat=0"}, opt, error),
              ParseStatus::kError);
    EXPECT_NE(error.find("--repeat"), std::string::npos) << error;
  }
  {
    Options opt;
    std::string error;
    EXPECT_EQ(tryParseModeArgs({"--repeat=2", "--repeat=3"}, opt, error),
              ParseStatus::kError);
    EXPECT_NE(error.find("duplicate"), std::string::npos) << error;
  }
}

TEST(BenchUtil, RejectsMalformedNumbers) {
  // Every numeric flag goes through the strict base-10 parser: trailing
  // garbage, signs, empty values and overflow are errors, never silent
  // truncation (strtoull would happily accept "12abc" and "-1").
  const std::vector<std::string> bad = {
      "--size=12abc", "--seed=-3", "--jobs=", "--repeat=+2",
      "--size=99999999999999999999999999"};
  for (const std::string& arg : bad) {
    Options opt;
    std::string error;
    EXPECT_EQ(tryParseModeArgs({arg}, opt, error), ParseStatus::kError)
        << arg << " was accepted";
    EXPECT_FALSE(error.empty()) << arg;
  }
}

TEST(BenchUtil, HelpShortCircuits) {
  Options opt;
  std::string error;
  EXPECT_EQ(tryParseArgs({"--help"}, opt, error), ParseStatus::kHelp);
  EXPECT_TRUE(error.empty());
}

TEST(BenchUtil, TraceFlagsOnlyExistWhenWired) {
  {  // Bench without a traced run: --trace is an unknown argument.
    Options opt;
    std::string error;
    EXPECT_EQ(tryParseArgs({"--trace=out.json"}, opt, error,
                           /*with_trace=*/false),
              ParseStatus::kError);
  }
  {  // Wired: accepted, and an empty file name is rejected.
    Options opt;
    std::string error;
    EXPECT_EQ(tryParseArgs({"--trace=out.json"}, opt, error,
                           /*with_trace=*/true),
              ParseStatus::kOk);
    EXPECT_EQ(opt.trace_file, "out.json");

    Options opt2;
    EXPECT_EQ(tryParseArgs({"--trace="}, opt2, error, /*with_trace=*/true),
              ParseStatus::kError);
    EXPECT_NE(error.find("--trace"), std::string::npos) << error;
  }
  {  // Bad category list.
    Options opt;
    std::string error;
    EXPECT_EQ(tryParseArgs({"--trace-categories=cpu,bogus"}, opt, error,
                           /*with_trace=*/true),
              ParseStatus::kError);
    EXPECT_NE(error.find("bogus"), std::string::npos) << error;
  }
}

}  // namespace
}  // namespace hht::benchutil
