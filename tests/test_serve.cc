// Serving-layer tests (DESIGN.md §14): tile-health quarantine policy,
// admission control and load shedding, deadline handling, fault-driven
// retry/degrade, crash recovery via SRVS snapshots, and the determinism
// contract (results independent of the host thread count).
#include <gtest/gtest.h>

#include "harness/experiment.h"
#include "serve/server.h"
#include "sparse/reference.h"

namespace hht::serve {
namespace {

using sim::Cycle;
using sim::ErrorKind;
using sim::SimError;

TileHealth::Config healthConfig() {
  TileHealth::Config h;
  h.window = 4;
  h.min_samples = 2;
  h.fault_rate_threshold = 0.5;
  h.probe_period = 2;
  return h;
}

// ---------------------------------------------------------------------------
// TileHealth unit tests
// ---------------------------------------------------------------------------

TEST(TileHealth, QuarantinesOnlyWithEnoughSamples) {
  TileHealth th(2, healthConfig());
  th.record(0, true);  // 1/1 faulty, but min_samples is 2
  EXPECT_FALSE(th.quarantined(0));
  th.record(0, true);  // 2/2 faulty >= 50%
  EXPECT_TRUE(th.quarantined(0));
  EXPECT_FALSE(th.quarantined(1));  // neighbour unaffected
  EXPECT_EQ(th.quarantineEvents(), 1u);
  EXPECT_EQ(th.quarantinedCount(), 1u);
}

TEST(TileHealth, HealthyHistoryAbsorbsOneFault) {
  TileHealth th(1, healthConfig());
  th.record(0, false);
  th.record(0, false);
  th.record(0, false);
  th.record(0, true);  // 1/4 < 50%
  EXPECT_FALSE(th.quarantined(0));
  th.record(0, true);  // window slides: 2/4 >= 50%
  EXPECT_TRUE(th.quarantined(0));
}

TEST(TileHealth, ProbeCadenceAndReinstatement) {
  TileHealth th(1, healthConfig());
  th.record(0, true);
  th.record(0, true);
  ASSERT_TRUE(th.quarantined(0));
  // Cooldown = probe_period batches before the first probe.
  EXPECT_FALSE(th.probeDue(0));
  th.tickBatch();
  EXPECT_FALSE(th.probeDue(0));
  th.tickBatch();
  EXPECT_TRUE(th.probeDue(0));
  // A failed probe restarts the cooldown.
  th.probeFailed(0);
  EXPECT_FALSE(th.probeDue(0));
  th.tickBatch();
  th.tickBatch();
  ASSERT_TRUE(th.probeDue(0));
  // A passing probe reinstates with a cleared window: the old fault burst
  // cannot instantly re-quarantine.
  th.reinstate(0);
  EXPECT_FALSE(th.quarantined(0));
  EXPECT_EQ(th.windowSamples(0), 0u);
  EXPECT_EQ(th.reinstateEvents(), 1u);
  th.record(0, false);
  th.record(0, false);
  th.record(0, true);  // 1/3 < 50%: one blip does not re-quarantine
  EXPECT_FALSE(th.quarantined(0));
}

TEST(TileHealth, SerializeRoundTripsAndRejectsShapeSkew) {
  TileHealth a(3, healthConfig());
  a.record(0, true);
  a.record(0, true);
  a.record(2, false);
  a.tickBatch();
  sim::StateWriter w;
  a.serialize(w);

  TileHealth b(3, healthConfig());
  sim::StateReader r(w.data());
  b.deserialize(r);
  for (std::uint32_t t = 0; t < 3; ++t) {
    EXPECT_EQ(a.quarantined(t), b.quarantined(t)) << "tile " << t;
    EXPECT_EQ(a.windowSamples(t), b.windowSamples(t)) << "tile " << t;
    EXPECT_EQ(a.windowFaults(t), b.windowFaults(t)) << "tile " << t;
  }
  EXPECT_EQ(a.quarantineEvents(), b.quarantineEvents());

  TileHealth wrong(2, healthConfig());
  sim::StateReader r2(w.data());
  EXPECT_THROW(wrong.deserialize(r2), SimError);
}

// ---------------------------------------------------------------------------
// Request model
// ---------------------------------------------------------------------------

TEST(RequestStream, IsDeterministicAndOrdered) {
  StreamConfig sc;
  sc.count = 16;
  sc.size = 20;
  sc.deadline_slack = 1'000'000;
  const std::vector<Request> a = randomRequestStream(99, sc);
  const std::vector<Request> b = randomRequestStream(99, sc);
  ASSERT_EQ(a.size(), 16u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].id, b[i].id);
    EXPECT_EQ(a[i].seed, b[i].seed);
    EXPECT_EQ(a[i].kind, b[i].kind);
    EXPECT_EQ(a[i].arrival_cycle, b[i].arrival_cycle);
    EXPECT_EQ(a[i].deadline_cycle, a[i].arrival_cycle + sc.deadline_slack);
    if (i > 0) {
      EXPECT_GT(a[i].arrival_cycle, a[i - 1].arrival_cycle);
    }
  }
  // A different seed produces a different stream.
  const std::vector<Request> c = randomRequestStream(100, sc);
  bool any_diff = false;
  for (std::size_t i = 0; i < a.size(); ++i) any_diff |= a[i].seed != c[i].seed;
  EXPECT_TRUE(any_diff);
}

TEST(RequestModel, MaterializeAndHashAreStable) {
  Request r;
  r.seed = 0xABCD;
  r.size = 18;
  const Operands a = materialize(r);
  const Operands b = materialize(r);
  EXPECT_EQ(a.m.nnz(), b.m.nnz());
  const sparse::DenseVector ya = sparse::spmvCsr(a.m, a.v);
  const sparse::DenseVector yb = sparse::spmvCsr(b.m, b.v);
  EXPECT_EQ(hashVector(ya), hashVector(yb));
  EXPECT_NE(hashVector(ya), 0u);
}

// ---------------------------------------------------------------------------
// Server
// ---------------------------------------------------------------------------

ServerConfig serverConfig(std::uint32_t tiles = 2) {
  ServerConfig cfg;
  cfg.system = harness::defaultConfig();
  cfg.num_tiles = tiles;
  cfg.jobs = 1;
  cfg.health = healthConfig();
  cfg.backoff_base = 64;
  return cfg;
}

std::vector<Request> smallStream(std::uint32_t count, Cycle deadline_slack = 0,
                                 Cycle mean_gap = 1'000) {
  StreamConfig sc;
  sc.count = count;
  sc.size = 16;
  sc.mean_gap = mean_gap;
  sc.deadline_slack = deadline_slack;
  return randomRequestStream(0x5EED, sc);
}

void submitAll(Server& s, const std::vector<Request>& reqs) {
  for (const Request& r : reqs) s.submit(r);
}

using CompletionKey =
    std::tuple<std::uint64_t, std::uint8_t, std::uint32_t, std::int32_t,
               std::uint64_t, std::uint64_t>;

std::vector<CompletionKey> keys(const Server& s) {
  std::vector<CompletionKey> out;
  for (const Completion& c : s.completions()) {
    out.emplace_back(c.id, static_cast<std::uint8_t>(c.outcome), c.attempts,
                     c.tile, c.y_hash, c.latency_cycles);
  }
  return out;
}

TEST(Server, FaultFreeStreamServesEverythingOk) {
  const ServerConfig cfg = serverConfig();
  Server s(cfg);
  const std::vector<Request> reqs = smallStream(6);
  submitAll(s, reqs);
  EXPECT_FALSE(s.idle());
  s.drain();
  EXPECT_TRUE(s.idle());
  ASSERT_EQ(s.completions().size(), reqs.size());
  for (const Completion& c : s.completions()) {
    EXPECT_EQ(c.outcome, Outcome::kOk) << "request " << c.id;
    EXPECT_EQ(c.attempts, 1u);
    EXPECT_NE(c.y_hash, 0u);
    EXPECT_GT(c.latency_cycles, 0u);
  }
  // The served hash is the reference hash — the acceptance check is
  // comparing against the right value, not just self-agreeing.
  const Request& r0 = reqs.front();
  const Operands ops = materialize(r0);
  const sparse::DenseVector ref = r0.kind == Kind::kSpmv
                                      ? sparse::spmvCsr(ops.m, ops.v)
                                      : sparse::spmspvMerge(ops.m, ops.sv);
  EXPECT_EQ(s.completions().front().y_hash, hashVector(ref));
  const ServerStats st = s.stats();
  EXPECT_EQ(st.ok, reqs.size());
  EXPECT_DOUBLE_EQ(st.goodput, 1.0);
  EXPECT_GT(st.p50, 0u);
  EXPECT_GE(st.p99, st.p50);
}

TEST(Server, StructuralRejectionsAreImmediateAndLogged) {
  Server s(serverConfig());
  Request ok;
  ok.id = 1;
  ok.seed = 7;
  EXPECT_FALSE(s.submit(ok).has_value());

  Request dup = ok;  // same id
  const auto r1 = s.submit(dup);
  ASSERT_TRUE(r1.has_value());
  EXPECT_NE(r1->reason.find("duplicate"), std::string::npos);

  Request zero = ok;
  zero.id = 2;
  zero.size = 0;
  EXPECT_TRUE(s.submit(zero).has_value());

  Request bad_deadline = ok;
  bad_deadline.id = 3;
  bad_deadline.arrival_cycle = 10;
  bad_deadline.deadline_cycle = 10;
  EXPECT_TRUE(s.submit(bad_deadline).has_value());

  // Every rejection is also a terminal kRejected completion.
  EXPECT_EQ(s.rejections().size(), 3u);
  EXPECT_EQ(s.completions().size(), 3u);
  for (const Completion& c : s.completions()) {
    EXPECT_EQ(c.outcome, Outcome::kRejected);
  }
  s.drain();
  EXPECT_EQ(s.completions().size(), 4u);  // the valid one completed
}

TEST(Server, QueueOverflowShedsWithStructuredReason) {
  ServerConfig cfg = serverConfig(1);
  cfg.queue_capacity = 2;
  Server s(cfg);
  // Five simultaneous arrivals into a capacity-2 queue on one tile: the
  // first two are admitted, the rest shed at admission time.
  for (std::uint64_t id = 1; id <= 5; ++id) {
    Request r;
    r.id = id;
    r.seed = id * 17;
    r.size = 16;
    EXPECT_FALSE(s.submit(r).has_value());  // future admission, not immediate
  }
  s.drain();
  const ServerStats st = s.stats();
  EXPECT_EQ(st.ok + st.rejected, 5u);
  EXPECT_EQ(st.rejected, 3u);
  for (const Rejected& rej : s.rejections()) {
    EXPECT_NE(rej.reason.find("queue full"), std::string::npos);
  }
}

TEST(Server, DeadlinesExpireQueuedWork) {
  ServerConfig cfg = serverConfig(1);
  Server s(cfg);
  // Two requests arrive together; one tile. The second runs a batch later —
  // by then its (tiny) deadline has passed, so it is shed at dispatch.
  Request a;
  a.id = 1;
  a.seed = 3;
  a.size = 16;
  a.deadline_cycle = 0;  // none
  Request b = a;
  b.id = 2;
  b.seed = 4;
  b.deadline_cycle = 10;
  ASSERT_FALSE(s.submit(a).has_value());
  ASSERT_FALSE(s.submit(b).has_value());
  s.drain();
  ASSERT_EQ(s.completions().size(), 2u);
  const ServerStats st = s.stats();
  EXPECT_EQ(st.ok, 1u);
  EXPECT_EQ(st.deadline_expired, 1u);
}

ServerConfig faultyServerConfig(std::uint32_t tiles, double rate,
                                std::uint64_t seed = 11) {
  ServerConfig cfg = serverConfig(tiles);
  cfg.system.faults.enabled = true;
  cfg.system.faults.seed = seed;
  cfg.system.faults.sram_read_flip_rate = rate;
  cfg.system.faults.drop_rate = rate;
  cfg.system.faults.fifo_corrupt_rate = rate / 2.0;
  return cfg;
}

TEST(Server, FaultsAreRetriedAndNeverServedWrong) {
  const ServerConfig cfg = faultyServerConfig(2, 5e-4);
  Server s(cfg);
  const std::vector<Request> reqs = smallStream(10);
  submitAll(s, reqs);
  s.drain();
  EXPECT_TRUE(s.idle());
  ASSERT_EQ(s.completions().size(), reqs.size());
  // Every served completion's hash must equal the reference hash — the
  // server never returns an unverified y (no silent wrongs by design).
  for (const Completion& c : s.completions()) {
    if (!served(c.outcome)) continue;
    const Request* req = nullptr;
    for (const Request& r : reqs) {
      if (r.id == c.id) req = &r;
    }
    ASSERT_NE(req, nullptr);
    const Operands ops = materialize(*req);
    const sparse::DenseVector ref = req->kind == Kind::kSpmv
                                        ? sparse::spmvCsr(ops.m, ops.v)
                                        : sparse::spmspvMerge(ops.m, ops.sv);
    EXPECT_EQ(c.y_hash, hashVector(ref)) << "request " << c.id;
  }
}

TEST(Server, PermanentFaultsQuarantineAndDegrade) {
  // fifo_corrupt_rate = 1 makes every HHT attempt fault on every tile:
  // tiles quarantine, probes keep failing, and every request must finish
  // on the degraded CPU path (the no-healthy-tile last resort).
  ServerConfig cfg = faultyServerConfig(2, 0.0);
  cfg.system.faults.fifo_corrupt_rate = 1.0;
  Server s(cfg);
  const std::vector<Request> reqs = smallStream(6);
  submitAll(s, reqs);
  s.drain();
  EXPECT_TRUE(s.idle()) << "degraded fallback must guarantee liveness";
  ASSERT_EQ(s.completions().size(), reqs.size());
  for (const Completion& c : s.completions()) {
    EXPECT_TRUE(c.outcome == Outcome::kDegraded || c.outcome == Outcome::kLate)
        << "request " << c.id << ": " << outcomeName(c.outcome);
    EXPECT_NE(c.y_hash, 0u);
  }
  const ServerStats st = s.stats();
  EXPECT_GT(st.hht_faults, 0u);
  EXPECT_GT(st.retries, 0u);
  EXPECT_EQ(st.quarantined_now, cfg.num_tiles);
  EXPECT_GT(st.quarantine_events, 0u);
  EXPECT_GT(st.probes, 0u);           // probes ran...
  EXPECT_EQ(st.reinstate_events, 0u); // ...and (rightly) kept failing
}

TEST(Server, BudgetExhaustionWithoutFallbackIsAStructuredFailure) {
  ServerConfig cfg = faultyServerConfig(2, 0.0);
  cfg.system.faults.fifo_corrupt_rate = 1.0;
  cfg.degraded_fallback = false;
  cfg.retry_budget = 1;
  Server s(cfg);
  const std::vector<Request> reqs = smallStream(4);
  submitAll(s, reqs);
  s.drain();
  EXPECT_TRUE(s.idle()) << "bounded retries must guarantee termination";
  ASSERT_EQ(s.completions().size(), reqs.size());
  for (const Completion& c : s.completions()) {
    EXPECT_EQ(c.outcome, Outcome::kFailed) << "request " << c.id;
    EXPECT_EQ(c.attempts, cfg.retry_budget + 1);
    EXPECT_FALSE(c.error.empty());
  }
}

TEST(Server, ResultsAreIndependentOfHostJobs) {
  const std::vector<Request> reqs = smallStream(8);
  ServerConfig cfg = faultyServerConfig(3, 1e-3);
  cfg.jobs = 1;
  Server serial(cfg);
  submitAll(serial, reqs);
  serial.drain();
  cfg.jobs = 4;
  Server parallel(cfg);
  submitAll(parallel, reqs);
  parallel.drain();
  EXPECT_EQ(keys(serial), keys(parallel));
  EXPECT_EQ(serial.checkpoint(), parallel.checkpoint());
}

TEST(Server, CrashRecoveryReplaysBitIdentically) {
  const std::vector<Request> reqs = smallStream(8);
  const ServerConfig cfg = faultyServerConfig(2, 1e-3);

  Server uninterrupted(cfg);
  submitAll(uninterrupted, reqs);
  uninterrupted.drain();
  ASSERT_EQ(uninterrupted.completions().size(), reqs.size());

  // Crash after 3 batches, recover from a batch-2 snapshot: the recovered
  // server re-executes batch 3 deterministically and must converge on the
  // exact same completion log.
  std::vector<std::uint8_t> snapshot;
  {
    Server crashing(cfg);
    submitAll(crashing, reqs);
    crashing.drain(2);
    snapshot = crashing.checkpoint();
    crashing.drain(1);  // work past the checkpoint is lost in the "crash"
  }
  Server recovered(cfg);
  recovered.restore(snapshot);
  EXPECT_EQ(recovered.batches(), 2u);
  recovered.drain();
  EXPECT_EQ(keys(recovered), keys(uninterrupted));
  EXPECT_EQ(recovered.stats().final_cycle, uninterrupted.stats().final_cycle);
}

TEST(Server, SnapshotIsDeterministicAndGuarded) {
  const std::vector<Request> reqs = smallStream(4);
  const ServerConfig cfg = serverConfig();
  Server a(cfg);
  submitAll(a, reqs);
  a.drain(1);
  Server b(cfg);
  submitAll(b, reqs);
  b.drain(1);
  const std::vector<std::uint8_t> snap = a.checkpoint();
  EXPECT_EQ(snap, b.checkpoint());

  // A server with different scheduling parameters must refuse the snapshot.
  ServerConfig other = cfg;
  other.retry_budget += 1;
  Server wrong(other);
  try {
    wrong.restore(snap);
    ADD_FAILURE() << "restore accepted a foreign snapshot";
  } catch (const SimError& e) {
    EXPECT_EQ(e.kind(), ErrorKind::Checkpoint) << e.what();
  }

  // Truncation is a structured checkpoint error, never a crash.
  std::vector<std::uint8_t> cut(snap.begin(), snap.begin() + snap.size() / 2);
  Server target(cfg);
  try {
    target.restore(cut);
    ADD_FAILURE() << "restore accepted a truncated snapshot";
  } catch (const SimError& e) {
    EXPECT_EQ(e.kind(), ErrorKind::Checkpoint) << e.what();
  }
}

TEST(Server, ConfigValidationRejectsBrokenKnobs) {
  ServerConfig cfg = serverConfig();
  cfg.num_tiles = 0;
  EXPECT_THROW(Server s(cfg), SimError);
  cfg = serverConfig();
  cfg.queue_capacity = 0;
  EXPECT_THROW(Server s(cfg), SimError);
  cfg = serverConfig();
  cfg.backoff_base = 0;
  EXPECT_THROW(Server s(cfg), SimError);
  cfg = serverConfig();
  cfg.health.min_samples = 9;  // > window
  EXPECT_THROW(Server s(cfg), SimError);
}

}  // namespace
}  // namespace hht::serve
