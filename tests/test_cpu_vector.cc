// Vector-unit tests: RVV-style semantics (vsetvli clamping, unit-stride and
// indexed loads, FMA lanes, ordered reduction) and vector timing.
#include <gtest/gtest.h>

#include <bit>

#include "cpu/core.h"
#include "isa/program.h"

namespace hht::cpu {
namespace {

using namespace isa::reg;
using isa::Label;
using isa::Program;
using isa::ProgramBuilder;

class VectorCoreTest : public ::testing::TestWithParam<int> {
 protected:
  VectorCoreTest() : mem_(memConfig()), core_(TimingConfig{}, mem_, vlmax()) {}

  int vlmax() const { return GetParam(); }

  static mem::MemorySystemConfig memConfig() {
    mem::MemorySystemConfig cfg;
    cfg.sram_bytes = 4096;
    return cfg;
  }

  std::uint64_t run(const Program& program) {
    program_ = program;
    core_.loadProgram(program_);
    sim::Cycle now = 0;
    while (!core_.halted() && now < 100000) {
      core_.tick(now);
      mem_.tick(now);
      ++now;
    }
    EXPECT_TRUE(core_.halted());
    while (!mem_.idle()) mem_.tick(now++);
    return core_.stats().value("cpu.cycles");
  }

  float lane(isa::Reg vr, int i) const {
    return std::bit_cast<float>(core_.getVLane(vr, i));
  }

  Program program_;
  mem::MemorySystem mem_;
  Core core_;
};

TEST_P(VectorCoreTest, VsetvliClampsToVlmax) {
  ProgramBuilder b("vsetvli");
  b.li(t0, 100);
  b.vsetvli(t1, t0);
  b.li(t2, 2);
  b.vsetvli(t3, t2);
  b.ecall();
  run(b.build());
  EXPECT_EQ(core_.getX(t1), static_cast<std::uint32_t>(vlmax()));
  EXPECT_EQ(core_.getX(t3), std::min(2u, static_cast<std::uint32_t>(vlmax())));
}

TEST_P(VectorCoreTest, UnitStrideLoadStoreRoundTrip) {
  // Write vlmax floats at 0x100 via scalar stores, vector-load them,
  // vector-store to 0x200, and check memory.
  ProgramBuilder b("vls");
  b.li(a0, 0x100).li(a1, 0x200);
  for (int i = 0; i < vlmax(); ++i) {
    b.li(t0, 100 + i);
    b.fcvtSW(ft0, t0);
    b.fsw(ft0, a0, i * 4);
  }
  b.li(t1, vlmax());
  b.vsetvli(t2, t1);
  b.vle32(v1, a0);
  b.vse32(v1, a1);
  b.ecall();
  run(b.build());
  for (int i = 0; i < vlmax(); ++i) {
    EXPECT_EQ(mem_.sram().peekValue<float>(0x200 + 4 * i),
              static_cast<float>(100 + i));
  }
}

TEST_P(VectorCoreTest, IndexedGatherUsesByteOffsets) {
  ProgramBuilder b("gather");
  b.li(a0, 0x100);
  // v[0..7] = 10,20,...  stored as floats.
  for (int i = 0; i < 8; ++i) {
    b.li(t0, 10 * (i + 1));
    b.fcvtSW(ft0, t0);
    b.fsw(ft0, a0, i * 4);
  }
  // Gather in reverse order: byte offsets (vlmax-1-i)*4 built via scalar
  // stores of the index vector then a vle32.
  b.li(a1, 0x200);
  for (int i = 0; i < vlmax(); ++i) {
    b.li(t0, (vlmax() - 1 - i) * 4);
    b.sw(t0, a1, i * 4);
  }
  b.li(t1, vlmax());
  b.vsetvli(t2, t1);
  b.vle32(v1, a1);        // byte-offset indices
  b.vluxei32(v2, a0, v1);
  b.ecall();
  run(b.build());
  for (int i = 0; i < vlmax(); ++i) {
    EXPECT_EQ(lane(v2, i), static_cast<float>(10 * (vlmax() - i)));
  }
}

TEST_P(VectorCoreTest, VfmaccAccumulatesLanewise) {
  ProgramBuilder b("vfmacc");
  b.li(t0, vlmax());
  b.vsetvli(t1, t0);
  b.vmvVI(v0, 0);
  b.li(t2, 3);
  b.fcvtSW(ft0, t2);
  b.vfmvSF(v1, ft0);      // lane 0 = 3.0
  b.vmvVX(v2, t2);        // all lanes = int 3 (raw bits)
  // Use scalar-built float lanes instead: fill v3/v4 via memory.
  b.li(a0, 0x100);
  for (int i = 0; i < vlmax(); ++i) {
    b.li(t3, i + 1);
    b.fcvtSW(ft1, t3);
    b.fsw(ft1, a0, i * 4);
  }
  b.vle32(v3, a0);        // 1..vl
  b.vle32(v4, a0);
  b.vfmaccVV(v0, v3, v4); // v0 = (i+1)^2
  b.vfmaccVV(v0, v3, v4); // v0 = 2*(i+1)^2
  b.ecall();
  run(b.build());
  for (int i = 0; i < vlmax(); ++i) {
    EXPECT_EQ(lane(v0, i), 2.0f * (i + 1) * (i + 1));
  }
}

TEST_P(VectorCoreTest, VfredosumIsOrderedWithSeed) {
  ProgramBuilder b("vfred");
  b.li(a0, 0x100);
  for (int i = 0; i < vlmax(); ++i) {
    b.li(t0, i + 1);
    b.fcvtSW(ft0, t0);
    b.fsw(ft0, a0, i * 4);
  }
  b.li(t1, vlmax());
  b.vsetvli(t2, t1);
  b.vle32(v1, a0);
  b.li(t3, 100);
  b.fcvtSW(ft1, t3);
  b.vfmvSF(v2, ft1);        // seed 100
  b.vfredosum(v3, v1, v2);
  b.vfmvFS(fa0, v3);
  b.ecall();
  run(b.build());
  float expected = 100.0f;
  for (int i = 0; i < vlmax(); ++i) expected += static_cast<float>(i + 1);
  EXPECT_EQ(core_.getF(fa0), expected);
}

TEST_P(VectorCoreTest, PartialVlLeavesTailLanesUntouched) {
  if (vlmax() < 2) GTEST_SKIP() << "needs at least 2 lanes";
  ProgramBuilder b("tail");
  b.li(t0, vlmax());
  b.vsetvli(t1, t0);
  b.li(t2, 7);
  b.vmvVX(v1, t2);          // all lanes = 7
  b.li(t3, 1);
  b.vsetvli(t4, t3);        // vl = 1
  b.li(t5, 9);
  b.vmvVX(v1, t5);          // only lane 0 overwritten
  b.ecall();
  run(b.build());
  EXPECT_EQ(core_.getVLane(v1, 0), 9u);
  EXPECT_EQ(core_.getVLane(v1, 1), 7u);
}

TEST_P(VectorCoreTest, IntegerVectorOps) {
  ProgramBuilder b("vint");
  b.li(t0, vlmax());
  b.vsetvli(t1, t0);
  b.li(t2, 6);
  b.vmvVX(v1, t2);
  b.li(t3, 5);
  b.vmvVX(v2, t3);
  b.vaddVV(v3, v1, v2);     // 11
  b.vmulVV(v4, v1, v2);     // 30
  b.vsllVI(v5, v1, 2);      // 24
  b.vandVV(v6, v1, v2);     // 6 & 5 = 4
  b.ecall();
  run(b.build());
  for (int i = 0; i < vlmax(); ++i) {
    EXPECT_EQ(core_.getVLane(v3, i), 11u);
    EXPECT_EQ(core_.getVLane(v4, i), 30u);
    EXPECT_EQ(core_.getVLane(v5, i), 24u);
    EXPECT_EQ(core_.getVLane(v6, i), 4u);
  }
}

TEST_P(VectorCoreTest, ZeroVlVectorLoadIsCheapNoOp) {
  ProgramBuilder b("vl0");
  b.li(t0, 0);
  b.vsetvli(t1, t0);        // vl = 0
  b.li(a0, 0x100);
  b.vle32(v1, a0);          // transfers nothing
  b.ecall();
  const std::uint64_t cycles = run(b.build());
  EXPECT_EQ(core_.getX(t1), 0u);
  EXPECT_LT(cycles, 10u);
}

INSTANTIATE_TEST_SUITE_P(Widths, VectorCoreTest, ::testing::Values(1, 4, 8));

TEST(VectorTiming, GatherIsSlowerThanUnitStride) {
  mem::MemorySystemConfig mcfg;
  mcfg.sram_bytes = 4096;

  const auto time = [&](bool gather) {
    mem::MemorySystem mem(mcfg);
    Core core(TimingConfig{}, mem, 8);
    ProgramBuilder b("t");
    b.li(a0, 0x100).li(a1, 0x200);
    for (int i = 0; i < 8; ++i) {
      b.li(t0, i * 4);
      b.sw(t0, a1, i * 4);  // identity byte-offset index vector
    }
    b.li(t1, 8);
    b.vsetvli(t2, t1);
    b.vle32(v1, a1);
    for (int rep = 0; rep < 20; ++rep) {
      if (gather) {
        b.vluxei32(v2, a0, v1);
      } else {
        b.vle32(v2, a0);
      }
    }
    b.ecall();
    const Program p = b.build();
    core.loadProgram(p);
    sim::Cycle now = 0;
    while (!core.halted() && now < 100000) {
      core.tick(now);
      mem.tick(now);
      ++now;
    }
    return core.stats().value("cpu.cycles");
  };

  const std::uint64_t unit = time(false);
  const std::uint64_t gathered = time(true);
  // The paper's premise: indexed gathers serialise into element accesses
  // and are substantially slower than unit-stride loads of the same data.
  EXPECT_GT(gathered, unit + 20 * 5);
}

}  // namespace
}  // namespace hht::cpu
