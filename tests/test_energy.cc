// Energy/area model tests: the synthesis anchors from §5.5 and the scaling
// rules documented in DESIGN.md substitution #2.
#include <gtest/gtest.h>

#include "energy/events.h"
#include "energy/model.h"

namespace hht::energy {
namespace {

TEST(Model, AnchorCornerMatchesPaperExactly) {
  const SynthesisEstimate est = synthesisEstimate(FeatureSize::Nm16, 50.0);
  EXPECT_DOUBLE_EQ(est.core_uW, 223.0);
  EXPECT_DOUBLE_EQ(est.core_hht_uW, 314.0);
  EXPECT_NEAR(est.hhtAreaFraction(), 0.389, 0.0005);
  EXPECT_NEAR(est.hhtPowerUw(), 91.0, 1e-9);
}

TEST(Model, AreaBreakdownSumsToHhtArea) {
  const SynthesisEstimate est = synthesisEstimate(FeatureSize::Nm16, 50.0);
  double sum = 0.0;
  for (const AreaComponent& c : hhtAreaBreakdown()) {
    EXPECT_GT(c.um2_16nm, 0.0) << c.name;
    sum += c.um2_16nm;
  }
  EXPECT_DOUBLE_EQ(sum, est.hht_area_um2);
}

TEST(Model, PowerScalesWithClock) {
  for (FeatureSize f : {FeatureSize::Nm28, FeatureSize::Nm16, FeatureSize::Nm7}) {
    const double p10 = synthesisEstimate(f, 10.0).core_hht_uW;
    const double p50 = synthesisEstimate(f, 50.0).core_hht_uW;
    const double p100 = synthesisEstimate(f, 100.0).core_hht_uW;
    EXPECT_LT(p10, p50);
    EXPECT_LT(p50, p100);
    // Dynamic component linear in f: p100 - p50 == 50/40 * (p50 - p10).
    EXPECT_NEAR(p100 - p50, (p50 - p10) * 50.0 / 40.0, 1e-6);
  }
}

TEST(Model, NewerNodesAreSmallerAndLowerDynamicPower) {
  const auto n28 = synthesisEstimate(FeatureSize::Nm28, 50.0);
  const auto n16 = synthesisEstimate(FeatureSize::Nm16, 50.0);
  const auto n7 = synthesisEstimate(FeatureSize::Nm7, 50.0);
  EXPECT_GT(n28.ibex_area_um2, n16.ibex_area_um2);
  EXPECT_GT(n16.ibex_area_um2, n7.ibex_area_um2);
  EXPECT_GT(n28.core_uW, n16.core_uW);
  EXPECT_GT(n16.core_uW, n7.core_uW);
  // The area *ratio* is process-independent.
  EXPECT_NEAR(n28.hhtAreaFraction(), n7.hhtAreaFraction(), 1e-12);
}

TEST(Model, InvalidClockThrows) {
  EXPECT_THROW(synthesisEstimate(FeatureSize::Nm16, 0.0), std::invalid_argument);
  EXPECT_THROW(synthesisEstimate(FeatureSize::Nm16, -5.0), std::invalid_argument);
}

TEST(Model, EnergyMath) {
  // 50e6 cycles at 50 MHz = 1 s; at 223 uW that is 223 uJ.
  EXPECT_NEAR(energyUj(50'000'000, 50.0, 223.0), 223.0, 1e-9);
  EXPECT_DOUBLE_EQ(energyUj(0, 50.0, 223.0), 0.0);
}

TEST(Model, CompareEnergyReproducesThePapersComputation) {
  // Speedup 1.73 at the anchor corner: saving = 1 - (314/223)/1.73 = 18.6%.
  const EnergyComparison cmp =
      compareEnergy(173'000, 100'000, FeatureSize::Nm16, 50.0);
  EXPECT_NEAR(cmp.savings_fraction, 1.0 - (314.0 / 223.0) / 1.73, 1e-9);
  EXPECT_NEAR(cmp.savings_fraction, 0.186, 0.001);
}

TEST(Model, BreakEvenSpeedupIsPowerRatio) {
  // Below speedup 314/223 ~ 1.408 the HHT costs energy.
  const EnergyComparison at_even =
      compareEnergy(1408, 1000, FeatureSize::Nm16, 50.0);
  EXPECT_NEAR(at_even.savings_fraction, 0.0, 1e-3);
  const EnergyComparison below =
      compareEnergy(1200, 1000, FeatureSize::Nm16, 50.0);
  EXPECT_LT(below.savings_fraction, 0.0);
}

TEST(Events, BreakdownTracksCounters) {
  sim::StatSet stats;
  stats.counter("cpu.cycles") = 1000;
  stats.counter("cpu.retired") = 600;
  stats.counter("mem.cpu.reads") = 200;
  stats.counter("mem.cpu.writes") = 50;
  stats.counter("mem.cpu.mmio_requests") = 80;
  stats.counter("hht.active_cycles") = 900;
  stats.counter("hht.mem_reads") = 400;
  stats.counter("hht.merge.comparisons") = 300;
  stats.counter("hht.elements_delivered") = 80;

  const EventEnergyTable t;
  const EnergyBreakdown b = eventEnergy(stats, t);
  EXPECT_NEAR(b.cpu_clock_uj, 1000 * t.cpu_cycle_base * 1e-6, 1e-12);
  EXPECT_NEAR(b.hht_compare_uj, 300 * t.hht_comparison * 1e-6, 1e-12);
  EXPECT_GT(b.cpuTotalUj(), 0.0);
  EXPECT_GT(b.hhtTotalUj(), 0.0);
  EXPECT_NEAR(b.totalUj(), b.cpuTotalUj() + b.hhtTotalUj(), 1e-12);
}

TEST(Events, ZeroStatsZeroEnergy) {
  sim::StatSet empty;
  const EnergyBreakdown b = eventEnergy(empty);
  EXPECT_DOUBLE_EQ(b.totalUj(), 0.0);
}

TEST(Events, MoreEventsMoreEnergy) {
  sim::StatSet a, b2;
  a.counter("cpu.cycles") = 100;
  b2.counter("cpu.cycles") = 200;
  EXPECT_LT(eventEnergy(a).totalUj(), eventEnergy(b2).totalUj());
}

TEST(Model, FeatureSizeNames) {
  EXPECT_STREQ(featureSizeName(FeatureSize::Nm28), "28nm");
  EXPECT_STREQ(featureSizeName(FeatureSize::Nm16), "16nm");
  EXPECT_STREQ(featureSizeName(FeatureSize::Nm7), "7nm");
}

}  // namespace
}  // namespace hht::energy
