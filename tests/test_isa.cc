// ISA-layer tests: program builder and label resolution, trace-word
// encoding round-trips across every opcode, and disassembly.
#include <gtest/gtest.h>

#include <fstream>

#include "isa/encoding.h"
#include "isa/program.h"
#include "sim/rng.h"

namespace hht::isa {
namespace {

using namespace reg;

TEST(Builder, BackwardAndForwardLabels) {
  ProgramBuilder b("labels");
  Label start = b.newLabel();
  Label end = b.newLabel();
  b.bind(start);            // pc 0
  b.addi(t0, t0, 1);        // 0
  b.beq(t0, t1, end);       // 1 -> forward
  b.j(start);               // 2 -> backward
  b.bind(end);
  b.ecall();                // 3
  const Program p = b.build();
  EXPECT_EQ(p.at(1).imm, 3);
  EXPECT_EQ(p.at(2).imm, 0);
}

TEST(Builder, UnboundLabelThrows) {
  ProgramBuilder b("bad");
  Label l = b.newLabel();
  b.j(l);
  EXPECT_THROW(b.build(), AssemblerError);
}

TEST(Builder, DoubleBindThrows) {
  ProgramBuilder b("bad");
  Label l = b.newLabel();
  b.bind(l);
  EXPECT_THROW(b.bind(l), AssemblerError);
}

TEST(Builder, BranchToForeignLabelThrows) {
  ProgramBuilder b("bad");
  EXPECT_THROW(b.beq(t0, t1, Label{7}), AssemblerError);
}

TEST(Builder, LiSmallValuesAreOneInstruction) {
  ProgramBuilder b("li");
  b.li(t0, 0);
  b.li(t1, 2047);
  b.li(t2, -2048);
  const Program p = b.build();
  ASSERT_EQ(p.size(), 3u);
  for (const Instr& in : p.code()) EXPECT_EQ(in.op, Opcode::ADDI);
}

TEST(Builder, LiLargeValuesExpandToLuiAddi) {
  ProgramBuilder b("li");
  b.li(t0, 0x12345678);
  const Program p = b.build();
  ASSERT_EQ(p.size(), 2u);
  EXPECT_EQ(p.at(0).op, Opcode::LUI);
  EXPECT_EQ(p.at(1).op, Opcode::ADDI);
  // The expansion must reconstruct the value: lui part + addi part.
  EXPECT_EQ(p.at(0).imm + p.at(1).imm, 0x12345678);
}

TEST(Builder, LiNegativeAndAddressLikeValues) {
  for (std::int32_t v : {-1, -123456, 0x7FFFFFFF,
                         static_cast<std::int32_t>(0xF0000040u),
                         static_cast<std::int32_t>(0x80000000u)}) {
    ProgramBuilder b("li");
    b.li(t0, v);
    const Program p = b.build();
    std::uint32_t acc = 0;  // wrap-around sum, as the adder would
    for (const Instr& in : p.code()) acc += static_cast<std::uint32_t>(in.imm);
    EXPECT_EQ(static_cast<std::int32_t>(acc), v) << std::hex << v;
  }
}

TEST(Builder, RegisterRangeChecked) {
  ProgramBuilder b("bad");
  EXPECT_THROW(b.add(32, 0, 0), AssemblerError);
}

TEST(Encoding, RoundTripsEveryOpcode) {
  sim::Rng rng(0xE2C);
  for (int op = 0; op < kNumOpcodes; ++op) {
    for (int trial = 0; trial < 8; ++trial) {
      Instr in;
      in.op = static_cast<Opcode>(op);
      in.rd = static_cast<Reg>(rng.nextBelow(kNumXRegs));
      in.rs1 = static_cast<Reg>(rng.nextBelow(kNumXRegs));
      in.rs2 = static_cast<Reg>(rng.nextBelow(kNumXRegs));
      in.rs3 = static_cast<Reg>(rng.nextBelow(kNumXRegs));
      in.imm = static_cast<std::int32_t>(rng.next64());
      ASSERT_EQ(decode(encode(in)), in) << mnemonic(in.op);
    }
  }
}

TEST(Encoding, BadOpcodeByteThrows) {
  const std::uint64_t word = static_cast<std::uint64_t>(kNumOpcodes) << 56;
  EXPECT_THROW(decode(word), EncodingError);
}

TEST(Encoding, ProgramRoundTrip) {
  ProgramBuilder b("rt");
  Label l = b.newLabel();
  b.bind(l);
  b.lw(t0, a0, 8).fmadd(fs0, ft1, ft2, fs0).bne(t0, zero, l).ecall();
  const Program p = b.build();
  const auto words = encodeProgram(p);
  const Program q = decodeProgram("rt", words);
  EXPECT_EQ(p.code(), q.code());
}

TEST(Opcodes, ClassPredicatesAreConsistent) {
  EXPECT_TRUE(isMemory(Opcode::LW));
  EXPECT_TRUE(isMemory(Opcode::FSW));
  EXPECT_TRUE(isMemory(Opcode::VLUXEI32));
  EXPECT_FALSE(isMemory(Opcode::ADD));
  EXPECT_TRUE(isVector(Opcode::VSETVLI));
  EXPECT_TRUE(isVector(Opcode::VFMACC_VV));
  EXPECT_FALSE(isVector(Opcode::FMADD_S));
  EXPECT_TRUE(isBranch(Opcode::BGEU));
  EXPECT_TRUE(isControlFlow(Opcode::JALR));
  EXPECT_FALSE(isControlFlow(Opcode::ECALL));
}

TEST(Disasm, RendersRepresentativeForms) {
  EXPECT_EQ(disassemble({Opcode::ADDI, t0, t1, 0, 0, 4}), "addi x5, x6, 4");
  EXPECT_EQ(disassemble({Opcode::LW, t0, a0, 0, 0, 8}), "lw x5, 8(x10)");
  EXPECT_EQ(disassemble({Opcode::SW, 0, a0, t0, 0, -4}), "sw x5, -4(x10)");
  EXPECT_EQ(disassemble({Opcode::BEQ, 0, t0, t1, 0, 12}), "beq x5, x6, @12");
  EXPECT_EQ(disassemble({Opcode::FLW, ft1, a0, 0, 0, 0}), "flw f1, 0(x10)");
  EXPECT_EQ(disassemble({Opcode::FMADD_S, fs0, ft1, ft2, fs0, 0}),
            "fmadd.s f8, f1, f2, f8");
  EXPECT_EQ(disassemble({Opcode::VLE32, v2, a1, 0, 0, 0}), "vle32.v v2, (x11)");
  EXPECT_EQ(disassemble({Opcode::VLUXEI32, v2, a3, v1, 0, 0}),
            "vluxei32.v v2, (x13), v1");
  EXPECT_EQ(disassemble({Opcode::ECALL, 0, 0, 0, 0, 0}), "ecall");
}

TEST(Disasm, ListingIncludesNameAndAddresses) {
  ProgramBuilder b("demo");
  b.nop().ecall();
  const std::string listing = b.build().listing();
  EXPECT_NE(listing.find("demo"), std::string::npos);
  EXPECT_NE(listing.find("0:"), std::string::npos);
  EXPECT_NE(listing.find("1:"), std::string::npos);
}

TEST(ProgramFile, SaveLoadRoundTrip) {
  ProgramBuilder b("roundtrip_kernel");
  Label l = b.newLabel();
  b.li(t0, 100);
  b.bind(l);
  b.addi(t0, t0, -1);
  b.flw(ft1, a0, 8);
  b.fmadd(fs0, ft1, ft1, fs0);
  b.bnez(t0, l);
  b.ecall();
  const Program p = b.build();
  const std::string path = ::testing::TempDir() + "/hht_prog_test.hhtp";
  saveProgramFile(path, p);
  const Program q = loadProgramFile(path);
  EXPECT_EQ(q.name(), "roundtrip_kernel");
  EXPECT_EQ(q.code(), p.code());
}

TEST(ProgramFile, RejectsCorruptImages) {
  EXPECT_THROW(loadProgramFile("/nonexistent/x.hhtp"), EncodingError);
  const std::string path = ::testing::TempDir() + "/hht_bad.hhtp";
  {
    std::ofstream out(path, std::ios::binary);
    out << "NOPE garbage";
  }
  EXPECT_THROW(loadProgramFile(path), EncodingError);
  {
    // Right magic, truncated body.
    std::ofstream out(path, std::ios::binary);
    out << "HHTP";
  }
  EXPECT_THROW(loadProgramFile(path), EncodingError);
}

TEST(Opcodes, MnemonicTableIsTotal) {
  for (int op = 0; op < kNumOpcodes; ++op) {
    EXPECT_STRNE(mnemonic(static_cast<Opcode>(op)), "<bad>");
  }
}

}  // namespace
}  // namespace hht::isa
