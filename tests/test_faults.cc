// Fault layer tests: config validation, MMIO protocol misuse, structured
// watchdog errors, the HHT's architectural fault detection (FAULT/CAUSE
// MMRs), ECC recovery, machine checks, and graceful degradation.
#include <gtest/gtest.h>

#include <memory>

#include "core/hht.h"
#include "harness/experiment.h"
#include "mem/layout.h"
#include "sparse/reference.h"
#include "workload/synthetic.h"

namespace hht {
namespace {

using namespace isa::reg;
using core::Hht;
using core::HhtConfig;
using core::Mode;
using harness::RunResult;
using harness::System;
using harness::SystemConfig;
using harness::defaultConfig;
using sim::ErrorKind;
using sim::FaultCause;
using sim::SimError;
using sparse::CsrMatrix;
using sparse::DenseVector;
using sparse::SparseVector;

std::int32_t bits(sim::Addr a) { return static_cast<std::int32_t>(a); }

/// Run `fn`, which must throw SimError; return the error for inspection.
template <typename Fn>
SimError capture(Fn&& fn) {
  try {
    fn();
  } catch (const SimError& e) {
    return e;
  }
  ADD_FAILURE() << "expected a SimError";
  return SimError(ErrorKind::Config, "test", "missing");
}

void expectSameY(const DenseVector& got, const DenseVector& want) {
  ASSERT_EQ(got.size(), want.size());
  for (sim::Index i = 0; i < want.size(); ++i) {
    EXPECT_EQ(got.at(i), want.at(i)) << "y[" << i << "]";
  }
}

// ---------------------------------------------------------------------------
// Configuration validation (SimError kind Config)
// ---------------------------------------------------------------------------

TEST(ConfigValidation, FaultRatesMustBeProbabilities) {
  sim::FaultConfig fc;
  fc.sram_read_flip_rate = 1.5;
  EXPECT_EQ(capture([&] { fc.validate(); }).kind(), ErrorKind::Config);
  fc.sram_read_flip_rate = -0.1;
  EXPECT_THROW(fc.validate(), SimError);
}

TEST(ConfigValidation, EnabledRatesNeedNonzeroCycleCosts) {
  sim::FaultConfig fc;
  fc.enabled = true;
  fc.delay_rate = 0.5;
  fc.delay_cycles = 0;
  EXPECT_EQ(capture([&] { fc.validate(); }).kind(), ErrorKind::Config);
  fc.delay_cycles = 16;
  fc.drop_rate = 0.5;
  fc.drop_penalty_cycles = 0;
  EXPECT_THROW(fc.validate(), SimError);
}

TEST(ConfigValidation, SystemCtorRejectsBrokenConfigs) {
  {
    SystemConfig cfg = defaultConfig();
    cfg.vlmax = 0;
    const SimError e = capture([&] { System sys(cfg); });
    EXPECT_EQ(e.kind(), ErrorKind::Config);
    EXPECT_EQ(e.component(), "system");
  }
  {
    SystemConfig cfg = defaultConfig();
    cfg.hht.num_buffers = 0;
    EXPECT_EQ(capture([&] { System sys(cfg); }).component(), "hht");
  }
  {
    SystemConfig cfg = defaultConfig();
    cfg.memory.grants_per_cycle = 0;
    EXPECT_EQ(capture([&] { System sys(cfg); }).component(), "mem");
  }
  {
    SystemConfig cfg = defaultConfig();
    cfg.memory.prefetch_enabled = true;  // requires cpu_cache_enabled
    EXPECT_EQ(capture([&] { System sys(cfg); }).kind(), ErrorKind::Config);
  }
  {
    SystemConfig cfg = defaultConfig();
    cfg.faults.mmr_glitch_rate = 2.0;
    EXPECT_EQ(capture([&] { System sys(cfg); }).component(), "faults");
  }
}

// ---------------------------------------------------------------------------
// MMIO wiring and access validation (kinds Mmio / Memory)
// ---------------------------------------------------------------------------

TEST(MmioAttach, SecondDeviceAndNullDeviceRejected) {
  mem::MemorySystemConfig mc;
  mem::MemorySystem ms(mc);
  Hht first{HhtConfig{}, ms};
  Hht second{HhtConfig{}, ms};
  ms.attachMmioDevice(&first);
  EXPECT_EQ(capture([&] { ms.attachMmioDevice(&second); }).kind(),
            ErrorKind::Mmio);
  mem::MemorySystem fresh(mc);
  EXPECT_EQ(capture([&] { fresh.attachMmioDevice(nullptr); }).kind(),
            ErrorKind::Mmio);
}

TEST(SubmitValidation, MalformedAccessesThrowAtSubmit) {
  mem::MemorySystemConfig mc;
  mem::MemorySystem ms(mc);
  const auto kindOf = [&](mem::MemAccess a) {
    return capture([&] { ms.submit(a); }).kind();
  };
  // Unsupported size.
  EXPECT_EQ(kindOf({.addr = 0x1000, .size = 3}), ErrorKind::Memory);
  // Misaligned for its size.
  EXPECT_EQ(kindOf({.addr = 0x1002, .size = 4}), ErrorKind::Memory);
  // Past the end of SRAM.
  EXPECT_EQ(kindOf({.addr = static_cast<sim::Addr>(mc.sram_bytes), .size = 4}),
            ErrorKind::Memory);
  // MMIO access crossing the end of the device window.
  EXPECT_EQ(kindOf({.addr = mc.mmio_base + mc.mmio_size - 2, .size = 4}),
            ErrorKind::Memory);
  // Error message names the requester for triage.
  const SimError e =
      capture([&] { ms.submit({.addr = 0x1001, .size = 4,
                               .requester = mem::Requester::Hht}); });
  EXPECT_EQ(e.component(), "hht");
}

// ---------------------------------------------------------------------------
// Direct-device fault harness (no CPU)
// ---------------------------------------------------------------------------

class FaultHarness {
 public:
  explicit FaultHarness(sim::FaultConfig fc = {})
      : mem_(memConfig()), hht_(HhtConfig{}, mem_), arena_(0x1000, 0x7E000) {
    mem_.attachMmioDevice(&hht_);
    if (fc.enabled) {
      injector_ = std::make_unique<sim::FaultInjector>(fc);
      mem_.setFaultInjector(injector_.get());
      hht_.setFaultInjector(injector_.get());
    }
  }

  static mem::MemorySystemConfig memConfig() {
    mem::MemorySystemConfig cfg;
    cfg.sram_bytes = 1u << 19;
    return cfg;
  }

  void write(sim::Addr offset, std::uint32_t value) {
    hht_.mmioWrite(offset, 4, value, mem::Requester::Cpu);
  }
  std::uint32_t readNow(sim::Addr offset) {
    const mem::MmioReadResult r = hht_.mmioRead(offset, 4, mem::Requester::Cpu);
    EXPECT_TRUE(r.ready) << "expected a non-blocking MMR at " << offset;
    return r.data;
  }

  void tickOnce() {
    hht_.tick(now_);
    mem_.tick(now_);
    ++now_;
  }

  /// Tick until the device latches a fault (or the limit expires).
  bool tickUntilFault(int limit = 100000) {
    for (int i = 0; i < limit && !hht_.faultRaised(); ++i) tickOnce();
    return hht_.faultRaised();
  }

  /// Place a random n x n CSR matrix + dense vector and program a gather.
  void programSpmv(sim::Index n, double sparsity, std::uint64_t seed) {
    sim::Rng rng(seed);
    m_ = workload::randomCsr(rng, n, n, sparsity);
    vec_ = workload::randomDenseVector(rng, n);
    rows_ = arena_.place<sim::Index>(mem_.sram(), m_.rowPtr());
    cols_ = arena_.place<sim::Index>(mem_.sram(), m_.cols());
    v_ = arena_.place<float>(mem_.sram(), vec_.data());
    write(core::mmr::kMNumRows, m_.numRows());
    write(core::mmr::kMRowsBase, rows_);
    write(core::mmr::kMColsBase, cols_);
    write(core::mmr::kVBase, v_);
    write(core::mmr::kElementSize, 4);
    write(core::mmr::kMode, static_cast<std::uint32_t>(Mode::SpmvGather));
  }

  mem::MemorySystem& mem() { return mem_; }
  Hht& hht() { return hht_; }
  const CsrMatrix& matrix() const { return m_; }
  sim::Addr vBase() const { return v_; }

 private:
  mem::MemorySystem mem_;
  Hht hht_;
  mem::Arena arena_;
  std::unique_ptr<sim::FaultInjector> injector_;
  sim::Cycle now_ = 0;
  CsrMatrix m_;
  DenseVector vec_;
  sim::Addr rows_ = 0, cols_ = 0, v_ = 0;
};

TEST(HhtMmio, WrongRequesterIsRejected) {
  FaultHarness h;
  EXPECT_EQ(capture([&] {
              h.hht().mmioRead(core::mmr::kStatus, 4, mem::Requester::Hht);
            }).kind(),
            ErrorKind::Mmio);
  EXPECT_EQ(capture([&] {
              h.hht().mmioWrite(core::mmr::kMNumRows, 4, 1,
                                mem::Requester::Hht);
            }).kind(),
            ErrorKind::Mmio);
}

TEST(HhtFaultMmrs, BadProgramLatchesAndClears) {
  FaultHarness h;
  h.programSpmv(8, 0.0, 0xF1);
  h.write(core::mmr::kElementSize, 8);  // BE pipelines are 32-bit
  h.write(core::mmr::kStart, 1);
  EXPECT_EQ(h.readNow(core::mmr::kFault), 1u);
  EXPECT_EQ(h.readNow(core::mmr::kCause),
            static_cast<std::uint32_t>(FaultCause::BadProgram));
  EXPECT_NE(h.hht().faultDetail().find("ELEMENT_SIZE"), std::string::npos);
  // A faulted device halts: ticking changes nothing.
  for (int i = 0; i < 10; ++i) h.tickOnce();
  EXPECT_EQ(h.readNow(core::mmr::kFault), 1u);
  // FAULT_CLEAR re-arms.
  h.write(core::mmr::kFaultClear, 1);
  EXPECT_EQ(h.readNow(core::mmr::kFault), 0u);
  EXPECT_EQ(h.readNow(core::mmr::kCause),
            static_cast<std::uint32_t>(FaultCause::None));
}

TEST(HhtFaultMmrs, RowPointerArrayOutsideSramIsBadProgram) {
  FaultHarness h;
  h.programSpmv(8, 0.0, 0xF2);
  h.write(core::mmr::kMRowsBase, (1u << 19) - 8);  // 9 words needed
  h.write(core::mmr::kStart, 1);
  EXPECT_EQ(h.hht().faultCause(), FaultCause::BadProgram);
}

TEST(HhtFaultMmrs, BitmapWithoutNumColsIsBadProgram) {
  FaultHarness h;
  h.write(core::mmr::kMode, static_cast<std::uint32_t>(Mode::FlatBitmap));
  h.write(core::mmr::kNumCols, 0);
  h.write(core::mmr::kStart, 1);
  EXPECT_EQ(h.hht().faultCause(), FaultCause::BadProgram);
}

TEST(HhtFaultMmrs, MmrGlitchFailsParityCheckAtStart) {
  sim::FaultConfig fc;
  fc.enabled = true;
  fc.seed = 7;
  fc.mmr_glitch_rate = 1.0;  // every latched config write is glitched
  FaultHarness h(fc);
  h.programSpmv(8, 0.5, 0xF3);
  h.write(core::mmr::kStart, 1);  // command pulse, itself not glitchable
  EXPECT_EQ(h.hht().faultCause(), FaultCause::MmrParity);
}

TEST(HhtFaultMmrs, MNnzExtentViolationIsMalformedMeta) {
  FaultHarness h;
  h.programSpmv(8, 0.0, 0xF4);  // dense: rows[1] = 8 > cap
  h.write(core::mmr::kMNnz, 1);
  h.write(core::mmr::kStart, 1);
  ASSERT_TRUE(h.tickUntilFault());
  EXPECT_EQ(h.hht().faultCause(), FaultCause::MalformedMeta);
}

TEST(HhtFaultMmrs, VLenExtentViolationIsAddrOutOfBounds) {
  FaultHarness h;
  h.programSpmv(8, 0.0, 0xF5);  // dense: column indices reach 7
  h.write(core::mmr::kVLen, 1);
  h.write(core::mmr::kStart, 1);
  ASSERT_TRUE(h.tickUntilFault());
  EXPECT_EQ(h.hht().faultCause(), FaultCause::AddrOutOfBounds);
}

TEST(HhtFaultMmrs, GatherAddressOutsideSramIsAddrOutOfBounds) {
  FaultHarness h;
  h.programSpmv(8, 0.0, 0xF6);
  // v[] parked on the last SRAM word: any column index >= 1 walks off.
  h.write(core::mmr::kVBase, (1u << 19) - 4);
  h.write(core::mmr::kStart, 1);
  ASSERT_TRUE(h.tickUntilFault());
  EXPECT_EQ(h.hht().faultCause(), FaultCause::AddrOutOfBounds);
}

TEST(HhtFaultMmrs, FifoCorruptionIsCaughtAtPop) {
  sim::FaultConfig fc;
  fc.enabled = true;
  fc.seed = 11;
  fc.fifo_corrupt_rate = 1.0;
  FaultHarness h(fc);
  h.programSpmv(8, 0.0, 0xF7);
  h.write(core::mmr::kStart, 1);
  // Wait for the first element, pop it: the parity check fires on delivery.
  std::uint32_t popped = 0;
  for (int i = 0; i < 100000; ++i) {
    const mem::MmioReadResult r =
        h.hht().mmioRead(core::mmr::kBufData, 4, mem::Requester::Cpu);
    if (r.ready) {
      popped = r.data;
      break;
    }
    h.tickOnce();
  }
  (void)popped;  // corrupt word is delivered, but FAULT is already visible
  EXPECT_EQ(h.readNow(core::mmr::kFault), 1u);
  EXPECT_EQ(h.hht().faultCause(), FaultCause::FifoParity);
}

// ---------------------------------------------------------------------------
// Watchdog and max_cycles (kind Watchdog)
// ---------------------------------------------------------------------------

TEST(Watchdog, MaxCyclesIsAStructuredError) {
  System sys(defaultConfig());
  isa::ProgramBuilder b("spin");
  isa::Label loop = b.newLabel();
  b.bind(loop);
  b.j(loop);  // retires every cycle: forward progress, so only the ceiling fires
  const isa::Program p = b.build();
  const SimError e =
      capture([&] { sys.run(p, 0x1000, 0, /*max_cycles=*/5000); });
  EXPECT_EQ(e.kind(), ErrorKind::Watchdog);
  EXPECT_NE(e.message().find("max_cycles"), std::string::npos);
  EXPECT_NE(e.message().find("spin"), std::string::npos);
  EXPECT_FALSE(e.diagnostic().empty());
}

TEST(Watchdog, DeadlockedFifoReadIsCaughtEarlyWithDump) {
  SystemConfig cfg = defaultConfig();
  cfg.watchdog_cycles = 2000;
  System sys(cfg);
  // Blocking pop of BUF_DATA without ever writing START: the FE never has
  // data, the CPU retries the MMIO read forever — zero forward progress.
  isa::ProgramBuilder b("orphan_pop");
  b.li(a0, bits(cfg.memory.mmio_base + core::mmr::kBufData));
  b.lw(t0, a0, 0);
  b.ecall();
  const isa::Program p = b.build();
  const SimError e =
      capture([&] { sys.run(p, 0x1000, 0, /*max_cycles=*/10000); });
  EXPECT_EQ(e.kind(), ErrorKind::Watchdog);
  EXPECT_EQ(e.component(), "watchdog");  // the period, not the ceiling, fired
  EXPECT_NE(e.message().find("no forward progress"), std::string::npos);
  // The dump names each component's state for triage.
  EXPECT_NE(e.diagnostic().find("cpu:"), std::string::npos);
  EXPECT_NE(e.diagnostic().find("hht:"), std::string::npos);
  EXPECT_NE(e.diagnostic().find("mem:"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Full-system recovery paths
// ---------------------------------------------------------------------------

SystemConfig faultyConfig(std::uint64_t seed) {
  SystemConfig cfg = defaultConfig();
  cfg.faults.enabled = true;
  cfg.faults.seed = seed;
  return cfg;
}

TEST(Recovery, EccCorrectsSramFlipsTransparently) {
  SystemConfig cfg = faultyConfig(42);
  cfg.faults.sram_read_flip_rate = 2e-3;
  sim::Rng rng(21);
  const CsrMatrix m = workload::randomCsr(rng, 48, 48, 0.3);
  const DenseVector v = workload::randomDenseVector(rng, 48);
  const RunResult r = harness::runSpmvHhtResilient(cfg, m, v, false);
  EXPECT_FALSE(r.degraded);
  EXPECT_GE(r.stats.value("faults.sram_read_flips"), 1u);
  EXPECT_GE(r.stats.value("mem.ecc_corrected"), 1u);
  EXPECT_EQ(r.stats.value("mem.ecc_uncorrectable"), 0u);
  expectSameY(r.y, sparse::spmvCsr(m, v));
}

TEST(Recovery, FifoFaultDegradesToScalarBaselineWithCorrectResult) {
  SystemConfig cfg = faultyConfig(43);
  cfg.faults.fifo_corrupt_rate = 1.0;
  sim::Rng rng(22);
  const CsrMatrix m = workload::randomCsr(rng, 24, 24, 0.4);
  const DenseVector v = workload::randomDenseVector(rng, 24);
  const RunResult r = harness::runSpmvHhtResilient(cfg, m, v, false);
  EXPECT_TRUE(r.degraded);
  EXPECT_EQ(r.fault_cause, FaultCause::FifoParity);
  EXPECT_FALSE(r.fault_detail.empty());
  expectSameY(r.y, sparse::spmvCsr(m, v));
}

TEST(Recovery, SpmspvDegradationAlsoRecovers) {
  SystemConfig cfg = faultyConfig(44);
  cfg.faults.fifo_corrupt_rate = 1.0;
  sim::Rng rng(23);
  const CsrMatrix m = workload::randomCsr(rng, 24, 24, 0.4);
  const SparseVector v = workload::randomSparseVector(rng, 24, 0.5);
  const RunResult r = harness::runSpmspvHhtResilient(cfg, m, v, 2, false);
  EXPECT_TRUE(r.degraded);
  expectSameY(r.y, sparse::spmspvMerge(m, v));
}

TEST(Recovery, FaultWithoutFallbackIsADeviceFaultError) {
  SystemConfig cfg = faultyConfig(45);
  cfg.faults.fifo_corrupt_rate = 1.0;
  sim::Rng rng(24);
  const CsrMatrix m = workload::randomCsr(rng, 16, 16, 0.5);
  const DenseVector v = workload::randomDenseVector(rng, 16);
  const SimError e = capture([&] { harness::runSpmvHht(cfg, m, v, false); });
  EXPECT_EQ(e.kind(), ErrorKind::DeviceFault);
  EXPECT_NE(e.message().find("fifo-parity"), std::string::npos);
  EXPECT_FALSE(e.diagnostic().empty());
}

TEST(Recovery, UncorrectableLoadIsAMachineCheck) {
  SystemConfig cfg = faultyConfig(46);
  cfg.faults.sram_read_flip_rate = 1.0;  // every read and every retry flips
  sim::Rng rng(25);
  const CsrMatrix m = workload::randomCsr(rng, 8, 8, 0.5);
  const DenseVector v = workload::randomDenseVector(rng, 8);
  const SimError e =
      capture([&] { harness::runSpmvBaseline(cfg, m, v, false); });
  EXPECT_EQ(e.kind(), ErrorKind::MachineCheck);
  EXPECT_EQ(e.component(), "cpu");
}

TEST(Recovery, ResilientSpmvMatchesReferenceUnderEveryFaultKind) {
  // The degradation contract, stated as the differential oracle would: no
  // matter which fault kind fires (or whether the run degrades at all),
  // the resilient driver's output is bit-identical to the functional
  // model. Small-integer operands make == exact.
  struct Knob {
    const char* name;
    void (*apply)(sim::FaultConfig&);
  };
  const Knob knobs[] = {
      {"sram-read-flip",
       [](sim::FaultConfig& fc) { fc.sram_read_flip_rate = 5e-3; }},
      {"fifo-corrupt",
       [](sim::FaultConfig& fc) { fc.fifo_corrupt_rate = 0.05; }},
      {"mmr-glitch",
       [](sim::FaultConfig& fc) { fc.mmr_glitch_rate = 1.0; }},
      {"response-delay", [](sim::FaultConfig& fc) {
         fc.delay_rate = 0.05;
         fc.delay_cycles = 16;
       }},
      {"response-drop", [](sim::FaultConfig& fc) {
         fc.drop_rate = 0.05;
         fc.drop_penalty_cycles = 32;
       }},
  };
  sim::Rng rng(29);
  const CsrMatrix m = workload::randomCsr(rng, 32, 32, 0.35);
  const DenseVector v = workload::randomDenseVector(rng, 32);
  const DenseVector ref = sparse::spmvCsr(m, v);
  for (const Knob& knob : knobs) {
    SystemConfig cfg = faultyConfig(0x50 + (&knob - knobs));
    knob.apply(cfg.faults);
    const RunResult r = harness::runSpmvHhtResilient(cfg, m, v, false);
    SCOPED_TRACE(knob.name);
    EXPECT_GE(r.stats.value("faults.total_injected"), 1u);
    expectSameY(r.y, ref);
  }
}

TEST(Recovery, SeededCampaignsAreDeterministic) {
  SystemConfig cfg = faultyConfig(47);
  cfg.faults.sram_read_flip_rate = 1e-3;
  cfg.faults.drop_rate = 1e-3;
  cfg.faults.delay_rate = 1e-3;
  cfg.faults.fifo_corrupt_rate = 2e-3;
  sim::Rng rng(26);
  const CsrMatrix m = workload::randomCsr(rng, 32, 32, 0.4);
  const DenseVector v = workload::randomDenseVector(rng, 32);
  const RunResult a = harness::runSpmvHhtResilient(cfg, m, v, false);
  const RunResult b = harness::runSpmvHhtResilient(cfg, m, v, false);
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.degraded, b.degraded);
  EXPECT_EQ(a.fault_cause, b.fault_cause);
  EXPECT_EQ(a.stats.value("faults.total_injected"),
            b.stats.value("faults.total_injected"));
  expectSameY(a.y, b.y);
  expectSameY(a.y, sparse::spmvCsr(m, v));
}

TEST(Recovery, DisabledInjectionIsCycleIdentical) {
  sim::Rng rng(27);
  const CsrMatrix m = workload::randomCsr(rng, 32, 32, 0.4);
  const DenseVector v = workload::randomDenseVector(rng, 32);
  SystemConfig off = defaultConfig();
  off.faults.seed = 99;  // knobs set but master switch off: zero cost
  off.faults.sram_read_flip_rate = 0.5;
  off.faults.fifo_corrupt_rate = 0.5;
  const RunResult base = harness::runSpmvHht(defaultConfig(), m, v, true);
  const RunResult gated = harness::runSpmvHht(off, m, v, true);
  EXPECT_EQ(base.cycles, gated.cycles);
  EXPECT_EQ(base.retired, gated.retired);
  EXPECT_EQ(gated.stats.value("faults.total_injected"), 0u);
  expectSameY(base.y, gated.y);
}

TEST(Recovery, AbandonedDeviceReportsResidualBusy) {
  System sys(defaultConfig());
  sim::Rng rng(28);
  const CsrMatrix m = workload::randomCsr(rng, 16, 16, 0.5);
  const DenseVector v = workload::randomDenseVector(rng, 16);
  const kernels::SpmvLayout layout = loadSpmv(sys, m, v);
  const sim::Addr mmio = sys.config().memory.mmio_base;
  // Configure and START the gather, then ECALL without consuming a single
  // element: the device parks with published-but-unread buffers.
  isa::ProgramBuilder b("start_and_abandon");
  b.li(s11, bits(mmio));
  const auto mmrw = [&](sim::Addr off, std::uint32_t val) {
    b.li(t1, static_cast<std::int32_t>(val));
    b.sw(t1, s11, static_cast<std::int32_t>(off));
  };
  mmrw(core::mmr::kMNumRows, layout.num_rows);
  mmrw(core::mmr::kMRowsBase, layout.rows);
  mmrw(core::mmr::kMColsBase, layout.cols);
  mmrw(core::mmr::kVBase, layout.v);
  mmrw(core::mmr::kElementSize, 4);
  mmrw(core::mmr::kMode, static_cast<std::uint32_t>(Mode::SpmvGather));
  mmrw(core::mmr::kStart, 1);
  b.ecall();
  const RunResult r = sys.run(b.build(), layout.y, layout.num_rows);
  EXPECT_TRUE(r.hht_residual_busy);
}

}  // namespace
}  // namespace hht
