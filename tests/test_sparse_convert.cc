// Cross-format conversion tests: every conversion path must preserve the
// dense image exactly (re-indexing only, no arithmetic).
#include <gtest/gtest.h>

#include "sparse/convert.h"
#include "workload/synthetic.h"

namespace hht::sparse {
namespace {

struct Shape {
  sim::Index rows;
  sim::Index cols;
  double sparsity;
};

class ConvertTest : public ::testing::TestWithParam<Shape> {
 protected:
  CsrMatrix makeCsr() const {
    const Shape& s = GetParam();
    sim::Rng rng(0xC0 + s.rows * 3 + s.cols +
                 static_cast<std::uint64_t>(s.sparsity * 10));
    return workload::randomCsr(rng, s.rows, s.cols, s.sparsity);
  }
};

TEST_P(ConvertTest, CsrCscRoundTrip) {
  const CsrMatrix csr = makeCsr();
  const CscMatrix csc = csrToCsc(csr);
  EXPECT_TRUE(csc.validate());
  EXPECT_EQ(csc.nnz(), csr.nnz());
  EXPECT_EQ(cscToCsr(csc), csr);
}

TEST_P(ConvertTest, TransposeTwiceIsIdentity) {
  const CsrMatrix csr = makeCsr();
  const CsrMatrix t = transpose(csr);
  EXPECT_TRUE(t.validate());
  EXPECT_EQ(t.numRows(), csr.numCols());
  EXPECT_EQ(t.numCols(), csr.numRows());
  EXPECT_EQ(transpose(t), csr);
}

TEST_P(ConvertTest, TransposeMatchesDenseTranspose) {
  const CsrMatrix csr = makeCsr();
  const DenseMatrix dense = csr.toDense();
  const DenseMatrix td = transpose(csr).toDense();
  for (sim::Index r = 0; r < dense.numRows(); ++r) {
    for (sim::Index c = 0; c < dense.numCols(); ++c) {
      ASSERT_EQ(td.at(c, r), dense.at(r, c));
    }
  }
}

TEST_P(ConvertTest, BitVectorRoundTrip) {
  const CsrMatrix csr = makeCsr();
  EXPECT_EQ(bitVectorToCsr(csrToBitVector(csr)), csr);
}

TEST_P(ConvertTest, RleRoundTrip) {
  const CsrMatrix csr = makeCsr();
  EXPECT_EQ(rleToCsr(csrToRle(csr)), csr);
}

TEST_P(ConvertTest, HierBitmapRoundTrip) {
  const CsrMatrix csr = makeCsr();
  EXPECT_EQ(hierBitmapToCsr(csrToHierBitmap(csr)), csr);
}

TEST_P(ConvertTest, BcsrRoundTrip) {
  const CsrMatrix csr = makeCsr();
  EXPECT_EQ(bcsrToCsr(csrToBcsr(csr, 4, 4)), csr);
  EXPECT_EQ(bcsrToCsr(csrToBcsr(csr, 2, 8)), csr);
}

TEST_P(ConvertTest, EllRoundTrip) {
  const CsrMatrix csr = makeCsr();
  EXPECT_EQ(ellToCsr(csrToEll(csr)), csr);
}

TEST_P(ConvertTest, DiaRoundTrip) {
  const CsrMatrix csr = makeCsr();
  EXPECT_EQ(diaToCsr(csrToDia(csr)), csr);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ConvertTest,
    ::testing::Values(Shape{1, 1, 0.5}, Shape{8, 8, 0.0}, Shape{8, 8, 1.0},
                      Shape{16, 16, 0.5}, Shape{13, 29, 0.8},
                      Shape{29, 13, 0.8}, Shape{64, 64, 0.95}));

TEST(Convert, CsrFromUnsortedCooWithDuplicates) {
  CooMatrix coo(3, 3);
  coo.add(2, 2, 1.0f);
  coo.add(0, 0, 2.0f);
  coo.add(2, 2, 3.0f);  // duplicate -> summed
  coo.add(1, 0, 4.0f);
  const CsrMatrix csr = CsrMatrix::fromCoo(coo);
  EXPECT_TRUE(csr.validate());
  EXPECT_EQ(csr.nnz(), 3u);
  EXPECT_EQ(csr.toDense().at(2, 2), 4.0f);
  EXPECT_EQ(csr.toDense().at(1, 0), 4.0f);
}

TEST(Convert, CscFromUnsortedCooKeepsRowsAscendingPerColumn) {
  CooMatrix coo(4, 2);
  coo.add(3, 1, 1.0f);
  coo.add(0, 1, 2.0f);
  coo.add(2, 1, 3.0f);
  const CscMatrix csc = CscMatrix::fromCoo(coo);
  EXPECT_TRUE(csc.validate());
  ASSERT_EQ(csc.colNnz(1), 3u);
  EXPECT_EQ(csc.colRows(1)[0], 0u);
  EXPECT_EQ(csc.colRows(1)[1], 2u);
  EXPECT_EQ(csc.colRows(1)[2], 3u);
}

TEST(Convert, StorageFootprintsAreConsistent) {
  sim::Rng rng(0xF00);
  const CsrMatrix csr = workload::randomCsr(rng, 64, 64, 0.9);
  const std::size_t csr_bytes = csrStorageBytes(csr);
  EXPECT_EQ(csr_bytes, (64 + 1) * 4 + csr.nnz() * 8);

  // At 90% sparsity the bitmap format should beat CSR on metadata bytes.
  const HierBitmapMatrix hb = csrToHierBitmap(csr);
  EXPECT_LT(hb.storageBytes(), csr_bytes);

  // BCSR stores padded blocks; with scattered non-zeros it is the largest.
  const BcsrMatrix bcsr = csrToBcsr(csr, 4, 4);
  EXPECT_GT(bcsr.storageBytes(), csr_bytes / 2);
}

}  // namespace
}  // namespace hht::sparse
