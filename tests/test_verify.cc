// Verification-layer tests: the differential co-simulation oracle, the
// expected-stream builders (the functional model of each engine), greedy
// shrinking of failing cases, and replay-bundle round-trips. The injected
// off-by-one (HhtConfig::test_flip_element) is the planted bug every layer
// must catch end to end.
#include <gtest/gtest.h>

#include <bit>
#include <fstream>

#include "harness/experiment.h"
#include "sparse/coo.h"
#include "verify/cosim.h"
#include "verify/fuzz.h"
#include "verify/replay.h"
#include "verify/shrink.h"

namespace hht::verify {
namespace {

using sparse::CooMatrix;
using sparse::CsrMatrix;
using sparse::DenseVector;
using sparse::SparseVector;

std::uint32_t bitsOf(float v) { return std::bit_cast<std::uint32_t>(v); }

/// A fuzz-style case for `kind` with at least `min_elements` expected
/// deliveries (so tests that flip element N have something to flip).
CosimCase caseWithElements(EngineKind kind, std::uint64_t min_elements) {
  for (std::uint64_t seed = 1;; ++seed) {
    sim::Rng rng(0xCA5E'0000 + seed);
    CosimCase c = randomCase(rng, kind);
    const CosimReport rep = runCosim(c);
    EXPECT_TRUE(rep.ok) << rep.describe();
    if (rep.elements >= min_elements) return c;
  }
}

// ---------------------------------------------------------------------------
// Expected-stream builders: hand-checked functional model
// ---------------------------------------------------------------------------

TEST(ExpectedStream, HandExample) {
  // 2x3 matrix, row 0 = {col1: 2, col2: 7}, row 1 empty.
  CooMatrix coo(2, 3);
  coo.add(0, 1, 2.0f);
  coo.add(0, 2, 7.0f);
  const CsrMatrix m = CsrMatrix::fromCoo(std::move(coo));
  const DenseVector v(std::vector<sparse::Value>{1.0f, 3.0f, 5.0f});
  const SparseVector sv(3, {1}, {4.0f});

  // Gather: v gathered at each stored column, no markers.
  const std::vector<StreamEvent> gather = expectedGatherStream(m, v);
  ASSERT_EQ(gather.size(), 2u);
  EXPECT_EQ(gather[0], (StreamEvent{false, bitsOf(3.0f)}));
  EXPECT_EQ(gather[1], (StreamEvent{false, bitsOf(5.0f)}));

  // Variant-1: per index match m_val then v_val; one RowEnd per row,
  // including the empty row 1.
  const std::vector<StreamEvent> v1 = expectedMergeV1Stream(m, sv);
  ASSERT_EQ(v1.size(), 4u);
  EXPECT_EQ(v1[0], (StreamEvent{false, bitsOf(2.0f)}));
  EXPECT_EQ(v1[1], (StreamEvent{false, bitsOf(4.0f)}));
  EXPECT_EQ(v1[2], (StreamEvent{true, 0}));
  EXPECT_EQ(v1[3], (StreamEvent{true, 0}));

  // Variant-2: matched vector value or literal zero per stored non-zero.
  const std::vector<StreamEvent> v2 = expectedStreamV2Stream(m, sv);
  ASSERT_EQ(v2.size(), 2u);
  EXPECT_EQ(v2[0], (StreamEvent{false, bitsOf(4.0f)}));
  EXPECT_EQ(v2[1], (StreamEvent{false, bitsOf(0.0f)}));
}

// ---------------------------------------------------------------------------
// Clean co-simulation: every engine matches its functional model
// ---------------------------------------------------------------------------

TEST(Cosim, AllEnginesMatchTheOracle) {
  const EngineKind kinds[] = {EngineKind::Gather, EngineKind::MergeV1,
                              EngineKind::StreamV2, EngineKind::Hier,
                              EngineKind::Flat};
  for (const EngineKind kind : kinds) {
    for (std::uint64_t seed = 0; seed < 3; ++seed) {
      sim::Rng rng(0xC0'51'00 + 16 * static_cast<std::uint64_t>(kind) + seed);
      const CosimCase c = randomCase(rng, kind);
      const CosimReport rep = runCosim(c);
      EXPECT_TRUE(rep.ok) << engineKindName(kind) << " seed " << seed << ": "
                          << rep.describe();
    }
  }
}

TEST(Cosim, RandomCaseIsDeterministic) {
  sim::Rng a(0xD17E);
  sim::Rng b(0xD17E);
  const CosimCase ca = randomCase(a, EngineKind::MergeV1);
  const CosimCase cb = randomCase(b, EngineKind::MergeV1);
  EXPECT_EQ(ca.m, cb.m);
  EXPECT_EQ(ca.cfg.hht.buffer_len, cb.cfg.hht.buffer_len);
  EXPECT_EQ(ca.cfg.hht.emission_queue, cb.cfg.hht.emission_queue);
  EXPECT_EQ(ca.cfg.memory.sram_latency, cb.cfg.memory.sram_latency);
}

TEST(Cosim, FuzzedEmissionQueueIsAlwaysConstructible) {
  // A 1-deep emission queue deadlocks variant-1 (aligned pairs are reserved
  // atomically); HhtConfig::validate() rejects it and the fuzzer must never
  // draw it.
  for (std::uint64_t seed = 0; seed < 64; ++seed) {
    sim::Rng rng(seed);
    harness::SystemConfig cfg = harness::defaultConfig();
    randomizeHardware(rng, cfg);
    EXPECT_GE(cfg.hht.emission_queue, 2u);
    EXPECT_NO_THROW(cfg.validate());
  }
  harness::SystemConfig cfg = harness::defaultConfig();
  cfg.hht.emission_queue = 1;
  EXPECT_THROW(cfg.validate(), sim::SimError);
}

// ---------------------------------------------------------------------------
// The planted bug: test_flip_element must be caught, shrunk and replayed
// ---------------------------------------------------------------------------

TEST(Oracle, InjectedFlipIsCaughtAtTheExactElement) {
  CosimCase c = caseWithElements(EngineKind::Gather, 3);
  c.cfg.hht.test_flip_element = 1;
  const CosimReport rep = runCosim(c);
  ASSERT_FALSE(rep.ok);
  ASSERT_TRUE(rep.divergence.has_value()) << rep.describe();
  EXPECT_EQ(rep.divergence->element_index, 1u);
  EXPECT_EQ(rep.divergence->expected_bits ^ rep.divergence->actual_bits, 1u);
  EXPECT_NE(rep.divergence->detail.find("payload"), std::string::npos);
  // The cycle window brackets the divergent delivery.
  EXPECT_LE(rep.divergence->prev_cycle, rep.divergence->cycle);
}

TEST(Oracle, FinalOutputMismatchIsADivergence) {
  DifferentialOracle oracle({});
  const DenseVector actual(std::vector<sparse::Value>{1.0f, 2.0f});
  const DenseVector expected(std::vector<sparse::Value>{1.0f, 3.0f});
  oracle.checkFinal(actual, expected);
  ASSERT_TRUE(oracle.diverged());
  EXPECT_NE(oracle.divergence()->detail.find("y["), std::string::npos);
}

TEST(Shrink, FailingCaseShrinksAndStillFails) {
  CosimCase c = caseWithElements(EngineKind::Gather, 4);
  c.cfg.hht.test_flip_element = 0;  // first delivery is corrupted
  ASSERT_FALSE(runCosim(c).ok);

  const ShrinkResult shrunk = shrinkCase(c);
  EXPECT_GT(shrunk.evals, 0);
  EXPECT_LE(shrunk.final_nnz, shrunk.initial_nnz);
  EXPECT_LE(shrunk.final_rows, shrunk.initial_rows);
  // The contract: whatever the shrink walked to, it never returns a
  // passing case.
  const CosimReport rep = runCosim(shrunk.c);
  EXPECT_FALSE(rep.ok) << rep.describe();
}

TEST(Replay, SnapshotReplayReproducesTheDivergence) {
  CosimCase c = caseWithElements(EngineKind::Gather, 3);
  c.cfg.hht.test_flip_element = 2;

  CosimOptions capture;
  capture.capture_snapshot = true;
  const CosimReport first = runCosim(c, capture);
  ASSERT_FALSE(first.ok);
  ASSERT_TRUE(first.divergence.has_value());
  ASSERT_FALSE(first.cycle0_snapshot.empty());

  CosimOptions restore;
  restore.restore_snapshot = &first.cycle0_snapshot;
  const CosimReport second = runCosim(c, restore);
  ASSERT_FALSE(second.ok);
  ASSERT_TRUE(second.divergence.has_value()) << second.describe();
  EXPECT_EQ(second.divergence->element_index, first.divergence->element_index);
  EXPECT_EQ(second.divergence->cycle, first.divergence->cycle);
}

// ---------------------------------------------------------------------------
// Replay bundles: round-trip and rejection of corrupt files
// ---------------------------------------------------------------------------

TEST(ReplayBundle, RoundTripsThroughDisk) {
  sim::Rng rng(0xB0B0);
  ReplayBundle bundle;
  bundle.c = randomCase(rng, EngineKind::StreamV2);
  bundle.seed = 0x5EED;
  bundle.run_index = 42;
  bundle.failing_element = 7;
  bundle.failing_cycle = 1234;
  bundle.detail = "payload mismatch (test)";
  bundle.cycle0_snapshot = {1, 2, 3, 4};

  const std::string path = ::testing::TempDir() + "/hht_bundle_test.hhtr";
  saveBundle(path, bundle);
  const ReplayBundle loaded = loadBundle(path);
  EXPECT_EQ(loaded.c.kind, bundle.c.kind);
  EXPECT_EQ(loaded.c.m, bundle.c.m);
  EXPECT_EQ(loaded.c.v.size(), bundle.c.v.size());
  EXPECT_EQ(loaded.c.sv.nnz(), bundle.c.sv.nnz());
  EXPECT_EQ(loaded.seed, bundle.seed);
  EXPECT_EQ(loaded.run_index, bundle.run_index);
  EXPECT_EQ(loaded.failing_element, bundle.failing_element);
  EXPECT_EQ(loaded.failing_cycle, bundle.failing_cycle);
  EXPECT_EQ(loaded.detail, bundle.detail);
  EXPECT_EQ(loaded.cycle0_snapshot, bundle.cycle0_snapshot);
  // The loaded case runs under the same configuration fingerprint: a clean
  // case must still pass after the round-trip.
  EXPECT_TRUE(runCosim(loaded.c).ok);
}

TEST(ReplayBundle, CorruptFilesAreRejected) {
  const std::string dir = ::testing::TempDir();
  const auto expectCheckpointError = [](const std::string& path) {
    try {
      loadBundle(path);
      ADD_FAILURE() << path << " loaded";
    } catch (const sim::SimError& e) {
      EXPECT_TRUE(e.kind() == sim::ErrorKind::Checkpoint ||
                  e.kind() == sim::ErrorKind::Verify)
          << e.what();
    }
  };
  EXPECT_THROW(loadBundle(dir + "/does_not_exist.hhtr"), sim::SimError);

  const std::string garbage = dir + "/hht_garbage.hhtr";
  std::ofstream(garbage, std::ios::binary) << "not a bundle at all";
  expectCheckpointError(garbage);

  // A real bundle, truncated and with trailing bytes appended.
  sim::Rng rng(0xBAD);
  ReplayBundle bundle;
  bundle.c = randomCase(rng, EngineKind::Gather);
  const std::string good = dir + "/hht_good.hhtr";
  saveBundle(good, bundle);
  std::ifstream in(good, std::ios::binary);
  std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
  const std::string truncated = dir + "/hht_truncated.hhtr";
  std::ofstream(truncated, std::ios::binary)
      .write(bytes.data(), static_cast<std::streamsize>(bytes.size() / 2));
  expectCheckpointError(truncated);
  const std::string trailing = dir + "/hht_trailing.hhtr";
  {
    std::ofstream out(trailing, std::ios::binary);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    out << "junk";
  }
  expectCheckpointError(trailing);
}

}  // namespace
}  // namespace hht::verify
